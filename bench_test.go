// Package rubic's benchmark harness: one testing.B benchmark per table and
// figure of the paper's evaluation, plus micro-benchmarks of the STM
// substrate and ablations of RUBIC's design choices.
//
// Figure/table benchmarks run a reduced-repetition configuration per
// iteration and publish their headline quantities via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the whole evaluation:
//
//	BenchmarkFig1IntruderScalability   Figure 1: intruder peak and collapse
//	BenchmarkFig2ConvergenceGeometry   Figure 2: AIAD vs AIMD fairness gap
//	BenchmarkFig3AIMDSawtooth          Figure 3: AIMD utilization (~75%)
//	BenchmarkFig4CubicFunction         Figure 4: Equation (1) evaluation
//	BenchmarkFig5CIMDUtilization       Figure 5: CIMD utilization (~94%)
//	BenchmarkFig6ScalabilityCurves     Figure 6: all workload sweeps
//	BenchmarkFig7PairwiseSystem        Figure 7: NSBP / threads / efficiency
//	BenchmarkFig8PairwisePerProcess    Figure 8: per-process stats
//	BenchmarkFig9SingleProcess         Figure 9: single-process stats
//	BenchmarkFig10Convergence          Figure 10: staggered-arrival dynamics
//	BenchmarkHeadlineNumbers           Section 4.5.1 ratios
//	BenchmarkAblation*                 design-choice ablations
//	BenchmarkSTM*                      real STM substrate micro-benchmarks
package rubic

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"rubic/internal/core"
	"rubic/internal/harness"
	"rubic/internal/sim"
	"rubic/internal/stamp"
	"rubic/internal/stamp/genome"
	"rubic/internal/stamp/intruder"
	"rubic/internal/stamp/kmeans"
	"rubic/internal/stamp/labyrinth"
	"rubic/internal/stamp/rbtree"
	"rubic/internal/stamp/stmbench7"
	"rubic/internal/stamp/vacation"
	"rubic/internal/stm"
)

// benchConfig is the evaluation setup with repetitions reduced to keep a
// full -bench=. pass quick; pass -reps via harness.Config in cmd/rubic-bench
// for the paper's 50.
func benchConfig() harness.Config {
	cfg := harness.Default()
	cfg.Reps = 10
	return cfg
}

func BenchmarkFig1IntruderScalability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		sweep, err := harness.Scalability(cfg, "intruder")
		if err != nil {
			b.Fatal(err)
		}
		peak := 0
		for j, p := range sweep {
			if p.Speedup > sweep[peak].Speedup {
				peak = j
			}
		}
		b.ReportMetric(float64(sweep[peak].Threads), "peak-threads")
		b.ReportMetric(sweep[len(sweep)-1].Speedup, "speedup@64")
	}
}

func BenchmarkFig2ConvergenceGeometry(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		aiad, err := harness.Geometry(cfg, "aiad")
		if err != nil {
			b.Fatal(err)
		}
		aimd, err := harness.Geometry(cfg, "aimd")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(aiad.FinalGap, "aiad-final-gap")
		b.ReportMetric(aimd.FinalGap, "aimd-final-gap")
	}
}

func BenchmarkFig3AIMDSawtooth(b *testing.B) {
	cfg := benchConfig()
	cfg.Rounds = 2000
	for i := 0; i < b.N; i++ {
		r, err := harness.Sawtooth(cfg, "aimd")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Utilization*100, "utilization-%")
	}
}

func BenchmarkFig4CubicFunction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := harness.CubicShape(64, 0.8, 0.1, 16)
		b.ReportMetric(s.V[8], "value-at-inflection")
	}
}

func BenchmarkFig5CIMDUtilization(b *testing.B) {
	cfg := benchConfig()
	cfg.Rounds = 2000
	for i := 0; i < b.N; i++ {
		cimd, err := harness.Sawtooth(cfg, "cimd")
		if err != nil {
			b.Fatal(err)
		}
		full, err := harness.Sawtooth(cfg, "rubic")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cimd.Utilization*100, "cimd-utilization-%")
		b.ReportMetric(full.Utilization*100, "rubic-utilization-%")
	}
}

func BenchmarkFig6ScalabilityCurves(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		for _, w := range []string{"intruder", "vacation", "rbt", "rbt-ro"} {
			if _, err := harness.Scalability(cfg, w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig7PairwiseSystem(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := harness.Pairwise(cfg, core.PolicyNames())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GeoNSBP["rubic"], "rubic-geo-nsbp")
		b.ReportMetric(res.GeoNSBP["ebs"], "ebs-geo-nsbp")
		b.ReportMetric(res.GeoNSBP["greedy"], "greedy-geo-nsbp")
	}
}

func BenchmarkFig8PairwisePerProcess(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := harness.Pairwise(cfg, []string{"ebs", "rubic"})
		if err != nil {
			b.Fatal(err)
		}
		// The Figure 8b stability metric, averaged over cells.
		var rubicStd, ebsStd float64
		for j := range res.Cells {
			c := &res.Cells[j]
			s := (c.Procs[0].LevelStd + c.Procs[1].LevelStd) / 2
			if c.Policy == "rubic" {
				rubicStd += s / 3
			} else {
				ebsStd += s / 3
			}
		}
		b.ReportMetric(rubicStd, "rubic-level-std")
		b.ReportMetric(ebsStd, "ebs-level-std")
	}
}

func BenchmarkFig9SingleProcess(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := harness.Single(cfg, []string{"greedy", "f2c2", "ebs", "rubic"})
		if err != nil {
			b.Fatal(err)
		}
		c := res.Cell("intruder", "rubic")
		b.ReportMetric(c.Speedup, "rubic-intruder-speedup")
		b.ReportMetric(c.MeanLevel, "rubic-intruder-level")
	}
}

func BenchmarkFig10Convergence(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := harness.Convergence(cfg, "rubic", cfg.Seed+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FairGap, "fair-gap")
		b.ReportMetric(r.TotalPost, "total-threads-post")
	}
}

func BenchmarkHeadlineNumbers(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := harness.Pairwise(cfg, core.PolicyNames())
		if err != nil {
			b.Fatal(err)
		}
		h, err := harness.ComputeHeadline(res)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(h.NSBPGainOver["ebs"]*100, "gain-vs-ebs-%")
		b.ReportMetric(h.NSBPGainOver["greedy"]*100, "gain-vs-greedy-%")
		b.ReportMetric(h.EfficiencyFactorOver["ebs"], "eff-factor-vs-ebs")
	}
}

// --- Ablations: the design choices DESIGN.md calls out -------------------

// ablationScenario measures one RUBIC variant on the paper's hardest pair.
func ablationScenario(b *testing.B, mk core.Factory) (nsbp float64) {
	res, err := sim.Run(sim.Scenario{
		Machine: sim.Machine{Contexts: 64},
		Procs: []sim.ProcessSpec{
			{Name: "vac", Workload: sim.Vacation(), Controller: mk},
			{Name: "rbt", Workload: sim.RBTree(), Controller: mk},
		},
		Rounds: 1000,
		Seed:   17,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.NSBP
}

func BenchmarkAblationHybridGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hybrid := ablationScenario(b, func() core.Controller {
			return core.NewRUBIC(core.RUBICConfig{MaxLevel: 128})
		})
		pure := ablationScenario(b, func() core.Controller {
			return core.NewRUBIC(core.RUBICConfig{MaxLevel: 128, DisableHybridGrowth: true})
		})
		b.ReportMetric(hybrid, "hybrid-nsbp")
		b.ReportMetric(pure, "pure-cubic-nsbp")
	}
}

func BenchmarkAblationHybridReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hybrid := ablationScenario(b, func() core.Controller {
			return core.NewRUBIC(core.RUBICConfig{MaxLevel: 128})
		})
		pure := ablationScenario(b, func() core.Controller {
			return core.NewRUBIC(core.RUBICConfig{MaxLevel: 128, DisableHybridReduction: true})
		})
		b.ReportMetric(hybrid, "hybrid-nsbp")
		b.ReportMetric(pure, "pure-md-nsbp")
	}
}

func BenchmarkAblationAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, alpha := range []float64{0.5, 0.8, 0.9} {
			alpha := alpha
			nsbp := ablationScenario(b, func() core.Controller {
				return core.NewRUBIC(core.RUBICConfig{MaxLevel: 128, Alpha: alpha})
			})
			switch alpha {
			case 0.5:
				b.ReportMetric(nsbp, "nsbp-alpha-0.5")
			case 0.8:
				b.ReportMetric(nsbp, "nsbp-alpha-0.8")
			case 0.9:
				b.ReportMetric(nsbp, "nsbp-alpha-0.9")
			}
		}
	}
}

func BenchmarkAblationNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sigma := range []float64{-1, 0.01, 0.05} {
			res, err := sim.Run(sim.Scenario{
				Machine: sim.Machine{Contexts: 64},
				Procs: []sim.ProcessSpec{
					{Name: "rbt", Workload: sim.ConflictFreeRBT(),
						Controller: func() core.Controller {
							return core.NewRUBIC(core.RUBICConfig{MaxLevel: 128})
						}},
				},
				Rounds:     1000,
				NoiseSigma: sigma,
				Seed:       5,
			})
			if err != nil {
				b.Fatal(err)
			}
			util := res.Procs[0].Levels.MeanAfter(2) / 64 * 100
			switch {
			case sigma < 0:
				b.ReportMetric(util, "util-noiseless-%")
			case sigma == 0.01:
				b.ReportMetric(util, "util-noise1-%")
			default:
				b.ReportMetric(util, "util-noise5-%")
			}
		}
	}
}

// --- STM substrate micro-benchmarks --------------------------------------

func BenchmarkSTMUncontendedWrite(b *testing.B) {
	rt := stm.New(stm.Config{})
	x := stm.NewVar(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rt.Atomic(func(tx *stm.Tx) error {
			x.Write(tx, x.Read(tx)+1)
			return nil
		})
	}
}

func BenchmarkSTMReadOnly(b *testing.B) {
	rt := stm.New(stm.Config{})
	x := stm.NewVar(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rt.AtomicRO(func(tx *stm.Tx) error {
			_ = x.Read(tx)
			return nil
		})
	}
}

func BenchmarkSTMContendedCounter(b *testing.B) {
	rt := stm.New(stm.Config{})
	x := stm.NewVar(0)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = rt.Atomic(func(tx *stm.Tx) error {
				x.Write(tx, x.Read(tx)+1)
				return nil
			})
		}
	})
}

func BenchmarkSTMRBTreeLookup(b *testing.B) {
	rt := stm.New(stm.Config{})
	bench := rbtree.New(rt, rbtree.Config{Elements: 16 << 10, LookupPct: 100})
	if err := bench.Setup(rand.New(rand.NewSource(1))); err != nil {
		b.Fatal(err)
	}
	task := bench.Task()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(2))
		for pb.Next() {
			task(0, rng)
		}
	})
}

func BenchmarkSTMRBTreeMixed(b *testing.B) {
	rt := stm.New(stm.Config{})
	bench := rbtree.New(rt, rbtree.Config{Elements: 16 << 10, LookupPct: 90})
	if err := bench.Setup(rand.New(rand.NewSource(1))); err != nil {
		b.Fatal(err)
	}
	task := bench.Task()
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(100 + seed.Add(1)))
		for pb.Next() {
			task(0, rng)
		}
	})
	b.StopTimer()
	if err := bench.Verify(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSTMVacationSession(b *testing.B) {
	rt := stm.New(stm.Config{})
	bench := vacation.New(rt, vacation.Config{Relations: 1024})
	if err := bench.Setup(rand.New(rand.NewSource(1))); err != nil {
		b.Fatal(err)
	}
	task := bench.Task()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(3))
		for pb.Next() {
			task(0, rng)
		}
	})
	b.StopTimer()
	if err := bench.Verify(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSTMIntruderFragment(b *testing.B) {
	rt := stm.New(stm.Config{})
	bench := intruder.New(rt, intruder.Config{Flows: 128, FragmentsPerFlow: 8, PayloadLen: 128})
	if err := bench.Setup(rand.New(rand.NewSource(1))); err != nil {
		b.Fatal(err)
	}
	task := bench.Task()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(4))
		for pb.Next() {
			task(0, rng)
		}
	})
	b.StopTimer()
	if err := bench.Verify(); err != nil {
		b.Fatal(err)
	}
}

// --- Extension experiments (beyond the paper) -----------------------------

func BenchmarkExtScaling(b *testing.B) {
	cfg := benchConfig()
	cfg.Reps = 3
	for i := 0; i < b.N; i++ {
		points, err := harness.Scaling(cfg, "rubic", 4)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(last.Jain, "jain@N=4")
		b.ReportMetric(last.TotalThreads, "threads@N=4")
	}
}

func BenchmarkExtChurn(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := harness.Churn(cfg, "rubic")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OversubscribedFrac*100, "oversub-%")
	}
}

// --- Batch pipeline makespans on the real STM ------------------------------

func BenchmarkSTMGenomeMakespan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := genome.New(stm.New(stm.Config{}), genome.Config{GenomeLen: 512, SegmentLen: 14})
		b.StartTimer()
		if _, err := stamp.RunBatch(w, stamp.BatchOptions{PoolSize: 4, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTMKMeansMakespan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := kmeans.New(stm.New(stm.Config{}), kmeans.Config{Points: 1024, Clusters: 4})
		b.StartTimer()
		if _, err := stamp.RunBatch(w, stamp.BatchOptions{PoolSize: 4, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTMLabyrinthMakespan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := labyrinth.New(stm.New(stm.Config{}), labyrinth.Config{X: 16, Y: 16, Z: 2, Requests: 24})
		b.StartTimer()
		if _, err := stamp.RunBatch(w, stamp.BatchOptions{PoolSize: 4, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine comparison: TL2 vs NOrec ---------------------------------------

func benchEngineCounter(b *testing.B, algo stm.Algorithm) {
	rt := stm.New(stm.Config{Algorithm: algo})
	x := stm.NewVar(0)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = rt.Atomic(func(tx *stm.Tx) error {
				x.Write(tx, x.Read(tx)+1)
				return nil
			})
		}
	})
}

func BenchmarkEngineTL2Counter(b *testing.B)   { benchEngineCounter(b, stm.TL2) }
func BenchmarkEngineNOrecCounter(b *testing.B) { benchEngineCounter(b, stm.NOrec) }

func benchEngineRBTree(b *testing.B, algo stm.Algorithm) {
	rt := stm.New(stm.Config{Algorithm: algo})
	bench := rbtree.New(rt, rbtree.Config{Elements: 8 << 10, LookupPct: 95})
	if err := bench.Setup(rand.New(rand.NewSource(1))); err != nil {
		b.Fatal(err)
	}
	task := bench.Task()
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			task(0, rng)
		}
	})
	b.StopTimer()
	if err := bench.Verify(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEngineTL2RBTree(b *testing.B)   { benchEngineRBTree(b, stm.TL2) }
func BenchmarkEngineNOrecRBTree(b *testing.B) { benchEngineRBTree(b, stm.NOrec) }

func BenchmarkSTMBench7Mix(b *testing.B) {
	rt := stm.New(stm.Config{})
	bench := stmbench7.New(rt, stmbench7.Config{InitialComposites: 64})
	if err := bench.Setup(rand.New(rand.NewSource(1))); err != nil {
		b.Fatal(err)
	}
	task := bench.Task()
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			task(0, rng)
		}
	})
	b.StopTimer()
	if err := bench.Verify(); err != nil {
		b.Fatal(err)
	}
}
