module rubic

go 1.22
