GO ?= go

# Packages carrying go test -bench micro-benchmarks (STM hot path and the
# transactional containers).
BENCH_PKGS = ./internal/stm ./internal/stm/container

.PHONY: check build vet fmtcheck test race lint bench benchgate chaos

# check is the PR gate: vet, formatting, static analysis, the full test
# suite, and a race-detector pass over the whole module.
check: vet fmtcheck lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# race covers the full module; -short trims the STAMP workloads, which are
# an order of magnitude slower under the race detector.
race:
	$(GO) test -race -short ./...

# lint runs the repo's own static analyzers (see cmd/rubic-lint).
lint:
	$(GO) run ./cmd/rubic-lint ./...

# bench runs the hot-path and container micro-benchmarks and records them as
# a dated BENCH_<date>.json snapshot (see cmd/rubic-benchgate).
bench:
	$(GO) test -run '^$$' -bench . -benchmem $(BENCH_PKGS) \
		| $(GO) run ./cmd/rubic-benchgate -emit BENCH_$$(date +%F).json

# benchgate re-runs the benchmarks (short benchtime: the allocation gate is
# deterministic, the time gate is loose) and compares them against the
# checked-in baseline, failing on regressions.
benchgate:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 0.3s $(BENCH_PKGS) \
		| $(GO) run ./cmd/rubic-benchgate -compare BENCH_baseline.json

# chaos runs the seeded fault-injection soaks (internal/fault schedules are
# pure functions of scenario@seed, so this is deterministic) under the race
# detector. The Chaos* tests spawn real agent child processes; -short only
# trims the unrelated slow STAMP tests — the soaks themselves always run.
chaos:
	$(GO) test -race -short -count=1 -run 'Chaos' ./internal/... ./cmd/rubic-colocate
