GO ?= go

.PHONY: check build vet fmtcheck test race

# check is the PR gate: vet, formatting, the full test suite, and a
# race-detector pass over the concurrency-heavy packages.
check: vet fmtcheck test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/pool/... ./internal/core/... ./internal/mproc/...
