GO ?= go

.PHONY: check build vet fmtcheck test race lint

# check is the PR gate: vet, formatting, static analysis, the full test
# suite, and a race-detector pass over the whole module.
check: vet fmtcheck lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# race covers the full module; -short trims the STAMP workloads, which are
# an order of magnitude slower under the race detector.
race:
	$(GO) test -race -short ./...

# lint runs the repo's own static analyzers (see cmd/rubic-lint).
lint:
	$(GO) run ./cmd/rubic-lint ./...
