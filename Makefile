GO ?= go

# Packages carrying go test -bench micro-benchmarks (STM hot path, the
# transactional containers, the malleable worker pool, and the durable
# commit path).
BENCH_PKGS = ./internal/stm ./internal/stm/container ./internal/stm/container/blink ./internal/pool ./internal/wal

.PHONY: check build vet fmtcheck test race lint lint-fixtures bench benchgate benchscale benchscalegate chaos serve-smoke adaptive-soak crash-soak

# check is the PR gate: vet, formatting, static analysis, the full test
# suite, and a race-detector pass over the whole module.
check: vet fmtcheck lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# race covers the full module; -short trims the STAMP workloads, which are
# an order of magnitude slower under the race detector.
race:
	$(GO) test -race -short ./...

# lint runs the repo's own static analyzers (see cmd/rubic-lint): the full
# 8-analyzer suite over every package, cmd/ included. Any finding fails.
lint:
	$(GO) run ./cmd/rubic-lint ./...

# lint-fixtures proves the analyzers still bite: every seeded-violation
# fixture package must make rubic-lint exit non-zero. A lint run that passes
# because an analyzer went blind is caught here, not by `make lint`.
lint-fixtures:
	@set -e; \
	for d in stmescape txneffect roviolation ctlunits/periods ctlunits/core \
	         atomicmix determinism/annotated determinism/registry noalloc \
	         seqlockproto blinkseqlock; do \
		rc=0; $(GO) run ./cmd/rubic-lint ./internal/analysis/testdata/src/$$d >/dev/null 2>&1 || rc=$$?; \
		if [ "$$rc" -ne 1 ]; then \
			echo "lint-fixtures: $$d: exit $$rc, want 1 (seeded findings)"; exit 1; \
		fi; \
		echo "lint-fixtures: $$d: findings detected (ok)"; \
	done

# bench runs the hot-path, container and pool micro-benchmarks and records
# them as a dated BENCH_<date>.json snapshot (see cmd/rubic-benchgate).
# GOMAXPROCS is pinned to 1: rubic-bench/v2 keys carry the parallelism, so
# serial snapshots must always be recorded at the same procs to stay
# comparable across machines. Use benchscale for the parallel sweep.
bench:
	GOMAXPROCS=1 $(GO) test -run '^$$' -bench . -benchmem $(BENCH_PKGS) \
		| $(GO) run ./cmd/rubic-benchgate -emit BENCH_$$(date +%F).json

# benchgate re-runs the benchmarks (short benchtime: the allocation gate is
# deterministic, the time gate is loose) and compares them against the
# checked-in serial baseline, failing on regressions. Pinned to GOMAXPROCS=1
# to match how BENCH_baseline.json is recorded.
benchgate:
	GOMAXPROCS=1 $(GO) test -run '^$$' -bench . -benchmem -benchtime 0.3s $(BENCH_PKGS) \
		| $(GO) run ./cmd/rubic-benchgate -compare BENCH_baseline.json

# benchscale is the multicore scaling sweep: the full benchmark suite at
# GOMAXPROCS in {1, 2, 4, NumCPU} (deduplicated), folded into one dated
# rubic-bench/v2 snapshot whose keys carry the per-run parallelism suffix.
benchscale:
	@ncpu=$$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1); \
	procs=$$(printf '1\n2\n4\n%s\n' "$$ncpu" | sort -un); \
	{ for p in $$procs; do \
		echo ">>> benchscale: GOMAXPROCS=$$p" >&2; \
		GOMAXPROCS=$$p $(GO) test -run '^$$' -bench . -benchmem $(BENCH_PKGS) || exit 1; \
	done; } | $(GO) run ./cmd/rubic-benchgate -emit BENCH_scale_$$(date +%F).json

# benchscalegate is the parallel regression gate: a 2-proc run compared
# against the checked-in parallel baseline (recorded at GOMAXPROCS=2, the
# smallest level where commit-path contention exists on any host). The
# allocation slack is wider than the serial gate's: under contention every
# retried write allocates a fresh publication box, so parallel allocs/op is
# hardware-dependent where serial allocs/op is exact.
benchscalegate:
	GOMAXPROCS=2 $(GO) test -run '^$$' -bench . -benchmem -benchtime 0.3s $(BENCH_PKGS) \
		| $(GO) run ./cmd/rubic-benchgate -compare BENCH_baseline_parallel.json -alloc-slack 3

# serve-smoke is the open-loop gate: a short fixed-seed Poisson run at low
# QPS through cmd/rubic-serve, failing unless the latency histogram reports
# a finite p999 and the SLO controller ends the run meeting its target.
serve-smoke:
	$(GO) run ./cmd/rubic-serve -smoke

# chaos runs the seeded fault-injection soaks (internal/fault schedules are
# pure functions of scenario@seed, so this is deterministic) under the race
# detector. The Chaos* tests spawn real agent child processes; -short only
# trims the unrelated slow STAMP tests — the soaks themselves always run.
chaos:
	$(GO) test -race -short -count=1 -run 'Chaos' ./internal/... ./cmd/rubic-colocate

# adaptive-soak exercises the engine/CM hot-swap machinery under the race
# detector: the switch-point serializability oracle (a combined CM+engine
# switch between every pair of commits, all four transition directions), the
# switch-storm rounds, the quiesce-protocol unit tests, the adaptive-stack
# wiring, and the seeded swapstorm recovery soak (kills an agent
# mid-handoff, fixed seed). Deterministic schedules; no benchmark noise.
adaptive-soak:
	$(GO) test -race -count=1 -run 'Switch|Adaptive|Profile' \
		./internal/stm ./internal/core ./internal/colocate
	$(GO) test -race -count=1 -run 'TestChaosSwapStormSoak' ./internal/mproc

# shard-soak exercises the range-sharded runtime and the B-Link index under
# the race detector at full parallelism: the cross-shard commit storm (bank
# conservation over AtomicAcross two-phase commits with concurrent
# cross-shard auditors), the masked serializability oracle over sharded
# histories, the sharded-container token storms, and the blink lock-free
# reader/writer stress (concurrent torn-read probes over Tree and the
# hybrid Map fast path).
shard-soak:
	$(GO) test -race -count=1 -run 'TestAtomicAcross|TestSharded|TestShardFor|TestFindSerialOrderMasked' \
		./internal/stm ./internal/stm/container
	$(GO) test -race -count=1 -run 'TestTreeConcurrent|TestMapConcurrentHybrid|TestOrderedScanAgreement' \
		./internal/stm/container/blink ./internal/stm/container
	$(GO) test -race -count=1 -run 'TestShardedKV|TestOrdered|TestServerOpenLoopOrdered' ./internal/load

# crash-soak is the durability gate: seeded kill-loops under the race
# detector. Real agent processes are killed mid-commit-storm (torn final
# record, fsync stalls) and restarted over the same log directory; the
# supervisor asserts every incarnation recovers exactly the committed
# prefix and the workload re-verifies after replay. Schedules are pure
# functions of scenario@seed, so failures reproduce.
crash-soak:
	$(GO) test -race -count=1 -run 'TestChaosDurabilitySoak|TestChaosCrashSoak' \
		./internal/mproc -v
