// Custom controller: plug your own parallelism policy into the RUBIC stack.
//
// Anything implementing core.Controller can steer a malleable pool — or the
// co-location simulator. This example implements a dead-simple "probe
// ladder" policy, runs it against RUBIC on the simulator's Vacation curve,
// and prints both outcomes, demonstrating the two integration points
// (core.Tuner for real pools, sim.ProcessSpec for simulation).
//
//	go run ./examples/custom-controller
package main

import (
	"fmt"
	"log"

	"rubic/internal/core"
	"rubic/internal/sim"
)

// ladder is a toy controller: it climbs by fixed steps while throughput
// improves and freezes at the first loss. (Don't use this in production —
// it cannot adapt to change; that inability is exactly what it demonstrates
// when a second process arrives.)
type ladder struct {
	max    int
	step   int
	level  int
	tp     float64
	frozen bool
}

func newLadder(max, step int) *ladder { return &ladder{max: max, step: step, level: 1} }

// Next implements core.Controller.
func (l *ladder) Next(tc float64) int {
	if !l.frozen {
		if tc >= l.tp {
			l.level += l.step
			if l.level > l.max {
				l.level = l.max
			}
		} else {
			l.level -= l.step
			if l.level < 1 {
				l.level = 1
			}
			l.frozen = true
		}
	}
	l.tp = tc
	return l.level
}

// Level implements core.Controller.
func (l *ladder) Level() int { return l.level }

// Reset implements core.Controller.
func (l *ladder) Reset() { l.level, l.tp, l.frozen = 1, 0, false }

// Name implements core.Controller.
func (l *ladder) Name() string { return "ladder" }

var _ core.Controller = (*ladder)(nil)

func compare(name string, mk core.Factory) {
	// Scenario: the process starts alone; a competitor arrives at t=5s.
	res, err := sim.Run(sim.Scenario{
		Machine: sim.Machine{Contexts: 64},
		Procs: []sim.ProcessSpec{
			{Name: name, Workload: sim.Vacation(), Controller: mk},
			{Name: "rbt-competitor", Workload: sim.RBTree(),
				Controller: func() core.Controller {
					return core.NewRUBIC(core.RUBICConfig{MaxLevel: 128})
				},
				ArrivalRound: 500},
		},
		Rounds: 1000,
		Seed:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	p, rival := res.Procs[0], res.Procs[1]
	fmt.Printf("%-8s speedup=%5.2f  mean-level=%5.1f  efficiency=%.3f  competitor-speedup=%5.2f  NSBP=%6.1f\n",
		name, p.Speedup, p.MeanLevel, p.Efficiency, rival.Speedup, res.NSBP)
}

func main() {
	fmt.Println("custom 'ladder' policy vs RUBIC, vacation workload, competitor arrives at 5s")
	compare("ladder", func() core.Controller { return newLadder(128, 4) })
	compare("rubic", func() core.Controller { return core.NewRUBIC(core.RUBICConfig{MaxLevel: 128}) })
	fmt.Println("\nthe frozen ladder cannot give threads back when the competitor arrives;")
	fmt.Println("RUBIC's multiplicative decrease re-negotiates the split on the fly.")
}
