// Colocated: two malleable TM applications space-sharing one machine.
//
// This is the paper's multi-process scenario in miniature, run on the real
// runtime through the colocate package: two independent application stacks
// (standing in for two OS processes — each with its own STM runtime,
// workload, controller and thread pool; they share nothing but the CPU) run
// side by side. Each RUBIC controller makes strictly local decisions, yet
// the pair converges to a fair split instead of fighting over the hardware.
// The second "process" arrives two seconds late, as in the paper's
// section 4.6 convergence experiment.
//
//	go run ./examples/colocated
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"rubic/internal/colocate"
	"rubic/internal/core"
	"rubic/internal/stamp/rbtree"
	"rubic/internal/stm"
	"rubic/internal/trace"
)

func main() {
	size := runtime.NumCPU()
	if size < 2 {
		size = 2
	}
	mkStack := func(name string, seed int64, delay time.Duration) colocate.Proc {
		return colocate.Proc{
			Name:         name,
			Workload:     rbtree.New(stm.New(stm.Config{}), rbtree.Config{Elements: 8 << 10, LookupPct: 100}),
			Controller:   core.NewRUBIC(core.RUBICConfig{MaxLevel: size}),
			PoolSize:     size,
			Seed:         seed,
			ArrivalDelay: delay,
		}
	}

	group, err := colocate.NewGroup([]colocate.Proc{
		mkStack("P1", 1, 0),
		mkStack("P2", 2, 2*time.Second),
	}, 10*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("P1 starts alone; P2 arrives after 2s — watch both adapt with zero coordination")
	results, err := group.Run(4 * time.Second)
	if err != nil {
		log.Fatal(err)
	}

	set := &trace.Set{}
	for _, r := range results {
		fmt.Printf("%s: %d lookups, mean level %.1f\n", r.Name, r.Completed, r.MeanLevel)
		if r.Levels != nil {
			set.Add(r.Levels)
		}
	}
	fmt.Print("\n" + trace.Plot(set, trace.PlotOptions{
		Title:  fmt.Sprintf("active workers over time (machine has %d CPUs)", runtime.NumCPU()),
		Height: 10,
	}))
}
