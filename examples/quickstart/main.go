// Quickstart: tune the parallelism of a malleable workload with RUBIC in a
// few lines.
//
// The program builds a worker pool whose task is a small transactional
// counter update, attaches a RUBIC controller through the monitoring loop,
// lets it run for two seconds, and prints what the controller decided.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"rubic/internal/core"
	"rubic/internal/pool"
	"rubic/internal/stm"
)

func main() {
	// 1. A transactional workload: 64 shared counters, each task increments
	//    one of them atomically.
	rt := stm.New(stm.Config{})
	counters := make([]*stm.Var[int], 64)
	for i := range counters {
		counters[i] = stm.NewVar(0)
	}

	// 2. A malleable pool: up to NumCPU workers, each repeatedly running
	//    one transaction per task (the per-worker counters feed the tuner).
	size := runtime.NumCPU()
	if size < 2 {
		size = 2
	}
	p, err := pool.New(size, 42, func(_ int, rng *rand.Rand) bool {
		c := counters[rng.Intn(len(counters))]
		return rt.Atomic(func(tx *stm.Tx) error {
			c.Write(tx, c.Read(tx)+1)
			return nil
		}) == nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. RUBIC: the controller observes the pool's commit rate every 10 ms
	//    and adapts the number of active workers.
	tuner := &core.Tuner{
		Controller: core.NewRUBIC(core.RUBICConfig{MaxLevel: size}),
		Target:     p,
		Period:     core.DefaultPeriod,
	}

	p.Start()
	tuner.Start()
	time.Sleep(2 * time.Second)
	tuner.Stop()
	p.Stop()

	total := 0
	for _, c := range counters {
		total += c.Peek()
	}
	fmt.Printf("completed tasks: %d\n", p.Completed())
	fmt.Printf("counter total:   %d (must match)\n", total)
	fmt.Printf("final level:     %d of %d workers\n", p.Level(), size)
	fmt.Printf("stm stats:       %v\n", rt.Stats())
	if uint64(total) != p.Completed() {
		log.Fatal("count mismatch: STM lost updates")
	}
}
