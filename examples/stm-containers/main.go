// STM containers: the transactional-memory substrate as a standalone
// library, independent of parallelism tuning.
//
// The program composes a multi-structure transaction — moving an order
// between a queue, a hash map and a red-black tree atomically — and runs it
// under both STM engines (TL2-style and NOrec) and several contention
// managers, verifying the cross-structure invariant each time.
//
//	go run ./examples/stm-containers
package main

import (
	"fmt"
	"log"
	"sync"

	"rubic/internal/stm"
	"rubic/internal/stm/container"
)

// orderSystem keeps one order in exactly one of three places: the inbox
// queue, the in-progress map, or the completed tree. The invariant: every
// order id 0..N-1 is in exactly one structure.
type orderSystem struct {
	rt         *stm.Runtime
	inbox      *container.Queue[int64]
	inProgress *container.HashMap[string]
	completed  *container.RBTree[string]
}

func newOrderSystem(rt *stm.Runtime, n int) (*orderSystem, error) {
	s := &orderSystem{
		rt:         rt,
		inbox:      container.NewQueue[int64](),
		inProgress: container.NewHashMap[string](64),
		completed:  container.NewRBTree[string](),
	}
	err := rt.Atomic(func(tx *stm.Tx) error {
		for id := int64(0); id < int64(n); id++ {
			s.inbox.Push(tx, id)
		}
		return nil
	})
	return s, err
}

// startOne atomically moves the oldest inbox order into the in-progress map.
func (s *orderSystem) startOne(worker int) (bool, error) {
	moved := false
	err := s.rt.Atomic(func(tx *stm.Tx) error {
		moved = false
		id, ok := s.inbox.Pop(tx)
		if !ok {
			return nil
		}
		s.inProgress.Put(tx, id, fmt.Sprintf("worker-%d", worker))
		moved = true
		return nil
	})
	return moved, err
}

// finishOne atomically moves one in-progress order into the completed tree.
func (s *orderSystem) finishOne() (bool, error) {
	moved := false
	err := s.rt.Atomic(func(tx *stm.Tx) error {
		moved = false
		var id int64 = -1
		var who string
		s.inProgress.Range(tx, func(k int64, v string) bool {
			id, who = k, v
			return false // take the first
		})
		if id < 0 {
			return nil
		}
		s.inProgress.Delete(tx, id)
		s.completed.Put(tx, id, who)
		moved = true
		return nil
	})
	return moved, err
}

// audit checks the exactly-one-place invariant in a read-only transaction:
// the three structures' sizes must sum to n and no order may appear in two
// of them.
func (s *orderSystem) audit(n int) error {
	var problem error
	total := 0
	err := s.rt.AtomicRO(func(tx *stm.Tx) error {
		problem = nil
		total = s.inbox.Len(tx) + s.inProgress.Len(tx) + s.completed.Len(tx)
		s.inProgress.Range(tx, func(k int64, _ string) bool {
			if s.completed.Contains(tx, k) {
				problem = fmt.Errorf("order %d in two places", k)
				return false
			}
			return true
		})
		return nil
	})
	if err != nil {
		return err
	}
	if problem != nil {
		return problem
	}
	if total != n {
		return fmt.Errorf("%d orders accounted for, want %d", total, n)
	}
	return nil
}

func demo(algo stm.Algorithm, cm stm.ContentionManager, n, workers int) error {
	rt := stm.New(stm.Config{Algorithm: algo, CM: cm})
	sys, err := newOrderSystem(rt, n)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				started, err := sys.startOne(w)
				if err != nil {
					return
				}
				finished, err := sys.finishOne()
				if err != nil {
					return
				}
				if !started && !finished {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := sys.audit(n); err != nil {
		return err
	}
	done := 0
	err = rt.AtomicRO(func(tx *stm.Tx) error {
		done = sys.completed.Len(tx)
		return nil
	})
	if err != nil {
		return err
	}
	stats := rt.Stats()
	fmt.Printf("  engine=%-6v cm=%-9s completed=%4d/%d commits=%5d aborts=%4d\n",
		algo, cm.Name(), done, n, stats.Commits, stats.Aborts)
	return nil
}

func main() {
	const orders = 500
	const workers = 4
	fmt.Printf("moving %d orders through queue -> map -> tree with %d workers\n\n", orders, workers)
	for _, algo := range []stm.Algorithm{stm.TL2, stm.NOrec} {
		for _, cm := range []stm.ContentionManager{stm.BackoffCM{}, stm.GreedyCM{}, stm.PolkaCM{}} {
			if err := demo(algo, cm, orders, workers); err != nil {
				log.Fatalf("engine %v cm %s: %v", algo, cm.Name(), err)
			}
		}
	}
	fmt.Println("\nall runs preserved the exactly-one-place invariant")
}
