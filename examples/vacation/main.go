// Vacation: STAMP's travel reservation benchmark on the full RUBIC stack.
//
// The program populates the reservation system (cars, flights, rooms and
// customers in transactional red-black trees), then compares a greedy run
// (all workers always active) with a RUBIC-tuned run on a fresh instance,
// verifying the booking invariants after each.
//
//	go run ./examples/vacation
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"rubic/internal/core"
	"rubic/internal/stamp"
	"rubic/internal/stamp/vacation"
	"rubic/internal/stm"
)

func run(label string, ctrl core.Controller, size int) {
	rt := stm.New(stm.Config{CM: stm.TwoPhaseCM{}})
	bench := vacation.New(rt, vacation.Config{
		Relations: 2048,
		QueryPct:  90,
		UserPct:   90,
		Queries:   4,
	})
	rep, err := stamp.Run(bench, stamp.RunOptions{
		PoolSize:   size,
		Duration:   2 * time.Second,
		Controller: ctrl,
		Seed:       7,
	})
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	stats := rt.Stats()
	fmt.Printf("%-8s sessions=%-8d throughput=%8.0f/s mean-level=%4.1f abort-ratio=%.3f invariants=OK\n",
		label, rep.Completed, rep.Throughput, rep.MeanLevel, stats.AbortRatio())
}

func main() {
	size := runtime.NumCPU() * 2
	if size < 4 {
		size = 4
	}
	fmt.Printf("vacation on %d CPUs, pool size %d\n\n", runtime.NumCPU(), size)

	// Greedy baseline: every worker always active.
	run("greedy", nil, size)
	// RUBIC: adapts the active workers to whatever this host rewards.
	run("rubic", core.NewRUBIC(core.RUBICConfig{MaxLevel: size}), size)

	fmt.Println("\nBoth runs passed the booking-accounting verification:")
	fmt.Println("  used + free == total for every item, and every used slot")
	fmt.Println("  is referenced by exactly one customer reservation.")
}
