package colocate

import (
	"fmt"
	"strings"
	"sync"

	"rubic/internal/core"
	"rubic/internal/fault"
	"rubic/internal/stm"
)

// AdaptiveCandidate is one selectable engine/contention-manager pairing.
// The CM is a constructor, not an instance: every actuation installs a
// fresh manager so per-manager state never leaks between reigns.
type AdaptiveCandidate struct {
	Name   string
	Engine stm.Algorithm
	CM     func() stm.ContentionManager
}

// ParseCM resolves a contention-manager name to a constructor.
func ParseCM(name string) (func() stm.ContentionManager, error) {
	switch name {
	case "backoff", "":
		return func() stm.ContentionManager { return stm.BackoffCM{} }, nil
	case "suicide":
		return func() stm.ContentionManager { return stm.SuicideCM{} }, nil
	case "greedy":
		return func() stm.ContentionManager { return stm.GreedyCM{} }, nil
	case "two-phase", "twophase":
		return func() stm.ContentionManager { return stm.TwoPhaseCM{} }, nil
	case "karma":
		return func() stm.ContentionManager { return stm.KarmaCM{} }, nil
	case "polka":
		return func() stm.ContentionManager { return stm.PolkaCM{} }, nil
	}
	return nil, fmt.Errorf("colocate: unknown contention manager %q (want backoff, suicide, greedy, two-phase, karma or polka)", name)
}

// ParseAdaptive parses a '+'-separated candidate list, each candidate an
// engine with an optional contention manager: "tl2/backoff+norec/greedy".
// ':' is accepted in place of '/' so candidate specs can ride inside serve
// specs, whose options are themselves '/'-separated. The CM defaults to
// backoff.
func ParseAdaptive(spec string) ([]AdaptiveCandidate, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("colocate: empty adaptive spec")
	}
	var out []AdaptiveCandidate
	seen := map[string]struct{}{}
	for _, part := range strings.Split(spec, "+") {
		part = strings.TrimSpace(part)
		engineName, cmName := part, ""
		if i := strings.IndexAny(part, "/:"); i >= 0 {
			engineName, cmName = part[:i], part[i+1:]
		}
		engine, err := ParseEngine(engineName)
		if err != nil {
			return nil, fmt.Errorf("colocate: adaptive candidate %q: %w", part, err)
		}
		cm, err := ParseCM(cmName)
		if err != nil {
			return nil, fmt.Errorf("colocate: adaptive candidate %q: %w", part, err)
		}
		if cmName == "" {
			cmName = "backoff"
		}
		name := engine.String() + "/" + cmName
		if _, dup := seen[name]; dup {
			return nil, fmt.Errorf("colocate: duplicate adaptive candidate %q", name)
		}
		seen[name] = struct{}{}
		out = append(out, AdaptiveCandidate{Name: name, Engine: engine, CM: cm})
	}
	return out, nil
}

// AdaptiveStack binds a core.AdaptivePolicy to a live stm.Runtime and
// (optionally) the stack's parallelism controller. It implements
// core.Adapter: each epoch it samples the runtime's conflict profile, feeds
// the policy, and actuates any candidate change — the CM immediately, the
// engine through the runtime's quiesce-and-switch barrier. On an engine
// handoff it re-anchors the controller from a snapshot exported at the
// handoff instant (so an SLOGuard cut earlier in the same epoch is already
// reflected — never resurrected) with a zero growth epoch: the new engine
// restarts the cubic round count, just as a process restore does.
type AdaptiveStack struct {
	rt     *stm.Runtime
	policy *core.AdaptivePolicy
	cands  []AdaptiveCandidate

	// Faults drives the adapt.handoff injection point; OnHandoffCrash, when
	// both are set and the point fires, is invoked mid-handoff (the mproc
	// agent exits the process there). Both are set before Start-equivalent
	// use and never mutated concurrently.
	Faults         *fault.Injector
	OnHandoffCrash func()

	mu       sync.Mutex
	ctrl     core.Controller
	prev     stm.Stats
	handoffs uint64
}

// NewAdaptiveStack parses spec, builds the policy and actuates the first
// candidate on rt. ctrl may be nil (no controller to re-anchor; it can be
// bound later with BindController). cfg.Candidates is overwritten with the
// parsed candidate names.
func NewAdaptiveStack(rt *stm.Runtime, ctrl core.Controller, spec string, cfg core.AdaptiveConfig) (*AdaptiveStack, error) {
	cands, err := ParseAdaptive(spec)
	if err != nil {
		return nil, err
	}
	cfg.Candidates = make([]string, len(cands))
	for i, c := range cands {
		cfg.Candidates[i] = c.Name
	}
	policy, err := core.NewAdaptivePolicy(cfg)
	if err != nil {
		return nil, err
	}
	a := &AdaptiveStack{rt: rt, policy: policy, cands: cands, ctrl: ctrl, prev: rt.Stats()}
	a.actuate(0)
	return a, nil
}

// BindController attaches (or replaces) the controller the stack re-anchors
// at engine handoffs — for assemblies where the controller is built after
// the runtime (the serve path wraps it in an SLOGuard inside load.NewServer).
func (a *AdaptiveStack) BindController(ctrl core.Controller) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ctrl = ctrl
}

// Policy exposes the policy, for telemetry and tests.
func (a *AdaptiveStack) Policy() *core.AdaptivePolicy { return a.policy }

// Runtime exposes the bound runtime.
func (a *AdaptiveStack) Runtime() *stm.Runtime { return a.rt }

// Handoffs reports completed engine handoffs.
func (a *AdaptiveStack) Handoffs() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.handoffs
}

// State exports the policy's resumable state (for the telemetry stream).
func (a *AdaptiveStack) State() core.AdaptiveState { return a.policy.State() }

// Restore adopts a predecessor's policy state and actuates its candidate,
// so a restarted agent resumes on the stack its predecessor had settled on
// instead of re-probing from scratch.
func (a *AdaptiveStack) Restore(st core.AdaptiveState) bool {
	if !a.policy.Restore(st) {
		return false
	}
	a.actuate(a.policy.Current())
	return true
}

// Epoch implements core.Adapter: called by the tuning loop once per epoch,
// after the level for the epoch is actuated.
func (a *AdaptiveStack) Epoch(tput float64) {
	a.mu.Lock()
	cur := a.rt.Stats()
	prof := stm.ProfileBetween(a.prev, cur)
	a.prev = cur
	a.mu.Unlock()
	dec := a.policy.Observe(core.AdaptiveSignal{
		Tput:           tput,
		AbortRatio:     prof.AbortRatio,
		MeanReadSet:    prof.MeanReadSet,
		MeanWriteSet:   prof.MeanWriteSet,
		ConflictDegree: prof.ConflictDegree,
	})
	if dec.Switched {
		a.actuate(dec.Candidate)
	}
}

// actuate installs candidate i: the contention manager always (immediate,
// no drain), the engine only when it differs (stop-the-world handoff).
func (a *AdaptiveStack) actuate(i int) {
	c := a.cands[i]
	a.rt.SetContentionManager(c.CM())
	if a.rt.Algorithm() == c.Engine {
		return
	}
	a.mu.Lock()
	ctrl := a.ctrl
	a.mu.Unlock()
	// Export the controller at the handoff instant: the tuning loop runs
	// the adapter after the epoch's decision, so a cut this epoch is in the
	// snapshot and cannot be undone by the restore below.
	var snap core.TuningState
	restorable := false
	if ctrl != nil {
		snap, restorable = core.StateOf(ctrl)
	}
	if a.Faults.Fire(fault.HandoffCrash) && a.OnHandoffCrash != nil {
		a.OnHandoffCrash()
	}
	a.rt.SwitchEngine(c.Engine)
	if restorable {
		// Epoch left zero deliberately: a new engine restarts the cubic
		// round count while keeping the learned level and anchor.
		core.RestoreInto(ctrl, core.TuningState{Level: snap.Level, WMax: snap.WMax})
	}
	a.mu.Lock()
	a.handoffs++
	a.mu.Unlock()
}
