package colocate

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"rubic/internal/core"
	"rubic/internal/load"
	"rubic/internal/stamp/workloads"
	"rubic/internal/stm"
	"rubic/internal/wal"
)

// ServeProc describes one co-located open-loop serving stack: a fully
// assembled load.Config plus a name. Unlike Proc, there is no arrival delay —
// open-loop stacks express their load shape through the arrival process
// itself (a diurnal or burst generator covers the staggered-arrival story).
type ServeProc struct {
	// Name labels the stack in results.
	Name string
	// Config is the stack's open-loop configuration (see load.Config); each
	// stack owns its workload, arrival schedule and controller, so co-located
	// stacks may hold different SLOs.
	Config load.Config
	// Adaptive, when non-nil, is the stack's engine/CM hot-swap driver. It is
	// already installed as Config.Adapter; NewServeGroup binds it to the SLO
	// guard once the server (which builds the guard) exists.
	Adaptive *AdaptiveStack
	// Durable, when non-nil, opens (or recovers) a write-ahead log in
	// Durable.Dir once the server has populated the workload, attaches it to
	// Runtime as the commit sink, and closes it after the run (see
	// AttachDurability). The workload must implement wal.DurableState and
	// Runtime must be the stack's own runtime.
	Durable *wal.Options
	// Runtime is the stack's STM runtime; required only when Durable is set.
	Runtime *stm.Runtime
}

// ServeResult is one stack's outcome.
type ServeResult struct {
	Name string
	load.Result
	// Wal summarizes the stack's durability outcome (nil without Durable).
	Wal *WalResult
}

// ServeGroup is a set of co-located open-loop serving stacks. As with Group,
// the stacks share nothing but the CPU: each SLO guard observes only its own
// stack's latency and decides unilaterally.
type ServeGroup struct {
	names   []string
	servers []*load.Server
	logs    []*wal.Log
}

// NewServeGroup validates every stack's configuration up front, so a bad
// spec fails before any load is generated.
func NewServeGroup(procs []ServeProc) (*ServeGroup, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("colocate: no serving stacks")
	}
	g := &ServeGroup{logs: make([]*wal.Log, len(procs))}
	seen := map[string]struct{}{}
	for i, p := range procs {
		if p.Name == "" {
			return nil, fmt.Errorf("colocate: serving stack %d has no name", i)
		}
		if _, dup := seen[p.Name]; dup {
			return nil, fmt.Errorf("colocate: duplicate serving stack name %q", p.Name)
		}
		seen[p.Name] = struct{}{}
		if p.Durable != nil {
			// The workload populates inside load.Server.Run (Setup), so the
			// log can only open — and replay a recovered prefix into the
			// freshly registered locations — through the server's after-setup
			// hook, in the window before any traffic exists.
			idx, workload, rt, opts := i, p.Config.Workload, p.Runtime, *p.Durable
			p.Config.AfterSetup = func() error {
				l, err := AttachDurability(workload, rt, opts)
				if err != nil {
					return fmt.Errorf("durability: %w", err)
				}
				g.logs[idx] = l
				return nil
			}
		}
		s, err := load.NewServer(p.Config)
		if err != nil {
			return nil, fmt.Errorf("colocate: stack %s: %w", p.Name, err)
		}
		if p.Adaptive != nil {
			// The guard wrapping the controller is built inside NewServer;
			// re-bind so engine handoffs re-anchor the guard's inner
			// controller rather than a stale pre-wrap reference.
			if guard := s.Guard(); guard != nil {
				p.Adaptive.BindController(guard)
			}
		}
		g.names = append(g.names, p.Name)
		g.servers = append(g.servers, s)
	}
	return g, nil
}

// Servers exposes the built servers in input order (for guard inspection).
func (g *ServeGroup) Servers() []*load.Server { return g.servers }

// Run drives every stack concurrently for the given duration and returns
// per-stack results in input order. Each server verifies its own workload;
// the first failure is returned, with every stack's results intact (a
// failed stack's partial Result is still populated by load.Server.Run).
func (g *ServeGroup) Run(duration time.Duration) ([]ServeResult, error) {
	results := make([]ServeResult, len(g.servers))
	errs := make([]error, len(g.servers))
	var wg sync.WaitGroup
	for i := range g.servers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := g.servers[i].Run(duration)
			results[i] = ServeResult{Name: g.names[i], Result: res}
			if err != nil {
				errs[i] = fmt.Errorf("colocate: stack %s: %w", g.names[i], err)
			}
		}(i)
	}
	wg.Wait()
	// Every server has drained, so no commit can still publish: flush and
	// close the logs, and record each durable stack's outcome. A log that
	// lost durability mid-run surfaces as an explicit flag, not a run failure.
	for i, l := range g.logs {
		if l == nil {
			continue
		}
		lost, lostErr := l.Lost()
		wr := &WalResult{
			Recovered:  l.Recovered(),
			LastCSN:    l.LastCSN(),
			DurableCSN: l.DurableCSN(),
			Lost:       lost,
			LostErr:    lostErr,
		}
		if err := l.Close(); err != nil && wr.LostErr == nil {
			wr.Lost, wr.LostErr = true, err
		}
		if !wr.Lost {
			wr.DurableCSN = l.DurableCSN() // final batch flushed by Close
		}
		results[i].Wal = wr
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// ServeSpec is the parsed form of one serving-stack description:
//
//	workload[/key=value]...
//
// e.g. "kv/qps=800/slo=5ms" or "bank/qps=200/arrival=diurnal/policy=rubic".
// Keys: qps (required), slo (p99 target duration; 0/absent disables the
// guard), arrival (constant|poisson|diurnal|burst; default poisson), policy
// (slo|rubic|fixed; default slo when a target is set, fixed otherwise),
// theta (Zipf skew for keyed workloads; default load.DefaultTheta),
// adaptive (a '+'-separated engine:cm candidate list, e.g.
// "tl2:backoff+norec:greedy" — ':' because '/' delimits serve options; an
// adaptive stack hot-swaps the runtime among the candidates and overrides
// the -engine flag's static choice).
type ServeSpec struct {
	Workload string
	Arrival  string
	QPS      float64
	SLO      time.Duration
	Policy   string
	Theta    float64
	Adaptive string
	// Shards is the shard count for range-sharded workloads ("shardedkv");
	// 0 defaults to the worker count at build time.
	Shards int
}

// ParseServeSpec parses one serving-stack description.
func ParseServeSpec(s string) (ServeSpec, error) {
	spec := ServeSpec{Arrival: "poisson", Theta: load.DefaultTheta}
	parts := strings.Split(s, "/")
	if parts[0] == "" {
		return spec, fmt.Errorf("colocate: serve spec %q has no workload", s)
	}
	spec.Workload = parts[0]
	for _, opt := range parts[1:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok || val == "" {
			return spec, fmt.Errorf("colocate: serve spec option %q (want key=value)", opt)
		}
		var err error
		switch key {
		case "qps":
			spec.QPS, err = strconv.ParseFloat(val, 64)
		case "slo":
			spec.SLO, err = time.ParseDuration(val)
		case "arrival":
			spec.Arrival = val
		case "policy":
			spec.Policy = val
		case "theta":
			spec.Theta, err = strconv.ParseFloat(val, 64)
		case "adaptive":
			spec.Adaptive = val
		case "shards":
			spec.Shards, err = strconv.Atoi(val)
		default:
			err = fmt.Errorf("unknown option %q", key)
		}
		if err != nil {
			return spec, fmt.Errorf("colocate: serve spec %q: %s: %v", s, key, err)
		}
	}
	if spec.QPS <= 0 {
		return spec, fmt.Errorf("colocate: serve spec %q needs qps=<rate>", s)
	}
	if spec.Policy == "" {
		if spec.SLO > 0 {
			spec.Policy = "slo"
		} else {
			spec.Policy = "fixed"
		}
	}
	if spec.Policy == "slo" && spec.SLO <= 0 {
		return spec, fmt.Errorf("colocate: serve spec %q: policy=slo needs slo=<target>", s)
	}
	return spec, nil
}

// ParseServeSpecs parses a comma-separated list of serving-stack
// descriptions ("kv/qps=800/slo=5ms,bank/qps=200/slo=20ms").
func ParseServeSpecs(s string) ([]ServeSpec, error) {
	var out []ServeSpec
	for _, part := range strings.Split(s, ",") {
		spec, err := ParseServeSpec(part)
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

// Build assembles the stack on its own STM runtime. workers bounds the
// parallelism; seed derives every random stream (arrival, keys, pool), so
// the same spec at the same seed offers the same schedule. The stack name
// carries the spec's shape ("kv/poisson") for the results table; callers
// dedupe with an index when co-locating identical specs.
func (s ServeSpec) Build(engine string, workers int, seed int64) (ServeProc, error) {
	var proc ServeProc
	algo, err := ParseEngine(engine)
	if err != nil {
		return proc, err
	}
	cfg := load.Config{Workers: workers, Seed: seed}
	var rt *stm.Runtime
	switch s.Workload {
	case "kv":
		rt = stm.New(stm.Config{Algorithm: algo})
		kv := load.NewKV(rt, load.KVConfig{})
		keys, err := load.NewZipf(uint64(kv.Keys()), s.Theta, seed)
		if err != nil {
			return proc, err
		}
		cfg.Workload, cfg.Keys = kv, keys
	case "ordered":
		rt = stm.New(stm.Config{Algorithm: algo})
		ord := load.NewOrdered(rt, load.OrderedConfig{})
		keys, err := load.NewZipf(uint64(ord.Keys()), s.Theta, seed)
		if err != nil {
			return proc, err
		}
		cfg.Workload, cfg.Keys = ord, keys
	case "shardedkv":
		if s.Adaptive != "" {
			return proc, fmt.Errorf("colocate: adaptive engine switching is per-runtime; use the sharded runtime's own SwitchEngine instead of adaptive= with shardedkv")
		}
		shards := s.Shards
		if shards <= 0 {
			shards = workers
		}
		sr := stm.NewSharded(shards, stm.Config{Algorithm: algo})
		skv := load.NewShardedKV(sr, load.KVConfig{})
		keys, err := load.NewZipf(uint64(skv.Keys()), s.Theta, seed)
		if err != nil {
			return proc, err
		}
		cfg.Workload, cfg.Keys = skv, keys
		// Durability needs a single commit critical section; the sharded
		// runtime deliberately has none (stm.ErrCrossShardDurable), so the
		// stack carries no Runtime and AttachDurability rejects it.
		rt = nil
	default:
		w, wrt, err := workloads.New(s.Workload, stm.Config{Algorithm: algo})
		if err != nil {
			return proc, err
		}
		cfg.Workload, rt = w, wrt
	}
	cfg.Arrival, err = load.NewArrival(s.Arrival, s.QPS, seed)
	if err != nil {
		return proc, err
	}
	switch s.Policy {
	case "slo":
		cfg.SLO = &core.SLOPolicy{TargetP99: s.SLO}
	case "rubic":
		cfg.Controller = core.NewRUBIC(core.RUBICConfig{MaxLevel: workers, InitialLevel: workers})
	case "fixed":
		// pinned at workers
	default:
		return proc, fmt.Errorf("colocate: serve policy %q (want slo, rubic or fixed)", s.Policy)
	}
	if s.Adaptive != "" {
		// policy=slo binds the guard later (NewServeGroup, once the server
		// builds it); policy=rubic re-anchors the bare controller directly.
		stack, err := NewAdaptiveStack(rt, cfg.Controller, s.Adaptive, core.AdaptiveConfig{})
		if err != nil {
			return proc, err
		}
		cfg.Adapter = stack
		proc.Adaptive = stack
	}
	proc.Name = s.Workload + "/" + s.Arrival
	proc.Config = cfg
	proc.Runtime = rt
	return proc, nil
}
