package colocate

import (
	"testing"
	"time"

	"rubic/internal/stamp/bank"
	"rubic/internal/stm"
	"rubic/internal/wal"
)

// TestDurableStackSurvivesRestart is the in-process restart round trip: a
// bank stack runs with a WAL attached, stops cleanly, and a second
// incarnation over the same directory recovers every committed transfer and
// passes the workload's own verification (Run re-audits Verify for us).
func TestDurableStackSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(incarnation int) *WalResult {
		rt := stm.New(stm.Config{})
		w := bank.New(rt, bank.Config{Accounts: 64})
		g, err := NewGroup([]Proc{{
			Name:     "bank",
			Workload: w,
			PoolSize: 4,
			Seed:     int64(incarnation),
			Runtime:  rt,
			Durable:  &wal.Options{Dir: dir, Policy: wal.FsyncOS},
		}}, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Run(150 * time.Millisecond)
		if err != nil {
			t.Fatalf("incarnation %d: %v", incarnation, err)
		}
		if res[0].Wal == nil {
			t.Fatalf("incarnation %d: no WAL result on a durable stack", incarnation)
		}
		return res[0].Wal
	}

	first := runOnce(1)
	if first.Lost {
		t.Fatalf("first run lost durability: %v", first.LostErr)
	}
	if first.Recovered.LastCSN != 0 {
		t.Fatalf("fresh directory recovered CSN %d", first.Recovered.LastCSN)
	}
	if first.LastCSN == 0 {
		t.Fatal("first run committed nothing durable")
	}
	if first.DurableCSN != first.LastCSN {
		t.Fatalf("clean close left CSN %d durable of %d issued", first.DurableCSN, first.LastCSN)
	}

	second := runOnce(2)
	if second.Recovered.LastCSN != first.LastCSN {
		t.Fatalf("second incarnation recovered CSN %d, want the first run's %d",
			second.Recovered.LastCSN, first.LastCSN)
	}
	if second.Recovered.Torn {
		t.Fatalf("clean shutdown recovered as torn: %s", second.Recovered.Note)
	}
	if second.LastCSN <= first.LastCSN {
		t.Fatalf("second incarnation's CSNs (%d) did not continue past %d",
			second.LastCSN, first.LastCSN)
	}
}

// TestAttachDurabilityRejectsUnsupportedWorkload: a workload without
// DurableState is a configuration error, caught before traffic.
func TestAttachDurabilityRejectsUnsupportedWorkload(t *testing.T) {
	rt := stm.New(stm.Config{})
	if _, err := AttachDurability(brokenWorkload{}, rt, wal.Options{Dir: t.TempDir()}); err == nil {
		t.Fatal("attached durability to a workload with no durable state")
	}
}
