package colocate

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"rubic/internal/core"
	"rubic/internal/fault"
	"rubic/internal/pool"
	"rubic/internal/stamp/rbtree"
	"rubic/internal/stm"
)

func mkProc(name string, seed int64) Proc {
	return Proc{
		Name:     name,
		Workload: rbtree.New(stm.New(stm.Config{}), rbtree.Config{Elements: 1024, LookupPct: 100}),
		Controller: core.NewRUBIC(core.RUBICConfig{
			MaxLevel: 4,
		}),
		PoolSize: 4,
		Seed:     seed,
	}
}

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(nil, 0); err == nil {
		t.Fatal("empty group accepted")
	}
	p := mkProc("a", 1)
	p.Workload = nil
	if _, err := NewGroup([]Proc{p}, 0); err == nil {
		t.Fatal("nil workload accepted")
	}
	p = mkProc("a", 1)
	p.PoolSize = 0
	if _, err := NewGroup([]Proc{p}, 0); err == nil {
		t.Fatal("zero pool accepted")
	}
	if _, err := NewGroup([]Proc{mkProc("a", 1), mkProc("a", 2)}, 0); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestRunValidation(t *testing.T) {
	g, err := NewGroup([]Proc{mkProc("a", 1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err == nil {
		t.Fatal("zero duration accepted")
	}
	p := mkProc("late", 1)
	p.ArrivalDelay = time.Second
	g, err = NewGroup([]Proc{p}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(100 * time.Millisecond); err == nil {
		t.Fatal("arrival after end accepted")
	}
}

func TestTwoStacksRun(t *testing.T) {
	g, err := NewGroup([]Proc{mkProc("P1", 1), mkProc("P2", 2)}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	results, err := g.Run(300 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Completed == 0 {
			t.Errorf("%s completed nothing", r.Name)
		}
		if r.Levels == nil || r.Levels.Len() == 0 {
			t.Errorf("%s recorded no levels", r.Name)
		}
		if r.MeanLevel < 1 || r.MeanLevel > 4 {
			t.Errorf("%s mean level %v out of range", r.Name, r.MeanLevel)
		}
	}
}

func TestStaggeredArrival(t *testing.T) {
	p1 := mkProc("early", 1)
	p2 := mkProc("late", 2)
	p2.ArrivalDelay = 150 * time.Millisecond
	g, err := NewGroup([]Proc{p1, p2}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	results, err := g.Run(300 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Completed == 0 {
		t.Fatal("late stack never ran")
	}
	// The late stack had roughly half the time; its controller must have
	// recorded fewer rounds than the early one.
	if results[1].Levels.Len() >= results[0].Levels.Len() {
		t.Errorf("late stack recorded %d rounds, early %d; expected fewer",
			results[1].Levels.Len(), results[0].Levels.Len())
	}
}

// brokenWorkload sabotages pool construction by returning a nil task.
type brokenWorkload struct{}

func (brokenWorkload) Name() string               { return "broken" }
func (brokenWorkload) Setup(rng *rand.Rand) error { return nil }
func (brokenWorkload) Task() pool.Task            { return nil }
func (brokenWorkload) Verify() error              { return nil }

func TestFailingStackAbortsGroupPromptly(t *testing.T) {
	healthy := mkProc("healthy", 1)
	broken := Proc{
		Name:     "broken",
		Workload: brokenWorkload{},
		PoolSize: 2,
		Seed:     2,
		// Delay the failure so the healthy stack is already mid-run.
		ArrivalDelay: 50 * time.Millisecond,
	}
	g, err := NewGroup([]Proc{healthy, broken}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = g.Run(10 * time.Second)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("broken stack went unreported")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error does not name the failing stack: %v", err)
	}
	// The healthy stack must have been cut short, not run the full 10 s.
	if elapsed > 3*time.Second {
		t.Fatalf("group ran %v after a stack failed; want a prompt abort", elapsed)
	}
}

// wedgedWorkload's tasks never return, so its pool's Stop can never finish:
// the stack is unrecoverable in-process and teardown must route around it.
type wedgedWorkload struct{ block chan struct{} }

func (w wedgedWorkload) Name() string           { return "wedged" }
func (w wedgedWorkload) Setup(*rand.Rand) error { return nil }
func (w wedgedWorkload) Verify() error          { return nil }
func (w wedgedWorkload) Task() pool.Task {
	return func(int, *rand.Rand) bool { <-w.block; return true }
}

// TestWedgedStackBoundedTeardown is the graceful-shutdown regression: a
// stack wedged inside a task must not hang Run past the grace period, the
// error must name it, and the healthy sibling's results must survive.
func TestWedgedStackBoundedTeardown(t *testing.T) {
	block := make(chan struct{})
	defer close(block) // release the leaked workers once the test is done
	healthy := mkProc("healthy", 1)
	stuck := Proc{Name: "stuck", Workload: wedgedWorkload{block: block}, PoolSize: 2, Seed: 2}
	g, err := NewGroup([]Proc{healthy, stuck}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	g.Grace = 300 * time.Millisecond
	start := time.Now()
	results, err := g.Run(200 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("wedged stack unreported or unnamed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("teardown hung %v on a wedged stack", elapsed)
	}
	if results[0].Completed == 0 {
		t.Error("healthy sibling's results lost to the wedged stack")
	}
}

// TestStackFaultsAndHealthWiring: a Proc-level fault plan reaches the
// stack's pool (injected panics surface in Result.Faults) and a health
// policy wraps its controller without disturbing a clean run.
func TestStackFaultsAndHealthWiring(t *testing.T) {
	p := mkProc("chaotic", 5)
	p.Faults = fault.New(&fault.Plan{Seed: 2, Events: []fault.Event{
		{Point: fault.WorkerPanic, From: 3, Count: 2},
	}})
	p.Health = &core.HealthPolicy{FallbackLevel: 2}
	g, err := NewGroup([]Proc{p}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	results, err := g.Run(300 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Faults != 2 {
		t.Errorf("injected panics not surfaced: Faults = %d, want 2", results[0].Faults)
	}
	if results[0].Completed == 0 {
		t.Error("stack made no progress around the injected panics")
	}
}

func TestGreedyStack(t *testing.T) {
	p := mkProc("greedy", 3)
	p.Controller = nil // pinned at pool size
	g, err := NewGroup([]Proc{p}, 0)
	if err != nil {
		t.Fatal(err)
	}
	results, err := g.Run(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].MeanLevel != 4 {
		t.Fatalf("greedy mean level = %v, want 4", results[0].MeanLevel)
	}
}
