package colocate

import (
	"fmt"
	"strings"
	"time"

	"rubic/internal/core"
	"rubic/internal/stamp"
	"rubic/internal/stamp/workloads"
	"rubic/internal/stm"
)

// StackSpec is the parsed form of one "workload:policy[@arrivalDelay]"
// stack description. It is the shared currency between the goroutine-mode
// co-location driver (this package's Group) and the process-mode supervisor
// (internal/mproc): both assemble the same workload/controller stack from it,
// so every spec accepted by one mode runs unchanged in the other.
type StackSpec struct {
	// Workload names a benchmark from internal/stamp/workloads.
	Workload string
	// Policy names a controller from core.ByName, or "greedy" for a pinned
	// full-size pool (no controller).
	Policy string
	// ArrivalDelay postpones the stack's start relative to the group's.
	ArrivalDelay time.Duration
}

// ParseSpec parses one "workload:policy[@arrivalDelay]" description.
func ParseSpec(s string) (StackSpec, error) {
	var spec StackSpec
	if at := strings.IndexByte(s, '@'); at >= 0 {
		d, err := time.ParseDuration(s[at+1:])
		if err != nil {
			return spec, fmt.Errorf("colocate: bad arrival delay in %q: %w", s, err)
		}
		spec.ArrivalDelay = d
		s = s[:at]
	}
	parts := strings.Split(s, ":")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return spec, fmt.Errorf("colocate: bad stack spec %q (want workload:policy[@delay])", s)
	}
	spec.Workload, spec.Policy = parts[0], parts[1]
	return spec, nil
}

// ParseSpecs parses a comma-separated list of stack descriptions.
func ParseSpecs(s string) ([]StackSpec, error) {
	var out []StackSpec
	for _, part := range strings.Split(s, ",") {
		spec, err := ParseSpec(part)
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

// ParseEngine maps an engine name to its STM algorithm.
func ParseEngine(name string) (stm.Algorithm, error) {
	switch name {
	case "tl2":
		return stm.TL2, nil
	case "norec":
		return stm.NOrec, nil
	}
	return 0, fmt.Errorf("colocate: unknown stm engine %q (want tl2 or norec)", name)
}

// Build assembles the stack: a fresh workload on its own STM runtime plus the
// spec's controller (nil for "greedy" — the caller pins the pool instead).
// poolSize bounds the controller's level; processes is the co-located stack
// count (the equalshare policy divides the machine by it).
func (s StackSpec) Build(engine string, poolSize, processes int) (stamp.Workload, *stm.Runtime, core.Controller, error) {
	algo, err := ParseEngine(engine)
	if err != nil {
		return nil, nil, nil, err
	}
	w, rt, err := workloads.New(s.Workload, stm.Config{Algorithm: algo})
	if err != nil {
		return nil, nil, nil, err
	}
	var ctrl core.Controller
	if s.Policy != "greedy" {
		fac, err := core.ByName(s.Policy, poolSize, processes, poolSize)
		if err != nil {
			return nil, nil, nil, err
		}
		ctrl = fac()
	}
	return w, rt, ctrl, nil
}
