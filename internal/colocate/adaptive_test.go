package colocate

import (
	"testing"

	"rubic/internal/core"
	"rubic/internal/stm"
)

func TestParseCM(t *testing.T) {
	for name, want := range map[string]string{
		"":          stm.BackoffCM{}.Name(),
		"backoff":   stm.BackoffCM{}.Name(),
		"suicide":   stm.SuicideCM{}.Name(),
		"greedy":    stm.GreedyCM{}.Name(),
		"two-phase": stm.TwoPhaseCM{}.Name(),
		"twophase":  stm.TwoPhaseCM{}.Name(),
		"karma":     stm.KarmaCM{}.Name(),
		"polka":     stm.PolkaCM{}.Name(),
	} {
		ctor, err := ParseCM(name)
		if err != nil {
			t.Fatalf("ParseCM(%q): %v", name, err)
		}
		if got := ctor().Name(); got != want {
			t.Fatalf("ParseCM(%q) built %q, want %q", name, got, want)
		}
	}
	if _, err := ParseCM("aggressive"); err == nil {
		t.Fatal("unknown contention manager accepted")
	}
}

func TestParseAdaptive(t *testing.T) {
	t.Run("slash_and_colon_mix", func(t *testing.T) {
		// ':' rides inside serve specs (whose options are '/'-delimited), '/'
		// is the flag syntax; both must parse to the same candidates.
		for _, spec := range []string{"tl2/backoff+norec/greedy", "tl2:backoff+norec:greedy"} {
			cands, err := ParseAdaptive(spec)
			if err != nil {
				t.Fatalf("ParseAdaptive(%q): %v", spec, err)
			}
			if len(cands) != 2 {
				t.Fatalf("%q parsed to %d candidates", spec, len(cands))
			}
			if cands[0].Name != "tl2/backoff" || cands[0].Engine != stm.TL2 {
				t.Fatalf("%q candidate 0: %+v", spec, cands[0])
			}
			if cands[1].Name != "norec/greedy" || cands[1].Engine != stm.NOrec {
				t.Fatalf("%q candidate 1: %+v", spec, cands[1])
			}
			if got := cands[1].CM().Name(); got != (stm.GreedyCM{}).Name() {
				t.Fatalf("%q candidate 1 CM %q", spec, got)
			}
		}
	})
	t.Run("cm_defaults_to_backoff", func(t *testing.T) {
		cands, err := ParseAdaptive("norec")
		if err != nil {
			t.Fatal(err)
		}
		if cands[0].Name != "norec/backoff" || cands[0].CM().Name() != (stm.BackoffCM{}).Name() {
			t.Fatalf("bare engine candidate %+v with CM %q", cands[0], cands[0].CM().Name())
		}
	})
	t.Run("rejects", func(t *testing.T) {
		for _, spec := range []string{
			"",                          // empty
			"   ",                       // blank
			"tl2+tl2/backoff",           // duplicate after CM defaulting
			"norec/greedy+norec:greedy", // duplicate across separator styles
			"stmx/backoff",              // unknown engine
			"tl2/aggressive",            // unknown CM
		} {
			if _, err := ParseAdaptive(spec); err == nil {
				t.Fatalf("ParseAdaptive(%q) accepted", spec)
			}
		}
	})
}

// TestAdaptiveStackActuatesFirstCandidate: construction installs candidate 0
// — engine and a freshly built CM — before any epoch runs, so the stack never
// serves on a configuration outside its candidate list.
func TestAdaptiveStackActuatesFirstCandidate(t *testing.T) {
	rt := stm.New(stm.Config{Algorithm: stm.TL2})
	stack, err := NewAdaptiveStack(rt, nil, "norec/greedy+tl2/backoff", core.AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Algorithm(); got != stm.NOrec {
		t.Fatalf("runtime on %s after construction, want norec", got.String())
	}
	if got := rt.ContentionManagerName(); got != (stm.GreedyCM{}).Name() {
		t.Fatalf("CM %q after construction, want greedy", got)
	}
	if stack.Handoffs() != 1 {
		t.Fatalf("handoffs %d after the construction switch, want 1", stack.Handoffs())
	}
	if names := stack.Policy().Candidates(); len(names) != 2 || names[0] != "norec/greedy" {
		t.Fatalf("policy candidates %v", names)
	}
}

// TestAdaptiveStackEpochDrivesSwitches walks a two-candidate probe sweep
// through Epoch: each call samples the runtime profile, feeds the policy, and
// actuates the decision — the engine handoff and CM swap land on the runtime.
func TestAdaptiveStackEpochDrivesSwitches(t *testing.T) {
	rt := stm.New(stm.Config{Algorithm: stm.TL2})
	stack, err := NewAdaptiveStack(rt, nil, "tl2/backoff+norec/greedy", core.AdaptiveConfig{
		Window: 1,
		Warmup: -1, // no warmup: every epoch scores
	})
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1 closes candidate 0's window and probes candidate 1: the stack
	// must be on norec/greedy afterwards.
	stack.Epoch(50)
	if rt.Algorithm() != stm.NOrec || rt.ContentionManagerName() != (stm.GreedyCM{}).Name() {
		t.Fatalf("after probe switch: %s/%s, want norec/greedy",
			rt.Algorithm().String(), rt.ContentionManagerName())
	}
	if stack.Handoffs() != 1 {
		t.Fatalf("handoffs %d, want 1", stack.Handoffs())
	}
	// Epoch 2 closes candidate 1's window; the sweep settles on the higher
	// score — candidate 1, already running, so no further handoff.
	stack.Epoch(100)
	if stack.Policy().Current() != 1 {
		t.Fatalf("settled on candidate %d, want 1", stack.Policy().Current())
	}
	if rt.Algorithm() != stm.NOrec || stack.Handoffs() != 1 {
		t.Fatalf("settling flapped the runtime: %s, %d handoffs",
			rt.Algorithm().String(), stack.Handoffs())
	}
	// The runtime keeps committing on the swapped stack.
	v := stm.NewVar(0)
	if err := rt.Atomic(func(tx *stm.Tx) error { v.Write(tx, 1); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveStackReanchorsController: an engine handoff exports the bound
// controller's state at the handoff instant and restores it un-epoched — the
// learned level and anchor survive, the cubic round count restarts.
func TestAdaptiveStackReanchorsController(t *testing.T) {
	rt := stm.New(stm.Config{Algorithm: stm.TL2})
	ctrl := core.NewRUBIC(core.RUBICConfig{MaxLevel: 16, InitialLevel: 6})
	stack, err := NewAdaptiveStack(rt, ctrl, "tl2/backoff+norec/backoff", core.AdaptiveConfig{
		Window: 1,
		Warmup: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let the controller learn a level above its anchor floor.
	for i := 0; i < 3; i++ {
		ctrl.Next(float64(100 + i))
	}
	before, ok := core.StateOf(ctrl)
	if !ok {
		t.Fatal("RUBIC not resumable")
	}
	stack.Epoch(50) // probe switch tl2 -> norec: handoff + re-anchor
	if stack.Handoffs() != 1 {
		t.Fatalf("handoffs %d, want 1", stack.Handoffs())
	}
	after, _ := core.StateOf(ctrl)
	// Growth can leave the level above the anchor; the restore path then
	// normalizes the anchor up to the level rather than aiming growth below it.
	wantWMax := before.WMax
	if wantWMax < before.Level {
		wantWMax = before.Level
	}
	if after.Level != before.Level || after.WMax != wantWMax {
		t.Fatalf("handoff moved the controller: %+v -> %+v (want level %v, wmax %v)",
			before, after, before.Level, wantWMax)
	}
	if after.Epoch != 0 {
		t.Fatalf("handoff kept the cubic round count %v, want a restart at 0", after.Epoch)
	}
}

// TestAdaptiveStackRestore: a restored stack adopts the predecessor's
// candidate and actuates it — runtime engine included — without a sweep.
func TestAdaptiveStackRestore(t *testing.T) {
	rt := stm.New(stm.Config{Algorithm: stm.TL2})
	stack, err := NewAdaptiveStack(rt, nil, "tl2/backoff+norec/greedy", core.AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if stack.Restore(core.AdaptiveState{Candidate: "stmx/none"}) {
		t.Fatal("restore accepted an unknown candidate")
	}
	if !stack.Restore(core.AdaptiveState{Candidate: "norec/greedy", Phase: "settled", Reference: 80, Switches: 3}) {
		t.Fatal("restore rejected a known candidate")
	}
	if rt.Algorithm() != stm.NOrec || rt.ContentionManagerName() != (stm.GreedyCM{}).Name() {
		t.Fatalf("restore left the runtime on %s/%s, want norec/greedy",
			rt.Algorithm().String(), rt.ContentionManagerName())
	}
	st := stack.State()
	if st.Candidate != "norec/greedy" || st.Phase != "settled" || st.Switches != 3 {
		t.Fatalf("state after restore %+v", st)
	}
}

func TestServeSpecAdaptiveKey(t *testing.T) {
	spec, err := ParseServeSpec("kv/qps=400/slo=5ms/adaptive=tl2:backoff+norec:greedy")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Adaptive != "tl2:backoff+norec:greedy" {
		t.Fatalf("adaptive option parsed to %q", spec.Adaptive)
	}
	proc, err := spec.Build("tl2", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if proc.Adaptive == nil || proc.Config.Adapter == nil {
		t.Fatal("built serve proc has no adaptive stack wired")
	}
	if proc.Config.Adapter.(*AdaptiveStack) != proc.Adaptive {
		t.Fatal("Config.Adapter and proc.Adaptive are different stacks")
	}
	// A bad candidate list inside a serve spec surfaces at Build.
	spec.Adaptive = "tl2:nope"
	if _, err := spec.Build("tl2", 4, 1); err == nil {
		t.Fatal("Build accepted an unknown adaptive CM")
	}
}
