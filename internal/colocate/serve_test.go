package colocate

import (
	"testing"
	"time"

	"rubic/internal/core"
	"rubic/internal/load"
	"rubic/internal/stm"
)

func serveKVProc(t *testing.T, name string, qps float64, slo *core.SLOPolicy, seed int64) ServeProc {
	t.Helper()
	rt := stm.New(stm.Config{})
	kv := load.NewKV(rt, load.KVConfig{Keys: 300})
	keys, err := load.NewZipf(uint64(kv.Keys()), load.DefaultTheta, seed)
	if err != nil {
		t.Fatal(err)
	}
	a, err := load.NewPoisson(qps, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ServeProc{Name: name, Config: load.Config{
		Workload: kv,
		Arrival:  a,
		Keys:     keys,
		Workers:  3,
		SLO:      slo,
		Epoch:    100 * time.Millisecond,
		Seed:     seed,
	}}
}

// TestServeGroupDifferentSLOs is the co-location contract for open-loop
// stacks: two stacks with different p99 targets run side by side, and each
// guard judges only its own stack — the generous SLO ends meeting while the
// unreachable one is forced to cut, in the same process at the same time.
func TestServeGroupDifferentSLOs(t *testing.T) {
	procs := []ServeProc{
		serveKVProc(t, "lenient", 300, &core.SLOPolicy{TargetP99: 250 * time.Millisecond}, 41),
		serveKVProc(t, "strict", 300, &core.SLOPolicy{TargetP99: time.Nanosecond, BreachAfter: 1}, 43),
	}
	g, err := NewServeGroup(procs)
	if err != nil {
		t.Fatal(err)
	}
	results, err := g.Run(900 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Name != "lenient" || results[1].Name != "strict" {
		t.Fatalf("results out of input order: %v, %v", results[0].Name, results[1].Name)
	}
	lenient, strict := results[0], results[1]
	if lenient.SLOState != "meeting" || lenient.SLO.Cuts != 0 {
		t.Fatalf("lenient stack %q with %d cuts (%+v), want meeting with none", lenient.SLOState, lenient.SLO.Cuts, lenient.SLO)
	}
	if strict.SLO.Cuts == 0 {
		t.Fatalf("strict stack's unreachable SLO produced no cuts: %+v", strict.SLO)
	}
	for _, r := range results {
		if r.Completed == 0 {
			t.Fatalf("stack %s served nothing", r.Name)
		}
	}
}

func TestServeGroupValidation(t *testing.T) {
	if _, err := NewServeGroup(nil); err == nil {
		t.Fatal("empty group accepted")
	}
	p := serveKVProc(t, "a", 100, nil, 1)
	if _, err := NewServeGroup([]ServeProc{p, serveKVProc(t, "a", 100, nil, 2)}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	bad := p
	bad.Name = ""
	if _, err := NewServeGroup([]ServeProc{bad}); err == nil {
		t.Fatal("unnamed stack accepted")
	}
	bad = p
	bad.Config.Workers = 0
	bad.Name = "b"
	if _, err := NewServeGroup([]ServeProc{bad}); err == nil {
		t.Fatal("invalid stack config accepted")
	}
}

func TestParseServeSpecs(t *testing.T) {
	specs, err := ParseServeSpecs("kv/qps=800/slo=5ms,bank/qps=200/arrival=diurnal/policy=rubic/theta=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("parsed %d specs, want 2", len(specs))
	}
	a, b := specs[0], specs[1]
	if a.Workload != "kv" || a.QPS != 800 || a.SLO != 5*time.Millisecond || a.Policy != "slo" || a.Arrival != "poisson" {
		t.Fatalf("spec a = %+v (policy must default to slo when a target is set)", a)
	}
	if a.Theta != load.DefaultTheta {
		t.Fatalf("spec a theta %v, want default %v", a.Theta, load.DefaultTheta)
	}
	if b.Workload != "bank" || b.Arrival != "diurnal" || b.Policy != "rubic" || b.SLO != 0 || b.Theta != 0.5 {
		t.Fatalf("spec b = %+v", b)
	}
	if c, err := ParseServeSpec("kv/qps=100"); err != nil || c.Policy != "fixed" {
		t.Fatalf("no-SLO spec: %+v, %v (policy must default to fixed)", c, err)
	}

	for _, bad := range []string{
		"",                      // no workload
		"kv",                    // no qps
		"kv/qps=0",              // zero qps
		"kv/qps",                // option without value
		"kv/qps=800/warp=1",     // unknown option
		"kv/qps=800/slo=fast",   // unparsable duration
		"kv/qps=800/policy=slo", // slo policy without a target
	} {
		if _, err := ParseServeSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestServeSpecBuild(t *testing.T) {
	spec, err := ParseServeSpec("kv/qps=100/slo=10ms")
	if err != nil {
		t.Fatal(err)
	}
	proc, err := spec.Build("tl2", 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if proc.Name != "kv/poisson" {
		t.Fatalf("proc name %q", proc.Name)
	}
	cfg := proc.Config
	if cfg.Keys == nil || cfg.SLO == nil || cfg.SLO.TargetP99 != 10*time.Millisecond || cfg.Workers != 4 {
		t.Fatalf("built config missing pieces: keys=%v slo=%+v workers=%d", cfg.Keys != nil, cfg.SLO, cfg.Workers)
	}
	if _, ok := cfg.Workload.(load.Keyed); !ok {
		t.Fatal("kv workload must be keyed")
	}

	// Unkeyed stamp workloads build too — they serve through the Task path.
	spec, err = ParseServeSpec("bank/qps=50/policy=rubic")
	if err != nil {
		t.Fatal(err)
	}
	proc, err = spec.Build("norec", 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if proc.Config.Controller == nil || proc.Config.SLO != nil || proc.Config.Keys != nil {
		t.Fatalf("rubic-policy bank stack built wrong: %+v", proc.Config)
	}

	// The keyed ordered-index and range-sharded workloads build too.
	spec, err = ParseServeSpec("ordered/qps=100/slo=10ms")
	if err != nil {
		t.Fatal(err)
	}
	proc, err = spec.Build("tl2", 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := proc.Config.Workload.(load.Keyed); !ok || proc.Config.Keys == nil {
		t.Fatal("ordered workload must be keyed with a Zipf generator")
	}
	spec, err = ParseServeSpec("shardedkv/qps=100/shards=4")
	if err != nil {
		t.Fatal(err)
	}
	proc, err = spec.Build("tl2", 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := proc.Config.Workload.(load.Keyed); !ok {
		t.Fatal("shardedkv workload must be keyed")
	}
	if proc.Runtime != nil {
		t.Fatal("shardedkv stack must not carry a single runtime (no durability)")
	}
	spec.Adaptive = "tl2:backoff+norec:greedy"
	if _, err := spec.Build("tl2", 2, 7); err == nil {
		t.Fatal("adaptive shardedkv accepted; engine hot-swap is per-runtime")
	}

	if _, err := spec.Build("warp-stm", 2, 7); err == nil {
		t.Fatal("unknown engine accepted")
	}
	spec.Policy = "entropy"
	if _, err := spec.Build("tl2", 2, 7); err == nil {
		t.Fatal("unknown policy accepted")
	}
	spec.Workload, spec.Policy = "warpload", "fixed"
	if _, err := spec.Build("tl2", 2, 7); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
