package colocate

import (
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("rbtree-ro:rubic@250ms")
	if err != nil {
		t.Fatal(err)
	}
	if s.Workload != "rbtree-ro" || s.Policy != "rubic" || s.ArrivalDelay != 250*time.Millisecond {
		t.Fatalf("parsed %+v", s)
	}
	s, err = ParseSpec("bank:greedy")
	if err != nil {
		t.Fatal(err)
	}
	if s.Workload != "bank" || s.Policy != "greedy" || s.ArrivalDelay != 0 {
		t.Fatalf("parsed %+v", s)
	}
	for _, bad := range []string{"", "rbtree", "rbtree:", ":rubic", "a:b:c", "rbtree:rubic@x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("rbtree-ro:rubic,bank:ebs@1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[1].ArrivalDelay != time.Second {
		t.Fatalf("parsed %+v", specs)
	}
	if _, err := ParseSpecs("rbtree-ro:rubic,broken"); err == nil {
		t.Error("accepted list with a broken member")
	}
}

func TestParseEngine(t *testing.T) {
	if _, err := ParseEngine("tl2"); err != nil {
		t.Error(err)
	}
	if _, err := ParseEngine("norec"); err != nil {
		t.Error(err)
	}
	if _, err := ParseEngine("quantum"); err == nil {
		t.Error("accepted unknown engine")
	}
}

func TestSpecBuild(t *testing.T) {
	w, rt, ctrl, err := StackSpec{Workload: "rbtree-ro", Policy: "rubic"}.Build("tl2", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil || rt == nil || ctrl == nil {
		t.Fatal("incomplete stack")
	}
	if ctrl.Name() != "rubic" {
		t.Errorf("controller %q", ctrl.Name())
	}

	// greedy builds no controller: the caller pins the pool instead.
	_, _, ctrl, err = StackSpec{Workload: "bank", Policy: "greedy"}.Build("norec", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl != nil {
		t.Error("greedy built a controller")
	}

	for _, bad := range []StackSpec{
		{Workload: "nope", Policy: "rubic"},
		{Workload: "rbtree", Policy: "nope"},
	} {
		if _, _, _, err := bad.Build("tl2", 4, 1); err == nil {
			t.Errorf("built %+v", bad)
		}
	}
	if _, _, _, err := (StackSpec{Workload: "rbtree", Policy: "rubic"}).Build("quantum", 4, 1); err == nil {
		t.Error("built with unknown engine")
	}
}
