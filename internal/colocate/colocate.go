// Package colocate runs several independent application stacks — each with
// its own workload, worker pool and parallelism controller — side by side in
// one OS process, standing in for the paper's co-located processes on hosts
// where spawning real processes with shared hardware contexts is not
// practical. The stacks share nothing but the CPU: controllers observe only
// their own pool's commit counters and decide unilaterally, exactly as the
// paper requires.
package colocate

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rubic/internal/core"
	"rubic/internal/fault"
	"rubic/internal/pool"
	"rubic/internal/stamp"
	"rubic/internal/stm"
	"rubic/internal/trace"
	"rubic/internal/wal"
)

// Proc describes one co-located application stack.
type Proc struct {
	// Name labels the stack in results.
	Name string
	// Workload provides the tasks (it owns its STM runtime).
	Workload stamp.Workload
	// Controller steers the stack's pool; nil pins the level at PoolSize.
	Controller core.Controller
	// PoolSize is the stack's worker count.
	PoolSize int
	// Seed derives the stack's random streams.
	Seed int64
	// ArrivalDelay postpones the stack's start relative to the group's,
	// reproducing the staggered arrivals of the paper's section 4.6.
	ArrivalDelay time.Duration
	// Faults, when non-nil, drives the stack's pool and controller injection
	// points (see internal/fault); nil keeps them inert.
	Faults *fault.Injector
	// Health, when non-nil, wraps the controller in a telemetry health guard
	// with this policy (hold on bad ticks, degrade to the fallback level).
	Health *core.HealthPolicy
	// Adapter, when non-nil, is driven once per tuner tick after actuation —
	// the hook an AdaptiveStack uses to hot-swap the stack's engine and
	// contention manager at epoch boundaries. It requires a Controller (the
	// tuner is what delivers epochs).
	Adapter core.Adapter
	// Durable, when non-nil, opens (or recovers) a write-ahead log in
	// Durable.Dir after Setup and before traffic, attaches it to Runtime as
	// the commit sink, and closes it at teardown (see AttachDurability). The
	// workload must implement wal.DurableState and Runtime must be its own
	// runtime.
	Durable *wal.Options
	// Runtime is the workload's STM runtime; required only when Durable is
	// set.
	Runtime *stm.Runtime
}

// Result is one stack's outcome.
type Result struct {
	Name string
	// Completed is the number of finished tasks.
	Completed uint64
	// Throughput is Completed over the stack's own active time.
	Throughput float64
	// MeanLevel is the time-averaged parallelism level (PoolSize when no
	// controller is attached).
	MeanLevel float64
	// Levels traces the controller's decisions (nil without a controller).
	Levels *trace.Series
	// Faults is the pool's recovered-panic count over the run.
	Faults uint64
	// Wal summarizes the stack's durability outcome (nil without Durable).
	Wal *WalResult
}

// WalResult is one durable stack's log outcome.
type WalResult struct {
	// Recovered describes what the log replayed at open.
	Recovered wal.Recovered
	// LastCSN is the highest commit sequence number issued this run.
	LastCSN uint64
	// DurableCSN is the highest CSN known persisted at close.
	DurableCSN uint64
	// Lost reports that the log degraded to in-memory mode (fsync failure or
	// torn write); LostErr carries the cause. A lost log does not fail the
	// run — the stack keeps serving, explicitly non-durable — it is the
	// caller's signal to alarm.
	Lost    bool
	LostErr error
}

// Group is a set of co-located stacks.
type Group struct {
	procs  []Proc
	period time.Duration
	// Grace bounds Run's teardown: once the run deadline passes, stacks get
	// this much longer to stop before Run gives up on them and returns an
	// error naming the wedged stacks instead of hanging (default 5 s).
	Grace time.Duration
}

// NewGroup validates the stacks and returns a group. period is the
// controllers' monitoring period (default 10 ms).
func NewGroup(procs []Proc, period time.Duration) (*Group, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("colocate: no stacks")
	}
	names := map[string]struct{}{}
	for i, p := range procs {
		if p.Workload == nil {
			return nil, fmt.Errorf("colocate: stack %d (%s) has no workload", i, p.Name)
		}
		if p.PoolSize < 1 {
			return nil, fmt.Errorf("colocate: stack %d (%s) pool size %d", i, p.Name, p.PoolSize)
		}
		if _, dup := names[p.Name]; dup {
			return nil, fmt.Errorf("colocate: duplicate stack name %q", p.Name)
		}
		names[p.Name] = struct{}{}
	}
	if period <= 0 {
		period = core.DefaultPeriod
	}
	return &Group{procs: procs, period: period}, nil
}

// Run sets up every workload, starts the stacks (honoring arrival delays),
// lets the group run for the given duration, stops everything, verifies all
// workload invariants and returns per-stack results in input order.
func (g *Group) Run(duration time.Duration) ([]Result, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("colocate: duration must be positive")
	}
	// Setup is sequential and up front so arrival delays measure pure
	// execution, not population. Durable stacks open (and possibly recover)
	// their logs here too, before any traffic exists to log.
	logs := make([]*wal.Log, len(g.procs))
	for i := range g.procs {
		p := &g.procs[i]
		if err := p.Workload.Setup(rand.New(rand.NewSource(p.Seed))); err != nil {
			return nil, fmt.Errorf("colocate: setup %s: %w", p.Name, err)
		}
		if p.Durable != nil {
			l, err := AttachDurability(p.Workload, p.Runtime, *p.Durable)
			if err != nil {
				for _, open := range logs {
					if open != nil {
						open.Close()
					}
				}
				return nil, fmt.Errorf("colocate: durability %s: %w", p.Name, err)
			}
			logs[i] = l
		}
	}

	results := make([]Result, len(g.procs))
	errs := make([]error, len(g.procs))
	// abort is closed on the first stack failure so the surviving stacks cut
	// their runs short instead of burning the full duration; firstErr records
	// the failure that triggered it, already labelled with its stack name.
	abort := make(chan struct{})
	var abortOnce sync.Once
	var firstErr error
	fail := func(i int, err error) {
		errs[i] = err
		abortOnce.Do(func() {
			firstErr = err
			close(abort)
		})
	}
	// sleep waits for d but returns early (false) once the group aborts.
	sleep := func(d time.Duration) bool {
		if d <= 0 {
			return true
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return true
		case <-abort:
			return false
		}
	}
	var wg sync.WaitGroup
	// finished flags each stack's goroutine completion so a wedged teardown
	// can be attributed to the stacks actually stuck in it.
	finished := make([]atomic.Bool, len(g.procs))
	start := time.Now()
	for i := range g.procs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer finished[i].Store(true)
			p := &g.procs[i]
			if !sleep(p.ArrivalDelay) {
				return
			}
			active := duration - p.ArrivalDelay
			if active <= 0 {
				fail(i, fmt.Errorf("colocate: %s arrives after the run ends", p.Name))
				return
			}
			pl, err := pool.New(p.PoolSize, p.Seed+1, p.Workload.Task())
			if err != nil {
				fail(i, fmt.Errorf("colocate: %s: %w", p.Name, err))
				return
			}
			pl.InstallFaults(p.Faults)
			var tuner *core.Tuner
			if p.Controller != nil {
				results[i].Levels = trace.NewSeries(p.Name + "/level")
				tuner = &core.Tuner{
					Controller: p.Controller,
					Target:     pl,
					Period:     g.period,
					Levels:     results[i].Levels,
					Health:     p.Health,
					Faults:     p.Faults,
					Adapter:    p.Adapter,
				}
			} else {
				pl.SetLevel(p.PoolSize)
			}
			began := time.Now()
			pl.Start()
			if tuner != nil {
				tuner.Start()
			}
			sleep(duration - time.Since(start))
			if tuner != nil {
				tuner.Stop()
			}
			pl.Stop()
			elapsed := time.Since(began).Seconds()

			results[i].Name = p.Name
			results[i].Completed = pl.Completed()
			results[i].Faults = pl.Faults()
			if elapsed > 0 {
				results[i].Throughput = float64(results[i].Completed) / elapsed
			}
			if results[i].Levels != nil && results[i].Levels.Len() > 0 {
				results[i].MeanLevel = results[i].Levels.Mean()
			} else {
				results[i].MeanLevel = float64(p.PoolSize)
			}
		}(i)
	}
	// Bounded teardown: a wedged stack (a task that never returns keeps its
	// pool's Stop from completing) must not hang the whole run. Past the run
	// deadline plus the grace period, give up and name the stuck stacks; their
	// goroutines are unrecoverable in-process, but the caller gets its control
	// flow — and every healthy stack's results — back.
	grace := g.Grace
	if grace <= 0 {
		grace = 5 * time.Second
	}
	allDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(allDone)
	}()
	deadline := time.NewTimer(time.Until(start.Add(duration)) + grace)
	defer deadline.Stop()
	select {
	case <-allDone:
	case <-deadline.C:
		var wedged []string
		for i := range g.procs {
			if !finished[i].Load() {
				wedged = append(wedged, g.procs[i].Name)
			}
		}
		return results, fmt.Errorf("colocate: teardown wedged %v past the deadline; stacks still stopping: %s",
			grace, strings.Join(wedged, ", "))
	}
	// Every pool has stopped, so no commit can still publish: flush and close
	// the logs, and record each durable stack's outcome. A log that lost
	// durability mid-run surfaces as an explicit flag on the result, not a run
	// failure — the degradation ladder already kept the stack serving.
	for i, l := range logs {
		if l == nil {
			continue
		}
		lost, lostErr := l.Lost()
		wr := &WalResult{
			Recovered:  l.Recovered(),
			LastCSN:    l.LastCSN(),
			DurableCSN: l.DurableCSN(),
			Lost:       lost,
			LostErr:    lostErr,
		}
		if err := l.Close(); err != nil && wr.LostErr == nil {
			wr.Lost, wr.LostErr = true, err
		}
		if !wr.Lost {
			wr.DurableCSN = l.DurableCSN() // final batch flushed by Close
		}
		results[i].Wal = wr
	}
	if firstErr != nil {
		return results, firstErr
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	for i := range g.procs {
		if err := g.procs[i].Workload.Verify(); err != nil {
			return results, fmt.Errorf("colocate: %s verification: %w", g.procs[i].Name, err)
		}
	}
	return results, nil
}
