package colocate

import (
	"fmt"

	"rubic/internal/stamp"
	"rubic/internal/stm"
	"rubic/internal/wal"
)

// AttachDurability binds a workload's durable locations to a write-ahead
// log and attaches the log to the workload's runtime as its commit sink.
// It is the recovery choreography in one place, in the order the wal
// package's DurableState contract requires:
//
//	Setup (caller) → RegisterDurable → Open → ApplyTo → Rebase → Verify
//
// The workload must already be set up (its Vars exist) and must not yet be
// taking traffic. When the log recovered a non-empty prefix, the restored
// state is re-audited with the workload's own Verify before any new commit
// is allowed — a recovery that breaks the workload's invariants fails loudly
// here instead of corrupting the run.
//
// The caller owns the returned log and must Close it after the workload
// stops committing.
func AttachDurability(w stamp.Workload, rt *stm.Runtime, opts wal.Options) (*wal.Log, error) {
	ds, ok := w.(wal.DurableState)
	if !ok {
		return nil, fmt.Errorf("colocate: workload %s does not support durability", w.Name())
	}
	if rt == nil {
		return nil, fmt.Errorf("colocate: durability for %s needs the workload's runtime", w.Name())
	}
	reg := wal.NewRegistry()
	if err := ds.RegisterDurable(reg); err != nil {
		return nil, fmt.Errorf("colocate: register %s durable state: %w", w.Name(), err)
	}
	l, err := wal.Open(opts)
	if err != nil {
		return nil, err
	}
	if err := l.ApplyTo(reg); err != nil {
		l.Close()
		return nil, fmt.Errorf("colocate: replay into %s: %w", w.Name(), err)
	}
	if l.Recovered().LastCSN > 0 {
		if err := ds.Rebase(); err != nil {
			l.Close()
			return nil, fmt.Errorf("colocate: rebase %s after recovery: %w", w.Name(), err)
		}
		if err := w.Verify(); err != nil {
			l.Close()
			return nil, fmt.Errorf("colocate: recovered %s state fails verification: %w", w.Name(), err)
		}
	}
	rt.AttachCommitSink(l)
	return l, nil
}
