package trace

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenSet builds a deterministic two-series set resembling a convergence
// trace: a parallelism level settling toward 32 and a sparser throughput
// series, so the golden files exercise overlap markers and missing samples.
func goldenSet() *Set {
	set := &Set{}
	level := set.Add(NewSeries("level"))
	tput := set.Add(NewSeries("commits/s"))
	for i := 0; i < 40; i++ {
		t := float64(i) * 0.25
		level.Add(t, 32+16*math.Cos(float64(i)/3)*math.Exp(-float64(i)/10))
		if i%4 == 0 {
			tput.Add(t, 1000+25*float64(i))
		}
	}
	return set
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestPlotGolden(t *testing.T) {
	out := Plot(goldenSet(), PlotOptions{Title: "convergence", Width: 64, Height: 12})
	checkGolden(t, "plot.golden", []byte(out))
}

func TestPlotFixedBoundsGolden(t *testing.T) {
	out := PlotSeries(goldenSet().Get("level"), PlotOptions{
		Width: 48, Height: 10, YFixed: true, YMin: 0, YMax: 64,
	})
	checkGolden(t, "plot_fixed.golden", []byte(out))
}

func TestCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, goldenSet()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "set.csv.golden", buf.Bytes())

	// The golden bytes must also parse back into the same shape.
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := goldenSet()
	if len(got.Series) != len(want.Series) {
		t.Fatalf("round trip: %d series, want %d", len(got.Series), len(want.Series))
	}
	for i, s := range want.Series {
		r := got.Series[i]
		if r.Len() != s.Len() {
			t.Fatalf("series %q: %d samples, want %d", s.Name, r.Len(), s.Len())
		}
		for j := range s.V {
			if r.T[j] != s.T[j] || r.V[j] != s.V[j] {
				t.Fatalf("series %q sample %d differs", s.Name, j)
			}
		}
	}
}
