package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV writes the set as CSV with one row per distinct time stamp and
// one column per series. Missing samples (a series without a value at a
// given time) are written as empty fields. Column order follows insertion
// order of the series.
func WriteCSV(w io.Writer, set *Set) error {
	cw := csv.NewWriter(w)
	header := append([]string{"t"}, func() []string {
		names := make([]string, len(set.Series))
		for i, s := range set.Series {
			names[i] = sanitizeName(s.Name)
		}
		return names
	}()...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}

	stamps := map[float64]struct{}{}
	for _, s := range set.Series {
		for _, t := range s.T {
			stamps[t] = struct{}{}
		}
	}
	ts := make([]float64, 0, len(stamps))
	for t := range stamps {
		ts = append(ts, t)
	}
	sort.Float64s(ts)

	// Per-series index from time to value. Later duplicates win.
	lookup := make([]map[float64]float64, len(set.Series))
	for i, s := range set.Series {
		lookup[i] = make(map[float64]float64, len(s.T))
		for j, t := range s.T {
			lookup[i][t] = s.V[j]
		}
	}

	row := make([]string, len(set.Series)+1)
	for _, t := range ts {
		row[0] = strconv.FormatFloat(t, 'g', -1, 64)
		for i := range set.Series {
			if v, ok := lookup[i][t]; ok {
				row[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
			} else {
				row[i+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV previously produced by WriteCSV back into a Set.
func ReadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(records) == 0 || len(records[0]) < 2 || records[0][0] != "t" {
		return nil, fmt.Errorf("trace: malformed csv header")
	}
	set := &Set{}
	for _, name := range records[0][1:] {
		set.Add(NewSeries(name))
	}
	for _, rec := range records[1:] {
		if len(rec) != len(records[0]) {
			return nil, fmt.Errorf("trace: ragged csv row")
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad time %q: %w", rec[0], err)
		}
		for i, field := range rec[1:] {
			if field == "" {
				continue
			}
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: bad value %q: %w", field, err)
			}
			set.Series[i].Add(t, v)
		}
	}
	return set, nil
}
