package trace

import (
	"fmt"
	"math"
	"strings"
)

// PlotOptions configures ASCII rendering.
type PlotOptions struct {
	Width  int     // columns of the plot area (default 72)
	Height int     // rows of the plot area (default 16)
	YMin   float64 // fixed lower bound; used when YFixed is true
	YMax   float64 // fixed upper bound; used when YFixed is true
	YFixed bool
	Title  string
}

// markers cycle across series in a set.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Plot renders one or more series as an ASCII chart. Series are overlaid
// with distinct markers; a legend is appended. It is intentionally simple —
// the CSV writer is the path for faithful plotting — but it makes the
// convergence dynamics of Figures 3, 5 and 10 visible in a terminal.
func Plot(set *Set, opt PlotOptions) string {
	if opt.Width <= 0 {
		opt.Width = 72
	}
	if opt.Height <= 0 {
		opt.Height = 16
	}
	// Establish bounds.
	tLo, tHi := math.Inf(1), math.Inf(-1)
	yLo, yHi := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range set.Series {
		for i := range s.V {
			any = true
			if s.T[i] < tLo {
				tLo = s.T[i]
			}
			if s.T[i] > tHi {
				tHi = s.T[i]
			}
			if s.V[i] < yLo {
				yLo = s.V[i]
			}
			if s.V[i] > yHi {
				yHi = s.V[i]
			}
		}
	}
	if !any {
		return "(empty plot)\n"
	}
	if opt.YFixed {
		yLo, yHi = opt.YMin, opt.YMax
	}
	if yHi == yLo {
		yHi = yLo + 1
	}
	if tHi == tLo {
		tHi = tLo + 1
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, s := range set.Series {
		m := markers[si%len(markers)]
		for i := range s.V {
			c := int((s.T[i] - tLo) / (tHi - tLo) * float64(opt.Width-1))
			r := int((s.V[i] - yLo) / (yHi - yLo) * float64(opt.Height-1))
			if c < 0 || c >= opt.Width || r < 0 || r >= opt.Height {
				continue
			}
			row := opt.Height - 1 - r
			if grid[row][c] == ' ' || grid[row][c] == m {
				grid[row][c] = m
			} else {
				grid[row][c] = '&' // overlap of different series
			}
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	for r, row := range grid {
		y := yHi - (yHi-yLo)*float64(r)/float64(opt.Height-1)
		fmt.Fprintf(&b, "%8.1f |%s\n", y, string(row))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", opt.Width))
	fmt.Fprintf(&b, "%8s  %-12.2f%*s\n", "", tLo, opt.Width-12, fmt.Sprintf("%.2f", tHi))
	for si, s := range set.Series {
		fmt.Fprintf(&b, "  [%c] %s\n", markers[si%len(markers)], s.String())
	}
	return b.String()
}

// PlotSeries renders a single series.
func PlotSeries(s *Series, opt PlotOptions) string {
	set := &Set{}
	set.Add(s)
	return Plot(set, opt)
}
