package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func mkSeries(name string, vals ...float64) *Series {
	s := NewSeries(name)
	for i, v := range vals {
		s.Add(float64(i), v)
	}
	return s
}

func TestSeriesBasics(t *testing.T) {
	s := mkSeries("x", 1, 2, 3, 4)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Mean(); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := s.Last(); got != 4 {
		t.Fatalf("Last = %v", got)
	}
	lo, hi := s.MinMax()
	if lo != 1 || hi != 4 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	empty := NewSeries("e")
	if empty.Mean() != 0 || empty.Last() != 0 {
		t.Fatal("empty series stats should be 0")
	}
	if lo, hi := empty.MinMax(); lo != 0 || hi != 0 {
		t.Fatal("empty MinMax should be 0,0")
	}
}

func TestMeanAfterAndWindow(t *testing.T) {
	s := mkSeries("x", 10, 20, 30, 40) // times 0..3
	if got := s.MeanAfter(2); got != 35 {
		t.Fatalf("MeanAfter(2) = %v, want 35", got)
	}
	if got := s.MeanAfter(99); got != 0 {
		t.Fatalf("MeanAfter beyond end = %v, want 0", got)
	}
	w := s.Window(1, 3)
	if w.Len() != 2 || w.V[0] != 20 || w.V[1] != 30 {
		t.Fatalf("Window = %+v", w)
	}
}

func TestSettlingTime(t *testing.T) {
	s := NewSeries("lvl")
	// Oscillates, then settles at 32 from t=5 on.
	for i := 0; i < 5; i++ {
		s.Add(float64(i), float64(10+i*10))
	}
	for i := 5; i < 10; i++ {
		s.Add(float64(i), 32)
	}
	got, ok := s.SettlingTime(0, 32, 2)
	if !ok || got != 5 {
		t.Fatalf("SettlingTime = %v, %v; want 5, true", got, ok)
	}
	if _, ok := s.SettlingTime(0, 100, 1); ok {
		t.Fatal("settled on unreachable target")
	}
}

func TestOscillationAmplitude(t *testing.T) {
	s := mkSeries("x", 30, 34, 30, 34, 30)
	if got := s.OscillationAmplitude(0); got != 2 {
		t.Fatalf("amplitude = %v, want 2", got)
	}
}

func TestDownsample(t *testing.T) {
	s := mkSeries("x", 0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	d := s.Downsample(3)
	if d.Len() != 4 || d.V[1] != 3 {
		t.Fatalf("Downsample = %+v", d)
	}
	if s.Downsample(0).Len() != s.Len() {
		t.Fatal("Downsample(0) should keep everything")
	}
}

func TestSetSumAndLookup(t *testing.T) {
	set := &Set{}
	a := set.Add(NewSeries("a"))
	b := set.Add(NewSeries("b"))
	a.Add(0, 10)
	a.Add(2, 20)
	b.Add(1, 5)
	sum := set.Sum("total")
	// t=0: a=10; t=1: a=10+b=5; t=2: a=20+b=5.
	want := []float64{10, 15, 25}
	for i, w := range want {
		if sum.V[i] != w {
			t.Fatalf("Sum = %v, want %v", sum.V, want)
		}
	}
	if set.Get("a") != a || set.Get("zzz") != nil {
		t.Fatal("Get lookup broken")
	}
	names := set.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	set := &Set{}
	a := set.Add(NewSeries("alpha"))
	b := set.Add(NewSeries("beta,with,commas"))
	for i := 0; i < 5; i++ {
		a.Add(float64(i), float64(i)*1.5)
		if i%2 == 0 {
			b.Add(float64(i), float64(-i))
		}
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 2 {
		t.Fatalf("round trip lost series: %d", len(got.Series))
	}
	ra := got.Series[0]
	if ra.Len() != 5 {
		t.Fatalf("alpha has %d samples", ra.Len())
	}
	for i := range ra.V {
		if ra.V[i] != a.V[i] || ra.T[i] != a.T[i] {
			t.Fatalf("alpha sample %d differs", i)
		}
	}
	rb := got.Series[1]
	if rb.Len() != 3 {
		t.Fatalf("beta has %d samples, want 3 (sparse)", rb.Len())
	}
}

func TestCSVQuickRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		s := NewSeries("q")
		for i, v := range vals {
			if v != v || v > 1e300 || v < -1e300 { // NaN / huge skipped
				continue
			}
			s.Add(float64(i), v)
		}
		set := &Set{}
		set.Add(s)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, set); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil || len(got.Series) != 1 {
			return false
		}
		r := got.Series[0]
		if r.Len() != s.Len() {
			return false
		}
		for i := range s.V {
			if r.V[i] != s.V[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"x,y\n1,2\n",           // header must start with t
		"t,a\nnope,2\n",        // bad time
		"t,a\n1,abc\n",         // bad value
		"t,a\n\"1\",\"2\",3\n", // ragged row is a csv error
	} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("bad csv %q accepted", bad)
		}
	}
}

func TestPlotRenders(t *testing.T) {
	set := &Set{}
	s := set.Add(NewSeries("wave"))
	for i := 0; i < 50; i++ {
		s.Add(float64(i), float64(i%10))
	}
	out := Plot(set, PlotOptions{Title: "test plot", Width: 40, Height: 8})
	if !strings.Contains(out, "test plot") {
		t.Error("plot missing title")
	}
	if !strings.Contains(out, "wave") {
		t.Error("plot missing legend")
	}
	if !strings.Contains(out, "*") {
		t.Error("plot has no marks")
	}
	if got := Plot(&Set{}, PlotOptions{}); !strings.Contains(got, "empty") {
		t.Errorf("empty plot = %q", got)
	}
	// Fixed bounds and single-series helper.
	out = PlotSeries(s, PlotOptions{YFixed: true, YMin: 0, YMax: 100})
	if !strings.Contains(out, "100.0") {
		t.Error("fixed bounds not honored")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	// A constant series must not divide by zero.
	s := mkSeries("flat", 5, 5, 5)
	out := PlotSeries(s, PlotOptions{})
	if !strings.Contains(out, "flat") {
		t.Error("constant series plot broken")
	}
}
