// Package trace records and renders time series produced by the experiment
// harness: parallelism levels and throughput over time, one sample per
// controller round. It supports the convergence figures (3, 5 and 10) both
// as CSV for external plotting and as ASCII charts for terminal inspection.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Series is a named sequence of (time, value) samples with uniform or
// non-uniform spacing.
type Series struct {
	Name string
	T    []float64 // sample times (seconds)
	V    []float64 // sample values
}

// NewSeries returns an empty series with the given name.
func NewSeries(name string) *Series {
	return &Series{Name: name}
}

// Add appends one sample.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.V) }

// Mean returns the arithmetic mean of the values, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.V) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// MeanAfter returns the mean of samples with time >= t0, or 0 if none.
// Convergence analysis uses it to measure steady-state levels while skipping
// the initial probing transient.
func (s *Series) MeanAfter(t0 float64) float64 {
	sum, n := 0.0, 0
	for i, t := range s.T {
		if t >= t0 {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Window returns a new series restricted to samples with t0 <= t < t1.
func (s *Series) Window(t0, t1 float64) *Series {
	out := NewSeries(s.Name)
	for i, t := range s.T {
		if t >= t0 && t < t1 {
			out.Add(t, s.V[i])
		}
	}
	return out
}

// Last returns the final value of the series, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.V) == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// MinMax returns the smallest and largest values, or (0, 0) if empty.
func (s *Series) MinMax() (lo, hi float64) {
	if len(s.V) == 0 {
		return 0, 0
	}
	lo, hi = s.V[0], s.V[0]
	for _, v := range s.V[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// SettlingTime returns the first time after from at which the series enters
// the band [target-tol, target+tol] and never leaves it again. It returns
// (0, false) if the series never settles. This quantifies the paper's
// "impressively fast" convergence claim for Figure 10.
func (s *Series) SettlingTime(from, target, tol float64) (float64, bool) {
	settled := -1
	for i := range s.V {
		if s.T[i] < from {
			continue
		}
		in := s.V[i] >= target-tol && s.V[i] <= target+tol
		if in {
			if settled < 0 {
				settled = i
			}
		} else {
			settled = -1
		}
	}
	if settled < 0 {
		return 0, false
	}
	return s.T[settled], true
}

// OscillationAmplitude returns half the peak-to-peak range of the samples
// with time >= t0. A small amplitude around a steady state indicates the
// stable oscillation that Figures 3, 5 and 10 depict.
func (s *Series) OscillationAmplitude(t0 float64) float64 {
	w := s.Window(t0, s.T[len(s.T)-1]+1)
	lo, hi := w.MinMax()
	return (hi - lo) / 2
}

// Set is an ordered collection of series sharing a time axis, e.g. the
// per-process parallelism levels of one convergence run.
type Set struct {
	Series []*Series
}

// Add appends a series to the set and returns it for chaining.
func (set *Set) Add(s *Series) *Series {
	set.Series = append(set.Series, s)
	return s
}

// Get returns the series with the given name, or nil.
func (set *Set) Get(name string) *Series {
	for _, s := range set.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Names returns the series names in insertion order.
func (set *Set) Names() []string {
	out := make([]string, len(set.Series))
	for i, s := range set.Series {
		out[i] = s.Name
	}
	return out
}

// Sum returns a new series whose value at each distinct time point is the
// sum of every member series' most recent value at or before that time.
// It is used to compute the system's total thread count over time.
func (set *Set) Sum(name string) *Series {
	// Collect the union of all time stamps.
	stamps := map[float64]struct{}{}
	for _, s := range set.Series {
		for _, t := range s.T {
			stamps[t] = struct{}{}
		}
	}
	ts := make([]float64, 0, len(stamps))
	for t := range stamps {
		ts = append(ts, t)
	}
	sort.Float64s(ts)

	out := NewSeries(name)
	idx := make([]int, len(set.Series))
	for _, t := range ts {
		sum := 0.0
		for i, s := range set.Series {
			for idx[i] < len(s.T) && s.T[idx[i]] <= t {
				idx[i]++
			}
			if idx[i] > 0 {
				sum += s.V[idx[i]-1]
			}
		}
		out.Add(t, sum)
	}
	return out
}

// String renders a compact one-line summary of the series.
func (s *Series) String() string {
	lo, hi := s.MinMax()
	return fmt.Sprintf("%s: n=%d mean=%.2f min=%.2f max=%.2f last=%.2f",
		s.Name, s.Len(), s.Mean(), lo, hi, s.Last())
}

// Downsample returns a new series keeping every k-th sample (k >= 1).
func (s *Series) Downsample(k int) *Series {
	if k < 1 {
		k = 1
	}
	out := NewSeries(s.Name)
	for i := 0; i < len(s.V); i += k {
		out.Add(s.T[i], s.V[i])
	}
	return out
}

// sanitizeName makes a series name safe for CSV headers.
func sanitizeName(name string) string {
	return strings.ReplaceAll(strings.ReplaceAll(name, ",", "_"), "\n", " ")
}
