package stm

// ConflictProfile summarizes one epoch of a Runtime's transactional
// behavior in the terms the adaptive policy scores candidates by (see
// core.AdaptivePolicy and DESIGN.md §12): how much work is wasted
// (AbortRatio), how big transactions are (mean set sizes), and how much
// committed writers' footprints overlap (ConflictDegree — the fraction of
// write-signature bits that collide with the rolling aggregate of recent
// writers' signatures, a cheap Bloom-style estimate of the "transactional
// conflict" density of Alistarh et al.).
type ConflictProfile struct {
	// Commits and Aborts are the epoch's raw counts.
	Commits uint64
	Aborts  uint64
	// AbortRatio is Aborts / (Commits + Aborts) over the epoch.
	AbortRatio float64
	// MeanReadSet is read-set (TL2) plus value-log (NOrec) entries per
	// committed transaction; MeanWriteSet is write-set entries per committed
	// writer.
	MeanReadSet  float64
	MeanWriteSet float64
	// ConflictDegree estimates footprint overlap among recent writers:
	// signature bits colliding with the rolling aggregate over total
	// signature bits, in [0, 1]. Repeated writes to hot locations drive it
	// toward 1; disjoint working sets keep it near the Bloom false-positive
	// floor.
	ConflictDegree float64
}

// ProfileBetween derives the profile of the epoch spanned by two Stats
// snapshots of the same Runtime (prev taken at the epoch's start, cur at
// its end). It is a pure function of the snapshot deltas: scalar arithmetic
// only, no clocks, no map iteration, so equal snapshots always yield equal
// profiles.
//
//rubic:deterministic
func ProfileBetween(prev, cur Stats) ConflictProfile {
	p := ConflictProfile{
		Commits: cur.Commits - prev.Commits,
		Aborts:  cur.Aborts - prev.Aborts,
	}
	if total := p.Commits + p.Aborts; total > 0 {
		p.AbortRatio = float64(p.Aborts) / float64(total)
	}
	if p.Commits > 0 {
		p.MeanReadSet = float64(cur.ReadSetSum-prev.ReadSetSum) / float64(p.Commits)
	}
	if writers := (cur.Commits - cur.ReadOnlyCommits) - (prev.Commits - prev.ReadOnlyCommits); writers > 0 {
		p.MeanWriteSet = float64(cur.WriteSetSum-prev.WriteSetSum) / float64(writers)
	}
	if bits := cur.SigBits - prev.SigBits; bits > 0 {
		p.ConflictDegree = float64(cur.SigOverlap-prev.SigOverlap) / float64(bits)
	}
	return p
}
