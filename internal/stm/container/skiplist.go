package container

import (
	"math/rand"
	"sync/atomic"

	"rubic/internal/stm"
)

// maxSkipHeight bounds skip-list towers; 2^16 expected elements per level-1
// link is far beyond the benchmarks' sizes.
const maxSkipHeight = 16

// snode is a skip-list tower. The key and height are immutable; the forward
// pointers and the value are transactional.
type snode[V any] struct {
	key  int64
	val  *stm.Var[V]
	next []*stm.Var[*snode[V]] // len == tower height
}

// SkipList is a transactional ordered map from int64 keys to V, implemented
// as a classic skip list. It offers the same interface as RBTree with
// shallower write footprints for inserts (no rebalancing), which makes it
// the index of choice for insert-heavy workloads.
type SkipList[V any] struct {
	head *snode[V] // sentinel with key = math.MinInt64, full height
	size *stm.Var[int]
	// seed drives tower-height coin flips; deterministic across runs for a
	// given construction order.
	seed atomic.Uint64
}

// NewSkipList returns an empty skip list.
func NewSkipList[V any]() *SkipList[V] {
	head := &snode[V]{
		key:  -1 << 63,
		next: make([]*stm.Var[*snode[V]], maxSkipHeight),
	}
	for i := range head.next {
		head.next[i] = stm.NewVar[*snode[V]](nil)
	}
	s := &SkipList[V]{head: head, size: stm.NewVar(0)}
	s.seed.Store(0x9e3779b97f4a7c15)
	return s
}

// height draws a geometric tower height from the list's deterministic
// stream.
func (s *SkipList[V]) height() int {
	x := s.seed.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	rng := rand.New(rand.NewSource(int64(x)))
	h := 1
	for h < maxSkipHeight && rng.Intn(2) == 0 {
		h++
	}
	return h
}

// Len returns the number of keys.
func (s *SkipList[V]) Len(tx *stm.Tx) int { return s.size.Read(tx) }

// findPredecessors fills pred with the rightmost node before key at every
// level and returns the node at key, if present.
func (s *SkipList[V]) findPredecessors(tx *stm.Tx, key int64, pred []*snode[V]) *snode[V] {
	cur := s.head
	for lvl := maxSkipHeight - 1; lvl >= 0; lvl-- {
		for {
			nxt := cur.next[lvl].Read(tx)
			if nxt == nil || nxt.key >= key {
				break
			}
			cur = nxt
		}
		if pred != nil {
			pred[lvl] = cur
		}
	}
	nxt := cur.next[0].Read(tx)
	if nxt != nil && nxt.key == key {
		return nxt
	}
	return nil
}

// Get returns the value stored under key.
func (s *SkipList[V]) Get(tx *stm.Tx, key int64) (V, bool) {
	if n := s.findPredecessors(tx, key, nil); n != nil {
		return n.val.Read(tx), true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (s *SkipList[V]) Contains(tx *stm.Tx, key int64) bool {
	return s.findPredecessors(tx, key, nil) != nil
}

// Put inserts or updates key, reporting whether a new key was inserted.
func (s *SkipList[V]) Put(tx *stm.Tx, key int64, val V) bool {
	pred := make([]*snode[V], maxSkipHeight)
	if n := s.findPredecessors(tx, key, pred); n != nil {
		n.val.Write(tx, val)
		return false
	}
	h := s.height()
	n := &snode[V]{
		key:  key,
		val:  stm.NewVar(val),
		next: make([]*stm.Var[*snode[V]], h),
	}
	for lvl := 0; lvl < h; lvl++ {
		n.next[lvl] = stm.NewVar(pred[lvl].next[lvl].Read(tx))
		pred[lvl].next[lvl].Write(tx, n)
	}
	s.size.Write(tx, s.size.Read(tx)+1)
	return true
}

// Delete removes key, reporting whether it was present.
func (s *SkipList[V]) Delete(tx *stm.Tx, key int64) bool {
	pred := make([]*snode[V], maxSkipHeight)
	n := s.findPredecessors(tx, key, pred)
	if n == nil {
		return false
	}
	for lvl := 0; lvl < len(n.next); lvl++ {
		pred[lvl].next[lvl].Write(tx, n.next[lvl].Read(tx))
	}
	s.size.Write(tx, s.size.Read(tx)-1)
	return true
}

// Range calls fn in ascending key order until fn returns false.
func (s *SkipList[V]) Range(tx *stm.Tx, fn func(key int64, val V) bool) {
	for n := s.head.next[0].Read(tx); n != nil; n = n.next[0].Read(tx) {
		if !fn(n.key, n.val.Read(tx)) {
			return
		}
	}
}

// RangeBetween calls fn for every key in [lo, hi] in ascending order until
// fn returns false. The descent to lo rides the towers, so a narrow window
// over a large list reads O(log n + width) vars instead of the whole level-0
// chain — the same contract RBTree.RangeBetween and blink's maps offer.
func (s *SkipList[V]) RangeBetween(tx *stm.Tx, lo, hi int64, fn func(key int64, val V) bool) {
	cur := s.head
	for lvl := maxSkipHeight - 1; lvl >= 0; lvl-- {
		for {
			nxt := cur.next[lvl].Read(tx)
			if nxt == nil || nxt.key >= lo {
				break
			}
			cur = nxt
		}
	}
	for n := cur.next[0].Read(tx); n != nil && n.key <= hi; n = n.next[0].Read(tx) {
		if !fn(n.key, n.val.Read(tx)) {
			return
		}
	}
}

// Keys returns all keys in ascending order.
func (s *SkipList[V]) Keys(tx *stm.Tx) []int64 {
	out := make([]int64, 0, s.size.Read(tx))
	s.Range(tx, func(k int64, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// CheckInvariants verifies structural sanity inside tx: every level sorted,
// every tower member linked at level 0, size consistent. Returns "" when
// valid; for tests.
func (s *SkipList[V]) CheckInvariants(tx *stm.Tx) string {
	// Level 0 ordering and count.
	count := 0
	prev := int64(-1 << 63)
	level0 := map[*snode[V]]bool{}
	for n := s.head.next[0].Read(tx); n != nil; n = n.next[0].Read(tx) {
		if n.key <= prev {
			return "level 0 out of order"
		}
		prev = n.key
		count++
		level0[n] = true
	}
	if got := s.size.Read(tx); got != count {
		return "size mismatch"
	}
	// Every upper-level chain is a sorted subsequence of level 0.
	for lvl := 1; lvl < maxSkipHeight; lvl++ {
		prev = int64(-1 << 63)
		for n := s.head.next[lvl].Read(tx); n != nil; n = n.next[lvl].Read(tx) {
			if n.key <= prev {
				return "upper level out of order"
			}
			if !level0[n] {
				return "upper-level node missing from level 0"
			}
			prev = n.key
		}
	}
	return ""
}
