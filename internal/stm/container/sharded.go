package container

import (
	"rubic/internal/stm"
)

// ShardedHashMap partitions a HashMap across the shards of an
// stm.ShardedRuntime: each shard owns an independent HashMap whose Vars are
// only ever accessed through that shard's Runtime, so operations on keys in
// different shards share no commit clock, lock word, or sequence lock. This
// is the container-level face of range sharding (DESIGN.md §14): the
// operation API is self-routing — each call runs its own single-shard
// transaction on the owning shard — and multi-key operations that span
// shards (Len, Range, bulk moves) go through the cross-shard commit.
//
// Compared with a single HashMap under one Runtime, the sharded form trades
// snapshot granularity for commit-path independence: two Puts on different
// shards never serialize on a shared clock word, which is what the parallel
// benchmarks need to scale past the single-counter ceiling.
type ShardedHashMap[V any] struct {
	sr     *stm.ShardedRuntime
	shards []*HashMap[V]
}

// NewShardedHashMap builds one HashMap of at least minBucketsPerShard
// buckets per shard of sr.
func NewShardedHashMap[V any](sr *stm.ShardedRuntime, minBucketsPerShard int) *ShardedHashMap[V] {
	m := &ShardedHashMap[V]{
		sr:     sr,
		shards: make([]*HashMap[V], sr.Shards()),
	}
	for i := range m.shards {
		m.shards[i] = NewHashMap[V](minBucketsPerShard)
	}
	return m
}

// Runtime returns the backing sharded runtime.
func (m *ShardedHashMap[V]) Runtime() *stm.ShardedRuntime { return m.sr }

// ShardFor maps key to its owning shard index.
//
//rubic:noalloc
func (m *ShardedHashMap[V]) ShardFor(key int64) int { return m.sr.ShardFor(uint64(key)) }

// OnShard exposes shard i's underlying HashMap for composing into a larger
// transaction. The caller owns the routing obligation: every access must run
// under shard i's Runtime (sr.Shard(i) or a CrossTx sub-transaction on i).
func (m *ShardedHashMap[V]) OnShard(i int) *HashMap[V] { return m.shards[i] }

// Get looks key up in its own single-shard read-only transaction.
func (m *ShardedHashMap[V]) Get(key int64) (val V, ok bool, err error) {
	i := m.ShardFor(key)
	err = m.sr.Shard(i).AtomicRO(func(tx *stm.Tx) error {
		val, ok = m.shards[i].Get(tx, key)
		return nil
	})
	return val, ok, err
}

// Contains reports key's presence via a single-shard read-only transaction.
func (m *ShardedHashMap[V]) Contains(key int64) (bool, error) {
	_, ok, err := m.Get(key)
	return ok, err
}

// Put inserts or updates key in its own single-shard transaction and
// reports whether a new entry was created.
func (m *ShardedHashMap[V]) Put(key int64, val V) (added bool, err error) {
	i := m.ShardFor(key)
	err = m.sr.Shard(i).Atomic(func(tx *stm.Tx) error {
		added = m.shards[i].Put(tx, key, val)
		return nil
	})
	return added, err
}

// Delete removes key in its own single-shard transaction and reports
// whether it was present.
func (m *ShardedHashMap[V]) Delete(key int64) (removed bool, err error) {
	i := m.ShardFor(key)
	err = m.sr.Shard(i).Atomic(func(tx *stm.Tx) error {
		removed = m.shards[i].Delete(tx, key)
		return nil
	})
	return removed, err
}

// Update applies fn to key's current value (zero if absent) inside key's
// shard transaction and stores the result — the read-modify-write form the
// keyed workloads use.
func (m *ShardedHashMap[V]) Update(key int64, fn func(cur V, ok bool) V) error {
	i := m.ShardFor(key)
	return m.sr.Shard(i).Atomic(func(tx *stm.Tx) error {
		cur, ok := m.shards[i].Get(tx, key)
		m.shards[i].Put(tx, key, fn(cur, ok))
		return nil
	})
}

// Len counts all entries in one cross-shard transaction: an exact snapshot
// over every shard at a single commit point.
func (m *ShardedHashMap[V]) Len() (int, error) {
	n := 0
	err := m.sr.AtomicAcross(func(cx *stm.CrossTx) error {
		n = 0
		for i, hm := range m.shards {
			n += hm.Len(cx.On(i))
		}
		return nil
	})
	return n, err
}

// Range visits every entry under one cross-shard snapshot (shard order,
// bucket order within each shard) until fn returns false. The transaction
// is internal: on a conflict retry fn restarts from the first entry, so fn
// must reset any accumulation it performs (or be idempotent).
func (m *ShardedHashMap[V]) Range(fn func(key int64, val V) bool) error {
	return m.sr.AtomicAcross(func(cx *stm.CrossTx) error {
		for i, hm := range m.shards {
			stopped := false
			hm.Range(cx.On(i), func(k int64, v V) bool {
				if !fn(k, v) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				return nil
			}
		}
		return nil
	})
}

// Move atomically deletes key src and inserts its value under dst, even when
// the two keys live on different shards — the canonical cross-shard
// operation. It reports whether src existed (nothing is written otherwise).
func (m *ShardedHashMap[V]) Move(src, dst int64) (moved bool, err error) {
	si, di := m.ShardFor(src), m.ShardFor(dst)
	err = m.sr.AtomicAcross(func(cx *stm.CrossTx) error {
		stx := cx.On(si)
		v, ok := m.shards[si].Get(stx, src)
		moved = ok
		if !ok {
			return nil
		}
		m.shards[si].Delete(stx, src)
		m.shards[di].Put(cx.On(di), dst, v)
		return nil
	})
	return moved, err
}
