package container

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"rubic/internal/stm"
)

// run executes fn in a transaction, failing the test on error.
func run(t *testing.T, rt *stm.Runtime, fn func(tx *stm.Tx)) {
	t.Helper()
	if err := rt.Atomic(func(tx *stm.Tx) error {
		fn(tx)
		return nil
	}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
}

func TestRBTreeBasic(t *testing.T) {
	rt := stm.New(stm.Config{})
	tree := NewRBTree[string]()
	run(t, rt, func(tx *stm.Tx) {
		if tree.Len(tx) != 0 {
			t.Error("new tree not empty")
		}
		if !tree.Put(tx, 5, "five") {
			t.Error("first Put should insert")
		}
		if tree.Put(tx, 5, "FIVE") {
			t.Error("second Put of same key should update")
		}
		v, ok := tree.Get(tx, 5)
		if !ok || v != "FIVE" {
			t.Errorf("Get(5) = %q,%v", v, ok)
		}
		if _, ok := tree.Get(tx, 6); ok {
			t.Error("Get of absent key succeeded")
		}
		if !tree.Delete(tx, 5) {
			t.Error("Delete of present key failed")
		}
		if tree.Delete(tx, 5) {
			t.Error("Delete of absent key succeeded")
		}
		if tree.Len(tx) != 0 {
			t.Error("tree not empty after delete")
		}
	})
}

// TestRBTreeModel drives the tree with a random op sequence against a map
// model, validating red-black invariants throughout.
func TestRBTreeModel(t *testing.T) {
	rt := stm.New(stm.Config{})
	tree := NewRBTree[int]()
	model := map[int64]int{}
	rng := rand.New(rand.NewSource(42))

	for step := 0; step < 4000; step++ {
		key := int64(rng.Intn(200))
		val := rng.Int()
		op := rng.Intn(10)
		run(t, rt, func(tx *stm.Tx) {
			switch {
			case op < 5: // put
				inserted := tree.Put(tx, key, val)
				_, existed := model[key]
				if inserted == existed {
					t.Fatalf("step %d: Put(%d) inserted=%v but existed=%v", step, key, inserted, existed)
				}
				model[key] = val
			case op < 8: // delete
				deleted := tree.Delete(tx, key)
				_, existed := model[key]
				if deleted != existed {
					t.Fatalf("step %d: Delete(%d)=%v but existed=%v", step, key, deleted, existed)
				}
				delete(model, key)
			default: // get
				got, ok := tree.Get(tx, key)
				want, existed := model[key]
				if ok != existed || (ok && got != want) {
					t.Fatalf("step %d: Get(%d)=(%d,%v) want (%d,%v)", step, key, got, ok, want, existed)
				}
			}
			if step%97 == 0 {
				if msg := tree.CheckInvariants(tx); msg != "" {
					t.Fatalf("step %d: invariant violated: %s", step, msg)
				}
				if tree.Len(tx) != len(model) {
					t.Fatalf("step %d: Len=%d model=%d", step, tree.Len(tx), len(model))
				}
			}
		})
	}
	// Final full check: keys sorted and matching the model.
	run(t, rt, func(tx *stm.Tx) {
		if msg := tree.CheckInvariants(tx); msg != "" {
			t.Fatalf("final invariant violated: %s", msg)
		}
		keys := tree.Keys(tx)
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			t.Fatal("Keys not sorted")
		}
		if len(keys) != len(model) {
			t.Fatalf("key count %d, model %d", len(keys), len(model))
		}
		for _, k := range keys {
			if _, ok := model[k]; !ok {
				t.Fatalf("tree key %d missing from model", k)
			}
		}
	})
}

// TestRBTreeQuickInsertDelete property: inserting a set then deleting a
// subset leaves exactly the difference, with valid invariants.
func TestRBTreeQuickInsertDelete(t *testing.T) {
	f := func(ins []int16, del []int16) bool {
		rt := stm.New(stm.Config{})
		tree := NewRBTree[struct{}]()
		want := map[int64]struct{}{}
		ok := true
		err := rt.Atomic(func(tx *stm.Tx) error {
			for _, k := range ins {
				tree.Put(tx, int64(k), struct{}{})
				want[int64(k)] = struct{}{}
			}
			for _, k := range del {
				tree.Delete(tx, int64(k))
				delete(want, int64(k))
			}
			if msg := tree.CheckInvariants(tx); msg != "" {
				ok = false
				return nil
			}
			if tree.Len(tx) != len(want) {
				ok = false
				return nil
			}
			for k := range want {
				if !tree.Contains(tx, k) {
					ok = false
					return nil
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRBTreeConcurrent stresses concurrent transactional mutation on
// disjoint and overlapping key ranges and verifies the final state.
func TestRBTreeConcurrent(t *testing.T) {
	rt := stm.New(stm.Config{})
	tree := NewRBTree[int]()
	const workers = 6
	const keysPerWorker = 60

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			// Each worker owns keys w, w+workers, w+2*workers, ...
			for i := 0; i < keysPerWorker; i++ {
				key := int64(w + i*workers)
				if err := rt.Atomic(func(tx *stm.Tx) error {
					tree.Put(tx, key, int(key))
					return nil
				}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				// Occasionally churn a shared key range to force conflicts.
				if rng.Intn(4) == 0 {
					shared := int64(100000 + rng.Intn(8))
					_ = rt.Atomic(func(tx *stm.Tx) error {
						if tree.Contains(tx, shared) {
							tree.Delete(tx, shared)
						} else {
							tree.Put(tx, shared, 1)
						}
						return nil
					})
				}
			}
		}(w)
	}
	wg.Wait()

	run(t, rt, func(tx *stm.Tx) {
		if msg := tree.CheckInvariants(tx); msg != "" {
			t.Fatalf("invariants after stress: %s", msg)
		}
		for w := 0; w < workers; w++ {
			for i := 0; i < keysPerWorker; i++ {
				key := int64(w + i*workers)
				if v, ok := tree.Get(tx, key); !ok || v != int(key) {
					t.Fatalf("key %d = (%d,%v), want (%d,true)", key, v, ok, key)
				}
			}
		}
	})
}

func TestRBTreeRangeEarlyStop(t *testing.T) {
	rt := stm.New(stm.Config{})
	tree := NewRBTree[int]()
	run(t, rt, func(tx *stm.Tx) {
		for i := 0; i < 20; i++ {
			tree.Put(tx, int64(i), i)
		}
		seen := 0
		tree.Range(tx, func(k int64, v int) bool {
			seen++
			return seen < 5
		})
		if seen != 5 {
			t.Fatalf("Range visited %d, want 5", seen)
		}
	})
}

func TestRBTreeAscendingDescendingInsert(t *testing.T) {
	for name, gen := range map[string]func(i int) int64{
		"ascending":  func(i int) int64 { return int64(i) },
		"descending": func(i int) int64 { return int64(1000 - i) },
		"zigzag":     func(i int) int64 { return int64((i%2)*2000 - i) },
	} {
		t.Run(name, func(t *testing.T) {
			rt := stm.New(stm.Config{})
			tree := NewRBTree[int]()
			run(t, rt, func(tx *stm.Tx) {
				for i := 0; i < 500; i++ {
					tree.Put(tx, gen(i), i)
				}
				if msg := tree.CheckInvariants(tx); msg != "" {
					t.Fatalf("invariants: %s", msg)
				}
			})
		})
	}
}

func TestRBTreeNavigation(t *testing.T) {
	rt := stm.New(stm.Config{})
	tree := NewRBTree[int]()
	run(t, rt, func(tx *stm.Tx) {
		// Empty-tree cases.
		if _, _, ok := tree.Min(tx); ok {
			t.Error("Min on empty tree")
		}
		if _, _, ok := tree.Max(tx); ok {
			t.Error("Max on empty tree")
		}
		if _, _, ok := tree.Ceiling(tx, 0); ok {
			t.Error("Ceiling on empty tree")
		}
		if _, _, ok := tree.Floor(tx, 0); ok {
			t.Error("Floor on empty tree")
		}
		for _, k := range []int64{10, 20, 30, 40, 50} {
			tree.Put(tx, k, int(k))
		}
		if k, v, ok := tree.Min(tx); !ok || k != 10 || v != 10 {
			t.Errorf("Min = %d,%d,%v", k, v, ok)
		}
		if k, _, ok := tree.Max(tx); !ok || k != 50 {
			t.Errorf("Max = %d,%v", k, ok)
		}
		if k, _, ok := tree.Ceiling(tx, 25); !ok || k != 30 {
			t.Errorf("Ceiling(25) = %d,%v", k, ok)
		}
		if k, _, ok := tree.Ceiling(tx, 30); !ok || k != 30 {
			t.Errorf("Ceiling(30) = %d,%v", k, ok)
		}
		if _, _, ok := tree.Ceiling(tx, 51); ok {
			t.Error("Ceiling beyond max")
		}
		if k, _, ok := tree.Floor(tx, 25); !ok || k != 20 {
			t.Errorf("Floor(25) = %d,%v", k, ok)
		}
		if k, _, ok := tree.Floor(tx, 20); !ok || k != 20 {
			t.Errorf("Floor(20) = %d,%v", k, ok)
		}
		if _, _, ok := tree.Floor(tx, 9); ok {
			t.Error("Floor below min")
		}
		var got []int64
		tree.RangeBetween(tx, 15, 45, func(k int64, _ int) bool {
			got = append(got, k)
			return true
		})
		want := []int64{20, 30, 40}
		if len(got) != len(want) {
			t.Fatalf("RangeBetween = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("RangeBetween = %v, want %v", got, want)
			}
		}
		// Early stop.
		n := 0
		tree.RangeBetween(tx, 0, 100, func(int64, int) bool {
			n++
			return n < 2
		})
		if n != 2 {
			t.Fatalf("RangeBetween early stop visited %d", n)
		}
	})
}

// TestRBTreeNavigationQuick property: Ceiling/Floor agree with a sorted
// model for random key sets.
func TestRBTreeNavigationQuick(t *testing.T) {
	f := func(keys []int16, probe int16) bool {
		rt := stm.New(stm.Config{})
		tree := NewRBTree[struct{}]()
		model := map[int64]bool{}
		ok := true
		err := rt.Atomic(func(tx *stm.Tx) error {
			for _, k := range keys {
				tree.Put(tx, int64(k), struct{}{})
				model[int64(k)] = true
			}
			// Model ceiling/floor.
			var wantCeil, wantFloor int64
			haveCeil, haveFloor := false, false
			for k := range model {
				if k >= int64(probe) && (!haveCeil || k < wantCeil) {
					wantCeil, haveCeil = k, true
				}
				if k <= int64(probe) && (!haveFloor || k > wantFloor) {
					wantFloor, haveFloor = k, true
				}
			}
			gotCeil, _, okCeil := tree.Ceiling(tx, int64(probe))
			gotFloor, _, okFloor := tree.Floor(tx, int64(probe))
			if okCeil != haveCeil || (okCeil && gotCeil != wantCeil) {
				ok = false
			}
			if okFloor != haveFloor || (okFloor && gotFloor != wantFloor) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
