package container

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"rubic/internal/stm"
)

func TestSkipListBasic(t *testing.T) {
	rt := stm.New(stm.Config{})
	s := NewSkipList[string]()
	run(t, rt, func(tx *stm.Tx) {
		if s.Len(tx) != 0 {
			t.Error("new list not empty")
		}
		if !s.Put(tx, 7, "seven") {
			t.Error("first Put should insert")
		}
		if s.Put(tx, 7, "SEVEN") {
			t.Error("second Put should update")
		}
		if v, ok := s.Get(tx, 7); !ok || v != "SEVEN" {
			t.Errorf("Get = %q,%v", v, ok)
		}
		if !s.Contains(tx, 7) || s.Contains(tx, 8) {
			t.Error("Contains wrong")
		}
		if !s.Delete(tx, 7) || s.Delete(tx, 7) {
			t.Error("Delete semantics wrong")
		}
		if s.Len(tx) != 0 {
			t.Error("not empty after delete")
		}
	})
}

func TestSkipListModel(t *testing.T) {
	rt := stm.New(stm.Config{})
	s := NewSkipList[int]()
	model := map[int64]int{}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 3000; step++ {
		key := int64(rng.Intn(300))
		val := rng.Int()
		op := rng.Intn(10)
		run(t, rt, func(tx *stm.Tx) {
			switch {
			case op < 5:
				inserted := s.Put(tx, key, val)
				if _, existed := model[key]; inserted == existed {
					t.Fatalf("step %d: Put inserted=%v existed=%v", step, inserted, existed)
				}
				model[key] = val
			case op < 8:
				deleted := s.Delete(tx, key)
				if _, existed := model[key]; deleted != existed {
					t.Fatalf("step %d: Delete=%v existed=%v", step, deleted, existed)
				}
				delete(model, key)
			default:
				got, ok := s.Get(tx, key)
				want, existed := model[key]
				if ok != existed || (ok && got != want) {
					t.Fatalf("step %d: Get mismatch", step)
				}
			}
			if step%211 == 0 {
				if msg := s.CheckInvariants(tx); msg != "" {
					t.Fatalf("step %d: %s", step, msg)
				}
			}
		})
	}
	run(t, rt, func(tx *stm.Tx) {
		if msg := s.CheckInvariants(tx); msg != "" {
			t.Fatalf("final: %s", msg)
		}
		keys := s.Keys(tx)
		if len(keys) != len(model) {
			t.Fatalf("keys %d, model %d", len(keys), len(model))
		}
	})
}

func TestSkipListQuickSorted(t *testing.T) {
	f := func(ins []int16) bool {
		rt := stm.New(stm.Config{})
		s := NewSkipList[struct{}]()
		good := true
		err := rt.Atomic(func(tx *stm.Tx) error {
			for _, k := range ins {
				s.Put(tx, int64(k), struct{}{})
			}
			keys := s.Keys(tx)
			for i := 1; i < len(keys); i++ {
				if keys[i-1] >= keys[i] {
					good = false
					return nil
				}
			}
			good = s.CheckInvariants(tx) == ""
			return nil
		})
		return err == nil && good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListConcurrent(t *testing.T) {
	rt := stm.New(stm.Config{})
	s := NewSkipList[int]()
	const workers, perWorker = 6, 80
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := int64(w + i*workers)
				if err := rt.Atomic(func(tx *stm.Tx) error {
					s.Put(tx, key, int(key))
					return nil
				}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	run(t, rt, func(tx *stm.Tx) {
		if msg := s.CheckInvariants(tx); msg != "" {
			t.Fatalf("invariants: %s", msg)
		}
		if s.Len(tx) != workers*perWorker {
			t.Fatalf("Len = %d, want %d", s.Len(tx), workers*perWorker)
		}
		for k := int64(0); k < workers*perWorker; k++ {
			if v, ok := s.Get(tx, k); !ok || v != int(k) {
				t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
			}
		}
	})
}

func TestSkipListRangeEarlyStop(t *testing.T) {
	rt := stm.New(stm.Config{})
	s := NewSkipList[int]()
	run(t, rt, func(tx *stm.Tx) {
		for i := 0; i < 30; i++ {
			s.Put(tx, int64(i), i)
		}
		n := 0
		s.Range(tx, func(int64, int) bool {
			n++
			return n < 7
		})
		if n != 7 {
			t.Fatalf("Range visited %d, want 7", n)
		}
	})
}
