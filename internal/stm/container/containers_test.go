package container

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"rubic/internal/stm"
	"rubic/internal/stm/container/blink"
)

func TestHashMapBasic(t *testing.T) {
	rt := stm.New(stm.Config{})
	m := NewHashMap[string](4)
	run(t, rt, func(tx *stm.Tx) {
		if m.Len(tx) != 0 {
			t.Error("new map not empty")
		}
		if !m.Put(tx, 1, "one") {
			t.Error("first Put should insert")
		}
		if m.Put(tx, 1, "uno") {
			t.Error("second Put should update")
		}
		if v, ok := m.Get(tx, 1); !ok || v != "uno" {
			t.Errorf("Get(1) = %q,%v", v, ok)
		}
		if v, inserted := m.PutIfAbsent(tx, 1, "x"); inserted || v != "uno" {
			t.Errorf("PutIfAbsent existing = %q,%v", v, inserted)
		}
		if v, inserted := m.PutIfAbsent(tx, 2, "two"); !inserted || v != "two" {
			t.Errorf("PutIfAbsent new = %q,%v", v, inserted)
		}
		if m.Len(tx) != 2 {
			t.Errorf("Len = %d, want 2", m.Len(tx))
		}
		if !m.Delete(tx, 1) || m.Delete(tx, 1) {
			t.Error("Delete semantics wrong")
		}
		if m.Contains(tx, 1) {
			t.Error("deleted key still present")
		}
	})
}

// TestHashMapModel compares against a Go map under a random op stream,
// including colliding keys (tiny bucket count forces chains).
func TestHashMapModel(t *testing.T) {
	rt := stm.New(stm.Config{})
	m := NewHashMap[int](1) // 16 buckets: plenty of chaining with 200 keys
	model := map[int64]int{}
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 3000; step++ {
		key := int64(rng.Intn(200))
		val := rng.Int()
		op := rng.Intn(10)
		run(t, rt, func(tx *stm.Tx) {
			switch {
			case op < 5:
				inserted := m.Put(tx, key, val)
				_, existed := model[key]
				if inserted == existed {
					t.Fatalf("step %d: Put inserted=%v existed=%v", step, inserted, existed)
				}
				model[key] = val
			case op < 8:
				deleted := m.Delete(tx, key)
				if _, existed := model[key]; deleted != existed {
					t.Fatalf("step %d: Delete=%v existed=%v", step, deleted, existed)
				}
				delete(model, key)
			default:
				got, ok := m.Get(tx, key)
				want, existed := model[key]
				if ok != existed || (ok && got != want) {
					t.Fatalf("step %d: Get=(%d,%v) want (%d,%v)", step, got, ok, want, existed)
				}
			}
			if m.Len(tx) != len(model) {
				t.Fatalf("step %d: Len=%d model=%d", step, m.Len(tx), len(model))
			}
		})
	}
	run(t, rt, func(tx *stm.Tx) {
		count := 0
		m.Range(tx, func(k int64, v int) bool {
			if want, ok := model[k]; !ok || want != v {
				t.Fatalf("Range entry (%d,%d) not in model", k, v)
			}
			count++
			return true
		})
		if count != len(model) {
			t.Fatalf("Range visited %d, want %d", count, len(model))
		}
	})
}

func TestHashMapConcurrentDisjoint(t *testing.T) {
	rt := stm.New(stm.Config{})
	m := NewHashMap[int](64)
	const workers = 5
	const n = 80
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				key := int64(w*n + i)
				if err := rt.Atomic(func(tx *stm.Tx) error {
					m.Put(tx, key, int(key)*2)
					return nil
				}); err != nil {
					t.Errorf("Put: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	run(t, rt, func(tx *stm.Tx) {
		if m.Len(tx) != workers*n {
			t.Fatalf("Len = %d, want %d", m.Len(tx), workers*n)
		}
		for k := int64(0); k < workers*n; k++ {
			if v, ok := m.Get(tx, k); !ok || v != int(k)*2 {
				t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
			}
		}
	})
}

func TestSortedListBasic(t *testing.T) {
	rt := stm.New(stm.Config{})
	l := NewSortedList[string]()
	run(t, rt, func(tx *stm.Tx) {
		for _, k := range []int64{5, 1, 3, 2, 4} {
			if !l.Insert(tx, k, "v") {
				t.Fatalf("Insert(%d) failed", k)
			}
		}
		if l.Insert(tx, 3, "dup") {
			t.Error("duplicate Insert succeeded")
		}
		keys := l.Keys(tx)
		want := []int64{1, 2, 3, 4, 5}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("Keys = %v, want %v", keys, want)
			}
		}
		if !l.Update(tx, 3, "three") {
			t.Error("Update of present key failed")
		}
		if l.Update(tx, 9, "none") {
			t.Error("Update of absent key succeeded")
		}
		if v, ok := l.Get(tx, 3); !ok || v != "three" {
			t.Errorf("Get(3) = %q,%v", v, ok)
		}
		if !l.Remove(tx, 1) || !l.Remove(tx, 5) || l.Remove(tx, 7) {
			t.Error("Remove semantics wrong")
		}
		if l.Len(tx) != 3 {
			t.Errorf("Len = %d, want 3", l.Len(tx))
		}
	})
}

// TestSortedListQuickSortedness property: after arbitrary inserts and
// removes, keys are strictly ascending and match a set model.
func TestSortedListQuickSortedness(t *testing.T) {
	f := func(ins []int8, del []int8) bool {
		rt := stm.New(stm.Config{})
		l := NewSortedList[struct{}]()
		model := map[int64]struct{}{}
		good := true
		err := rt.Atomic(func(tx *stm.Tx) error {
			for _, k := range ins {
				l.Insert(tx, int64(k), struct{}{})
				model[int64(k)] = struct{}{}
			}
			for _, k := range del {
				l.Remove(tx, int64(k))
				delete(model, int64(k))
			}
			keys := l.Keys(tx)
			if len(keys) != len(model) {
				good = false
				return nil
			}
			for i := 1; i < len(keys); i++ {
				if keys[i-1] >= keys[i] {
					good = false
					return nil
				}
			}
			for _, k := range keys {
				if _, ok := model[k]; !ok {
					good = false
					return nil
				}
			}
			return nil
		})
		return err == nil && good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderedRangeHelpersAtomicRO exercises every ordered-scan helper on the
// skip list and the red-black tree inside read-only transactions, on both
// engines: AtomicRO is the path the ordered workloads actually serve scans
// from, and it validates reads differently per engine (TL2 version checks vs
// NOrec value comparison), so write-path tests alone don't cover it.
func TestOrderedRangeHelpersAtomicRO(t *testing.T) {
	keys := []int64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	for _, algo := range []stm.Algorithm{stm.TL2, stm.NOrec} {
		rt := stm.New(stm.Config{Algorithm: algo})
		sl := NewSkipList[int64]()
		rb := NewRBTree[int64]()
		run(t, rt, func(tx *stm.Tx) {
			for _, k := range keys {
				sl.Put(tx, k, k*10)
				rb.Put(tx, k, k*10)
			}
		})
		if err := rt.AtomicRO(func(tx *stm.Tx) error {
			// Full iteration, both containers, same ascending order.
			var got []int64
			sl.Range(tx, func(k, v int64) bool {
				if v != k*10 {
					t.Fatalf("SkipList.Range value for %d = %d", k, v)
				}
				got = append(got, k)
				return true
			})
			var rbGot []int64
			rb.Range(tx, func(k, v int64) bool {
				rbGot = append(rbGot, k)
				return true
			})
			if len(got) != len(keys) || len(rbGot) != len(keys) {
				t.Fatalf("Range lengths: skiplist %d, rbtree %d, want %d", len(got), len(rbGot), len(keys))
			}
			for i := range keys {
				if got[i] != keys[i] || rbGot[i] != keys[i] {
					t.Fatalf("Range order: skiplist %v, rbtree %v, want %v", got, rbGot, keys)
				}
			}
			// Keys helpers agree with Range.
			if sk, rk := sl.Keys(tx), rb.Keys(tx); len(sk) != len(keys) || len(rk) != len(keys) {
				t.Fatalf("Keys lengths: %d, %d", len(sk), len(rk))
			}
			// Bounded windows: interior, exact-endpoint, empty, and
			// past-the-end windows must agree across both containers.
			for _, w := range [][2]int64{{5, 19}, {4, 18}, {0, 2}, {24, 28}, {30, 99}, {-5, 100}} {
				var sw, rw []int64
				sl.RangeBetween(tx, w[0], w[1], func(k, v int64) bool {
					sw = append(sw, k)
					return true
				})
				rb.RangeBetween(tx, w[0], w[1], func(k, v int64) bool {
					rw = append(rw, k)
					return true
				})
				var want []int64
				for _, k := range keys {
					if k >= w[0] && k <= w[1] {
						want = append(want, k)
					}
				}
				if len(sw) != len(want) || len(rw) != len(want) {
					t.Fatalf("window %v: skiplist %v, rbtree %v, want %v", w, sw, rw, want)
				}
				for i := range want {
					if sw[i] != want[i] || rw[i] != want[i] {
						t.Fatalf("window %v: skiplist %v, rbtree %v, want %v", w, sw, rw, want)
					}
				}
			}
			// Early termination stops the walk without visiting further keys.
			n := 0
			sl.RangeBetween(tx, 0, 100, func(k, v int64) bool { n++; return n < 3 })
			if n != 3 {
				t.Fatalf("skiplist early stop visited %d", n)
			}
			n = 0
			rb.RangeBetween(tx, 0, 100, func(k, v int64) bool { n++; return n < 3 })
			if n != 3 {
				t.Fatalf("rbtree early stop visited %d", n)
			}
			// Navigation helpers on the tree.
			if k, _, ok := rb.Min(tx); !ok || k != 2 {
				t.Fatalf("Min = %d,%v", k, ok)
			}
			if k, _, ok := rb.Max(tx); !ok || k != 29 {
				t.Fatalf("Max = %d,%v", k, ok)
			}
			if k, _, ok := rb.Ceiling(tx, 6); !ok || k != 7 {
				t.Fatalf("Ceiling(6) = %d,%v", k, ok)
			}
			if k, _, ok := rb.Floor(tx, 6); !ok || k != 5 {
				t.Fatalf("Floor(6) = %d,%v", k, ok)
			}
			if _, _, ok := rb.Ceiling(tx, 30); ok {
				t.Fatal("Ceiling past max should miss")
			}
			if _, _, ok := rb.Floor(tx, 1); ok {
				t.Fatal("Floor before min should miss")
			}
			return nil
		}); err != nil {
			t.Fatalf("AtomicRO(%v): %v", algo, err)
		}
	}
}

// TestOrderedScanAgreement is the three-way scan property test: arbitrary
// insert/delete histories applied identically to the skip list, the
// red-black tree, and the blink map must yield identical bounded scans from
// read-only transactions, for arbitrary windows. Any divergence in ordering,
// boundary handling, or deletion visibility between the three ordered
// containers fails here.
func TestOrderedScanAgreement(t *testing.T) {
	f := func(ins []uint8, del []uint8, loRaw, width uint8) bool {
		rt := stm.New(stm.Config{})
		sl := NewSkipList[int64]()
		rb := NewRBTree[int64]()
		bm := blink.NewMap[int64]()
		model := map[int64]int64{}
		err := rt.Atomic(func(tx *stm.Tx) error {
			for i, k := range ins {
				key, val := int64(k%64), int64(i)
				sl.Put(tx, key, val)
				rb.Put(tx, key, val)
				bm.Put(tx, key, val)
				model[key] = val
			}
			for _, k := range del {
				key := int64(k % 64)
				a, b, c := sl.Delete(tx, key), rb.Delete(tx, key), bm.Delete(tx, key)
				if a != b || b != c {
					t.Fatalf("Delete(%d) disagrees: skiplist %v, rbtree %v, blink %v", key, a, b, c)
				}
				delete(model, key)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		lo := int64(loRaw % 64)
		hi := lo + int64(width%16)
		var want []int64
		for k := range model {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		good := true
		err = rt.AtomicRO(func(tx *stm.Tx) error {
			collect := func(scan func(func(k, v int64) bool)) []int64 {
				var out []int64
				scan(func(k, v int64) bool {
					if model[k] != v {
						good = false
					}
					out = append(out, k)
					return true
				})
				return out
			}
			got := [][]int64{
				collect(func(fn func(k, v int64) bool) { sl.RangeBetween(tx, lo, hi, fn) }),
				collect(func(fn func(k, v int64) bool) { rb.RangeBetween(tx, lo, hi, fn) }),
				collect(func(fn func(k, v int64) bool) { bm.RangeBetween(tx, lo, hi, fn) }),
			}
			for _, g := range got {
				if len(g) != len(want) {
					good = false
					return nil
				}
				for i := range want {
					if g[i] != want[i] {
						good = false
						return nil
					}
				}
			}
			return nil
		})
		return err == nil && good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFIFO(t *testing.T) {
	rt := stm.New(stm.Config{})
	q := NewQueue[int]()
	run(t, rt, func(tx *stm.Tx) {
		if !q.Empty(tx) {
			t.Error("new queue not empty")
		}
		if _, ok := q.Pop(tx); ok {
			t.Error("Pop from empty queue succeeded")
		}
		for i := 0; i < 10; i++ {
			q.Push(tx, i)
		}
		if v, ok := q.Peek(tx); !ok || v != 0 {
			t.Errorf("Peek = %d,%v", v, ok)
		}
		for i := 0; i < 10; i++ {
			v, ok := q.Pop(tx)
			if !ok || v != i {
				t.Fatalf("Pop #%d = %d,%v", i, v, ok)
			}
		}
		if !q.Empty(tx) || q.Len(tx) != 0 {
			t.Error("queue not empty after draining")
		}
		// Push after drain must work (tail reset path).
		q.Push(tx, 99)
		if v, ok := q.Pop(tx); !ok || v != 99 {
			t.Errorf("Pop after drain = %d,%v", v, ok)
		}
	})
}

// TestQueueConcurrentProducersConsumers checks that every produced element
// is consumed exactly once.
func TestQueueConcurrentProducersConsumers(t *testing.T) {
	rt := stm.New(stm.Config{})
	q := NewQueue[int]()
	const producers = 3
	const consumers = 3
	const perProducer = 100
	total := producers * perProducer

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := p*perProducer + i
				if err := rt.Atomic(func(tx *stm.Tx) error {
					q.Push(tx, v)
					return nil
				}); err != nil {
					t.Errorf("Push: %v", err)
				}
			}
		}(p)
	}

	var mu sync.Mutex
	seen := make(map[int]int)
	var cwg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				var v int
				var ok bool
				if err := rt.Atomic(func(tx *stm.Tx) error {
					v, ok = q.Pop(tx)
					return nil
				}); err != nil {
					t.Errorf("Pop: %v", err)
					return
				}
				if ok {
					mu.Lock()
					seen[v]++
					n := len(seen)
					mu.Unlock()
					if n == total {
						close(done)
					}
					continue
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	<-done
	cwg.Wait()
	if len(seen) != total {
		t.Fatalf("consumed %d distinct values, want %d", len(seen), total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d consumed %d times", v, n)
		}
	}
}
