package container

import (
	"rubic/internal/stm"
)

// hentry is a singly linked chain node of a HashMap bucket. Key is immutable;
// value and next pointer are transactional.
type hentry[V any] struct {
	key  int64
	val  *stm.Var[V]
	next *stm.Var[*hentry[V]]
}

// HashMap is a transactional fixed-capacity chained hash table from int64
// keys to V. The bucket count is fixed at construction (STAMP's hashtable is
// likewise non-resizing), so transactions only conflict within a bucket
// chain. It backs Intruder's fragment dictionary.
type HashMap[V any] struct {
	buckets []*stm.Var[*hentry[V]]
	size    *stm.Var[int]
	mask    uint64
}

// NewHashMap returns a map with at least minBuckets buckets (rounded up to a
// power of two, minimum 16).
func NewHashMap[V any](minBuckets int) *HashMap[V] {
	n := 16
	for n < minBuckets {
		n <<= 1
	}
	m := &HashMap[V]{
		buckets: make([]*stm.Var[*hentry[V]], n),
		size:    stm.NewVar(0),
		mask:    uint64(n - 1),
	}
	for i := range m.buckets {
		m.buckets[i] = stm.NewVar[*hentry[V]](nil)
	}
	return m
}

// hash mixes the key (splitmix64 finalizer) so sequential keys spread.
func (m *HashMap[V]) hash(key int64) uint64 {
	x := uint64(key)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x & m.mask
}

// Len returns the number of entries.
func (m *HashMap[V]) Len(tx *stm.Tx) int { return m.size.Read(tx) }

// Get returns the value stored under key.
func (m *HashMap[V]) Get(tx *stm.Tx, key int64) (V, bool) {
	e := m.buckets[m.hash(key)].Read(tx)
	for e != nil {
		if e.key == key {
			return e.val.Read(tx), true
		}
		e = e.next.Read(tx)
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (m *HashMap[V]) Contains(tx *stm.Tx, key int64) bool {
	_, ok := m.Get(tx, key)
	return ok
}

// Put inserts or updates key and reports whether a new entry was created.
func (m *HashMap[V]) Put(tx *stm.Tx, key int64, val V) bool {
	head := m.buckets[m.hash(key)]
	e := head.Read(tx)
	for n := e; n != nil; n = n.next.Read(tx) {
		if n.key == key {
			n.val.Write(tx, val)
			return false
		}
	}
	head.Write(tx, &hentry[V]{
		key:  key,
		val:  stm.NewVar(val),
		next: stm.NewVar(e),
	})
	m.size.Write(tx, m.size.Read(tx)+1)
	return true
}

// PutIfAbsent inserts key only when missing; it returns the resident value
// and whether an insertion happened.
func (m *HashMap[V]) PutIfAbsent(tx *stm.Tx, key int64, val V) (V, bool) {
	head := m.buckets[m.hash(key)]
	e := head.Read(tx)
	for n := e; n != nil; n = n.next.Read(tx) {
		if n.key == key {
			return n.val.Read(tx), false
		}
	}
	head.Write(tx, &hentry[V]{
		key:  key,
		val:  stm.NewVar(val),
		next: stm.NewVar(e),
	})
	m.size.Write(tx, m.size.Read(tx)+1)
	return val, true
}

// EntryVar returns the transactional variable holding key's value, or nil
// when the key is absent. Chain nodes never change their val Var once
// inserted (updates write through it), so the returned Var stays the live
// storage for the key until the entry is deleted — which is what durable
// registration needs: a stable location to bind a WAL id to.
func (m *HashMap[V]) EntryVar(tx *stm.Tx, key int64) *stm.Var[V] {
	e := m.buckets[m.hash(key)].Read(tx)
	for e != nil {
		if e.key == key {
			return e.val
		}
		e = e.next.Read(tx)
	}
	return nil
}

// Delete removes key and reports whether it was present.
func (m *HashMap[V]) Delete(tx *stm.Tx, key int64) bool {
	head := m.buckets[m.hash(key)]
	prev := (*hentry[V])(nil)
	e := head.Read(tx)
	for e != nil {
		next := e.next.Read(tx)
		if e.key == key {
			if prev == nil {
				head.Write(tx, next)
			} else {
				prev.next.Write(tx, next)
			}
			m.size.Write(tx, m.size.Read(tx)-1)
			return true
		}
		prev, e = e, next
	}
	return false
}

// Range calls fn for every entry (bucket order, chain order) until fn
// returns false.
func (m *HashMap[V]) Range(tx *stm.Tx, fn func(key int64, val V) bool) {
	for _, b := range m.buckets {
		for e := b.Read(tx); e != nil; e = e.next.Read(tx) {
			if !fn(e.key, e.val.Read(tx)) {
				return
			}
		}
	}
}
