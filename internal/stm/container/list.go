package container

import (
	"rubic/internal/stm"
)

// lnode is a sorted-list node; the key is immutable.
type lnode[V any] struct {
	key  int64
	val  *stm.Var[V]
	next *stm.Var[*lnode[V]]
}

// SortedList is a transactional ascending singly linked list keyed by int64.
// STAMP uses such lists for small per-object collections (e.g. a customer's
// reservation list in Vacation).
type SortedList[V any] struct {
	head *stm.Var[*lnode[V]]
	size *stm.Var[int]
}

// NewSortedList returns an empty list.
func NewSortedList[V any]() *SortedList[V] {
	return &SortedList[V]{
		head: stm.NewVar[*lnode[V]](nil),
		size: stm.NewVar(0),
	}
}

// Len returns the number of elements.
func (l *SortedList[V]) Len(tx *stm.Tx) int { return l.size.Read(tx) }

// locate returns the first node with key >= k and its predecessor.
func (l *SortedList[V]) locate(tx *stm.Tx, k int64) (prev, cur *lnode[V]) {
	cur = l.head.Read(tx)
	for cur != nil && cur.key < k {
		prev, cur = cur, cur.next.Read(tx)
	}
	return prev, cur
}

// Get returns the value stored under key.
func (l *SortedList[V]) Get(tx *stm.Tx, key int64) (V, bool) {
	_, cur := l.locate(tx, key)
	if cur != nil && cur.key == key {
		return cur.val.Read(tx), true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (l *SortedList[V]) Contains(tx *stm.Tx, key int64) bool {
	_, ok := l.Get(tx, key)
	return ok
}

// Insert adds key if absent and reports whether it was inserted.
func (l *SortedList[V]) Insert(tx *stm.Tx, key int64, val V) bool {
	prev, cur := l.locate(tx, key)
	if cur != nil && cur.key == key {
		return false
	}
	n := &lnode[V]{key: key, val: stm.NewVar(val), next: stm.NewVar(cur)}
	if prev == nil {
		l.head.Write(tx, n)
	} else {
		prev.next.Write(tx, n)
	}
	l.size.Write(tx, l.size.Read(tx)+1)
	return true
}

// Update stores val under an existing key; it reports whether key existed.
func (l *SortedList[V]) Update(tx *stm.Tx, key int64, val V) bool {
	_, cur := l.locate(tx, key)
	if cur == nil || cur.key != key {
		return false
	}
	cur.val.Write(tx, val)
	return true
}

// Remove deletes key and reports whether it was present.
func (l *SortedList[V]) Remove(tx *stm.Tx, key int64) bool {
	prev, cur := l.locate(tx, key)
	if cur == nil || cur.key != key {
		return false
	}
	next := cur.next.Read(tx)
	if prev == nil {
		l.head.Write(tx, next)
	} else {
		prev.next.Write(tx, next)
	}
	l.size.Write(tx, l.size.Read(tx)-1)
	return true
}

// Range calls fn in ascending key order until fn returns false.
func (l *SortedList[V]) Range(tx *stm.Tx, fn func(key int64, val V) bool) {
	for n := l.head.Read(tx); n != nil; n = n.next.Read(tx) {
		if !fn(n.key, n.val.Read(tx)) {
			return
		}
	}
}

// Keys returns all keys in ascending order.
func (l *SortedList[V]) Keys(tx *stm.Tx) []int64 {
	out := make([]int64, 0, l.size.Read(tx))
	l.Range(tx, func(k int64, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}
