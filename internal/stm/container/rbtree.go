// Package container provides transactional data structures built on the stm
// package: a red-black tree map, a hash map, a sorted linked list and a
// FIFO queue. They mirror the library of structures that STAMP's benchmarks
// use on top of RSTM, and all of their operations must run inside a
// transaction supplied by the caller.
package container

import (
	"rubic/internal/stm"
)

type color bool

const (
	red   color = true
	black color = false
)

// rbnode is one tree node. The key is immutable after insertion; all links
// and the color are transactional so concurrent transactions conflict
// exactly on the paths they touch.
type rbnode[V any] struct {
	key    int64
	val    *stm.Var[V]
	left   *stm.Var[*rbnode[V]]
	right  *stm.Var[*rbnode[V]]
	parent *stm.Var[*rbnode[V]]
	col    *stm.Var[color]
}

func newRBNode[V any](key int64, val V, c color) *rbnode[V] {
	return &rbnode[V]{
		key:    key,
		val:    stm.NewVar(val),
		left:   stm.NewVar[*rbnode[V]](nil),
		right:  stm.NewVar[*rbnode[V]](nil),
		parent: stm.NewVar[*rbnode[V]](nil),
		col:    stm.NewVar(c),
	}
}

// RBTree is a transactional ordered map from int64 keys to values of type V,
// implemented as a classic CLRS red-black tree. It matches the red-black
// tree used by the paper's microbenchmark and by Vacation's manager tables.
type RBTree[V any] struct {
	root *stm.Var[*rbnode[V]]
	size *stm.Var[int]
}

// NewRBTree returns an empty tree.
func NewRBTree[V any]() *RBTree[V] {
	return &RBTree[V]{
		root: stm.NewVar[*rbnode[V]](nil),
		size: stm.NewVar(0),
	}
}

// Len returns the number of keys in the tree.
func (t *RBTree[V]) Len(tx *stm.Tx) int { return t.size.Read(tx) }

// Get returns the value stored under key.
func (t *RBTree[V]) Get(tx *stm.Tx, key int64) (V, bool) {
	n := t.lookup(tx, key)
	if n == nil {
		var zero V
		return zero, false
	}
	return n.val.Read(tx), true
}

// Contains reports whether key is present.
func (t *RBTree[V]) Contains(tx *stm.Tx, key int64) bool {
	return t.lookup(tx, key) != nil
}

func (t *RBTree[V]) lookup(tx *stm.Tx, key int64) *rbnode[V] {
	n := t.root.Read(tx)
	for n != nil {
		switch {
		case key < n.key:
			n = n.left.Read(tx)
		case key > n.key:
			n = n.right.Read(tx)
		default:
			return n
		}
	}
	return nil
}

// Put inserts or updates key and reports whether a new key was inserted.
func (t *RBTree[V]) Put(tx *stm.Tx, key int64, val V) bool {
	var parent *rbnode[V]
	n := t.root.Read(tx)
	for n != nil {
		parent = n
		switch {
		case key < n.key:
			n = n.left.Read(tx)
		case key > n.key:
			n = n.right.Read(tx)
		default:
			n.val.Write(tx, val)
			return false
		}
	}
	z := newRBNode(key, val, red)
	z.parent.Write(tx, parent)
	switch {
	case parent == nil:
		t.root.Write(tx, z)
	case key < parent.key:
		parent.left.Write(tx, z)
	default:
		parent.right.Write(tx, z)
	}
	t.insertFixup(tx, z)
	t.size.Write(tx, t.size.Read(tx)+1)
	return true
}

func (t *RBTree[V]) insertFixup(tx *stm.Tx, z *rbnode[V]) {
	for {
		p := z.parent.Read(tx)
		if p == nil || p.col.Read(tx) == black {
			break
		}
		g := p.parent.Read(tx) // grandparent exists: p is red, so p != root
		if p == g.left.Read(tx) {
			u := g.right.Read(tx)
			if u != nil && u.col.Read(tx) == red {
				p.col.Write(tx, black)
				u.col.Write(tx, black)
				g.col.Write(tx, red)
				z = g
				continue
			}
			if z == p.right.Read(tx) {
				z = p
				t.rotateLeft(tx, z)
				p = z.parent.Read(tx)
				g = p.parent.Read(tx)
			}
			p.col.Write(tx, black)
			g.col.Write(tx, red)
			t.rotateRight(tx, g)
		} else {
			u := g.left.Read(tx)
			if u != nil && u.col.Read(tx) == red {
				p.col.Write(tx, black)
				u.col.Write(tx, black)
				g.col.Write(tx, red)
				z = g
				continue
			}
			if z == p.left.Read(tx) {
				z = p
				t.rotateRight(tx, z)
				p = z.parent.Read(tx)
				g = p.parent.Read(tx)
			}
			p.col.Write(tx, black)
			g.col.Write(tx, red)
			t.rotateLeft(tx, g)
		}
	}
	t.root.Read(tx).col.Write(tx, black)
}

func (t *RBTree[V]) rotateLeft(tx *stm.Tx, x *rbnode[V]) {
	y := x.right.Read(tx)
	yl := y.left.Read(tx)
	x.right.Write(tx, yl)
	if yl != nil {
		yl.parent.Write(tx, x)
	}
	xp := x.parent.Read(tx)
	y.parent.Write(tx, xp)
	switch {
	case xp == nil:
		t.root.Write(tx, y)
	case x == xp.left.Read(tx):
		xp.left.Write(tx, y)
	default:
		xp.right.Write(tx, y)
	}
	y.left.Write(tx, x)
	x.parent.Write(tx, y)
}

func (t *RBTree[V]) rotateRight(tx *stm.Tx, x *rbnode[V]) {
	y := x.left.Read(tx)
	yr := y.right.Read(tx)
	x.left.Write(tx, yr)
	if yr != nil {
		yr.parent.Write(tx, x)
	}
	xp := x.parent.Read(tx)
	y.parent.Write(tx, xp)
	switch {
	case xp == nil:
		t.root.Write(tx, y)
	case x == xp.right.Read(tx):
		xp.right.Write(tx, y)
	default:
		xp.left.Write(tx, y)
	}
	y.right.Write(tx, x)
	x.parent.Write(tx, y)
}

// Delete removes key and reports whether it was present.
func (t *RBTree[V]) Delete(tx *stm.Tx, key int64) bool {
	z := t.lookup(tx, key)
	if z == nil {
		return false
	}
	t.deleteNode(tx, z)
	t.size.Write(tx, t.size.Read(tx)-1)
	return true
}

// deleteNode is CLRS RB-DELETE with nil leaves; because we have no sentinel,
// the fixup tracks the parent of the (possibly nil) replacement explicitly.
func (t *RBTree[V]) deleteNode(tx *stm.Tx, z *rbnode[V]) {
	y := z
	yOrigColor := y.col.Read(tx)
	var x *rbnode[V]
	var xParent *rbnode[V]

	switch {
	case z.left.Read(tx) == nil:
		x = z.right.Read(tx)
		xParent = z.parent.Read(tx)
		t.transplant(tx, z, x)
	case z.right.Read(tx) == nil:
		x = z.left.Read(tx)
		xParent = z.parent.Read(tx)
		t.transplant(tx, z, x)
	default:
		y = t.minimum(tx, z.right.Read(tx))
		yOrigColor = y.col.Read(tx)
		x = y.right.Read(tx)
		if y.parent.Read(tx) == z {
			xParent = y
			if x != nil {
				x.parent.Write(tx, y)
			}
		} else {
			xParent = y.parent.Read(tx)
			t.transplant(tx, y, x)
			zr := z.right.Read(tx)
			y.right.Write(tx, zr)
			zr.parent.Write(tx, y)
		}
		t.transplant(tx, z, y)
		zl := z.left.Read(tx)
		y.left.Write(tx, zl)
		zl.parent.Write(tx, y)
		y.col.Write(tx, z.col.Read(tx))
	}
	if yOrigColor == black {
		t.deleteFixup(tx, x, xParent)
	}
}

// transplant replaces subtree rooted at u with subtree rooted at v.
func (t *RBTree[V]) transplant(tx *stm.Tx, u, v *rbnode[V]) {
	up := u.parent.Read(tx)
	switch {
	case up == nil:
		t.root.Write(tx, v)
	case u == up.left.Read(tx):
		up.left.Write(tx, v)
	default:
		up.right.Write(tx, v)
	}
	if v != nil {
		v.parent.Write(tx, up)
	}
}

func (t *RBTree[V]) minimum(tx *stm.Tx, n *rbnode[V]) *rbnode[V] {
	for {
		l := n.left.Read(tx)
		if l == nil {
			return n
		}
		n = l
	}
}

func isRed[V any](tx *stm.Tx, n *rbnode[V]) bool {
	return n != nil && n.col.Read(tx) == red
}

func (t *RBTree[V]) deleteFixup(tx *stm.Tx, x, xParent *rbnode[V]) {
	for x != t.root.Read(tx) && !isRed(tx, x) {
		if xParent == nil {
			break
		}
		if x == xParent.left.Read(tx) {
			w := xParent.right.Read(tx)
			if isRed(tx, w) {
				w.col.Write(tx, black)
				xParent.col.Write(tx, red)
				t.rotateLeft(tx, xParent)
				w = xParent.right.Read(tx)
			}
			if !isRed(tx, w.left.Read(tx)) && !isRed(tx, w.right.Read(tx)) {
				w.col.Write(tx, red)
				x = xParent
				xParent = x.parent.Read(tx)
			} else {
				if !isRed(tx, w.right.Read(tx)) {
					wl := w.left.Read(tx)
					if wl != nil {
						wl.col.Write(tx, black)
					}
					w.col.Write(tx, red)
					t.rotateRight(tx, w)
					w = xParent.right.Read(tx)
				}
				w.col.Write(tx, xParent.col.Read(tx))
				xParent.col.Write(tx, black)
				wr := w.right.Read(tx)
				if wr != nil {
					wr.col.Write(tx, black)
				}
				t.rotateLeft(tx, xParent)
				x = t.root.Read(tx)
				xParent = nil
			}
		} else {
			w := xParent.left.Read(tx)
			if isRed(tx, w) {
				w.col.Write(tx, black)
				xParent.col.Write(tx, red)
				t.rotateRight(tx, xParent)
				w = xParent.left.Read(tx)
			}
			if !isRed(tx, w.right.Read(tx)) && !isRed(tx, w.left.Read(tx)) {
				w.col.Write(tx, red)
				x = xParent
				xParent = x.parent.Read(tx)
			} else {
				if !isRed(tx, w.left.Read(tx)) {
					wr := w.right.Read(tx)
					if wr != nil {
						wr.col.Write(tx, black)
					}
					w.col.Write(tx, red)
					t.rotateLeft(tx, w)
					w = xParent.left.Read(tx)
				}
				w.col.Write(tx, xParent.col.Read(tx))
				xParent.col.Write(tx, black)
				wl := w.left.Read(tx)
				if wl != nil {
					wl.col.Write(tx, black)
				}
				t.rotateRight(tx, xParent)
				x = t.root.Read(tx)
				xParent = nil
			}
		}
	}
	if x != nil {
		x.col.Write(tx, black)
	}
}

// Range calls fn for each key/value in ascending key order until fn returns
// false. It must run inside a transaction like every other operation.
func (t *RBTree[V]) Range(tx *stm.Tx, fn func(key int64, val V) bool) {
	t.rangeFrom(tx, t.root.Read(tx), fn)
}

func (t *RBTree[V]) rangeFrom(tx *stm.Tx, n *rbnode[V], fn func(int64, V) bool) bool {
	if n == nil {
		return true
	}
	if !t.rangeFrom(tx, n.left.Read(tx), fn) {
		return false
	}
	if !fn(n.key, n.val.Read(tx)) {
		return false
	}
	return t.rangeFrom(tx, n.right.Read(tx), fn)
}

// Keys returns all keys in ascending order.
func (t *RBTree[V]) Keys(tx *stm.Tx) []int64 {
	out := make([]int64, 0, t.size.Read(tx))
	t.Range(tx, func(k int64, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// CheckInvariants verifies the red-black properties inside tx and returns a
// descriptive violation or "" when the tree is valid. Intended for tests.
func (t *RBTree[V]) CheckInvariants(tx *stm.Tx) string {
	root := t.root.Read(tx)
	if root == nil {
		return ""
	}
	if root.col.Read(tx) == red {
		return "root is red"
	}
	_, msg := t.check(tx, root, nil)
	return msg
}

// check returns the black height of the subtree and a violation message.
func (t *RBTree[V]) check(tx *stm.Tx, n, parent *rbnode[V]) (int, string) {
	if n == nil {
		return 1, ""
	}
	if got := n.parent.Read(tx); got != parent {
		return 0, "broken parent link"
	}
	l, r := n.left.Read(tx), n.right.Read(tx)
	if l != nil && l.key >= n.key {
		return 0, "left key out of order"
	}
	if r != nil && r.key <= n.key {
		return 0, "right key out of order"
	}
	if n.col.Read(tx) == red && (isRed(tx, l) || isRed(tx, r)) {
		return 0, "red node with red child"
	}
	lh, msg := t.check(tx, l, n)
	if msg != "" {
		return 0, msg
	}
	rh, msg := t.check(tx, r, n)
	if msg != "" {
		return 0, msg
	}
	if lh != rh {
		return 0, "black height mismatch"
	}
	if n.col.Read(tx) == black {
		lh++
	}
	return lh, ""
}

// Min returns the smallest key and its value; ok is false for an empty tree.
func (t *RBTree[V]) Min(tx *stm.Tx) (key int64, val V, ok bool) {
	n := t.root.Read(tx)
	if n == nil {
		var zero V
		return 0, zero, false
	}
	n = t.minimum(tx, n)
	return n.key, n.val.Read(tx), true
}

// Max returns the largest key and its value; ok is false for an empty tree.
func (t *RBTree[V]) Max(tx *stm.Tx) (key int64, val V, ok bool) {
	n := t.root.Read(tx)
	if n == nil {
		var zero V
		return 0, zero, false
	}
	for {
		r := n.right.Read(tx)
		if r == nil {
			return n.key, n.val.Read(tx), true
		}
		n = r
	}
}

// Ceiling returns the smallest key >= from and its value; ok is false when
// no such key exists.
func (t *RBTree[V]) Ceiling(tx *stm.Tx, from int64) (key int64, val V, ok bool) {
	var best *rbnode[V]
	n := t.root.Read(tx)
	for n != nil {
		switch {
		case n.key == from:
			return n.key, n.val.Read(tx), true
		case n.key > from:
			best = n
			n = n.left.Read(tx)
		default:
			n = n.right.Read(tx)
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val.Read(tx), true
}

// Floor returns the largest key <= from and its value; ok is false when no
// such key exists.
func (t *RBTree[V]) Floor(tx *stm.Tx, from int64) (key int64, val V, ok bool) {
	var best *rbnode[V]
	n := t.root.Read(tx)
	for n != nil {
		switch {
		case n.key == from:
			return n.key, n.val.Read(tx), true
		case n.key < from:
			best = n
			n = n.right.Read(tx)
		default:
			n = n.left.Read(tx)
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val.Read(tx), true
}

// RangeBetween calls fn for each key in [lo, hi] in ascending order until
// fn returns false.
func (t *RBTree[V]) RangeBetween(tx *stm.Tx, lo, hi int64, fn func(key int64, val V) bool) {
	t.rangeBetween(tx, t.root.Read(tx), lo, hi, fn)
}

func (t *RBTree[V]) rangeBetween(tx *stm.Tx, n *rbnode[V], lo, hi int64, fn func(int64, V) bool) bool {
	if n == nil {
		return true
	}
	if n.key > lo {
		if !t.rangeBetween(tx, n.left.Read(tx), lo, hi, fn) {
			return false
		}
	}
	if n.key >= lo && n.key <= hi {
		if !fn(n.key, n.val.Read(tx)) {
			return false
		}
	}
	if n.key < hi {
		return t.rangeBetween(tx, n.right.Read(tx), lo, hi, fn)
	}
	return true
}
