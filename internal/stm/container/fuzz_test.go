package container

import (
	"sort"
	"testing"

	"rubic/internal/stm"
)

// Native fuzz targets: random operation sequences drive each container
// through transactions on BOTH engines simultaneously, checked against a
// plain-map oracle. The oracle is mutated only after the commit succeeds
// (the transactional closures stay retry-safe), structural invariants are
// verified after every commit, and the two engines must agree operation by
// operation — a differential check on top of the model check.
//
// Op encoding: two bytes per operation. The first byte selects the
// operation, the second the key; the keyspace is kept tiny (16 keys) so
// sequences collide constantly and exercise rebalancing/deletion paths.

const fuzzKeySpace = 16

type fuzzOp struct {
	kind byte // 0=Put 1=Delete 2=Get 3=Len
	key  int64
	val  int
}

func decodeOps(data []byte) []fuzzOp {
	ops := make([]fuzzOp, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		ops = append(ops, fuzzOp{
			kind: data[i] % 4,
			key:  int64(data[i+1] % fuzzKeySpace),
			// A value unique to the op position, small enough to box free.
			val: (i / 2) & 0x7f,
		})
	}
	return ops
}

// fuzzSeeds are shared between both targets; files under testdata/fuzz add
// longer sequences.
func addFuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1})                                     // single put
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 2, 2, 1, 3, 0})       // put/put/put/del/get/len
	f.Add([]byte{0, 5, 0, 5, 1, 5, 1, 5, 2, 5})             // duplicate put, double delete
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6}) // ascending inserts (rotation heavy)
	f.Add([]byte{0, 6, 0, 5, 0, 4, 0, 3, 0, 2, 0, 1, 1, 3, 1, 4})
}

func FuzzRBTree(f *testing.F) {
	addFuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeOps(data)
		if len(ops) > 512 {
			ops = ops[:512]
		}
		engines := []*stm.Runtime{
			stm.New(stm.Config{Algorithm: stm.TL2}),
			stm.New(stm.Config{Algorithm: stm.NOrec}),
		}
		trees := []*RBTree[int]{NewRBTree[int](), NewRBTree[int]()}
		oracle := map[int64]int{}
		for opIdx, op := range ops {
			var results [2]struct {
				changed bool
				got     int
				ok      bool
				n       int
			}
			for e, rt := range engines {
				tree := trees[e]
				r := &results[e]
				err := rt.Atomic(func(tx *stm.Tx) error {
					switch op.kind {
					case 0:
						r.changed = tree.Put(tx, op.key, op.val)
					case 1:
						r.changed = tree.Delete(tx, op.key)
					case 2:
						r.got, r.ok = tree.Get(tx, op.key)
					case 3:
						r.n = tree.Len(tx)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("op %d engine %d: %v", opIdx, e, err)
				}
				// Structural invariants after every commit.
				if err := rt.AtomicRO(func(tx *stm.Tx) error {
					if msg := tree.CheckInvariants(tx); msg != "" {
						t.Fatalf("op %d engine %d: invariant violated: %s", opIdx, e, msg)
					}
					if n := tree.Len(tx); n != len(oracleAfter(oracle, op)) {
						t.Fatalf("op %d engine %d: Len = %d, oracle %d", opIdx, e, n, len(oracleAfter(oracle, op)))
					}
					return nil
				}); err != nil {
					t.Fatalf("op %d engine %d: %v", opIdx, e, err)
				}
			}
			if results[0] != results[1] {
				t.Fatalf("op %d: engines disagree: tl2=%+v norec=%+v", opIdx, results[0], results[1])
			}
			// Model check against the oracle, then advance it.
			_, inOracle := oracle[op.key]
			switch op.kind {
			case 0:
				if results[0].changed != !inOracle {
					t.Fatalf("op %d: Put(%d) changed=%v, oracle had=%v", opIdx, op.key, results[0].changed, inOracle)
				}
				oracle[op.key] = op.val
			case 1:
				if results[0].changed != inOracle {
					t.Fatalf("op %d: Delete(%d) changed=%v, oracle had=%v", opIdx, op.key, results[0].changed, inOracle)
				}
				delete(oracle, op.key)
			case 2:
				if results[0].ok != inOracle || (inOracle && results[0].got != oracle[op.key]) {
					t.Fatalf("op %d: Get(%d) = (%d,%v), oracle (%d,%v)",
						opIdx, op.key, results[0].got, results[0].ok, oracle[op.key], inOracle)
				}
			case 3:
				if results[0].n != len(oracle) {
					t.Fatalf("op %d: Len = %d, oracle %d", opIdx, results[0].n, len(oracle))
				}
			}
		}
		// Final sweep: sorted key sets must match the oracle exactly.
		want := make([]int64, 0, len(oracle))
		for k := range oracle {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for e, rt := range engines {
			tree := trees[e]
			if err := rt.AtomicRO(func(tx *stm.Tx) error {
				got := tree.Keys(tx)
				if len(got) != len(want) {
					t.Fatalf("engine %d: %d keys, oracle %d", e, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("engine %d: Keys[%d] = %d, oracle %d", e, i, got[i], want[i])
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// oracleAfter returns the oracle as it will look once op is applied; the
// invariant check runs after the container committed op but before the
// oracle advances, so Len comparisons need the post-state.
func oracleAfter(oracle map[int64]int, op fuzzOp) map[int64]int {
	switch op.kind {
	case 0:
		if _, ok := oracle[op.key]; !ok {
			out := make(map[int64]int, len(oracle)+1)
			for k, v := range oracle {
				out[k] = v
			}
			out[op.key] = op.val
			return out
		}
	case 1:
		if _, ok := oracle[op.key]; ok {
			out := make(map[int64]int, len(oracle))
			for k, v := range oracle {
				if k != op.key {
					out[k] = v
				}
			}
			return out
		}
	}
	return oracle
}

func FuzzHashMap(f *testing.F) {
	addFuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeOps(data)
		if len(ops) > 512 {
			ops = ops[:512]
		}
		engines := []*stm.Runtime{
			stm.New(stm.Config{Algorithm: stm.TL2}),
			stm.New(stm.Config{Algorithm: stm.NOrec}),
		}
		maps := []*HashMap[int]{NewHashMap[int](4), NewHashMap[int](4)}
		oracle := map[int64]int{}
		for opIdx, op := range ops {
			var results [2]struct {
				changed bool
				got     int
				ok      bool
				n       int
			}
			for e, rt := range engines {
				m := maps[e]
				r := &results[e]
				err := rt.Atomic(func(tx *stm.Tx) error {
					switch op.kind {
					case 0:
						r.changed = m.Put(tx, op.key, op.val)
					case 1:
						r.changed = m.Delete(tx, op.key)
					case 2:
						r.got, r.ok = m.Get(tx, op.key)
					case 3:
						r.n = m.Len(tx)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("op %d engine %d: %v", opIdx, e, err)
				}
			}
			if results[0] != results[1] {
				t.Fatalf("op %d: engines disagree: tl2=%+v norec=%+v", opIdx, results[0], results[1])
			}
			_, inOracle := oracle[op.key]
			switch op.kind {
			case 0:
				if results[0].changed != !inOracle {
					t.Fatalf("op %d: Put(%d) changed=%v, oracle had=%v", opIdx, op.key, results[0].changed, inOracle)
				}
				oracle[op.key] = op.val
			case 1:
				if results[0].changed != inOracle {
					t.Fatalf("op %d: Delete(%d) changed=%v, oracle had=%v", opIdx, op.key, results[0].changed, inOracle)
				}
				delete(oracle, op.key)
			case 2:
				if results[0].ok != inOracle || (inOracle && results[0].got != oracle[op.key]) {
					t.Fatalf("op %d: Get(%d) = (%d,%v), oracle (%d,%v)",
						opIdx, op.key, results[0].got, results[0].ok, oracle[op.key], inOracle)
				}
			case 3:
				if results[0].n != len(oracle) {
					t.Fatalf("op %d: Len = %d, oracle %d", opIdx, results[0].n, len(oracle))
				}
			}
			// Size consistency after every commit: Len must equal the number
			// of keys Range visits.
			for e, rt := range engines {
				m := maps[e]
				if err := rt.AtomicRO(func(tx *stm.Tx) error {
					visited := 0
					m.Range(tx, func(int64, int) bool { visited++; return true })
					if n := m.Len(tx); n != visited {
						t.Fatalf("op %d engine %d: Len=%d but Range visited %d", opIdx, e, n, visited)
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Final sweep against the oracle.
		for e, rt := range engines {
			m := maps[e]
			if err := rt.AtomicRO(func(tx *stm.Tx) error {
				if n := m.Len(tx); n != len(oracle) {
					t.Fatalf("engine %d: final Len = %d, oracle %d", e, n, len(oracle))
				}
				for k, v := range oracle {
					got, ok := m.Get(tx, k)
					if !ok || got != v {
						t.Fatalf("engine %d: Get(%d) = (%d,%v), oracle %d", e, k, got, ok, v)
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// FuzzAdaptiveSwitch is the switch-point differential fuzzer: the same
// operation sequence runs on an adaptive runtime that hot-swaps its engine
// and contention manager mid-sequence (schedule derived from the fuzz input)
// and on a static runtime, both checked against a plain-map oracle after
// every commit. Any state the handoff tears — a value lost in the engine
// switch, a version left in the future of the re-seeded clock — surfaces as
// a divergence from the static twin or the oracle.
//
// Input encoding: byte 0 picks the switch period (every 1..8 operations, a
// CM swap plus an engine handoff); the rest is the shared two-byte op
// stream of decodeOps.
func FuzzAdaptiveSwitch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1}) // period 1: switch before every op
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 1, 2, 2, 1, 3, 0})
	f.Add([]byte{2, 0, 5, 0, 5, 1, 5, 1, 5, 2, 5})
	f.Add([]byte{1, 0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6})
	f.Add([]byte{7, 0, 6, 0, 5, 0, 4, 0, 3, 0, 2, 0, 1, 1, 3, 1, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		period := 1
		if len(data) > 0 {
			period = 1 + int(data[0]%8)
			data = data[1:]
		}
		ops := decodeOps(data)
		if len(ops) > 256 {
			ops = ops[:256]
		}
		adaptive := stm.New(stm.Config{Algorithm: stm.TL2})
		static := stm.New(stm.Config{Algorithm: stm.TL2})
		runtimes := []*stm.Runtime{adaptive, static}
		maps := []*HashMap[int]{NewHashMap[int](4), NewHashMap[int](4)}
		oracle := map[int64]int{}
		engines := [2]stm.Algorithm{stm.NOrec, stm.TL2}
		cms := []stm.ContentionManager{stm.GreedyCM{}, stm.KarmaCM{}, nil, stm.SuicideCM{}}
		switches := 0
		for opIdx, op := range ops {
			if opIdx > 0 && opIdx%period == 0 {
				// The adaptive twin swaps CM and engine; nil CM exercises the
				// default-restoring path. The static twin never switches.
				adaptive.SetContentionManager(cms[switches%len(cms)])
				adaptive.SwitchEngine(engines[switches%len(engines)])
				switches++
			}
			var results [2]struct {
				changed bool
				got     int
				ok      bool
				n       int
			}
			for e, rt := range runtimes {
				m := maps[e]
				r := &results[e]
				err := rt.Atomic(func(tx *stm.Tx) error {
					switch op.kind {
					case 0:
						r.changed = m.Put(tx, op.key, op.val)
					case 1:
						r.changed = m.Delete(tx, op.key)
					case 2:
						r.got, r.ok = m.Get(tx, op.key)
					case 3:
						r.n = m.Len(tx)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("op %d runtime %d: %v", opIdx, e, err)
				}
			}
			if results[0] != results[1] {
				t.Fatalf("op %d (after %d switches): adaptive and static runtimes disagree: %+v vs %+v",
					opIdx, switches, results[0], results[1])
			}
			_, inOracle := oracle[op.key]
			switch op.kind {
			case 0:
				if results[0].changed != !inOracle {
					t.Fatalf("op %d: Put(%d) changed=%v, oracle had=%v", opIdx, op.key, results[0].changed, inOracle)
				}
				oracle[op.key] = op.val
			case 1:
				if results[0].changed != inOracle {
					t.Fatalf("op %d: Delete(%d) changed=%v, oracle had=%v", opIdx, op.key, results[0].changed, inOracle)
				}
				delete(oracle, op.key)
			case 2:
				if results[0].ok != inOracle || (inOracle && results[0].got != oracle[op.key]) {
					t.Fatalf("op %d: Get(%d) = (%d,%v), oracle (%d,%v)",
						opIdx, op.key, results[0].got, results[0].ok, oracle[op.key], inOracle)
				}
			case 3:
				if results[0].n != len(oracle) {
					t.Fatalf("op %d: Len = %d, oracle %d", opIdx, results[0].n, len(oracle))
				}
			}
		}
		// The handoffs the schedule promised actually happened, and the final
		// map contents survived them all.
		if eng, _ := adaptive.SwitchCounts(); int(eng) != switches {
			t.Fatalf("engine switch count %d, schedule performed %d", eng, switches)
		}
		if err := adaptive.AtomicRO(func(tx *stm.Tx) error {
			if n := maps[0].Len(tx); n != len(oracle) {
				t.Fatalf("final Len = %d, oracle %d", n, len(oracle))
			}
			for k, v := range oracle {
				got, ok := maps[0].Get(tx, k)
				if !ok || got != v {
					t.Fatalf("final Get(%d) = (%d,%v), oracle %d", k, got, ok, v)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}
