package container

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"rubic/internal/stm"
)

// Parallel container benchmarks: the RunParallel counterparts of the serial
// container benchmarks, with per-worker random key streams (seeded by a
// worker ticket so runs are reproducible). Lookups are conflict-free;
// updates on the shared structure conflict organically, exercising the
// contention manager under a realistic access pattern. `make benchscale`
// sweeps these over GOMAXPROCS; keep names stable.

// workerSeq hands each RunParallel worker a distinct deterministic seed
// (worker bodies start concurrently, so the ticket is atomic).
type workerSeq struct{ n atomic.Int64 }

func (s *workerSeq) next() int64 {
	return s.n.Add(1) * 1_000_003
}

func BenchmarkParallelRBTreeLookup(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt, tree := benchTree(b, e.algo)
			seq := workerSeq{}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seq.next()))
				var key int64
				hit := false
				fn := func(tx *stm.Tx) error {
					hit = tree.Contains(tx, key)
					return nil
				}
				for pb.Next() {
					key = int64(rng.Intn(4 * benchKeys))
					if err := rt.AtomicRO(fn); err != nil {
						b.Error(err)
						return
					}
				}
				_ = hit
			})
		})
	}
}

func BenchmarkParallelHashMapGet(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt, m := benchMap(b, e.algo)
			seq := workerSeq{}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seq.next()))
				var key int64
				sink := 0
				fn := func(tx *stm.Tx) error {
					sink, _ = m.Get(tx, key)
					return nil
				}
				for pb.Next() {
					key = int64(rng.Intn(4 * benchKeys))
					if err := rt.AtomicRO(fn); err != nil {
						b.Error(err)
						return
					}
				}
				_ = sink
			})
		})
	}
}

func BenchmarkParallelHashMapUpdate(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt, m := benchMap(b, e.algo)
			seq := workerSeq{}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seq.next()))
				var key int64
				ins := false
				i := 0
				fn := func(tx *stm.Tx) error {
					if ins {
						m.Put(tx, key, int(key)&0x7f)
					} else {
						m.Delete(tx, key)
					}
					return nil
				}
				for pb.Next() {
					key = int64(rng.Intn(4 * benchKeys))
					ins = i&1 == 0
					i++
					if err := rt.Atomic(fn); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkParallelShardedMapGet: the sharded-vs-global comparison's read
// side. Each Get runs a single-shard read-only transaction on its key's
// shard, so no commit clock or sequence lock is shared across procs —
// compare against BenchmarkParallelHashMapGet (one global runtime).
func BenchmarkParallelShardedMapGet(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			m := benchShardedMap(b, e.algo)
			seq := workerSeq{}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seq.next()))
				sink := 0
				for pb.Next() {
					v, _, err := m.Get(int64(rng.Intn(4 * benchKeys)))
					if err != nil {
						b.Error(err)
						return
					}
					sink += v
				}
				_ = sink
			})
		})
	}
}

// BenchmarkParallelShardedMapUpdate: the write side — per-shard commit
// clocks mean two updates on different shards never serialize on one
// counter. Compare against BenchmarkParallelHashMapUpdate.
func BenchmarkParallelShardedMapUpdate(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			m := benchShardedMap(b, e.algo)
			seq := workerSeq{}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seq.next()))
				i := 0
				for pb.Next() {
					key := int64(rng.Intn(4 * benchKeys))
					var err error
					if i&1 == 0 {
						_, err = m.Put(key, int(key)&0x7f)
					} else {
						_, err = m.Delete(key)
					}
					i++
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
