package container

import (
	"math/rand"
	"testing"

	"rubic/internal/stm"
)

// Container micro-benchmarks for the benchmark regression harness: the
// red-black tree and the hash map on both STM engines, lookup-dominated and
// update-heavy. Names are parsed into BENCH_<date>.json; keep them stable.

var benchEngines = []struct {
	name string
	algo stm.Algorithm
}{
	{"tl2", stm.TL2},
	{"norec", stm.NOrec},
}

const benchKeys = 1 << 10

func benchTree(b *testing.B, algo stm.Algorithm) (*stm.Runtime, *RBTree[int]) {
	rt := stm.New(stm.Config{Algorithm: algo})
	tree := NewRBTree[int]()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < benchKeys; i++ {
		k := int64(rng.Intn(4 * benchKeys))
		if err := rt.Atomic(func(tx *stm.Tx) error {
			tree.Put(tx, k, int(k)&0x7f)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	return rt, tree
}

func benchMap(b *testing.B, algo stm.Algorithm) (*stm.Runtime, *HashMap[int]) {
	rt := stm.New(stm.Config{Algorithm: algo})
	m := NewHashMap[int](benchKeys)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < benchKeys; i++ {
		k := int64(rng.Intn(4 * benchKeys))
		if err := rt.Atomic(func(tx *stm.Tx) error {
			m.Put(tx, k, int(k)&0x7f)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	return rt, m
}

func BenchmarkRBTreeLookup(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt, tree := benchTree(b, e.algo)
			var key int64
			hit := false
			fn := func(tx *stm.Tx) error {
				hit = tree.Contains(tx, key)
				return nil
			}
			rng := rand.New(rand.NewSource(2))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key = int64(rng.Intn(4 * benchKeys))
				if err := rt.AtomicRO(fn); err != nil {
					b.Fatal(err)
				}
			}
			_ = hit
		})
	}
}

func BenchmarkRBTreeUpdate(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt, tree := benchTree(b, e.algo)
			var key int64
			ins := false
			fn := func(tx *stm.Tx) error {
				if ins {
					tree.Put(tx, key, int(key)&0x7f)
				} else {
					tree.Delete(tx, key)
				}
				return nil
			}
			rng := rand.New(rand.NewSource(3))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key = int64(rng.Intn(4 * benchKeys))
				ins = i&1 == 0
				if err := rt.Atomic(fn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHashMapGet(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt, m := benchMap(b, e.algo)
			var key int64
			sink := 0
			fn := func(tx *stm.Tx) error {
				sink, _ = m.Get(tx, key)
				return nil
			}
			rng := rand.New(rand.NewSource(4))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key = int64(rng.Intn(4 * benchKeys))
				if err := rt.AtomicRO(fn); err != nil {
					b.Fatal(err)
				}
			}
			_ = sink
		})
	}
}

func BenchmarkHashMapUpdate(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt, m := benchMap(b, e.algo)
			var key int64
			ins := false
			fn := func(tx *stm.Tx) error {
				if ins {
					m.Put(tx, key, int(key)&0x7f)
				} else {
					m.Delete(tx, key)
				}
				return nil
			}
			rng := rand.New(rand.NewSource(5))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key = int64(rng.Intn(4 * benchKeys))
				ins = i&1 == 0
				if err := rt.Atomic(fn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchShardedMap builds the range-sharded hash map (8 shards) with the same
// population as benchMap, for the sharded-vs-global comparison.
func benchShardedMap(b *testing.B, algo stm.Algorithm) *ShardedHashMap[int] {
	sr := stm.NewSharded(8, stm.Config{Algorithm: algo})
	m := NewShardedHashMap[int](sr, benchKeys/8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < benchKeys; i++ {
		k := int64(rng.Intn(4 * benchKeys))
		if _, err := m.Put(k, int(k)&0x7f); err != nil {
			b.Fatal(err)
		}
	}
	return m
}
