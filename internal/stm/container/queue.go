package container

import (
	"rubic/internal/stm"
)

// qnode is a FIFO queue node.
type qnode[V any] struct {
	val  V
	next *stm.Var[*qnode[V]]
}

// Queue is a transactional unbounded FIFO queue. Intruder uses one to pass
// reassembled flows from the decoder stage to the detector stage.
type Queue[V any] struct {
	head *stm.Var[*qnode[V]] // oldest element
	tail *stm.Var[*qnode[V]] // newest element
	size *stm.Var[int]
}

// NewQueue returns an empty queue.
func NewQueue[V any]() *Queue[V] {
	return &Queue[V]{
		head: stm.NewVar[*qnode[V]](nil),
		tail: stm.NewVar[*qnode[V]](nil),
		size: stm.NewVar(0),
	}
}

// Len returns the number of queued elements.
func (q *Queue[V]) Len(tx *stm.Tx) int { return q.size.Read(tx) }

// Empty reports whether the queue has no elements.
func (q *Queue[V]) Empty(tx *stm.Tx) bool { return q.size.Read(tx) == 0 }

// Push appends v at the tail.
func (q *Queue[V]) Push(tx *stm.Tx, v V) {
	n := &qnode[V]{val: v, next: stm.NewVar[*qnode[V]](nil)}
	t := q.tail.Read(tx)
	if t == nil {
		q.head.Write(tx, n)
	} else {
		t.next.Write(tx, n)
	}
	q.tail.Write(tx, n)
	q.size.Write(tx, q.size.Read(tx)+1)
}

// Pop removes and returns the oldest element; ok is false when empty.
func (q *Queue[V]) Pop(tx *stm.Tx) (V, bool) {
	h := q.head.Read(tx)
	if h == nil {
		var zero V
		return zero, false
	}
	next := h.next.Read(tx)
	q.head.Write(tx, next)
	if next == nil {
		q.tail.Write(tx, nil)
	}
	q.size.Write(tx, q.size.Read(tx)-1)
	return h.val, true
}

// Peek returns the oldest element without removing it.
func (q *Queue[V]) Peek(tx *stm.Tx) (V, bool) {
	h := q.head.Read(tx)
	if h == nil {
		var zero V
		return zero, false
	}
	return h.val, true
}
