package blink

import (
	"math/rand"
	"sync"
	"testing"

	"rubic/internal/stm"
)

var mapEngines = []struct {
	name string
	algo stm.Algorithm
}{
	{"tl2", stm.TL2},
	{"norec", stm.NOrec},
}

// TestMapModel drives random transactional operations against a map oracle
// on both engines, verifying lookups, ordered iteration, and structure.
func TestMapModel(t *testing.T) {
	for _, eng := range mapEngines {
		t.Run(eng.name, func(t *testing.T) {
			rt := stm.New(stm.Config{Algorithm: eng.algo})
			m := NewMap[int64]()
			model := map[int64]int64{}
			rng := rand.New(rand.NewSource(7))
			const keySpace = 2048
			for op := 0; op < 30_000; op++ {
				k := rng.Int63n(keySpace)
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4, 5:
					v := rng.Int63()
					var added bool
					if err := rt.Atomic(func(tx *stm.Tx) error {
						added = m.Put(tx, k, v)
						return nil
					}); err != nil {
						t.Fatal(err)
					}
					_, had := model[k]
					if added == had {
						t.Fatalf("op %d: Put(%d) added=%v, oracle had=%v", op, k, added, had)
					}
					model[k] = v
				case 6, 7:
					var removed bool
					if err := rt.Atomic(func(tx *stm.Tx) error {
						removed = m.Delete(tx, k)
						return nil
					}); err != nil {
						t.Fatal(err)
					}
					if _, had := model[k]; removed != had {
						t.Fatalf("op %d: Delete(%d)=%v, oracle had=%v", op, k, removed, had)
					}
					delete(model, k)
				case 8:
					var got int64
					var ok bool
					if err := rt.AtomicRO(func(tx *stm.Tx) error {
						got, ok = m.Get(tx, k)
						return nil
					}); err != nil {
						t.Fatal(err)
					}
					want, had := model[k]
					if ok != had || (ok && got != want) {
						t.Fatalf("op %d: Get(%d)=(%d,%v), want (%d,%v)", op, k, got, ok, want, had)
					}
				default:
					got, ok := m.LookupFast(k)
					want, had := model[k]
					if ok != had || (ok && got != want) {
						t.Fatalf("op %d: LookupFast(%d)=(%d,%v), want (%d,%v)", op, k, got, ok, want, had)
					}
				}
			}
			if err := rt.AtomicRO(func(tx *stm.Tx) error {
				if err := m.CheckInvariants(tx); err != nil {
					return err
				}
				if n := m.Len(tx); n != len(model) {
					t.Errorf("Len=%d, oracle %d", n, len(model))
				}
				prev := int64(-1)
				m.Range(tx, func(k, v int64) bool {
					if k <= prev {
						t.Errorf("Range out of order: %d after %d", k, prev)
					}
					prev = k
					if want := model[k]; v != want {
						t.Errorf("Range: key %d value %d, want %d", k, v, want)
					}
					return true
				})
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMapRangeBetween pins the inclusive-bounds semantics and early stop,
// under AtomicRO and via the fast path, against each other.
func TestMapRangeBetween(t *testing.T) {
	rt := stm.New(stm.Config{})
	m := NewMap[int64]()
	if err := rt.Atomic(func(tx *stm.Tx) error {
		for k := int64(0); k < 300; k += 3 {
			m.Put(tx, k, k*2)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var tranKeys, fastKeys []int64
	if err := rt.AtomicRO(func(tx *stm.Tx) error {
		tranKeys = tranKeys[:0]
		m.RangeBetween(tx, 10, 50, func(k, v int64) bool {
			tranKeys = append(tranKeys, k)
			return true
		})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	m.ScanFast(10, 50, func(k, v int64) bool {
		fastKeys = append(fastKeys, k)
		return true
	})
	if len(tranKeys) == 0 || len(tranKeys) != len(fastKeys) {
		t.Fatalf("transactional %v vs fast %v", tranKeys, fastKeys)
	}
	for i := range tranKeys {
		if tranKeys[i] != fastKeys[i] {
			t.Fatalf("transactional %v vs fast %v", tranKeys, fastKeys)
		}
		if tranKeys[i] < 10 || tranKeys[i] > 50 || tranKeys[i]%3 != 0 {
			t.Fatalf("out-of-range key %d", tranKeys[i])
		}
	}
	n := 0
	m.ScanFast(0, 299, func(k, v int64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early-stop fast scan visited %d, want 5", n)
	}
}

// TestMapConcurrentHybrid runs transactional writers against fast-path
// readers on both engines. Values encode their key, so any torn or
// inconsistent observation surfaces as a mismatch; the settled state is
// verified against the structural invariants.
func TestMapConcurrentHybrid(t *testing.T) {
	for _, eng := range mapEngines {
		t.Run(eng.name, func(t *testing.T) {
			rt := stm.New(stm.Config{Algorithm: eng.algo})
			m := NewMap[int64]()
			const (
				writers  = 4
				readers  = 4
				keySpace = 512
				opsEach  = 4_000
			)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < opsEach; i++ {
						k := rng.Int63n(keySpace)
						if rng.Intn(4) == 0 {
							_ = rt.Atomic(func(tx *stm.Tx) error {
								m.Delete(tx, k)
								return nil
							})
						} else {
							v := k<<20 | rng.Int63n(1<<20)
							_ = rt.Atomic(func(tx *stm.Tx) error {
								m.Put(tx, k, v)
								return nil
							})
						}
					}
				}(int64(w + 1))
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < opsEach; i++ {
						k := rng.Int63n(keySpace)
						if v, ok := m.LookupFast(k); ok && v>>20 != k {
							panic("torn fast lookup: value does not encode key")
						}
						if i%64 == 0 {
							m.ScanFast(k, k+32, func(sk, sv int64) bool {
								if sv>>20 != sk {
									panic("torn fast scan: value does not encode key")
								}
								return true
							})
						}
					}
				}(int64(100 + r))
			}
			wg.Wait()
			if err := rt.AtomicRO(func(tx *stm.Tx) error {
				return m.CheckInvariants(tx)
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
