package blink

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestTreeModel drives random operations against a map oracle, checking
// lookups, scan output, and the structural invariants as the tree grows
// through multiple levels and shrinks again.
func TestTreeModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New[int64]()
	model := map[int64]int64{}
	const keySpace = 4096
	for op := 0; op < 60_000; op++ {
		k := rng.Int63n(keySpace)
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			v := rng.Int63()
			_, had := model[k]
			added := tr.Put(k, v)
			if added == had {
				t.Fatalf("op %d: Put(%d) added=%v, oracle had=%v", op, k, added, had)
			}
			model[k] = v
		case 6, 7:
			removed := tr.Delete(k)
			_, had := model[k]
			if removed != had {
				t.Fatalf("op %d: Delete(%d)=%v, oracle had=%v", op, k, removed, had)
			}
			delete(model, k)
		default:
			got, ok := tr.Get(k)
			want, had := model[k]
			if ok != had || (ok && got != want) {
				t.Fatalf("op %d: Get(%d)=(%d,%v), want (%d,%v)", op, k, got, ok, want, had)
			}
		}
		if op%10_000 == 9_999 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len=%d, oracle %d", tr.Len(), len(model))
	}
	var wantKeys []int64
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
	var gotKeys []int64
	tr.Scan(0, keySpace, func(k int64, v int64) bool {
		if want := model[k]; v != want {
			t.Fatalf("Scan: key %d value %d, want %d", k, v, want)
		}
		gotKeys = append(gotKeys, k)
		return true
	})
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("Scan yielded %d keys, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range gotKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("Scan order: index %d got %d want %d", i, gotKeys[i], wantKeys[i])
		}
	}
}

// TestTreeScanBounds covers the range-boundary cases: empty ranges, inverted
// bounds, early stop, and bounds falling between keys.
func TestTreeScanBounds(t *testing.T) {
	tr := New[int64]()
	for k := int64(0); k < 500; k += 5 {
		tr.Put(k, k*10)
	}
	var got []int64
	tr.Scan(7, 23, func(k, v int64) bool { got = append(got, k); return true })
	want := []int64{10, 15, 20}
	if len(got) != len(want) {
		t.Fatalf("Scan(7,23) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan(7,23) = %v, want %v", got, want)
		}
	}
	got = got[:0]
	tr.Scan(100, 50, func(k, v int64) bool { got = append(got, k); return true })
	if len(got) != 0 {
		t.Fatalf("inverted range yielded %v", got)
	}
	n := 0
	tr.Scan(0, 499, func(k, v int64) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early-stop scan visited %d keys, want 3", n)
	}
}

// TestTreeSequentialGrowth exercises the split path hard: ascending and
// descending bulk inserts both end with a valid multi-level structure.
func TestTreeSequentialGrowth(t *testing.T) {
	for name, gen := range map[string]func(i int64) int64{
		"ascending":  func(i int64) int64 { return i },
		"descending": func(i int64) int64 { return 50_000 - i },
		"strided":    func(i int64) int64 { return (i * 2654435761) % 100_000 },
	} {
		tr := New[int64]()
		seen := map[int64]bool{}
		for i := int64(0); i < 50_000; i++ {
			k := gen(i)
			added := tr.Put(k, i)
			if added == seen[k] {
				t.Fatalf("%s: Put(%d) added=%v with seen=%v", name, k, added, seen[k])
			}
			seen[k] = true
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Len() != len(seen) {
			t.Fatalf("%s: Len=%d want %d", name, tr.Len(), len(seen))
		}
	}
}

// TestTreeConcurrent hammers the tree from concurrent writers and readers,
// then verifies the settled structure and content. Readers additionally
// assert they never observe a torn (key, value) pair: every written value
// encodes its key, so any mismatch is a torn read.
func TestTreeConcurrent(t *testing.T) {
	const (
		workers  = 8
		keySpace = 2048
		opsEach  = 20_000
	)
	tr := New[int64]()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				k := rng.Int63n(keySpace)
				switch rng.Intn(4) {
				case 0:
					tr.Put(k, k<<20|rng.Int63n(1<<20))
				case 1:
					tr.Delete(k)
				default:
					if v, ok := tr.Get(k); ok && v>>20 != k {
						panic("torn read: value does not encode its key")
					}
				}
				if i%512 == 0 {
					tr.Scan(k, k+64, func(sk, sv int64) bool {
						if sv>>20 != sk {
							panic("torn scan: value does not encode its key")
						}
						return true
					})
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	n := 0
	tr.Scan(0, keySpace, func(k, v int64) bool {
		if v>>20 != k {
			t.Fatalf("settled value %d does not encode key %d", v, k)
		}
		n++
		return true
	})
	if n != tr.Len() {
		t.Fatalf("scan found %d keys, Len=%d", n, tr.Len())
	}
}
