package blink

import (
	"fmt"
	"math"

	"rubic/internal/stm"
)

// sizeShards spreads the Map's element count over several Vars so
// concurrent inserts to distant keys do not all serialize on one counter
// location. Len sums the shards; a key's count lives in the shard its hash
// picks, so the sum is exact.
const sizeShards = 8

// mdata is one immutable node snapshot of the STM Map. A mutation replaces
// the owning mnode's whole snapshot (copy-on-write); nothing in a published
// mdata is ever modified, which is what makes the Peek-based fast path
// sound: any snapshot a lock-free reader captures is internally consistent,
// and staleness is recovered by the B-Link right-chase exactly as in Tree.
type mdata[V any] struct {
	leaf bool
	high int64 // exclusive upper bound; infKey on the rightmost node
	next *mnode[V]
	keys []int64
	vals []V         // leaf only
	kids []*mnode[V] // branch only; kids[i] covers keys < keys[i]
}

// mnode is one stable node identity: splits and rewrites swap its snapshot,
// never the mnode itself, so pointers captured by concurrent readers stay
// valid for the life of the map.
type mnode[V any] struct {
	d *stm.Var[*mdata[V]]
}

// Map is the B-Link tree as a fully transactional container: every mutation
// runs under STM and serializes with any other transactional state, while
// read-only navigation can skip transaction bookkeeping entirely through
// LookupFast/ScanFast (per-Var consistent sampling plus right-chasing —
// the hybrid fast path). Inside a transaction, use Get/Range: they record
// reads and stay serializable with the transaction's other operations.
type Map[V any] struct {
	root *stm.Var[*mnode[V]]
	size [sizeShards]*stm.Var[int]
}

// NewMap returns an empty transactional B-Link map.
func NewMap[V any]() *Map[V] {
	leaf := &mnode[V]{d: stm.NewVar(&mdata[V]{leaf: true, high: infKey})}
	m := &Map[V]{root: stm.NewVar(leaf)}
	for i := range m.size {
		m.size[i] = stm.NewVar(0)
	}
	return m
}

func sizeShard(key int64) int {
	return int((uint64(key) * 0x9E3779B97F4A7C15 >> 61) & (sizeShards - 1))
}

// Get returns the value bound to key as seen by tx.
func (m *Map[V]) Get(tx *stm.Tx, key int64) (V, bool) {
	var zero V
	nd := m.root.Read(tx)
	for {
		d := nd.d.Read(tx)
		if key >= d.high {
			nd = d.next
			continue
		}
		if !d.leaf {
			nd = d.kids[branchPos(d.keys, key)]
			continue
		}
		for i, k := range d.keys {
			if k == key {
				return d.vals[i], true
			}
			if k > key {
				break
			}
		}
		return zero, false
	}
}

// branchPos returns the index of the child covering key: the first entry
// whose (exclusive) bound exceeds it.
func branchPos(keys []int64, key int64) int {
	for i, k := range keys {
		if key < k {
			return i
		}
	}
	return len(keys) - 1
}

// Put binds key to val, returning true when the key was absent.
func (m *Map[V]) Put(tx *stm.Tx, key int64, val V) bool {
	if key == infKey {
		panic("blink: math.MaxInt64 is the +infinity sentinel and cannot be a key")
	}
	var path [maxHeight]*mnode[V]
	depth := 0
	nd := m.root.Read(tx)
	var d *mdata[V]
	for {
		d = nd.d.Read(tx)
		if key >= d.high {
			nd = d.next
			continue
		}
		if d.leaf {
			break
		}
		path[depth] = nd
		depth++
		nd = d.kids[branchPos(d.keys, key)]
	}
	// Leaf rewrite: in-place value update or sorted insert.
	pos := len(d.keys)
	for i, k := range d.keys {
		if k == key {
			vals := append([]V(nil), d.vals...)
			vals[i] = val
			nd.d.Write(tx, &mdata[V]{leaf: true, high: d.high, next: d.next, keys: d.keys, vals: vals})
			return false
		}
		if key < k {
			pos = i
			break
		}
	}
	keys := make([]int64, 0, len(d.keys)+1)
	vals := make([]V, 0, len(d.vals)+1)
	keys = append(append(append(keys, d.keys[:pos]...), key), d.keys[pos:]...)
	vals = append(append(append(vals, d.vals[:pos]...), val), d.vals[pos:]...)
	if len(keys) <= order {
		nd.d.Write(tx, &mdata[V]{leaf: true, high: d.high, next: d.next, keys: keys, vals: vals})
	} else {
		h := (order + 1) / 2
		right := &mnode[V]{d: stm.NewVar(&mdata[V]{
			leaf: true, high: d.high, next: d.next,
			keys: keys[h:], vals: vals[h:],
		})}
		nd.d.Write(tx, &mdata[V]{leaf: true, high: keys[h], next: right, keys: keys[:h], vals: vals[:h]})
		m.insertUp(tx, &path, depth, nd, keys[h], right, d.high)
	}
	sz := m.size[sizeShard(key)]
	sz.Write(tx, sz.Read(tx)+1)
	return true
}

// insertUp links a freshly split node's right sibling into the parent
// level, splitting upward as needed. Unlike Tree, the whole split commits
// atomically with the triggering mutation, so the transactional view never
// observes a half-propagated split (the fast path still right-chases, which
// covers its own cross-Peek staleness instead).
func (m *Map[V]) insertUp(tx *stm.Tx, path *[maxHeight]*mnode[V], depth int, child *mnode[V], childHigh int64, sib *mnode[V], sibHigh int64) {
	for {
		if depth == 0 {
			// child was the root: grow a level.
			root := &mnode[V]{d: stm.NewVar(&mdata[V]{
				high: infKey,
				keys: []int64{childHigh, sibHigh},
				kids: []*mnode[V]{child, sib},
			})}
			m.root.Write(tx, root)
			return
		}
		depth--
		parent := path[depth]
		d := parent.d.Read(tx)
		j := -1
		for i, c := range d.kids {
			if c == child {
				j = i
				break
			}
		}
		if j < 0 {
			// The transactional view is always split-consistent, so the
			// parent recorded on the descent path must still hold the child.
			panic("blink: transactional split lost its parent entry")
		}
		keys := make([]int64, 0, len(d.keys)+1)
		kids := make([]*mnode[V], 0, len(d.kids)+1)
		keys = append(append(append(keys, d.keys[:j]...), childHigh, sibHigh), d.keys[j+1:]...)
		kids = append(append(append(kids, d.kids[:j+1]...), sib), d.kids[j+1:]...)
		if len(keys) <= order {
			parent.d.Write(tx, &mdata[V]{high: d.high, next: d.next, keys: keys, kids: kids})
			return
		}
		h := (order + 1) / 2
		right := &mnode[V]{d: stm.NewVar(&mdata[V]{
			high: d.high, next: d.next,
			keys: keys[h:], kids: kids[h:],
		})}
		parent.d.Write(tx, &mdata[V]{high: keys[h-1], next: right, keys: keys[:h], kids: kids[:h]})
		child, childHigh, sib, sibHigh = parent, keys[h-1], right, d.high
	}
}

// Delete unbinds key, reporting whether it was present. Nodes are never
// merged; emptied leaves stay linked, mirroring Tree.
func (m *Map[V]) Delete(tx *stm.Tx, key int64) bool {
	nd := m.root.Read(tx)
	for {
		d := nd.d.Read(tx)
		if key >= d.high {
			nd = d.next
			continue
		}
		if !d.leaf {
			nd = d.kids[branchPos(d.keys, key)]
			continue
		}
		for i, k := range d.keys {
			if k > key {
				return false
			}
			if k != key {
				continue
			}
			keys := make([]int64, 0, len(d.keys)-1)
			vals := make([]V, 0, len(d.vals)-1)
			keys = append(append(keys, d.keys[:i]...), d.keys[i+1:]...)
			vals = append(append(vals, d.vals[:i]...), d.vals[i+1:]...)
			nd.d.Write(tx, &mdata[V]{leaf: true, high: d.high, next: d.next, keys: keys, vals: vals})
			sz := m.size[sizeShard(key)]
			sz.Write(tx, sz.Read(tx)-1)
			return true
		}
		return false
	}
}

// Len reports the number of keys as seen by tx.
func (m *Map[V]) Len(tx *stm.Tx) int {
	total := 0
	for _, sv := range m.size {
		total += sv.Read(tx)
	}
	return total
}

// Range calls fn for every key in ascending order until fn returns false.
func (m *Map[V]) Range(tx *stm.Tx, fn func(key int64, val V) bool) {
	m.RangeBetween(tx, math.MinInt64, infKey-1, fn)
}

// RangeBetween calls fn for each key in [lo, hi] in ascending order until fn
// returns false. The walk reads through tx, so under Atomic/AtomicRO the
// visited snapshot is serializable with every other transactional access.
func (m *Map[V]) RangeBetween(tx *stm.Tx, lo, hi int64, fn func(key int64, val V) bool) {
	if hi < lo {
		return
	}
	nd := m.root.Read(tx)
	for {
		d := nd.d.Read(tx)
		if lo >= d.high {
			nd = d.next
			continue
		}
		if !d.leaf {
			nd = d.kids[branchPos(d.keys, lo)]
			continue
		}
		for {
			for i, k := range d.keys {
				if k < lo || k > hi {
					continue
				}
				if !fn(k, d.vals[i]) {
					return
				}
			}
			if d.high > hi || d.next == nil {
				return
			}
			nd = d.next
			d = nd.d.Read(tx)
		}
	}
}

// LookupFast is the hybrid fast path: a lock-free lookup that skips
// transaction bookkeeping entirely. Each node snapshot is sampled
// consistently (Var.Peek's seqlock-style meta/value/meta protocol) and
// staleness across samples is absorbed by right-chasing, so the result is
// the value some committed state bound to key — linearized at the final
// leaf sample. Use it outside transactions; inside one, use Get, which
// participates in validation.
//
//rubic:noalloc
func (m *Map[V]) LookupFast(key int64) (V, bool) {
	var zero V
	nd := m.root.Peek()
	for {
		d := nd.d.Peek()
		if key >= d.high {
			nd = d.next
			continue
		}
		if !d.leaf {
			nd = d.kids[branchPos(d.keys, key)]
			continue
		}
		for i, k := range d.keys {
			if k == key {
				return d.vals[i], true
			}
			if k > key {
				break
			}
		}
		return zero, false
	}
}

// ScanFast streams [lo, hi] in ascending order without a transaction. Each
// leaf snapshot is internally consistent; across leaves the scan is weakly
// consistent (B-Link contract), like Tree.Scan.
//
//rubic:noalloc
func (m *Map[V]) ScanFast(lo, hi int64, fn func(key int64, val V) bool) {
	if hi < lo {
		return
	}
	nd := m.root.Peek()
	for {
		d := nd.d.Peek()
		if lo >= d.high {
			nd = d.next
			continue
		}
		if !d.leaf {
			nd = d.kids[branchPos(d.keys, lo)]
			continue
		}
		for {
			for i, k := range d.keys {
				if k < lo || k > hi {
					continue
				}
				if !fn(k, d.vals[i]) {
					return
				}
			}
			if d.high > hi || d.next == nil {
				return
			}
			nd = d.next
			d = nd.d.Peek()
		}
	}
}

// CheckInvariants verifies the structural invariants of the transactional
// view: sorted bounded keys, exact separators, contiguous ranges ending at
// +infinity, and a size-shard sum matching the leaf population.
func (m *Map[V]) CheckInvariants(tx *stm.Tx) error {
	level := m.root.Read(tx)
	depth := 0
	for {
		d := level.d.Read(tx)
		prevHigh := int64(math.MinInt64)
		total := 0
		for nd := level; nd != nil; {
			nd2 := nd.d.Read(tx)
			if len(nd2.keys) > order {
				return fmt.Errorf("blink: node with %d entries exceeds order %d", len(nd2.keys), order)
			}
			last := int64(math.MinInt64)
			for i, k := range nd2.keys {
				if i > 0 && k <= last {
					return fmt.Errorf("blink: unsorted separators %d <= %d", k, last)
				}
				last = k
				if nd2.leaf {
					if k >= nd2.high || k < prevHigh {
						return fmt.Errorf("blink: leaf key %d outside [%d, %d)", k, prevHigh, nd2.high)
					}
					total++
				} else {
					cd := nd2.kids[i].d.Read(tx)
					if cd.high != k {
						return fmt.Errorf("blink: separator %d != child bound %d", k, cd.high)
					}
				}
			}
			if !nd2.leaf {
				if len(nd2.keys) == 0 {
					return fmt.Errorf("blink: empty branch node")
				}
				if nd2.keys[len(nd2.keys)-1] != nd2.high {
					return fmt.Errorf("blink: branch bound %d != last separator %d", nd2.high, nd2.keys[len(nd2.keys)-1])
				}
			}
			if nd2.next == nil && nd2.high != infKey {
				return fmt.Errorf("blink: rightmost node ends at %d, not +inf", nd2.high)
			}
			prevHigh = nd2.high
			nd = nd2.next
		}
		if d.leaf {
			if got := m.Len(tx); total != got {
				return fmt.Errorf("blink: leaf walk found %d keys, Len reports %d", total, got)
			}
			return nil
		}
		depth++
		if depth > maxHeight {
			return fmt.Errorf("blink: depth exceeds %d — cycle?", maxHeight)
		}
		level = d.kids[0]
	}
}
