// Package blink provides a B-Link-tree ordered index in two forms: Tree, a
// lock-free-reader index whose readers validate per-node seqlock versions and
// never block (the StunDB bptree shape), and Map, the same structure held in
// STM Vars so mutations stay serializable with every other transactional
// container (map.go).
//
// The Tree follows Lehman & Yao: every node carries an exclusive upper bound
// (high) and a right-sibling link (next); splits move entries to a new right
// sibling and deletes never merge, so a reader that lands on a stale node
// recovers by chasing right until its key is back in range. Readers therefore
// need only per-node atomicity, which a per-node sequence lock provides:
// sample the version, read, re-check — retrying on an odd value or a change.
// Writers use the same word as their mutual-exclusion latch (CAS to odd,
// release to +2), holding at most two latches (during a rightward hop) on one
// level at a time, so writer latching is deadlock-free and readers are never
// blocked by it.
//
// Keys span all of int64 except math.MaxInt64, which is the +infinity
// sentinel in the rightmost node of every level.
package blink

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
)

// order is the per-node entry capacity. 32 keeps a node's key array within a
// few cache lines while holding the tree to 3 levels past a million keys.
const order = 32

// maxHeight bounds the writer descent stack; order^maxHeight key capacity
// makes overflow unreachable.
const maxHeight = 16

// infKey is the exclusive-upper-bound sentinel of rightmost nodes.
const infKey = math.MaxInt64

// node is one tree node. Every field a lock-free reader may touch while a
// writer holds the latch is an atomic: readers validate ver afterwards, but
// the intermediate loads themselves must be race-free. leaf and level are
// immutable after construction and published through atomic pointers, so
// plain reads of them are ordered.
type node[V any] struct {
	// ver is the node's sequence lock: odd exactly while a writer holds the
	// node latched for mutation. Readers sample it, read, and re-check;
	// writers acquire with CompareAndSwap(s, s+1) and release with
	// Store(s+2) (rubic-lint's seqlockproto verifies every use site).
	//
	//rubic:seqlock
	ver atomic.Uint64

	leaf  bool
	level int32

	n    atomic.Int32              // live entry count
	high atomic.Int64              // exclusive upper bound of this node's range
	next atomic.Pointer[node[V]]   // right sibling at the same level
	keys [order]atomic.Int64       // leaf: entry keys; branch: child upper bounds
	vals []atomic.Pointer[V]       // leaf only: value boxes, fresh per update
	kids []atomic.Pointer[node[V]] // branch only: children, kids[i] covers keys < keys[i]
}

func newNode[V any](leaf bool, level int32) *node[V] {
	nd := &node[V]{leaf: leaf, level: level}
	if leaf {
		nd.vals = make([]atomic.Pointer[V], order)
	} else {
		nd.kids = make([]atomic.Pointer[node[V]], order)
	}
	return nd
}

// Tree is the lock-free-reader ordered index. Get and Scan never block and
// never allocate; Put and Delete latch one node at a time. All methods are
// safe for concurrent use. Tree is a plain shared structure, not an STM
// container: use Map when mutations must serialize with transactions.
type Tree[V any] struct {
	root  atomic.Pointer[node[V]]
	count atomic.Int64
}

// New returns an empty tree: a single leaf spanning the whole key space.
func New[V any]() *Tree[V] {
	t := &Tree[V]{}
	leaf := newNode[V](true, 0)
	leaf.high.Store(infKey)
	t.root.Store(leaf)
	return t
}

// Len reports the number of keys. It is exact while the tree is quiescent
// and a linearizable-enough running count under concurrency (the counter is
// bumped outside node latches).
func (t *Tree[V]) Len() int { return int(t.count.Load()) }

// Get returns the value bound to key. The reader descends without taking any
// latch: each node is read under its sequence lock (sample, read, re-check)
// and a key at or past the node's upper bound chases the right-sibling link,
// which is how a reader overtaken by a concurrent split recovers.
//
//rubic:noalloc
func (t *Tree[V]) Get(key int64) (V, bool) {
	var zero V
	nd := t.root.Load()
	for {
		s := nd.ver.Load()
		if s&1 != 0 {
			runtime.Gosched()
			continue
		}
		n := int(nd.n.Load())
		high := nd.high.Load()
		if key >= high {
			nxt := nd.next.Load()
			if nd.ver.Load() != s || nxt == nil {
				continue
			}
			nd = nxt
			continue
		}
		if !nd.leaf {
			j := n - 1
			for i := 0; i < n; i++ {
				if key < nd.keys[i].Load() {
					j = i
					break
				}
			}
			if j < 0 {
				continue // torn: branch counts are never 0 when settled
			}
			child := nd.kids[j].Load()
			if nd.ver.Load() != s || child == nil {
				continue
			}
			nd = child
			continue
		}
		var vp *V
		for i := 0; i < n; i++ {
			if nd.keys[i].Load() == key {
				vp = nd.vals[i].Load()
				break
			}
		}
		if nd.ver.Load() != s {
			continue
		}
		if vp == nil {
			return zero, false
		}
		return *vp, true
	}
}

// Scan calls fn for each key in [lo, hi] in ascending order until fn returns
// false. Each leaf is captured atomically under its sequence lock before fn
// sees it, so per-leaf snapshots are never torn; across leaves the scan is
// weakly consistent (it observes each leaf at its own instant), the standard
// B-Link contract. fn must not call back into the same tree's writers.
//
//rubic:noalloc
func (t *Tree[V]) Scan(lo, hi int64, fn func(key int64, val V) bool) {
	if hi < lo {
		return
	}
	var ks [order]int64
	var vs [order]V
	nd := t.leafFor(lo)
	for nd != nil {
		s := nd.ver.Load()
		if s&1 != 0 {
			runtime.Gosched()
			continue
		}
		n := int(nd.n.Load())
		high := nd.high.Load()
		nxt := nd.next.Load()
		cnt := 0
		for i := 0; i < n; i++ {
			k := nd.keys[i].Load()
			if k < lo || k > hi {
				continue
			}
			ks[cnt] = k
			vp := nd.vals[i].Load()
			if vp != nil {
				vs[cnt] = *vp // boxes are immutable: a stale box is whole
				cnt++
			}
		}
		if nd.ver.Load() != s {
			continue
		}
		for i := 0; i < cnt; i++ {
			if !fn(ks[i], vs[i]) {
				return
			}
		}
		if high > hi {
			return
		}
		nd = nxt
	}
}

// leafFor descends to the leaf whose range covers key, latch-free.
//
//rubic:noalloc
func (t *Tree[V]) leafFor(key int64) *node[V] {
	nd := t.root.Load()
	for {
		if nd.leaf {
			return nd
		}
		s := nd.ver.Load()
		if s&1 != 0 {
			runtime.Gosched()
			continue
		}
		n := int(nd.n.Load())
		high := nd.high.Load()
		var nxt *node[V]
		if key >= high {
			nxt = nd.next.Load()
		} else {
			j := n - 1
			for i := 0; i < n; i++ {
				if key < nd.keys[i].Load() {
					j = i
					break
				}
			}
			if j >= 0 {
				nxt = nd.kids[j].Load()
			}
		}
		if nd.ver.Load() != s || nxt == nil {
			continue
		}
		nd = nxt
	}
}

// descendTo walks to the node at the target level whose range covers key,
// recording the node visited at each level above it in stack (indexed by
// level). The stack entries are optimistic parent hints for Put's upward
// split propagation — they may be stale by use time, which the latched
// move-right in insertParent absorbs.
//
//rubic:noalloc
func (t *Tree[V]) descendTo(key int64, level int32, stack *[maxHeight]*node[V]) *node[V] {
	nd := t.root.Load()
	for {
		if nd.level <= level {
			return nd
		}
		s := nd.ver.Load()
		if s&1 != 0 {
			runtime.Gosched()
			continue
		}
		n := int(nd.n.Load())
		high := nd.high.Load()
		if key >= high {
			nxt := nd.next.Load()
			if nd.ver.Load() != s || nxt == nil {
				continue
			}
			nd = nxt
			continue
		}
		j := n - 1
		for i := 0; i < n; i++ {
			if key < nd.keys[i].Load() {
				j = i
				break
			}
		}
		if j < 0 {
			continue
		}
		child := nd.kids[j].Load()
		if nd.ver.Load() != s || child == nil {
			continue
		}
		if int(nd.level) < maxHeight {
			stack[nd.level] = nd
		}
		nd = child
	}
}

// Put binds key to val, returning true when the key was absent. Keys must be
// below math.MaxInt64 (the +infinity sentinel).
func (t *Tree[V]) Put(key int64, val V) bool {
	if key == infKey {
		panic("blink: math.MaxInt64 is the +infinity sentinel and cannot be a key")
	}
	box := new(V)
	*box = val
	var stack [maxHeight]*node[V]
	start := t.descendTo(key, 0, &stack)
	added, split, left, right, leftHigh, rightHigh := t.putLeaf(start, key, box)
	if added {
		t.count.Add(1)
	}
	// Propagate splits upward: each level inserts the new right sibling next
	// to its left origin, possibly splitting again. The separator bounds were
	// captured under the split latch — the nodes' live high fields may have
	// shrunk again by now (another writer re-splitting them), which
	// insertParent's min-replacement absorbs.
	for lvl := int32(1); split; lvl++ {
		child, childHigh := left, leftHigh
		newNode, newHigh := right, rightHigh
		parent := (*node[V])(nil)
		if int(lvl) < maxHeight {
			parent = stack[lvl]
		}
		if parent == nil {
			// The split child was the root when we descended. Install a new
			// root above it, or — if another writer grew the tree first —
			// locate the parent that now exists.
			if t.growRoot(child, childHigh, newNode, newHigh) {
				return added
			}
			var restack [maxHeight]*node[V]
			parent = t.descendTo(childHigh-1, lvl, &restack)
			for l := lvl + 1; int(l) < maxHeight; l++ {
				if stack[l] == nil {
					stack[l] = restack[l]
				}
			}
			if parent.level != lvl {
				// The tree is still shorter than lvl at this key: the grower
				// has not linked our level yet. Retry until it appears.
				for parent.level != lvl {
					runtime.Gosched()
					parent = t.descendTo(childHigh-1, lvl, &restack)
				}
			}
		}
		split, left, right, leftHigh, rightHigh = t.insertParent(parent, child, childHigh, newNode, newHigh)
	}
	return added
}

// putLeaf latches the leaf covering key (moving right past concurrent
// splits), then inserts, updates in place, or splits. On split it returns
// the latched-and-released left node, its new right sibling, and both
// nodes' bounds as captured under the latch; the caller links them into the
// parent level.
func (t *Tree[V]) putLeaf(start *node[V], key int64, box *V) (added, split bool, left, right *node[V], leftHigh, rightHigh int64) {
	nd := start
	// Latch acquire with move-right: the node covering key may have split
	// since the latch-free descent.
	var s uint64
	for {
		s = nd.ver.Load()
		if s&1 != 0 {
			runtime.Gosched()
			continue
		}
		if !nd.ver.CompareAndSwap(s, s+1) {
			continue
		}
		if key < nd.high.Load() {
			break
		}
		nxt := nd.next.Load()
		nd.ver.Store(s + 2) // release before hopping right
		if nxt == nil {
			panic("blink: rightmost node with finite high")
		}
		nd = nxt
	}
	n := int(nd.n.Load())
	pos := n
	for i := 0; i < n; i++ {
		k := nd.keys[i].Load()
		if k == key {
			nd.vals[i].Store(box)
			nd.ver.Store(s + 2)
			return false, false, nil, nil, 0, 0
		}
		if key < k {
			pos = i
			break
		}
	}
	if n < order {
		for i := n; i > pos; i-- {
			nd.keys[i].Store(nd.keys[i-1].Load())
			nd.vals[i].Store(nd.vals[i-1].Load())
		}
		nd.keys[pos].Store(key)
		nd.vals[pos].Store(box)
		nd.n.Store(int32(n + 1))
		nd.ver.Store(s + 2)
		return true, false, nil, nil, 0, 0
	}
	// Full: split. Merge the order+1 entries, keep the lower half here, move
	// the upper half to a fresh right sibling built privately and published
	// by the latched next/high update.
	var mk [order + 1]int64
	var mv [order + 1]*V
	for i := 0; i < pos; i++ {
		mk[i], mv[i] = nd.keys[i].Load(), nd.vals[i].Load()
	}
	mk[pos], mv[pos] = key, box
	for i := pos; i < n; i++ {
		mk[i+1], mv[i+1] = nd.keys[i].Load(), nd.vals[i].Load()
	}
	h := (order + 1) / 2
	oldHigh := nd.high.Load()
	r := newNode[V](true, 0)
	for i := h; i <= order; i++ {
		r.keys[i-h].Store(mk[i])
		r.vals[i-h].Store(mv[i])
	}
	r.n.Store(int32(order + 1 - h))
	r.high.Store(oldHigh)
	r.next.Store(nd.next.Load())
	for i := 0; i < h; i++ {
		nd.keys[i].Store(mk[i])
		nd.vals[i].Store(mv[i])
	}
	nd.n.Store(int32(h))
	nd.high.Store(mk[h]) // left's new exclusive bound = right's first key
	nd.next.Store(r)
	nd.ver.Store(s + 2)
	return true, true, nd, r, mk[h], oldHigh
}

// insertParent installs newNode (the right half of a split at the level
// below) into the branch level starting at parent, next to the entry for
// child. Two splits of the same node can reach the parent in either order,
// so the replacement takes the minimum of the entry's current bound and the
// captured one (bounds only ever shrink) and the new entry goes to its
// sorted position, not blindly adjacent. Returns a further split to
// propagate, or false.
func (t *Tree[V]) insertParent(parent, child *node[V], childHigh int64, sib *node[V], newHigh int64) (split bool, left, right *node[V], leftHigh, rightHigh int64) {
	nd := parent
	var s uint64
	var j int
	// Latch acquire with move-right by identity: the entry pointing at child
	// only ever moves rightward (splits shed upper entries to new right
	// siblings), so scanning right under the latch must find it.
	for {
		s = nd.ver.Load()
		if s&1 != 0 {
			runtime.Gosched()
			continue
		}
		if !nd.ver.CompareAndSwap(s, s+1) {
			continue
		}
		n := int(nd.n.Load())
		j = -1
		for i := 0; i < n; i++ {
			if nd.kids[i].Load() == child {
				j = i
				break
			}
		}
		if j >= 0 {
			break
		}
		nxt := nd.next.Load()
		nd.ver.Store(s + 2)
		if nxt == nil {
			panic("blink: split child lost from its parent level")
		}
		nd = nxt
	}
	n := int(nd.n.Load())
	if cur := nd.keys[j].Load(); cur < childHigh {
		childHigh = cur // a later split of child already shrank its bound
	}
	// Sorted insertion position for the new entry, at or right of j+1.
	pos := n
	for i := j + 1; i < n; i++ {
		if newHigh < nd.keys[i].Load() {
			pos = i
			break
		}
	}
	if n < order {
		nd.keys[j].Store(childHigh)
		for i := n; i > pos; i-- {
			nd.keys[i].Store(nd.keys[i-1].Load())
			nd.kids[i].Store(nd.kids[i-1].Load())
		}
		nd.keys[pos].Store(newHigh)
		nd.kids[pos].Store(sib)
		nd.n.Store(int32(n + 1))
		nd.ver.Store(s + 2)
		return false, nil, nil, 0, 0
	}
	var mk [order + 1]int64
	var mc [order + 1]*node[V]
	for i := 0; i < pos; i++ {
		mk[i], mc[i] = nd.keys[i].Load(), nd.kids[i].Load()
	}
	mk[j] = childHigh
	mk[pos], mc[pos] = newHigh, sib
	for i := pos; i < n; i++ {
		mk[i+1], mc[i+1] = nd.keys[i].Load(), nd.kids[i].Load()
	}
	h := (order + 1) / 2
	oldHigh := nd.high.Load()
	r := newNode[V](false, nd.level)
	for i := h; i <= order; i++ {
		r.keys[i-h].Store(mk[i])
		r.kids[i-h].Store(mc[i])
	}
	r.n.Store(int32(order + 1 - h))
	r.high.Store(oldHigh)
	r.next.Store(nd.next.Load())
	for i := 0; i < h; i++ {
		nd.keys[i].Store(mk[i])
		nd.kids[i].Store(mc[i])
	}
	nd.n.Store(int32(h))
	nd.high.Store(mk[h-1]) // branch invariant: last entry bound == node bound
	nd.next.Store(r)
	nd.ver.Store(s + 2)
	return true, nd, r, mk[h-1], oldHigh
}

// growRoot publishes a new root above a split root. A failed CAS means
// another writer grew the tree first; the caller re-descends to find the
// parent that now exists.
func (t *Tree[V]) growRoot(left *node[V], leftHigh int64, right *node[V], rightHigh int64) bool {
	r := newNode[V](false, left.level+1)
	r.keys[0].Store(leftHigh)
	r.kids[0].Store(left)
	r.keys[1].Store(rightHigh)
	r.kids[1].Store(right)
	r.n.Store(2)
	r.high.Store(infKey)
	return t.root.CompareAndSwap(left, r)
}

// Delete unbinds key, reporting whether it was present. Leaves are compacted
// in place and never merged (B-Link deletes leave empty leaves linked), so
// readers need no extra protocol.
func (t *Tree[V]) Delete(key int64) bool {
	nd := t.leafFor(key)
	var s uint64
	for {
		s = nd.ver.Load()
		if s&1 != 0 {
			runtime.Gosched()
			continue
		}
		if !nd.ver.CompareAndSwap(s, s+1) {
			continue
		}
		if key < nd.high.Load() {
			break
		}
		nxt := nd.next.Load()
		nd.ver.Store(s + 2)
		if nxt == nil {
			panic("blink: rightmost node with finite high")
		}
		nd = nxt
	}
	n := int(nd.n.Load())
	for i := 0; i < n; i++ {
		if nd.keys[i].Load() == key {
			for k := i; k < n-1; k++ {
				nd.keys[k].Store(nd.keys[k+1].Load())
				nd.vals[k].Store(nd.vals[k+1].Load())
			}
			nd.vals[n-1].Store(nil)
			nd.n.Store(int32(n - 1))
			nd.ver.Store(s + 2)
			t.count.Add(-1)
			return true
		}
	}
	nd.ver.Store(s + 2)
	return false
}

// CheckInvariants walks the whole structure and verifies the B-Link shape:
// strictly sorted keys below each node's bound, branch separators equal to
// child bounds, contiguous sibling ranges ending at +infinity, and a leaf
// population matching Len. Quiescent use only (tests and fuzzers).
func (t *Tree[V]) CheckInvariants() error {
	level := t.root.Load()
	for level != nil {
		prevHigh := int64(math.MinInt64)
		total := 0
		for nd := level; nd != nil; nd = nd.next.Load() {
			n := int(nd.n.Load())
			high := nd.high.Load()
			if n > order {
				return fmt.Errorf("blink: node with %d entries exceeds order %d", n, order)
			}
			last := int64(math.MinInt64)
			for i := 0; i < n; i++ {
				k := nd.keys[i].Load()
				if i > 0 && k <= last {
					return fmt.Errorf("blink: unsorted keys %d <= %d at level %d", k, last, nd.level)
				}
				last = k
				if nd.leaf {
					if k >= high {
						return fmt.Errorf("blink: leaf key %d >= bound %d", k, high)
					}
					if k < prevHigh {
						return fmt.Errorf("blink: leaf key %d below left bound %d", k, prevHigh)
					}
					if nd.vals[i].Load() == nil {
						return fmt.Errorf("blink: leaf key %d with nil value box", k)
					}
					total++
				} else {
					child := nd.kids[i].Load()
					if child == nil {
						return fmt.Errorf("blink: nil child under separator %d", k)
					}
					if ch := child.high.Load(); ch != k {
						return fmt.Errorf("blink: separator %d != child bound %d", k, ch)
					}
					if child.level != nd.level-1 {
						return fmt.Errorf("blink: child level %d under level %d", child.level, nd.level)
					}
				}
			}
			if !nd.leaf {
				if n == 0 {
					return fmt.Errorf("blink: empty branch node at level %d", nd.level)
				}
				if nd.keys[n-1].Load() != high {
					return fmt.Errorf("blink: branch bound %d != last separator %d", high, nd.keys[n-1].Load())
				}
			}
			if nd.next.Load() == nil && high != infKey {
				return fmt.Errorf("blink: rightmost node at level %d ends at %d, not +inf", nd.level, high)
			}
			prevHigh = high
		}
		if level.leaf {
			if got := t.Len(); total != got {
				return fmt.Errorf("blink: leaf walk found %d keys, Len reports %d", total, got)
			}
			break
		}
		// Descend along the leftmost spine.
		next := level.kids[0].Load()
		if next == nil {
			return fmt.Errorf("blink: leftmost branch at level %d has nil first child", level.level)
		}
		level = next
	}
	return nil
}
