package blink_test

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"rubic/internal/load"
	"rubic/internal/stm"
	"rubic/internal/stm/container/blink"
)

// B-Link benchmarks for the regression harness, external test package so the
// Zipf generator (internal/load, which imports this package for the ordered
// workload) can supply the YCSB-style hot-key mix. Names are parsed into
// BENCH_<date>.json; keep them stable. The Zipfian shape (theta=0.99, dense
// key space) mirrors the StunDB bptree benchmarks this container is modeled
// on; `make benchscale` sweeps the parallel variants over GOMAXPROCS.

const benchKeys = 1 << 10

var benchEngines = []struct {
	name string
	algo stm.Algorithm
}{
	{"tl2", stm.TL2},
	{"norec", stm.NOrec},
}

func benchTree(b *testing.B) *blink.Tree[int64] {
	b.Helper()
	tr := blink.New[int64]()
	for k := int64(0); k < benchKeys; k++ {
		tr.Put(k, k<<8)
	}
	return tr
}

func benchMap(b *testing.B, algo stm.Algorithm) (*stm.Runtime, *blink.Map[int64]) {
	b.Helper()
	rt := stm.New(stm.Config{Algorithm: algo})
	m := blink.NewMap[int64]()
	for k := int64(0); k < benchKeys; k++ {
		key := k
		if err := rt.Atomic(func(tx *stm.Tx) error {
			m.Put(tx, key, key<<8)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	return rt, m
}

// benchZipf returns a seeded Zipfian stream over the bench key space.
func benchZipf(b *testing.B, seed int64) *load.Zipf {
	b.Helper()
	z, err := load.NewZipf(benchKeys, load.DefaultTheta, seed)
	if err != nil {
		b.Fatal(err)
	}
	return z
}

// BenchmarkBLink_Lookup_Zipfian: point lookups under the hot-key mix.
// "tree" is the lock-free Tree, "fast" the hybrid Map's lock-free path,
// "stm/*" the transactional path under AtomicRO. The fast paths must stay
// allocation-free (the alloc gate rides on -benchmem).
func BenchmarkBLink_Lookup_Zipfian(b *testing.B) {
	b.Run("tree", func(b *testing.B) {
		tr := benchTree(b)
		z := benchZipf(b, 1)
		sink := int64(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, _ := tr.Get(int64(z.Next()))
			sink += v
		}
		_ = sink
	})
	b.Run("fast", func(b *testing.B) {
		_, m := benchMap(b, stm.TL2)
		z := benchZipf(b, 1)
		sink := int64(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, _ := m.LookupFast(int64(z.Next()))
			sink += v
		}
		_ = sink
	})
	for _, e := range benchEngines {
		b.Run("stm/"+e.name, func(b *testing.B) {
			rt, m := benchMap(b, e.algo)
			z := benchZipf(b, 1)
			var key, sink int64
			fn := func(tx *stm.Tx) error {
				v, _ := m.Get(tx, key)
				sink += v
				return nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key = int64(z.Next())
				if err := rt.AtomicRO(fn); err != nil {
					b.Error(err)
					return
				}
			}
			_ = sink
		})
	}
}

// BenchmarkBLink_Scan_Zipfian: 64-wide range scans anchored at Zipf-drawn
// keys — the ordered workload shape no hash container can serve.
func BenchmarkBLink_Scan_Zipfian(b *testing.B) {
	const width = 64
	b.Run("tree", func(b *testing.B) {
		tr := benchTree(b)
		z := benchZipf(b, 2)
		sink := int64(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := int64(z.Next())
			tr.Scan(lo, lo+width-1, func(k, v int64) bool {
				sink += v
				return true
			})
		}
		_ = sink
	})
	b.Run("fast", func(b *testing.B) {
		_, m := benchMap(b, stm.TL2)
		z := benchZipf(b, 2)
		sink := int64(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := int64(z.Next())
			m.ScanFast(lo, lo+width-1, func(k, v int64) bool {
				sink += v
				return true
			})
		}
		_ = sink
	})
	for _, e := range benchEngines {
		b.Run("stm/"+e.name, func(b *testing.B) {
			rt, m := benchMap(b, e.algo)
			z := benchZipf(b, 2)
			var lo, sink int64
			fn := func(tx *stm.Tx) error {
				m.RangeBetween(tx, lo, lo+width-1, func(k, v int64) bool {
					sink += v
					return true
				})
				return nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo = int64(z.Next())
				if err := rt.AtomicRO(fn); err != nil {
					b.Error(err)
					return
				}
			}
			_ = sink
		})
	}
}

// BenchmarkBLink_Update_Zipfian: read-modify-write on hot keys — the
// contended ordered-index write path (in-place leaf updates, occasional
// splits from the re-insert mix).
func BenchmarkBLink_Update_Zipfian(b *testing.B) {
	b.Run("tree", func(b *testing.B) {
		tr := benchTree(b)
		z := benchZipf(b, 3)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := int64(z.Next())
			tr.Put(k, k<<8|int64(i&0xff))
		}
	})
	for _, e := range benchEngines {
		b.Run("stm/"+e.name, func(b *testing.B) {
			rt, m := benchMap(b, e.algo)
			z := benchZipf(b, 3)
			var key, val int64
			fn := func(tx *stm.Tx) error {
				m.Put(tx, key, val)
				return nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key = int64(z.Next())
				val = key<<8 | int64(i&0xff)
				if err := rt.Atomic(fn); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
}

// workerSeq hands each RunParallel worker a distinct deterministic seed
// (worker bodies start concurrently, so the ticket is atomic).
type workerSeq struct{ n atomic.Int64 }

func (s *workerSeq) next() int64 { return s.n.Add(1) * 1_000_003 }

// BenchmarkParallelBLinkLookup: the scaling claim — lock-free readers over
// the hybrid map and the native tree from every proc, Zipfian keys, zero
// allocations, no shared word touched.
func BenchmarkParallelBLinkLookup(b *testing.B) {
	b.Run("fast", func(b *testing.B) {
		_, m := benchMap(b, stm.TL2)
		seq := workerSeq{}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			z := benchZipf(b, seq.next())
			sink := int64(0)
			for pb.Next() {
				v, _ := m.LookupFast(int64(z.Next()))
				sink += v
			}
			_ = sink
		})
	})
	b.Run("tree", func(b *testing.B) {
		tr := benchTree(b)
		seq := workerSeq{}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			z := benchZipf(b, seq.next())
			sink := int64(0)
			for pb.Next() {
				v, _ := tr.Get(int64(z.Next()))
				sink += v
			}
			_ = sink
		})
	})
}

// BenchmarkParallelBLinkMixed: 90% lock-free lookups, 10% transactional
// updates from every proc — the hybrid container's service shape.
func BenchmarkParallelBLinkMixed(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt, m := benchMap(b, e.algo)
			seq := workerSeq{}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				seed := seq.next()
				z := benchZipf(b, seed)
				rng := rand.New(rand.NewSource(seed))
				var key int64
				fn := func(tx *stm.Tx) error {
					m.Put(tx, key, key<<8)
					return nil
				}
				sink := int64(0)
				for pb.Next() {
					key = int64(z.Next())
					if rng.Intn(10) == 0 {
						if err := rt.Atomic(fn); err != nil {
							b.Error(err)
							return
						}
					} else {
						v, _ := m.LookupFast(key)
						sink += v
					}
				}
				_ = sink
			})
		})
	}
}
