package blink

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"rubic/internal/stm"
)

// FuzzBLink is the differential fuzzer over the B-Link implementations: one
// operation sequence drives the lock-free Tree and the transactional Map on
// BOTH engines, checked against a sorted-map oracle op by op. The hybrid
// fast path (LookupFast) is validated against the STM path after every
// commit, full ordered scans are compared against the sorted oracle, and a
// concurrent reader probes the Tree and the Map fast path for torn reads
// (every value encodes its key) while the sequence executes.
//
// Op encoding follows the container package's fuzzers: two bytes per op —
// kind, then key — over a tiny key space so structural paths (splits,
// right-chasing, emptied leaves) are hit constantly.

const fuzzKeySpace = 16

type fuzzOp struct {
	kind byte // 0=Put 1=Delete 2=Get 3=Scan
	key  int64
	val  int64
}

func decodeOps(data []byte) []fuzzOp {
	ops := make([]fuzzOp, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		key := int64(data[i+1] % fuzzKeySpace)
		ops = append(ops, fuzzOp{
			kind: data[i] % 4,
			key:  key,
			// The value encodes its key so concurrent probes detect tearing.
			val: key<<8 | int64((i/2)&0xff),
		})
	}
	return ops
}

func FuzzBLink(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 2, 2, 1, 3, 0})       // put×3, del, get, scan
	f.Add([]byte{0, 5, 0, 5, 1, 5, 1, 5, 2, 5})             // duplicate put, double delete
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6}) // ascending inserts
	f.Add([]byte{0, 6, 0, 5, 0, 4, 0, 3, 0, 2, 0, 1, 3, 3, 1, 3, 1, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeOps(data)
		if len(ops) > 512 {
			ops = ops[:512]
		}
		tree := New[int64]()
		engines := []*stm.Runtime{
			stm.New(stm.Config{Algorithm: stm.TL2}),
			stm.New(stm.Config{Algorithm: stm.NOrec}),
		}
		maps := []*Map[int64]{NewMap[int64](), NewMap[int64]()}
		oracle := map[int64]int64{}

		// Concurrent torn-read probe over the lock-free structures: values
		// encode their key, so any torn observation is a mismatch.
		var stopProbe atomic.Bool
		var probe sync.WaitGroup
		probe.Add(1)
		go func() {
			defer probe.Done()
			for k := int64(0); !stopProbe.Load(); k = (k + 1) % fuzzKeySpace {
				if v, ok := tree.Get(k); ok && v>>8 != k {
					panic("fuzz probe: torn Tree.Get")
				}
				if v, ok := maps[0].LookupFast(k); ok && v>>8 != k {
					panic("fuzz probe: torn Map.LookupFast")
				}
				maps[1].ScanFast(k, k+4, func(sk, sv int64) bool {
					if sv>>8 != sk {
						panic("fuzz probe: torn Map.ScanFast")
					}
					return true
				})
			}
		}()
		defer func() {
			stopProbe.Store(true)
			probe.Wait()
		}()

		for opIdx, op := range ops {
			switch op.kind {
			case 0: // Put
				added := tree.Put(op.key, op.val)
				for e, rt := range engines {
					var mAdded bool
					if err := rt.Atomic(func(tx *stm.Tx) error {
						mAdded = maps[e].Put(tx, op.key, op.val)
						return nil
					}); err != nil {
						t.Fatalf("op %d engine %d: %v", opIdx, e, err)
					}
					if mAdded != added {
						t.Fatalf("op %d: Put(%d) Tree added=%v, Map[%d] added=%v", opIdx, op.key, added, e, mAdded)
					}
				}
				_, had := oracle[op.key]
				if added == had {
					t.Fatalf("op %d: Put(%d) added=%v, oracle had=%v", opIdx, op.key, added, had)
				}
				oracle[op.key] = op.val
			case 1: // Delete
				removed := tree.Delete(op.key)
				for e, rt := range engines {
					var mRemoved bool
					if err := rt.Atomic(func(tx *stm.Tx) error {
						mRemoved = maps[e].Delete(tx, op.key)
						return nil
					}); err != nil {
						t.Fatalf("op %d engine %d: %v", opIdx, e, err)
					}
					if mRemoved != removed {
						t.Fatalf("op %d: Delete(%d) Tree=%v, Map[%d]=%v", opIdx, op.key, removed, e, mRemoved)
					}
				}
				if _, had := oracle[op.key]; removed != had {
					t.Fatalf("op %d: Delete(%d)=%v, oracle had=%v", opIdx, op.key, removed, had)
				}
				delete(oracle, op.key)
			case 2: // Get: lock-free, fast path, and STM path must all agree.
				want, had := oracle[op.key]
				if got, ok := tree.Get(op.key); ok != had || (ok && got != want) {
					t.Fatalf("op %d: Tree.Get(%d)=(%d,%v), want (%d,%v)", opIdx, op.key, got, ok, want, had)
				}
				for e, rt := range engines {
					if got, ok := maps[e].LookupFast(op.key); ok != had || (ok && got != want) {
						t.Fatalf("op %d: Map[%d].LookupFast(%d)=(%d,%v), want (%d,%v)", opIdx, e, op.key, got, ok, want, had)
					}
					var got int64
					var ok bool
					if err := rt.AtomicRO(func(tx *stm.Tx) error {
						got, ok = maps[e].Get(tx, op.key)
						return nil
					}); err != nil {
						t.Fatalf("op %d engine %d: %v", opIdx, e, err)
					}
					if ok != had || (ok && got != want) {
						t.Fatalf("op %d: Map[%d].Get(%d)=(%d,%v), want (%d,%v)", opIdx, e, op.key, got, ok, want, had)
					}
				}
			case 3: // Scan from key: ordered suffix must match the oracle.
				var wantKeys []int64
				for k := range oracle {
					if k >= op.key {
						wantKeys = append(wantKeys, k)
					}
				}
				sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
				check := func(label string, gotKeys []int64) {
					if len(gotKeys) != len(wantKeys) {
						t.Fatalf("op %d: %s scan yielded %v, want %v", opIdx, label, gotKeys, wantKeys)
					}
					for i := range wantKeys {
						if gotKeys[i] != wantKeys[i] {
							t.Fatalf("op %d: %s scan yielded %v, want %v", opIdx, label, gotKeys, wantKeys)
						}
					}
				}
				var treeKeys []int64
				tree.Scan(op.key, fuzzKeySpace, func(k, v int64) bool {
					if v != oracle[k] {
						t.Fatalf("op %d: Tree.Scan key %d value %d, oracle %d", opIdx, k, v, oracle[k])
					}
					treeKeys = append(treeKeys, k)
					return true
				})
				check("Tree", treeKeys)
				for e, rt := range engines {
					var fastKeys, tranKeys []int64
					maps[e].ScanFast(op.key, fuzzKeySpace, func(k, v int64) bool {
						fastKeys = append(fastKeys, k)
						return true
					})
					check("Map.ScanFast", fastKeys)
					if err := rt.AtomicRO(func(tx *stm.Tx) error {
						tranKeys = tranKeys[:0]
						maps[e].RangeBetween(tx, op.key, fuzzKeySpace, func(k, v int64) bool {
							tranKeys = append(tranKeys, k)
							return true
						})
						return nil
					}); err != nil {
						t.Fatalf("op %d engine %d: %v", opIdx, e, err)
					}
					check("Map.RangeBetween", tranKeys)
				}
			}
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("settled Tree: %v", err)
		}
		for e, rt := range engines {
			if err := rt.AtomicRO(func(tx *stm.Tx) error {
				if err := maps[e].CheckInvariants(tx); err != nil {
					return err
				}
				if n := maps[e].Len(tx); n != len(oracle) {
					t.Fatalf("Map[%d].Len=%d, oracle %d", e, n, len(oracle))
				}
				return nil
			}); err != nil {
				t.Fatalf("settled Map[%d]: %v", e, err)
			}
		}
		if tree.Len() != len(oracle) {
			t.Fatalf("Tree.Len=%d, oracle %d", tree.Len(), len(oracle))
		}
	})
}
