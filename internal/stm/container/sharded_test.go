package container

import (
	"math/rand"
	"sync"
	"testing"

	"rubic/internal/stm"
)

// TestShardedHashMapModel drives random operations against a map oracle on
// both engines, exercising the self-routing single-shard paths and the
// cross-shard Len/Range/Move.
func TestShardedHashMapModel(t *testing.T) {
	for _, algo := range []stm.Algorithm{stm.TL2, stm.NOrec} {
		t.Run(algo.String(), func(t *testing.T) {
			sr := stm.NewSharded(4, stm.Config{Algorithm: algo})
			m := NewShardedHashMap[int64](sr, 16)
			model := map[int64]int64{}
			rng := rand.New(rand.NewSource(11))
			const keySpace = 512
			for op := 0; op < 8_000; op++ {
				k := rng.Int63n(keySpace)
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4:
					v := rng.Int63()
					added, err := m.Put(k, v)
					if err != nil {
						t.Fatal(err)
					}
					if _, had := model[k]; added == had {
						t.Fatalf("op %d: Put(%d) added=%v, oracle had=%v", op, k, added, had)
					}
					model[k] = v
				case 5, 6:
					removed, err := m.Delete(k)
					if err != nil {
						t.Fatal(err)
					}
					if _, had := model[k]; removed != had {
						t.Fatalf("op %d: Delete(%d)=%v, oracle had=%v", op, k, removed, had)
					}
					delete(model, k)
				case 7:
					src, dst := k, rng.Int63n(keySpace)
					moved, err := m.Move(src, dst)
					if err != nil {
						t.Fatal(err)
					}
					v, had := model[src]
					if moved != had {
						t.Fatalf("op %d: Move(%d,%d)=%v, oracle had=%v", op, src, dst, moved, had)
					}
					if had {
						delete(model, src)
						model[dst] = v
					}
				default:
					got, ok, err := m.Get(k)
					if err != nil {
						t.Fatal(err)
					}
					want, had := model[k]
					if ok != had || (ok && got != want) {
						t.Fatalf("op %d: Get(%d)=(%d,%v), want (%d,%v)", op, k, got, ok, want, had)
					}
				}
			}
			n, err := m.Len()
			if err != nil {
				t.Fatal(err)
			}
			if n != len(model) {
				t.Fatalf("Len=%d, oracle %d", n, len(model))
			}
			seen := map[int64]int64{}
			if err := m.Range(func(k, v int64) bool {
				seen[k] = v
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(seen) != len(model) {
				t.Fatalf("Range visited %d entries, oracle %d", len(seen), len(model))
			}
			for k, v := range model {
				if seen[k] != v {
					t.Fatalf("Range: key %d value %d, oracle %d", k, seen[k], v)
				}
			}
		})
	}
}

// TestShardedHashMapConcurrent: concurrent keyed updates partitioned by
// worker; per-key totals must be exact, and a concurrent Move storm between
// two dedicated keys must conserve their combined balance.
func TestShardedHashMapConcurrent(t *testing.T) {
	sr := stm.NewSharded(4, stm.Config{})
	m := NewShardedHashMap[int](sr, 16)
	const workers = 4
	const opsEach = 2_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				k := int64(w*100 + i%100) // worker-disjoint keys
				if err := m.Update(k, func(cur int, ok bool) int { return cur + 1 }); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	// Move storm: shuttle a token between two keys on different shards.
	const tokenA, tokenB = 9_001, 9_002
	if _, err := m.Put(tokenA, 7); err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			if _, err := m.Move(tokenA, tokenB); err != nil {
				panic(err)
			}
			if _, err := m.Move(tokenB, tokenA); err != nil {
				panic(err)
			}
		}
	}()
	wg.Wait()
	for w := 0; w < workers; w++ {
		for i := 0; i < 100; i++ {
			k := int64(w*100 + i)
			got, ok, err := m.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || got != opsEach/100 {
				t.Fatalf("key %d = (%d,%v), want (%d,true)", k, got, ok, opsEach/100)
			}
		}
	}
	v, ok, err := m.Get(tokenA)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || v != 7 {
		t.Fatalf("token = (%d,%v), want (7,true)", v, ok)
	}
}
