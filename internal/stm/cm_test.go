package stm

import (
	"sync"
	"testing"
	"time"
)

func TestAllCMNames(t *testing.T) {
	cms := []ContentionManager{
		SuicideCM{}, BackoffCM{}, GreedyCM{}, TwoPhaseCM{}, KarmaCM{}, PolkaCM{},
	}
	want := []string{"suicide", "backoff", "greedy", "two-phase", "karma", "polka"}
	for i, cm := range cms {
		if cm.Name() != want[i] {
			t.Errorf("cm %d Name = %q, want %q", i, cm.Name(), want[i])
		}
	}
}

func TestKarmaRicherWins(t *testing.T) {
	rt := New(Config{})
	rich := &Tx{rt: rt}
	rich.reset()
	rich.work.Store(100)
	poor := &Tx{rt: rt}
	poor.reset()
	poor.work.Store(5)

	cm := KarmaCM{}
	if cm.ShouldAbort(rich, poor) {
		t.Fatal("richer attacker should not abort")
	}
	if poor.status.Load() != txDoomed {
		t.Fatal("poorer owner should have been doomed")
	}
	poor2 := &Tx{rt: rt}
	poor2.reset()
	poor2.work.Store(5)
	if !cm.ShouldAbort(poor2, rich) {
		t.Fatal("poorer attacker should abort")
	}
	if rich.status.Load() == txDoomed {
		t.Fatal("richer owner must not be doomed by a poorer attacker")
	}
}

func TestKarmaAccumulatesAcrossRetries(t *testing.T) {
	rt := New(Config{CM: KarmaCM{}})
	x := NewVar(0)
	// A transaction that reads 10 variables accumulates work 10 per attempt.
	vars := make([]*Var[int], 10)
	for i := range vars {
		vars[i] = NewVar(i)
	}
	var observed int64
	err := rt.Atomic(func(tx *Tx) error {
		for _, v := range vars {
			_ = v.Read(tx)
		}
		x.Write(tx, 1)
		observed = tx.work.Load()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if observed < 11 {
		t.Fatalf("work = %d, want >= 11 (10 reads + 1 write)", observed)
	}
}

func TestTwoPhaseEscalates(t *testing.T) {
	rt := New(Config{})
	owner := &Tx{rt: rt}
	owner.ts.Store(1)
	owner.reset()
	attacker := &Tx{rt: rt}
	attacker.ts.Store(2)
	attacker.reset()

	cm := TwoPhaseCM{Threshold: 2}
	// Young attacker: timid (aborts self), owner untouched.
	attacker.attempt = 0
	if !cm.ShouldAbort(attacker, owner) {
		t.Fatal("young attacker should abort itself")
	}
	// Old attacker that is also older by timestamp: escalates to greedy.
	older := &Tx{rt: rt}
	older.reset()
	older.attempt = 5
	if cm.ShouldAbort(older, owner) {
		t.Fatal("escalated older attacker should win")
	}
	if owner.status.Load() != txDoomed {
		t.Fatal("owner should be doomed after greedy escalation")
	}
}

func TestBackoffBounded(t *testing.T) {
	cm := BackoffCM{Base: time.Microsecond, Max: 50 * time.Microsecond}
	start := time.Now()
	for attempt := 0; attempt < 30; attempt++ {
		cm.BeforeRetry(nil, attempt)
	}
	// 30 retries at <= ~50µs each plus scheduling slack must stay well under
	// a second; this guards against unbounded exponentiation.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("30 backoffs took %v", elapsed)
	}
}

// TestCMProgressUnderContention: every manager must complete a contended
// counter workload (progress/liveness smoke test).
func TestCMProgressUnderContention(t *testing.T) {
	for _, cm := range []ContentionManager{
		SuicideCM{}, BackoffCM{}, GreedyCM{}, TwoPhaseCM{}, KarmaCM{}, PolkaCM{},
	} {
		cm := cm
		t.Run(cm.Name(), func(t *testing.T) {
			rt := New(Config{CM: cm})
			x := NewVar(0)
			const goroutines, perG = 4, 100
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						if err := rt.Atomic(func(tx *Tx) error {
							x.Write(tx, x.Read(tx)+1)
							return nil
						}); err != nil {
							t.Errorf("Atomic: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if got := x.Peek(); got != goroutines*perG {
				t.Fatalf("counter = %d, want %d", got, goroutines*perG)
			}
		})
	}
}
