package stm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestRetryWithoutReads(t *testing.T) {
	for _, algo := range []Algorithm{TL2, NOrec} {
		rt := New(Config{Algorithm: algo})
		err := rt.Atomic(func(tx *Tx) error {
			tx.Retry()
			return nil
		})
		if !errors.Is(err, ErrRetryWithoutReads) {
			t.Fatalf("%v: err = %v, want ErrRetryWithoutReads", algo, err)
		}
	}
}

func TestRetryWakesOnWrite(t *testing.T) {
	for _, algo := range []Algorithm{TL2, NOrec} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: algo})
			flag := NewVar(false)
			value := NewVar(0)

			got := make(chan int, 1)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				err := rt.Atomic(func(tx *Tx) error {
					if !flag.Read(tx) {
						tx.Retry()
					}
					got <- value.Read(tx)
					return nil
				})
				if err != nil {
					t.Errorf("consumer: %v", err)
				}
			}()

			// Give the consumer time to park, then publish.
			time.Sleep(20 * time.Millisecond)
			select {
			case <-got:
				t.Fatal("consumer proceeded before the flag was set")
			default:
			}
			if err := rt.Atomic(func(tx *Tx) error {
				value.Write(tx, 42)
				flag.Write(tx, true)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			select {
			case v := <-got:
				if v != 42 {
					t.Fatalf("consumer observed %d, want 42", v)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("consumer never woke")
			}
			wg.Wait()
			if s := rt.Stats(); s.RetryWaits == 0 {
				t.Fatal("no retry wait recorded")
			}
		})
	}
}

// TestRetryBlockingQueue drives a producer/consumer pair where consumers
// block via Retry instead of spinning on an empty queue.
func TestRetryBlockingQueue(t *testing.T) {
	rt := New(Config{})
	head := NewVar(0) // next index to consume
	tail := NewVar(0) // next index to produce
	buf := make([]*Var[int], 64)
	for i := range buf {
		buf[i] = NewVar(0)
	}
	const items = 200

	var consumed []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var v int
				done := false
				err := rt.Atomic(func(tx *Tx) error {
					h, tl := head.Read(tx), tail.Read(tx)
					if h >= items {
						done = true
						return nil
					}
					if h == tl {
						tx.Retry() // empty: sleep until a producer commits
					}
					v = buf[h%len(buf)].Read(tx)
					head.Write(tx, h+1)
					return nil
				})
				if err != nil {
					t.Errorf("consumer: %v", err)
					return
				}
				if done {
					return
				}
				mu.Lock()
				consumed = append(consumed, v)
				mu.Unlock()
			}
		}()
	}
	// One producer fills the bounded buffer, blocking via Retry when full.
	for i := 0; i < items; i++ {
		if err := rt.Atomic(func(tx *Tx) error {
			h, tl := head.Read(tx), tail.Read(tx)
			if tl-h >= len(buf) {
				tx.Retry() // full: sleep until a consumer commits
			}
			buf[tl%len(buf)].Write(tx, tl*3)
			tail.Write(tx, tl+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			time.Sleep(time.Millisecond) // let consumers drain and park
		}
	}
	wg.Wait()
	if len(consumed) != items {
		t.Fatalf("consumed %d items, want %d", len(consumed), items)
	}
	seen := map[int]bool{}
	for _, v := range consumed {
		if v%3 != 0 || seen[v] {
			t.Fatalf("bad or duplicate item %d", v)
		}
		seen[v] = true
	}
}
