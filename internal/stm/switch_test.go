package stm

import (
	"sync"
	"testing"
	"time"
)

// Unit tests for the quiesce-and-switch protocol: drain semantics, the
// NOrec->TL2 clock re-seed, liveness against parked Retry waiters, and the
// undrained contention-manager swap.

// TestSwitchEnginePreservesData pins the basic contract: values written
// under one engine read back identically under every other, in all four
// transition directions.
func TestSwitchEnginePreservesData(t *testing.T) {
	for _, dir := range switchDirections {
		from, to := dir[0], dir[1]
		rt := New(Config{Algorithm: from})
		v := NewVar(0)
		if err := rt.Atomic(func(tx *Tx) error { v.Write(tx, 41); return nil }); err != nil {
			t.Fatal(err)
		}
		rt.SwitchEngine(to)
		if got := rt.Algorithm(); got != to {
			t.Fatalf("%s->%s: engine %s after switch", from.String(), to.String(), got.String())
		}
		var got int
		err := rt.Atomic(func(tx *Tx) error {
			got = v.Read(tx)
			v.Write(tx, got+1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != 41 || v.Peek() != 42 {
			t.Fatalf("%s->%s: read %d, final %d; want 41, 42", from.String(), to.String(), got, v.Peek())
		}
	}
}

// TestSwitchEngineReseedsClock pins the NOrec->TL2 handoff arithmetic: every
// writer commit of a NOrec era bumps the global seqlock by 2 without
// touching the TL2 clock, so the handoff must advance the clock by the era's
// writer-commit count — otherwise versions published during the era sit in
// the future of every post-switch snapshot and TL2 livelocks on validation.
func TestSwitchEngineReseedsClock(t *testing.T) {
	rt := New(Config{Algorithm: NOrec})
	v := NewVar(0)
	const writes = 5
	for i := 0; i < writes; i++ {
		if err := rt.Atomic(func(tx *Tx) error { v.Write(tx, i+1); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	before := rt.clock.now()
	rt.SwitchEngine(TL2)
	if got := rt.clock.now() - before; got != writes {
		t.Fatalf("clock advanced by %d across the handoff, want %d", got, writes)
	}

	// A second NOrec era must re-seed only its own commits: the mark moves
	// with the handoff, so prior eras are not double-counted.
	rt.SwitchEngine(NOrec)
	const more = 3
	for i := 0; i < more; i++ {
		if err := rt.Atomic(func(tx *Tx) error { v.Write(tx, 100+i); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	before = rt.clock.now()
	rt.SwitchEngine(TL2)
	if got := rt.clock.now() - before; got != more {
		t.Fatalf("second era advanced the clock by %d, want %d", got, more)
	}

	// And the re-seeded clock actually works: TL2 reads and writes settle
	// without tripping over era-published versions.
	var got int
	if err := rt.AtomicRO(func(tx *Tx) error { got = v.Read(tx); return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 102 {
		t.Fatalf("post-handoff read %d, want 102", got)
	}
}

// TestSwitchEngineDrainsInflight proves the stop-the-world barrier: a
// transaction blocked inside its closure holds the gate, and SwitchEngine
// must not complete until it commits.
func TestSwitchEngineDrainsInflight(t *testing.T) {
	rt := New(Config{Algorithm: TL2})
	v := NewVar(0)
	inTx := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	txDone := make(chan error, 1)
	go func() {
		txDone <- rt.Atomic(func(tx *Tx) error {
			v.Write(tx, 7)
			once.Do(func() { close(inTx) })
			<-release
			return nil
		})
	}()
	<-inTx
	swDone := make(chan struct{})
	go func() {
		rt.SwitchEngine(NOrec)
		close(swDone)
	}()
	select {
	case <-swDone:
		t.Fatal("SwitchEngine completed with a transaction still in flight")
	case <-time.After(20 * time.Millisecond):
		// Still draining — the barrier holds.
	}
	close(release)
	if err := <-txDone; err != nil {
		t.Fatal(err)
	}
	select {
	case <-swDone:
	case <-time.After(5 * time.Second):
		t.Fatal("SwitchEngine never completed after the in-flight transaction drained")
	}
	if v.Peek() != 7 {
		t.Fatalf("drained transaction's write lost: %d", v.Peek())
	}
}

// TestSwitchEngineUnblocksRetry proves drain liveness against the blocking
// primitive: a goroutine parked in Tx.Retry holds a gate slot, and the
// handoff must treat it as a spurious wakeup (release, drain, re-park)
// rather than deadlocking the drain against a waiter only a gated
// transaction could wake.
func TestSwitchEngineUnblocksRetry(t *testing.T) {
	rt := New(Config{Algorithm: TL2})
	flag := NewVar(0)
	var once sync.Once
	parked := make(chan struct{})
	waiter := make(chan error, 1)
	go func() {
		waiter <- rt.Atomic(func(tx *Tx) error {
			v := flag.Read(tx)
			once.Do(func() { close(parked) })
			if v == 0 {
				tx.Retry()
			}
			return nil
		})
	}()
	<-parked
	time.Sleep(2 * time.Millisecond) // let the waiter reach waitForChange
	swDone := make(chan struct{})
	go func() {
		rt.SwitchEngine(NOrec)
		close(swDone)
	}()
	select {
	case <-swDone:
	case <-time.After(5 * time.Second):
		t.Fatal("SwitchEngine deadlocked against a parked Retry waiter")
	}
	if err := rt.Atomic(func(tx *Tx) error { flag.Write(tx, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-waiter:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry waiter never woke after the switch")
	}
}

// TestSetContentionManager pins the undrained CM swap: effective
// immediately, nil restores the default, and swaps are counted separately
// from engine handoffs.
func TestSetContentionManager(t *testing.T) {
	rt := New(Config{Algorithm: TL2})
	if got := rt.ContentionManagerName(); got != (BackoffCM{}).Name() {
		t.Fatalf("default CM %q", got)
	}
	rt.SetContentionManager(GreedyCM{})
	if got := rt.ContentionManagerName(); got != (GreedyCM{}).Name() {
		t.Fatalf("CM %q after swap, want greedy", got)
	}
	rt.SetContentionManager(nil)
	if got := rt.ContentionManagerName(); got != (BackoffCM{}).Name() {
		t.Fatalf("CM %q after nil swap, want the default", got)
	}
	eng, cms := rt.SwitchCounts()
	if eng != 0 || cms != 2 {
		t.Fatalf("switch counts engine=%d cm=%d, want 0/2", eng, cms)
	}
	// The swapped manager must keep committing transactions.
	v := NewVar(0)
	if err := rt.Atomic(func(tx *Tx) error { v.Write(tx, 1); return nil }); err != nil {
		t.Fatal(err)
	}
}
