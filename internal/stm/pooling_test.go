package stm

import (
	"strings"
	"testing"
)

// The stmescape leak pattern: capture the Tx handle past its atomic block.
// rubic-lint only loads non-test files, so the deliberate leaks below don't
// trip the self-hosting TestRepoClean gate.

func leakTx(t *testing.T, rt *Runtime) *Tx {
	t.Helper()
	var leaked *Tx
	if err := rt.Atomic(func(tx *Tx) error {
		leaked = tx
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return leaked
}

func mustPoisonPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s on a leaked Tx did not panic", what)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "after its atomic block") {
			t.Fatalf("%s panic = %v, want use-after-Atomic poison message", what, r)
		}
	}()
	fn()
}

func TestLeakedTxPanicsOnUse(t *testing.T) {
	for _, algo := range []Algorithm{TL2, NOrec} {
		t.Run(algo.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: algo})
			x := NewVar(1)
			leaked := leakTx(t, rt)
			mustPoisonPanic(t, "Read", func() { x.Read(leaked) })
			mustPoisonPanic(t, "Write", func() { x.Write(leaked, 2) })
			// The variable is untouched by the poisoned accesses.
			if got := x.Peek(); got != 1 {
				t.Fatalf("Peek = %d after poisoned accesses, want 1", got)
			}
		})
	}
}

// TestPoisonSurvivesRecycling pins the sharpest version of the hazard: the
// leaked handle's object is recycled by a later atomic block, and the stale
// handle must still fail loudly rather than operate on the new block's
// state. (Detection is via status; the generation counter in the panic
// message attributes the leak.)
func TestPoisonSurvivesRecycling(t *testing.T) {
	rt := New(Config{})
	x := NewVar(0)
	leaked := leakTx(t, rt)
	genAtLeak := leaked.gen.Load()
	if genAtLeak == 0 {
		t.Fatal("generation not bumped on release")
	}
	// Drive more blocks through the runtime; with a single-P pool these
	// recycle the leaked object.
	reused := false
	for i := 0; i < 32; i++ {
		if err := rt.Atomic(func(tx *Tx) error {
			if tx == leaked {
				reused = true
			}
			x.Write(tx, i&0x7f)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !reused {
		t.Log("pool did not hand the leaked object back (GC or multi-P); poison check still applies")
	}
	if got := leaked.gen.Load(); got < genAtLeak {
		t.Fatalf("generation went backwards: %d -> %d", genAtLeak, got)
	}
	mustPoisonPanic(t, "Read", func() { x.Read(leaked) })
}

// TestPoolRecyclesTx verifies recycling actually happens (the zero-alloc
// claim depends on it): consecutive sequential blocks reuse one object.
func TestPoolRecyclesTx(t *testing.T) {
	rt := New(Config{})
	seen := make(map[*Tx]int)
	for i := 0; i < 100; i++ {
		if err := rt.Atomic(func(tx *Tx) error {
			seen[tx]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	max := 0
	for _, n := range seen {
		if n > max {
			max = n
		}
	}
	if max < 2 {
		t.Fatalf("no Tx object was reused across 100 sequential blocks (distinct objects: %d)", len(seen))
	}
}

// TestReleaseDropsOversizedSets pins the retention cap: a huge transaction
// must not pin its sets on the pooled object.
func TestReleaseDropsOversizedSets(t *testing.T) {
	rt := New(Config{})
	n := maxRetainedEntries + 1
	vars := make([]*Var[int], n)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	var leaked *Tx
	if err := rt.Atomic(func(tx *Tx) error {
		for _, v := range vars {
			v.Write(tx, 1)
		}
		leaked = tx
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if leaked.writes != nil || leaked.windex != nil {
		t.Fatalf("oversized write set retained: writes cap=%d windex len=%d",
			cap(leaked.writes), len(leaked.windex))
	}
}
