//go:build race

package stm

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
