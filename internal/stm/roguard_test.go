package stm

import (
	"fmt"
	"testing"
)

// These tests pin the runtime guard that rubic/roviolation enforces
// statically: a Var.Write reached from an AtomicRO block panics, even when
// the transaction handle travels through helper functions first.

// bumpVar writes through a tx it received as an argument.
func bumpVar(tx *Tx, v *Var[int], val int) {
	v.Write(tx, val)
}

// bumpDeep adds a second call level between the block and the write.
func bumpDeep(tx *Tx, v *Var[int], val int) {
	bumpVar(tx, v, val)
}

func TestAtomicROHelperWritePanics(t *testing.T) {
	for _, alg := range []Algorithm{TL2, NOrec} {
		alg := alg
		for _, tc := range []struct {
			name  string
			write func(tx *Tx, v *Var[int])
		}{
			{"direct", func(tx *Tx, v *Var[int]) { v.Write(tx, 1) }},
			{"one-helper", func(tx *Tx, v *Var[int]) { bumpVar(tx, v, 1) }},
			{"two-helpers", func(tx *Tx, v *Var[int]) { bumpDeep(tx, v, 1) }},
		} {
			tc := tc
			t.Run(fmt.Sprintf("alg=%d/%s", alg, tc.name), func(t *testing.T) {
				rt := New(Config{Algorithm: alg})
				v := NewVar(0)
				func() {
					defer func() {
						r := recover()
						if r == nil {
							t.Fatal("expected panic on RO write via helper")
						}
						if s, ok := r.(string); !ok || s != "stm: write inside a read-only transaction" {
							t.Fatalf("unexpected panic value: %v", r)
						}
					}()
					_ = rt.AtomicRO(func(tx *Tx) error {
						tc.write(tx, v)
						return nil
					})
				}()
				// The runtime must remain usable after the panic.
				if err := rt.Atomic(func(tx *Tx) error { v.Write(tx, 7); return nil }); err != nil {
					t.Fatalf("Atomic after RO panic: %v", err)
				}
				if got := v.Peek(); got != 7 {
					t.Fatalf("value = %d, want 7", got)
				}
			})
		}
	}
}

// TestAtomicROReadHelperAllowed is the negative counterpart: helpers that
// only read through the tx are fine from AtomicRO.
func TestAtomicROReadHelperAllowed(t *testing.T) {
	sumVars := func(tx *Tx, vs []*Var[int]) int {
		total := 0
		for _, v := range vs {
			total += v.Read(tx)
		}
		return total
	}
	for _, alg := range []Algorithm{TL2, NOrec} {
		rt := New(Config{Algorithm: alg})
		vs := []*Var[int]{NewVar(3), NewVar(4), NewVar(5)}
		sum := 0
		if err := rt.AtomicRO(func(tx *Tx) error {
			total := sumVars(tx, vs)
			sum = total
			return nil
		}); err != nil {
			t.Fatalf("alg=%d: %v", alg, err)
		}
		if sum != 12 {
			t.Fatalf("alg=%d: sum = %d, want 12", alg, sum)
		}
	}
}
