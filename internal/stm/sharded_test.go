package stm

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// shardedEngines enumerates the uniform-engine configurations plus a mixed
// one (shard 0 switched to the other engine after construction), which
// exercises the cross-shard commit's NOrec pinning and TL2 validation in the
// same two-phase commit.
var shardedEngines = []struct {
	name  string
	algo  Algorithm
	mixed bool
}{
	{"tl2", TL2, false},
	{"norec", NOrec, false},
	{"mixed", TL2, true},
}

func newShardedForTest(n int, eng struct {
	name  string
	algo  Algorithm
	mixed bool
}) *ShardedRuntime {
	sr := NewSharded(n, Config{Algorithm: eng.algo})
	if eng.mixed {
		other := NOrec
		if eng.algo == NOrec {
			other = TL2
		}
		sr.Shard(0).SwitchEngine(other)
	}
	return sr
}

func TestNewShardedRounding(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{-1, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		if got := NewSharded(tc.n, Config{}).Shards(); got != tc.want {
			t.Errorf("NewSharded(%d).Shards() = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestShardForRouting(t *testing.T) {
	sr := NewSharded(4, Config{})
	counts := make([]int, sr.Shards())
	for k := uint64(0); k < 1<<14; k++ {
		i := sr.ShardFor(k)
		if i < 0 || i >= sr.Shards() {
			t.Fatalf("ShardFor(%d) = %d out of range", k, i)
		}
		if sr.ForKey(k) != sr.Shard(i) {
			t.Fatalf("ForKey(%d) disagrees with ShardFor", k)
		}
		if sr.ShardFor(k) != i {
			t.Fatalf("ShardFor(%d) not deterministic", k)
		}
		counts[i]++
	}
	// Fibonacci hashing on a dense key space should spread roughly evenly;
	// assert no shard is starved or hoards more than half the keys.
	for i, c := range counts {
		if c == 0 || c > 1<<13 {
			t.Fatalf("shard %d holds %d of %d keys: %v", i, c, 1<<14, counts)
		}
	}
	// Single-shard runtimes route everything to shard 0.
	one := NewSharded(1, Config{})
	for k := uint64(0); k < 1000; k++ {
		if one.ShardFor(k) != 0 {
			t.Fatalf("1-shard ShardFor(%d) = %d", k, one.ShardFor(k))
		}
	}
}

// TestAtomicKeySingleShard drives keyed single-shard traffic and checks the
// folded statistics account for every commit without any cross commits.
func TestAtomicKeySingleShard(t *testing.T) {
	sr := NewSharded(4, Config{})
	const keys = 64
	vars := make([]*Var[int], keys)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	const perKey = 50
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perKey*keys/4; i++ {
				k := uint64((w*perKey*keys/4 + i) % keys)
				if err := sr.AtomicKey(k, func(tx *Tx) error {
					vars[k].Write(tx, vars[k].Read(tx)+1)
					return nil
				}); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for k := uint64(0); k < keys; k++ {
		var v int
		if err := sr.AtomicROKey(k, func(tx *Tx) error {
			v = vars[k].Read(tx)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		total += v
	}
	if total != perKey*keys {
		t.Fatalf("summed counters = %d, want %d", total, perKey*keys)
	}
	if got := sr.Stats().Commits; got < perKey*keys {
		t.Fatalf("folded Commits = %d, want >= %d", got, perKey*keys)
	}
	if sr.CrossCommits() != 0 {
		t.Fatalf("CrossCommits = %d for single-shard traffic", sr.CrossCommits())
	}
}

// TestAtomicAcrossTransfer is the bank invariant across shards: concurrent
// cross-shard transfers and cross-shard audits; the total must never change.
func TestAtomicAcrossTransfer(t *testing.T) {
	for _, eng := range shardedEngines {
		t.Run(eng.name, func(t *testing.T) {
			sr := newShardedForTest(4, eng)
			const accounts = 16
			const initial = 1000
			vars := make([]*Var[int], accounts)
			shardOf := make([]int, accounts)
			for i := range vars {
				vars[i] = NewVar(initial)
				shardOf[i] = sr.ShardFor(uint64(i))
			}
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 300; i++ {
						a, b := rng.Intn(accounts), rng.Intn(accounts)
						if a == b {
							continue
						}
						amt := rng.Intn(50)
						if err := sr.AtomicAcross(func(cx *CrossTx) error {
							ta, tb := cx.On(shardOf[a]), cx.On(shardOf[b])
							vars[a].Write(ta, vars[a].Read(ta)-amt)
							vars[b].Write(tb, vars[b].Read(tb)+amt)
							return nil
						}); err != nil {
							panic(err)
						}
					}
				}(int64(w + 1))
			}
			// Concurrent auditors: a cross-shard snapshot of every account
			// must always sum to the initial total.
			auditStop := make(chan struct{})
			var auditors sync.WaitGroup
			auditors.Add(1)
			go func() {
				defer auditors.Done()
				for {
					select {
					case <-auditStop:
						return
					default:
					}
					sum := 0
					if err := sr.AtomicAcross(func(cx *CrossTx) error {
						sum = 0
						for i := range vars {
							sum += vars[i].Read(cx.On(shardOf[i]))
						}
						return nil
					}); err != nil {
						panic(err)
					}
					if sum != accounts*initial {
						panic(fmt.Sprintf("audit saw total %d, want %d", sum, accounts*initial))
					}
				}
			}()
			wg.Wait()
			close(auditStop)
			auditors.Wait()
			sum := 0
			for i := range vars {
				sum += vars[i].Peek()
			}
			if sum != accounts*initial {
				t.Fatalf("final total %d, want %d", sum, accounts*initial)
			}
			if sr.CrossCommits() == 0 {
				t.Fatal("no cross-shard commits recorded")
			}
		})
	}
}

// TestAtomicAcrossSnapshotVsSingleShard pins the anomaly the combined commit
// point exists to prevent: a cross-shard writer keeps two vars on different
// shards equal, single-shard writers churn unrelated vars (advancing the
// per-shard clocks/seqlocks independently), and a cross-shard reader must
// never observe the pair unequal — which a per-sub-transaction "quiet
// read-only commit" would permit.
func TestAtomicAcrossSnapshotVsSingleShard(t *testing.T) {
	for _, eng := range shardedEngines {
		t.Run(eng.name, func(t *testing.T) {
			sr := newShardedForTest(2, eng)
			a, b := NewVar(0), NewVar(0) // a on shard 0, b on shard 1
			noiseA, noiseB := NewVar(0), NewVar(0)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(3)
			go func() { // cross-shard writer: a and b move in lockstep
				defer wg.Done()
				for i := 1; i < 400; i++ {
					if err := sr.AtomicAcross(func(cx *CrossTx) error {
						a.Write(cx.On(0), i)
						b.Write(cx.On(1), i)
						return nil
					}); err != nil {
						panic(err)
					}
				}
			}()
			go func() { // single-shard noise on shard 0
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_ = sr.Shard(0).Atomic(func(tx *Tx) error {
						noiseA.Write(tx, noiseA.Read(tx)+1)
						return nil
					})
				}
			}()
			go func() { // single-shard noise on shard 1
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_ = sr.Shard(1).Atomic(func(tx *Tx) error {
						noiseB.Write(tx, noiseB.Read(tx)+1)
						return nil
					})
				}
			}()
			for i := 0; i < 400; i++ {
				var va, vb int
				if err := sr.AtomicAcross(func(cx *CrossTx) error {
					va = a.Read(cx.On(0))
					vb = b.Read(cx.On(1))
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if va != vb {
					t.Fatalf("cross-shard snapshot tore: a=%d b=%d", va, vb)
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestAtomicAcrossSingleShardDegenerate: spanning "one" shard must still
// commit correctly through the combined path.
func TestAtomicAcrossSingleShardDegenerate(t *testing.T) {
	sr := NewSharded(4, Config{})
	v := NewVar(0)
	for i := 0; i < 10; i++ {
		if err := sr.AtomicAcross(func(cx *CrossTx) error {
			tx := cx.On(2)
			v.Write(tx, v.Read(tx)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.Peek(); got != 10 {
		t.Fatalf("value %d, want 10", got)
	}
	if sr.CrossCommits() != 10 {
		t.Fatalf("CrossCommits = %d, want 10", sr.CrossCommits())
	}
}

// TestAtomicAcrossUserError: fn's error aborts the attempt without
// publishing anything and is returned unwrapped.
func TestAtomicAcrossUserError(t *testing.T) {
	sr := NewSharded(2, Config{})
	v0, v1 := NewVar(0), NewVar(0)
	sentinel := errors.New("business rule")
	err := sr.AtomicAcross(func(cx *CrossTx) error {
		v0.Write(cx.On(0), 99)
		v1.Write(cx.On(1), 99)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if v0.Peek() != 0 || v1.Peek() != 0 {
		t.Fatalf("aborted writes published: %d %d", v0.Peek(), v1.Peek())
	}
	if ua := sr.Stats().UserAborts; ua == 0 {
		t.Fatal("no user abort recorded")
	}
}

// TestAtomicAcrossDurableGate: a commit sink on any shard forbids
// cross-shard transactions.
type nopSink struct{ csn uint64 }

func (s *nopSink) BeginCommit() uint64         { s.csn++; return s.csn }
func (s *nopSink) Publish(uint64, []DurableOp) {}
func (s *nopSink) WaitDurable(uint64)          {}

func TestAtomicAcrossDurableGate(t *testing.T) {
	sr := NewSharded(4, Config{})
	sr.Shard(3).AttachCommitSink(&nopSink{})
	err := sr.AtomicAcross(func(cx *CrossTx) error { return nil })
	if !errors.Is(err, ErrCrossShardDurable) {
		t.Fatalf("err = %v, want ErrCrossShardDurable", err)
	}
	sr.Shard(3).AttachCommitSink(nil)
	if err := sr.AtomicAcross(func(cx *CrossTx) error { return nil }); err != nil {
		t.Fatalf("after detach: %v", err)
	}
}

// TestAtomicAcrossRetryUnsupported: Tx.Retry has no cross-shard wait
// protocol; it must fail loudly instead of hanging.
func TestAtomicAcrossRetryUnsupported(t *testing.T) {
	sr := NewSharded(2, Config{})
	v := NewVar(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Tx.Retry inside AtomicAcross did not panic")
		}
	}()
	_ = sr.AtomicAcross(func(cx *CrossTx) error {
		tx := cx.On(0)
		if v.Read(tx) == 0 {
			tx.Retry()
		}
		return nil
	})
}

// TestShardedSwitchEngine sweeps the engine across all shards while cross-
// and single-shard traffic commits underneath; every shard must land on the
// target engine and the bank invariant must hold throughout.
func TestShardedSwitchEngine(t *testing.T) {
	sr := NewSharded(4, Config{Algorithm: TL2})
	const accounts = 8
	const initial = 100
	vars := make([]*Var[int], accounts)
	shardOf := make([]int, accounts)
	for i := range vars {
		vars[i] = NewVar(initial)
		shardOf[i] = sr.ShardFor(uint64(i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a, b := rng.Intn(accounts), rng.Intn(accounts)
				if a == b {
					continue
				}
				if err := sr.AtomicAcross(func(cx *CrossTx) error {
					ta, tb := cx.On(shardOf[a]), cx.On(shardOf[b])
					vars[a].Write(ta, vars[a].Read(ta)-1)
					vars[b].Write(tb, vars[b].Read(tb)+1)
					return nil
				}); err != nil {
					panic(err)
				}
			}
		}(int64(w + 1))
	}
	engines := []Algorithm{NOrec, TL2, NOrec, TL2}
	for _, to := range engines {
		sr.SwitchEngine(to)
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	for i := 0; i < sr.Shards(); i++ {
		if got := sr.Shard(i).Algorithm(); got != TL2 {
			t.Fatalf("shard %d engine %s after sweep, want TL2", i, got.String())
		}
	}
	sum := 0
	for i := range vars {
		sum += vars[i].Peek()
	}
	if sum != accounts*initial {
		t.Fatalf("total %d after switch storm, want %d", sum, accounts*initial)
	}
}

// --- Sharded serializability oracle ---
//
// The single-runtime oracle (differential_test.go) requires every
// transaction to read all variables. Sharded histories mix cross-shard
// transactions (which can) with single-shard ones (which, by definition,
// see only their own shard), so records carry a read mask and the
// sequential search checks only the positions a transaction actually
// observed. Unique write values keep the search exact.

type shardDiffRecord struct {
	mask  [3]bool
	reads [3]int
	widx  int
	val   int
}

// findSerialOrderMasked searches for a sequential execution explaining the
// histories under per-worker program order, matching each record's snapshot
// only at its masked positions.
func findSerialOrderMasked(histories [][]shardDiffRecord, final [3]int) bool {
	next := make([]int, len(histories))
	var state [3]int
	remaining := 0
	for _, h := range histories {
		remaining += len(h)
	}
	var search func() bool
	search = func() bool {
		if remaining == 0 {
			return state == final
		}
		for w, h := range histories {
			if next[w] >= len(h) {
				continue
			}
			r := h[next[w]]
			ok := true
			for j := 0; j < 3; j++ {
				if r.mask[j] && r.reads[j] != state[j] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			prev := state[r.widx]
			state[r.widx] = r.val
			next[w]++
			remaining--
			if search() {
				return true
			}
			remaining++
			next[w]--
			state[r.widx] = prev
		}
		return false
	}
	return search()
}

// shardedDiffWorkload runs workers over a 4-shard runtime with one variable
// pinned to each of shards 0..2. Odd iterations run a cross-shard
// transaction reading all three and writing one; even iterations run a
// single-shard transaction read-modify-writing the worker's variable.
func shardedDiffWorkload(t *testing.T, sr *ShardedRuntime, workers, txPerWorker int) ([][]shardDiffRecord, [3]int) {
	t.Helper()
	vars := [3]*Var[int]{NewVar(0), NewVar(0), NewVar(0)} // var j lives on shard j
	histories := make([][]shardDiffRecord, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txPerWorker; i++ {
				val := 1 + w*txPerWorker + i // unique, never the initial 0
				if i%2 == 1 {
					widx := (w + i) % 3
					var snap [3]int
					err := sr.AtomicAcross(func(cx *CrossTx) error {
						for j := range vars {
							snap[j] = vars[j].Read(cx.On(j))
						}
						vars[widx].Write(cx.On(widx), val)
						return nil
					})
					if err != nil {
						errs[w] = err
						return
					}
					histories[w] = append(histories[w], shardDiffRecord{
						mask: [3]bool{true, true, true}, reads: snap, widx: widx, val: val,
					})
				} else {
					widx := w % 3
					var read int
					err := sr.Shard(widx).Atomic(func(tx *Tx) error {
						read = vars[widx].Read(tx)
						vars[widx].Write(tx, val)
						return nil
					})
					if err != nil {
						errs[w] = err
						return
					}
					rec := shardDiffRecord{widx: widx, val: val}
					rec.mask[widx] = true
					rec.reads[widx] = read
					histories[w] = append(histories[w], rec)
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	var final [3]int
	for j := range vars {
		final[j] = vars[j].Peek()
	}
	return histories, final
}

// TestShardedSerializability: mixed single- and cross-shard histories on
// every engine configuration must be explainable by one sequential order.
func TestShardedSerializability(t *testing.T) {
	const workers, txPerWorker = 3, 6
	for _, eng := range shardedEngines {
		t.Run(eng.name, func(t *testing.T) {
			for round := 0; round < 15; round++ {
				sr := newShardedForTest(4, eng)
				histories, final := shardedDiffWorkload(t, sr, workers, txPerWorker)
				if !findSerialOrderMasked(histories, final) {
					t.Fatalf("round %d: no sequential order explains the sharded history\nhistories: %+v\nfinal: %v",
						round, histories, final)
				}
			}
		})
	}
}

// TestShardedSwitchPointOracle extends the switch-point oracle to sharded
// commits: a full-sweep engine switch is injected after the c-th commit for
// every cut point c, and the mixed single/cross history must remain
// serializable across the handoff.
func TestShardedSwitchPointOracle(t *testing.T) {
	const workers, txPerWorker = 3, 4
	const total = workers * txPerWorker
	for _, dir := range switchDirections {
		from, to := dir[0], dir[1]
		t.Run(from.String()+"_to_"+to.String(), func(t *testing.T) {
			for cut := uint64(0); cut <= total; cut += 2 {
				sr := NewSharded(4, Config{Algorithm: from})
				done := make(chan struct{})
				go func() {
					defer close(done)
					for sr.Stats().Commits < cut {
						runtime.Gosched()
					}
					sr.SwitchEngine(to)
				}()
				histories, final := shardedDiffWorkload(t, sr, workers, txPerWorker)
				<-done
				for i := 0; i < sr.Shards(); i++ {
					if got := sr.Shard(i).Algorithm(); got != to {
						t.Fatalf("cut %d: shard %d engine %s, want %s", cut, i, got.String(), to.String())
					}
				}
				if !findSerialOrderMasked(histories, final) {
					t.Fatalf("cut %d (%s->%s): no sequential order explains the sharded history\nhistories: %+v\nfinal: %v",
						cut, from.String(), to.String(), histories, final)
				}
			}
		})
	}
}

// TestFindSerialOrderMaskedRejectsBadHistory sanity-checks the masked
// oracle: a cross-shard record claiming a snapshot no interleaving produced
// must be rejected.
func TestFindSerialOrderMaskedRejectsBadHistory(t *testing.T) {
	histories := [][]shardDiffRecord{
		{{mask: [3]bool{true, true, true}, reads: [3]int{0, 0, 0}, widx: 0, val: 1}},
		// Claims var0=1, var1=5 — nobody ever wrote 5.
		{{mask: [3]bool{true, true, true}, reads: [3]int{1, 5, 0}, widx: 1, val: 2}},
	}
	if findSerialOrderMasked(histories, [3]int{1, 2, 0}) {
		t.Fatal("masked oracle accepted an unserializable history")
	}
}
