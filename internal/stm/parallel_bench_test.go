package stm

import (
	"sync/atomic"
	"testing"
)

// Parallel scaling benchmarks of the transaction life cycle: the RunParallel
// counterparts of the serial hot-path benchmarks, run on both engines. They
// are what `make benchscale` sweeps over GOMAXPROCS ∈ {1, 2, 4, NumCPU} and
// what the v2 benchmark gate tracks at 2 procs: keep names stable.
//
// BenchmarkAtomicWriteHeavy and BenchmarkAtomicHighConflict (see
// hotpath_bench_test.go) complete the RO/RMW/write-heavy/high-conflict
// parallel quartet; they already run under RunParallel.

// BenchmarkParallelRO reads one shared location from every worker under
// AtomicRO. There are no conflicts and no writes, so the benchmark isolates
// the read-side costs that scale with parallelism: the global-clock (or
// NOrec seqlock) snapshot at transaction start and the sharded statistics
// counters at commit.
func BenchmarkParallelRO(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt := New(Config{Algorithm: e.algo})
			x := NewVar(42)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				sink := 0
				fn := func(tx *Tx) error {
					sink = x.Read(tx)
					return nil
				}
				for pb.Next() {
					if err := rt.AtomicRO(fn); err != nil {
						b.Error(err)
						return
					}
				}
				_ = sink
			})
		})
	}
}

// BenchmarkParallelRMW gives every worker a private counter location: a
// read-modify-write per transaction with no data conflicts, so the benchmark
// measures how writer commits scale — commit timestamping on the shared
// clock (TL2) or write-back serialization on the seqlock (NOrec), plus the
// write-set bookkeeping of a one-write transaction.
func BenchmarkParallelRMW(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt := New(Config{Algorithm: e.algo})
			vars := make([]*Var[int], 64)
			for i := range vars {
				vars[i] = NewVar(0)
			}
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				x := vars[int(next.Add(1)-1)%len(vars)]
				fn := func(tx *Tx) error {
					x.Write(tx, (x.Read(tx)+1)&0x7f)
					return nil
				}
				for pb.Next() {
					if err := rt.Atomic(fn); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkParallelReadSet is the parallel form of BenchmarkAtomicReadSet:
// every worker reads a shared 32-location block and writes one private
// location, so commit-time validation of a real read set runs concurrently
// with other writers advancing the clock.
func BenchmarkParallelReadSet(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt := New(Config{Algorithm: e.algo})
			shared := make([]*Var[int], 32)
			for i := range shared {
				shared[i] = NewVar(i & 0x7f)
			}
			private := make([]*Var[int], 64)
			for i := range private {
				private[i] = NewVar(0)
			}
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mine := private[int(next.Add(1)-1)%len(private)]
				fn := func(tx *Tx) error {
					sum := 0
					for _, v := range shared {
						sum += v.Read(tx)
					}
					mine.Write(tx, sum&0x7f)
					return nil
				}
				for pb.Next() {
					if err := rt.Atomic(fn); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
