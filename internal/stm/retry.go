package stm

import (
	"errors"
	"runtime"
	"time"
)

// retrySignal is the sentinel panic payload of Tx.Retry.
type retrySignal struct{}

// ErrRetryWithoutReads is returned by Atomic when a transaction calls Retry
// before reading anything: with an empty watch set the block could never be
// woken.
var ErrRetryWithoutReads = errors.New("stm: Retry with an empty read set")

// Retry aborts the current attempt and blocks the atomic block until at
// least one location the attempt has read changes, then re-executes it —
// the classic composable blocking primitive (Harris et al.'s `retry`).
//
// Typical use, a blocking queue consumer:
//
//	err := rt.Atomic(func(tx *stm.Tx) error {
//	    v, ok := q.Pop(tx)
//	    if !ok {
//	        tx.Retry() // sleeps until the queue changes
//	    }
//	    consume(v)
//	    return nil
//	})
//
// Retry never returns; like a conflict, it unwinds the attempt internally.
func (tx *Tx) Retry() {
	panic(retrySignal{})
}

// waitForChange blocks until a location in the attempt's watch set (the
// TL2 read set or the NOrec value log) changes, polling with escalating
// pauses. It returns an error when there is nothing to watch.
func (tx *Tx) waitForChange() error {
	watchTL2 := make([]readEntry, len(tx.reads))
	copy(watchTL2, tx.reads)
	watchNOrec := make([]valueRead, len(tx.vreads))
	copy(watchNOrec, tx.vreads)
	if len(watchTL2) == 0 && len(watchNOrec) == 0 {
		return ErrRetryWithoutReads
	}
	for spin := 0; ; spin++ {
		// A blocked Retry holds a quiesce-gate slot; parking here instead
		// would deadlock an engine drain against a waiter that may only be
		// woken by a transaction parked behind the gate. Treat the switch as
		// a spurious wakeup: release the slot, let the drain finish, re-park
		// and re-execute the block under the (possibly new) engine.
		if tx.rt.swGate.Load() != 0 {
			tx.rt.exit(tx.shard)
			tx.rt.enter(tx.shard)
			return nil
		}
		for i := range watchTL2 {
			e := &watchTL2[i]
			if e.base.meta.Load() != e.meta {
				return nil
			}
		}
		for i := range watchNOrec {
			r := &watchNOrec[i]
			if r.base.val.Load() != r.p {
				return nil
			}
		}
		// Escalate from busy yielding to short sleeps; wake latency stays
		// in the tens of microseconds while idle waiters cost little.
		switch {
		case spin < 64:
			runtime.Gosched()
		default:
			time.Sleep(50 * time.Microsecond)
		}
	}
}
