package stm

import (
	"testing"

	"rubic/internal/rng"
)

// Property tests for the conflict-profile sampler: synthetic workloads with
// known set sizes and abort counts must reproduce them exactly (the sampler
// is pure arithmetic over counter deltas — there is no estimation error on a
// sequential schedule), and the profile must be a deterministic function of
// the operation sequence.

var profileEngines = []Algorithm{TL2, NOrec}

// TestProfileKnownSetSizes: N sequential transactions each reading 3 vars
// and read-modify-writing 1 must profile to MeanReadSet=3, MeanWriteSet=1,
// AbortRatio=0 on both engines.
func TestProfileKnownSetSizes(t *testing.T) {
	for _, algo := range profileEngines {
		t.Run(algo.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: algo})
			vars := [3]*Var[int]{NewVar(0), NewVar(0), NewVar(0)}
			prev := rt.Stats()
			const n = 50
			for i := 0; i < n; i++ {
				err := rt.Atomic(func(tx *Tx) error {
					for _, v := range vars {
						v.Read(tx)
					}
					vars[i%3].Write(tx, i)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			p := ProfileBetween(prev, rt.Stats())
			if p.Commits != n || p.Aborts != 0 {
				t.Fatalf("commits=%d aborts=%d, want %d/0", p.Commits, p.Aborts, n)
			}
			if p.AbortRatio != 0 {
				t.Fatalf("abort ratio %v, want 0", p.AbortRatio)
			}
			if p.MeanReadSet != 3 {
				t.Fatalf("mean read set %v, want exactly 3", p.MeanReadSet)
			}
			if p.MeanWriteSet != 1 {
				t.Fatalf("mean write set %v, want exactly 1", p.MeanWriteSet)
			}
		})
	}
}

// TestProfileReadOnlyMix: read-only commits contribute to the read-set mean
// but not the write-set mean, whose denominator is writer commits only.
func TestProfileReadOnlyMix(t *testing.T) {
	for _, algo := range profileEngines {
		t.Run(algo.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: algo})
			vars := [4]*Var[int]{NewVar(0), NewVar(0), NewVar(0), NewVar(0)}
			prev := rt.Stats()
			const writers, readers = 10, 30
			for i := 0; i < writers; i++ {
				err := rt.Atomic(func(tx *Tx) error {
					vars[0].Read(tx)
					vars[1].Write(tx, i)
					vars[2].Write(tx, i)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < readers; i++ {
				err := rt.AtomicRO(func(tx *Tx) error {
					for _, v := range vars {
						v.Read(tx)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			p := ProfileBetween(prev, rt.Stats())
			// Read sets average over every commit, but the engines track them
			// differently and the profile reports what the engine paid for:
			// TL2's read-only transactions are invisible readers with no read
			// set at all (they restart rather than revalidate), while NOrec's
			// value log records every read. Writers contribute 1 read each on
			// both engines; readers contribute 4 on NOrec and 0 on TL2.
			wantRead := float64(writers*1) / float64(writers+readers)
			if algo == NOrec {
				wantRead = float64(writers*1+readers*4) / float64(writers+readers)
			}
			if p.MeanReadSet != wantRead {
				t.Fatalf("mean read set %v, want %v", p.MeanReadSet, wantRead)
			}
			if p.MeanWriteSet != 2 {
				t.Fatalf("mean write set %v, want exactly 2 (readers must not dilute it)", p.MeanWriteSet)
			}
		})
	}
}

// TestProfileKnownAbortRatio manufactures a deterministic abort schedule:
// each outer transaction's first attempt is sabotaged by a nested conflicting
// commit, so every outer block aborts exactly once and the inner commits
// never abort — N aborts against 2N commits, ratio exactly 1/3.
func TestProfileKnownAbortRatio(t *testing.T) {
	for _, algo := range profileEngines {
		t.Run(algo.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: algo})
			watched := NewVar(0)
			out := NewVar(0)
			prev := rt.Stats()
			const n = 20
			for i := 0; i < n; i++ {
				err := rt.Atomic(func(tx *Tx) error {
					watched.Read(tx)
					if tx.Attempt() == 0 {
						// Conflicting commit from an independent transaction
						// invalidates the read above; the outer commit must
						// abort and the retry (attempt 1) goes through clean.
						if err := rt.Atomic(func(in *Tx) error {
							watched.Write(in, i+1)
							return nil
						}); err != nil {
							return err
						}
					}
					out.Write(tx, i)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			p := ProfileBetween(prev, rt.Stats())
			if p.Commits != 2*n || p.Aborts != n {
				t.Fatalf("commits=%d aborts=%d, want %d/%d", p.Commits, p.Aborts, 2*n, n)
			}
			if want := 1.0 / 3.0; p.AbortRatio != want {
				t.Fatalf("abort ratio %v, want exactly %v", p.AbortRatio, want)
			}
		})
	}
}

// TestProfileConflictDegree: writers hammering one var must profile a much
// higher signature-overlap degree than writers spread across disjoint vars.
// The signature is a hash, so the disjoint case is bounded loosely (collision
// bits are possible), but the ordering property must hold with a wide gap.
func TestProfileConflictDegree(t *testing.T) {
	for _, algo := range profileEngines {
		t.Run(algo.String(), func(t *testing.T) {
			// Small enough that the disjoint case cannot saturate the 64-bit
			// aggregate (each commit sets one hashed bit; with 12 writers the
			// expected cumulative overlap stays near zero even with a stray
			// collision), and below the decay window so no reset intervenes.
			const n = 12
			degree := func(disjoint bool) float64 {
				rt := New(Config{Algorithm: algo})
				hot := NewVar(0)
				vars := make([]*Var[int], n)
				for i := range vars {
					vars[i] = NewVar(0)
				}
				prev := rt.Stats()
				for i := 0; i < n; i++ {
					target := hot
					if disjoint {
						target = vars[i]
					}
					if err := rt.Atomic(func(tx *Tx) error { target.Write(tx, i); return nil }); err != nil {
						t.Fatal(err)
					}
				}
				return ProfileBetween(prev, rt.Stats()).ConflictDegree
			}
			same, spread := degree(false), degree(true)
			// Same-var writers: every commit after the first overlaps the
			// aggregate fully — degree (n-1)/n.
			if want := float64(n-1) / float64(n); same != want {
				t.Fatalf("same-var degree %v, want exactly %v", same, want)
			}
			if spread > same/2 {
				t.Fatalf("disjoint-var degree %v not well below same-var %v", spread, same)
			}
			if same < 0 || same > 1 || spread < 0 || spread > 1 {
				t.Fatalf("degrees out of [0,1]: same=%v spread=%v", same, spread)
			}
		})
	}
}

// TestProfileDeterministic: the same rng-stream-driven operation sequence on
// a fresh runtime must produce bit-identical profiles — the sampler feeds
// the adaptive policy, whose decisions are replayed by tests and restores.
func TestProfileDeterministic(t *testing.T) {
	for _, algo := range profileEngines {
		t.Run(algo.String(), func(t *testing.T) {
			run := func() ConflictProfile {
				rt := New(Config{Algorithm: algo})
				vars := make([]*Var[int], 8)
				for i := range vars {
					vars[i] = NewVar(0)
				}
				s := rng.NewStream(42, 0xadab7)
				prev := rt.Stats()
				for i := 0; i < 200; i++ {
					reads := 1 + int(s.Uint64()%4)
					widx := int(s.Uint64()) % len(vars)
					if widx < 0 {
						widx = -widx
					}
					ro := s.Uint64()%4 == 0
					body := func(tx *Tx) error {
						for j := 0; j < reads; j++ {
							vars[(widx+j)%len(vars)].Read(tx)
						}
						if !ro {
							vars[widx].Write(tx, i)
						}
						return nil
					}
					var err error
					if ro {
						err = rt.AtomicRO(body)
					} else {
						err = rt.Atomic(body)
					}
					if err != nil {
						t.Fatal(err)
					}
				}
				return ProfileBetween(prev, rt.Stats())
			}
			a, b := run(), run()
			// ConflictDegree is excluded from the exact comparison: the write
			// signature hashes varBase addresses, so cross-run bit collisions
			// between DISTINCT vars are allocation-dependent. Everything the
			// policy scores on besides the degree must be bit-identical.
			aCmp, bCmp := a, b
			aCmp.ConflictDegree, bCmp.ConflictDegree = 0, 0
			if aCmp != bCmp {
				t.Fatalf("profiles diverged across identical runs:\n a=%+v\n b=%+v", a, b)
			}
			if a.ConflictDegree < 0 || a.ConflictDegree > 1 {
				t.Fatalf("conflict degree %v out of [0,1]", a.ConflictDegree)
			}

			// On a single-var workload the signature term is one fixed bit, so
			// the FULL profile — degree included — must be deterministic.
			single := func() ConflictProfile {
				rt := New(Config{Algorithm: algo})
				v := NewVar(0)
				s := rng.NewStream(7, 0xadab7)
				prev := rt.Stats()
				for i := 0; i < 100; i++ {
					if s.Uint64()%3 == 0 {
						if err := rt.AtomicRO(func(tx *Tx) error { v.Read(tx); return nil }); err != nil {
							t.Fatal(err)
						}
					} else if err := rt.Atomic(func(tx *Tx) error { v.Write(tx, i); return nil }); err != nil {
						t.Fatal(err)
					}
				}
				return ProfileBetween(prev, rt.Stats())
			}
			if x, y := single(), single(); x != y {
				t.Fatalf("single-var profiles diverged:\n a=%+v\n b=%+v", x, y)
			}
		})
	}
}
