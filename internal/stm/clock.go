package stm

import "rubic/internal/metrics"

// clock is the global version clock shared by all transactions of a Runtime.
// Committing writer transactions advance it; readers snapshot it to obtain
// their read version (TL2/SwissTM style time-based validation).
//
// The counter is the hottest shared word in the runtime — every transaction
// start loads it and every writer commit CASes or increments it — so it
// lives alone on its cache line (metrics.PaddedUint64). Unpadded, it shares
// a line with the Runtime's neighboring fields (the contention manager
// interface, statistics pointers), and every commit-time write invalidates
// those read-mostly fields in every other core's cache: measured on the
// parallel harness, that false sharing is a double-digit-percent tax on
// read-only throughput at 2+ procs.
type clock struct {
	c metrics.PaddedUint64
}

// now returns the current global version.
//
//rubic:noalloc
func (c *clock) now() uint64 { return c.c.Load() }

// tick advances the clock and returns the new version, which becomes the
// commit timestamp of the calling writer. This is TL2's GV1 scheme: a
// fetch-and-add that every writer commit funnels through.
//
//rubic:noalloc
func (c *clock) tick() uint64 { return c.c.Add(1) }

// advance jumps the clock forward by delta. Only SwitchEngine calls it —
// with the world stopped — to re-seed the TL2 clock with the writer commits
// a NOrec era performed behind its back (each raised its written locations'
// versions without touching this counter).
func (c *clock) advance(delta uint64) {
	if delta > 0 {
		c.c.Add(delta)
	}
}

// raiseTo lifts the clock to at least v (CAS-max). Cross-shard commits use
// it to propagate a merged commit timestamp into every participating
// shard's clock, preserving the per-shard invariant that the clock is never
// behind any unlocked location version (sharded.go).
//
//rubic:noalloc
func (c *clock) raiseTo(v uint64) {
	for {
		cur := c.c.Load()
		if cur >= v || c.c.CompareAndSwap(cur, v) {
			return
		}
	}
}

// tickLazy is the lazy commit-timestamp scheme (TL2's GV4 "pass on
// failure", the approach SwissTM-style runtimes use to keep one global
// counter from serializing every commit). rv is the caller's read version.
//
// Fast path: if the clock still equals rv, a single CAS advances it to
// rv+1. Success proves no competitor committed between the caller's
// snapshot and this point, so the caller's read set cannot have changed:
// quiet is true and commit-time validation can be skipped (the same
// inference the eager scheme draws from wv == rv+1).
//
// Otherwise some writer advanced the clock. One more CAS from a fresh
// sample is attempted; if that also fails the caller shares the competing
// writer's timestamp instead of spinning on the counter. Sharing is safe
// in this engine for the same reason it is safe in TL2: write locks are
// acquired before the clock is sampled (encounter-time locking acquires
// them even earlier), so every transition to the returned wv happens after
// the caller's locks are all held. A reader with read version >= wv
// therefore started after the locks were taken and can only observe the
// caller's locations as locked or fully written back, never as a torn
// pre-commit mix. Validation is still required on this path (quiet=false):
// concurrent commits may have overwritten the caller's read set.
//
//rubic:noalloc
func (c *clock) tickLazy(rv uint64) (wv uint64, quiet bool) {
	if c.c.Load() == rv && c.c.CompareAndSwap(rv, rv+1) {
		return rv + 1, true
	}
	s := c.c.Load()
	if c.c.CompareAndSwap(s, s+1) {
		return s + 1, false
	}
	return c.c.Load(), false
}
