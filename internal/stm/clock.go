package stm

import "sync/atomic"

// clock is the global version clock shared by all transactions of a Runtime.
// Committing writer transactions advance it; readers snapshot it to obtain
// their read version (TL2/SwissTM style time-based validation).
type clock struct {
	c atomic.Uint64
}

// now returns the current global version.
func (c *clock) now() uint64 { return c.c.Load() }

// tick advances the clock and returns the new version, which becomes the
// commit timestamp of the calling writer.
func (c *clock) tick() uint64 { return c.c.Add(1) }
