package stm

import "math/bits"

// This file implements the runtime's hot-swap surface (DESIGN.md §12): the
// contention manager swaps immediately, the engine swaps through a
// quiesce-and-switch barrier. The protocol is a one-word gate plus a sharded
// in-flight count:
//
//   - every atomic block enters the gate before its first attempt (enter)
//     and leaves after its last (exit);
//   - a switcher closes the gate, waits for the in-flight count to drain to
//     zero, swaps the engine word, and reopens;
//   - blocked or retrying attempts re-park at safe points (the retry-loop
//     top and inside Tx.Retry's wait loop), so a drain never deadlocks on a
//     transaction that is merely waiting.
//
// Nothing here allocates and the gate fast path is two uncontended atomic
// loads plus one sharded add, so the non-adaptive hot path keeps its
// zero-alloc budget with the hook compiled in (the benchgate pins this).

// sigAggWindow is the decay window of the rolling write-signature
// aggregate: every sigAggWindow-th writer commit replaces the aggregate
// with its own signature instead of ORing into it, so the estimate tracks
// the recent epoch instead of saturating over the run.
const sigAggWindow = 64

// enter parks until no engine switch is draining, then claims an in-flight
// slot. The double check closes the race with a switcher sampling the count
// between our gate load and our increment: either we see the closed gate
// and back out, or the switcher's drain loop sees our increment and waits.
//
//rubic:noalloc
func (rt *Runtime) enter(shard int) {
	for spins := 0; ; spins++ {
		if rt.swGate.Load() == 0 {
			rt.inflight.Add(shard, 1)
			if rt.swGate.Load() == 0 {
				return
			}
			rt.inflight.Add(shard, ^uint64(0))
		}
		backoffSpin(spins)
	}
}

// exit releases the in-flight slot claimed by enter.
//
//rubic:noalloc
func (rt *Runtime) exit(shard int) {
	rt.inflight.Add(shard, ^uint64(0))
}

// SetContentionManager installs cm runtime-wide, effective for every
// subsequent conflict decision; nil restores the default BackoffCM. No
// drain is needed: contention managers decide only who waits or aborts
// (liveness), never what a commit publishes (safety) — under encounter-time
// locking every lock is released by its owner on commit or rollback
// regardless of which manager doomed whom, so attempts racing the swap see
// either manager and both answers are correct.
func (rt *Runtime) SetContentionManager(cm ContentionManager) {
	if cm == nil {
		cm = BackoffCM{}
	}
	rt.cmAtom.Store(&cm)
	rt.cmSwitches.Add(1)
}

// SwitchEngine performs the stop-the-world engine handoff: close the gate,
// drain every in-flight attempt, re-seed the version clock, swap, reopen.
// It is safe at any time from any goroutine and serializes with concurrent
// switchers; switching to the current engine still drains (useful as a
// barrier in tests). Pooled Tx contexts are untouched — their read/write
// sets are per-attempt state that reset() clears — so the zero-alloc
// steady state survives the swap.
//
// The clock re-seed closes the NOrec->TL2 livelock: NOrec commits bump each
// written location's version (meta.Add in commitNorec) without advancing
// the TL2 clock, so after a NOrec era location versions may exceed the
// clock and every TL2 read would fail extension forever. Each NOrec era
// performed (seq-mark)/2 writer commits — each raised its locations'
// versions by one — so advancing the clock by that delta restores the TL2
// invariant (clock >= every unlocked location version).
func (rt *Runtime) SwitchEngine(to Algorithm) {
	rt.swMu.Lock()
	defer rt.swMu.Unlock()
	from := rt.engine()
	rt.swGate.Store(1)
	for spins := 0; rt.inflight.Sum() != 0; spins++ {
		backoffSpin(spins)
	}
	if from == NOrec {
		seq := rt.norec.waitEven() // even once drained; waitEven keeps the seqlock protocol visible
		rt.clock.advance((seq - rt.norecMark) / 2)
		rt.norecMark = seq
	}
	rt.algoAtom.Store(uint32(to))
	rt.engineSwitches.Add(1)
	rt.swGate.Store(0)
}

// SwitchCounts reports completed engine and contention-manager swaps, for
// telemetry and tests.
func (rt *Runtime) SwitchCounts() (engine, cm uint64) {
	return rt.engineSwitches.Load(), rt.cmSwitches.Load()
}

// noteCommit folds a committed attempt into the conflict-profile counters:
// read/write-set sizes, and for writers the overlap of the write signature
// against the rolling aggregate of recent writers' signatures (the
// wsig-collision conflict-degree estimate). Zero-size adds are skipped so
// the read-only fast path costs nothing extra.
//
//rubic:noalloc
func (rt *Runtime) noteCommit(tx *Tx) {
	if n := uint64(len(tx.reads)) + uint64(len(tx.vreads)); n > 0 {
		rt.stats.readSetSum.Add(tx.shard, n)
	}
	if len(tx.writes) == 0 {
		return
	}
	rt.stats.writeSetSum.Add(tx.shard, uint64(len(tx.writes)))
	sig := tx.wsig
	agg := rt.sigAgg.Load()
	rt.stats.sigBits.Add(tx.shard, uint64(bits.OnesCount64(sig)))
	rt.stats.sigOverlap.Add(tx.shard, uint64(bits.OnesCount64(sig&agg)))
	if rt.sigSeq.Add(1)%sigAggWindow == 0 {
		rt.sigAgg.Store(sig)
	} else {
		// Single-attempt CAS: a lost race drops one statistical sample from
		// a rolling estimate, which is cheaper than looping on a hot word.
		rt.sigAgg.CompareAndSwap(agg, agg|sig)
	}
}
