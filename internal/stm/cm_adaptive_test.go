package stm

import (
	"sync"
	"testing"
	"time"
)

// Tests for the adaptive backoff ladder: plan() is a pure function of
// (attempt, PRNG draw, procs), and all jitter comes from the per-Tx
// xorshift PRNG, so every decision here is checked deterministically.

// TestNextRandDeterministicPerTx: the jitter stream is a pure function of
// the transaction's birth timestamp — equal seeds give equal streams,
// different seeds give different ones, and no draw is ever zero-valued in a
// way that would reseed mid-stream.
func TestNextRandDeterministicPerTx(t *testing.T) {
	draw := func(seed uint64, n int) []uint64 {
		tx := &Tx{}
		tx.ts.Store(seed)
		out := make([]uint64, n)
		for i := range out {
			out[i] = tx.nextRand()
		}
		return out
	}
	a, b := draw(7, 32), draw(7, 32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: same seed diverged: %#x != %#x", i, a[i], b[i])
		}
	}
	c := draw(8, 32)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

// TestBackoffPlanDeterministic: plan is pure — identical inputs give
// identical steps, so a transaction's whole backoff schedule is replayable.
func TestBackoffPlanDeterministic(t *testing.T) {
	cm := BackoffCM{}
	for attempt := 1; attempt <= 20; attempt++ {
		for _, r := range []uint64{0, 1, 0xDEADBEEF, ^uint64(0)} {
			s1 := cm.plan(attempt, r, 4)
			s2 := cm.plan(attempt, r, 4)
			if s1 != s2 {
				t.Fatalf("plan(%d, %#x, 4) not deterministic: %+v != %+v", attempt, r, s1, s2)
			}
		}
	}
}

// TestBackoffLadderEscalation pins the spin → yield → sleep phase
// boundaries on a multicore host and the no-spin degenerate ladder on a
// single schedulable context.
func TestBackoffLadderEscalation(t *testing.T) {
	cm := BackoffCM{Base: time.Microsecond, Max: 50 * time.Microsecond}
	const r = 0xABCDEF0123456789 // any draw large enough to clear the 1µs sleep floor

	for attempt := 1; attempt <= backoffSpinRetries; attempt++ {
		s := cm.plan(attempt, r, 4)
		if s.spins <= 0 || s.yields != 0 || s.sleep != 0 {
			t.Fatalf("attempt %d on 4 procs: want pure spin step, got %+v", attempt, s)
		}
		if s.spins > backoffSpinCap<<uint(attempt-1) {
			t.Fatalf("attempt %d: spin count %d exceeds bound", attempt, s.spins)
		}
		// A single schedulable context can never overlap with the owner:
		// spinning must be skipped entirely.
		if s1 := cm.plan(attempt, r, 1); s1.spins != 0 || s1.yields <= 0 {
			t.Fatalf("attempt %d on 1 proc: want yield step, got %+v", attempt, s1)
		}
	}
	for attempt := backoffSpinRetries + 1; attempt <= backoffYieldRetries; attempt++ {
		s := cm.plan(attempt, r, 4)
		if s.yields <= 0 || s.yields > backoffYieldCap || s.spins != 0 || s.sleep != 0 {
			t.Fatalf("attempt %d: want bounded yield step, got %+v", attempt, s)
		}
	}
	sawSleep := false
	for attempt := backoffYieldRetries + 1; attempt <= 40; attempt++ {
		s := cm.plan(attempt, r, 4)
		if s.spins != 0 {
			t.Fatalf("attempt %d: spinning after the yield phase: %+v", attempt, s)
		}
		if s.sleep > cm.Max {
			t.Fatalf("attempt %d: sleep %v exceeds Max %v", attempt, s.sleep, cm.Max)
		}
		if s.sleep > 0 {
			sawSleep = true
		}
	}
	if !sawSleep {
		t.Fatal("ladder never escalated to sleeping")
	}
	// A draw below the sleep floor degrades to a yield, never a busy sleep.
	if s := cm.plan(backoffYieldRetries+1, 0, 4); s.sleep != 0 || s.yields != 1 {
		t.Fatalf("sub-floor draw: want single yield, got %+v", s)
	}
}

// TestBackoffJitterMatchesTxStream: BeforeRetry consumes exactly the
// transaction's PRNG stream, so two transactions with equal birth
// timestamps plan identical ladders (the deterministic-jitter contract the
// chaos and differential harnesses rely on).
func TestBackoffJitterMatchesTxStream(t *testing.T) {
	mk := func() *Tx {
		tx := &Tx{}
		tx.ts.Store(99)
		return tx
	}
	cm := BackoffCM{}
	tx1, tx2 := mk(), mk()
	for attempt := 1; attempt <= 10; attempt++ {
		s1 := cm.plan(attempt, backoffRand(tx1), 4)
		s2 := cm.plan(attempt, backoffRand(tx2), 4)
		if s1 != s2 {
			t.Fatalf("attempt %d: equal-seed transactions planned %+v vs %+v", attempt, s1, s2)
		}
	}
	// Detached use (nil tx) must not panic and must keep producing steps.
	for attempt := 1; attempt <= 10; attempt++ {
		cm.BeforeRetry(nil, attempt)
	}
}

// TestGreedyDoomsOwnerMidFlight drives the doomed-owner path end to end
// under GreedyCM: an older attacker finds the lock held, dooms the younger
// owner, and both transactions still commit — the victim after one
// ConflictDoomed abort.
func TestGreedyDoomsOwnerMidFlight(t *testing.T) {
	rt := New(Config{CM: GreedyCM{}})
	x := NewVar(0)

	attackerStarted := make(chan struct{})
	lockHeld := make(chan struct{})
	var once sync.Once
	deadline := time.Now().Add(10 * time.Second)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Victim: starts second (younger timestamp), acquires the write
		// lock, then keeps performing transactional operations until the
		// attacker's doom unwinds the attempt.
		<-attackerStarted
		err := rt.Atomic(func(tx *Tx) error {
			x.Write(tx, x.Read(tx)+1)
			if tx.Attempt() == 0 {
				once.Do(func() { close(lockHeld) })
				for time.Now().Before(deadline) {
					// checkAlive inside Read observes the doom and unwinds
					// with ConflictDoomed; the retry takes the branch above
					// and returns promptly.
					_ = x.Read(tx)
				}
				t.Error("victim was never doomed")
			}
			return nil
		})
		if err != nil {
			t.Errorf("victim: %v", err)
		}
	}()

	// Attacker: starts first so its birth timestamp is older, but only
	// touches x once the victim holds the lock.
	err := rt.Atomic(func(tx *Tx) error {
		if tx.Attempt() == 0 {
			close(attackerStarted)
			<-lockHeld
		}
		x.Write(tx, x.Read(tx)+1)
		return nil
	})
	if err != nil {
		t.Fatalf("attacker: %v", err)
	}
	wg.Wait()

	if got := x.Peek(); got != 2 {
		t.Fatalf("x = %d, want 2 (both transactions committed)", got)
	}
	stats := rt.Stats()
	if stats.Conflicts[ConflictDoomed] == 0 {
		t.Fatalf("no ConflictDoomed abort recorded: %+v", stats.Conflicts)
	}
}
