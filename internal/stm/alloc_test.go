package stm

import (
	"fmt"
	"testing"
)

// These tests pin the zero-allocation contract of the hot path (DESIGN.md
// §8): a steady-state read-only block allocates nothing, and a small update
// block allocates only its publication box. They are regression gates — a
// change that reintroduces a per-transaction allocation fails them
// deterministically, unlike the benchmark gate which tolerates noise.

// allocEngines mirrors the benchmark matrix: both engines share the Tx
// recycling machinery but exercise different read/commit protocols.
var allocEngines = []Algorithm{TL2, NOrec}

// warmPool drives enough transactions through rt for the Tx pool and the
// write-set machinery to reach steady state before measuring.
func warmPool(t *testing.T, rt *Runtime, x *Var[int]) {
	t.Helper()
	for i := 0; i < 64; i++ {
		if err := rt.Atomic(func(tx *Tx) error {
			x.Write(tx, x.Read(tx)&0x3f)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAtomicROAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds shadow allocations")
	}
	for _, algo := range allocEngines {
		t.Run(algo.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: algo})
			x := NewVar(41)
			warmPool(t, rt, x)
			var sink int
			fn := func(tx *Tx) error {
				sink = x.Read(tx)
				return nil
			}
			allocs := testing.AllocsPerRun(1000, func() {
				if err := rt.AtomicRO(fn); err != nil {
					t.Error(err)
				}
			})
			if allocs > 0.001 {
				t.Errorf("AtomicRO allocates %.3f objects/op, want 0", allocs)
			}
			_ = sink
		})
	}
}

func TestAtomicSmallWriteSingleAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds shadow allocations")
	}
	for _, algo := range allocEngines {
		t.Run(algo.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: algo})
			x := NewVar(0)
			warmPool(t, rt, x)
			// Values below 256 box for free (Go interns small integers), so
			// the only allocation left is the publication box.
			fn := func(tx *Tx) error {
				x.Write(tx, (x.Read(tx)+1)&0x7f)
				return nil
			}
			allocs := testing.AllocsPerRun(1000, func() {
				if err := rt.Atomic(fn); err != nil {
					t.Error(err)
				}
			})
			if allocs > 1.001 {
				t.Errorf("small-write Atomic allocates %.3f objects/op, want <= 1", allocs)
			}
		})
	}
}

// TestAllocScalesWithWriteSet documents that the per-write cost is exactly
// one publication box: w writes cost w allocations, independent of engine.
func TestAllocScalesWithWriteSet(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds shadow allocations")
	}
	for _, algo := range allocEngines {
		for _, writes := range []int{2, 8} {
			t.Run(fmt.Sprintf("%s/w=%d", algo.String(), writes), func(t *testing.T) {
				rt := New(Config{Algorithm: algo})
				vars := make([]*Var[int], writes)
				for i := range vars {
					vars[i] = NewVar(i & 0x7f)
				}
				warmPool(t, rt, vars[0])
				fn := func(tx *Tx) error {
					for _, v := range vars {
						v.Write(tx, (v.Read(tx)+1)&0x7f)
					}
					return nil
				}
				// Warm the write set to the target capacity.
				for i := 0; i < 8; i++ {
					if err := rt.Atomic(fn); err != nil {
						t.Fatal(err)
					}
				}
				allocs := testing.AllocsPerRun(500, func() {
					if err := rt.Atomic(fn); err != nil {
						t.Error(err)
					}
				})
				if allocs > float64(writes)+0.001 {
					t.Errorf("%d-write Atomic allocates %.3f objects/op, want <= %d",
						writes, allocs, writes)
				}
			})
		}
	}
}

// TestAtomicROAllocFreePostSwitch pins the adaptive-era contract: the policy
// hook machinery (switch gate check on the transaction path, CM indirection,
// engine handoffs in the runtime's history) must not cost the steady-state
// read-only path its zero-allocation guarantee. The runtime here has been
// through a full engine round trip and a CM swap before measuring.
func TestAtomicROAllocFreePostSwitch(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds shadow allocations")
	}
	for _, algo := range allocEngines {
		t.Run(algo.String(), func(t *testing.T) {
			other := NOrec
			if algo == NOrec {
				other = TL2
			}
			rt := New(Config{Algorithm: other})
			x := NewVar(41)
			warmPool(t, rt, x)
			rt.SetContentionManager(GreedyCM{})
			rt.SwitchEngine(algo)
			warmPool(t, rt, x)
			var sink int
			fn := func(tx *Tx) error {
				sink = x.Read(tx)
				return nil
			}
			allocs := testing.AllocsPerRun(1000, func() {
				if err := rt.AtomicRO(fn); err != nil {
					t.Error(err)
				}
			})
			if allocs > 0.001 {
				t.Errorf("post-switch AtomicRO allocates %.3f objects/op, want 0", allocs)
			}
			_ = sink
		})
	}
}
