package stm

import (
	"sync/atomic"
	"testing"
)

// Hot-path micro-benchmarks of the transaction life cycle itself, run on
// both engines. They are the benchmarks the Makefile's bench/benchgate
// targets parse into BENCH_<date>.json and gate against BENCH_baseline.json:
// keep names stable.
//
// Allocation discipline pinned by alloc_test.go: steady-state AtomicRO is
// 0 allocs/op and a small-value write commit is 1 alloc/op (the publication
// box). Values written here stay below 256 so Go's interface conversion
// uses the runtime's static boxes and the benchmarks measure the STM, not
// fmt-style boxing of large integers.

// benchEngines enumerates the concurrency-control engines under test.
var benchEngines = []struct {
	name string
	algo Algorithm
}{
	{"tl2", TL2},
	{"norec", NOrec},
}

func BenchmarkAtomicRO(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt := New(Config{Algorithm: e.algo})
			x := NewVar(42)
			sink := 0
			fn := func(tx *Tx) error {
				sink = x.Read(tx)
				return nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.AtomicRO(fn); err != nil {
					b.Fatal(err)
				}
			}
			_ = sink
		})
	}
}

func BenchmarkAtomicWrite(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt := New(Config{Algorithm: e.algo})
			x := NewVar(0)
			v := 0
			fn := func(tx *Tx) error {
				x.Write(tx, v)
				return nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v = i & 0x7f
				if err := rt.Atomic(fn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAtomicRMW is the classic transactional counter: one read and one
// write of the same location per transaction, single-threaded.
func BenchmarkAtomicRMW(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt := New(Config{Algorithm: e.algo})
			x := NewVar(0)
			fn := func(tx *Tx) error {
				x.Write(tx, (x.Read(tx)+1)&0x7f)
				return nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.Atomic(fn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAtomicWriteHeavy is the write-heavy multi-worker configuration
// the benchmark gate tracks: each parallel worker owns a private stripe of
// locations and writes 8 of them per transaction, so the benchmark measures
// per-transaction overhead (allocation, commit timestamping, statistics)
// rather than data conflicts.
func BenchmarkAtomicWriteHeavy(b *testing.B) {
	const stripe = 64
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt := New(Config{Algorithm: e.algo})
			vars := make([]*Var[int], 64*stripe)
			for i := range vars {
				vars[i] = NewVar(0)
			}
			var nextStripe atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				base := int(nextStripe.Add(1)-1) % 64 * stripe
				off := 0
				val := 0
				fn := func(tx *Tx) error {
					for k := 0; k < 8; k++ {
						vars[base+(off+k)%stripe].Write(tx, val)
					}
					return nil
				}
				for pb.Next() {
					off = (off + 8) % stripe
					val = (val + 1) & 0x7f
					_ = rt.Atomic(fn)
				}
			})
		})
	}
}

// BenchmarkAtomicHighConflict hammers a single location from all workers:
// the abort/retry slow path, contention management and commit serialization.
func BenchmarkAtomicHighConflict(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt := New(Config{Algorithm: e.algo})
			x := NewVar(0)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				fn := func(tx *Tx) error {
					x.Write(tx, (x.Read(tx)+1)&0x7f)
					return nil
				}
				for pb.Next() {
					_ = rt.Atomic(fn)
				}
			})
		})
	}
}

// BenchmarkAtomicReadSet exercises read-set bookkeeping and commit-time
// validation: an update transaction that reads 32 locations and writes one.
func BenchmarkAtomicReadSet(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			rt := New(Config{Algorithm: e.algo})
			vars := make([]*Var[int], 32)
			for i := range vars {
				vars[i] = NewVar(i & 0x7f)
			}
			fn := func(tx *Tx) error {
				sum := 0
				for _, v := range vars {
					sum += v.Read(tx)
				}
				vars[0].Write(tx, sum&0x7f)
				return nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.Atomic(fn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAtomicROPostSwitch is the adaptive-era twin of BenchmarkAtomicRO:
// the same read-only hot path on a runtime that arrived at its engine
// through a live handoff (and carries a swapped contention manager). Gated
// against the baseline to prove the switch machinery — the gate check on
// enter, the CM indirection — leaves the non-adaptive hot path unchanged.
func BenchmarkAtomicROPostSwitch(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			other := NOrec
			if e.algo == NOrec {
				other = TL2
			}
			rt := New(Config{Algorithm: other})
			x := NewVar(42)
			rt.SetContentionManager(GreedyCM{})
			rt.SwitchEngine(e.algo)
			sink := 0
			fn := func(tx *Tx) error {
				sink = x.Read(tx)
				return nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.AtomicRO(fn); err != nil {
					b.Fatal(err)
				}
			}
			_ = sink
		})
	}
}
