package stm

import (
	"sync"
	"testing"
)

// TestNoWriteSkew checks serializability (not mere snapshot isolation) on
// both engines with the classic write-skew anomaly: with the constraint
// "x + y >= 1" and x = y = 1, two transactions that each read both
// variables and zero a different one must not both commit.
func TestNoWriteSkew(t *testing.T) {
	for _, algo := range []Algorithm{TL2, NOrec} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			for round := 0; round < 200; round++ {
				rt := New(Config{Algorithm: algo})
				x := NewVar(1)
				y := NewVar(1)
				var wg sync.WaitGroup
				body := func(zeroed *Var[int]) {
					defer wg.Done()
					_ = rt.Atomic(func(tx *Tx) error {
						if x.Read(tx)+y.Read(tx) == 2 {
							zeroed.Write(tx, 0)
						}
						return nil
					})
				}
				wg.Add(2)
				go body(x)
				go body(y)
				wg.Wait()
				if sum := x.Peek() + y.Peek(); sum < 1 {
					t.Fatalf("round %d: write skew! x+y = %d", round, sum)
				}
			}
		})
	}
}

// TestNoLostUpdateAcrossEngines: read-modify-write on both engines from
// many goroutines never loses an update.
func TestNoLostUpdateAcrossEngines(t *testing.T) {
	for _, algo := range []Algorithm{TL2, NOrec} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: algo})
			vars := make([]*Var[int], 8)
			for i := range vars {
				vars[i] = NewVar(0)
			}
			const workers, perWorker = 6, 150
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						v := vars[(w+i)%len(vars)]
						if err := rt.Atomic(func(tx *Tx) error {
							v.Write(tx, v.Read(tx)+1)
							return nil
						}); err != nil {
							t.Errorf("Atomic: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			total := 0
			for _, v := range vars {
				total += v.Peek()
			}
			if total != workers*perWorker {
				t.Fatalf("total = %d, want %d", total, workers*perWorker)
			}
		})
	}
}

// TestChainInvariant: a ring of K variables whose sum is invariant under
// concurrent rotations; read-only audits must never observe a partial
// rotation on either engine.
func TestChainInvariant(t *testing.T) {
	for _, algo := range []Algorithm{TL2, NOrec} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: algo})
			const k = 8
			const total = 800
			ring := make([]*Var[int], k)
			for i := range ring {
				ring[i] = NewVar(total / k)
			}
			stop := make(chan struct{})
			var writers, readers sync.WaitGroup
			for w := 0; w < 3; w++ {
				writers.Add(1)
				go func(w int) {
					defer writers.Done()
					for i := 0; i < 200; i++ {
						from, to := (w+i)%k, (w+i+3)%k
						_ = rt.Atomic(func(tx *Tx) error {
							f := ring[from].Read(tx)
							if f == 0 {
								return nil
							}
							ring[from].Write(tx, f-1)
							ring[to].Write(tx, ring[to].Read(tx)+1)
							return nil
						})
					}
				}(w)
			}
			for r := 0; r < 2; r++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						_ = rt.AtomicRO(func(tx *Tx) error {
							sum := 0
							for _, v := range ring {
								sum += v.Read(tx)
							}
							if sum != total {
								t.Errorf("audit saw sum %d, want %d", sum, total)
							}
							return nil
						})
					}
				}()
			}
			writers.Wait()
			close(stop)
			readers.Wait()
		})
	}
}
