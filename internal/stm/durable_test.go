package stm

import (
	"sync"
	"sync/atomic"
	"testing"
)

// memSink captures published durable write-sets in memory, standing in for
// the WAL. Publish copies the ops slice (the contract says it is only valid
// for the duration of the call) and dereferences no box until asked.
type memSink struct {
	next  atomic.Uint64
	mu    sync.Mutex
	recs  map[uint64][]DurableOp
	waits atomic.Uint64
}

func (s *memSink) BeginCommit() uint64 { return s.next.Add(1) }

func (s *memSink) Publish(csn uint64, ops []DurableOp) {
	cp := make([]DurableOp, len(ops))
	copy(cp, ops)
	s.mu.Lock()
	if s.recs == nil {
		s.recs = make(map[uint64][]DurableOp)
	}
	if _, dup := s.recs[csn]; dup {
		panic("memSink: duplicate CSN published")
	}
	s.recs[csn] = cp
	s.mu.Unlock()
}

func (s *memSink) WaitDurable(uint64) { s.waits.Add(1) }

// TestDurableCSNReplayEquivalence is the core ordering contract of the
// durability hook (DESIGN.md §13): replaying the published records in CSN
// order, starting from the initial state, must reproduce exactly the final
// committed state — under full concurrency, on both engines. A CSN drawn
// outside the commit critical section would fail this test (a read-from or
// overwrite dependency could invert), as would a lost or duplicated publish.
func TestDurableCSNReplayEquivalence(t *testing.T) {
	const (
		vars    = 8
		workers = 8
		iters   = 500
	)
	for _, algo := range []Algorithm{TL2, NOrec} {
		t.Run(algo.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: algo})
			vs := make([]*Var[int], vars)
			for i := range vs {
				vs[i] = NewVar(0)
				vs[i].MarkDurable(uint64(i + 1))
			}
			sink := &memSink{}
			rt.AttachCommitSink(sink)

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					prng := seed*0x9E3779B97F4A7C15 + 1
					for i := 0; i < iters; i++ {
						prng ^= prng << 13
						prng ^= prng >> 7
						prng ^= prng << 17
						a := int(prng % vars)
						b := int((prng >> 8) % vars)
						if err := rt.Atomic(func(tx *Tx) error {
							vs[a].Write(tx, vs[a].Read(tx)+1)
							if b != a {
								vs[b].Write(tx, vs[b].Read(tx)+2)
							}
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}(uint64(w + 1))
			}
			wg.Wait()
			rt.AttachCommitSink(nil)

			n := uint64(len(sink.recs))
			if n == 0 {
				t.Fatal("no records published")
			}
			// CSNs must be dense: every number in [1, n] published exactly once.
			replayed := make(map[uint64]int)
			for csn := uint64(1); csn <= n; csn++ {
				ops, ok := sink.recs[csn]
				if !ok {
					t.Fatalf("CSN %d missing from publish stream (got %d records)", csn, n)
				}
				for _, op := range ops {
					replayed[op.ID] = (*op.Box).(int)
				}
			}
			for i, v := range vs {
				want := v.Peek()
				if got := replayed[uint64(i+1)]; got != want {
					t.Errorf("var %d: replay in CSN order gives %d, committed state is %d", i, got, want)
				}
			}
			if w := sink.waits.Load(); w != n {
				t.Errorf("WaitDurable called %d times, want one per durable commit (%d)", w, n)
			}
		})
	}
}

// TestDurableOnlyMarkedLocationsPublish checks filtering: transactions that
// write no durable location never touch the sink, and mixed write sets
// publish only their durable subset.
func TestDurableOnlyMarkedLocationsPublish(t *testing.T) {
	for _, algo := range []Algorithm{TL2, NOrec} {
		t.Run(algo.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: algo})
			dur := NewVar(0)
			dur.MarkDurable(7)
			plain := NewVar(0)
			sink := &memSink{}
			rt.AttachCommitSink(sink)

			// Writer touching only the non-durable location: no publish.
			if err := rt.Atomic(func(tx *Tx) error {
				plain.Write(tx, 1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			// Read-only: no publish.
			if err := rt.AtomicRO(func(tx *Tx) error {
				_ = dur.Read(tx)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(sink.recs) != 0 {
				t.Fatalf("non-durable commits published %d records", len(sink.recs))
			}

			// Mixed write set: only the durable op crosses the sink.
			if err := rt.Atomic(func(tx *Tx) error {
				plain.Write(tx, 2)
				dur.Write(tx, 42)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			ops := sink.recs[1]
			if len(ops) != 1 || ops[0].ID != 7 || (*ops[0].Box).(int) != 42 {
				t.Fatalf("mixed commit published %+v, want single op id=7 val=42", ops)
			}
		})
	}
}

func TestMarkDurableZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MarkDurable(0) did not panic")
		}
	}()
	NewVar(0).MarkDurable(0)
}
