package stm

import (
	"math/rand"
	"runtime"
	"time"
)

// A ContentionManager arbitrates conflicts between a running transaction
// (the attacker, which found a location locked) and the lock owner, and
// paces retries after aborts. Implementations must be safe for concurrent
// use by many transactions.
type ContentionManager interface {
	// ShouldAbort decides the attacker's fate upon finding owner's lock:
	// true aborts the attacker (it will retry from scratch); false makes the
	// attacker wait and re-attempt the operation, possibly after the manager
	// doomed the owner.
	ShouldAbort(attacker, owner *Tx) bool
	// BeforeRetry is called before the attempt-th re-execution of an aborted
	// transaction and may block to space retries out.
	BeforeRetry(tx *Tx, attempt int)
	// Name identifies the policy in statistics and logs.
	Name() string
}

// SuicideCM aborts the attacker immediately on any conflict and retries
// without delay. It is the simplest livelock-prone baseline.
type SuicideCM struct{}

// ShouldAbort always sacrifices the attacker.
func (SuicideCM) ShouldAbort(_, _ *Tx) bool { return true }

// BeforeRetry yields once so the owner can finish.
func (SuicideCM) BeforeRetry(_ *Tx, _ int) { runtime.Gosched() }

// Name implements ContentionManager.
func (SuicideCM) Name() string { return "suicide" }

// BackoffCM aborts the attacker and applies randomized exponential backoff
// between retries, bounding both the exponent and the ceiling. It is the
// default manager: free of deadlock and, probabilistically, of livelock.
type BackoffCM struct {
	// Base is the first-retry backoff ceiling; defaults to 1µs.
	Base time.Duration
	// Max bounds the backoff ceiling; defaults to 100µs.
	Max time.Duration
}

// ShouldAbort always sacrifices the attacker; progress comes from backoff.
func (BackoffCM) ShouldAbort(_, _ *Tx) bool { return true }

// BeforeRetry sleeps for a uniformly random duration below an exponentially
// growing ceiling.
func (b BackoffCM) BeforeRetry(_ *Tx, attempt int) {
	base := b.Base
	if base <= 0 {
		base = time.Microsecond
	}
	maxd := b.Max
	if maxd <= 0 {
		maxd = 100 * time.Microsecond
	}
	if attempt > 16 {
		attempt = 16
	}
	ceil := base << uint(attempt)
	if ceil > maxd {
		ceil = maxd
	}
	d := time.Duration(rand.Int63n(int64(ceil) + 1))
	if d < time.Microsecond {
		runtime.Gosched()
		return
	}
	time.Sleep(d)
}

// Name implements ContentionManager.
func (BackoffCM) Name() string { return "backoff" }

// GreedyCM implements timestamp-based greedy contention management (Guerraoui
// et al., PODC'05), the policy SwissTM applies to long transactions: the
// transaction with the older birth timestamp wins. A younger attacker aborts
// itself; an older attacker dooms the owner and waits for the lock. Because
// timestamps are stable across retries, every transaction eventually becomes
// the oldest and finishes: the policy is starvation-free.
type GreedyCM struct{}

// ShouldAbort compares birth timestamps; older transactions win conflicts.
func (GreedyCM) ShouldAbort(attacker, owner *Tx) bool {
	if attacker.ts.Load() < owner.ts.Load() {
		// Attacker is older: doom the owner (no effect if it already
		// committed or aborted) and wait for the lock to be released.
		owner.status.CompareAndSwap(txActive, txDoomed)
		return false
	}
	return true
}

// BeforeRetry yields once; ordering, not delay, provides progress.
func (GreedyCM) BeforeRetry(_ *Tx, _ int) { runtime.Gosched() }

// Name implements ContentionManager.
func (GreedyCM) Name() string { return "greedy" }

// TwoPhaseCM approximates SwissTM's two-phase contention management: short
// transactions (few writes, few retries) behave timidly (abort + backoff),
// while transactions that have invested work (attempt count at or beyond
// Threshold) escalate to greedy timestamp ordering.
type TwoPhaseCM struct {
	// Threshold is the attempt count at which a transaction turns greedy;
	// defaults to 2.
	Threshold int
	backoff   BackoffCM
	greedy    GreedyCM
}

// ShouldAbort is timid for young attempts and greedy for old ones.
func (c TwoPhaseCM) ShouldAbort(attacker, owner *Tx) bool {
	th := c.Threshold
	if th <= 0 {
		th = 2
	}
	if attacker.attempt >= th {
		return c.greedy.ShouldAbort(attacker, owner)
	}
	return c.backoff.ShouldAbort(attacker, owner)
}

// BeforeRetry delegates to the phase-appropriate policy.
func (c TwoPhaseCM) BeforeRetry(tx *Tx, attempt int) {
	th := c.Threshold
	if th <= 0 {
		th = 2
	}
	if attempt >= th {
		c.greedy.BeforeRetry(tx, attempt)
		return
	}
	c.backoff.BeforeRetry(tx, attempt)
}

// Name implements ContentionManager.
func (TwoPhaseCM) Name() string { return "two-phase" }

// KarmaCM implements Scherer & Scott's Karma policy: a transaction's
// priority is the work it has invested (transactional operations performed,
// accumulated across retries). An attacker with at least the owner's karma
// dooms the owner; a poorer attacker aborts itself and retries, carrying its
// karma forward so it eventually out-prioritizes the owner.
type KarmaCM struct{}

// ShouldAbort compares invested work; the richer transaction wins.
func (KarmaCM) ShouldAbort(attacker, owner *Tx) bool {
	if attacker.work.Load() >= owner.work.Load() {
		owner.status.CompareAndSwap(txActive, txDoomed)
		return false
	}
	return true
}

// BeforeRetry yields once; karma accumulation provides progress.
func (KarmaCM) BeforeRetry(_ *Tx, _ int) { runtime.Gosched() }

// Name implements ContentionManager.
func (KarmaCM) Name() string { return "karma" }

// PolkaCM is Karma with Polite's randomized exponential backoff: conflicts
// are arbitrated by invested work, and retries are spaced out to let the
// winner finish. It is the best all-round policy of Scherer & Scott's study.
type PolkaCM struct {
	backoff BackoffCM
}

// ShouldAbort delegates to Karma's work comparison.
func (PolkaCM) ShouldAbort(attacker, owner *Tx) bool {
	return KarmaCM{}.ShouldAbort(attacker, owner)
}

// BeforeRetry applies randomized exponential backoff.
func (p PolkaCM) BeforeRetry(tx *Tx, attempt int) { p.backoff.BeforeRetry(tx, attempt) }

// Name implements ContentionManager.
func (PolkaCM) Name() string { return "polka" }
