package stm

import (
	"runtime"
	"sync/atomic"
	"time"
)

// A ContentionManager arbitrates conflicts between a running transaction
// (the attacker, which found a location locked) and the lock owner, and
// paces retries after aborts. Implementations must be safe for concurrent
// use by many transactions.
type ContentionManager interface {
	// ShouldAbort decides the attacker's fate upon finding owner's lock:
	// true aborts the attacker (it will retry from scratch); false makes the
	// attacker wait and re-attempt the operation, possibly after the manager
	// doomed the owner.
	ShouldAbort(attacker, owner *Tx) bool
	// BeforeRetry is called before the attempt-th re-execution of an aborted
	// transaction and may block to space retries out.
	BeforeRetry(tx *Tx, attempt int)
	// Name identifies the policy in statistics and logs.
	Name() string
}

// SuicideCM aborts the attacker immediately on any conflict and retries
// without delay. It is the simplest livelock-prone baseline.
type SuicideCM struct{}

// ShouldAbort always sacrifices the attacker.
func (SuicideCM) ShouldAbort(_, _ *Tx) bool { return true }

// BeforeRetry yields once so the owner can finish.
func (SuicideCM) BeforeRetry(_ *Tx, _ int) { runtime.Gosched() }

// Name implements ContentionManager.
func (SuicideCM) Name() string { return "suicide" }

// BackoffCM aborts the attacker and paces retries with an adaptive
// spin → yield → sleep ladder, randomized from the transaction's private
// xorshift PRNG. It is the default manager: free of deadlock and,
// probabilistically, of livelock.
//
// The ladder replaces the earlier shared-rand time.Sleep ladder, whose two
// multicore costs the parallel harness made visible: every retry serialized
// on math/rand's global mutex (one more shared cache line on the abort
// path), and the earliest retries — where the owner is typically nanoseconds
// from done — paid a scheduler round trip or a timer sleep. Now the first
// retries busy-spin briefly (multicore only: with one schedulable context
// the owner cannot be running, so spinning is pure waste and the ladder
// starts at yield), the middle retries yield the processor, and only
// persistent conflicts escalate to randomized exponential sleeping, bounded
// by Base/Max as before. All jitter comes from Tx.nextRand, so a
// transaction's backoff sequence is deterministic and contention-free.
//
// The policy (like any ContentionManager) is selected via Config.CM;
// BackoffCM{} is the default when Config.CM is nil.
type BackoffCM struct {
	// Base is the sleep-phase first ceiling; defaults to backoffSleepBase.
	Base time.Duration
	// Max bounds the sleep ceiling; defaults to backoffSleepMax.
	Max time.Duration
}

// Backoff-ladder tuning. Spin counts are iterations of a no-op atomic load
// loop (~1ns each); the phase boundaries are attempt numbers.
const (
	// backoffSpinRetries is the number of initial retries served by busy
	// spinning when more than one processor is available.
	backoffSpinRetries = 2
	// backoffSpinCap bounds the randomized spin iteration count.
	backoffSpinCap = 256
	// backoffYieldRetries is the attempt number up to which retries are
	// served by scheduler yields; beyond it the ladder sleeps.
	backoffYieldRetries = 6
	// backoffYieldCap bounds the randomized yield count per retry.
	backoffYieldCap = 4
	// backoffSleepBase is the default first sleep-phase ceiling.
	backoffSleepBase = time.Microsecond
	// backoffSleepMax is the default bound on the sleep ceiling.
	backoffSleepMax = 100 * time.Microsecond
)

// backoffStep is one planned pacing action: spin iterations, scheduler
// yields, or a sleep. Exactly one field is non-zero.
type backoffStep struct {
	spins  int
	yields int
	sleep  time.Duration
}

// plan computes the pacing for the attempt-th retry from one PRNG draw r
// and the number of schedulable contexts. It is a pure function, which is
// what makes the ladder unit-testable: the same (attempt, r, procs) always
// yields the same step.
func (b BackoffCM) plan(attempt int, r uint64, procs int) backoffStep {
	if procs > 1 && attempt <= backoffSpinRetries {
		// The conflicting owner is likely mid-commit on another core;
		// spinning a few hundred nanoseconds beats handing our context to
		// the scheduler and back.
		bound := backoffSpinCap << uint(attempt-1)
		return backoffStep{spins: 1 + int(r%uint64(bound))}
	}
	if attempt <= backoffYieldRetries {
		return backoffStep{yields: 1 + int(r%backoffYieldCap)}
	}
	base := b.Base
	if base <= 0 {
		base = backoffSleepBase
	}
	maxd := b.Max
	if maxd <= 0 {
		maxd = backoffSleepMax
	}
	exp := attempt - backoffYieldRetries
	if exp > 16 {
		exp = 16
	}
	ceil := base << uint(exp)
	if ceil > maxd {
		ceil = maxd
	}
	d := time.Duration(r % uint64(ceil+1))
	if d < backoffSleepBase {
		// Too short for the timer's resolution to be meaningful: yield.
		return backoffStep{yields: 1}
	}
	return backoffStep{sleep: d}
}

// spinSink is the load target of the backoff spin loop: an always-zero
// atomic the compiler cannot elide, touched by no writer, so spinning reads
// a shard-local cache line and generates no coherence traffic.
var spinSink atomic.Uint64

// backoffRand draws jitter for tx, falling back to a package-level
// splitmix64 sequence when the manager is used detached from a transaction
// (direct calls in tests or embedding managers).
var backoffFallbackRand atomic.Uint64

func backoffRand(tx *Tx) uint64 {
	if tx != nil {
		return tx.nextRand()
	}
	x := backoffFallbackRand.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return x
}

// ShouldAbort always sacrifices the attacker; progress comes from backoff.
func (BackoffCM) ShouldAbort(_, _ *Tx) bool { return true }

// spinProcs is the parallelism the spin-phase decision keys on: the lock
// owner can only be making progress while we spin if another *hardware*
// context is actually running it, so GOMAXPROCS is capped by the physical
// CPU count (oversubscribed GOMAXPROCS on a small host would otherwise burn
// the owner's own timeslice spinning).
func spinProcs() int {
	procs := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < procs {
		procs = n
	}
	return procs
}

// BeforeRetry applies the adaptive spin → yield → sleep ladder.
func (b BackoffCM) BeforeRetry(tx *Tx, attempt int) {
	step := b.plan(attempt, backoffRand(tx), spinProcs())
	switch {
	case step.spins > 0:
		for i := 0; i < step.spins; i++ {
			if spinSink.Load() != 0 {
				break
			}
		}
	case step.yields > 0:
		for i := 0; i < step.yields; i++ {
			runtime.Gosched()
		}
	default:
		time.Sleep(step.sleep)
	}
}

// Name implements ContentionManager.
func (BackoffCM) Name() string { return "backoff" }

// GreedyCM implements timestamp-based greedy contention management (Guerraoui
// et al., PODC'05), the policy SwissTM applies to long transactions: the
// transaction with the older birth timestamp wins. A younger attacker aborts
// itself; an older attacker dooms the owner and waits for the lock. Because
// timestamps are stable across retries, every transaction eventually becomes
// the oldest and finishes: the policy is starvation-free.
type GreedyCM struct{}

// ShouldAbort compares birth timestamps; older transactions win conflicts.
func (GreedyCM) ShouldAbort(attacker, owner *Tx) bool {
	if attacker.ts.Load() < owner.ts.Load() {
		// Attacker is older: doom the owner (no effect if it already
		// committed or aborted) and wait for the lock to be released.
		owner.status.CompareAndSwap(txActive, txDoomed)
		return false
	}
	return true
}

// BeforeRetry yields once; ordering, not delay, provides progress.
func (GreedyCM) BeforeRetry(_ *Tx, _ int) { runtime.Gosched() }

// Name implements ContentionManager.
func (GreedyCM) Name() string { return "greedy" }

// TwoPhaseCM approximates SwissTM's two-phase contention management: short
// transactions (few writes, few retries) behave timidly (abort + backoff),
// while transactions that have invested work (attempt count at or beyond
// Threshold) escalate to greedy timestamp ordering.
type TwoPhaseCM struct {
	// Threshold is the attempt count at which a transaction turns greedy;
	// defaults to 2.
	Threshold int
	backoff   BackoffCM
	greedy    GreedyCM
}

// ShouldAbort is timid for young attempts and greedy for old ones.
func (c TwoPhaseCM) ShouldAbort(attacker, owner *Tx) bool {
	th := c.Threshold
	if th <= 0 {
		th = 2
	}
	if attacker.attempt >= th {
		return c.greedy.ShouldAbort(attacker, owner)
	}
	return c.backoff.ShouldAbort(attacker, owner)
}

// BeforeRetry delegates to the phase-appropriate policy.
func (c TwoPhaseCM) BeforeRetry(tx *Tx, attempt int) {
	th := c.Threshold
	if th <= 0 {
		th = 2
	}
	if attempt >= th {
		c.greedy.BeforeRetry(tx, attempt)
		return
	}
	c.backoff.BeforeRetry(tx, attempt)
}

// Name implements ContentionManager.
func (TwoPhaseCM) Name() string { return "two-phase" }

// KarmaCM implements Scherer & Scott's Karma policy: a transaction's
// priority is the work it has invested (transactional operations performed,
// accumulated across retries). An attacker with at least the owner's karma
// dooms the owner; a poorer attacker aborts itself and retries, carrying its
// karma forward so it eventually out-prioritizes the owner.
type KarmaCM struct{}

// ShouldAbort compares invested work; the richer transaction wins.
func (KarmaCM) ShouldAbort(attacker, owner *Tx) bool {
	if attacker.work.Load() >= owner.work.Load() {
		owner.status.CompareAndSwap(txActive, txDoomed)
		return false
	}
	return true
}

// BeforeRetry yields once; karma accumulation provides progress.
func (KarmaCM) BeforeRetry(_ *Tx, _ int) { runtime.Gosched() }

// Name implements ContentionManager.
func (KarmaCM) Name() string { return "karma" }

// PolkaCM is Karma with Polite's randomized exponential backoff: conflicts
// are arbitrated by invested work, and retries are spaced out to let the
// winner finish. It is the best all-round policy of Scherer & Scott's study.
type PolkaCM struct {
	backoff BackoffCM
}

// ShouldAbort delegates to Karma's work comparison.
func (PolkaCM) ShouldAbort(attacker, owner *Tx) bool {
	return KarmaCM{}.ShouldAbort(attacker, owner)
}

// BeforeRetry applies randomized exponential backoff.
func (p PolkaCM) BeforeRetry(tx *Tx, attempt int) { p.backoff.BeforeRetry(tx, attempt) }

// Name implements ContentionManager.
func (PolkaCM) Name() string { return "polka" }
