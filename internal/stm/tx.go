package stm

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Transaction status values. Transitions: active -> {doomed, committed,
// aborted}, and any of those -> poisoned when Runtime.Atomic returns the
// Tx to the pool. A greedy contention manager dooms a competitor by CASing
// its status from active to doomed; the victim notices at its next
// transactional operation or at commit and restarts. The poisoned state
// turns use of a leaked handle (the pattern rubic-lint's stmescape flags)
// into an immediate panic instead of silent corruption of a recycled
// transaction.
const (
	txActive uint32 = iota
	txDoomed
	txCommitted
	txAborted
	txPoisoned
)

// conflictSignal is the sentinel panic payload used to unwind a doomed or
// conflicting transaction back to Runtime.Atomic, which rolls back and
// retries. It never escapes this package.
type conflictSignal struct {
	reason ConflictKind
}

// ConflictKind classifies why a transaction attempt failed, for statistics.
type ConflictKind uint8

// Conflict classifications reported in Stats.
const (
	ConflictLockedRead  ConflictKind = iota // read found location locked by another tx
	ConflictLockedWrite                     // write found location locked by another tx
	ConflictStaleRead                       // version newer than read version, extension failed
	ConflictValidation                      // commit-time read-set validation failed
	ConflictDoomed                          // doomed by a competitor's contention manager
	conflictKinds
)

func (k ConflictKind) String() string {
	switch k {
	case ConflictLockedRead:
		return "locked-read"
	case ConflictLockedWrite:
		return "locked-write"
	case ConflictStaleRead:
		return "stale-read"
	case ConflictValidation:
		return "validation"
	case ConflictDoomed:
		return "doomed"
	}
	return "unknown"
}

type readEntry struct {
	base *varBase
	meta uint64 // unlocked meta word observed at read time
}

// writeEntry buffers one write. valp is the publication box: the single
// heap allocation a committed write costs. It is created when the write is
// first buffered, mutated in place while the transaction remains active
// (the box is still private), and published wholesale by commit write-back.
// Publishing a fresh box per commit is what lets optimistic readers detect
// concurrent change by pointer comparison (NOrec's value log relies on it),
// so boxes are never recycled.
type writeEntry struct {
	base     *varBase
	prevMeta uint64 // meta word before our acquisition, restored on abort
	valp     *any
}

// Tx is one transaction attempt context. A Tx is created by Runtime.Atomic
// and reused across retries of the same atomic block; it must not be
// retained or shared outside the atomic function. Completed Txs are
// recycled through the Runtime's pool (steady-state atomic blocks allocate
// nothing), which is why a leaked handle is poisoned rather than merely
// stale: touching it after Atomic returns panics with generation context.
//
// Fields read by competing transactions through a varBase owner pointer
// (status, ts, work) are atomic: a competitor may hold a stale owner
// reference to a Tx that has since been recycled for an unrelated block.
// The worst a stale doomer can then do is doom an innocent transaction,
// which costs one spurious retry and never breaks consistency.
type Tx struct {
	rt     *Runtime
	status atomic.Uint32

	rv uint64        // read version: snapshot of the global clock
	ts atomic.Uint64 // birth timestamp for greedy contention management; stable across retries

	// work counts transactional operations performed since the atomic block
	// started, accumulated across retries (it is the "karma" of Karma/Polka
	// contention management). Atomic because competitors read it.
	work atomic.Int64

	// gen counts completed atomic blocks this Tx object has hosted; it is
	// reported by the use-after-Atomic panic so leaks are attributable.
	gen atomic.Uint64

	// shard is the statistics shard this Tx feeds, assigned round-robin at
	// pool construction. Pools are per-P, so a shard is effectively per-P
	// too and commit accounting stays off shared cache lines.
	shard int

	reads  []readEntry
	vreads []valueRead // NOrec value log
	writes []writeEntry

	// wsig is a 64-bit signature (1-bit Bloom filter) of the bases in the
	// write set. Read-after-write lookups test it first: a zero bit proves
	// the base was never written, so the common miss (reading a location the
	// transaction has not written) costs one AND instead of a map probe or
	// scan. False positives only cost falling through to the real lookup.
	wsig uint64

	// windex indexes writes by base, but only once the write set outgrows
	// windexLinearMax — below that a linear scan of the (cache-resident)
	// writes slice beats map hashing, and small transactions never pay map
	// insert/clear costs at all. Retained across retries and pooled reuse.
	windex   map[*varBase]int
	readOnly bool

	// prng is the per-Tx xorshift64 state behind nextRand, seeded lazily
	// from the birth timestamp. Contention-management jitter drawn from it
	// is deterministic per transaction and touches no shared state (the
	// global math/rand source serializes every caller on one mutex).
	prng uint64

	attempt int

	// Durability hook state (durable.go): the sink and CSN drawn by
	// beginDurable inside the commit critical section, consumed by
	// publishDurable/waitDurable afterwards, and the reusable durable-op
	// buffer (retained like the read/write sets).
	sink   CommitSink
	csn    uint64
	durOps []DurableOp
}

// windexLinearMax is the write-set size up to which read-after-write lookups
// linearly scan the writes slice instead of consulting the windex map. At
// these sizes the scan is a handful of pointer compares in one or two cache
// lines, while the map costs a hash plus bucket probe per lookup and an
// insert per write; the crossover measured on the hot-path benchmarks sits
// well above typical transaction sizes.
const windexLinearMax = 16

// sigbit hashes a location's identity to one of 64 signature bits. The
// address is stable for the life of the varBase (Go's GC does not move
// heap objects today; if it ever does, a stale signature only yields false
// positives, which are harmless by construction).
func sigbit(b *varBase) uint64 {
	h := uint64(uintptr(unsafe.Pointer(b))) * 0x9E3779B97F4A7C15
	return 1 << (h >> 58)
}

// findWrite returns the write-set index holding base, or -1. It is the
// read-after-write and write-after-write lookup on both engines' hot paths:
// empty write set and signature misses return without touching the write
// set at all.
//
//rubic:noalloc
func (tx *Tx) findWrite(b *varBase) int {
	n := len(tx.writes)
	if n == 0 || tx.wsig&sigbit(b) == 0 {
		return -1
	}
	if n > windexLinearMax {
		if i, ok := tx.windex[b]; ok {
			return i
		}
		return -1
	}
	// Scan newest-first: redundant accesses cluster on recent writes.
	for i := n - 1; i >= 0; i-- {
		if tx.writes[i].base == b {
			return i
		}
	}
	return -1
}

// nextRand advances the per-Tx xorshift64 PRNG. The state is seeded from
// the transaction's birth timestamp on first use, so the jitter sequence is
// deterministic per transaction and distinct between concurrent ones.
//
//rubic:noalloc
func (tx *Tx) nextRand() uint64 {
	x := tx.prng
	if x == 0 {
		x = tx.ts.Load()*0x9E3779B97F4A7C15 + 0x6A09E667F3BCC909
		if x == 0 {
			x = 1
		}
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	tx.prng = x
	return x
}

// Attempt reports the zero-based retry count of the current execution of the
// atomic block. Workload code can use it to, e.g., shrink its operation
// after repeated conflicts.
func (tx *Tx) Attempt() int { return tx.attempt }

// ReadOnly reports whether the transaction was started with AtomicRO.
func (tx *Tx) ReadOnly() bool { return tx.readOnly }

func (tx *Tx) reset() {
	tx.status.Store(txActive)
	if tx.rt.engine() == NOrec {
		tx.rv = tx.rt.norec.waitEven()
	} else {
		tx.rv = tx.rt.clock.now()
	}
	tx.reads = tx.reads[:0]
	tx.vreads = tx.vreads[:0]
	tx.writes = tx.writes[:0]
	tx.wsig = 0
	clear(tx.windex) // keep the allocation: recycled across retries and pooled reuse
}

// conflict unwinds the attempt with the sentinel panic.
func (tx *Tx) conflict(kind ConflictKind) {
	panic(conflictSignal{reason: kind})
}

// poisonPanic reports use of a handle that outlived its atomic block.
func (tx *Tx) poisonPanic() {
	panic(fmt.Sprintf("stm: transaction handle used after its atomic block returned "+
		"(object generation %d): the handle leaked from Atomic/AtomicRO — "+
		"see rubic-lint's stmescape analyzer", tx.gen.Load()))
}

// checkAlive aborts the attempt if a competitor doomed us, and panics if
// this handle leaked out of its atomic block and was poisoned on release.
//
//rubic:noalloc
func (tx *Tx) checkAlive() {
	switch tx.status.Load() {
	case txDoomed:
		tx.conflict(ConflictDoomed)
	case txPoisoned:
		tx.poisonPanic()
	}
}

// read dispatches to the runtime's engine: TL2's invisible-reader protocol
// with timestamp extension, or NOrec's value-validated sampling.
//
//rubic:noalloc
func (tx *Tx) read(b *varBase) any {
	if tx.rt.engine() == NOrec {
		return tx.readNorec(b)
	}
	tx.checkAlive()
	tx.work.Add(1)
	if i := tx.findWrite(b); i >= 0 {
		return *tx.writes[i].valp
	}
	for spins := 0; ; spins++ {
		m1 := b.meta.Load()
		if m1&lockedBit != 0 {
			owner := b.owner.Load()
			if owner == nil || owner == tx {
				// Transient acquisition/release window, or our own lock
				// racing with the windex check (cannot happen for a
				// well-formed Tx, but harmless): retry.
				runtime.Gosched()
				continue
			}
			if tx.rt.curCM().ShouldAbort(tx, owner) {
				tx.conflict(ConflictLockedRead)
			}
			backoffSpin(spins)
			continue
		}
		p := b.val.Load()
		m2 := b.meta.Load()
		if m1 != m2 {
			continue
		}
		if m1>>1 > tx.rv {
			// A read-only transaction keeps no read set, so its snapshot
			// cannot be revalidated: it must restart with a fresh read
			// version instead of extending.
			if tx.readOnly || !tx.extend() {
				tx.conflict(ConflictStaleRead)
			}
		}
		if !tx.readOnly {
			//lint:ignore rubic/noalloc read-set capacity is retained across retries and pooled reuse; growth amortizes to zero
			tx.reads = append(tx.reads, readEntry{base: b, meta: m1})
		}
		return *p
	}
}

// write dispatches to the engine: TL2 acquires the location's write lock
// eagerly and buffers the value; NOrec only buffers. The one allocation a
// first write to a location costs — the publication box — lives in
// boxValue, deliberately outside the annotated bodies (a rubic/noalloc
// known false negative, documented in DESIGN.md).
//
//rubic:noalloc
func (tx *Tx) write(b *varBase, v any) {
	if tx.rt.engine() == NOrec {
		tx.writeNorec(b, v)
		return
	}
	tx.checkAlive()
	tx.work.Add(1)
	if tx.readOnly {
		panic("stm: write inside a read-only transaction")
	}
	if i := tx.findWrite(b); i >= 0 {
		*tx.writes[i].valp = v
		return
	}
	for spins := 0; ; spins++ {
		m := b.meta.Load()
		if m&lockedBit != 0 {
			owner := b.owner.Load()
			if owner == nil {
				runtime.Gosched()
				continue
			}
			if owner == tx {
				// Locked by us but absent from windex: impossible for a
				// well-formed Tx; treat as programming error.
				panic("stm: lock held without write-set entry")
			}
			if tx.rt.curCM().ShouldAbort(tx, owner) {
				tx.conflict(ConflictLockedWrite)
			}
			backoffSpin(spins)
			continue
		}
		if m>>1 > tx.rv {
			if !tx.extend() {
				tx.conflict(ConflictStaleRead)
			}
		}
		if b.meta.CompareAndSwap(m, m|lockedBit) {
			b.owner.Store(tx)
			tx.appendWrite(writeEntry{base: b, prevMeta: m, valp: boxValue(v)})
			return
		}
	}
}

// boxValue wraps v in its publication box — the one allocation a committed
// write costs (plus Go's ordinary boxing of large non-pointer values into
// the `any` argument itself).
func boxValue(v any) *any {
	p := new(any)
	*p = v
	return p
}

// appendWrite records a new write-set entry, folds the base into the
// signature filter, and — only once the set outgrows the linear-scan range —
// indexes it in windex. The map is created lazily the first time a write set
// crosses windexLinearMax (small transactions never allocate or populate
// it) and retained across retries and pooled reuse; the backfill loop runs
// once per crossing, not per write.
func (tx *Tx) appendWrite(e writeEntry) {
	tx.writes = append(tx.writes, e)
	tx.wsig |= sigbit(e.base)
	n := len(tx.writes)
	switch {
	case n == windexLinearMax+1:
		if tx.windex == nil {
			tx.windex = make(map[*varBase]int, 4*windexLinearMax)
		}
		for i := range tx.writes {
			tx.windex[tx.writes[i].base] = i
		}
	case n > windexLinearMax+1:
		tx.windex[e.base] = n - 1
	}
}

// extend attempts to advance the read version after observing a location
// newer than rv: it revalidates the entire read set against the current
// clock (SwissTM's lazy snapshot extension). It returns false when some read
// location changed, in which case the transaction must abort.
func (tx *Tx) extend() bool {
	newRv := tx.rt.clock.now()
	if !tx.validateReads() {
		return false
	}
	tx.rv = newRv
	tx.rt.stats.extensions.Add(tx.shard, 1)
	return true
}

// validateReads checks that every location in the read set still carries the
// version observed at read time and is not locked by a competitor.
//
//rubic:noalloc
func (tx *Tx) validateReads() bool {
	for i := range tx.reads {
		e := &tx.reads[i]
		cur := e.base.meta.Load()
		if cur&lockedBit != 0 {
			if e.base.owner.Load() != tx {
				return false
			}
			cur &^= lockedBit
		}
		if cur != e.meta {
			return false
		}
	}
	return true
}

// commit attempts to make the transaction's writes visible. It returns false
// (after rolling back) when validation fails or the transaction was doomed.
func (tx *Tx) commit() bool {
	if tx.rt.engine() == NOrec {
		return tx.commitNorec()
	}
	if tx.status.Load() == txDoomed {
		tx.rollback()
		tx.rt.stats.conflicts[ConflictDoomed].Add(tx.shard, 1)
		return false
	}
	if len(tx.writes) == 0 {
		// Read-only commit: in-flight validation already guaranteed a
		// consistent snapshot at version rv.
		tx.status.Store(txCommitted)
		tx.rt.stats.readOnlyCommits.Add(tx.shard, 1)
		return true
	}
	// quiet means no competitor committed between our snapshot and the
	// acquisition of wv, so nothing we read can have changed and read-set
	// validation is redundant.
	var wv uint64
	var quiet bool
	if tx.rt.lazyClock {
		wv, quiet = tx.rt.clock.tickLazy(tx.rv)
	} else {
		wv = tx.rt.clock.tick()
		quiet = wv == tx.rv+1
	}
	if !quiet && !tx.validateReads() {
		tx.rollback()
		tx.rt.stats.conflicts[ConflictValidation].Add(tx.shard, 1)
		return false
	}
	// Win the race against contention managers trying to doom us: once
	// committed, write-back proceeds and doomers must wait for the locks.
	if !tx.status.CompareAndSwap(txActive, txCommitted) {
		tx.rollback()
		tx.rt.stats.conflicts[ConflictDoomed].Add(tx.shard, 1)
		return false
	}
	// The CSN is drawn here — after the commit point, while every write lock
	// is still held — so commit sequence numbers are monotone along every
	// read-from and overwrite dependency (durable.go).
	tx.beginDurable()
	for i := range tx.writes {
		w := &tx.writes[i]
		w.base.val.Store(w.valp)
		w.base.owner.Store(nil)
		w.base.meta.Store(wv << 1)
	}
	tx.publishDurable()
	return true
}

// rollback releases every write lock, restoring the pre-acquisition version,
// and marks the attempt aborted. Values were never written back, so no data
// restoration is needed. (NOrec holds nothing.)
func (tx *Tx) rollback() {
	if tx.rt.engine() == NOrec {
		tx.rollbackNorec()
		return
	}
	for i := range tx.writes {
		w := &tx.writes[i]
		w.base.owner.Store(nil)
		w.base.meta.Store(w.prevMeta)
	}
	tx.status.Store(txAborted)
}

// backoffSpin yields the processor with a cost growing in the number of
// failed spins, bounded to keep worst-case latency low on few-core hosts.
func backoffSpin(spins int) {
	if spins > 64 {
		spins = 64
	}
	for i := 0; i < spins; i++ {
		runtime.Gosched()
	}
	runtime.Gosched()
}
