package stm

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestAlgorithmString(t *testing.T) {
	if TL2.String() != "tl2" || NOrec.String() != "norec" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(9).String() != "unknown" {
		t.Fatal("out-of-range algorithm name")
	}
	if New(Config{}).Algorithm() != TL2 {
		t.Fatal("default algorithm not TL2")
	}
	if New(Config{Algorithm: NOrec}).Algorithm() != NOrec {
		t.Fatal("NOrec config ignored")
	}
}

func TestNOrecBasicReadWrite(t *testing.T) {
	rt := New(Config{Algorithm: NOrec})
	x := NewVar(10)
	err := rt.Atomic(func(tx *Tx) error {
		if got := x.Read(tx); got != 10 {
			t.Errorf("read = %d", got)
		}
		x.Write(tx, 42)
		if got := x.Read(tx); got != 42 {
			t.Errorf("read-own-write = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Peek(); got != 42 {
		t.Fatalf("Peek = %d", got)
	}
}

func TestNOrecUserErrorRollsBack(t *testing.T) {
	rt := New(Config{Algorithm: NOrec})
	x := NewVar("before")
	boom := errors.New("boom")
	if err := rt.Atomic(func(tx *Tx) error {
		x.Write(tx, "after")
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if x.Peek() != "before" {
		t.Fatal("write leaked from aborted NOrec transaction")
	}
}

func TestNOrecReadOnlyWritePanics(t *testing.T) {
	rt := New(Config{Algorithm: NOrec})
	x := NewVar(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = rt.AtomicRO(func(tx *Tx) error {
		x.Write(tx, 1)
		return nil
	})
}

func TestNOrecConcurrentCounter(t *testing.T) {
	rt := New(Config{Algorithm: NOrec})
	x := NewVar(0)
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := rt.Atomic(func(tx *Tx) error {
					x.Write(tx, x.Read(tx)+1)
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := x.Peek(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestNOrecSnapshotConsistency: concurrent transfers preserve the invariant
// under value validation exactly as under TL2.
func TestNOrecSnapshotConsistency(t *testing.T) {
	rt := New(Config{Algorithm: NOrec})
	const total = 1000
	a := NewVar(total)
	b := NewVar(0)
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				_ = rt.Atomic(func(tx *Tx) error {
					av, bv := a.Read(tx), b.Read(tx)
					amt := (i+g)%17 + 1
					if g%2 == 0 && av >= amt {
						a.Write(tx, av-amt)
						b.Write(tx, bv+amt)
					} else if bv >= amt {
						b.Write(tx, bv-amt)
						a.Write(tx, av+amt)
					}
					return nil
				})
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = rt.AtomicRO(func(tx *Tx) error {
					if sum := a.Read(tx) + b.Read(tx); sum != total {
						t.Errorf("torn snapshot: %d", sum)
					}
					return nil
				})
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if sum := a.Peek() + b.Peek(); sum != total {
		t.Fatalf("final total %d", sum)
	}
}

// TestNOrecFalseConflictImmunity: NOrec validates by value, so a competitor
// writing the same boxed pointer... cannot happen (each commit allocates),
// but writes to *unrelated* variables must not abort a reader whose values
// are revalidated successfully.
func TestNOrecUnrelatedWritesDoNotAbortReaders(t *testing.T) {
	rt := New(Config{Algorithm: NOrec})
	x := NewVar(1)
	y := NewVar(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			_ = rt.Atomic(func(tx *Tx) error {
				y.Write(tx, y.Read(tx)+1)
				return nil
			})
		}
	}()
	// Readers of x proceed despite the churn on y (revalidation of the
	// value log succeeds since x never changes).
	for i := 0; i < 500; i++ {
		if err := rt.AtomicRO(func(tx *Tx) error {
			if got := x.Read(tx); got != 1 {
				t.Errorf("x = %d", got)
			}
			return nil
		}); err != nil {
			t.Fatalf("reader aborted: %v", err)
		}
	}
	<-done
	s := rt.Stats()
	if s.Commits == 0 {
		t.Fatal("no commits")
	}
}

// TestNOrecQuickMatchesTL2 property: any single-threaded op sequence leaves
// both engines' state identical.
func TestNOrecQuickMatchesTL2(t *testing.T) {
	f := func(ops []int16) bool {
		a := New(Config{})
		b := New(Config{Algorithm: NOrec})
		xa, xb := NewVar(0), NewVar(0)
		for _, op := range ops {
			v := int(op)
			_ = a.Atomic(func(tx *Tx) error {
				if v%3 == 0 {
					xa.Write(tx, v)
				} else {
					xa.Write(tx, xa.Read(tx)+v)
				}
				return nil
			})
			_ = b.Atomic(func(tx *Tx) error {
				if v%3 == 0 {
					xb.Write(tx, v)
				} else {
					xb.Write(tx, xb.Read(tx)+v)
				}
				return nil
			})
		}
		return xa.Peek() == xb.Peek()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNOrecVersionAdvances(t *testing.T) {
	rt := New(Config{Algorithm: NOrec})
	x := NewVar(0)
	v0 := x.Version()
	_ = rt.Atomic(func(tx *Tx) error { x.Write(tx, 1); return nil })
	if x.Version() <= v0 {
		t.Fatal("Var version did not advance under NOrec")
	}
}
