package stm

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// Differential stress test: the same randomized workload runs on every
// engine/clock configuration, and every run's commit history is checked
// against a sequential specification by exhaustive interleaving search.
// This pins the semantics the lazy GV4 clock must preserve — a commit that
// wrongly skips validation shows up as a history no sequential order can
// explain.

// diffRecord is one committed transaction: the snapshot it observed and the
// single write it published.
type diffRecord struct {
	reads [3]int
	widx  int
	val   int
}

// diffWorkload runs workers*txPerWorker transactions, each reading all
// three vars and read-modify-writing one, and returns the per-worker commit
// histories plus the final (Peek) state.
func diffWorkload(t *testing.T, rt *Runtime, workers, txPerWorker int) ([][]diffRecord, [3]int) {
	t.Helper()
	vars := [3]*Var[int]{NewVar(0), NewVar(0), NewVar(0)}
	histories := make([][]diffRecord, workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txPerWorker; i++ {
				var snap [3]int
				widx := (w + i) % 3
				val := 1 + w*txPerWorker + i // unique, never the initial 0
				err := rt.Atomic(func(tx *Tx) error {
					for j, v := range vars {
						snap[j] = v.Read(tx)
					}
					vars[widx].Write(tx, val)
					return nil
				})
				if err != nil {
					errs[w] = err
					return
				}
				histories[w] = append(histories[w], diffRecord{reads: snap, widx: widx, val: val})
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	var final [3]int
	for j, v := range vars {
		final[j] = v.Peek()
	}
	return histories, final
}

// findSerialOrder searches for a sequential execution explaining the
// histories: transactions interleave arbitrarily across workers but respect
// per-worker program order, every transaction's snapshot must equal the
// state at its position, and the final state must match the observed one.
// Because each transaction reads ALL variables, the snapshot constraint is
// total and the branching factor is at most the worker count.
func findSerialOrder(histories [][]diffRecord, final [3]int) bool {
	next := make([]int, len(histories))
	var state [3]int
	remaining := 0
	for _, h := range histories {
		remaining += len(h)
	}
	var search func() bool
	search = func() bool {
		if remaining == 0 {
			return state == final
		}
		for w, h := range histories {
			if next[w] >= len(h) {
				continue
			}
			r := h[next[w]]
			if r.reads != state {
				continue
			}
			prev := state[r.widx]
			state[r.widx] = r.val
			next[w]++
			remaining--
			if search() {
				return true
			}
			remaining++
			next[w]--
			state[r.widx] = prev
		}
		return false
	}
	return search()
}

func TestDifferentialSerializability(t *testing.T) {
	const workers, txPerWorker = 4, 6
	for _, algo := range []Algorithm{TL2, NOrec} {
		for _, disableLazy := range []bool{false, true} {
			name := fmt.Sprintf("%s/lazy=%v", algo.String(), !disableLazy)
			t.Run(name, func(t *testing.T) {
				for round := 0; round < 20; round++ {
					rt := New(Config{Algorithm: algo, DisableLazyClock: disableLazy})
					histories, final := diffWorkload(t, rt, workers, txPerWorker)
					if !findSerialOrder(histories, final) {
						t.Fatalf("round %d: no sequential order explains the commit history\nhistories: %+v\nfinal: %v",
							round, histories, final)
					}
				}
			})
		}
	}
}

// --- Switch-point oracle ---
//
// The adaptive runtime hot-swaps the engine and contention manager while
// transactions are in flight. The oracle above doesn't care how a history
// was produced, only whether a sequential order explains it — so the same
// search proves switch safety: inject a switch at every possible commit
// boundary and at arbitrary racing points, and any tearing (a commit
// straddling the handoff, a stale clock after the NOrec->TL2 re-seed, a
// reader observing a half-switched world) surfaces as an unserializable
// history.

// switchDirections covers all four engine-transition directions. The
// identity transitions matter too: a drain that closes and reopens the gate
// with no engine change exercises the quiesce barrier against concurrent
// commits without the clock re-seed in play.
var switchDirections = [4][2]Algorithm{
	{TL2, NOrec},
	{NOrec, TL2},
	{TL2, TL2},
	{NOrec, NOrec},
}

// TestSwitchPointOracle runs the differential workload with a combined
// CM+engine switch injected between every pair of commits: for every cut
// point c in [0, total], one round switches after the c-th commit lands.
// Every resulting history must still be explainable by a sequential order.
func TestSwitchPointOracle(t *testing.T) {
	const workers, txPerWorker = 3, 4
	const total = workers * txPerWorker
	for _, dir := range switchDirections {
		from, to := dir[0], dir[1]
		t.Run(from.String()+"_to_"+to.String(), func(t *testing.T) {
			for cut := uint64(0); cut <= total; cut++ {
				rt := New(Config{Algorithm: from})
				done := make(chan struct{})
				go func() {
					defer close(done)
					for rt.Stats().Commits < cut {
						runtime.Gosched()
					}
					// CM swap first (undrained by design), then the engine
					// handoff (stop-the-world) at the same cut point.
					rt.SetContentionManager(GreedyCM{})
					rt.SwitchEngine(to)
				}()
				histories, final := diffWorkload(t, rt, workers, txPerWorker)
				<-done
				if got := rt.Algorithm(); got != to {
					t.Fatalf("cut %d: engine %s after switch, want %s", cut, got.String(), to.String())
				}
				if eng, cms := rt.SwitchCounts(); eng != 1 || cms != 1 {
					t.Fatalf("cut %d: switch counts engine=%d cm=%d, want 1/1", cut, eng, cms)
				}
				if !findSerialOrder(histories, final) {
					t.Fatalf("cut %d (%s->%s): no sequential order explains the commit history\nhistories: %+v\nfinal: %v",
						cut, from.String(), to.String(), histories, final)
				}
			}
		})
	}
}

// TestSwitchStormSerializability is the mid-commit-storm schedule: a storm
// goroutine flips the engine and rotates the contention manager as fast as
// the drain allows while the full differential workload commits underneath.
// Serializability must hold across every handoff the storm manages to land.
func TestSwitchStormSerializability(t *testing.T) {
	const workers, txPerWorker = 4, 6
	cms := []ContentionManager{BackoffCM{}, GreedyCM{}, KarmaCM{}, SuicideCM{}}
	engines := []Algorithm{NOrec, TL2}
	for round := 0; round < 10; round++ {
		rt := New(Config{Algorithm: TL2})
		stop := make(chan struct{})
		var storm sync.WaitGroup
		storm.Add(1)
		go func() {
			defer storm.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rt.SetContentionManager(cms[i%len(cms)])
				rt.SwitchEngine(engines[i%len(engines)])
				runtime.Gosched()
			}
		}()
		histories, final := diffWorkload(t, rt, workers, txPerWorker)
		close(stop)
		storm.Wait()
		eng, _ := rt.SwitchCounts()
		if !findSerialOrder(histories, final) {
			t.Fatalf("round %d (%d switches): no sequential order explains the commit history\nhistories: %+v\nfinal: %v",
				round, eng, histories, final)
		}
	}
}

// TestFindSerialOrderRejectsBadHistory sanity-checks the oracle itself: a
// history with a snapshot no interleaving can produce must be rejected.
func TestFindSerialOrderRejectsBadHistory(t *testing.T) {
	histories := [][]diffRecord{
		{{reads: [3]int{0, 0, 0}, widx: 0, val: 1}},
		// Claims to have seen var0=1 and var1=5, but nobody ever wrote 5.
		{{reads: [3]int{1, 5, 0}, widx: 1, val: 2}},
	}
	if findSerialOrder(histories, [3]int{1, 2, 0}) {
		t.Fatal("oracle accepted an unserializable history")
	}
}
