// Package stm implements a software transactional memory runtime in the
// style of TL2/SwissTM: a global version clock, per-location versioned
// write-locks, eager write locking with commit-time write-back, invisible
// readers validated by timestamp with lazy snapshot extension, and pluggable
// contention management.
//
// It is the substrate the RUBIC reproduction runs its STAMP-style workloads
// on, standing in for the paper's RSTM framework with the SwissTM runtime.
//
// Typical use:
//
//	rt := stm.New(stm.Config{})
//	x := stm.NewVar(0)
//	err := rt.Atomic(func(tx *stm.Tx) error {
//	    x.Write(tx, x.Read(tx)+1)
//	    return nil
//	})
//
// Conflicts are handled internally with automatic retry; the error returned
// by Atomic is non-nil only when the user function returned an error (the
// transaction is then rolled back and not retried) or when Config.MaxRetries
// is exhausted.
package stm

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Config parameterizes a Runtime.
type Config struct {
	// CM selects the contention manager; nil defaults to BackoffCM{}. Only
	// the TL2 engine consults it for conflicts (NOrec has no per-location
	// owners); both use it to pace retries.
	CM ContentionManager
	// MaxRetries bounds the number of attempts per atomic block; 0 means
	// unlimited. When exhausted, Atomic returns ErrTooManyRetries.
	MaxRetries int
	// Algorithm selects the concurrency-control engine; defaults to TL2.
	Algorithm Algorithm
}

// ErrTooManyRetries is returned by Atomic when Config.MaxRetries attempts
// all aborted.
var ErrTooManyRetries = errors.New("stm: transaction exceeded retry limit")

// Runtime is an STM instance: a version clock, a contention manager and
// statistics. Independent Runtimes are fully isolated; Vars are implicitly
// bound to whichever Runtime's transactions access them, so a Var must not
// be shared across Runtimes.
type Runtime struct {
	cfg   Config
	algo  Algorithm
	clock clock
	norec norecState
	cm    ContentionManager
	tsc   atomic.Uint64 // birth-timestamp source for greedy CM
	stats runtimeStats
}

// New returns a Runtime with the given configuration.
func New(cfg Config) *Runtime {
	rt := &Runtime{cfg: cfg, algo: cfg.Algorithm}
	rt.cm = cfg.CM
	if rt.cm == nil {
		rt.cm = BackoffCM{}
	}
	return rt
}

// Algorithm reports the runtime's engine.
func (rt *Runtime) Algorithm() Algorithm { return rt.algo }

// Atomic executes fn transactionally, retrying on conflicts until it
// commits, fn returns an error, or the retry limit is exhausted.
//
// fn must confine all shared-state access to Var Read/Write through tx, must
// not retain tx, and must be safe to re-execute (side effects outside the
// STM should be buffered until Atomic returns).
func (rt *Runtime) Atomic(fn func(tx *Tx) error) error {
	return rt.run(fn, false)
}

// AtomicRO executes fn as a read-only transaction: reads skip read-set
// bookkeeping entirely (in-flight validation still guarantees a consistent
// snapshot) and writes panic. Prefer it for lookup-dominated operations.
func (rt *Runtime) AtomicRO(fn func(tx *Tx) error) error {
	return rt.run(fn, true)
}

func (rt *Runtime) run(fn func(tx *Tx) error, readOnly bool) error {
	tx := &Tx{rt: rt, readOnly: readOnly}
	tx.ts = rt.tsc.Add(1)
	for attempt := 0; ; attempt++ {
		if rt.cfg.MaxRetries > 0 && attempt >= rt.cfg.MaxRetries {
			return fmt.Errorf("%w (after %d attempts)", ErrTooManyRetries, attempt)
		}
		if attempt > 0 {
			rt.cm.BeforeRetry(tx, attempt)
		}
		tx.attempt = attempt
		tx.reset()
		userErr, conflicted, retried := tx.execute(fn)
		if retried {
			// Tx.Retry: block until a watched location changes, then
			// re-execute the whole block.
			if err := tx.waitForChange(); err != nil {
				return err
			}
			rt.stats.retryWaits.Add(1)
			continue
		}
		if conflicted {
			rt.stats.aborts.Add(1)
			continue
		}
		if userErr != nil {
			tx.rollback()
			rt.stats.userAborts.Add(1)
			return userErr
		}
		if tx.commit() {
			rt.stats.commits.Add(1)
			return nil
		}
		rt.stats.aborts.Add(1)
	}
}

// execute runs one attempt of fn, converting the internal conflict and
// retry panics into (rolled back) indications while letting any other panic
// propagate after releasing the attempt's locks.
func (tx *Tx) execute(fn func(tx *Tx) error) (userErr error, conflicted, retried bool) {
	defer func() {
		if r := recover(); r != nil {
			tx.rollback()
			switch sig := r.(type) {
			case conflictSignal:
				tx.rt.stats.conflicts[sig.reason].Add(1)
				conflicted = true
			case retrySignal:
				retried = true
			default:
				panic(r)
			}
		}
	}()
	return fn(tx), false, false
}

// Stats returns a snapshot of the runtime's counters.
func (rt *Runtime) Stats() Stats { return rt.stats.snapshot() }

// ResetStats zeroes the runtime's counters, e.g. between measurement rounds.
func (rt *Runtime) ResetStats() { rt.stats.reset() }

// ContentionManagerName reports the active contention policy.
func (rt *Runtime) ContentionManagerName() string { return rt.cm.Name() }

// GlobalVersion exposes the current value of the version clock for tests and
// diagnostics.
func (rt *Runtime) GlobalVersion() uint64 { return rt.clock.now() }
