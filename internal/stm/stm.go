// Package stm implements a software transactional memory runtime in the
// style of TL2/SwissTM: a global version clock, per-location versioned
// write-locks, eager write locking with commit-time write-back, invisible
// readers validated by timestamp with lazy snapshot extension, and pluggable
// contention management.
//
// It is the substrate the RUBIC reproduction runs its STAMP-style workloads
// on, standing in for the paper's RSTM framework with the SwissTM runtime.
//
// Typical use:
//
//	rt := stm.New(stm.Config{})
//	x := stm.NewVar(0)
//	err := rt.Atomic(func(tx *stm.Tx) error {
//	    x.Write(tx, x.Read(tx)+1)
//	    return nil
//	})
//
// Conflicts are handled internally with automatic retry; the error returned
// by Atomic is non-nil only when the user function returned an error (the
// transaction is then rolled back and not retried) or when Config.MaxRetries
// is exhausted.
//
// The hot path is engineered to be allocation-free and contention-resilient
// (DESIGN.md §8): Tx contexts are recycled through a per-runtime sync.Pool
// with capped reuse of their read/write sets, so a steady-state AtomicRO
// block performs zero heap allocations and a small update transaction only
// allocates its publication boxes; commit/abort statistics land on
// cache-line padded shards instead of one shared line; and commit
// timestamps come from a lazy GV4-style clock protocol unless
// Config.DisableLazyClock asks for the eager fetch-and-add.
package stm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rubic/internal/metrics"
)

// Config parameterizes a Runtime.
type Config struct {
	// CM selects the contention manager; nil defaults to BackoffCM{}. Only
	// the TL2 engine consults it for conflicts (NOrec has no per-location
	// owners); both use it to pace retries.
	CM ContentionManager
	// MaxRetries bounds the number of attempts per atomic block; 0 means
	// unlimited. When exhausted, Atomic returns ErrTooManyRetries.
	MaxRetries int
	// Algorithm selects the concurrency-control engine; defaults to TL2.
	Algorithm Algorithm
	// DisableLazyClock reverts the TL2 engine's commit timestamping from the
	// lazy GV4 scheme (clock.tickLazy: CAS fast path, shared timestamps on
	// contention) to an unconditional fetch-and-add per writer commit. Both
	// modes provide identical transactional semantics; the flag exists for
	// measurement and as an escape hatch. NOrec ignores it (its sequence
	// lock is the algorithm, not an optimization).
	DisableLazyClock bool
}

// ErrTooManyRetries is returned by Atomic when Config.MaxRetries attempts
// all aborted.
var ErrTooManyRetries = errors.New("stm: transaction exceeded retry limit")

// maxRetainedEntries caps the read/write/value-log capacity a pooled Tx
// keeps between atomic blocks; a rare huge transaction releases its
// oversized sets back to the garbage collector instead of pinning them.
const maxRetainedEntries = 1 << 14

// Runtime is an STM instance: a version clock, a contention manager and
// statistics. Independent Runtimes are fully isolated; Vars are implicitly
// bound to whichever Runtime's transactions access them, so a Var must not
// be shared across Runtimes.
type Runtime struct {
	cfg       Config
	lazyClock bool
	clock     clock      // cache-line padded: every commit writes it
	norec     norecState // cache-line padded: every NOrec commit writes it

	// algoAtom holds the active engine and cmAtom the active contention
	// manager. Both are atomics because SwitchEngine/SetContentionManager may
	// replace them at any epoch boundary while transactions run (DESIGN.md
	// §12): the CM swaps without any drain (managers affect only liveness —
	// who waits or aborts — never which committed state is visible), while
	// engine swaps go through the quiesce gate below so no transaction ever
	// observes a mid-swap engine.
	algoAtom atomic.Uint32
	cmAtom   atomic.Pointer[ContentionManager]

	// swGate is nonzero while an engine switch is draining or swapping;
	// starting attempts park on it (see enter). inflight counts attempts
	// currently inside the gate, sharded like the statistics so the
	// non-adaptive hot path never bounces a shared line. swMu serializes
	// switchers; norecMark remembers the NOrec sequence value at the start of
	// the current NOrec era so the TL2 clock can be re-seeded with the era's
	// writer commits on the way out (guarded by swMu).
	swGate    metrics.PaddedUint64
	inflight  *metrics.ShardedCounter
	swMu      sync.Mutex
	norecMark uint64

	// engineSwitches/cmSwitches count completed swaps, for telemetry.
	engineSwitches atomic.Uint64
	cmSwitches     atomic.Uint64

	// sigAgg is the rolling OR-aggregate of committed writers' wsig
	// signatures; sigSeq counts writer commits to decay it (every
	// sigAggWindow-th commit replaces instead of ORing). ConflictProfile
	// estimates conflict degree from signature overlap against it.
	sigAgg metrics.PaddedUint64
	sigSeq metrics.PaddedUint64

	// sinkAtom holds the attached CommitSink (durable.go), or nil. Commits
	// load it once after winning their critical section; the non-durable
	// configuration pays one atomic load and a nil test per writer commit.
	sinkAtom atomic.Pointer[CommitSink]

	// tsc is the birth-timestamp source for greedy contention management.
	// Every transaction start increments it, so like the clock it lives
	// alone on its cache line instead of bouncing the read-mostly fields
	// around it.
	tsc   metrics.PaddedUint64
	stats runtimeStats

	// txPool recycles Tx contexts so steady-state atomic blocks allocate
	// nothing. shardSeq deals statistics shards to new Txs round-robin;
	// because sync.Pool is per-P, a recycled Tx (and therefore its shard)
	// sticks to a P and counter updates stay core-local.
	txPool   sync.Pool
	shardSeq atomic.Uint64
}

// New returns a Runtime with the given configuration.
func New(cfg Config) *Runtime {
	rt := &Runtime{
		cfg:       cfg,
		lazyClock: !cfg.DisableLazyClock,
		stats:     newRuntimeStats(),
		inflight:  metrics.NewShardedCounter(runtime.GOMAXPROCS(0)),
	}
	rt.algoAtom.Store(uint32(cfg.Algorithm))
	cm := cfg.CM
	if cm == nil {
		cm = BackoffCM{}
	}
	rt.cmAtom.Store(&cm)
	rt.txPool.New = func() any {
		return &Tx{rt: rt, shard: int(rt.shardSeq.Add(1))}
	}
	return rt
}

// engine returns the active engine. Within one transaction attempt every
// call returns the same value: attempts run inside the quiesce gate, and
// SwitchEngine only stores a new engine after the gate has drained.
//
//rubic:noalloc
func (rt *Runtime) engine() Algorithm { return Algorithm(rt.algoAtom.Load()) }

// curCM returns the active contention manager.
//
//rubic:noalloc
func (rt *Runtime) curCM() ContentionManager { return *rt.cmAtom.Load() }

// Algorithm reports the runtime's engine.
func (rt *Runtime) Algorithm() Algorithm { return rt.engine() }

// Atomic executes fn transactionally, retrying on conflicts until it
// commits, fn returns an error, or the retry limit is exhausted.
//
// fn must confine all shared-state access to Var Read/Write through tx, must
// not retain tx, and must be safe to re-execute (side effects outside the
// STM should be buffered until Atomic returns).
func (rt *Runtime) Atomic(fn func(tx *Tx) error) error {
	return rt.run(fn, false)
}

// AtomicRO executes fn as a read-only transaction: reads skip read-set
// bookkeeping entirely (in-flight validation still guarantees a consistent
// snapshot) and writes panic. Prefer it for lookup-dominated operations.
func (rt *Runtime) AtomicRO(fn func(tx *Tx) error) error {
	return rt.run(fn, true)
}

func (rt *Runtime) run(fn func(tx *Tx) error, readOnly bool) error {
	tx := rt.txPool.Get().(*Tx)
	tx.readOnly = readOnly
	tx.work.Store(0)
	tx.ts.Store(rt.tsc.Add(1))
	shard := tx.shard
	rt.enter(shard)
	defer rt.exit(shard)
	defer rt.release(tx)
	for attempt := 0; ; attempt++ {
		if rt.cfg.MaxRetries > 0 && attempt >= rt.cfg.MaxRetries {
			return fmt.Errorf("%w (after %d attempts)", ErrTooManyRetries, attempt)
		}
		if attempt > 0 {
			// Between attempts nothing is held, so a pending engine switch
			// may drain here: release the gate slot and re-park.
			if rt.swGate.Load() != 0 {
				rt.exit(shard)
				rt.enter(shard)
			}
			rt.curCM().BeforeRetry(tx, attempt)
		}
		tx.attempt = attempt
		tx.reset()
		userErr, conflicted, retried := tx.execute(fn)
		if retried {
			// Tx.Retry: block until a watched location changes, then
			// re-execute the whole block.
			if err := tx.waitForChange(); err != nil {
				return err
			}
			rt.stats.retryWaits.Add(tx.shard, 1)
			continue
		}
		if conflicted {
			rt.stats.aborts.Add(tx.shard, 1)
			continue
		}
		if userErr != nil {
			tx.rollback()
			rt.stats.userAborts.Add(tx.shard, 1)
			return userErr
		}
		if tx.commit() {
			rt.stats.commits.Add(tx.shard, 1)
			rt.noteCommit(tx)
			tx.waitDurable()
			return nil
		}
		rt.stats.aborts.Add(tx.shard, 1)
	}
}

// release poisons a finished Tx and returns it to the pool. Poisoning first
// (generation bump, then the status store that publishes it) makes a leaked
// handle fail loudly on its next transactional operation instead of
// corrupting whatever atomic block recycles the object next. The attempt
// state is cleared so pooled Txs don't pin user values for the garbage
// collector, and oversized sets are dropped entirely.
func (rt *Runtime) release(tx *Tx) {
	tx.gen.Add(1)
	tx.status.Store(txPoisoned)
	tx.reads = clearRetained(tx.reads)
	tx.vreads = clearRetained(tx.vreads)
	tx.writes = clearRetained(tx.writes)
	tx.durOps = clearRetained(tx.durOps)
	tx.sink = nil
	tx.csn = 0
	if len(tx.windex) > maxRetainedEntries {
		tx.windex = nil // Go maps never shrink; drop outsized indexes
	} else {
		clear(tx.windex)
	}
	rt.txPool.Put(tx)
}

// clearRetained zeroes s's full backing array (dropping references for the
// GC) and returns it empty, or nil when its capacity exceeds the retention
// cap.
func clearRetained[E any](s []E) []E {
	if cap(s) > maxRetainedEntries {
		return nil
	}
	full := s[:cap(s)]
	clear(full)
	return full[:0]
}

// execute runs one attempt of fn, converting the internal conflict and
// retry panics into (rolled back) indications while letting any other panic
// propagate after releasing the attempt's locks.
func (tx *Tx) execute(fn func(tx *Tx) error) (userErr error, conflicted, retried bool) {
	defer func() {
		if r := recover(); r != nil {
			tx.rollback()
			switch sig := r.(type) {
			case conflictSignal:
				tx.rt.stats.conflicts[sig.reason].Add(tx.shard, 1)
				conflicted = true
			case retrySignal:
				retried = true
			default:
				panic(r)
			}
		}
	}()
	return fn(tx), false, false
}

// Stats returns a snapshot of the runtime's counters.
func (rt *Runtime) Stats() Stats { return rt.stats.snapshot() }

// ResetStats zeroes the runtime's counters, e.g. between measurement rounds.
func (rt *Runtime) ResetStats() { rt.stats.reset() }

// ContentionManagerName reports the active contention policy.
func (rt *Runtime) ContentionManagerName() string { return rt.curCM().Name() }

// GlobalVersion exposes the current value of the version clock for tests and
// diagnostics.
func (rt *Runtime) GlobalVersion() uint64 { return rt.clock.now() }
