package stm

import (
	"runtime"

	"rubic/internal/metrics"
)

// This file implements the NOrec algorithm (Dalessandro, Spear & Scott,
// PPoPP 2010) as an alternative engine behind the same Runtime/Var/Tx API:
// no per-location ownership records; a single global sequence lock
// serializes write-back, and readers validate by value. Writers buffer
// everything and acquire nothing until commit, so transactions never block
// each other mid-flight; the cost is serialized commits and value-log
// revalidation whenever any writer commits.
//
// The paper's substrate, RSTM, is precisely such a multi-algorithm
// framework; Config.Algorithm selects between the default TL2/SwissTM-style
// engine (eager per-location locking) and NOrec. Vars, containers and
// workloads are engine-agnostic.

// Algorithm selects a Runtime's concurrency-control engine.
type Algorithm uint8

const (
	// TL2 is the default engine: per-location versioned locks, eager write
	// locking, invisible readers with timestamp validation (TL2/SwissTM).
	TL2 Algorithm = iota
	// NOrec is the value-validating engine with a single commit seqlock.
	NOrec
)

func (a Algorithm) String() string {
	switch a {
	case TL2:
		return "tl2"
	case NOrec:
		return "norec"
	}
	return "unknown"
}

// norecState is the NOrec global: a sequence lock, odd while a writer is in
// its write-back phase. Like the TL2 clock it is the single word every
// transaction polls and every writer commit CASes, so it is cache-line
// padded to keep commit write-backs from false-sharing with the Runtime's
// read-mostly neighbors.
type norecState struct {
	// seq is odd exactly while a writer is in write-back; readers sample it,
	// read, and re-check. Every use site must follow that protocol
	// (rubic/seqlockproto verifies it).
	//
	//rubic:seqlock
	seq metrics.PaddedUint64
}

// valueRead is one value-log entry: the location and the boxed value pointer
// observed. Write-back always publishes a fresh allocation, so pointer
// equality certifies the value is unchanged.
type valueRead struct {
	base *varBase
	p    *any
}

// waitEven spins until the sequence lock is even (no write-back in
// progress) and returns its value.
//
//rubic:noalloc
func (n *norecState) waitEven() uint64 {
	for {
		s := n.seq.Load()
		if s&1 == 0 {
			return s
		}
		runtime.Gosched()
	}
}

// readNorec is the NOrec read protocol: consistent value sampling against
// the global sequence lock, with full value-log revalidation whenever a
// concurrent commit moved the clock.
//
//rubic:noalloc
func (tx *Tx) readNorec(b *varBase) any {
	tx.checkAlive()
	tx.work.Add(1)
	if i := tx.findWrite(b); i >= 0 {
		return *tx.writes[i].valp
	}
	for {
		s1 := tx.rt.norec.waitEven()
		if s1 != tx.rv {
			if !tx.revalidateNorec() {
				tx.conflict(ConflictStaleRead)
			}
			continue
		}
		p := b.val.Load()
		s2 := tx.rt.norec.seq.Load()
		if s1 != s2 {
			continue
		}
		//lint:ignore rubic/noalloc value-log capacity is retained across retries and pooled reuse; growth amortizes to zero
		tx.vreads = append(tx.vreads, valueRead{base: b, p: p})
		return *p
	}
}

// revalidateNorec re-reads every logged location and compares the boxed
// pointers, adopting the new snapshot on success.
//
//rubic:noalloc
func (tx *Tx) revalidateNorec() bool {
	for {
		s := tx.rt.norec.waitEven()
		ok := true
		for i := range tx.vreads {
			r := &tx.vreads[i]
			if r.base.val.Load() != r.p {
				ok = false
				break
			}
		}
		if !ok {
			return false
		}
		if tx.rt.norec.seq.Load() == s {
			tx.rv = s
			tx.rt.stats.extensions.Add(tx.shard, 1)
			return true
		}
	}
}

// writeNorec buffers the write; NOrec acquires nothing before commit. As
// with write, the publication box built by boxValue is the one budgeted
// allocation, outside this body.
//
//rubic:noalloc
func (tx *Tx) writeNorec(b *varBase, v any) {
	tx.checkAlive()
	tx.work.Add(1)
	if tx.readOnly {
		panic("stm: write inside a read-only transaction")
	}
	if i := tx.findWrite(b); i >= 0 {
		*tx.writes[i].valp = v
		return
	}
	tx.appendWrite(writeEntry{base: b, valp: boxValue(v)})
}

// commitNorec serializes on the global sequence lock: validate the value
// log, publish the writes, release.
func (tx *Tx) commitNorec() bool {
	if len(tx.writes) == 0 {
		tx.status.Store(txCommitted)
		tx.rt.stats.readOnlyCommits.Add(tx.shard, 1)
		return true
	}
	for {
		s := tx.rt.norec.waitEven()
		if s != tx.rv && !tx.revalidateNorecAt(s) {
			tx.status.Store(txAborted)
			tx.rt.stats.conflicts[ConflictValidation].Add(tx.shard, 1)
			return false
		}
		if !tx.rt.norec.seq.CompareAndSwap(s, s+1) {
			continue // lost the lock race; re-check
		}
		// The CSN is drawn under the sequence lock: NOrec writer commits
		// serialize here, so CSN order is exactly commit order (durable.go).
		tx.beginDurable()
		for i := range tx.writes {
			w := &tx.writes[i]
			// Publish the box built at write time: it was private until this
			// store, and it is never recycled, so readers' pointer-equality
			// validation stays sound.
			w.base.val.Store(w.valp)
			// Keep the location's version moving so Var.Version and the
			// TL2-style consistent sampling remain meaningful.
			w.base.meta.Add(1 << 1)
		}
		tx.rt.norec.seq.Store(s + 2)
		tx.status.Store(txCommitted)
		tx.publishDurable()
		return true
	}
}

// revalidateNorecAt validates the value log at a specific even sequence
// value (pre-commit validation holds no lock; the CAS re-checks s).
func (tx *Tx) revalidateNorecAt(s uint64) bool {
	for i := range tx.vreads {
		r := &tx.vreads[i]
		if r.base.val.Load() != r.p {
			return false
		}
	}
	tx.rv = s
	return true
}

// rollbackNorec: nothing is held; just mark the attempt.
func (tx *Tx) rollbackNorec() {
	tx.status.Store(txAborted)
}
