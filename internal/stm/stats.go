package stm

import (
	"fmt"
	"runtime"

	"rubic/internal/metrics"
)

// runtimeStats aggregates counters across all transactions of a Runtime.
// Counters are updated on hot paths only where the paper's instrumentation
// would (commits/aborts); per-read costs are avoided. Every counter is a
// cache-line padded sharded counter (the same metrics.ShardedCounter the
// worker pool uses for completion counts): a transaction adds to the shard
// its pooled Tx was assigned at construction, so commit accounting from
// different workers lands on different cache lines instead of bouncing one
// shared line across every core, and snapshot() folds the shards.
type runtimeStats struct {
	commits         *metrics.ShardedCounter
	readOnlyCommits *metrics.ShardedCounter
	aborts          *metrics.ShardedCounter
	userAborts      *metrics.ShardedCounter
	extensions      *metrics.ShardedCounter
	retryWaits      *metrics.ShardedCounter
	conflicts       [conflictKinds]*metrics.ShardedCounter

	// Conflict-profile accumulators (see Runtime.noteCommit): set-size sums
	// over committed attempts, and popcount sums of committed write
	// signatures and of their overlap against the rolling aggregate.
	readSetSum  *metrics.ShardedCounter
	writeSetSum *metrics.ShardedCounter
	sigBits     *metrics.ShardedCounter
	sigOverlap  *metrics.ShardedCounter
}

// newRuntimeStats sizes every counter to the scheduler's parallelism: more
// shards than runnable goroutines buys nothing, and the count is rounded to
// a power of two internally.
func newRuntimeStats() runtimeStats {
	shards := runtime.GOMAXPROCS(0)
	rs := runtimeStats{
		commits:         metrics.NewShardedCounter(shards),
		readOnlyCommits: metrics.NewShardedCounter(shards),
		aborts:          metrics.NewShardedCounter(shards),
		userAborts:      metrics.NewShardedCounter(shards),
		extensions:      metrics.NewShardedCounter(shards),
		retryWaits:      metrics.NewShardedCounter(shards),
		readSetSum:      metrics.NewShardedCounter(shards),
		writeSetSum:     metrics.NewShardedCounter(shards),
		sigBits:         metrics.NewShardedCounter(shards),
		sigOverlap:      metrics.NewShardedCounter(shards),
	}
	for k := range rs.conflicts {
		rs.conflicts[k] = metrics.NewShardedCounter(shards)
	}
	return rs
}

// Stats is an immutable snapshot of a Runtime's counters.
type Stats struct {
	// Commits counts successfully committed transactions, including
	// read-only ones.
	Commits uint64
	// ReadOnlyCommits counts commits that wrote nothing.
	ReadOnlyCommits uint64
	// Aborts counts attempts rolled back due to conflicts (each retry of the
	// same atomic block counts once).
	Aborts uint64
	// UserAborts counts atomic blocks abandoned because the user function
	// returned an error.
	UserAborts uint64
	// Extensions counts successful read-version extensions.
	Extensions uint64
	// RetryWaits counts Tx.Retry blocks that woke and re-executed.
	RetryWaits uint64
	// Conflicts breaks Aborts down by cause.
	Conflicts map[ConflictKind]uint64

	// ReadSetSum is the total read-set (TL2) plus value-log (NOrec) entries
	// across committed attempts; WriteSetSum the total write-set entries
	// across committed writers. SigBits/SigOverlap are popcount sums of
	// committed write signatures and of their overlap with the rolling
	// signature aggregate — the raw material of ConflictProfile.
	ReadSetSum  uint64
	WriteSetSum uint64
	SigBits     uint64
	SigOverlap  uint64
}

// AbortRatio returns aborts / (commits + aborts), the wasted-work measure
// used by abort-ratio-driven tuners in the related work.
func (s Stats) AbortRatio() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// String renders the snapshot compactly.
func (s Stats) String() string {
	return fmt.Sprintf("commits=%d (ro=%d) aborts=%d (ratio=%.3f) user-aborts=%d extensions=%d",
		s.Commits, s.ReadOnlyCommits, s.Aborts, s.AbortRatio(), s.UserAborts, s.Extensions)
}

func (rs *runtimeStats) snapshot() Stats {
	out := Stats{
		Commits:         rs.commits.Sum(),
		ReadOnlyCommits: rs.readOnlyCommits.Sum(),
		Aborts:          rs.aborts.Sum(),
		UserAborts:      rs.userAborts.Sum(),
		Extensions:      rs.extensions.Sum(),
		RetryWaits:      rs.retryWaits.Sum(),
		Conflicts:       make(map[ConflictKind]uint64, int(conflictKinds)),
		ReadSetSum:      rs.readSetSum.Sum(),
		WriteSetSum:     rs.writeSetSum.Sum(),
		SigBits:         rs.sigBits.Sum(),
		SigOverlap:      rs.sigOverlap.Sum(),
	}
	for k := ConflictKind(0); k < conflictKinds; k++ {
		if n := rs.conflicts[k].Sum(); n > 0 {
			out.Conflicts[k] = n
		}
	}
	return out
}

func (rs *runtimeStats) reset() {
	rs.commits.Reset()
	rs.readOnlyCommits.Reset()
	rs.aborts.Reset()
	rs.userAborts.Reset()
	rs.extensions.Reset()
	rs.retryWaits.Reset()
	rs.readSetSum.Reset()
	rs.writeSetSum.Reset()
	rs.sigBits.Reset()
	rs.sigOverlap.Reset()
	for k := range rs.conflicts {
		rs.conflicts[k].Reset()
	}
}
