package stm

import (
	"fmt"
	"sync/atomic"
)

// runtimeStats aggregates counters across all transactions of a Runtime.
// Counters are updated with atomic adds on hot paths only where the paper's
// instrumentation would (commits/aborts); per-read costs are avoided.
type runtimeStats struct {
	commits         atomic.Uint64
	readOnlyCommits atomic.Uint64
	aborts          atomic.Uint64
	userAborts      atomic.Uint64
	extensions      atomic.Uint64
	retryWaits      atomic.Uint64
	conflicts       [conflictKinds]atomic.Uint64
}

// Stats is an immutable snapshot of a Runtime's counters.
type Stats struct {
	// Commits counts successfully committed transactions, including
	// read-only ones.
	Commits uint64
	// ReadOnlyCommits counts commits that wrote nothing.
	ReadOnlyCommits uint64
	// Aborts counts attempts rolled back due to conflicts (each retry of the
	// same atomic block counts once).
	Aborts uint64
	// UserAborts counts atomic blocks abandoned because the user function
	// returned an error.
	UserAborts uint64
	// Extensions counts successful read-version extensions.
	Extensions uint64
	// RetryWaits counts Tx.Retry blocks that woke and re-executed.
	RetryWaits uint64
	// Conflicts breaks Aborts down by cause.
	Conflicts map[ConflictKind]uint64
}

// AbortRatio returns aborts / (commits + aborts), the wasted-work measure
// used by abort-ratio-driven tuners in the related work.
func (s Stats) AbortRatio() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// String renders the snapshot compactly.
func (s Stats) String() string {
	return fmt.Sprintf("commits=%d (ro=%d) aborts=%d (ratio=%.3f) user-aborts=%d extensions=%d",
		s.Commits, s.ReadOnlyCommits, s.Aborts, s.AbortRatio(), s.UserAborts, s.Extensions)
}

func (rs *runtimeStats) snapshot() Stats {
	out := Stats{
		Commits:         rs.commits.Load(),
		ReadOnlyCommits: rs.readOnlyCommits.Load(),
		Aborts:          rs.aborts.Load(),
		UserAborts:      rs.userAborts.Load(),
		Extensions:      rs.extensions.Load(),
		RetryWaits:      rs.retryWaits.Load(),
		Conflicts:       make(map[ConflictKind]uint64, int(conflictKinds)),
	}
	for k := ConflictKind(0); k < conflictKinds; k++ {
		if n := rs.conflicts[k].Load(); n > 0 {
			out.Conflicts[k] = n
		}
	}
	return out
}

func (rs *runtimeStats) reset() {
	rs.commits.Store(0)
	rs.readOnlyCommits.Store(0)
	rs.aborts.Store(0)
	rs.userAborts.Store(0)
	rs.extensions.Store(0)
	rs.retryWaits.Store(0)
	for k := range rs.conflicts {
		rs.conflicts[k].Store(0)
	}
}
