package stm

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements range-sharded transactional memory: a ShardedRuntime
// is a power-of-two array of fully independent Runtimes, each with its own
// TL2 commit clock, lock words, and NOrec sequence lock. Single-shard
// transactions — the overwhelming majority under a keyed workload — run on
// their shard's Runtime untouched and never contend on another shard's
// clock or seqlock, which is what removes the single-global-word commit
// ceiling the parallel benchmarks plateau on (DESIGN.md §14).
//
// Transactions that genuinely span shards pay for it explicitly through
// AtomicAcross: a two-phase commit that validates every sub-transaction's
// reads at one point in time and merges the participating TL2 clocks to a
// single commit timestamp (raiseTo), so cross-shard serializability is
// preserved without slowing the single-shard fast path at all. Cross-shard
// transactions serialize among themselves on one mutex — the deliberate
// cost model: spanning shards is the rare case and pays; staying inside a
// shard is the common case and does not.

// ErrCrossShardDurable is returned by AtomicAcross when any shard has a
// CommitSink attached. The WAL draws its commit sequence numbers inside one
// runtime's commit critical section; a cross-shard commit has no single
// critical section, so durable deployments must keep transactions
// single-shard (or shard the log itself — see internal/wal's scale-out
// notes).
var ErrCrossShardDurable = errors.New("stm: cross-shard transactions are not supported while a commit sink is attached")

// ShardedRuntime partitions transactional state across independent
// per-shard Runtimes. Route single-shard work with AtomicKey/AtomicROKey
// (or Shard/ForKey for direct access); span shards with AtomicAcross. A Var
// belongs to exactly one shard for its lifetime: every transactional access
// to it must go through that shard's Runtime (containers handle the routing
// — see container.ShardedHashMap).
type ShardedRuntime struct {
	shards []*Runtime
	shift  uint // ShardFor uses the hash's top bits: index = hash >> shift

	// crossMu serializes cross-shard transactions against each other, which
	// removes cross-cross deadlock and validation races by construction.
	// Single-shard transactions never touch it.
	crossMu      sync.Mutex
	crossPool    sync.Pool
	crossCommits atomic.Uint64
}

// NewSharded returns a runtime with n independent shards (rounded up to a
// power of two, minimum 1), each configured with cfg.
func NewSharded(n int, cfg Config) *ShardedRuntime {
	if n < 1 {
		n = 1
	}
	size := 1 << bits.Len(uint(n-1))
	if size < n {
		size = n // unreachable; defensive
	}
	sr := &ShardedRuntime{
		shards: make([]*Runtime, size),
		shift:  uint(64 - bits.Len(uint(size-1))),
	}
	if size == 1 {
		sr.shift = 64
	}
	for i := range sr.shards {
		sr.shards[i] = New(cfg)
	}
	sr.crossPool.New = func() any {
		return &CrossTx{sr: sr, txs: make([]*Tx, len(sr.shards))}
	}
	return sr
}

// Shards reports the shard count.
func (sr *ShardedRuntime) Shards() int { return len(sr.shards) }

// Shard returns shard i's Runtime for direct use (statistics, engine
// switches, or running transactions known to be confined to it).
func (sr *ShardedRuntime) Shard(i int) *Runtime { return sr.shards[i] }

// ShardFor maps a key to its owning shard index (Fibonacci hash on the top
// bits, so dense int64 key spaces spread evenly).
//
//rubic:noalloc
func (sr *ShardedRuntime) ShardFor(key uint64) int {
	if sr.shift >= 64 {
		return 0
	}
	return int((key * 0x9E3779B97F4A7C15) >> sr.shift)
}

// ForKey returns the Runtime owning key.
//
//rubic:noalloc
func (sr *ShardedRuntime) ForKey(key uint64) *Runtime {
	return sr.shards[sr.ShardFor(key)]
}

// AtomicKey runs fn as a transaction on key's shard: the single-shard fast
// path, identical in cost to a plain Runtime.Atomic.
func (sr *ShardedRuntime) AtomicKey(key uint64, fn func(tx *Tx) error) error {
	return sr.ForKey(key).Atomic(fn)
}

// AtomicROKey is AtomicKey's read-only form.
func (sr *ShardedRuntime) AtomicROKey(key uint64, fn func(tx *Tx) error) error {
	return sr.ForKey(key).AtomicRO(fn)
}

// SwitchEngine switches every shard to the given engine. Cross-shard
// transactions are held off for the sweep so they always observe a uniform
// engine set; single-shard traffic drains per shard exactly as in
// Runtime.SwitchEngine.
func (sr *ShardedRuntime) SwitchEngine(to Algorithm) {
	sr.crossMu.Lock()
	defer sr.crossMu.Unlock()
	for _, rt := range sr.shards {
		rt.SwitchEngine(to)
	}
}

// SetContentionManager installs cm on every shard.
func (sr *ShardedRuntime) SetContentionManager(cm ContentionManager) {
	for _, rt := range sr.shards {
		rt.SetContentionManager(cm)
	}
}

// Stats folds every shard's counters into one snapshot.
func (sr *ShardedRuntime) Stats() Stats {
	var total Stats
	total.Conflicts = make(map[ConflictKind]uint64)
	for _, rt := range sr.shards {
		s := rt.Stats()
		total.Commits += s.Commits
		total.ReadOnlyCommits += s.ReadOnlyCommits
		total.Aborts += s.Aborts
		total.UserAborts += s.UserAborts
		total.Extensions += s.Extensions
		total.RetryWaits += s.RetryWaits
		total.ReadSetSum += s.ReadSetSum
		total.WriteSetSum += s.WriteSetSum
		total.SigBits += s.SigBits
		total.SigOverlap += s.SigOverlap
		for k, v := range s.Conflicts {
			total.Conflicts[k] += v
		}
	}
	return total
}

// CrossCommits reports committed cross-shard transactions, for telemetry
// and tests.
func (sr *ShardedRuntime) CrossCommits() uint64 { return sr.crossCommits.Load() }

// seqHold records one NOrec shard sequence lock held by a cross-shard
// commit: the runtime and the even sequence value it was acquired at.
type seqHold struct {
	rt *Runtime
	s  uint64
}

// CrossTx is the handle of one cross-shard transaction attempt. On(i)
// returns the sub-transaction bound to shard i, creating it on first use;
// Var accesses go through the sub-transaction of the Var's owning shard.
// Every sub-transaction records its reads — even on shards it only reads —
// because the combined commit point is later than any individual snapshot
// and all of them must be revalidated there (the cross-shard anomaly a
// quiet read-only sub-commit would admit: observing shard A after a
// spanning writer and shard B before it).
type CrossTx struct {
	sr      *ShardedRuntime
	txs     []*Tx
	used    []int
	order   []int // used, sorted ascending: the lock-acquisition order
	holds   []seqHold
	attempt int
}

// On returns the sub-transaction for shard i, entering the shard's switch
// gate and starting the transaction on first use.
func (cx *CrossTx) On(i int) *Tx {
	if tx := cx.txs[i]; tx != nil {
		return tx
	}
	rt := cx.sr.shards[i]
	tx := rt.txPool.Get().(*Tx)
	// Cross-shard sub-transactions are never read-only: their read sets are
	// the evidence the combined commit validates.
	tx.readOnly = false
	tx.work.Store(0)
	tx.ts.Store(rt.tsc.Add(1))
	rt.enter(tx.shard)
	tx.attempt = cx.attempt
	tx.reset()
	cx.txs[i] = tx
	cx.used = append(cx.used, i)
	return tx
}

// AtomicAcross runs fn as one transaction spanning any number of shards,
// retrying on conflicts until it commits, fn errors, or the per-shard
// retry limit is exhausted. fn addresses shards through cx.On(i) and must
// route every Var access through its owning shard's sub-transaction.
// Tx.Retry is not supported inside fn. Nested AtomicAcross deadlocks (one
// mutex serializes all spanning transactions); single-shard Atomic calls
// from other goroutines proceed concurrently and conflict only through the
// ordinary per-location protocols.
func (sr *ShardedRuntime) AtomicAcross(fn func(cx *CrossTx) error) error {
	for _, rt := range sr.shards {
		if rt.sinkAtom.Load() != nil {
			return ErrCrossShardDurable
		}
	}
	sr.crossMu.Lock()
	defer sr.crossMu.Unlock()
	cx := sr.crossPool.Get().(*CrossTx)
	defer sr.crossPool.Put(cx)
	maxRetries := sr.shards[0].cfg.MaxRetries
	for attempt := 0; ; attempt++ {
		if maxRetries > 0 && attempt >= maxRetries {
			return fmt.Errorf("%w (after %d attempts)", ErrTooManyRetries, attempt)
		}
		if attempt > 0 {
			backoffSpin(attempt)
		}
		cx.attempt = attempt
		userErr, conflicted := cx.execute(fn)
		if conflicted {
			cx.finishAttempt(false)
			continue
		}
		if userErr != nil {
			cx.rollbackAll(ConflictValidation, false)
			for _, i := range cx.used {
				tx := cx.txs[i]
				tx.rt.stats.userAborts.Add(tx.shard, 1)
			}
			cx.finishAttempt(false)
			return userErr
		}
		if cx.commitAll() {
			cx.finishAttempt(true)
			sr.crossCommits.Add(1)
			return nil
		}
		cx.finishAttempt(false)
	}
}

// execute runs one attempt of fn, converting conflict panics from any
// sub-transaction into a rolled-back retry indication.
func (cx *CrossTx) execute(fn func(cx *CrossTx) error) (userErr error, conflicted bool) {
	defer func() {
		if r := recover(); r != nil {
			if sig, ok := r.(conflictSignal); ok {
				cx.rollbackAll(sig.reason, true)
				conflicted = true
				return
			}
			// Not a conflict: roll back and release everything before the
			// panic escapes (the single-shard path's deferred exit/release).
			cx.rollbackAll(ConflictValidation, false)
			cx.finishAttempt(false)
			if _, ok := r.(retrySignal); ok {
				panic("stm: Tx.Retry is not supported in cross-shard transactions")
			}
			panic(r)
		}
	}()
	return fn(cx), false
}

// rollbackAll rolls back every live sub-transaction. When countAbort is
// set, each participating shard's abort counter is bumped and the conflict
// cause recorded (mirroring the single-shard retry loop's accounting).
func (cx *CrossTx) rollbackAll(kind ConflictKind, countAbort bool) {
	for _, i := range cx.used {
		tx := cx.txs[i]
		if tx.status.Load() == txActive || tx.status.Load() == txDoomed {
			tx.rollback()
		}
		if countAbort {
			tx.rt.stats.aborts.Add(tx.shard, 1)
			tx.rt.stats.conflicts[kind].Add(tx.shard, 1)
		}
	}
}

// finishAttempt releases every sub-transaction back to its shard: exits the
// switch gates and returns the Tx contexts to their pools. On committed
// attempts the per-shard commit statistics are recorded first.
func (cx *CrossTx) finishAttempt(committed bool) {
	for _, i := range cx.used {
		tx := cx.txs[i]
		rt := tx.rt
		if committed {
			rt.stats.commits.Add(tx.shard, 1)
			if len(tx.writes) == 0 {
				rt.stats.readOnlyCommits.Add(tx.shard, 1)
			}
			rt.noteCommit(tx)
		}
		rt.exit(tx.shard)
		rt.release(tx)
		cx.txs[i] = nil
	}
	cx.used = cx.used[:0]
	cx.order = cx.order[:0]
	cx.holds = cx.holds[:0]
}

// commitAll is the combined commit: one point in time at which every
// sub-transaction's reads are valid and every write becomes visible with a
// single merged timestamp.
//
// Phase one pins every participating NOrec shard by acquiring its sequence
// lock in ascending shard order (deadlock-free: single-shard commits hold
// at most their own, and cross commits are serialized by crossMu) and
// validates each NOrec value log under it. TL2 sub-transactions already
// hold their write locks encounter-time; their read sets are validated
// exactly (no quiet-path shortcut — the per-shard clocks advance
// independently, so a quiet inference on one shard says nothing about the
// others).
//
// Phase two draws a write version from each written TL2 shard's clock,
// merges them to a single timestamp (max), raises every participating
// clock to it, flips each sub-transaction to committed, and writes back:
// TL2 locations carry the merged version, NOrec shards bump their sequence
// locks by two in reverse order. Any validation or doom failure releases
// the sequence locks at their pre-acquisition values and rolls back.
func (cx *CrossTx) commitAll() bool {
	// Deterministic shard order for lock acquisition.
	cx.order = append(cx.order[:0], cx.used...)
	sort.Ints(cx.order)
	failed := false
	var failKind ConflictKind
	// Phase 1a: doom check before taking any shared locks.
	for _, i := range cx.order {
		if cx.txs[i].status.Load() == txDoomed {
			failed, failKind = true, ConflictDoomed
			break
		}
	}
	// Phase 1b: pin NOrec shards (ascending), validating value logs.
	if !failed {
		for _, i := range cx.order {
			tx := cx.txs[i]
			rt := tx.rt
			if rt.engine() != NOrec {
				continue
			}
			acquired := false
			for !acquired {
				s := rt.norec.waitEven()
				if s != tx.rv && !tx.revalidateNorecAt(s) {
					failed, failKind = true, ConflictValidation
					break
				}
				if rt.norec.seq.CompareAndSwap(s, s+1) {
					cx.holds = append(cx.holds, seqHold{rt: rt, s: s})
					acquired = true
				}
			}
			if failed {
				break
			}
		}
	}
	// Phase 1c: validate every TL2 read set (read-only sub-transactions
	// included — their snapshots must hold at this combined commit point).
	if !failed {
		for _, i := range cx.order {
			tx := cx.txs[i]
			if tx.rt.engine() == NOrec {
				continue
			}
			if !tx.validateReads() {
				failed, failKind = true, ConflictValidation
				break
			}
		}
	}
	// Phase 2a: merged commit timestamp over written TL2 shards.
	var merged uint64
	if !failed {
		for _, i := range cx.order {
			tx := cx.txs[i]
			if tx.rt.engine() == NOrec || len(tx.writes) == 0 {
				continue
			}
			if wv := tx.rt.clock.tick(); wv > merged {
				merged = wv
			}
		}
		for _, i := range cx.order {
			tx := cx.txs[i]
			if tx.rt.engine() == NOrec || len(tx.writes) == 0 {
				continue
			}
			tx.rt.clock.raiseTo(merged)
		}
		// Phase 2b: commit point — flip every sub-transaction.
		for _, i := range cx.order {
			if !cx.txs[i].status.CompareAndSwap(txActive, txCommitted) {
				failed, failKind = true, ConflictDoomed
				break
			}
		}
	}
	if failed {
		// Release pinned sequence locks at their pre-acquisition values (no
		// writer entered: readers saw the odd value and simply retried) and
		// roll back. Sub-transactions already flipped to committed published
		// nothing yet; rollback restores their locks like any abort.
		for h := len(cx.holds) - 1; h >= 0; h-- {
			hold := cx.holds[h]
			// The release must keep the seqlock protocol: the CAS acquired
			// it in this function's phase 1b; this store undoes it.
			hold.rt.norec.seq.Store(hold.s)
		}
		cx.holds = cx.holds[:0]
		for _, i := range cx.order {
			tx := cx.txs[i]
			if st := tx.status.Load(); st == txCommitted {
				tx.status.Store(txActive) // restore so rollback paths agree
			}
			tx.rollback()
			tx.rt.stats.aborts.Add(tx.shard, 1)
			tx.rt.stats.conflicts[failKind].Add(tx.shard, 1)
		}
		return false
	}
	// Phase 2c: write-back. TL2 shards publish under the merged timestamp;
	// NOrec shards publish under their held sequence locks.
	for _, i := range cx.order {
		tx := cx.txs[i]
		if tx.rt.engine() == NOrec {
			for w := range tx.writes {
				e := &tx.writes[w]
				e.base.val.Store(e.valp)
				e.base.meta.Add(1 << 1)
			}
			continue
		}
		for w := range tx.writes {
			e := &tx.writes[w]
			e.base.val.Store(e.valp)
			e.base.owner.Store(nil)
			e.base.meta.Store(merged << 1)
		}
	}
	for h := len(cx.holds) - 1; h >= 0; h-- {
		hold := cx.holds[h]
		hold.rt.norec.seq.Store(hold.s + 2)
	}
	cx.holds = cx.holds[:0]
	return true
}
