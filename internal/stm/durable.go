package stm

// This file is the runtime's durability hook (DESIGN.md §13): an attached
// CommitSink observes every committed writer transaction that touched at
// least one durable location. The runtime itself knows nothing about disks,
// framing or fsync — internal/wal implements the sink; the contract here is
// purely about ordering:
//
//   - BeginCommit is called inside the commit critical section — after the
//     transaction has irrevocably won its commit (TL2: the status CAS has
//     succeeded and every write lock is still held; NOrec: the global
//     sequence lock is held). A dependent transaction can only read or
//     overwrite this transaction's locations after that critical section
//     ends, and it draws its own CSN before ending its own — so commit
//     sequence numbers are monotone along every read-from and
//     overwrite dependency. Replaying records in CSN order therefore
//     reconstructs a state every prefix of which is consistent.
//   - Publish is called after the critical section (locks released), handing
//     over the publication boxes. Boxes are immutable once published and
//     never recycled, so the sink may encode them at leisure on another
//     goroutine. The ops slice itself is only valid for the duration of the
//     call (it is pooled with the Tx).
//   - WaitDurable is called last, outside all locks, and may block (group
//     commit with a synchronous fsync policy) or return immediately
//     (asynchronous policies).
//
// Read-only transactions and transactions whose write set contains no
// durable location never touch the sink; the only cost the hook adds to a
// non-durable writer commit is one atomic pointer load.

// DurableOp is one durable write within a committed transaction: the
// location's stable durable identity (assigned via Var.MarkDurable) and its
// publication box. The box is immutable after publication, so holding the
// pointer is safe indefinitely; the containing slice is not.
type DurableOp struct {
	ID  uint64
	Box *any
}

// CommitSink receives the durable write-sets of committed transactions in
// commit order. Implementations must be safe for concurrent use: BeginCommit
// runs inside commit critical sections on many goroutines at once, and
// Publish calls for different transactions may arrive out of CSN order (the
// critical sections end in CSN order, but the publishing goroutines race).
type CommitSink interface {
	// BeginCommit assigns the next commit sequence number. It is called with
	// the committing transaction's locks held and must be wait-free.
	BeginCommit() uint64

	// Publish hands over the committed durable writes for csn. ops is valid
	// only for the duration of the call; the boxes it references are
	// immutable and may be retained.
	Publish(csn uint64, ops []DurableOp)

	// WaitDurable blocks until csn is durable under the sink's policy (or
	// durability has been lost and the sink chooses not to block). It is
	// called outside all transaction locks.
	WaitDurable(csn uint64)
}

// AttachCommitSink installs (or, with nil, removes) the runtime's commit
// sink. Attach before concurrent transactions start: commits that overlap
// the attachment may or may not be observed, and the sink's CSN sequence
// only covers commits that load the new pointer.
func (rt *Runtime) AttachCommitSink(s CommitSink) {
	if s == nil {
		rt.sinkAtom.Store(nil)
		return
	}
	rt.sinkAtom.Store(&s)
}

// beginDurable collects the transaction's durable writes and, if there are
// any and a sink is attached, draws the commit sequence number. It must be
// called inside the commit critical section (see the package comment above);
// the write-set scan costs nothing when no sink is attached.
//
//rubic:noalloc
func (tx *Tx) beginDurable() {
	sp := tx.rt.sinkAtom.Load()
	if sp == nil {
		return
	}
	tx.durOps = tx.durOps[:0]
	for i := range tx.writes {
		if id := tx.writes[i].base.durID; id != 0 {
			//lint:ignore rubic/noalloc durable-op capacity is retained across pooled reuse; growth amortizes to zero
			tx.durOps = append(tx.durOps, DurableOp{ID: id, Box: tx.writes[i].valp})
		}
	}
	if len(tx.durOps) == 0 {
		return
	}
	tx.sink = *sp
	tx.csn = tx.sink.BeginCommit()
}

// publishDurable hands the collected durable writes to the sink. Called
// after the commit critical section ends.
func (tx *Tx) publishDurable() {
	if tx.sink == nil {
		return
	}
	tx.sink.Publish(tx.csn, tx.durOps)
}

// waitDurable blocks until the committed transaction is durable under the
// sink's fsync policy. Called from Runtime.run with nothing held.
func (tx *Tx) waitDurable() {
	if tx.sink == nil {
		return
	}
	tx.sink.WaitDurable(tx.csn)
	tx.sink = nil
	tx.csn = 0
}
