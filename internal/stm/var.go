package stm

import (
	"runtime"
	"sync/atomic"
)

// lockedBit marks a varBase metadata word as write-locked. The remaining
// bits hold the location's commit version shifted left by one.
const lockedBit uint64 = 1

// varBase is the runtime representation of one transactional location: a
// versioned write-lock (meta), the owning transaction while locked, and the
// current value. It is the Go analogue of a SwissTM ownership record fused
// with its data word.
//
// Invariants:
//   - meta is either version<<1 (unlocked) or version<<1|lockedBit (locked,
//     version preserved from before the acquisition).
//   - While the locked bit is set, owner is nil only transiently (between
//     the acquiring CAS and the owner store, or between the owner clear and
//     the releasing store); readers observing nil simply retry.
//   - val is written only by the lock holder during commit write-back, and
//     is published with a fresh allocation so concurrent optimistic readers
//     never observe a torn value.
type varBase struct {
	meta  atomic.Uint64
	owner atomic.Pointer[Tx]
	val   atomic.Pointer[any]

	// durID is the location's stable durable identity (0 = not durable).
	// Written only during quiescent registration (Var.MarkDurable) before
	// concurrent transactions start; read by every commit while a CommitSink
	// is attached.
	durID uint64
}

func (b *varBase) init(v any) {
	p := new(any)
	*p = v
	b.val.Store(p)
}

// sampleSpinBudget is how many times sampleConsistent re-polls a locked
// location before starting to yield. A commit write-back holds a lock for
// tens of nanoseconds, so a short spin almost always suffices; past the
// budget the owner is evidently descheduled and burning the core would only
// keep it off the processor (on GOMAXPROCS=1 a pure spin never terminates).
const sampleSpinBudget = 64

// sampleConsistent performs a lock-free consistent read of (value, version)
// outside any transaction, retrying across concurrent commits. A locked
// location is re-polled up to sampleSpinBudget times, then each further
// probe yields the processor so the lock owner can run and release.
func (b *varBase) sampleConsistent() (any, uint64) {
	for spins := 0; ; spins++ {
		m1 := b.meta.Load()
		if m1&lockedBit != 0 {
			if spins >= sampleSpinBudget {
				runtime.Gosched()
			}
			continue
		}
		p := b.val.Load()
		m2 := b.meta.Load()
		if m1 == m2 {
			return *p, m1 >> 1
		}
	}
}

// Var is a typed transactional variable. All access from concurrent code
// must go through a transaction (Read/Write); Peek and Set are provided for
// quiescent phases such as initialization and post-run verification.
type Var[T any] struct {
	base varBase
}

// NewVar returns a transactional variable holding init.
func NewVar[T any](init T) *Var[T] {
	v := &Var[T]{}
	v.base.init(init)
	return v
}

// Read returns the variable's value as seen by tx, recording the read for
// commit-time validation. It panics with an internal conflict signal (caught
// by Runtime.Atomic, which retries the transaction) when a consistent value
// cannot be obtained.
func (v *Var[T]) Read(tx *Tx) T {
	return tx.read(&v.base).(T)
}

// Write buffers a new value for the variable in tx. The write lock is
// acquired eagerly (SwissTM style); the value itself is published only if
// the transaction commits.
func (v *Var[T]) Write(tx *Tx, val T) {
	tx.write(&v.base, val)
}

// Peek returns the variable's current committed value without a transaction.
// The read is individually consistent but carries no ordering guarantee with
// respect to other variables; use it only outside transactional phases.
func (v *Var[T]) Peek() T {
	val, _ := v.base.sampleConsistent()
	return val.(T)
}

// Set stores a value without a transaction. It must only be used while no
// transaction can access the variable (e.g. single-threaded initialization);
// concurrent transactional use would bypass conflict detection.
func (v *Var[T]) Set(val T) {
	v.base.init(val)
}

// Version returns the variable's current commit version, mainly for tests
// and diagnostics.
func (v *Var[T]) Version() uint64 {
	_, ver := v.base.sampleConsistent()
	return ver
}

// MarkDurable assigns the variable a stable durable identity: committed
// writes to it are handed to the runtime's CommitSink under this ID, and
// recovery addresses it by the same ID. IDs must be nonzero, unique within a
// log, and stable across process restarts (derive them from the workload's
// own structure, not from allocation order of unrelated objects). Call only
// during quiescent phases — registration races with running transactions are
// not detected.
func (v *Var[T]) MarkDurable(id uint64) {
	if id == 0 {
		panic("stm: durable ID must be nonzero")
	}
	v.base.durID = id
}

// DurableID returns the identity assigned by MarkDurable, or 0.
func (v *Var[T]) DurableID() uint64 { return v.base.durID }
