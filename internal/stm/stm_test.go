package stm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestReadWriteSingleTx(t *testing.T) {
	rt := New(Config{})
	x := NewVar(10)
	err := rt.Atomic(func(tx *Tx) error {
		if got := x.Read(tx); got != 10 {
			t.Errorf("initial read = %d, want 10", got)
		}
		x.Write(tx, 42)
		if got := x.Read(tx); got != 42 {
			t.Errorf("read-own-write = %d, want 42", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if got := x.Peek(); got != 42 {
		t.Fatalf("Peek after commit = %d, want 42", got)
	}
}

func TestUserErrorRollsBack(t *testing.T) {
	rt := New(Config{})
	x := NewVar("before")
	sentinel := errors.New("boom")
	err := rt.Atomic(func(tx *Tx) error {
		x.Write(tx, "after")
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Atomic err = %v, want %v", err, sentinel)
	}
	if got := x.Peek(); got != "before" {
		t.Fatalf("value after user abort = %q, want %q", got, "before")
	}
	if s := rt.Stats(); s.UserAborts != 1 || s.Commits != 0 {
		t.Fatalf("stats = %+v, want 1 user abort, 0 commits", s)
	}
}

func TestPanicReleasesLocks(t *testing.T) {
	rt := New(Config{})
	x := NewVar(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic to propagate")
			}
		}()
		_ = rt.Atomic(func(tx *Tx) error {
			x.Write(tx, 2)
			panic("user panic")
		})
	}()
	// The lock must have been released: a fresh transaction must succeed.
	if err := rt.Atomic(func(tx *Tx) error { x.Write(tx, 3); return nil }); err != nil {
		t.Fatalf("Atomic after panic: %v", err)
	}
	if got := x.Peek(); got != 3 {
		t.Fatalf("value = %d, want 3", got)
	}
}

func TestReadOnlyWritePanics(t *testing.T) {
	rt := New(Config{})
	x := NewVar(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on write in read-only tx")
		}
	}()
	_ = rt.AtomicRO(func(tx *Tx) error {
		x.Write(tx, 1)
		return nil
	})
}

func TestCounterConcurrent(t *testing.T) {
	for _, cm := range []ContentionManager{SuicideCM{}, BackoffCM{}, GreedyCM{}, TwoPhaseCM{}} {
		cm := cm
		t.Run(cm.Name(), func(t *testing.T) {
			rt := New(Config{CM: cm})
			x := NewVar(0)
			const goroutines = 8
			const perG = 200
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						err := rt.Atomic(func(tx *Tx) error {
							x.Write(tx, x.Read(tx)+1)
							return nil
						})
						if err != nil {
							t.Errorf("Atomic: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if got := x.Peek(); got != goroutines*perG {
				t.Fatalf("counter = %d, want %d", got, goroutines*perG)
			}
			if s := rt.Stats(); s.Commits != goroutines*perG {
				t.Fatalf("commits = %d, want %d", s.Commits, goroutines*perG)
			}
		})
	}
}

// TestInvariantTransfer checks snapshot isolation: concurrent transfers
// between two accounts always preserve the total.
func TestInvariantTransfer(t *testing.T) {
	rt := New(Config{})
	const total = 1000
	a := NewVar(total)
	b := NewVar(0)
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup

	// Writers move money back and forth.
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 300; i++ {
				err := rt.Atomic(func(tx *Tx) error {
					av, bv := a.Read(tx), b.Read(tx)
					amount := (i*7+g)%20 + 1
					if g%2 == 0 && av >= amount {
						a.Write(tx, av-amount)
						b.Write(tx, bv+amount)
					} else if bv >= amount {
						b.Write(tx, bv-amount)
						a.Write(tx, av+amount)
					}
					return nil
				})
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(g)
	}
	// Readers must always observe a consistent total.
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := rt.AtomicRO(func(tx *Tx) error {
					if sum := a.Read(tx) + b.Read(tx); sum != total {
						t.Errorf("observed total %d, want %d", sum, total)
					}
					return nil
				})
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if sum := a.Peek() + b.Peek(); sum != total {
		t.Fatalf("final total = %d, want %d", sum, total)
	}
}

func TestMaxRetries(t *testing.T) {
	rt := New(Config{MaxRetries: 3})
	x := NewVar(0)

	// Hold a lock from another "transaction" by doctoring a competitor Tx.
	blocker := &Tx{rt: rt}
	blocker.reset()
	blocker.write(&x.base, 99)

	err := rt.Atomic(func(tx *Tx) error {
		x.Write(tx, 1)
		return nil
	})
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
	blocker.rollback()
	if err := rt.Atomic(func(tx *Tx) error { x.Write(tx, 1); return nil }); err != nil {
		t.Fatalf("after unlock: %v", err)
	}
}

func TestGreedyOlderWins(t *testing.T) {
	rt := New(Config{CM: GreedyCM{}})
	x := NewVar(0)

	older := &Tx{rt: rt}
	older.ts.Store(1)
	older.reset()
	younger := &Tx{rt: rt}
	younger.ts.Store(2)
	younger.reset()
	younger.write(&x.base, 5)

	cm := GreedyCM{}
	if cm.ShouldAbort(older, younger) {
		t.Fatal("older attacker should not abort")
	}
	if younger.status.Load() != txDoomed {
		t.Fatal("younger owner should have been doomed")
	}
	if !cm.ShouldAbort(younger, older) {
		t.Fatal("younger attacker should abort")
	}
	younger.rollback()
}

func TestVersionClockAdvancesOnlyOnWriteCommit(t *testing.T) {
	rt := New(Config{})
	x := NewVar(0)
	v0 := rt.GlobalVersion()
	_ = rt.AtomicRO(func(tx *Tx) error { _ = x.Read(tx); return nil })
	if rt.GlobalVersion() != v0 {
		t.Fatal("read-only commit advanced the clock")
	}
	_ = rt.Atomic(func(tx *Tx) error { x.Write(tx, 1); return nil })
	if rt.GlobalVersion() != v0+1 {
		t.Fatalf("clock = %d, want %d", rt.GlobalVersion(), v0+1)
	}
}

func TestStatsSnapshotAndReset(t *testing.T) {
	rt := New(Config{})
	x := NewVar(0)
	for i := 0; i < 5; i++ {
		_ = rt.Atomic(func(tx *Tx) error { x.Write(tx, i); return nil })
	}
	s := rt.Stats()
	if s.Commits != 5 {
		t.Fatalf("commits = %d, want 5", s.Commits)
	}
	rt.ResetStats()
	if s := rt.Stats(); s.Commits != 0 || s.Aborts != 0 {
		t.Fatalf("stats after reset = %+v, want zeros", s)
	}
}

// TestQuickSequentialSemantics property: any sequence of transactional
// increments and assignments applied to a Var matches a plain sequential
// model.
func TestQuickSequentialSemantics(t *testing.T) {
	f := func(ops []int16) bool {
		rt := New(Config{})
		x := NewVar(0)
		model := 0
		for _, op := range ops {
			v := int(op)
			if v%2 == 0 {
				model += v
				_ = rt.Atomic(func(tx *Tx) error {
					x.Write(tx, x.Read(tx)+v)
					return nil
				})
			} else {
				model = v
				_ = rt.Atomic(func(tx *Tx) error {
					x.Write(tx, v)
					return nil
				})
			}
		}
		return x.Peek() == model
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConcurrentSum property: for arbitrary positive op counts, the sum
// of per-goroutine additions equals the final value.
func TestQuickConcurrentSum(t *testing.T) {
	f := func(counts []uint8) bool {
		if len(counts) > 6 {
			counts = counts[:6]
		}
		rt := New(Config{})
		x := NewVar(int64(0))
		var want int64
		var wg sync.WaitGroup
		for _, c := range counts {
			c := int64(c % 50)
			want += c
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := int64(0); i < c; i++ {
					_ = rt.Atomic(func(tx *Tx) error {
						x.Write(tx, x.Read(tx)+1)
						return nil
					})
				}
			}()
		}
		wg.Wait()
		return x.Peek() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConflictKindString(t *testing.T) {
	for k := ConflictKind(0); k < conflictKinds; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if ConflictKind(200).String() != "unknown" {
		t.Fatal("out-of-range kind should be unknown")
	}
}

func TestManyVarsDisjointWriters(t *testing.T) {
	rt := New(Config{})
	const n = 64
	vars := make([]*Var[int], n)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 4 {
				i := i
				for k := 0; k < 50; k++ {
					_ = rt.Atomic(func(tx *Tx) error {
						vars[i].Write(tx, vars[i].Read(tx)+1)
						return nil
					})
				}
			}
		}(g)
	}
	wg.Wait()
	for i, v := range vars {
		if got := v.Peek(); got != 50 {
			t.Fatalf("vars[%d] = %d, want 50", i, got)
		}
	}
}

func ExampleRuntime_Atomic() {
	rt := New(Config{})
	balance := NewVar(100)
	err := rt.Atomic(func(tx *Tx) error {
		b := balance.Read(tx)
		if b < 30 {
			return errors.New("insufficient funds")
		}
		balance.Write(tx, b-30)
		return nil
	})
	fmt.Println(err, balance.Peek())
	// Output: <nil> 70
}
