// Package benchfmt is the shared definition of the repo's BENCH_*.json
// snapshot format (schema rubic-bench/v2). It was extracted from
// cmd/rubic-benchgate when cmd/rubic-serve started emitting snapshots of
// its own: the service driver records latency quantiles in the same schema
// (p99 nanoseconds in the ns_op slot, companions in metrics), so one gate
// binary and one checked-in baseline mechanism covers closed-loop ns/op and
// open-loop p99 alike.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Result is one benchmark's measurements. Procs is the GOMAXPROCS the
// benchmark ran at (parsed from the -N suffix the testing package appends;
// 1 when absent), so a scaling sweep's entries are distinguishable and a
// gate run knows which parallelism a baseline number was recorded at.
type Result struct {
	Procs    int                `json:"procs,omitempty"`
	Iters    int64              `json:"iters"`
	NsPerOp  float64            `json:"ns_op"`
	BPerOp   float64            `json:"b_op"`
	AllocsOp float64            `json:"allocs_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_<date>.json schema.
type File struct {
	Schema     string            `json:"schema"`
	Date       string            `json:"date"`
	GoVersion  string            `json:"go"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Schema versions. v1 stripped the GOMAXPROCS suffix from benchmark names,
// which made the same benchmark run at different parallelism levels collide
// on one key (the last writer silently won). v2 keeps the suffix in the key
// and records the parallelism per entry; v1 files are still readable so old
// baselines keep gating GOMAXPROCS=1 runs.
const (
	SchemaID   = "rubic-bench/v2"
	SchemaIDv1 = "rubic-bench/v1"
)

// Load reads and validates a snapshot, accepting the legacy v1 schema with
// Procs backfilled (v1 predates per-entry parallelism, so its entries are
// only meaningful for GOMAXPROCS=1 gating).
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch f.Schema {
	case SchemaID:
	case SchemaIDv1:
		for name, r := range f.Benchmarks {
			if r.Procs == 0 {
				r.Procs = 1
				f.Benchmarks[name] = r
			}
		}
	default:
		return nil, fmt.Errorf("%s: schema %q, want %q (or legacy %q)", path, f.Schema, SchemaID, SchemaIDv1)
	}
	return &f, nil
}

// Emit writes results as a v2 snapshot stamped with the current toolchain
// and host facts.
func Emit(path string, results map[string]Result) error {
	f := File{
		Schema:     SchemaID,
		Date:       time.Now().UTC().Format("2006-01-02T15:04:05Z"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
