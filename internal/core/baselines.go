package core

// AIAD is the additive-increase/additive-decrease scheme the state of the
// art relies on (paper section 2): gain or tie adds Delta, loss subtracts
// Delta.
type AIAD struct {
	max   int
	delta float64
	level float64
	tp    float64
	init  float64
}

// NewAIAD returns an AIAD controller starting at level 1.
func NewAIAD(maxLevel int, delta float64) *AIAD {
	if maxLevel < 1 {
		panic("core: AIAD MaxLevel < 1")
	}
	if delta <= 0 {
		delta = 1
	}
	a := &AIAD{max: maxLevel, delta: delta, init: 1}
	a.Reset()
	return a
}

// NewAIADAt returns an AIAD controller starting (and resetting) at the given
// level; the Figure 2 geometry experiment starts processes from an arbitrary
// unequal allocation.
func NewAIADAt(maxLevel int, delta float64, initial int) *AIAD {
	a := NewAIAD(maxLevel, delta)
	a.init = float64(clamp(float64(initial), maxLevel))
	a.Reset()
	return a
}

// Reset implements Controller.
func (a *AIAD) Reset() { a.level, a.tp = a.init, 0 }

// Name implements Controller.
func (a *AIAD) Name() string { return "aiad" }

// Level implements Controller.
func (a *AIAD) Level() int { return clamp(a.level, a.max) }

// Next implements Controller.
func (a *AIAD) Next(tc float64) int {
	if tc >= a.tp {
		a.level += a.delta
	} else {
		a.level -= a.delta
	}
	if a.level < 1 {
		a.level = 1
	}
	if a.level > float64(a.max) {
		a.level = float64(a.max)
	}
	a.tp = tc
	return a.Level()
}

// EBS models Didona et al.'s exploration-based scaling as the paper
// characterizes it: a pure AIAD hill-climber on the commit rate.
type EBS struct {
	AIAD
}

// NewEBS returns an EBS controller.
func NewEBS(maxLevel int) *EBS {
	return &EBS{AIAD: *NewAIAD(maxLevel, 1)}
}

// Name implements Controller.
func (e *EBS) Name() string { return "ebs" }

// F2C2 models Ravichandran & Pande's F2C2-STM as the paper characterizes
// it: identical to EBS except for an initial exponential growth phase that
// doubles the level until the first performance loss, halves once, and then
// switches to pure AIAD for the rest of the run.
type F2C2 struct {
	max         int
	level       float64
	tp          float64
	exponential bool
}

// NewF2C2 returns an F2C2 controller starting at level 1 in the exponential
// phase.
func NewF2C2(maxLevel int) *F2C2 {
	if maxLevel < 1 {
		panic("core: F2C2 MaxLevel < 1")
	}
	f := &F2C2{max: maxLevel}
	f.Reset()
	return f
}

// Reset implements Controller.
func (f *F2C2) Reset() { f.level, f.tp, f.exponential = 1, 0, true }

// Name implements Controller.
func (f *F2C2) Name() string { return "f2c2" }

// Level implements Controller.
func (f *F2C2) Level() int { return clamp(f.level, f.max) }

// Next implements Controller.
func (f *F2C2) Next(tc float64) int {
	if f.exponential {
		if tc >= f.tp {
			f.level *= 2
		} else {
			f.level /= 2
			f.exponential = false
		}
	} else {
		if tc >= f.tp {
			f.level++
		} else {
			f.level--
		}
	}
	if f.level < 1 {
		f.level = 1
	}
	if f.level > float64(f.max) {
		f.level = float64(f.max)
	}
	f.tp = tc
	return f.Level()
}

// AIMD is the additive-increase/multiplicative-decrease controller of the
// authors' SPAA'15 brief announcement: +1 on gain, level*Alpha on loss. It
// converges in multi-process settings but undersubscribes the machine
// (Figure 3: with Alpha=0.5 a 64-context machine averages 48 threads).
type AIMD struct {
	max   int
	alpha float64
	level float64
	tp    float64
	init  float64
}

// NewAIMD returns an AIMD controller with the given decrease factor
// (0 < alpha < 1; defaults to 0.5 when out of range).
func NewAIMD(maxLevel int, alpha float64) *AIMD {
	if maxLevel < 1 {
		panic("core: AIMD MaxLevel < 1")
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.5
	}
	a := &AIMD{max: maxLevel, alpha: alpha, init: 1}
	a.Reset()
	return a
}

// NewAIMDAt returns an AIMD controller starting (and resetting) at the given
// level (see NewAIADAt).
func NewAIMDAt(maxLevel int, alpha float64, initial int) *AIMD {
	a := NewAIMD(maxLevel, alpha)
	a.init = float64(clamp(float64(initial), maxLevel))
	a.Reset()
	return a
}

// Reset implements Controller.
func (a *AIMD) Reset() { a.level, a.tp = a.init, 0 }

// Name implements Controller.
func (a *AIMD) Name() string { return "aimd" }

// Level implements Controller.
func (a *AIMD) Level() int { return clamp(a.level, a.max) }

// Next implements Controller.
func (a *AIMD) Next(tc float64) int {
	if tc >= a.tp {
		a.level++
		a.tp = tc
	} else {
		a.level *= a.alpha
		// Like RUBIC, forget the reference throughput after a cut so the
		// next observation is accepted as the new baseline.
		a.tp = 0
	}
	if a.level < 1 {
		a.level = 1
	}
	if a.level > float64(a.max) {
		a.level = float64(a.max)
	}
	return a.Level()
}

// Static pins the level to a constant: Greedy (all hardware contexts) and
// EqualShare (contexts divided by the number of co-located processes, handed
// out by a central entity) are both Static instances.
type Static struct {
	name  string
	fixed int
	max   int
}

// NewStatic returns a controller pinned to min(fixed, maxLevel).
func NewStatic(name string, fixed, maxLevel int) *Static {
	if fixed < 1 {
		fixed = 1
	}
	if maxLevel >= 1 && fixed > maxLevel {
		fixed = maxLevel
	}
	return &Static{name: name, fixed: fixed, max: maxLevel}
}

// Reset implements Controller.
func (s *Static) Reset() {}

// Name implements Controller.
func (s *Static) Name() string { return s.name }

// Level implements Controller.
func (s *Static) Level() int { return s.fixed }

// Next implements Controller.
func (s *Static) Next(float64) int { return s.fixed }

// HillClimb is a direction-memory hill climber: keep moving in the current
// direction while throughput improves, reverse on loss. Didona et al.'s
// exploration-based scaling implements this refinement of plain AIAD (the
// paper's section 2 abstracts both as AIAD; this variant is provided for
// comparison). On a slope its reversal is restoring, which avoids plain
// AIAD's wrong-direction response to self-inflicted losses.
type HillClimb struct {
	max   int
	level float64
	tp    float64
	dir   float64
}

// NewHillClimb returns a direction-memory hill climber starting at level 1,
// climbing.
func NewHillClimb(maxLevel int) *HillClimb {
	if maxLevel < 1 {
		panic("core: HillClimb MaxLevel < 1")
	}
	h := &HillClimb{max: maxLevel}
	h.Reset()
	return h
}

// Reset implements Controller.
func (h *HillClimb) Reset() { h.level, h.tp, h.dir = 1, 0, 1 }

// Name implements Controller.
func (h *HillClimb) Name() string { return "hillclimb" }

// Level implements Controller.
func (h *HillClimb) Level() int { return clamp(h.level, h.max) }

// Next implements Controller.
func (h *HillClimb) Next(tc float64) int {
	if tc < h.tp {
		h.dir = -h.dir
	}
	h.level += h.dir
	if h.level < 1 {
		h.level = 1
		h.dir = 1
	}
	if h.level > float64(h.max) {
		h.level = float64(h.max)
		h.dir = -1
	}
	h.tp = tc
	return h.Level()
}
