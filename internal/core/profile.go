package core

// ProfileThenPin models the offline, profile-based tuners the paper's
// related work discusses (e.g. Pusukuri et al.'s Thread Reinforcer): an
// initial profiling phase sweeps a ladder of candidate levels, measuring
// each for a fixed number of rounds, then the level with the best mean
// throughput is pinned for the rest of the run. Being offline, it "is not
// able to cope with dynamic changes in workload or available hardware
// resources" (section 5) — which the churn experiments make measurable.
type ProfileThenPin struct {
	max         int
	step        int
	probeRounds int

	level    int
	pinned   bool
	inLevel  int     // rounds measured at the current candidate
	sum      float64 // throughput accumulated at the current candidate
	best     float64
	bestLvl  int
	started  bool
	firstObs bool
}

// NewProfileThenPin returns a controller probing levels 1, 1+step, ... up
// to maxLevel, each for probeRounds rounds (defaults: step 4, probeRounds 3).
func NewProfileThenPin(maxLevel, step, probeRounds int) *ProfileThenPin {
	if maxLevel < 1 {
		panic("core: ProfileThenPin MaxLevel < 1")
	}
	if step < 1 {
		step = 4
	}
	if probeRounds < 1 {
		probeRounds = 3
	}
	p := &ProfileThenPin{max: maxLevel, step: step, probeRounds: probeRounds}
	p.Reset()
	return p
}

// Reset implements Controller.
func (p *ProfileThenPin) Reset() {
	p.level = 1
	p.pinned = false
	p.inLevel = 0
	p.sum = 0
	p.best = -1
	p.bestLvl = 1
	p.firstObs = true
}

// Name implements Controller.
func (p *ProfileThenPin) Name() string { return "profile" }

// Level implements Controller.
func (p *ProfileThenPin) Level() int { return p.level }

// Next implements Controller.
func (p *ProfileThenPin) Next(tc float64) int {
	if p.pinned {
		return p.level
	}
	if p.firstObs {
		// The first observation measures the pre-run warmup, not a probed
		// level; discard it.
		p.firstObs = false
		return p.level
	}
	p.sum += tc
	p.inLevel++
	if p.inLevel < p.probeRounds {
		return p.level
	}
	// Candidate finished: record and move on.
	mean := p.sum / float64(p.inLevel)
	if mean > p.best {
		p.best = mean
		p.bestLvl = p.level
	}
	p.sum = 0
	p.inLevel = 0
	next := p.level + p.step
	if next > p.max {
		// Profiling done: pin the winner.
		p.level = p.bestLvl
		p.pinned = true
		return p.level
	}
	p.level = next
	return p.level
}

// Pinned reports whether profiling has finished.
func (p *ProfileThenPin) Pinned() bool { return p.pinned }
