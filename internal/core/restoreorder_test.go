package core

import (
	"testing"
	"time"
)

// Restore-ordering semantics: RUBIC.RestoreState is the funnel through which
// BOTH the SLO guard's cuts and the adaptive stack's engine-handoff
// re-anchoring pass (each via RestoreInto), and in an adaptive serve stack
// both can fire in the same epoch. These tests pin the contract that makes
// the double restore safe: an un-epoched restore restarts the cubic round
// count, ceilings clamp, an inverted anchor normalizes to the level, and —
// because the tuning loop drives the adapter after the epoch's decision is
// actuated — the handoff's snapshot already contains the guard's cut, so
// replaying it through the restore path cannot resurrect the pre-cut level.

func TestRestoreStateTable(t *testing.T) {
	cases := []struct {
		name string
		st   TuningState
		// wantLevel/wantLmax/wantDtmax are the internal fields after restore.
		wantLevel, wantLmax, wantDtmax float64
	}{
		{
			name:      "unepoched_restore_zeroes_dtmax",
			st:        TuningState{Level: 3, WMax: 6, Epoch: 0},
			wantLevel: 3, wantLmax: 6, wantDtmax: 0,
		},
		{
			name:      "epoched_restore_keeps_round_count",
			st:        TuningState{Level: 3, WMax: 6, Epoch: 4},
			wantLevel: 3, wantLmax: 6, wantDtmax: 4,
		},
		{
			name:      "ceiling_clamps_both_anchors",
			st:        TuningState{Level: 100, WMax: 200, Epoch: 0},
			wantLevel: 16, wantLmax: 16, wantDtmax: 0,
		},
		{
			name: "inverted_anchor_normalizes_to_level",
			// A mixed snapshot (level from before a cut, wMax from after one)
			// must not leave cubic growth aiming below the current level.
			st:        TuningState{Level: 8, WMax: 2, Epoch: 0},
			wantLevel: 8, wantLmax: 8, wantDtmax: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRUBIC(RUBICConfig{MaxLevel: 16})
			// Accumulate growth rounds so a zeroed dtmax is distinguishable
			// from a never-set one.
			for i := 0; i < 3; i++ {
				r.Next(float64(100 + i))
			}
			if r.dtmax == 0 {
				t.Fatal("setup: growth rounds left dtmax at 0")
			}
			r.RestoreState(tc.st)
			if r.level != tc.wantLevel || r.lmax != tc.wantLmax || r.dtmax != tc.wantDtmax {
				t.Fatalf("after restore: level=%v lmax=%v dtmax=%v, want %v/%v/%v",
					r.level, r.lmax, r.dtmax, tc.wantLevel, tc.wantLmax, tc.wantDtmax)
			}
			if r.lmax < r.level {
				t.Fatalf("restore left the anchor inverted: lmax=%v < level=%v", r.lmax, r.level)
			}
		})
	}

	// Sub-floor fields are ignored, not clamped: the controller keeps its
	// live level and anchor (normalized) rather than collapsing to the floor
	// on a zeroed snapshot.
	t.Run("sub_floor_fields_ignored", func(t *testing.T) {
		r := NewRUBIC(RUBICConfig{MaxLevel: 16})
		for i := 0; i < 3; i++ {
			r.Next(float64(100 + i))
		}
		before := r.level
		r.RestoreState(TuningState{Level: 0.5, WMax: 0.25, Epoch: 0})
		if r.level != before {
			t.Fatalf("sub-floor restore moved the level %v -> %v", before, r.level)
		}
		if r.lmax < r.level || r.dtmax != 0 {
			t.Fatalf("after restore: lmax=%v level=%v dtmax=%v", r.lmax, r.level, r.dtmax)
		}
	})
}

// TestGuardCutThenHandoffSameEpoch replays the exact double-restore sequence
// of an adaptive serve stack: the SLO guard confirms a breach and cuts (first
// RestoreInto), then — same epoch, because the tuner drives the adapter after
// actuation — an engine handoff exports StateOf and restores it un-epoched
// (second RestoreInto). The cut must survive the round trip exactly.
func TestGuardCutThenHandoffSameEpoch(t *testing.T) {
	inner := NewRUBIC(RUBICConfig{MaxLevel: 16, InitialLevel: 10})
	guard, err := NewSLOGuard(inner, SLOPolicy{
		TargetP99:   time.Millisecond,
		BreachAfter: 1,
		Alpha:       0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Some growth history so the handoff's Epoch-zeroing is observable.
	inner.dtmax = 3

	// Epoch decision: confirmed breach, multiplicative cut 10 -> 5 anchored
	// at 10.
	if level := guard.NextEpoch(2*time.Millisecond, 100); level != 5 {
		t.Fatalf("cut actuated level %d, want 5", level)
	}
	if inner.level != 5 || inner.lmax != 10 {
		t.Fatalf("after cut: level=%v lmax=%v, want 5/10", inner.level, inner.lmax)
	}
	if inner.dtmax != 0 {
		t.Fatalf("the cut's restore left dtmax=%v, want 0", inner.dtmax)
	}

	// Engine handoff later the same epoch: snapshot through the guard (the
	// adapter binds the outermost controller), restore un-epoched.
	snap, ok := StateOf(guard)
	if !ok {
		t.Fatal("guard chain not resumable")
	}
	if snap.Level != 5 || snap.WMax != 10 {
		t.Fatalf("handoff snapshot %+v taken after the cut must reflect it", snap)
	}
	if !RestoreInto(guard, TuningState{Level: snap.Level, WMax: snap.WMax}) {
		t.Fatal("handoff restore rejected")
	}
	if inner.level != 5 || inner.lmax != 10 || inner.dtmax != 0 {
		t.Fatalf("after handoff restore: level=%v lmax=%v dtmax=%v, want 5/10/0 (cut resurrected?)",
			inner.level, inner.lmax, inner.dtmax)
	}

	// The guard's own posture is untouched by the handoff: the next meeting
	// epoch resumes cubic growth toward the breach anchor.
	if got := guard.NextEpoch(time.Microsecond, 100); got <= 5 || got > 10 {
		t.Fatalf("post-handoff growth actuated %d, want within (5, 10]", got)
	}
}
