package core

import (
	"fmt"
	"sync"
	"time"
)

// SLO-tuning defaults.
const (
	// DefaultBreachAfter is K: consecutive SLO-breaching epochs before the
	// guard cuts the level. 2 tolerates a single noisy epoch without
	// reacting, while still bounding the reaction time to 2 epochs.
	DefaultBreachAfter = 2

	// DefaultSLOAlpha is the multiplicative cut factor on a confirmed
	// breach — RUBIC's own decrease factor, reused so the latency-driven
	// cut composes with the throughput-driven cubic recovery.
	DefaultSLOAlpha = 0.8
)

// SLOPolicy configures latency-target tuning around a controller.
type SLOPolicy struct {
	// TargetP99 is the per-epoch p99 latency objective. Required.
	TargetP99 time.Duration
	// BreachAfter is K: consecutive breaching epochs before a cut
	// (default DefaultBreachAfter).
	BreachAfter int
	// Alpha is the multiplicative cut factor in (0, 1)
	// (default DefaultSLOAlpha).
	Alpha float64
	// MinLevel floors the cut (default 1).
	MinLevel int
}

func (p *SLOPolicy) defaults() error {
	if p.TargetP99 <= 0 {
		return fmt.Errorf("core: SLO policy needs a positive p99 target, got %v", p.TargetP99)
	}
	if p.BreachAfter <= 0 {
		p.BreachAfter = DefaultBreachAfter
	}
	if p.Alpha == 0 {
		p.Alpha = DefaultSLOAlpha
	}
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("core: SLO alpha must be in (0,1), got %v", p.Alpha)
	}
	if p.MinLevel < 1 {
		p.MinLevel = 1
	}
	return nil
}

// SLOState is the guard's posture against its latency objective.
type SLOState uint8

const (
	// Meeting: the measured p99 is within the target; level decisions
	// delegate to the wrapped (throughput-driven) controller.
	Meeting SLOState = iota
	// Breaching: 1..K-1 consecutive epochs over target; the guard holds its
	// last decision and arms the cut.
	Breaching
)

// String names the state for reports.
func (s SLOState) String() string {
	switch s {
	case Meeting:
		return "meeting"
	case Breaching:
		return "breaching"
	}
	return "unknown"
}

// SLOStats counts the guard's transitions for observability.
type SLOStats struct {
	// Breaches counts epochs whose p99 exceeded the target.
	Breaches uint64
	// Cuts counts confirmed breaches that actually cut the level.
	Cuts uint64
	// Recoveries counts Breaching→Meeting transitions.
	Recoveries uint64
}

// SLOGuard makes a throughput-driven controller latency-aware: each epoch
// it consumes the measured p99 alongside the throughput. While the SLO is
// met, decisions delegate to the wrapped controller unchanged — under open
// loop the throughput signal saturates at the arrival rate, so the wrapped
// RUBIC drifts upward, probing for capacity headroom. K consecutive
// breaching epochs trigger a multiplicative cut, installed through the
// controller's own restore path (RestoreInto) with wMax anchored at the
// pre-cut level: when the SLO recovers, growth re-enters RUBIC's cubic
// curve — fast while far below the last known breach level, cautious as it
// approaches it — instead of blindly re-probing the level that just blew
// the tail. Sustained breaches keep cutting every K epochs down to the
// floor.
//
// The guard composes with HealthGuard (both expose Unwrap), but sits
// outside it in the serve stack: telemetry health describes the signal,
// the SLO describes the objective.
//
// Like HealthGuard, one epoch loop drives the decision path while
// observability accessors may be polled from other goroutines, so mutable
// state sits behind a mutex that is uncontended on the decision path.
type SLOGuard struct {
	inner Controller
	cfg   SLOPolicy

	mu     sync.Mutex
	state  SLOState
	breach int
	held   int
	stats  SLOStats
}

// NewSLOGuard wraps inner in an SLO guard. It panics on a nil inner (a
// programming error) and returns an error on an invalid policy.
func NewSLOGuard(inner Controller, cfg SLOPolicy) (*SLOGuard, error) {
	if inner == nil {
		panic("core: SLOGuard wrapping nil controller")
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	return &SLOGuard{inner: inner, cfg: cfg, held: inner.Level()}, nil
}

// Unwrap exposes the guarded controller (see StateOf / RestoreInto).
func (g *SLOGuard) Unwrap() Controller { return g.inner }

// Target returns the policy's p99 objective.
func (g *SLOGuard) Target() time.Duration { return g.cfg.TargetP99 }

// State reports the guard's posture.
func (g *SLOGuard) State() SLOState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.state
}

// Stats returns the transition counters.
func (g *SLOGuard) Stats() SLOStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Name implements Controller.
func (g *SLOGuard) Name() string { return g.inner.Name() + "+slo" }

// Level implements Controller: the level the guard last actuated.
func (g *SLOGuard) Level() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.held
}

// Reset implements Controller.
func (g *SLOGuard) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inner.Reset()
	g.state, g.breach = Meeting, 0
	g.held = g.inner.Level()
	g.stats = SLOStats{}
}

// Next implements Controller. Without a latency observation the guard has
// no objective signal, so it delegates — a plain Tuner can drive an
// SLOGuard and get the wrapped policy's behavior.
func (g *SLOGuard) Next(tput float64) int {
	return g.NextEpoch(0, tput)
}

// NextEpoch consumes one epoch's p99 and throughput and returns the level
// to actuate. p99 <= 0 means "no latency signal this epoch" (an idle epoch
// with no completed requests) and counts as meeting: an idle service is
// not breaching its SLO.
func (g *SLOGuard) NextEpoch(p99 time.Duration, tput float64) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if p99 > g.cfg.TargetP99 {
		g.stats.Breaches++
		g.breach++
		if g.breach < g.cfg.BreachAfter {
			g.state = Breaching
			return g.held // hold: the cut is armed, not yet confirmed
		}
		// Confirmed breach: multiplicative cut, anchored so recovery
		// re-enters cubic growth from the level that breached.
		g.breach = 0
		g.state = Breaching
		g.stats.Cuts++
		anchor := g.held
		cut := int(g.cfg.Alpha * float64(anchor))
		if cut >= anchor {
			cut = anchor - 1
		}
		if cut < g.cfg.MinLevel {
			cut = g.cfg.MinLevel
		}
		// Resumable controllers (RUBIC) take the cut through their restore
		// path: level drops to the cut, wMax anchors at the breach level,
		// and the next meeting epoch resumes cubic growth toward it. Others
		// simply have the cut actuated over them.
		RestoreInto(g.inner, TuningState{Level: float64(cut), WMax: float64(anchor)})
		g.held = cut
		return g.held
	}
	if g.state == Breaching {
		g.state = Meeting
		g.breach = 0
		g.stats.Recoveries++
	}
	g.held = g.inner.Next(tput)
	return g.held
}
