package core

import "math"

// CubicGrowth evaluates the paper's Equation (1):
//
//	L_cubic = L_max + beta * (dt - cbrt(L_max * alpha / beta))^3
//
// where lmax is the last parallelism level at which a performance loss was
// observed, dt is the number of cubic-growth rounds since that loss, alpha
// is the multiplicative-decrease factor and beta the growth scaling factor.
//
// The curve has the two regimes Figure 4 depicts: below lmax it flattens
// into a steady state as dt approaches the inflection delay K =
// cbrt(lmax*alpha/beta), and beyond lmax it accelerates into the probing
// phase with ever longer steps.
func CubicGrowth(lmax, dt, alpha, beta float64) float64 {
	k := math.Cbrt(lmax * alpha / beta)
	d := dt - k
	return lmax + beta*d*d*d
}

// CubicInflection returns K, the number of cubic rounds after which the
// curve crosses L_max and the probing phase begins.
func CubicInflection(lmax, alpha, beta float64) float64 {
	return math.Cbrt(lmax * alpha / beta)
}
