package core

import (
	"fmt"
	"sync"
)

// This file implements the adaptive-runtime selector (DESIGN.md §12): a
// windowed scorer that chooses among candidate engine/contention-manager
// stacks at epoch boundaries, in the regret-minimizing spirit of
// window-based greedy contention management. The policy is substrate-free —
// it sees only per-epoch signals and names candidates by index — so it can
// be unit-tested without an STM runtime; colocate.AdaptiveStack binds it to
// a real stm.Runtime. Like every controller in this package it works in
// epoch counts, not durations, and is deterministic: equal signal sequences
// produce equal decision sequences.

// AdaptiveSignal is one epoch's observation of the currently running
// candidate: the tuner's throughput sample plus the runtime's conflict
// profile for the epoch.
type AdaptiveSignal struct {
	// Tput is the epoch's throughput (completions per second).
	Tput float64
	// AbortRatio, MeanReadSet, MeanWriteSet and ConflictDegree mirror
	// stm.ConflictProfile.
	AbortRatio     float64
	MeanReadSet    float64
	MeanWriteSet   float64
	ConflictDegree float64
}

// score collapses a signal to the quantity candidates are ranked by:
// goodput — throughput discounted by the fraction of work wasted on aborts.
func (s AdaptiveSignal) score() float64 { return s.Tput * (1 - s.AbortRatio) }

// AdaptivePhase is the policy's mode.
type AdaptivePhase uint8

const (
	// AdaptiveProbing rotates through the candidates, scoring each over a
	// measurement window.
	AdaptiveProbing AdaptivePhase = iota
	// AdaptiveSettled exploits the best-scoring candidate, watching for
	// score degradation or profile drift.
	AdaptiveSettled
)

func (p AdaptivePhase) String() string {
	if p == AdaptiveSettled {
		return "settled"
	}
	return "probing"
}

// AdaptiveConfig parameterizes an AdaptivePolicy.
type AdaptiveConfig struct {
	// Candidates names the selectable stacks (e.g. "tl2/backoff"); the
	// policy refers to them by index. At least one is required.
	Candidates []string
	// Window is the number of epochs averaged into one candidate score
	// (default 4).
	Window int
	// Warmup is the number of epochs discarded after every switch before
	// scoring starts, hiding the handoff transient (default 1; negative
	// disables).
	Warmup int
	// Hysteresis is the number of consecutive degraded epochs required
	// before a settled policy re-probes (default 3) — one bad epoch never
	// triggers a sweep.
	Hysteresis int
	// Margin is the fractional score drop tolerated while settled: the
	// policy counts an epoch as degraded when the windowed mean falls below
	// (1-Margin) times the reference score (default 0.10).
	Margin float64
	// DriftThreshold bounds profile movement while settled: an epoch whose
	// abort ratio or conflict degree is more than this far from the values
	// at settle time counts as degraded (default 0.25).
	DriftThreshold float64
}

func (c *AdaptiveConfig) defaults() {
	if c.Window <= 0 {
		c.Window = 4
	}
	switch {
	case c.Warmup == 0:
		c.Warmup = 1
	case c.Warmup < 0:
		c.Warmup = 0
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 3
	}
	if c.Margin <= 0 {
		c.Margin = 0.10
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.25
	}
}

// AdaptiveDecision is Observe's verdict for the epoch.
type AdaptiveDecision struct {
	// Candidate indexes AdaptiveConfig.Candidates; Name is its label.
	Candidate int
	Name      string
	// Switched reports that the decision moved to a different candidate
	// than the one that produced the observed epoch — the caller must
	// actuate the change.
	Switched bool
	Phase    AdaptivePhase
}

// AdaptiveStats counts the policy's activity for telemetry.
type AdaptiveStats struct {
	// Epochs counts observations; Switches candidate changes; Probes
	// completed per-candidate measurement windows; Reprobes sweeps
	// triggered out of the settled phase.
	Epochs   uint64
	Switches uint64
	Probes   uint64
	Reprobes uint64
}

// AdaptiveState is the policy's resumable state, preserved across process
// restarts by the supervisor exactly like TuningState. A restored policy
// resumes settled on the preserved candidate — it exploits what its
// predecessor learned instead of re-probing from scratch, and the drift
// triggers re-open exploration if the world changed meanwhile.
type AdaptiveState struct {
	Candidate string  `json:"candidate"`
	Phase     string  `json:"phase"`
	Reference float64 `json:"reference"`
	Switches  uint64  `json:"switches"`
}

// AdaptivePolicy scores candidates over sliding windows with hysteresis.
// Methods are safe for concurrent use (Observe runs on the tuning loop,
// State on the telemetry path).
type AdaptivePolicy struct {
	cfg AdaptiveConfig

	mu                  sync.Mutex
	phase               AdaptivePhase
	cur                 int
	warmup              int       // epochs left to discard before scoring
	win                 []float64 // scores of the current window (probing: fills then closes; settled: rolling)
	scores              []float64 // per-candidate score from the current sweep
	probed              []bool
	left                int // candidates still to finish in the current sweep
	ref                 float64
	refAbort, refDegree float64
	// anchorPending makes the next settled observation re-anchor the drift
	// references: a restored policy has no profile anchors of its own.
	anchorPending bool
	bad           int // consecutive degraded epochs while settled
	stats         AdaptiveStats
}

// NewAdaptivePolicy validates cfg and returns a policy starting a probing
// sweep at candidate 0.
func NewAdaptivePolicy(cfg AdaptiveConfig) (*AdaptivePolicy, error) {
	if len(cfg.Candidates) == 0 {
		return nil, fmt.Errorf("core: adaptive policy needs at least one candidate")
	}
	cfg.defaults()
	p := &AdaptivePolicy{
		cfg:    cfg,
		warmup: cfg.Warmup,
		scores: make([]float64, len(cfg.Candidates)),
		probed: make([]bool, len(cfg.Candidates)),
		left:   len(cfg.Candidates),
	}
	return p, nil
}

// Candidates returns the configured candidate names.
func (p *AdaptivePolicy) Candidates() []string { return p.cfg.Candidates }

// Current returns the index of the candidate the policy wants running.
func (p *AdaptivePolicy) Current() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}

// Stats returns a snapshot of the activity counters.
func (p *AdaptivePolicy) Stats() AdaptiveStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Observe feeds one epoch measured under the current candidate and returns
// the decision for the next epoch. When Switched is set the caller must
// actuate the returned candidate before the next epoch runs.
func (p *AdaptivePolicy) Observe(sig AdaptiveSignal) AdaptiveDecision {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Epochs++
	if p.warmup > 0 {
		p.warmup--
		return p.decision(false)
	}
	if p.phase == AdaptiveProbing {
		return p.observeProbing(sig)
	}
	return p.observeSettled(sig)
}

func (p *AdaptivePolicy) observeProbing(sig AdaptiveSignal) AdaptiveDecision {
	p.win = append(p.win, sig.score())
	if len(p.win) < p.cfg.Window {
		return p.decision(false)
	}
	// Window complete: close this candidate's probe.
	p.scores[p.cur] = mean(p.win)
	p.probed[p.cur] = true
	p.win = p.win[:0]
	p.left--
	p.stats.Probes++
	if p.left > 0 {
		return p.switchTo(p.nextUnprobed())
	}
	// Sweep complete: settle on the best score (ties to the lowest index,
	// so equal candidates resolve deterministically).
	best := 0
	for i := 1; i < len(p.scores); i++ {
		if p.scores[i] > p.scores[best] {
			best = i
		}
	}
	p.phase = AdaptiveSettled
	p.ref = p.scores[best]
	p.refAbort, p.refDegree = sig.AbortRatio, sig.ConflictDegree
	p.bad = 0
	if best != p.cur {
		return p.switchTo(best)
	}
	return p.decision(false)
}

func (p *AdaptivePolicy) observeSettled(sig AdaptiveSignal) AdaptiveDecision {
	if p.anchorPending {
		p.refAbort, p.refDegree = sig.AbortRatio, sig.ConflictDegree
		p.anchorPending = false
	}
	p.win = append(p.win, sig.score())
	if len(p.win) > p.cfg.Window {
		copy(p.win, p.win[1:])
		p.win = p.win[:p.cfg.Window]
	}
	m := mean(p.win)
	if m > p.ref {
		// Track improvements so the reference reflects the candidate's best
		// sustained behavior, not a weak settling window.
		p.ref = m
		p.refAbort, p.refDegree = sig.AbortRatio, sig.ConflictDegree
	}
	degraded := len(p.win) == p.cfg.Window && m < p.ref*(1-p.cfg.Margin)
	drifted := abs(sig.AbortRatio-p.refAbort) > p.cfg.DriftThreshold ||
		abs(sig.ConflictDegree-p.refDegree) > p.cfg.DriftThreshold
	if degraded || drifted {
		p.bad++
	} else {
		p.bad = 0
	}
	if p.bad < p.cfg.Hysteresis {
		return p.decision(false)
	}
	// Sustained degradation or drift: re-open exploration, re-measuring the
	// incumbent first (no switch yet — the incumbent may still win).
	p.phase = AdaptiveProbing
	for i := range p.probed {
		p.probed[i] = false
	}
	p.left = len(p.cfg.Candidates)
	p.win = p.win[:0]
	p.bad = 0
	p.stats.Reprobes++
	return p.decision(false)
}

// nextUnprobed returns the next sweep candidate after cur, in index order.
func (p *AdaptivePolicy) nextUnprobed() int {
	n := len(p.cfg.Candidates)
	for d := 1; d <= n; d++ {
		if i := (p.cur + d) % n; !p.probed[i] {
			return i
		}
	}
	return p.cur
}

func (p *AdaptivePolicy) switchTo(i int) AdaptiveDecision {
	p.cur = i
	p.warmup = p.cfg.Warmup
	p.win = p.win[:0]
	p.stats.Switches++
	return p.decision(true)
}

func (p *AdaptivePolicy) decision(switched bool) AdaptiveDecision {
	return AdaptiveDecision{
		Candidate: p.cur,
		Name:      p.cfg.Candidates[p.cur],
		Switched:  switched,
		Phase:     p.phase,
	}
}

// State exports the resumable state.
func (p *AdaptivePolicy) State() AdaptiveState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return AdaptiveState{
		Candidate: p.cfg.Candidates[p.cur],
		Phase:     p.phase.String(),
		Reference: p.ref,
		Switches:  p.stats.Switches,
	}
}

// Restore adopts a predecessor's state: the policy settles on the preserved
// candidate (skipping the probing sweep entirely) with the preserved
// reference score and switch count. An unknown candidate name leaves the
// policy probing from scratch and returns false.
func (p *AdaptivePolicy) Restore(st AdaptiveState) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := -1
	for i, name := range p.cfg.Candidates {
		if name == st.Candidate {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	p.cur = idx
	p.phase = AdaptiveSettled
	p.ref = st.Reference
	p.anchorPending = true
	p.warmup = p.cfg.Warmup
	p.win = p.win[:0]
	p.bad = 0
	p.stats.Switches = st.Switches
	return true
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
