// Package core implements the online parallelism controllers studied in the
// RUBIC paper: RUBIC itself (cubic increase with hybrid linear/multiplicative
// decrease, Algorithm 2), and the compared policies — EBS and F2C2 (AIAD
// hill-climbers), plain AIAD, AIMD (the SPAA'15 brief announcement), and the
// static Greedy and EqualShare allocations.
//
// Controllers are pure state machines decoupled from the execution
// substrate: each round, the driver feeds the throughput observed over the
// last period to Next, which returns the parallelism level for the coming
// period. The same controller instance therefore drives both the real
// worker pool (package pool) and the co-location simulator (package sim).
package core

import "fmt"

// Controller decides a process' parallelism level from local throughput
// observations only (no inter-process communication, per the paper).
type Controller interface {
	// Next consumes the throughput measured over the period that just ended
	// and returns the level (number of active threads) for the next period,
	// always within [1, MaxLevel].
	Next(throughput float64) int
	// Level returns the current level without advancing the controller.
	Level() int
	// Reset returns the controller to its initial state.
	Reset()
	// Name identifies the policy in reports.
	Name() string
}

// clamp bounds a fractional level into the controller's feasible range and
// rounds it to an actuatable thread count.
func clamp(l float64, max int) int {
	n := int(l + 0.5)
	if n < 1 {
		n = 1
	}
	if n > max {
		n = max
	}
	return n
}

// TuningState is the portable tuning state a controller preserves across a
// process restart: the actuated level plus RUBIC's cubic anchors (the last
// loss level wMax and the growth-round epoch). Restoring it lets a restarted
// agent re-enter cubic growth from where its predecessor left off instead of
// re-probing from the floor.
type TuningState struct {
	Level float64 `json:"level"`
	WMax  float64 `json:"wmax"`
	Epoch float64 `json:"epoch"`
}

// Resumable is implemented by controllers whose tuning state survives a
// process restart. Controllers without it simply restart from their initial
// state.
type Resumable interface {
	ExportState() TuningState
	RestoreState(TuningState)
}

// StateOf extracts a controller's preserved tuning state, unwrapping
// health-guard wrappers; ok is false for controllers that are not Resumable.
func StateOf(c Controller) (st TuningState, ok bool) {
	for c != nil {
		if r, isR := c.(Resumable); isR {
			return r.ExportState(), true
		}
		u, isU := c.(interface{ Unwrap() Controller })
		if !isU {
			break
		}
		c = u.Unwrap()
	}
	return TuningState{}, false
}

// RestoreInto installs a preserved tuning state into a controller (through
// any health-guard wrappers); it reports whether the controller accepted it.
func RestoreInto(c Controller, st TuningState) bool {
	for c != nil {
		if r, isR := c.(Resumable); isR {
			r.RestoreState(st)
			return true
		}
		u, isU := c.(interface{ Unwrap() Controller })
		if !isU {
			break
		}
		c = u.Unwrap()
	}
	return false
}

// Factory builds a fresh controller for a process; harness experiments use
// factories so each repetition and each process gets independent state.
type Factory func() Controller

// ByName returns a factory for the named policy, configured with the
// machine's context count (for Greedy), the number of co-located processes
// (for EqualShare), and the per-process maximum level.
//
// Valid names: rubic, ebs, f2c2, aiad, aimd, hillclimb, greedy, equalshare,
// profile.
func ByName(name string, contexts, processes, maxLevel int) (Factory, error) {
	switch name {
	case "rubic":
		return func() Controller { return NewRUBIC(RUBICConfig{MaxLevel: maxLevel}) }, nil
	case "profile":
		return func() Controller { return NewProfileThenPin(maxLevel, 4, 3) }, nil
	case "ebs":
		return func() Controller { return NewEBS(maxLevel) }, nil
	case "hillclimb":
		return func() Controller { return NewHillClimb(maxLevel) }, nil
	case "f2c2":
		return func() Controller { return NewF2C2(maxLevel) }, nil
	case "aiad":
		return func() Controller { return NewAIAD(maxLevel, 1) }, nil
	case "aimd":
		return func() Controller { return NewAIMD(maxLevel, 0.5) }, nil
	case "greedy":
		return func() Controller { return NewStatic("greedy", contexts, maxLevel) }, nil
	case "equalshare":
		n := processes
		if n < 1 {
			n = 1
		}
		share := contexts / n
		if share < 1 {
			share = 1
		}
		return func() Controller { return NewStatic("equalshare", share, maxLevel) }, nil
	}
	return nil, fmt.Errorf("core: unknown policy %q", name)
}

// PolicyNames lists the policies the evaluation compares, in the order the
// figures present them.
func PolicyNames() []string {
	return []string{"greedy", "equalshare", "f2c2", "ebs", "rubic"}
}
