package core

import (
	"math"
	"testing"
	"time"

	"rubic/internal/fault"
)

// growTo drives a controller with monotonically improving throughput until
// it reaches at least the target level (or the round budget runs out).
func growTo(t *testing.T, c Controller, target int) int {
	t.Helper()
	tp, level := 100.0, c.Level()
	for i := 0; i < 200 && level < target; i++ {
		tp += 10
		level = c.Next(tp)
	}
	if level < target {
		t.Fatalf("controller stuck at level %d, wanted >= %d", level, target)
	}
	return level
}

func TestHealthGuardDelegatesWhenHealthy(t *testing.T) {
	inner := NewRUBIC(RUBICConfig{MaxLevel: 16})
	g := NewHealthGuard(inner, HealthPolicy{FallbackLevel: 4})
	level := growTo(t, g, 6)
	if g.State() != Healthy {
		t.Fatalf("state %v after healthy samples", g.State())
	}
	if g.Level() != level || inner.Level() != level {
		t.Fatalf("guard level %d / inner level %d, want %d", g.Level(), inner.Level(), level)
	}
	if g.Name() != "rubic" {
		t.Fatalf("guard name %q, want the wrapped policy's", g.Name())
	}
}

// TestHealthGuardDegradationLadder is the controller-degradation contract:
// a 2×K outage mid-run first holds the last decision, then falls back to the
// equal-share level, and a recovering sample re-enters CUBIC growth from the
// preserved wMax instead of the floor.
func TestHealthGuardDegradationLadder(t *testing.T) {
	const k, fallback = 5, 4
	inner := NewRUBIC(RUBICConfig{MaxLevel: 32})
	g := NewHealthGuard(inner, HealthPolicy{DegradeAfter: k, FallbackLevel: fallback})
	held := growTo(t, g, 8)

	// Provoke losses until the multiplicative cut records a genuine wMax
	// anchor: linear -2 first, a forced growth round, then the escalation.
	held = g.Next(5)   // linear -2 round, reference forgotten
	held = g.Next(500) // forced growth round, new baseline
	held = g.Next(4)   // persistent loss: multiplicative cut, wMax <- level
	held = g.Next(450) // accepted as the new baseline; growth resumes
	before, ok := StateOf(g)
	if !ok {
		t.Fatal("guarded RUBIC is not resumable")
	}
	if before.WMax <= 1 {
		t.Fatalf("wMax anchor not set before the outage: %+v", before)
	}

	// 2×K consecutive bad ticks: a mix of silence, garbage and staleness.
	bad := []Sample{
		{Tput: 0},
		{Tput: math.NaN()},
		{Tput: math.Inf(1)},
		{Tput: -3},
		{Tput: 100, Age: time.Hour}, // stale
	}
	for i := 0; i < 2*k; i++ {
		var level int
		if i%2 == 0 {
			level = g.NextSample(bad[i%len(bad)])
		} else {
			level = g.Missed() // dropped tick: no sample at all
		}
		switch {
		case i < k-1:
			if g.State() != Holding || level != held {
				t.Fatalf("bad tick %d: state %v level %d, want holding at %d", i, g.State(), level, held)
			}
		default:
			if g.State() != Degraded || level != fallback {
				t.Fatalf("bad tick %d: state %v level %d, want degraded at %d", i, g.State(), level, fallback)
			}
		}
	}
	st := g.Stats()
	if st.Held != k-1 || st.Degradations != 1 {
		t.Fatalf("ladder stats %+v, want %d holds and 1 degradation", st, k-1)
	}

	// Recovery: the inner controller never saw the outage, so its cubic
	// anchors are intact and growth re-enters from the held state.
	after, _ := StateOf(g)
	if after != before {
		t.Fatalf("inner state advanced during the outage: %+v -> %+v", before, after)
	}
	level := g.NextSample(Sample{Tput: 600})
	if g.State() != Healthy || g.Stats().Recoveries != 1 {
		t.Fatalf("state %v recoveries %d after a good sample", g.State(), g.Stats().Recoveries)
	}
	if level < held {
		t.Fatalf("recovered at level %d, below the held level %d (reset to floor?)", level, held)
	}
	growTo(t, g, int(before.WMax)) // cubic growth reaches the preserved anchor again
}

// TestHealthGuardAIADHolds runs the same outage against an AIAD baseline:
// not resumable, but the guard still holds, degrades and recovers it, and
// its level survives the outage unchanged.
// TestHealthGuardEscalate is the durability layer's contract: an
// out-of-band escalation jumps the ladder straight to the fallback level
// without advancing the wrapped controller, and a good sample afterwards
// recovers normal tuning from the preserved state.
func TestHealthGuardEscalate(t *testing.T) {
	const fallback = 3
	inner := NewRUBIC(RUBICConfig{MaxLevel: 32})
	g := NewHealthGuard(inner, HealthPolicy{FallbackLevel: fallback})
	held := growTo(t, g, 8)

	g.Escalate()
	if g.State() != Degraded {
		t.Fatalf("state %v after Escalate, want degraded", g.State())
	}
	if g.Level() != fallback {
		t.Fatalf("level %d after Escalate, want fallback %d", g.Level(), fallback)
	}
	if inner.Level() != held {
		t.Fatalf("inner advanced to %d during escalation, want untouched %d", inner.Level(), held)
	}
	if g.Stats().Degradations != 1 {
		t.Fatalf("degradations %d, want 1", g.Stats().Degradations)
	}
	// A second escalation is idempotent on the counter.
	g.Escalate()
	if g.Stats().Degradations != 1 {
		t.Fatalf("degradations %d after repeat Escalate, want 1", g.Stats().Degradations)
	}
	// A good sample recovers into normal tuning.
	level := g.NextSample(Sample{Tput: 5000})
	if g.State() != Healthy {
		t.Fatalf("state %v after good sample, want healthy", g.State())
	}
	if level < held {
		t.Fatalf("recovered level %d below the pre-escalation hold %d", level, held)
	}
	if g.Stats().Recoveries != 1 {
		t.Fatalf("recoveries %d, want 1", g.Stats().Recoveries)
	}
}

func TestHealthGuardAIADHolds(t *testing.T) {
	const k, fallback = 4, 3
	inner := NewAIAD(16, 1)
	g := NewHealthGuard(inner, HealthPolicy{DegradeAfter: k, FallbackLevel: fallback})
	held := growTo(t, g, 6)
	if _, ok := StateOf(g); ok {
		t.Fatal("AIAD unexpectedly resumable")
	}
	for i := 0; i < 2*k; i++ {
		level := g.NextSample(Sample{Tput: math.NaN()})
		if i < k-1 && level != held {
			t.Fatalf("bad tick %d: level %d, want held %d", i, level, held)
		}
		if i >= k-1 && level != fallback {
			t.Fatalf("bad tick %d: level %d, want fallback %d", i, level, fallback)
		}
	}
	if inner.Level() != held {
		t.Fatalf("inner AIAD level %d changed during outage, want %d", inner.Level(), held)
	}
	if got := g.NextSample(Sample{Tput: 1000}); got < held {
		t.Fatalf("recovered at %d, below held %d", got, held)
	}
}

func TestHealthGuardReset(t *testing.T) {
	g := NewHealthGuard(NewRUBIC(RUBICConfig{MaxLevel: 8}), HealthPolicy{})
	growTo(t, g, 4)
	for i := 0; i < DefaultDegradeAfter; i++ {
		g.Missed()
	}
	if g.State() != Degraded {
		t.Fatalf("state %v, want degraded", g.State())
	}
	g.Reset()
	if g.State() != Healthy || g.Level() != 1 || g.Stats() != (HealthStats{}) {
		t.Fatalf("reset left state %v level %d stats %+v", g.State(), g.Level(), g.Stats())
	}
}

func TestRUBICStateRoundTrip(t *testing.T) {
	a := NewRUBIC(RUBICConfig{MaxLevel: 32})
	growTo(t, a, 10)
	a.Next(5)   // linear cut
	a.Next(500) // forced growth round
	a.Next(4)   // multiplicative cut records wMax
	st := a.ExportState()
	if st.WMax < 2 || st.Level < 1 {
		t.Fatalf("exported state %+v", st)
	}

	b := NewRUBIC(RUBICConfig{MaxLevel: 32})
	if !RestoreInto(b, st) {
		t.Fatal("RUBIC rejected its own state")
	}
	got := b.ExportState()
	if got.Level != st.Level || got.WMax != st.WMax {
		t.Fatalf("restored %+v, want %+v", got, st)
	}
	// The first post-restore observation is accepted as the new baseline and
	// growth resumes from the restored level, not the floor.
	if next := b.Next(100); next < int(st.Level) {
		t.Fatalf("post-restore level %d below restored %v", next, st.Level)
	}

	// Restore clamps to the new controller's feasible range.
	small := NewRUBIC(RUBICConfig{MaxLevel: 4})
	RestoreInto(small, TuningState{Level: 99, WMax: 50, Epoch: 3})
	if got := small.ExportState(); got.Level > 4 || got.WMax > 4 {
		t.Fatalf("restore did not clamp: %+v", got)
	}
}

// TestChaosTunerDegradesUnderSeededPlan drives a real Tuner with a seeded
// fault plan that drops 2×K consecutive ticks and corrupts the samples
// around them: the guard must hold, degrade and recover without the loop
// ever stalling, and the schedule must be identical across runs.
func TestChaosTunerDegradesUnderSeededPlan(t *testing.T) {
	const k = 3
	run := func() ([]fault.Firing, HealthStats) {
		plan := &fault.Plan{Seed: 11, Events: []fault.Event{
			{Point: fault.TickDrop, From: 6, Count: 2 * k},
			{Point: fault.SampleNaN, From: 8, Count: 2},
			{Point: fault.ClockJump, From: 12},
		}}
		target := &fakeTarget{}
		target.level.Store(1)
		inj := fault.New(plan)
		tuner := &Tuner{
			Controller: NewRUBIC(RUBICConfig{MaxLevel: 16}),
			Target:     target,
			Period:     2 * time.Millisecond,
			Health:     &HealthPolicy{DegradeAfter: k, FallbackLevel: 2},
			Faults:     inj,
		}
		tuner.Start()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if g := tuner.Guard(); g != nil && g.Stats().Recoveries > 0 && target.setCalls.Load() > 30 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		tuner.Stop()
		return inj.Schedule(), tuner.Guard().Stats()
	}
	schedA, statsA := run()
	schedB, _ := run()
	if statsA.Degradations == 0 || statsA.Recoveries == 0 || statsA.Held == 0 {
		t.Fatalf("guard never walked the ladder: %+v", statsA)
	}
	if len(schedA) != len(schedB) {
		t.Fatalf("fault schedules differ across identical runs: %v vs %v", schedA, schedB)
	}
	for i := range schedA {
		if schedA[i] != schedB[i] {
			t.Fatalf("fault schedules diverge at %d: %v vs %v", i, schedA[i], schedB[i])
		}
	}
}

func TestTunerPublishesResumableState(t *testing.T) {
	target := &fakeTarget{}
	target.level.Store(1)
	tuner := &Tuner{
		Controller: NewRUBIC(RUBICConfig{MaxLevel: 16}),
		Target:     target,
		Period:     2 * time.Millisecond,
	}
	if _, ok := tuner.TuningState(); ok {
		t.Fatal("state published before any decision")
	}
	tuner.Start()
	deadline := time.Now().Add(5 * time.Second)
	for target.setCalls.Load() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tuner.Stop()
	st, ok := tuner.TuningState()
	if !ok || st.Level < 1 {
		t.Fatalf("no resumable state published: %+v ok=%v", st, ok)
	}
}
