package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCubicGrowthAnchors(t *testing.T) {
	const alpha, beta = 0.8, 0.1
	lmax := 64.0
	k := CubicInflection(lmax, alpha, beta)
	// At dt = K the curve crosses L_max exactly.
	if got := CubicGrowth(lmax, k, alpha, beta); math.Abs(got-lmax) > 1e-9 {
		t.Fatalf("CubicGrowth at inflection = %v, want %v", got, lmax)
	}
	// At dt = 0 the curve sits alpha*lmax below L_max (the paper's form).
	want := lmax - alpha*lmax
	if got := CubicGrowth(lmax, 0, alpha, beta); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CubicGrowth at 0 = %v, want %v", got, want)
	}
	// Strictly increasing in dt.
	prev := math.Inf(-1)
	for dt := 0.0; dt < 30; dt++ {
		cur := CubicGrowth(lmax, dt, alpha, beta)
		if cur <= prev {
			t.Fatalf("cubic not increasing at dt=%v: %v <= %v", dt, cur, prev)
		}
		prev = cur
	}
}

func TestCubicGrowthQuickMonotone(t *testing.T) {
	f := func(l uint8, a, b uint8) bool {
		lmax := float64(l%100) + 1
		alpha := float64(a%9+1) / 10 // 0.1..0.9
		beta := float64(b%9+1) / 100 // 0.01..0.09
		prev := math.Inf(-1)
		for dt := 0.0; dt < 50; dt++ {
			cur := CubicGrowth(lmax, dt, alpha, beta)
			if cur <= prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRUBICInitialState(t *testing.T) {
	r := NewRUBIC(RUBICConfig{MaxLevel: 64})
	if r.Level() != 1 {
		t.Fatalf("initial level = %d, want 1", r.Level())
	}
	if r.Name() != "rubic" {
		t.Fatalf("name = %q", r.Name())
	}
}

// TestRUBICProbesOnGains: with monotonically non-decreasing throughput the
// level must climb to the maximum (the probing phase of Figure 5).
func TestRUBICProbesOnGains(t *testing.T) {
	r := NewRUBIC(RUBICConfig{MaxLevel: 64})
	tc := 1.0
	rounds := 0
	for r.Level() < 64 && rounds < 500 {
		r.Next(tc)
		tc += 1 // always improving
		rounds++
	}
	if r.Level() != 64 {
		t.Fatalf("level after %d improving rounds = %d, want 64", rounds, r.Level())
	}
	// Probing must be much faster than pure +1 stepping: the cubic phase
	// takes longer and longer steps once past the inflection.
	if rounds >= 126 { // 2 rounds per +1 would need 126
		t.Fatalf("reached 64 in %d rounds; cubic probing should beat pure linear", rounds)
	}
}

// TestRUBICHybridReduction: a single loss triggers a -2 linear cut; a
// persistent loss escalates to a multiplicative cut to Alpha*L.
func TestRUBICHybridReduction(t *testing.T) {
	r := NewRUBIC(RUBICConfig{MaxLevel: 128})
	// Drive to a known level with gains.
	for i := 0; i < 40; i++ {
		r.Next(float64(10 + i))
	}
	lvl := r.Level()
	if lvl < 10 {
		t.Fatalf("setup level = %d, want >= 10", lvl)
	}
	// First loss: linear -2.
	got := r.Next(0.1)
	if got != lvl-2 {
		t.Fatalf("after first loss level = %d, want %d", got, lvl-2)
	}
	// The round after a reduction always grows (T_p was zeroed): +1.
	got2 := r.Next(0.1)
	if got2 != got+1 {
		t.Fatalf("forced growth round level = %d, want %d", got2, got+1)
	}
	// Persistent loss: multiplicative cut to Alpha * level.
	got3 := r.Next(0.05)
	want := clamp(0.8*float64(got2), 128)
	if got3 != want {
		t.Fatalf("after persistent loss level = %d, want %d", got3, want)
	}
}

// TestRUBICGainReArmsLinearReduction: after a loss followed by genuine
// recovery, the next loss must again be linear (-2), not multiplicative.
func TestRUBICGainReArmsLinearReduction(t *testing.T) {
	r := NewRUBIC(RUBICConfig{MaxLevel: 128})
	for i := 0; i < 30; i++ {
		r.Next(float64(10 + i))
	}
	r.Next(1)            // loss: linear -2, tp=0
	r.Next(5)            // forced growth, tp=5
	lvl := r.Next(9)     // genuine gain (9 >= 5): re-arms linear reduction
	got := r.Next(0.001) // loss again
	if got != lvl-2 {
		t.Fatalf("re-armed loss level = %d, want linear cut to %d", got, lvl-2)
	}
}

// TestRUBICSteadyState: with a throughput cliff at 32 threads, RUBIC must
// oscillate near 32 with high average utilization (the Figure 5 behaviour).
func TestRUBICSteadyState(t *testing.T) {
	r := NewRUBIC(RUBICConfig{MaxLevel: 128})
	peak := 32.0
	throughputAt := func(level int) float64 {
		l := float64(level)
		if l <= peak {
			return l
		}
		return peak - 3*(l-peak) // steep penalty beyond the peak
	}
	var sum float64
	const rounds = 600
	const warm = 100
	level := r.Level()
	for i := 0; i < rounds; i++ {
		level = r.Next(throughputAt(level))
		if i >= warm {
			sum += float64(level)
		}
	}
	avg := sum / (rounds - warm)
	if avg < 26 || avg > 36 {
		t.Fatalf("steady-state average level = %.1f, want ~32 (26..36)", avg)
	}
}

func TestRUBICLevelBounds(t *testing.T) {
	r := NewRUBIC(RUBICConfig{MaxLevel: 8})
	// Hammer with losses: never below 1.
	for i := 0; i < 50; i++ {
		if got := r.Next(-float64(i)); got < 1 {
			t.Fatalf("level %d < 1", got)
		}
	}
	r.Reset()
	// Hammer with gains: never above MaxLevel.
	for i := 0; i < 200; i++ {
		if got := r.Next(float64(i)); got > 8 {
			t.Fatalf("level %d > max 8", got)
		}
	}
}

// TestRUBICQuickBounds property: any throughput sequence keeps the level in
// [1, MaxLevel].
func TestRUBICQuickBounds(t *testing.T) {
	f := func(obs []float64, max uint8) bool {
		m := int(max%64) + 1
		r := NewRUBIC(RUBICConfig{MaxLevel: m})
		for _, o := range obs {
			if got := r.Next(o); got < 1 || got > m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRUBICResetRestoresInitialState(t *testing.T) {
	r := NewRUBIC(RUBICConfig{MaxLevel: 64})
	for i := 0; i < 25; i++ {
		r.Next(float64(i))
	}
	r.Reset()
	if r.Level() != 1 {
		t.Fatalf("level after Reset = %d, want 1", r.Level())
	}
	// Behaviour after reset matches a fresh controller.
	fresh := NewRUBIC(RUBICConfig{MaxLevel: 64})
	for i := 0; i < 25; i++ {
		a, b := r.Next(float64(i)), fresh.Next(float64(i))
		if a != b {
			t.Fatalf("round %d: reset controller %d != fresh %d", i, a, b)
		}
	}
}

func TestRUBICAblationFlags(t *testing.T) {
	pure := NewRUBIC(RUBICConfig{MaxLevel: 256, DisableHybridGrowth: true})
	hybrid := NewRUBIC(RUBICConfig{MaxLevel: 256})
	// With hybrid growth disabled, every round is cubic, so the level grows
	// at least as fast under identical observations.
	tp, th := 1, 1
	for i := 0; i < 60; i++ {
		tp = pure.Next(float64(10 + i))
		th = hybrid.Next(float64(10 + i))
	}
	if tp < th {
		t.Fatalf("pure-cubic level %d < hybrid level %d after equal gains", tp, th)
	}

	md := NewRUBIC(RUBICConfig{MaxLevel: 256, DisableHybridReduction: true})
	for i := 0; i < 40; i++ {
		md.Next(float64(10 + i))
	}
	before := md.Level()
	after := md.Next(0.01)
	if want := clamp(0.8*float64(before), 256); after != want {
		t.Fatalf("pure-MD first loss level = %d, want immediate cut to %d", after, want)
	}
}
