package core

import (
	"testing"
	"testing/quick"
)

// recorder captures what the inner controller observes.
type recorder struct {
	obs   []float64
	level int
}

func (r *recorder) Next(tc float64) int { r.obs = append(r.obs, tc); return r.level }
func (r *recorder) Level() int          { return r.level }
func (r *recorder) Reset()              { r.obs = nil }
func (r *recorder) Name() string        { return "recorder" }

func TestSmoothedEWMA(t *testing.T) {
	rec := &recorder{level: 3}
	s := NewSmoothed(rec, 0.5)
	s.Next(10) // first observation passes through
	s.Next(20) // 0.5*20 + 0.5*10 = 15
	s.Next(0)  // 0.5*0 + 0.5*15 = 7.5
	want := []float64{10, 15, 7.5}
	for i, w := range want {
		if rec.obs[i] != w {
			t.Fatalf("inner obs = %v, want %v", rec.obs, want)
		}
	}
	if s.Level() != 3 {
		t.Fatalf("Level = %d", s.Level())
	}
	if s.Name() != "recorder+ewma" {
		t.Fatalf("Name = %q", s.Name())
	}
	s.Reset()
	if len(rec.obs) != 0 {
		t.Fatal("Reset did not propagate")
	}
	s.Next(8)
	if rec.obs[0] != 8 {
		t.Fatal("state survived Reset")
	}
}

func TestSmoothedGammaClamped(t *testing.T) {
	rec := &recorder{level: 1}
	s := NewSmoothed(rec, 0) // clamped to 1: pass-through
	s.Next(5)
	s.Next(9)
	if rec.obs[1] != 9 {
		t.Fatalf("gamma 0 should pass through, inner saw %v", rec.obs)
	}
}

func TestTolerantSuppressesSmallDips(t *testing.T) {
	rec := &recorder{level: 2}
	tol := NewTolerant(rec, 0.05)
	tol.Next(100)
	tol.Next(97) // 3% dip: within tolerance, reported as tie (100)
	tol.Next(80) // 17.5% dip from the held 100: reported as-is
	want := []float64{100, 100, 80}
	for i, w := range want {
		if rec.obs[i] != w {
			t.Fatalf("inner obs = %v, want %v", rec.obs, want)
		}
	}
	if tol.Name() != "recorder+tol" {
		t.Fatalf("Name = %q", tol.Name())
	}
}

func TestTolerantZeroTolIsTransparent(t *testing.T) {
	rec := &recorder{level: 1}
	tol := NewTolerant(rec, -1) // clamped to 0
	seq := []float64{5, 4, 6, 6, 2}
	for _, v := range seq {
		tol.Next(v)
	}
	for i, w := range seq {
		if rec.obs[i] != w {
			t.Fatalf("inner obs = %v, want %v", rec.obs, seq)
		}
	}
}

// TestFilteredRUBICStillBounded property: decorated RUBIC keeps its level in
// range for arbitrary observations.
func TestFilteredRUBICStillBounded(t *testing.T) {
	f := func(obs []float64) bool {
		c := NewSmoothed(NewTolerant(NewRUBIC(RUBICConfig{MaxLevel: 32}), 0.02), 0.3)
		for _, o := range obs {
			if got := c.Next(o); got < 1 || got > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTolerantImprovesNoisyStability: under pure noise on a flat plateau,
// the tolerant EBS changes level less often than the raw one.
func TestTolerantImprovesNoisyStability(t *testing.T) {
	noise := []float64{100, 99, 101, 98, 100, 102, 99, 101, 100, 98, 99, 100,
		101, 99, 102, 100, 98, 101, 99, 100}
	raw := NewEBS(64)
	tol := NewTolerant(NewEBS(64), 0.05)
	rawMoves, tolMoves := 0, 0
	prevRaw, prevTol := raw.Level(), tol.Level()
	for _, o := range noise {
		if l := raw.Next(o); l != prevRaw {
			rawMoves++
			prevRaw = l
		}
		if l := tol.Next(o); l != prevTol {
			tolMoves++
			prevTol = l
		}
	}
	// The tolerant variant treats every <=5% dip as a tie, so it climbs
	// monotonically; the raw one zig-zags. Both move, but the tolerant one
	// never moves down.
	if tol.Level() < raw.Level() {
		t.Fatalf("tolerant level %d < raw %d under plateau noise", tol.Level(), raw.Level())
	}
	if rawMoves == 0 {
		t.Fatal("raw controller never moved; noise sequence too tame")
	}
	_ = tolMoves
}
