package core

import (
	"testing"
	"time"
)

// growToSLO drives a guard with meeting epochs (p99 well under target,
// monotonically improving throughput) until it reaches the target level.
func growToSLO(t *testing.T, g *SLOGuard, target int) int {
	t.Helper()
	tp, level := 100.0, g.Level()
	for i := 0; i < 200 && level < target; i++ {
		tp += 10
		level = g.NextEpoch(g.Target()/10, tp)
	}
	if level < target {
		t.Fatalf("SLO guard stuck at level %d, wanted >= %d", level, target)
	}
	return level
}

// TestSLOGuardBreachCutsWithinK is the satellite's contract, table-driven
// over K and alpha: a sustained p99 breach must drive the level down within
// K epochs, and recovery must re-enter CUBIC growth from the preserved wMax
// (mirroring TestHealthGuardDegradationLadder's structure).
func TestSLOGuardBreachCutsWithinK(t *testing.T) {
	cases := []struct {
		name  string
		k     int
		alpha float64
	}{
		{"immediate", 1, 0.8},
		{"default", DefaultBreachAfter, DefaultSLOAlpha},
		{"patient", 4, 0.5},
	}
	const slo = 10 * time.Millisecond
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inner := NewRUBIC(RUBICConfig{MaxLevel: 32})
			g, err := NewSLOGuard(inner, SLOPolicy{TargetP99: slo, BreachAfter: tc.k, Alpha: tc.alpha})
			if err != nil {
				t.Fatal(err)
			}
			held := growToSLO(t, g, 10)
			if g.State() != Meeting {
				t.Fatalf("state %v after meeting epochs", g.State())
			}

			// Breach: p99 2x over target. The first K-1 epochs hold the
			// level; epoch K cuts it multiplicatively.
			for i := 1; i < tc.k; i++ {
				level := g.NextEpoch(2*slo, 50)
				if g.State() != Breaching || level != held {
					t.Fatalf("breach epoch %d: state %v level %d, want breaching hold at %d", i, g.State(), level, held)
				}
			}
			cut := g.NextEpoch(2*slo, 50)
			if cut >= held {
				t.Fatalf("confirmed breach did not cut: level %d, was %d", cut, held)
			}
			wantCut := int(tc.alpha * float64(held))
			if wantCut >= held {
				wantCut = held - 1
			}
			if wantCut < 1 {
				wantCut = 1
			}
			if cut != wantCut {
				t.Fatalf("cut to %d, want alpha-cut %d", cut, wantCut)
			}
			st := g.Stats()
			if st.Cuts != 1 || st.Breaches != uint64(tc.k) {
				t.Fatalf("stats %+v, want 1 cut after %d breaches", st, tc.k)
			}

			// The cut is installed through the restore path: wMax anchors at
			// the breach level so recovery re-enters cubic growth toward it.
			inSt, ok := StateOf(g)
			if !ok {
				t.Fatal("guarded RUBIC is not resumable")
			}
			if int(inSt.WMax) != held || int(inSt.Level) != cut {
				t.Fatalf("restored state %+v, want level %d anchored at wMax %d", inSt, cut, held)
			}

			// Recovery: one meeting epoch flips the posture and growth
			// resumes from the cut level, climbing back toward wMax on the
			// cubic curve rather than jumping past it.
			level := g.NextEpoch(slo/10, 500)
			if g.State() != Meeting || g.Stats().Recoveries != 1 {
				t.Fatalf("state %v recoveries %d after a meeting epoch", g.State(), g.Stats().Recoveries)
			}
			if level < cut || level > held {
				t.Fatalf("first recovery level %d outside [%d, %d]", level, cut, held)
			}
			growToSLO(t, g, held) // cubic growth reaches the anchor again
		})
	}
}

// TestSLOGuardSustainedBreachReachesFloor: a breach that never recovers
// keeps cutting every K epochs down to MinLevel and stays there.
func TestSLOGuardSustainedBreachReachesFloor(t *testing.T) {
	const slo = time.Millisecond
	g, err := NewSLOGuard(NewRUBIC(RUBICConfig{MaxLevel: 32}), SLOPolicy{TargetP99: slo, BreachAfter: 2, MinLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	growToSLO(t, g, 16)
	level := g.Level()
	for i := 0; i < 40; i++ {
		next := g.NextEpoch(10*slo, 10)
		if next > level {
			t.Fatalf("level rose from %d to %d during a sustained breach", level, next)
		}
		level = next
	}
	if level != 2 {
		t.Fatalf("sustained breach settled at %d, want the MinLevel floor 2", level)
	}
	if g.Stats().Cuts < 3 {
		t.Fatalf("only %d cuts on the way to the floor", g.Stats().Cuts)
	}
}

// TestSLOGuardSingleEpochNoiseHolds: with K=2, one noisy epoch must not
// cut; the guard holds and a meeting epoch re-arms.
func TestSLOGuardSingleEpochNoiseHolds(t *testing.T) {
	const slo = time.Millisecond
	g, err := NewSLOGuard(NewRUBIC(RUBICConfig{MaxLevel: 16}), SLOPolicy{TargetP99: slo, BreachAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	held := growToSLO(t, g, 8)
	for round := 0; round < 5; round++ {
		if level := g.NextEpoch(5*slo, 100); level != held {
			t.Fatalf("round %d: single breach epoch moved the level to %d", round, level)
		}
		held = g.NextEpoch(slo/10, 1000) // meeting epoch re-arms the breach count
	}
	if st := g.Stats(); st.Cuts != 0 || st.Recoveries != 5 {
		t.Fatalf("stats %+v, want 0 cuts and 5 recoveries", st)
	}
}

// TestSLOGuardNonResumableInner: the cut still actuates over controllers
// without a restore path.
func TestSLOGuardNonResumableInner(t *testing.T) {
	const slo = time.Millisecond
	g, err := NewSLOGuard(NewAIAD(16, 1), SLOPolicy{TargetP99: slo, BreachAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	held := growToSLO(t, g, 8)
	cut := g.NextEpoch(2*slo, 10)
	if cut >= held {
		t.Fatalf("cut %d not below held %d", cut, held)
	}
	if g.Level() != cut {
		t.Fatalf("guard level %d, want the cut %d", g.Level(), cut)
	}
}

// TestSLOGuardIdleEpochIsNotABreach: an epoch with no completions (p99 0)
// counts as meeting — an idle service is not missing its SLO.
func TestSLOGuardIdleEpochIsNotABreach(t *testing.T) {
	g, err := NewSLOGuard(NewRUBIC(RUBICConfig{MaxLevel: 8}), SLOPolicy{TargetP99: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	growToSLO(t, g, 4)
	g.NextEpoch(5*time.Millisecond, 10) // arm a breach
	if g.State() != Breaching {
		t.Fatal("breach epoch did not arm")
	}
	g.NextEpoch(0, 0) // idle epoch
	if g.State() != Meeting || g.Stats().Cuts != 0 {
		t.Fatalf("idle epoch: state %v cuts %d, want meeting with no cut", g.State(), g.Stats().Cuts)
	}
}

// TestSLOGuardAsPlainController: driven through the Controller interface
// (no latency signal), the guard is transparent.
func TestSLOGuardAsPlainController(t *testing.T) {
	inner := NewRUBIC(RUBICConfig{MaxLevel: 16})
	ref := NewRUBIC(RUBICConfig{MaxLevel: 16})
	g, err := NewSLOGuard(inner, SLOPolicy{TargetP99: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var c Controller = g
	tp := 100.0
	for i := 0; i < 50; i++ {
		tp += 5
		if got, want := c.Next(tp), ref.Next(tp); got != want {
			t.Fatalf("round %d: guarded %d != bare %d", i, got, want)
		}
	}
	if g.Name() != "rubic+slo" {
		t.Fatalf("name %q", g.Name())
	}
	c.Reset()
	if c.Level() != 1 || g.State() != Meeting {
		t.Fatalf("reset left level %d state %v", c.Level(), g.State())
	}
}

// TestSLOGuardBadPolicy pins constructor validation.
func TestSLOGuardBadPolicy(t *testing.T) {
	inner := NewRUBIC(RUBICConfig{MaxLevel: 4})
	if _, err := NewSLOGuard(inner, SLOPolicy{}); err == nil {
		t.Fatal("missing target accepted")
	}
	if _, err := NewSLOGuard(inner, SLOPolicy{TargetP99: time.Second, Alpha: 1.5}); err == nil {
		t.Fatal("alpha >= 1 accepted")
	}
}
