package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// adaptiveTestConfig keeps the epoch arithmetic in the tests small: one
// warmup epoch after every switch, two scored epochs per window, three
// consecutive bad epochs to re-probe.
func adaptiveTestConfig(cands ...string) AdaptiveConfig {
	return AdaptiveConfig{
		Candidates:     cands,
		Window:         2,
		Warmup:         1,
		Hysteresis:     3,
		Margin:         0.10,
		DriftThreshold: 0.25,
	}
}

// sig builds a clean signal with the given goodput score.
func sig(score float64) AdaptiveSignal { return AdaptiveSignal{Tput: score} }

func TestAdaptivePolicyValidation(t *testing.T) {
	if _, err := NewAdaptivePolicy(AdaptiveConfig{}); err == nil {
		t.Fatal("policy accepted an empty candidate list")
	}
	p, err := NewAdaptivePolicy(AdaptiveConfig{Candidates: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Current() != 0 {
		t.Fatalf("fresh policy at candidate %d", p.Current())
	}
}

// TestAdaptivePolicyProbeSweep pins the sweep schedule epoch by epoch:
// warmup, a full window on each candidate in index order, then settling on
// the argmax with the switch surfaced exactly once.
func TestAdaptivePolicyProbeSweep(t *testing.T) {
	p, err := NewAdaptivePolicy(adaptiveTestConfig("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	// Candidate 0 scores 50; candidate 1 scores 100 and must win.
	steps := []struct {
		score      float64
		wantCand   int
		wantSwitch bool
		wantPhase  AdaptivePhase
	}{
		{50, 0, false, AdaptiveProbing},  // warmup, discarded
		{50, 0, false, AdaptiveProbing},  // window 1/2 on a
		{50, 1, true, AdaptiveProbing},   // window closes -> probe b
		{100, 1, false, AdaptiveProbing}, // warmup after the switch
		{100, 1, false, AdaptiveProbing}, // window 1/2 on b
		{100, 1, false, AdaptiveSettled}, // sweep done: b wins, already running
	}
	for i, step := range steps {
		dec := p.Observe(sig(step.score))
		if dec.Candidate != step.wantCand || dec.Switched != step.wantSwitch || dec.Phase != step.wantPhase {
			t.Fatalf("epoch %d: got {cand=%d switched=%v phase=%s}, want {%d %v %s}",
				i, dec.Candidate, dec.Switched, dec.Phase, step.wantCand, step.wantSwitch, step.wantPhase.String())
		}
	}
	st := p.Stats()
	if st.Probes != 2 || st.Switches != 1 || st.Reprobes != 0 {
		t.Fatalf("stats %+v, want 2 probes, 1 switch, 0 reprobes", st)
	}
}

// TestAdaptivePolicySettlesOnBest: when the first candidate wins, settling
// must switch back to it; exact ties resolve to the lowest index.
func TestAdaptivePolicySettlesOnBest(t *testing.T) {
	t.Run("first_wins", func(t *testing.T) {
		p, _ := NewAdaptivePolicy(adaptiveTestConfig("a", "b"))
		scores := []float64{0, 100, 100, 0, 40, 40}
		var last AdaptiveDecision
		for _, s := range scores {
			last = p.Observe(sig(s))
		}
		if !last.Switched || last.Candidate != 0 || last.Phase != AdaptiveSettled {
			t.Fatalf("settling decision %+v, want switch back to candidate 0", last)
		}
	})
	t.Run("tie_to_lowest", func(t *testing.T) {
		p, _ := NewAdaptivePolicy(adaptiveTestConfig("a", "b"))
		var last AdaptiveDecision
		for i := 0; i < 6; i++ {
			last = p.Observe(sig(70))
		}
		if last.Candidate != 0 || !last.Switched {
			t.Fatalf("tie settled on %+v, want candidate 0", last)
		}
	})
}

// TestAdaptivePolicyHysteresis: a settled policy shrugs off fewer than
// Hysteresis degraded epochs, and re-probes — incumbent first, no immediate
// switch — once the run of bad epochs reaches it.
func TestAdaptivePolicyHysteresis(t *testing.T) {
	p, _ := NewAdaptivePolicy(adaptiveTestConfig("a", "b"))
	for _, s := range []float64{0, 50, 50, 0, 100, 100} {
		p.Observe(sig(s)) // sweep: b wins with ref 100
	}
	// Fill the rolling window at the reference, then dip for two epochs and
	// recover: the windowed mean is degraded for exactly two consecutive
	// epochs (55, 55) before the recovery epoch clears it — under hysteresis
	// 3 that must not re-probe.
	var dec AdaptiveDecision
	for _, s := range []float64{100, 100, 10, 100, 100} {
		dec = p.Observe(sig(s))
	}
	if dec.Phase != AdaptiveSettled {
		t.Fatal("re-probed after only 2 degraded epochs with hysteresis 3")
	}
	if p.Stats().Reprobes != 0 {
		t.Fatalf("reprobes %d, want 0", p.Stats().Reprobes)
	}
	// Three consecutive degraded epochs (means 55, 10, 10) re-probe.
	p.Observe(sig(10))
	p.Observe(sig(10))
	dec = p.Observe(sig(10))
	if dec.Phase != AdaptiveProbing {
		t.Fatal("sustained degradation did not re-open probing")
	}
	if dec.Switched {
		t.Fatal("re-probe switched immediately; the incumbent must be re-measured first")
	}
	if dec.Candidate != 1 {
		t.Fatalf("re-probe starts at candidate %d, want the incumbent 1", dec.Candidate)
	}
	if p.Stats().Reprobes != 1 {
		t.Fatalf("reprobes %d, want 1", p.Stats().Reprobes)
	}
}

// TestAdaptivePolicyDriftReprobes: profile drift (abort ratio far from the
// settle-time anchor) re-probes even when the score holds up — the score may
// be saturated by an open-loop arrival rate while the workload underneath
// changed shape.
func TestAdaptivePolicyDriftReprobes(t *testing.T) {
	p, _ := NewAdaptivePolicy(adaptiveTestConfig("a", "b"))
	for _, s := range []float64{0, 50, 50, 0, 100, 100} {
		p.Observe(sig(s))
	}
	drifted := AdaptiveSignal{Tput: 100, AbortRatio: 0.6} // anchor was 0.0
	var dec AdaptiveDecision
	for i := 0; i < 3; i++ {
		dec = p.Observe(drifted)
	}
	if dec.Phase != AdaptiveProbing {
		t.Fatal("abort-ratio drift did not re-open probing")
	}
}

// TestAdaptivePolicyRestore pins restart semantics: a restored policy
// resumes settled on the preserved candidate without a probing sweep, keeps
// the preserved switch count, and re-anchors its drift references on the
// first observation instead of comparing against zeroes.
func TestAdaptivePolicyRestore(t *testing.T) {
	p, _ := NewAdaptivePolicy(adaptiveTestConfig("a", "b"))
	if p.Restore(AdaptiveState{Candidate: "nope"}) {
		t.Fatal("restore accepted an unknown candidate")
	}
	st := AdaptiveState{Candidate: "b", Phase: "settled", Reference: 100, Switches: 5}
	if !p.Restore(st) {
		t.Fatal("restore rejected a known candidate")
	}
	if p.Current() != 1 {
		t.Fatalf("restored to candidate %d, want 1", p.Current())
	}
	got := p.State()
	if got.Candidate != "b" || got.Phase != "settled" || got.Switches != 5 {
		t.Fatalf("state after restore %+v", got)
	}
	// A high-abort steady state must re-anchor, not read as drift: feed many
	// epochs at abort 0.6 (score at the reference) and require no re-probe.
	for i := 0; i < 10; i++ {
		dec := p.Observe(AdaptiveSignal{Tput: 250, AbortRatio: 0.6})
		if dec.Phase != AdaptiveSettled || dec.Switched {
			t.Fatalf("epoch %d after restore: %+v, want to stay settled", i, dec)
		}
	}
}

// TestTunerDrivesAdapter: the tuning loop must call the adapter once per
// tick, after actuation (the adapter observes the level already in force).
func TestTunerDrivesAdapter(t *testing.T) {
	target := &fakeTarget{}
	target.level.Store(1)
	ad := &recordingAdapter{target: target}
	tuner := &Tuner{
		Controller: NewRUBIC(RUBICConfig{MaxLevel: 8}),
		Target:     target,
		Period:     2 * time.Millisecond,
		Adapter:    ad,
	}
	tuner.Start()
	deadline := time.Now().Add(5 * time.Second)
	for ad.epochs.Load() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tuner.Stop()
	if n := ad.epochs.Load(); n < 10 {
		t.Fatalf("adapter saw %d epochs after 5s", n)
	}
	if ad.beforeActuate.Load() {
		t.Fatal("adapter ran before the tick's SetLevel")
	}
}

type recordingAdapter struct {
	target        *fakeTarget
	epochs        atomic.Uint64
	beforeActuate atomic.Bool
}

func (a *recordingAdapter) Epoch(tput float64) {
	// Every tick actuates before the adapter runs, so SetLevel calls must
	// always be ahead of the epoch count.
	if a.target.setCalls.Load() <= int32(a.epochs.Load()) {
		a.beforeActuate.Store(true)
	}
	a.epochs.Add(1)
}
