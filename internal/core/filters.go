package core

// This file provides composable observation filters around any Controller.
// The paper's controllers compare raw adjacent-period throughputs (Tc >= Tp);
// in noisy environments two standard hardenings are an EWMA low-pass filter
// on the observations and a relative loss tolerance. Both are provided as
// decorators so any policy — RUBIC or a baseline — can be hardened
// identically, and their effect is measurable in the ablation benchmarks.

// Smoothed wraps a controller with an exponentially weighted moving average
// over the observed throughput: the inner controller sees
//
//	s_t = gamma*obs + (1-gamma)*s_{t-1}
//
// Gamma = 1 passes observations through unchanged.
type Smoothed struct {
	Inner Controller
	// Gamma is the EWMA weight of the newest observation (0 < Gamma <= 1).
	Gamma float64

	state   float64
	started bool
}

// NewSmoothed returns a smoothing decorator. Gamma outside (0, 1] is
// clamped to 1 (no smoothing).
func NewSmoothed(inner Controller, gamma float64) *Smoothed {
	if gamma <= 0 || gamma > 1 {
		gamma = 1
	}
	return &Smoothed{Inner: inner, Gamma: gamma}
}

// Next implements Controller.
func (s *Smoothed) Next(tc float64) int {
	if !s.started {
		s.state = tc
		s.started = true
	} else {
		s.state = s.Gamma*tc + (1-s.Gamma)*s.state
	}
	return s.Inner.Next(s.state)
}

// Level implements Controller.
func (s *Smoothed) Level() int { return s.Inner.Level() }

// Reset implements Controller.
func (s *Smoothed) Reset() {
	s.state = 0
	s.started = false
	s.Inner.Reset()
}

// Name implements Controller.
func (s *Smoothed) Name() string { return s.Inner.Name() + "+ewma" }

// Tolerant wraps a controller so that throughput dips smaller than a
// relative tolerance are reported as ties instead of losses: an observation
// obs with obs >= (1-Tol)*best-so-far-since-last-loss is lifted to the
// inner controller's last seen value. This suppresses reactions to
// measurement noise at the cost of a slower response to genuine small
// regressions.
type Tolerant struct {
	Inner Controller
	// Tol is the relative dip treated as noise (e.g. 0.02 for 2%).
	Tol float64

	last    float64
	started bool
}

// NewTolerant returns a tolerance decorator; negative Tol is clamped to 0.
func NewTolerant(inner Controller, tol float64) *Tolerant {
	if tol < 0 {
		tol = 0
	}
	return &Tolerant{Inner: inner, Tol: tol}
}

// Next implements Controller.
func (t *Tolerant) Next(tc float64) int {
	obs := tc
	if t.started && tc < t.last && tc >= (1-t.Tol)*t.last {
		// Within tolerance: report a tie (the previous value), which every
		// policy in this package treats as "no loss".
		obs = t.last
	}
	t.last = obs
	t.started = true
	return t.Inner.Next(obs)
}

// Level implements Controller.
func (t *Tolerant) Level() int { return t.Inner.Level() }

// Reset implements Controller.
func (t *Tolerant) Reset() {
	t.last = 0
	t.started = false
	t.Inner.Reset()
}

// Name implements Controller.
func (t *Tolerant) Name() string { return t.Inner.Name() + "+tol" }
