package core

import (
	"math"
	"sync"
	"time"
)

// Telemetry-health constants of the controller layer (see DefaultPeriod for
// the unit-discipline rationale).
const (
	// DefaultMaxStaleness is the default bound on a sample's age: a sample
	// covering more than three ticks means the monitoring loop lost ticks and
	// the observation no longer describes the level it is attributed to.
	DefaultMaxStaleness = 3 * DefaultPeriod

	// DefaultDegradeAfter is K, the number of consecutive silent or garbage
	// ticks after which a guarded controller stops holding and degrades to
	// its fallback (equal-share) level.
	DefaultDegradeAfter = 5
)

// HealthPolicy configures telemetry health tracking around a controller.
type HealthPolicy struct {
	// MaxStaleness is the oldest a sample may be and still count as a valid
	// observation (default DefaultMaxStaleness).
	MaxStaleness time.Duration
	// DegradeAfter is K: consecutive bad ticks before the guard degrades
	// from holding to the fallback level (default DefaultDegradeAfter).
	DegradeAfter int
	// FallbackLevel is the degraded posture, typically the equal-share
	// allocation (hardware contexts / co-located processes); default 1.
	FallbackLevel int
}

func (p *HealthPolicy) defaults() {
	if p.MaxStaleness <= 0 {
		p.MaxStaleness = DefaultMaxStaleness
	}
	if p.DegradeAfter <= 0 {
		p.DegradeAfter = DefaultDegradeAfter
	}
	if p.FallbackLevel < 1 {
		p.FallbackLevel = 1
	}
}

// Sample is one quality-tagged telemetry observation: the measured commit
// rate and the age of the window it covers (how long since the previous
// accepted observation).
type Sample struct {
	Tput float64
	Age  time.Duration
}

// HealthState is the guard's position on its degradation ladder.
type HealthState uint8

const (
	// Healthy: samples are flowing and valid; decisions delegate to the
	// wrapped controller.
	Healthy HealthState = iota
	// Holding: 1..K-1 consecutive bad ticks; the guard repeats its last good
	// decision and leaves the wrapped controller untouched.
	Holding
	// Degraded: K or more consecutive bad ticks; the guard actuates the
	// fallback (equal-share) level until telemetry recovers.
	Degraded
)

// String names the state for reports.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Holding:
		return "holding"
	case Degraded:
		return "degraded"
	}
	return "unknown"
}

// HealthStats counts the guard's ladder transitions for observability.
type HealthStats struct {
	// Held counts bad ticks absorbed by repeating the last decision.
	Held uint64
	// Degradations counts Holding→Degraded transitions.
	Degradations uint64
	// Recoveries counts transitions back to Healthy.
	Recoveries uint64
}

// HealthGuard wraps a Controller with the degradation ladder the tentpole
// requires: a missed or garbage tick holds the last decision instead of
// feeding the controller a lie; K consecutive bad ticks degrade to the
// fallback level; a good sample re-enters normal tuning from the held state
// — the wrapped controller is never advanced on bad input, so RUBIC's cubic
// anchors (wMax, epoch) survive the outage intact.
//
// One tuner loop drives the decision path (Next/NextSample/Missed), matching
// the Controller contract, but the observability accessors (State, Stats,
// Level) are safe to call from other goroutines — the agent's telemetry
// ticker and tests poll them while the loop runs — so all mutable fields sit
// behind a mutex. The decision path runs once per controller period; the
// lock is uncontended noise there.
type HealthGuard struct {
	inner Controller
	cfg   HealthPolicy

	mu    sync.Mutex
	state HealthState
	bad   int
	held  int
	stats HealthStats
}

// NewHealthGuard wraps inner in a health guard. It panics on a nil inner,
// which is a programming error.
func NewHealthGuard(inner Controller, cfg HealthPolicy) *HealthGuard {
	if inner == nil {
		panic("core: HealthGuard wrapping nil controller")
	}
	cfg.defaults()
	return &HealthGuard{inner: inner, cfg: cfg, held: inner.Level()}
}

// Unwrap exposes the guarded controller (see StateOf / RestoreInto).
func (g *HealthGuard) Unwrap() Controller { return g.inner }

// State reports the guard's ladder position.
func (g *HealthGuard) State() HealthState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.state
}

// Stats returns the transition counters.
func (g *HealthGuard) Stats() HealthStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Name implements Controller, delegating to the guarded policy.
func (g *HealthGuard) Name() string { return g.inner.Name() }

// Level implements Controller: the level the guard last actuated.
func (g *HealthGuard) Level() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.state == Degraded {
		return g.cfg.FallbackLevel
	}
	return g.held
}

// Reset implements Controller.
func (g *HealthGuard) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inner.Reset()
	g.state, g.bad = Healthy, 0
	g.held = g.inner.Level()
	g.stats = HealthStats{}
}

// Next implements Controller, treating the raw throughput as a fresh sample.
func (g *HealthGuard) Next(tc float64) int {
	return g.NextSample(Sample{Tput: tc})
}

// NextSample consumes one quality-tagged observation and returns the level
// to actuate. Garbage (NaN, infinite, negative), silence (zero) and
// staleness (age past the bound) all count as bad ticks.
func (g *HealthGuard) NextSample(s Sample) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.sampleBad(s) {
		return g.badTick()
	}
	if g.state != Healthy {
		// Recovery: the inner controller was never advanced during the
		// outage, so it resumes from its preserved state. Its reference
		// throughput predates the outage; that is exactly the held state the
		// tentpole asks growth to re-enter from.
		g.state = Healthy
		g.bad = 0
		g.stats.Recoveries++
	}
	g.held = g.inner.Next(s.Tput)
	return g.held
}

// Escalate forces the guard straight to Degraded, skipping the Holding
// rungs. It is the out-of-band entry point for faults that are not
// telemetry-shaped — the durability layer calls it when the WAL loses its
// persistence guarantee (fsync failure), because running wide while
// silently non-durable compounds the damage. The ladder's normal recovery
// still applies: the next good sample returns the guard to Healthy, while
// the durability-lost flag stays with the Log that raised it.
func (g *HealthGuard) Escalate() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.bad = g.cfg.DegradeAfter
	if g.state != Degraded {
		g.state = Degraded
		g.stats.Degradations++
	}
}

// Missed records a tick that never produced a sample (a dropped tick) and
// returns the level to keep actuating.
func (g *HealthGuard) Missed() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.badTick()
}

func (g *HealthGuard) sampleBad(s Sample) bool {
	if math.IsNaN(s.Tput) || math.IsInf(s.Tput, 0) || s.Tput < 0 {
		return true
	}
	if s.Tput == 0 {
		return true // a silent window: no commits observed at all
	}
	return s.Age > g.cfg.MaxStaleness
}

func (g *HealthGuard) badTick() int {
	g.bad++
	if g.bad >= g.cfg.DegradeAfter {
		if g.state != Degraded {
			g.state = Degraded
			g.stats.Degradations++
		}
		return g.cfg.FallbackLevel
	}
	g.state = Holding
	g.stats.Held++
	return g.held
}
