package core

import (
	"sync/atomic"
	"testing"
	"time"

	"rubic/internal/trace"
)

// fakeTarget is a Target whose completion counter advances by a fixed rate
// per actuated level, letting the Tuner be tested without a real pool.
type fakeTarget struct {
	level     atomic.Int32
	completed atomic.Uint64
	setCalls  atomic.Int32
}

func (f *fakeTarget) SetLevel(n int) {
	f.level.Store(int32(n))
	f.setCalls.Add(1)
}

func (f *fakeTarget) Completed() uint64 {
	// Simulate progress proportional to the current level.
	f.completed.Add(uint64(f.level.Load()) * 10)
	return f.completed.Load()
}

func TestTunerDrivesController(t *testing.T) {
	target := &fakeTarget{}
	target.level.Store(1)
	levels := trace.NewSeries("levels")
	thpts := trace.NewSeries("thpt")
	tuner := &Tuner{
		Controller:  NewRUBIC(RUBICConfig{MaxLevel: 16}),
		Target:      target,
		Period:      2 * time.Millisecond,
		Levels:      levels,
		Throughputs: thpts,
	}
	tuner.Start()
	deadline := time.Now().Add(5 * time.Second)
	for target.setCalls.Load() < 20 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tuner.Stop()

	if calls := target.setCalls.Load(); calls < 20 {
		t.Fatalf("only %d SetLevel calls after 5s", calls)
	}
	if levels.Len() == 0 || thpts.Len() == 0 {
		t.Fatal("tuner did not record traces")
	}
	if levels.Len() != thpts.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", levels.Len(), thpts.Len())
	}
	// A target whose rate grows with the level must be driven upward by
	// RUBIC (monotone gains -> probing).
	if got := target.level.Load(); got < 4 {
		t.Fatalf("level after probing = %d, want to have grown past 4", got)
	}
	for i, v := range levels.V {
		if v < 1 || v > 16 {
			t.Fatalf("recorded level %v out of range at sample %d", v, i)
		}
	}
}

func TestTunerDefaultPeriod(t *testing.T) {
	target := &fakeTarget{}
	target.level.Store(1)
	tuner := &Tuner{
		Controller: NewStatic("pin", 3, 8),
		Target:     target,
	}
	tuner.Start()
	if tuner.Period != 10*time.Millisecond {
		tuner.Stop()
		t.Fatalf("default period = %v, want 10ms", tuner.Period)
	}
	tuner.Stop()
}

func TestTunerStopBeforeStart(t *testing.T) {
	tuner := &Tuner{
		Controller: NewStatic("pin", 2, 4),
		Target:     &fakeTarget{},
	}
	tuner.Stop() // must not panic or block
	tuner.Start()
	tuner.Stop()
	tuner.Stop() // double Stop after a full cycle is also safe
}

func TestTunerStopIsPrompt(t *testing.T) {
	target := &fakeTarget{}
	tuner := &Tuner{
		Controller: NewStatic("pin", 2, 4),
		Target:     target,
		Period:     time.Hour, // never ticks
	}
	tuner.Start()
	done := make(chan struct{})
	go func() {
		tuner.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop blocked on a pending tick")
	}
}
