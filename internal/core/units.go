package core

import "time"

// Canonical timing constants of the controller layer. Every component that
// schedules or interprets controller rounds — the Tuner, the multi-process
// supervisor and agents, the co-location drivers — must derive its timing
// from these instead of spelling raw duration literals, so the measurement
// cadence cannot silently diverge between components. The ctlunits analyzer
// (rubic/internal/analysis) enforces this.
const (
	// DefaultPeriod is the controller tick: the paper's 10 ms monitoring
	// interval over which throughput is measured and a new level actuated.
	DefaultPeriod = 10 * time.Millisecond

	// TicksPerSecond converts per-tick commit counts to per-second rates at
	// the default period.
	TicksPerSecond = int(time.Second / DefaultPeriod)
)
