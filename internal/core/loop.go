package core

import (
	"sync"
	"time"

	"rubic/internal/trace"
)

// Target is the malleable process a Tuner steers: the real worker pool and
// any other adaptable runtime satisfy it.
type Target interface {
	// SetLevel actuates a new parallelism level.
	SetLevel(int)
	// Completed returns the monotonically increasing count of completed
	// tasks (the commit counter sum in a TM process).
	Completed() uint64
}

// Tuner is the monitoring loop of the paper's section 3.1: every Period it
// computes the throughput of the period that just ended from the target's
// completion counters, feeds it to the controller, and actuates the decided
// level.
//
// The paper runs this loop in a thread of elevated priority so it keeps
// running under oversubscription; goroutine priorities are not exposed in
// Go, so the loop relies on the runtime's preemptive scheduler instead —
// with a 10 ms period the sampling jitter is negligible in practice.
type Tuner struct {
	Controller Controller
	Target     Target
	// Period is the measurement interval; defaults to the paper's 10 ms.
	Period time.Duration
	// Levels and Throughputs, when non-nil, receive one sample per round
	// (time measured in seconds since Run started).
	Levels      *trace.Series
	Throughputs *trace.Series

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// Start launches the monitoring loop in its own goroutine.
func (t *Tuner) Start() {
	if t.Period <= 0 {
		t.Period = DefaultPeriod
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	go t.run()
}

// Stop terminates the loop and waits for it to exit. Calling Stop without a
// prior Start is a no-op, and repeated Stops are safe — supervision error
// paths tear tuners down without tracking whether they ever started.
func (t *Tuner) Stop() {
	if t.stop == nil {
		return
	}
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}

func (t *Tuner) run() {
	defer close(t.done)
	ticker := time.NewTicker(t.Period)
	defer ticker.Stop()
	start := time.Now()
	prevCount := t.Target.Completed()
	prevTime := start
	for {
		select {
		case <-t.stop:
			return
		case now := <-ticker.C:
			count := t.Target.Completed()
			elapsed := now.Sub(prevTime).Seconds()
			if elapsed <= 0 {
				continue
			}
			tc := float64(count-prevCount) / elapsed
			prevCount, prevTime = count, now
			level := t.Controller.Next(tc)
			t.Target.SetLevel(level)
			if t.Levels != nil {
				t.Levels.Add(now.Sub(start).Seconds(), float64(level))
			}
			if t.Throughputs != nil {
				t.Throughputs.Add(now.Sub(start).Seconds(), tc)
			}
		}
	}
}
