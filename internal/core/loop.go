package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"rubic/internal/fault"
	"rubic/internal/trace"
)

// Fault-injection timing constants (derived from the canonical tick; see
// units.go).
const (
	// clockJumpAge is the elapsed-time inflation the ctl.clockjump injection
	// point adds to one tick, modelling a suspended or migrated process.
	clockJumpAge = 20 * DefaultPeriod

	// injectedStaleAge is the age the ctl.stalesample injection point stamps
	// on one sample — past any reasonable staleness bound.
	injectedStaleAge = 1000 * DefaultPeriod
)

// Adapter is the per-epoch hook of an adaptive runtime stack (see
// colocate.AdaptiveStack): each tick it receives the epoch's throughput
// sample and may hot-swap the stack's engine or contention manager before
// the next epoch runs.
type Adapter interface {
	Epoch(tput float64)
}

// Target is the malleable process a Tuner steers: the real worker pool and
// any other adaptable runtime satisfy it.
type Target interface {
	// SetLevel actuates a new parallelism level.
	SetLevel(int)
	// Completed returns the monotonically increasing count of completed
	// tasks (the commit counter sum in a TM process).
	Completed() uint64
}

// Tuner is the monitoring loop of the paper's section 3.1: every Period it
// computes the throughput of the period that just ended from the target's
// completion counters, feeds it to the controller, and actuates the decided
// level.
//
// The paper runs this loop in a thread of elevated priority so it keeps
// running under oversubscription; goroutine priorities are not exposed in
// Go, so the loop relies on the runtime's preemptive scheduler instead —
// with a 10 ms period the sampling jitter is negligible in practice.
type Tuner struct {
	Controller Controller
	Target     Target
	// Period is the measurement interval; defaults to the paper's 10 ms.
	Period time.Duration
	// Levels and Throughputs, when non-nil, receive one sample per round
	// (time measured in seconds since Run started).
	Levels      *trace.Series
	Throughputs *trace.Series
	// Health, when non-nil, wraps Controller in a HealthGuard at Start:
	// samples are quality-tagged with their age, missed ticks hold the last
	// decision, and sustained outages degrade to the policy's fallback level.
	Health *HealthPolicy
	// Faults is the controller-layer fault injector (nil: no injection, the
	// production state — the injection points below cost one nil test each).
	Faults *fault.Injector
	// Adapter, when non-nil, is driven once per tick after the level is
	// actuated — the adaptive runtime's epoch boundary. Running it after
	// actuation orders any engine handoff behind the controller's decision
	// for the epoch (SLO cuts included), so the adapter's fresh StateOf
	// snapshot at the handoff never resurrects pre-cut state.
	Adapter Adapter

	guard     *HealthGuard
	published atomic.Pointer[TuningState]
	stop      chan struct{}
	done      chan struct{}
	stopOnce  sync.Once
}

// Start launches the monitoring loop in its own goroutine.
func (t *Tuner) Start() {
	if t.Period <= 0 {
		t.Period = DefaultPeriod
	}
	if t.Health != nil && t.guard == nil {
		t.guard = NewHealthGuard(t.Controller, *t.Health)
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	go t.run()
}

// Stop terminates the loop and waits for it to exit. Calling Stop without a
// prior Start is a no-op, and repeated Stops are safe — supervision error
// paths tear tuners down without tracking whether they ever started.
func (t *Tuner) Stop() {
	if t.stop == nil {
		return
	}
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}

// Guard exposes the health guard installed at Start (nil without a Health
// policy), for telemetry and tests.
func (t *Tuner) Guard() *HealthGuard { return t.guard }

// TuningState returns the most recent resumable controller state the loop
// published (ok is false before the first decision or for controllers that
// are not Resumable). It is safe to call concurrently with the loop — the
// supervisor protocol streams this so a restarted process can resume tuning
// where its predecessor stopped.
func (t *Tuner) TuningState() (TuningState, bool) {
	if st := t.published.Load(); st != nil {
		return *st, true
	}
	return TuningState{}, false
}

// active is the controller the loop actually drives: the guard when a health
// policy is installed, the raw controller otherwise.
func (t *Tuner) active() Controller {
	if t.guard != nil {
		return t.guard
	}
	return t.Controller
}

func (t *Tuner) run() {
	defer close(t.done)
	ticker := time.NewTicker(t.Period)
	defer ticker.Stop()
	start := time.Now()
	prevCount := t.Target.Completed()
	prevTime := start
	for {
		select {
		case <-t.stop:
			return
		case now := <-ticker.C:
			if t.Faults.Fire(fault.TickDrop) {
				// The tick is lost before any sample is taken. A guarded
				// controller holds its last decision; an unguarded one just
				// misses the round. The sample window is left open, so the
				// next tick's observation covers it.
				if t.guard != nil {
					t.actuate(t.guard.Missed())
				}
				continue
			}
			count := t.Target.Completed()
			elapsed := now.Sub(prevTime)
			if t.Faults.Fire(fault.ClockJump) {
				elapsed += clockJumpAge
			}
			if elapsed <= 0 {
				continue
			}
			tc := float64(count-prevCount) / elapsed.Seconds()
			prevCount, prevTime = count, now
			if t.Faults.Fire(fault.SampleZero) {
				tc = 0
			}
			if t.Faults.Fire(fault.SampleNaN) {
				tc = math.NaN()
			}
			age := elapsed
			if t.Faults.Fire(fault.SampleStale) {
				age = injectedStaleAge
			}
			var level int
			if t.guard != nil {
				level = t.guard.NextSample(Sample{Tput: tc, Age: age})
			} else {
				level = t.Controller.Next(tc)
			}
			t.actuate(level)
			if t.Adapter != nil {
				t.Adapter.Epoch(tc)
			}
			if t.Levels != nil {
				t.Levels.Add(now.Sub(start).Seconds(), float64(level))
			}
			if t.Throughputs != nil {
				t.Throughputs.Add(now.Sub(start).Seconds(), tc)
			}
		}
	}
}

// actuate applies a decision and publishes the controller's resumable state.
func (t *Tuner) actuate(level int) {
	t.Target.SetLevel(level)
	if st, ok := StateOf(t.active()); ok {
		t.published.Store(&st)
	}
}
