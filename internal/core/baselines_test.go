package core

import (
	"testing"
	"testing/quick"
)

func TestAIADStepsUpAndDown(t *testing.T) {
	a := NewAIAD(16, 1)
	if a.Level() != 1 {
		t.Fatalf("initial level = %d", a.Level())
	}
	if got := a.Next(10); got != 2 {
		t.Fatalf("gain step = %d, want 2", got)
	}
	if got := a.Next(20); got != 3 {
		t.Fatalf("gain step = %d, want 3", got)
	}
	if got := a.Next(5); got != 2 {
		t.Fatalf("loss step = %d, want 2", got)
	}
	// Equal throughput counts as gain (Tc >= Tp).
	if got := a.Next(5); got != 3 {
		t.Fatalf("tie step = %d, want 3", got)
	}
}

func TestAIADBounds(t *testing.T) {
	a := NewAIAD(4, 1)
	for i := 0; i < 20; i++ {
		a.Next(float64(i))
	}
	if a.Level() != 4 {
		t.Fatalf("level = %d, want clamped to 4", a.Level())
	}
	for i := 0; i < 20; i++ {
		a.Next(1 / float64(i+2)) // strictly decreasing
	}
	if a.Level() != 1 {
		t.Fatalf("level = %d, want clamped to 1", a.Level())
	}
}

func TestEBSIsAIAD(t *testing.T) {
	e := NewEBS(32)
	a := NewAIAD(32, 1)
	obs := []float64{5, 9, 12, 3, 8, 8, 2, 15, 1, 1}
	for _, o := range obs {
		if ge, ga := e.Next(o), a.Next(o); ge != ga {
			t.Fatalf("EBS %d != AIAD %d on obs %v", ge, ga, o)
		}
	}
	if e.Name() != "ebs" {
		t.Fatalf("name = %q", e.Name())
	}
}

func TestF2C2ExponentialThenAIAD(t *testing.T) {
	f := NewF2C2(128)
	// Exponential doubling while gaining: 1 -> 2 -> 4 -> 8 -> 16.
	want := []int{2, 4, 8, 16}
	for i, w := range want {
		if got := f.Next(float64(10 * (i + 1))); got != w {
			t.Fatalf("exp round %d = %d, want %d", i, got, w)
		}
	}
	// First loss: halve once and leave the exponential phase.
	if got := f.Next(1); got != 8 {
		t.Fatalf("halving = %d, want 8", got)
	}
	// From now on plain AIAD.
	if got := f.Next(2); got != 9 {
		t.Fatalf("post-exp gain = %d, want 9", got)
	}
	if got := f.Next(1); got != 8 {
		t.Fatalf("post-exp loss = %d, want 8", got)
	}
	// Never doubles again even on large gains.
	if got := f.Next(1000); got != 9 {
		t.Fatalf("post-exp big gain = %d, want 9", got)
	}
}

func TestAIMDMultiplicativeCut(t *testing.T) {
	a := NewAIMD(64, 0.5)
	for i := 0; i < 40; i++ {
		a.Next(float64(i + 1))
	}
	if a.Level() != 41 {
		t.Fatalf("level after 40 gains = %d, want 41", a.Level())
	}
	if got := a.Next(0.5); got != 21 { // 41*0.5 = 20.5 rounds to 21
		t.Fatalf("after loss = %d, want 21", got)
	}
	// tp was zeroed: next round is a forced gain.
	if got := a.Next(0.1); got != 22 {
		t.Fatalf("forced gain = %d, want 22", got)
	}
}

func TestStaticPins(t *testing.T) {
	s := NewStatic("greedy", 64, 64)
	for _, o := range []float64{0, 100, -5} {
		if got := s.Next(o); got != 64 {
			t.Fatalf("static level = %d, want 64", got)
		}
	}
	if NewStatic("x", 100, 64).Level() != 64 {
		t.Fatal("static not clamped to max")
	}
	if NewStatic("x", 0, 64).Level() != 1 {
		t.Fatal("static not clamped to 1")
	}
}

func TestByName(t *testing.T) {
	for _, name := range PolicyNames() {
		fac, err := ByName(name, 64, 2, 128)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		c := fac()
		if c.Name() != name {
			t.Fatalf("factory for %q built %q", name, c.Name())
		}
		if l := c.Level(); l < 1 || l > 128 {
			t.Fatalf("%q initial level %d out of range", name, l)
		}
	}
	if _, err := ByName("nope", 64, 2, 128); err == nil {
		t.Fatal("unknown policy accepted")
	}
	// EqualShare with 2 processes on 64 contexts pins 32 threads.
	fac, _ := ByName("equalshare", 64, 2, 128)
	if got := fac().Level(); got != 32 {
		t.Fatalf("equalshare level = %d, want 32", got)
	}
	// Greedy pins all contexts.
	fac, _ = ByName("greedy", 64, 2, 128)
	if got := fac().Level(); got != 64 {
		t.Fatalf("greedy level = %d, want 64", got)
	}
}

// TestQuickAllControllersBounded property: every adaptive policy keeps its
// level within [1, max] for arbitrary observation streams.
func TestQuickAllControllersBounded(t *testing.T) {
	build := map[string]func(max int) Controller{
		"rubic": func(m int) Controller { return NewRUBIC(RUBICConfig{MaxLevel: m}) },
		"ebs":   func(m int) Controller { return NewEBS(m) },
		"f2c2":  func(m int) Controller { return NewF2C2(m) },
		"aiad":  func(m int) Controller { return NewAIAD(m, 1) },
		"aimd":  func(m int) Controller { return NewAIMD(m, 0.5) },
	}
	for name, mk := range build {
		mk := mk
		t.Run(name, func(t *testing.T) {
			f := func(obs []float64, max uint8) bool {
				m := int(max%50) + 1
				c := mk(m)
				for _, o := range obs {
					if got := c.Next(o); got < 1 || got > m {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAIADTwoProcessNonConvergence reproduces the Figure 2a argument in
// miniature: two AIAD controllers sharing a hard capacity oscillate along
// the 45-degree line, so the gap between their levels never closes — AIAD
// cannot equalize an initially unequal allocation.
func TestAIADTwoProcessNonConvergence(t *testing.T) {
	const capacity = 16.0
	p1 := NewAIAD(64, 1)
	p2 := NewAIAD(64, 1)
	// Unequal start: p1 at 10, p2 at 2 (drive them there deterministically).
	for p1.Level() < 10 {
		p1.Next(float64(p1.Level() + 1000))
	}
	for p2.Level() < 2 {
		p2.Next(float64(p2.Level() + 1000))
	}
	gap := p1.Level() - p2.Level()
	// Shared-capacity feedback: beyond capacity both lose, below both gain.
	t1, t2 := 0.0, 0.0
	for round := 0; round < 200; round++ {
		total := float64(p1.Level() + p2.Level())
		if total > capacity {
			t1, t2 = t1*0.5, t2*0.5 // both observe loss
		} else {
			t1, t2 = t1+1, t2+1 // both observe gain
		}
		p1.Next(t1)
		p2.Next(t2)
	}
	if got := p1.Level() - p2.Level(); got < gap-2 || got > gap+2 {
		t.Fatalf("AIAD gap changed from %d to %d; additive moves should preserve it", gap, got)
	}
}

// TestAIMDTwoProcessConvergence is the Figure 2b counterpart: replacing the
// additive decrease with a multiplicative one shrinks the gap toward zero.
func TestAIMDTwoProcessConvergence(t *testing.T) {
	const capacity = 16.0
	p1 := NewAIMD(64, 0.5)
	p2 := NewAIMD(64, 0.5)
	for p1.Level() < 10 {
		p1.Next(float64(p1.Level() + 1000))
	}
	for p2.Level() < 2 {
		p2.Next(float64(p2.Level() + 1000))
	}
	t1, t2 := 1000.0, 1000.0
	for round := 0; round < 300; round++ {
		total := float64(p1.Level() + p2.Level())
		if total > capacity {
			t1, t2 = 0, 0
		} else {
			t1, t2 = t1+1, t2+1
		}
		p1.Next(t1)
		p2.Next(t2)
	}
	gap := p1.Level() - p2.Level()
	if gap < 0 {
		gap = -gap
	}
	if gap > 3 {
		t.Fatalf("AIMD gap after convergence = %d, want <= 3", gap)
	}
}

func TestHillClimbTracksPeak(t *testing.T) {
	h := NewHillClimb(64)
	peak := 20.0
	curve := func(level int) float64 {
		l := float64(level)
		if l <= peak {
			return l
		}
		return 2*peak - l
	}
	level := h.Level()
	sum, n := 0.0, 0
	for i := 0; i < 300; i++ {
		level = h.Next(curve(level))
		if i >= 100 {
			sum += float64(level)
			n++
		}
	}
	avg := sum / float64(n)
	if avg < 16 || avg > 24 {
		t.Fatalf("hill climber settled at %.1f, want ~20", avg)
	}
}

// TestHillClimbRestoringOnSlope: unlike plain AIAD, a dip below the plateau
// is answered by a reversal back up, not a continued descent.
func TestHillClimbRestoringOnSlope(t *testing.T) {
	h := NewHillClimb(64)
	// Climb to 10 with gains.
	for h.Level() < 10 {
		h.Next(float64(h.Level() * 100))
	}
	// Now feed losses: first loss reverses to descend, second (still losing
	// while descending on an upward slope) reverses back up.
	l1 := h.Next(1)   // loss: reverse, descend
	l2 := h.Next(0.5) // loss again: reverse, ascend
	if l1 >= 10 {
		t.Fatalf("first loss did not descend: %d", l1)
	}
	if l2 <= l1 {
		t.Fatalf("second loss did not reverse back up: %d <= %d", l2, l1)
	}
}

func TestHillClimbBounds(t *testing.T) {
	h := NewHillClimb(8)
	for i := 0; i < 100; i++ {
		if got := h.Next(float64(i % 3)); got < 1 || got > 8 {
			t.Fatalf("level %d out of bounds", got)
		}
	}
}

func TestByNameHillClimb(t *testing.T) {
	fac, err := ByName("hillclimb", 64, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if fac().Name() != "hillclimb" {
		t.Fatal("wrong controller")
	}
}
