package core

import (
	"testing"
)

func TestProfileThenPinSweepsAndPins(t *testing.T) {
	p := NewProfileThenPin(16, 4, 2)
	if p.Level() != 1 {
		t.Fatalf("initial level = %d", p.Level())
	}
	// Simulated curve with peak at level 9 (closest probe: 9).
	curve := func(l int) float64 {
		d := float64(l - 9)
		return 100 - d*d
	}
	for i := 0; i < 100 && !p.Pinned(); i++ {
		p.Next(curve(p.Level()))
	}
	if !p.Pinned() {
		t.Fatal("never pinned")
	}
	if got := p.Level(); got != 9 {
		t.Fatalf("pinned at %d, want 9 (probes 1,5,9,13; curve peak 9)", got)
	}
	// Once pinned, observations are ignored.
	if got := p.Next(0); got != 9 {
		t.Fatalf("post-pin level = %d", got)
	}
	if got := p.Next(1e9); got != 9 {
		t.Fatalf("post-pin level = %d", got)
	}
}

func TestProfileThenPinReset(t *testing.T) {
	p := NewProfileThenPin(8, 2, 1)
	for i := 0; i < 50; i++ {
		p.Next(float64(i))
	}
	p.Reset()
	if p.Pinned() || p.Level() != 1 {
		t.Fatal("Reset did not restore the profiling phase")
	}
}

func TestProfileThenPinDefaults(t *testing.T) {
	p := NewProfileThenPin(32, 0, 0)
	if p.step != 4 || p.probeRounds != 3 {
		t.Fatalf("defaults = step %d, probeRounds %d", p.step, p.probeRounds)
	}
}
