package core

// growthPhase and reductionPhase are the two interleaving flags of
// Algorithm 2.
type growthPhase uint8

const (
	growthCubic growthPhase = iota
	growthLinear
)

type reductionPhase uint8

const (
	reductionLinear reductionPhase = iota
	reductionMultiplicative
)

// RUBICConfig parameterizes a RUBIC controller.
type RUBICConfig struct {
	// MaxLevel bounds the level (the thread-pool size S). Required.
	MaxLevel int
	// Alpha is the multiplicative decrease factor (0 < Alpha < 1).
	// Defaults to 0.8, the value the evaluation uses.
	Alpha float64
	// Beta is the cubic growth scaling factor. Defaults to 0.1.
	Beta float64
	// InitialLevel is the starting parallelism level; defaults to 1
	// ("at the application initialization, the parallelism level is set to
	// minimum").
	InitialLevel int
	// DisableHybridGrowth makes every growth round cubic instead of
	// interleaving cubic and +1 linear rounds (ablation).
	DisableHybridGrowth bool
	// DisableHybridReduction makes every reduction round multiplicative
	// instead of trying a linear -2 round first (ablation).
	DisableHybridReduction bool
}

func (c *RUBICConfig) defaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.8
	}
	if c.Beta == 0 {
		c.Beta = 0.1
	}
	if c.InitialLevel == 0 {
		c.InitialLevel = 1
	}
}

// RUBIC is the paper's controller (Algorithm 2): on throughput gain or tie
// it grows the level, interleaving cubic rounds — Equation (1), taken as
// max(L_cubic, L+1) — with linear +1 rounds so adjacent levels can be
// compared; on throughput loss it first tries a linear -2 round and only
// escalates to a multiplicative cut (L_max <- L; L <- Alpha*L) when the loss
// persists, distinguishing "stepped past the peak" from "the environment
// changed".
type RUBIC struct {
	cfg RUBICConfig

	level     float64 // kept fractional internally; actuated rounded
	lmax      float64
	dtmax     float64
	tp        float64
	growth    growthPhase
	reduction reductionPhase
}

// NewRUBIC returns a RUBIC controller. It panics if cfg.MaxLevel < 1, which
// is a programming error (the pool size is always known).
func NewRUBIC(cfg RUBICConfig) *RUBIC {
	cfg.defaults()
	if cfg.MaxLevel < 1 {
		panic("core: RUBIC MaxLevel < 1")
	}
	r := &RUBIC{cfg: cfg}
	r.Reset()
	return r
}

// Reset implements Controller.
func (r *RUBIC) Reset() {
	r.level = float64(r.cfg.InitialLevel)
	r.lmax = float64(r.cfg.InitialLevel)
	r.dtmax = 0
	r.tp = 0
	r.growth = growthCubic
	r.reduction = reductionLinear
}

// Name implements Controller.
func (r *RUBIC) Name() string { return "rubic" }

// Level implements Controller.
func (r *RUBIC) Level() int { return clamp(r.level, r.cfg.MaxLevel) }

// ExportState implements Resumable: the level, the cubic anchor L_max (wMax)
// and the growth epoch dtmax survive a process restart.
func (r *RUBIC) ExportState() TuningState {
	return TuningState{Level: r.level, WMax: r.lmax, Epoch: r.dtmax}
}

// RestoreState implements Resumable: the controller resumes from the
// preserved level and cubic anchors instead of the floor. The reference
// throughput is forgotten (tp = 0) so the first post-restart observation is
// accepted as the new baseline, and the next round re-enters cubic growth
// toward the preserved wMax.
func (r *RUBIC) RestoreState(st TuningState) {
	if st.Level >= 1 {
		r.level = st.Level
	}
	if st.WMax >= 1 {
		r.lmax = st.WMax
	}
	if st.Epoch > 0 {
		r.dtmax = st.Epoch
	} else {
		// A state without a growth epoch restarts the cubic round count:
		// restoring into a mid-flight controller (the SLO guard's cut path)
		// must not inherit the old round count, or growth would re-enter the
		// probing phase immediately instead of climbing the curve toward the
		// preserved wMax. Fresh controllers already sit at zero.
		r.dtmax = 0
	}
	if ceil := float64(r.cfg.MaxLevel); r.level > ceil {
		r.level = ceil
	}
	if ceil := float64(r.cfg.MaxLevel); r.lmax > ceil {
		r.lmax = ceil
	}
	if r.lmax < r.level {
		// An inverted anchor (wMax below the level) can only come from a
		// stale or mixed snapshot — e.g. a restore racing an SLO cut that
		// lowered wMax in between export and restore. Cubic growth toward a
		// target below the current level would stall at +1 rounds forever;
		// normalize so the level itself is the anchor.
		r.lmax = r.level
	}
	r.tp = 0
	r.growth = growthCubic
	r.reduction = reductionLinear
}

// Next implements Controller with the literal structure of Algorithm 2.
func (r *RUBIC) Next(tc float64) int {
	if tc >= r.tp {
		// Growth rounds (lines 6-23).
		if r.growth == growthCubic || r.cfg.DisableHybridGrowth {
			r.dtmax++
			lcubic := CubicGrowth(r.lmax, r.dtmax, r.cfg.Alpha, r.cfg.Beta)
			if lc := r.level + 1; lcubic < lc {
				lcubic = lc
			}
			r.level = lcubic
			r.growth = growthLinear
		} else {
			r.level++
			r.growth = growthCubic
		}
		if r.tp != 0 {
			// A genuine gain (not the forced round after a reduction, which
			// zeroes tp): re-arm the gentle linear reduction.
			r.reduction = reductionLinear
		}
		r.tp = tc
	} else {
		// Reduction rounds (lines 25-36).
		r.dtmax = 0
		if r.reduction == reductionMultiplicative || r.cfg.DisableHybridReduction {
			r.lmax = r.level
			r.level = r.cfg.Alpha * r.level
			r.reduction = reductionLinear
		} else {
			r.level -= 2
			r.reduction = reductionMultiplicative
		}
		r.growth = growthLinear
		r.tp = 0
	}
	if r.level < 1 {
		r.level = 1
	}
	if r.level > float64(r.cfg.MaxLevel) {
		r.level = float64(r.cfg.MaxLevel)
	}
	return r.Level()
}
