package mproc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestProtoRoundTrip(t *testing.T) {
	frames := []Frame{
		HelloFrame(Hello{
			Workload: "rbtree-ro", Policy: "rubic", Pool: 8, Seed: 42,
			PeriodNS: 10_000_000, DurationNS: 2_000_000_000,
			Engine: "tl2", GOMAXPROCS: 4, PID: 1234,
		}),
		TelemetryFrame(Telemetry{T: 0.01, Level: 3, Tput: 12345.6, Commits: 120, Aborts: 7}),
		ResultFrame(Result{
			Completed: 100_000, Tput: 50_000, MeanLevel: 3.25,
			Commits: 100_100, Aborts: 900, Verified: true,
		}),
		ResultFrame(Result{Verified: false, Err: "tree invariant violated"}),
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, f := range frames {
		if err := enc.Encode(f); err != nil {
			t.Fatalf("encode %s: %v", f.Type, err)
		}
	}
	sc := bufio.NewScanner(&buf)
	for i, want := range frames {
		if !sc.Scan() {
			t.Fatalf("stream ended before frame %d", i)
		}
		got, err := Decode(sc.Bytes())
		if err != nil {
			t.Fatalf("decode frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if sc.Scan() {
		t.Fatal("extra frames on the wire")
	}
}

func TestProtoRejectsUnknownVersion(t *testing.T) {
	f := TelemetryFrame(Telemetry{T: 1})
	f.V = ProtoVersion + 41
	raw, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(raw); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown version accepted (err=%v)", err)
	}
}

func TestProtoRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"v":1`,                                   // truncated JSON
		`not json at all`,                          // garbage
		`{"v":1,"type":"launch"}`,                  // unknown type
		`{"v":1,"type":"hello"}`,                   // payload missing
		`{"v":1,"type":"telemetry"}`,               // payload missing
		`{"v":1,"type":"result"}`,                  // payload missing
		`{"type":"telemetry","telemetry":{"t":1}}`, // version missing (0)
	}
	for _, line := range cases {
		if _, err := Decode([]byte(line)); err == nil {
			t.Errorf("decoded %q without error", line)
		}
	}
}

func TestHelloAccessors(t *testing.T) {
	h := Hello{PeriodNS: 10_000_000, DurationNS: 2_000_000_000}
	if h.Period().Milliseconds() != 10 {
		t.Errorf("period = %v", h.Period())
	}
	if h.Duration().Seconds() != 2 {
		t.Errorf("duration = %v", h.Duration())
	}
}
