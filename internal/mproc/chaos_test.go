package mproc

import (
	"fmt"
	"testing"
	"time"

	"rubic/internal/fault"
)

// chaosChildren are the real-agent stacks the seeded soaks run: two genuine
// child processes, each with the full STM runtime, worker pool and RUBIC
// controller. The soaks run in -short mode too — `make chaos` depends on it.
// Both stacks use the bank workload: its population is cheap, and restart
// scenarios pay one population per incarnation (rbtree's 64K-element setup
// would dominate the soak's wall time under -race).
func chaosChildren() []ChildSpec {
	return []ChildSpec{
		{Name: "P1", Workload: "bank", Policy: "rubic", Pool: 2, Seed: 1},
		{Name: "P2", Workload: "bank", Policy: "rubic", Pool: 2, Seed: 2},
	}
}

// nonZeroFraction reports how many of a child's telemetry throughput samples
// are positive — the soak's proxy for "the commit rate never collapsed".
func nonZeroFraction(r ChildResult) float64 {
	if r.Throughputs.Len() == 0 {
		return 0
	}
	nz := 0
	for _, v := range r.Throughputs.V {
		if v > 0 {
			nz++
		}
	}
	return float64(nz) / float64(r.Throughputs.Len())
}

// TestChaosCrashLoopSoak is the acceptance soak: under crashloop@7 every
// agent crashes on its first two incarnations at seed-determined ticks; the
// supervisor must recover each within its backoff budget, hand the preserved
// tuning state to the replacements, and the co-located survivor's commit
// rate must never drop to zero while its sibling is being restarted.
func TestChaosCrashLoopSoak(t *testing.T) {
	// Duration is measurement budget: the supervisor charges each
	// incarnation's telemetry clock against it, not the wall time its
	// population burns, so 2 s comfortably covers three incarnations even on
	// slow -race CI hosts.
	results, err := Run(chaosChildren(), Options{
		Duration: 2 * time.Second,
		Period:   5 * time.Millisecond,
		Chaos:    "crashloop@7",
		Restart: RestartPolicy{MaxRestarts: 4, Backoff: 10 * time.Millisecond,
			MaxBackoff: 40 * time.Millisecond, JitterSeed: 7},
		Exec: fakeExec("agent", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Restarts != 2 {
			t.Errorf("%s: %d restarts, want 2 (crashloop kills incarnations 0 and 1)", r.Name, r.Restarts)
		}
		if r.Completed == 0 || !r.Verified {
			t.Errorf("%s: final incarnation did not complete cleanly: %+v", r.Name, r)
		}
		if frac := nonZeroFraction(r); frac < 0.5 {
			t.Errorf("%s: commit rate collapsed during recovery: only %.0f%% of samples nonzero", r.Name, frac*100)
		}
	}
	// The backoff schedules are pure functions of (policy, child, restart):
	// identical across any two runs of this scenario@seed by construction.
	for _, r := range results {
		p := RestartPolicy{MaxRestarts: 4, Backoff: 10 * time.Millisecond,
			MaxBackoff: 40 * time.Millisecond, JitterSeed: 7}
		for i, d := range r.Backoffs {
			if want := p.Delay(r.Name, i+1); d != want {
				t.Errorf("%s: backoff %d = %v, want deterministic %v", r.Name, i, d, want)
			}
		}
	}
}

// TestChaosCorruptSoak: corrupt@5 injects exactly four bad telemetry lines
// (two corrupt, one truncated, one version-skewed) into each stack's first
// incarnation; the frame-error budget absorbs all of them, deterministically.
func TestChaosCorruptSoak(t *testing.T) {
	results, err := Run(chaosChildren(), Options{
		Duration:         500 * time.Millisecond,
		Period:           5 * time.Millisecond,
		Chaos:            "corrupt@5",
		FrameErrorBudget: 4,
		Exec:             fakeExec("agent", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.DroppedFrames != 4 {
			t.Errorf("%s: dropped %d frames, want exactly the 4 scheduled", r.Name, r.DroppedFrames)
		}
		if r.Completed == 0 || !r.Verified {
			t.Errorf("%s: run damaged by corrupt lines: %+v", r.Name, r)
		}
	}
}

// TestChaosStallSoak: stall@3 wedges workers in the task slot and delays
// telemetry lines; the pool's gate accounting and the supervisor's deadlines
// must carry the run to clean results.
func TestChaosStallSoak(t *testing.T) {
	results, err := Run(chaosChildren(), Options{
		Duration: 500 * time.Millisecond,
		Period:   5 * time.Millisecond,
		Chaos:    "stall@3",
		Exec:     fakeExec("agent", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Completed == 0 || !r.Verified {
			t.Errorf("%s: stalled workers sank the run: %+v", r.Name, r)
		}
	}
}

// TestChaosMixedSoak layers controller-tick faults, worker panics, telemetry
// corruption and one crash per stack: every hardening layer at once. The
// recovered worker panics must surface in the supervisor's fault counter.
func TestChaosMixedSoak(t *testing.T) {
	results, err := Run(chaosChildren(), Options{
		Duration: 2 * time.Second,
		Period:   5 * time.Millisecond,
		Chaos:    "mixed@11",
		Restart: RestartPolicy{MaxRestarts: 2, Backoff: 10 * time.Millisecond,
			MaxBackoff: 40 * time.Millisecond, JitterSeed: 11},
		FrameErrorBudget: 2,
		Exec:             fakeExec("agent", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Restarts != 1 {
			t.Errorf("%s: %d restarts, want 1 (mixed crashes incarnation 0 only)", r.Name, r.Restarts)
		}
		if r.Faults == 0 {
			t.Errorf("%s: injected worker panics never surfaced in telemetry", r.Name)
		}
		if r.Completed == 0 || !r.Verified {
			t.Errorf("%s: run damaged: %+v", r.Name, r)
		}
	}
}

// TestChaosDurabilitySoak is the durable acceptance soak: under
// durability@9 each agent's WAL batch write is torn mid-commit-storm on its
// first two incarnations (an fsync stall first adds disk-latency pressure),
// killing the process at the torn write with no teardown. Every replacement
// must recover its predecessor's log, and the supervisor asserts the
// exact-prefix contract on each one's first report: the recovered prefix
// covers every commit any predecessor acked durable. The third incarnation
// runs clean and re-passes the workload's Verify over the recovered state.
func TestChaosDurabilitySoak(t *testing.T) {
	results, err := Run(chaosChildren(), Options{
		Duration: 2 * time.Second,
		Period:   5 * time.Millisecond,
		Chaos:    "durability@9",
		Durable:  true,
		WALRoot:  t.TempDir(),
		Restart: RestartPolicy{MaxRestarts: 4, Backoff: 10 * time.Millisecond,
			MaxBackoff: 40 * time.Millisecond, JitterSeed: 9},
		Exec: fakeExec("agent", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Restarts != 2 {
			t.Errorf("%s: %d restarts, want 2 (durability tears incarnations 0 and 1)", r.Name, r.Restarts)
		}
		if r.Wal == nil {
			t.Errorf("%s: durable child reported no WAL state", r.Name)
			continue
		}
		if r.Wal.Recovered == 0 {
			t.Errorf("%s: final incarnation recovered an empty prefix after two torn crashes", r.Name)
		}
		if r.WalAcked == 0 {
			t.Errorf("%s: no commit was ever acked durable", r.Name)
		}
		if r.Wal.Acked != r.Wal.Last {
			t.Errorf("%s: clean close left acked %d behind issued %d", r.Name, r.Wal.Acked, r.Wal.Last)
		}
		if r.Wal.Lost {
			t.Errorf("%s: final (clean) incarnation flagged durability lost", r.Name)
		}
		if r.Completed == 0 || !r.Verified {
			t.Errorf("%s: final incarnation did not complete cleanly: %+v", r.Name, r)
		}
	}
}

// TestChaosCrashSoak is the seeded kill-loop behind `make crash-soak`: under
// crashloop@seed each durable agent is killed at a seed-determined telemetry
// tick — mid-commit-storm, no teardown, no result frame — on its first two
// incarnations. Unlike the torn-write soak, the log itself is healthy at
// each kill, so recovery must surface everything written, and the
// supervisor's exact-prefix assertion (inside Run) checks each replacement
// against the durable watermark its predecessors reported. Multiple seeds
// vary the kill points across the storm.
func TestChaosCrashSoak(t *testing.T) {
	for _, seed := range []int64{7, 21} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			results, err := Run(chaosChildren(), Options{
				Duration: 2 * time.Second,
				Period:   5 * time.Millisecond,
				Chaos:    fmt.Sprintf("crashloop@%d", seed),
				Durable:  true,
				WALRoot:  t.TempDir(),
				Restart: RestartPolicy{MaxRestarts: 4, Backoff: 10 * time.Millisecond,
					MaxBackoff: 40 * time.Millisecond, JitterSeed: seed},
				Exec: fakeExec("agent", nil),
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				if r.Restarts != 2 {
					t.Errorf("%s: %d restarts, want 2 (crashloop kills incarnations 0 and 1)", r.Name, r.Restarts)
				}
				if r.WalRecoveries < 2 {
					t.Errorf("%s: only %d incarnations recovered a non-empty prefix, want both replacements", r.Name, r.WalRecoveries)
				}
				if r.Wal == nil || r.Wal.Recovered == 0 {
					t.Errorf("%s: final incarnation recovered nothing after two kills (wal=%+v)", r.Name, r.Wal)
				}
				if r.Completed == 0 || !r.Verified {
					t.Errorf("%s: final incarnation did not complete cleanly: %+v", r.Name, r)
				}
			}
		})
	}
}

// TestChaosScheduleDeterministic pins the end-to-end determinism claim at
// the plan layer: the exact fault plan each incarnation runs under is a pure
// function of scenario@seed, child and incarnation — two supervisors running
// the same chaos spec install identical schedules in every child.
func TestChaosScheduleDeterministic(t *testing.T) {
	for _, scenario := range fault.Scenarios() {
		for child := 0; child < 3; child++ {
			for inc := 0; inc < 3; inc++ {
				a, err := fault.PlanFor(scenario, 7, child, inc)
				if err != nil {
					t.Fatal(err)
				}
				b, _ := fault.PlanFor(scenario, 7, child, inc)
				if a.Seed != b.Seed || len(a.Events) != len(b.Events) {
					t.Fatalf("%s child %d inc %d: plans differ", scenario, child, inc)
				}
				for i := range a.Events {
					if a.Events[i] != b.Events[i] {
						t.Fatalf("%s child %d inc %d: event %d differs: %+v vs %+v",
							scenario, child, inc, i, a.Events[i], b.Events[i])
					}
				}
			}
		}
	}
}

// TestChaosSwapStormSoak: swapstorm kills each agent mid-engine-handoff —
// inside AdaptiveStack.actuate, after the controller snapshot but before the
// switch completes — on its second or third handoff. The supervisor must
// restart the stack once, hand the replacement both the preserved tuning
// state and the preserved adaptive-policy state, and the replacement must
// resume on its predecessor's candidate instead of re-probing from scratch.
func TestChaosSwapStormSoak(t *testing.T) {
	// Candidates alternate engines so every probing step is a real handoff —
	// the scenario's crash point is guaranteed to arm within the first sweep.
	const candidates = "tl2/backoff+norec/backoff+tl2/greedy+norec/greedy"
	results, err := Run(chaosChildren(), Options{
		Duration: 2 * time.Second,
		Period:   5 * time.Millisecond,
		Chaos:    "swapstorm@13",
		Adaptive: candidates,
		Restart: RestartPolicy{MaxRestarts: 2, Backoff: 10 * time.Millisecond,
			MaxBackoff: 40 * time.Millisecond, JitterSeed: 13},
		Exec: fakeExec("agent", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Restarts != 1 {
			t.Errorf("%s: %d restarts, want 1 (swapstorm crashes incarnation 0 only)", r.Name, r.Restarts)
		}
		if !r.CtlRestored {
			t.Errorf("%s: replacement incarnation was not handed the preserved tuning state", r.Name)
		}
		if !r.AdaptResumed {
			t.Errorf("%s: replacement re-probed instead of resuming the preserved candidate (adapt=%+v)", r.Name, r.Adapt)
		}
		if r.Adapt == nil {
			t.Errorf("%s: no adaptive state surfaced in telemetry", r.Name)
		}
		if r.Completed == 0 || !r.Verified {
			t.Errorf("%s: final incarnation did not complete cleanly: %+v", r.Name, r)
		}
		if frac := nonZeroFraction(r); frac < 0.5 {
			t.Errorf("%s: commit rate collapsed across the handoff crash: only %.0f%% of samples nonzero", r.Name, frac*100)
		}
	}
}
