package mproc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"rubic/internal/core"
	"rubic/internal/fault"
	"rubic/internal/trace"
)

// ChildSpec describes one co-located stack to run as a child OS process.
type ChildSpec struct {
	// Name labels the child in results and errors; empty names get a
	// generated "P<i>-workload-policy" label.
	Name string
	// Workload and Policy select the stack (colocate.StackSpec semantics).
	Workload string
	Policy   string
	// ArrivalDelay postpones the child's launch relative to the group's
	// start; the child then runs for the remaining duration.
	ArrivalDelay time.Duration
	// Pool is the child's worker count.
	Pool int
	// Seed derives the child's random streams.
	Seed int64
	// GOMAXPROCS, when positive, caps the child's Go scheduler.
	GOMAXPROCS int
}

// ExecFunc constructs the command for one agent child from its flag list.
// Tests substitute fake agents; the default re-executes the current binary
// with an "agent" subcommand.
type ExecFunc func(spec ChildSpec, args []string) (*exec.Cmd, error)

// RestartPolicy governs how the supervisor handles a crashed agent: restart
// it with exponential backoff and deterministic jitter, up to a bounded
// budget, with a circuit breaker that marks the stack failed once it
// crash-loops — while the surviving stacks keep running untouched.
type RestartPolicy struct {
	// MaxRestarts is the restart budget per child; 0 (the zero value)
	// disables restarts and fails the child on its first crash.
	MaxRestarts int
	// Backoff is the delay before the first restart (default 50 ms when
	// restarts are enabled), doubling on each consecutive restart.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 2 s).
	MaxBackoff time.Duration
	// JitterSeed derives the deterministic jitter factor applied to every
	// delay; the same seed, child name and restart index always produce the
	// same delay, so chaos runs are reproducible.
	JitterSeed int64
	// BreakerThreshold trips the circuit breaker after this many consecutive
	// crash-loop attempts (an attempt that died without streaming telemetry,
	// or before MinUptime); 0 disables the breaker and lets the restart
	// budget govern alone.
	BreakerThreshold int
	// MinUptime classifies attempts: one that fails sooner than this counts
	// as a crash-loop even if it streamed telemetry (0: only telemetry-less
	// deaths count).
	MinUptime time.Duration
}

func (p *RestartPolicy) defaults() {
	if p.MaxRestarts > 0 {
		if p.Backoff <= 0 {
			p.Backoff = 50 * time.Millisecond
		}
		if p.MaxBackoff <= 0 {
			p.MaxBackoff = 2 * time.Second
		}
	}
}

// Delay returns the deterministic backoff before the child's restart-th
// restart (1-based): exponential from Backoff, capped at MaxBackoff, scaled
// by a jitter factor in [0.5, 1.5) derived from JitterSeed, the child's name
// and the restart index.
func (p RestartPolicy) Delay(child string, restart int) time.Duration {
	p.defaults()
	if restart < 1 {
		restart = 1
	}
	base := p.Backoff
	for i := 1; i < restart && base < p.MaxBackoff; i++ {
		base *= 2
	}
	if base > p.MaxBackoff {
		base = p.MaxBackoff
	}
	h := fnv.New64a()
	_, _ = io.WriteString(h, child)
	jitter := fault.Mix64(uint64(p.JitterSeed) ^ h.Sum64() ^ uint64(restart))
	factor := 0.5 + float64(jitter%1024)/1024
	return time.Duration(float64(base) * factor)
}

// Options configures a supervised run.
type Options struct {
	// Duration is the group's total run length (children with arrival
	// delays run for the remainder).
	Duration time.Duration
	// Period is the controllers' monitoring period (default 10 ms).
	Period time.Duration
	// Engine selects the STM engine for every child (default tl2).
	Engine string
	// Processes overrides the sibling count passed to agents (for the
	// equalshare policy); defaults to the number of specs.
	Processes int
	// StartupTimeout bounds the wait for a child's handshake (default 10s).
	StartupTimeout time.Duration
	// SetupTimeout bounds the wait between the handshake and the first
	// telemetry or result frame — the child's workload-population window
	// (default 120s; population of big workloads is slow on loaded hosts).
	SetupTimeout time.Duration
	// Grace is the extra time past a child's run length before the
	// supervisor starts tearing it down (default 5s).
	Grace time.Duration
	// KillGrace bounds the graceful-shutdown escalation: when a deadline
	// expires the supervisor first interrupts the child and only kills it
	// this much later (default 2s), so a healthy-but-slow agent can still
	// flush its result while a wedged one cannot hang teardown.
	KillGrace time.Duration
	// Restart is the per-child restart policy (zero value: fail fast, the
	// pre-chaos behavior).
	Restart RestartPolicy
	// FrameErrorBudget tolerates up to this many undecodable telemetry lines
	// per attempt — counted in ChildResult.DroppedFrames — before declaring
	// a protocol error (default 0: strict).
	FrameErrorBudget int
	// Chaos names a fault scenario ("scenario@seed", see fault.ParseScenario)
	// threaded to every agent along with its child index and incarnation;
	// empty runs no chaos.
	Chaos string
	// Adaptive, when non-empty, runs every child's runtime adaptively over
	// this candidate list (colocate.ParseAdaptive syntax). The supervisor
	// preserves each child's last published policy state and hands it to
	// replacement incarnations, mirroring the tuning-state preservation.
	Adaptive string
	// Durable runs every child with a write-ahead log under WALRoot. Each
	// child gets a directory stable across its incarnations, so a restarted
	// agent recovers its predecessor's committed prefix — and the supervisor
	// asserts it did: a replacement whose recovered prefix misses a commit
	// the predecessor had acked durable fails the child.
	Durable bool
	// WALRoot is the parent directory for the per-child logs; required with
	// Durable.
	WALRoot string
	// Fsync names the children's fsync policy (default always — the only
	// policy whose acks survive kill -9 by contract, so the only one the
	// exact-prefix assertion can hold restarted incarnations to).
	Fsync string
	// Exec overrides child command construction; nil re-executes the
	// current binary in agent mode.
	Exec ExecFunc
}

// ChildResult is one child's outcome, valid even when Err is set (the
// telemetry streamed before the failure is preserved as partial results).
type ChildResult struct {
	Name string
	// Hello is the child's handshake (nil if it never completed one).
	Hello *Hello
	// Levels and Throughputs are the multiplexed telemetry, timestamped on
	// the group's clock (arrival delays already added); across restarts the
	// attempts' streams are concatenated on that clock.
	Levels      *trace.Series
	Throughputs *trace.Series
	// Completed, Throughput and MeanLevel come from the result frame; until
	// one arrives they are zero.
	Completed  uint64
	Throughput float64
	MeanLevel  float64
	// Commits and Aborts are the last STM counters seen (result frame, or
	// the final telemetry frame for a child that died early).
	Commits uint64
	Aborts  uint64
	// Faults is the child pool's recovered-panic count (last seen).
	Faults uint64
	// Verified reports whether the child's workload invariants held.
	Verified bool
	// Restarts counts how many replacement processes the supervisor
	// launched for this child.
	Restarts int
	// Backoffs records the restart delays actually scheduled, in order;
	// with a fixed RestartPolicy seed the slice is identical across runs.
	Backoffs []time.Duration
	// BreakerTripped reports that the circuit breaker marked this stack
	// failed after consecutive crash-loops.
	BreakerTripped bool
	// DroppedFrames counts undecodable telemetry lines absorbed by the
	// frame-error budget.
	DroppedFrames int
	// Adapt is the last adaptive-policy state seen in telemetry (nil for
	// non-adaptive children).
	Adapt *core.AdaptiveState
	// Wal is the durable layer's last reported position (nil for
	// non-durable children). Across restarts it is the final incarnation's.
	Wal *WalState
	// WalAcked is the highest durable watermark seen across every
	// incarnation of this child — the prefix a replacement must recover.
	WalAcked uint64
	// WalRecoveries counts incarnations that recovered a non-empty prefix.
	WalRecoveries int
	// CtlRestored reports that at least one replacement incarnation was
	// handed its predecessor's preserved tuning state; AdaptResumed that a
	// replacement's first telemetry confirmed the restored adaptive
	// candidate was actually running.
	CtlRestored  bool
	AdaptResumed bool
	// Err is the child's failure cause: crash, timeout, protocol violation
	// or agent-side error.
	Err error
}

// Run launches one agent child per spec, multiplexes their telemetry, waits
// for all of them (bounded by per-child deadlines — Run never hangs and
// reaps every child it starts), and returns per-child results in spec order.
// The returned error is the first failing child's cause, with the child
// named; results are returned alongside it, partial for the failed children.
// Failures are per-child: a crashed, wedged or crash-looping child never
// stops its siblings, and with a RestartPolicy installed it is relaunched
// within its backoff budget.
func Run(specs []ChildSpec, opt Options) ([]ChildResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("mproc: no children")
	}
	if opt.Duration <= 0 {
		return nil, fmt.Errorf("mproc: duration must be positive")
	}
	if opt.Period <= 0 {
		opt.Period = core.DefaultPeriod
	}
	if opt.Engine == "" {
		opt.Engine = "tl2"
	}
	if opt.Processes <= 0 {
		opt.Processes = len(specs)
	}
	if opt.StartupTimeout <= 0 {
		opt.StartupTimeout = 10 * time.Second
	}
	if opt.SetupTimeout <= 0 {
		opt.SetupTimeout = 120 * time.Second
	}
	if opt.Grace <= 0 {
		opt.Grace = 5 * time.Second
	}
	if opt.KillGrace <= 0 {
		opt.KillGrace = 2 * time.Second
	}
	opt.Restart.defaults()
	if opt.Chaos != "" {
		if _, _, err := fault.ParseScenario(opt.Chaos); err != nil {
			return nil, err
		}
	}
	if opt.Durable {
		if opt.WALRoot == "" {
			return nil, fmt.Errorf("mproc: Durable needs WALRoot")
		}
		if opt.Fsync == "" {
			opt.Fsync = "always"
		}
	}
	if opt.Exec == nil {
		opt.Exec = selfExec
	}
	names := map[string]struct{}{}
	for i := range specs {
		if specs[i].Name == "" {
			specs[i].Name = fmt.Sprintf("P%d-%s-%s", i+1, specs[i].Workload, specs[i].Policy)
		}
		if _, dup := names[specs[i].Name]; dup {
			return nil, fmt.Errorf("mproc: duplicate child name %q", specs[i].Name)
		}
		names[specs[i].Name] = struct{}{}
		if specs[i].Pool < 1 {
			return nil, fmt.Errorf("mproc: child %s pool size %d", specs[i].Name, specs[i].Pool)
		}
	}

	results := make([]ChildResult, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runChild(specs[i], i, opt, &results[i])
		}(i)
	}
	wg.Wait()

	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("mproc: child %s: %w", results[i].Name, results[i].Err)
		}
	}
	return results, nil
}

// AgentArgs returns the agent-mode flag list for a child running for the
// given active duration (total minus arrival delay).
func AgentArgs(spec ChildSpec, opt Options, active time.Duration) []string {
	args := []string{
		"-workload", spec.Workload,
		"-policy", spec.Policy,
		"-pool", strconv.Itoa(spec.Pool),
		"-seed", strconv.FormatInt(spec.Seed, 10),
		"-duration", active.String(),
		"-period", opt.Period.String(),
		"-engine", opt.Engine,
		"-gomaxprocs", strconv.Itoa(spec.GOMAXPROCS),
		"-processes", strconv.Itoa(opt.Processes),
	}
	if opt.Adaptive != "" {
		args = append(args, "-adaptive", opt.Adaptive)
	}
	if opt.Durable {
		args = append(args, "-durable", "-wal-dir", walDirFor(opt.WALRoot, spec.Name), "-fsync", opt.Fsync)
	}
	return args
}

// walDirFor is the child's log directory: stable across its incarnations
// (that is the whole point — a replacement must find its predecessor's log)
// and disjoint from its siblings'. Path separators in the name are flattened
// so a creative child name cannot escape the root.
func walDirFor(root, name string) string {
	safe := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '/' || c == '\\' || c == os.PathSeparator {
			c = '_'
		}
		safe[i] = c
	}
	return root + string(os.PathSeparator) + string(safe)
}

// selfExec re-executes the current binary in agent mode, the production
// path: supervisor and agent are one binary, so the protocol versions match
// by construction.
func selfExec(spec ChildSpec, args []string) (*exec.Cmd, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("mproc: locating own binary: %w", err)
	}
	return exec.Command(self, append([]string{"agent"}, args...)...), nil
}

// killer tears a child process down at most once, remembering why; the
// reason distinguishes supervisor-initiated teardowns (timeouts, protocol
// errors) from spontaneous child deaths when the exit status is interpreted.
// Teardown escalates: shutdown sends an interrupt and arms a bounded kill
// timer, so a healthy agent can flush its result frame while a wedged one
// is reaped after the grace period; kill is immediate for children whose
// stream is already garbage.
type killer struct {
	mu     sync.Mutex
	proc   *os.Process
	grace  time.Duration
	reason string
	killed bool
	esc    *time.Timer
}

// shutdown requests a graceful stop: interrupt now, kill after the grace
// period. The first teardown reason wins.
func (k *killer) shutdown(reason string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.reason != "" {
		return
	}
	k.reason = reason
	if err := k.proc.Signal(os.Interrupt); err != nil {
		// Interrupt delivery unsupported or the process is already gone:
		// skip straight to the kill.
		k.killed = true
		_ = k.proc.Kill()
		return
	}
	k.esc = time.AfterFunc(k.grace, func() {
		k.mu.Lock()
		defer k.mu.Unlock()
		if !k.killed {
			k.killed = true
			_ = k.proc.Kill()
		}
	})
}

// kill skips the escalation: the child's stream is already corrupt, there
// is nothing worth letting it flush.
func (k *killer) kill(reason string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.reason != "" {
		return
	}
	k.reason = reason
	k.killed = true
	_ = k.proc.Kill()
}

// finish cancels any pending escalation once the child has been reaped.
func (k *killer) finish() {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.esc != nil {
		k.esc.Stop()
	}
}

func (k *killer) why() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.reason
}

// watchdog is the supervisor's liveness clock for one child: a single timer
// re-armed at each protocol milestone (launch → hello → first telemetry →
// result), so every stage of the child's life is bounded without charging
// the run deadline for unboundedly long workload population.
type watchdog struct {
	k  *killer
	mu sync.Mutex
	t  *time.Timer
}

func (w *watchdog) arm(d time.Duration, reason string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.t != nil {
		w.t.Stop()
	}
	w.t = time.AfterFunc(d, func() { w.k.shutdown(reason) })
}

func (w *watchdog) stop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.t != nil {
		w.t.Stop()
	}
}

// tailBuffer captures the last part of a child's stderr for error reports.
type tailBuffer struct {
	mu  sync.Mutex
	buf []byte
}

const tailMax = 2048

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > tailMax {
		t.buf = t.buf[len(t.buf)-tailMax:]
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(bytes.TrimSpace(t.buf))
}

// attemptOutcome summarizes one incarnation of a child for the restart loop.
type attemptOutcome struct {
	err          error
	gotTelemetry bool
	uptime       time.Duration
	// measured is how much of the run the incarnation actually measured (its
	// last telemetry timestamp): an agent's duration clock starts after
	// workload population, so the restart loop charges measured time — not
	// wall time, which would bill every incarnation's setup against the run.
	measured time.Duration
	ctl      *core.TuningState
	adapt    *core.AdaptiveState
	// firstAdapt is the first telemetry frame's adaptive state: for a
	// restarted incarnation it reveals whether the restored candidate was
	// actually running when the replacement came up.
	firstAdapt *core.AdaptiveState
	dropped    int
	// acked is the highest durable watermark this incarnation reported;
	// walSeen flags that at least one frame carried WAL state (the first one
	// is where the exact-prefix assertion runs).
	acked   uint64
	walSeen bool
}

// runChild supervises one child slot from launch to final outcome: it runs
// the agent, and — when a RestartPolicy is installed — relaunches crashed
// incarnations with exponentially backed-off, deterministically jittered
// delays, preserving the tuner's CUBIC state across restarts, until the
// child succeeds, the budget is exhausted, the circuit breaker trips on a
// crash-loop, or no meaningful run time remains.
func runChild(spec ChildSpec, idx int, opt Options, res *ChildResult) {
	res.Name = spec.Name
	res.Levels = trace.NewSeries(spec.Name + "/level")
	res.Throughputs = trace.NewSeries(spec.Name + "/throughput")
	if spec.ArrivalDelay > 0 {
		time.Sleep(spec.ArrivalDelay)
	}
	active := opt.Duration - spec.ArrivalDelay
	if active <= 0 {
		res.Err = errors.New("arrives after the run ends")
		return
	}

	var preserved *core.TuningState
	var preservedAdapt *core.AdaptiveState
	var preservedAcked uint64  // highest durable watermark across incarnations
	var consumed time.Duration // measurement time burned by prior incarnations
	crashLoops := 0
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if preserved != nil {
				res.CtlRestored = true
			}
		}
		out := runAttempt(spec, idx, attempt, active-consumed, preserved, preservedAdapt, preservedAcked, opt, res)
		consumed += out.measured
		if out.ctl != nil {
			preserved = out.ctl
		}
		if out.acked > preservedAcked {
			preservedAcked = out.acked
		}
		res.WalAcked = preservedAcked
		if attempt > 0 && preservedAdapt != nil && out.firstAdapt != nil &&
			out.firstAdapt.Candidate == preservedAdapt.Candidate {
			res.AdaptResumed = true
		}
		if out.adapt != nil {
			preservedAdapt = out.adapt
			res.Adapt = out.adapt
		}
		res.DroppedFrames += out.dropped
		if out.err == nil {
			res.Err = nil
			return
		}
		res.Err = out.err

		if out.gotTelemetry && (opt.Restart.MinUptime <= 0 || out.uptime >= opt.Restart.MinUptime) {
			crashLoops = 0
		} else {
			crashLoops++
		}
		if opt.Restart.BreakerThreshold > 0 && crashLoops >= opt.Restart.BreakerThreshold {
			res.BreakerTripped = true
			res.Err = fmt.Errorf("circuit breaker open after %d consecutive crash-loops: %w", crashLoops, out.err)
			return
		}
		if attempt >= opt.Restart.MaxRestarts {
			if opt.Restart.MaxRestarts > 0 {
				res.Err = fmt.Errorf("restart budget exhausted after %d attempts: %w", attempt+1, out.err)
			}
			return
		}
		if active-consumed < opt.Period {
			// Not enough measurement budget left for a replacement to observe
			// even one tick; keep the failure rather than launching a doomed
			// incarnation.
			return
		}
		delay := opt.Restart.Delay(spec.Name, attempt+1)
		res.Backoffs = append(res.Backoffs, delay)
		time.Sleep(delay)
		res.Restarts++
	}
}

// runAttempt drives one agent incarnation from launch to reaped exit,
// merging its telemetry into res. Its cardinal rule is boundedness: a
// watchdog covers every stage of the child's life (silent child, runaway
// child, stuck pipe) with an interrupt→kill escalation, so the frame loop
// may simply read until EOF and Wait afterwards.
func runAttempt(spec ChildSpec, idx, attempt int, active time.Duration, restore *core.TuningState, adaptRestore *core.AdaptiveState, preservedAcked uint64, opt Options, res *ChildResult) attemptOutcome {
	var out attemptOutcome
	if active <= 0 {
		out.err = errors.New("no run time left")
		return out
	}
	args := AgentArgs(spec, opt, active)
	if attempt > 0 {
		args = append(args, "-incarnation", strconv.Itoa(attempt))
	}
	if opt.Chaos != "" {
		args = append(args, "-chaos", opt.Chaos, "-chaos-child", strconv.Itoa(idx))
	}
	if restore != nil {
		args = append(args, "-restore",
			strconv.FormatFloat(restore.Level, 'g', -1, 64)+","+
				strconv.FormatFloat(restore.WMax, 'g', -1, 64)+","+
				strconv.FormatFloat(restore.Epoch, 'g', -1, 64))
	}
	if adaptRestore != nil {
		// AdaptiveState marshals without error (strings and scalars only).
		payload, _ := json.Marshal(adaptRestore)
		args = append(args, "-adapt-restore", string(payload))
	}
	cmd, err := opt.Exec(spec, args)
	if err != nil {
		out.err = err
		return out
	}
	stderr := &tailBuffer{}
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		out.err = err
		return out
	}
	if err := cmd.Start(); err != nil {
		out.err = fmt.Errorf("launch: %w", err)
		return out
	}
	started := time.Now()

	k := &killer{proc: cmd.Process, grace: opt.KillGrace}
	wd := &watchdog{k: k}
	wd.arm(opt.StartupTimeout, "no handshake within startup timeout")
	defer wd.stop()

	// Telemetry timestamps are child-relative; offset re-bases them onto the
	// group clock, including time burned by earlier incarnations.
	offset := opt.Duration.Seconds() - active.Seconds()

	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	gotHello, gotResult := false, false
	var protoErr error
	// noteWal folds one frame's WAL position into the attempt. The first
	// WAL-bearing frame of a replacement incarnation carries the assertion
	// at the heart of the durability contract: the recovered prefix must
	// cover every commit any predecessor acked durable. (The reverse bound —
	// no unacked commit surfacing — cannot be checked from here: commits
	// between the predecessor's last frame and its death are invisible to
	// the supervisor; the wal package's replay tests own that half.)
	noteWal := func(ws *WalState) error {
		if ws == nil {
			return nil
		}
		w := *ws
		res.Wal = &w
		if w.Acked > out.acked {
			out.acked = w.Acked
		}
		if !out.walSeen {
			out.walSeen = true
			if w.Recovered > 0 {
				res.WalRecoveries++
			}
			if w.Recovered < preservedAcked {
				return fmt.Errorf("incarnation %d recovered prefix %d, predecessor acked %d durable: acked commits lost",
					attempt, w.Recovered, preservedAcked)
			}
		}
		return nil
	}
frames:
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		f, err := Decode(line)
		if err != nil {
			if out.dropped < opt.FrameErrorBudget {
				// The frame-error budget absorbs occasional corrupt,
				// truncated or skewed lines instead of failing the child on
				// the first one.
				out.dropped++
				continue
			}
			protoErr = err
			break frames
		}
		switch f.Type {
		case FrameHello:
			if gotHello {
				protoErr = errors.New("mproc: duplicate handshake")
				break frames
			}
			gotHello = true
			wd.arm(opt.SetupTimeout, "no telemetry within setup timeout")
			h := *f.Hello
			res.Hello = &h
		case FrameTelemetry:
			if !gotHello {
				protoErr = errors.New("mproc: telemetry before handshake")
				break frames
			}
			if !out.gotTelemetry {
				out.gotTelemetry = true
				wd.arm(active+opt.Grace, "run deadline exceeded")
			}
			t := f.Telemetry
			out.measured = time.Duration(t.T * float64(time.Second))
			res.Levels.Add(t.T+offset, float64(t.Level))
			res.Throughputs.Add(t.T+offset, t.Tput)
			res.Commits, res.Aborts = t.Commits, t.Aborts
			res.Faults = t.Faults
			if t.Ctl != nil {
				ctl := *t.Ctl
				out.ctl = &ctl
			}
			if t.Adapt != nil {
				adapt := *t.Adapt
				out.adapt = &adapt
				if out.firstAdapt == nil {
					out.firstAdapt = &adapt
				}
			}
			if err := noteWal(t.Wal); err != nil {
				protoErr = err
				break frames
			}
		case FrameResult:
			if !gotHello {
				protoErr = errors.New("mproc: result before handshake")
				break frames
			}
			gotResult = true
			wd.arm(opt.Grace, "lingered after result frame")
			r := f.Result
			res.Completed = r.Completed
			res.Throughput = r.Tput
			res.MeanLevel = r.MeanLevel
			res.Commits, res.Aborts = r.Commits, r.Aborts
			res.Faults = r.Faults
			res.Verified = r.Verified
			if err := noteWal(r.Wal); err != nil {
				protoErr = err
				break frames
			}
			if r.Err != "" {
				protoErr = fmt.Errorf("agent reported: %s", r.Err)
				break frames
			}
			if r.Interrupted {
				protoErr = errors.New("agent interrupted before completion")
				break frames
			}
		}
	}
	if protoErr != nil {
		k.kill("protocol error")
	} else if err := sc.Err(); err != nil {
		protoErr = fmt.Errorf("reading telemetry: %w", err)
		k.kill("protocol error")
	}
	// Drain the remainder so the child never blocks on a full pipe while
	// exiting; the deadline teardown bounds this too.
	_, _ = io.Copy(io.Discard, stdout)
	werr := cmd.Wait()
	wd.stop()
	k.finish()
	out.uptime = time.Since(started)

	// Resolve the attempt's cause, most specific first.
	switch reason := k.why(); {
	case protoErr != nil:
		out.err = protoErr
	case reason != "":
		out.err = errors.New(reason)
	case werr != nil:
		out.err = fmt.Errorf("agent exited abnormally: %w", werr)
	case !gotResult:
		out.err = errors.New("agent exited without a result frame")
	}
	if out.err != nil {
		if tail := stderr.String(); tail != "" {
			out.err = fmt.Errorf("%w (stderr: %s)", out.err, tail)
		}
	}
	return out
}
