package mproc

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"rubic/internal/core"
	"rubic/internal/trace"
)

// ChildSpec describes one co-located stack to run as a child OS process.
type ChildSpec struct {
	// Name labels the child in results and errors; empty names get a
	// generated "P<i>-workload-policy" label.
	Name string
	// Workload and Policy select the stack (colocate.StackSpec semantics).
	Workload string
	Policy   string
	// ArrivalDelay postpones the child's launch relative to the group's
	// start; the child then runs for the remaining duration.
	ArrivalDelay time.Duration
	// Pool is the child's worker count.
	Pool int
	// Seed derives the child's random streams.
	Seed int64
	// GOMAXPROCS, when positive, caps the child's Go scheduler.
	GOMAXPROCS int
}

// ExecFunc constructs the command for one agent child from its flag list.
// Tests substitute fake agents; the default re-executes the current binary
// with an "agent" subcommand.
type ExecFunc func(spec ChildSpec, args []string) (*exec.Cmd, error)

// Options configures a supervised run.
type Options struct {
	// Duration is the group's total run length (children with arrival
	// delays run for the remainder).
	Duration time.Duration
	// Period is the controllers' monitoring period (default 10 ms).
	Period time.Duration
	// Engine selects the STM engine for every child (default tl2).
	Engine string
	// Processes overrides the sibling count passed to agents (for the
	// equalshare policy); defaults to the number of specs.
	Processes int
	// StartupTimeout bounds the wait for a child's handshake (default 10s).
	StartupTimeout time.Duration
	// SetupTimeout bounds the wait between the handshake and the first
	// telemetry or result frame — the child's workload-population window
	// (default 120s; population of big workloads is slow on loaded hosts).
	SetupTimeout time.Duration
	// Grace is the extra time past a child's run length before the
	// supervisor kills it (default 5s).
	Grace time.Duration
	// Exec overrides child command construction; nil re-executes the
	// current binary in agent mode.
	Exec ExecFunc
}

// ChildResult is one child's outcome, valid even when Err is set (the
// telemetry streamed before the failure is preserved as partial results).
type ChildResult struct {
	Name string
	// Hello is the child's handshake (nil if it never completed one).
	Hello *Hello
	// Levels and Throughputs are the multiplexed telemetry, timestamped on
	// the group's clock (arrival delays already added).
	Levels      *trace.Series
	Throughputs *trace.Series
	// Completed, Throughput and MeanLevel come from the result frame; until
	// one arrives they are zero.
	Completed  uint64
	Throughput float64
	MeanLevel  float64
	// Commits and Aborts are the last STM counters seen (result frame, or
	// the final telemetry frame for a child that died early).
	Commits uint64
	Aborts  uint64
	// Verified reports whether the child's workload invariants held.
	Verified bool
	// Err is the child's failure cause: crash, timeout, protocol violation
	// or agent-side error.
	Err error
}

// Run launches one agent child per spec, multiplexes their telemetry, waits
// for all of them (bounded by per-child deadlines — Run never hangs and
// reaps every child it starts), and returns per-child results in spec order.
// The returned error is the first failing child's cause, with the child
// named; results are returned alongside it, partial for the failed children.
func Run(specs []ChildSpec, opt Options) ([]ChildResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("mproc: no children")
	}
	if opt.Duration <= 0 {
		return nil, fmt.Errorf("mproc: duration must be positive")
	}
	if opt.Period <= 0 {
		opt.Period = core.DefaultPeriod
	}
	if opt.Engine == "" {
		opt.Engine = "tl2"
	}
	if opt.Processes <= 0 {
		opt.Processes = len(specs)
	}
	if opt.StartupTimeout <= 0 {
		opt.StartupTimeout = 10 * time.Second
	}
	if opt.SetupTimeout <= 0 {
		opt.SetupTimeout = 120 * time.Second
	}
	if opt.Grace <= 0 {
		opt.Grace = 5 * time.Second
	}
	if opt.Exec == nil {
		opt.Exec = selfExec
	}
	names := map[string]struct{}{}
	for i := range specs {
		if specs[i].Name == "" {
			specs[i].Name = fmt.Sprintf("P%d-%s-%s", i+1, specs[i].Workload, specs[i].Policy)
		}
		if _, dup := names[specs[i].Name]; dup {
			return nil, fmt.Errorf("mproc: duplicate child name %q", specs[i].Name)
		}
		names[specs[i].Name] = struct{}{}
		if specs[i].Pool < 1 {
			return nil, fmt.Errorf("mproc: child %s pool size %d", specs[i].Name, specs[i].Pool)
		}
	}

	results := make([]ChildResult, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runChild(specs[i], opt, &results[i])
		}(i)
	}
	wg.Wait()

	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("mproc: child %s: %w", results[i].Name, results[i].Err)
		}
	}
	return results, nil
}

// AgentArgs returns the agent-mode flag list for a child running for the
// given active duration (total minus arrival delay).
func AgentArgs(spec ChildSpec, opt Options, active time.Duration) []string {
	return []string{
		"-workload", spec.Workload,
		"-policy", spec.Policy,
		"-pool", strconv.Itoa(spec.Pool),
		"-seed", strconv.FormatInt(spec.Seed, 10),
		"-duration", active.String(),
		"-period", opt.Period.String(),
		"-engine", opt.Engine,
		"-gomaxprocs", strconv.Itoa(spec.GOMAXPROCS),
		"-processes", strconv.Itoa(opt.Processes),
	}
}

// selfExec re-executes the current binary in agent mode, the production
// path: supervisor and agent are one binary, so the protocol versions match
// by construction.
func selfExec(spec ChildSpec, args []string) (*exec.Cmd, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("mproc: locating own binary: %w", err)
	}
	return exec.Command(self, append([]string{"agent"}, args...)...), nil
}

// killer kills a child's process at most once, remembering why; the reason
// distinguishes supervisor-initiated kills (timeouts, protocol errors) from
// spontaneous child deaths when the exit status is interpreted.
type killer struct {
	mu     sync.Mutex
	proc   *os.Process
	reason string
}

func (k *killer) kill(reason string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.reason != "" {
		return
	}
	k.reason = reason
	_ = k.proc.Kill()
}

func (k *killer) why() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.reason
}

// watchdog is the supervisor's liveness clock for one child: a single timer
// re-armed at each protocol milestone (launch → hello → first telemetry →
// result), so every stage of the child's life is bounded without charging
// the run deadline for unboundedly long workload population.
type watchdog struct {
	k  *killer
	mu sync.Mutex
	t  *time.Timer
}

func (w *watchdog) arm(d time.Duration, reason string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.t != nil {
		w.t.Stop()
	}
	w.t = time.AfterFunc(d, func() { w.k.kill(reason) })
}

func (w *watchdog) stop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.t != nil {
		w.t.Stop()
	}
}

// tailBuffer captures the last part of a child's stderr for error reports.
type tailBuffer struct {
	mu  sync.Mutex
	buf []byte
}

const tailMax = 2048

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > tailMax {
		t.buf = t.buf[len(t.buf)-tailMax:]
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(bytes.TrimSpace(t.buf))
}

// runChild drives one agent child from launch to reaped exit, filling res.
// Its cardinal rule is boundedness: an absolute deadline kill covers every
// misbehavior (silent child, runaway child, stuck pipe), so the frame loop
// may simply read until EOF and Wait afterwards.
func runChild(spec ChildSpec, opt Options, res *ChildResult) {
	res.Name = spec.Name
	res.Levels = trace.NewSeries(spec.Name + "/level")
	res.Throughputs = trace.NewSeries(spec.Name + "/throughput")
	if spec.ArrivalDelay > 0 {
		time.Sleep(spec.ArrivalDelay)
	}
	active := opt.Duration - spec.ArrivalDelay
	if active <= 0 {
		res.Err = errors.New("arrives after the run ends")
		return
	}

	cmd, err := opt.Exec(spec, AgentArgs(spec, opt, active))
	if err != nil {
		res.Err = err
		return
	}
	stderr := &tailBuffer{}
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		res.Err = err
		return
	}
	if err := cmd.Start(); err != nil {
		res.Err = fmt.Errorf("launch: %w", err)
		return
	}

	k := &killer{proc: cmd.Process}
	wd := &watchdog{k: k}
	wd.arm(opt.StartupTimeout, "no handshake within startup timeout")
	defer wd.stop()

	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	gotHello, gotTelemetry, gotResult := false, false, false
	var protoErr error
	offset := spec.ArrivalDelay.Seconds()
frames:
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		f, err := Decode(line)
		if err != nil {
			protoErr = err
			break frames
		}
		switch f.Type {
		case FrameHello:
			if gotHello {
				protoErr = errors.New("mproc: duplicate handshake")
				break frames
			}
			gotHello = true
			wd.arm(opt.SetupTimeout, "no telemetry within setup timeout")
			h := *f.Hello
			res.Hello = &h
		case FrameTelemetry:
			if !gotHello {
				protoErr = errors.New("mproc: telemetry before handshake")
				break frames
			}
			if !gotTelemetry {
				gotTelemetry = true
				wd.arm(active+opt.Grace, "run deadline exceeded")
			}
			t := f.Telemetry
			res.Levels.Add(t.T+offset, float64(t.Level))
			res.Throughputs.Add(t.T+offset, t.Tput)
			res.Commits, res.Aborts = t.Commits, t.Aborts
		case FrameResult:
			if !gotHello {
				protoErr = errors.New("mproc: result before handshake")
				break frames
			}
			gotResult = true
			wd.arm(opt.Grace, "lingered after result frame")
			r := f.Result
			res.Completed = r.Completed
			res.Throughput = r.Tput
			res.MeanLevel = r.MeanLevel
			res.Commits, res.Aborts = r.Commits, r.Aborts
			res.Verified = r.Verified
			if r.Err != "" {
				protoErr = fmt.Errorf("agent reported: %s", r.Err)
				break frames
			}
		}
	}
	if protoErr != nil {
		k.kill("protocol error")
	} else if err := sc.Err(); err != nil {
		protoErr = fmt.Errorf("reading telemetry: %w", err)
		k.kill("protocol error")
	}
	// Drain the remainder so the child never blocks on a full pipe while
	// exiting; the deadline kill bounds this too.
	_, _ = io.Copy(io.Discard, stdout)
	werr := cmd.Wait()
	wd.stop()

	// Resolve the child's cause, most specific first.
	switch reason := k.why(); {
	case protoErr != nil:
		res.Err = protoErr
	case reason != "":
		res.Err = errors.New(reason)
	case werr != nil:
		res.Err = fmt.Errorf("agent exited abnormally: %w", werr)
	case !gotResult:
		res.Err = errors.New("agent exited without a result frame")
	}
	if res.Err != nil {
		if tail := stderr.String(); tail != "" {
			res.Err = fmt.Errorf("%w (stderr: %s)", res.Err, tail)
		}
	}
}
