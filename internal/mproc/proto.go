// Package mproc runs co-located application stacks as real OS processes —
// the paper's actual experimental setup (section 4: N independent processes
// contending for the machine with no communication between their
// controllers). A supervisor re-executes the current binary once per stack
// in agent mode; each agent assembles the usual workload/pool/controller
// stack and streams telemetry back to the supervisor over its stdout pipe
// using a versioned JSON-lines protocol. The supervisor multiplexes the
// streams into trace series, enforces startup and run-duration deadlines,
// and survives child crashes and malformed frames without hanging or leaking
// processes.
package mproc

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"rubic/internal/core"
)

// ProtoVersion is the wire-protocol version. A supervisor rejects frames
// from any other version: supervisor and agent are the same binary in
// normal operation, so a mismatch means a stale binary is being re-executed.
const ProtoVersion = 1

// Frame types.
const (
	// FrameHello is the agent's handshake: the first frame on the wire,
	// echoing the configuration the agent is actually running with.
	FrameHello = "hello"
	// FrameTelemetry is a periodic sample of the agent's stack.
	FrameTelemetry = "telemetry"
	// FrameResult is the agent's final frame, sent after the run completes
	// and the workload invariants are verified.
	FrameResult = "result"
)

// Hello is the handshake payload.
type Hello struct {
	Workload   string `json:"workload"`
	Policy     string `json:"policy"`
	Pool       int    `json:"pool"`
	Seed       int64  `json:"seed"`
	PeriodNS   int64  `json:"period_ns"`
	DurationNS int64  `json:"duration_ns"`
	Engine     string `json:"engine"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	PID        int    `json:"pid"`
}

// Period returns the agent's controller period.
func (h Hello) Period() time.Duration { return time.Duration(h.PeriodNS) }

// Duration returns the agent's run duration.
func (h Hello) Duration() time.Duration { return time.Duration(h.DurationNS) }

// WalState is the durable layer's position, attached to telemetry and
// result frames when the agent runs with a write-ahead log. The supervisor
// preserves the highest Acked it sees for each child and asserts that a
// restarted incarnation's Recovered covers it — the exact-prefix recovery
// contract, observed end to end across a real process boundary.
type WalState struct {
	// Acked is the highest commit sequence number known durable (persisted
	// per the fsync policy).
	Acked uint64 `json:"acked"`
	// Last is the highest commit sequence number issued.
	Last uint64 `json:"last"`
	// Recovered is the prefix this incarnation replayed at startup (0 for a
	// fresh log).
	Recovered uint64 `json:"recovered"`
	// Lost reports the log degraded to in-memory mode (fsync failure or torn
	// write); commits after the flag are explicitly non-durable.
	Lost bool `json:"lost,omitempty"`
}

// Telemetry is one periodic sample.
type Telemetry struct {
	// T is seconds since the agent's run started.
	T float64 `json:"t"`
	// Level is the pool's parallelism level at sampling time.
	Level int `json:"level"`
	// Tput is the interval throughput (completions/s over the last period).
	Tput float64 `json:"tput"`
	// Commits and Aborts are the STM runtime's cumulative counters.
	Commits uint64 `json:"commits"`
	Aborts  uint64 `json:"aborts"`
	// Faults is the pool's cumulative recovered-panic count.
	Faults uint64 `json:"faults,omitempty"`
	// Ctl, when present, is the controller's resumable tuning state as of
	// this sample. The supervisor preserves the latest one it saw and hands
	// it to the replacement process after an agent restart, so tuning resumes
	// from the preserved CUBIC anchors instead of the floor.
	Ctl *core.TuningState `json:"ctl,omitempty"`
	// Adapt, when present, is the adaptive policy's resumable state (current
	// candidate, phase, reference score, switch count). Preserved and
	// restored across restarts exactly like Ctl, and the channel through
	// which switch events reach per-agent frames.
	Adapt *core.AdaptiveState `json:"adapt,omitempty"`
	// Wal, when present, is the durable layer's position as of this sample.
	Wal *WalState `json:"wal,omitempty"`
}

// Result is the agent's final report.
type Result struct {
	Completed uint64  `json:"completed"`
	Tput      float64 `json:"tput"`
	MeanLevel float64 `json:"mean_level"`
	Commits   uint64  `json:"commits"`
	Aborts    uint64  `json:"aborts"`
	// Verified reports whether the workload invariants held after the run.
	Verified bool `json:"verified"`
	// Faults is the pool's recovered-panic count over the whole run.
	Faults uint64 `json:"faults,omitempty"`
	// Interrupted reports that the run was cut short by a supervisor
	// interrupt (graceful-shutdown escalation) rather than completing its
	// full duration.
	Interrupted bool `json:"interrupted,omitempty"`
	// Err carries the agent-side failure, if any (setup or verification).
	Err string `json:"err,omitempty"`
	// Wal, when present, is the durable layer's final position (after the
	// log's closing flush).
	Wal *WalState `json:"wal,omitempty"`
}

// Frame is one line of the wire protocol: a version, a type tag, and exactly
// one payload matching the tag.
type Frame struct {
	V         int        `json:"v"`
	Type      string     `json:"type"`
	Hello     *Hello     `json:"hello,omitempty"`
	Telemetry *Telemetry `json:"telemetry,omitempty"`
	Result    *Result    `json:"result,omitempty"`
}

// HelloFrame wraps a handshake payload.
func HelloFrame(h Hello) Frame { return Frame{V: ProtoVersion, Type: FrameHello, Hello: &h} }

// TelemetryFrame wraps a telemetry payload.
func TelemetryFrame(t Telemetry) Frame {
	return Frame{V: ProtoVersion, Type: FrameTelemetry, Telemetry: &t}
}

// ResultFrame wraps a result payload.
func ResultFrame(r Result) Frame { return Frame{V: ProtoVersion, Type: FrameResult, Result: &r} }

// Decode parses and validates one wire line. It rejects malformed JSON,
// unknown versions, unknown frame types, and frames whose payload does not
// match their type tag.
func Decode(line []byte) (Frame, error) {
	var f Frame
	if err := json.Unmarshal(line, &f); err != nil {
		return Frame{}, fmt.Errorf("mproc: malformed frame %.80q: %w", line, err)
	}
	if f.V != ProtoVersion {
		return Frame{}, fmt.Errorf("mproc: protocol version %d (supervisor speaks %d)", f.V, ProtoVersion)
	}
	var want bool
	switch f.Type {
	case FrameHello:
		want = f.Hello != nil
	case FrameTelemetry:
		want = f.Telemetry != nil
	case FrameResult:
		want = f.Result != nil
	default:
		return Frame{}, fmt.Errorf("mproc: unknown frame type %q", f.Type)
	}
	if !want {
		return Frame{}, fmt.Errorf("mproc: %s frame without %s payload", f.Type, f.Type)
	}
	return f, nil
}

// Encoder writes frames as JSON lines. It serializes concurrent writers
// (the agent's telemetry ticker and its main goroutine share one stdout).
type Encoder struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, enc: json.NewEncoder(w)}
}

// Encode writes one frame followed by a newline.
func (e *Encoder) Encode(f Frame) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.enc.Encode(f)
}

// WriteRaw writes one raw line under the encoder's lock. The chaos layer
// uses it to inject corrupt or truncated protocol lines without tearing a
// concurrent frame in half.
func (e *Encoder) WriteRaw(line string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err := io.WriteString(e.w, line)
	return err
}
