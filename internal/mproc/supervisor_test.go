package mproc

import (
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"testing"
	"time"

	"rubic/internal/core"
)

// argAfter extracts the value following a flag in a raw agent argument list
// (the helper children parse just the flags their behavior depends on).
func argAfter(args []string, flag string) string {
	for i := 0; i < len(args)-1; i++ {
		if args[i] == flag {
			return args[i+1]
		}
	}
	return ""
}

// TestHelperAgent is not a test: it is the body of the fake (and real) agent
// children the supervisor tests spawn. The parent re-executes its own test
// binary with -test.run=^TestHelperAgent$ and RUBIC_MPROC_HELPER selecting a
// behavior, so every child is a genuine OS process. Always exits via os.Exit
// so the testing framework's PASS output never pollutes the protocol stream.
func TestHelperAgent(t *testing.T) {
	mode := os.Getenv("RUBIC_MPROC_HELPER")
	if mode == "" {
		return // normal test run, not a child
	}
	var args []string
	for i, a := range os.Args {
		if a == "--" {
			args = os.Args[i+1:]
			break
		}
	}
	enc := NewEncoder(os.Stdout)
	hello := HelloFrame(Hello{Workload: "fake", Policy: "fake", Pool: 2, PID: os.Getpid()})
	switch mode {
	case "agent":
		// The real thing: run the production agent entry point.
		if err := AgentMain(args, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "good":
		enc.Encode(hello)
		for i := 0; i < 3; i++ {
			enc.Encode(TelemetryFrame(Telemetry{T: float64(i) * 0.01, Level: 1, Tput: 100, Commits: uint64(i) * 10}))
		}
		enc.Encode(ResultFrame(Result{Completed: 300, Tput: 100, MeanLevel: 1, Commits: 30, Verified: true}))
	case "crash":
		// Dies mid-run after streaming some telemetry: no result frame,
		// nonzero exit.
		enc.Encode(hello)
		enc.Encode(TelemetryFrame(Telemetry{T: 0.01, Level: 2, Tput: 50}))
		enc.Encode(TelemetryFrame(Telemetry{T: 0.02, Level: 2, Tput: 55}))
		fmt.Fprintln(os.Stderr, "fake agent: simulated crash")
		os.Exit(3)
	case "truncated":
		// Emits a frame cut off mid-token and exits "successfully".
		enc.Encode(hello)
		fmt.Print(`{"v":1,"type":"telemetry","telem`)
	case "badversion":
		enc.Encode(hello)
		fmt.Println(`{"v":99,"type":"telemetry","telemetry":{"t":0.01,"level":1,"tput":1,"commits":0,"aborts":0}}`)
	case "silent":
		time.Sleep(10 * time.Second)
	case "flaky":
		// Crashes its first two incarnations after publishing resumable tuning
		// state; the third incarnation succeeds and echoes the state the
		// supervisor restored into it (as MeanLevel), proving preservation.
		inc, _ := strconv.Atoi(argAfter(args, "-incarnation"))
		enc.Encode(hello)
		if inc < 2 {
			enc.Encode(TelemetryFrame(Telemetry{T: 0.01, Level: 3, Tput: 50,
				Ctl: &core.TuningState{Level: 7, WMax: 9 + float64(inc), Epoch: 1.5}}))
			fmt.Fprintln(os.Stderr, "fake agent: flaky crash")
			os.Exit(3)
		}
		res := Result{Completed: 100, Tput: 10, MeanLevel: 1, Verified: true}
		if st, err := parseRestore(argAfter(args, "-restore")); err == nil {
			res.MeanLevel = st.WMax
		}
		enc.Encode(ResultFrame(res))
	case "crashloop":
		// Dies instantly on every incarnation, before any telemetry: the
		// canonical crash-loop the circuit breaker exists for.
		enc.Encode(hello)
		fmt.Fprintln(os.Stderr, "fake agent: crash loop")
		os.Exit(3)
	case "corrupty":
		// One garbage line amid otherwise healthy frames.
		enc.Encode(hello)
		fmt.Println("@@garbage, not a frame@@")
		enc.Encode(TelemetryFrame(Telemetry{T: 0.01, Level: 1, Tput: 100}))
		enc.Encode(ResultFrame(Result{Completed: 50, Tput: 100, MeanLevel: 1, Verified: true}))
	case "wedged":
		// Ignores interrupts and never finishes: only the supervisor's kill
		// escalation can end it.
		enc.Encode(hello)
		enc.Encode(TelemetryFrame(Telemetry{T: 0.01, Level: 1, Tput: 100}))
		signal.Ignore(os.Interrupt)
		time.Sleep(30 * time.Second)
	case "slowpoke":
		// Healthy but slow: overstays the deadline, yet flushes a final result
		// when interrupted — the graceful half of the shutdown escalation.
		enc.Encode(hello)
		enc.Encode(TelemetryFrame(Telemetry{T: 0.01, Level: 1, Tput: 100}))
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		select {
		case <-ch:
			enc.Encode(ResultFrame(Result{Completed: 42, Interrupted: true}))
			os.Exit(1)
		case <-time.After(30 * time.Second):
		}
	}
	os.Exit(0)
}

// fakeExec reroutes each child to this test binary's TestHelperAgent with a
// per-child-name behavior (children without an entry get the default mode).
func fakeExec(defaultMode string, modes map[string]string) ExecFunc {
	return func(spec ChildSpec, args []string) (*exec.Cmd, error) {
		mode, ok := modes[spec.Name]
		if !ok {
			mode = defaultMode
		}
		cmd := exec.Command(os.Args[0], append([]string{"-test.run=^TestHelperAgent$", "--"}, args...)...)
		cmd.Env = append(os.Environ(), "RUBIC_MPROC_HELPER="+mode)
		return cmd, nil
	}
}

func twoChildren() []ChildSpec {
	return []ChildSpec{
		{Name: "A", Workload: "rbtree-ro", Policy: "rubic", Pool: 2, Seed: 1},
		{Name: "B", Workload: "rbtree-ro", Policy: "rubic", Pool: 2, Seed: 2},
	}
}

func TestSupervisorFakeAgents(t *testing.T) {
	results, err := Run(twoChildren(), Options{
		Duration: 100 * time.Millisecond,
		Exec:     fakeExec("good", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Name, r.Err)
		}
		if r.Hello == nil || r.Hello.PID == 0 {
			t.Errorf("%s: no handshake", r.Name)
		}
		if r.Levels.Len() != 3 {
			t.Errorf("%s: %d telemetry samples, want 3", r.Name, r.Levels.Len())
		}
		if r.Completed != 300 || !r.Verified {
			t.Errorf("%s: result not recorded: %+v", r.Name, r)
		}
	}
}

func TestSupervisorChildCrashMidRun(t *testing.T) {
	results, err := Run(twoChildren(), Options{
		Duration: 100 * time.Millisecond,
		Exec:     fakeExec("good", map[string]string{"B": "crash"}),
	})
	if err == nil {
		t.Fatal("crash went unreported")
	}
	if !strings.Contains(err.Error(), "B") || !strings.Contains(err.Error(), "exit status 3") {
		t.Errorf("error does not name the crashed child and cause: %v", err)
	}
	// The survivor's results are intact.
	if results[0].Err != nil || !results[0].Verified || results[0].Completed != 300 {
		t.Errorf("survivor damaged: %+v", results[0])
	}
	// The crashed child keeps its partial telemetry and a cause.
	if results[1].Err == nil {
		t.Error("crashed child has no error")
	}
	if results[1].Levels.Len() != 2 {
		t.Errorf("crashed child streamed %d samples before dying, want 2", results[1].Levels.Len())
	}
	if !strings.Contains(results[1].Err.Error(), "simulated crash") {
		t.Errorf("child stderr not surfaced: %v", results[1].Err)
	}
}

func TestSupervisorTruncatedFrame(t *testing.T) {
	results, err := Run(twoChildren(), Options{
		Duration: 100 * time.Millisecond,
		Exec:     fakeExec("good", map[string]string{"A": "truncated"}),
	})
	if err == nil {
		t.Fatal("truncated frame went unreported")
	}
	if !strings.Contains(err.Error(), "A") || !strings.Contains(err.Error(), "malformed frame") {
		t.Errorf("error does not name the child and the malformed frame: %v", err)
	}
	if results[1].Err != nil {
		t.Errorf("survivor damaged: %v", results[1].Err)
	}
}

func TestSupervisorVersionMismatch(t *testing.T) {
	_, err := Run(twoChildren()[:1], Options{
		Duration: 100 * time.Millisecond,
		Exec:     fakeExec("badversion", nil),
	})
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch went unreported: %v", err)
	}
}

func TestSupervisorStartupTimeout(t *testing.T) {
	start := time.Now()
	_, err := Run(twoChildren()[:1], Options{
		Duration:       100 * time.Millisecond,
		StartupTimeout: 200 * time.Millisecond,
		Grace:          100 * time.Millisecond,
		Exec:           fakeExec("silent", nil),
	})
	if err == nil || !strings.Contains(err.Error(), "handshake") {
		t.Fatalf("silent child went unreported: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("supervisor hung %v on a silent child", elapsed)
	}
}

func TestSupervisorValidation(t *testing.T) {
	good := twoChildren()
	cases := []struct {
		name  string
		specs []ChildSpec
		opt   Options
	}{
		{"no children", nil, Options{Duration: time.Second}},
		{"zero duration", good, Options{}},
		{"duplicate names", []ChildSpec{good[0], good[0]}, Options{Duration: time.Second}},
		{"bad pool", []ChildSpec{{Name: "A", Workload: "bank", Policy: "rubic"}}, Options{Duration: time.Second}},
	}
	for _, tc := range cases {
		tc.opt.Exec = fakeExec("good", nil)
		if _, err := Run(tc.specs, tc.opt); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestSupervisorLateArrivalRejected(t *testing.T) {
	specs := twoChildren()
	specs[1].ArrivalDelay = time.Second
	results, err := Run(specs, Options{
		Duration: 50 * time.Millisecond,
		Exec:     fakeExec("good", nil),
	})
	if err == nil || !strings.Contains(err.Error(), "B") {
		t.Fatalf("late arrival not attributed to B: %v", err)
	}
	if results[0].Err != nil {
		t.Errorf("on-time child damaged: %v", results[0].Err)
	}
}

// TestRestartPolicyDelayDeterministic pins the backoff schedule's contract:
// exponential growth capped at MaxBackoff, jitter within [0.5, 1.5) of the
// base, and full determinism for a fixed (seed, child, restart) triple.
func TestRestartPolicyDelayDeterministic(t *testing.T) {
	p := RestartPolicy{MaxRestarts: 5, Backoff: 10 * time.Millisecond,
		MaxBackoff: 80 * time.Millisecond, JitterSeed: 42}
	for r := 1; r <= 8; r++ {
		a, b := p.Delay("child", r), p.Delay("child", r)
		if a != b {
			t.Fatalf("restart %d: nondeterministic delay %v vs %v", r, a, b)
		}
		base := 10 * time.Millisecond << (r - 1)
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
		if a < base/2 || a >= base+base/2 {
			t.Fatalf("restart %d: delay %v outside [%v, %v)", r, a, base/2, base+base/2)
		}
	}
}

// TestSupervisorRestartRecovers is the recovery half of the crash-loop
// coverage: a child that crashes twice (streaming telemetry first) is
// relaunched within the restart budget, its backoff delays follow the
// deterministic schedule, the preserved tuning state reaches the replacement
// process, and the sibling is untouched throughout.
func TestSupervisorRestartRecovers(t *testing.T) {
	opt := Options{
		Duration: 5 * time.Second,
		Restart: RestartPolicy{MaxRestarts: 3, Backoff: 5 * time.Millisecond,
			MaxBackoff: 20 * time.Millisecond, JitterSeed: 7},
		Exec: fakeExec("good", map[string]string{"A": "flaky"}),
	}
	results, err := Run(twoChildren(), opt)
	if err != nil {
		t.Fatal(err)
	}
	a := results[0]
	if a.Restarts != 2 {
		t.Fatalf("flaky child restarted %d times, want 2", a.Restarts)
	}
	if len(a.Backoffs) != 2 {
		t.Fatalf("recorded backoffs %v, want 2 entries", a.Backoffs)
	}
	for i, d := range a.Backoffs {
		if want := opt.Restart.Delay("A", i+1); d != want {
			t.Errorf("backoff %d = %v, want the deterministic %v", i, d, want)
		}
	}
	// Incarnation 1's last published state had WMax 10; the supervisor must
	// have handed exactly that to incarnation 2 via -restore.
	if a.MeanLevel != 10 {
		t.Errorf("restored tuning state did not reach the replacement: echoed wMax %v, want 10", a.MeanLevel)
	}
	// Telemetry from all incarnations is concatenated on the group clock.
	if a.Levels.Len() != 2 {
		t.Errorf("crashed incarnations' telemetry lost: %d samples, want 2", a.Levels.Len())
	}
	if b := results[1]; b.Err != nil || b.Completed != 300 || b.Restarts != 0 {
		t.Errorf("sibling damaged by the restarts: %+v", b)
	}
}

// TestSupervisorBreakerTrips is the breaker half of the crash-loop coverage:
// a child dying instantly on every incarnation trips the circuit breaker
// after the configured number of consecutive crash-loops — long before the
// restart budget — while the sibling stack runs to completion.
func TestSupervisorBreakerTrips(t *testing.T) {
	results, err := Run(twoChildren(), Options{
		Duration: 5 * time.Second,
		Restart: RestartPolicy{MaxRestarts: 10, Backoff: 2 * time.Millisecond,
			MaxBackoff: 8 * time.Millisecond, JitterSeed: 3, BreakerThreshold: 3},
		Exec: fakeExec("good", map[string]string{"B": "crashloop"}),
	})
	if err == nil || !strings.Contains(err.Error(), "circuit breaker") {
		t.Fatalf("breaker trip unreported: %v", err)
	}
	b := results[1]
	if !b.BreakerTripped {
		t.Error("BreakerTripped not set")
	}
	if b.Restarts != 2 {
		t.Errorf("breaker tripped after %d restarts, want 2 (3 consecutive crash-loops)", b.Restarts)
	}
	if a := results[0]; a.Err != nil || a.Completed != 300 || a.Levels.Len() != 3 {
		t.Errorf("sibling stopped ticking during the crash-loop: %+v", a)
	}
}

func TestSupervisorRestartBudgetExhausted(t *testing.T) {
	results, err := Run(twoChildren()[:1], Options{
		Duration: 5 * time.Second,
		Restart:  RestartPolicy{MaxRestarts: 2, Backoff: 2 * time.Millisecond, JitterSeed: 1},
		Exec:     fakeExec("crashloop", nil),
	})
	if err == nil || !strings.Contains(err.Error(), "restart budget exhausted") {
		t.Fatalf("budget exhaustion unreported: %v", err)
	}
	if results[0].Restarts != 2 {
		t.Errorf("restarted %d times, want the full budget of 2", results[0].Restarts)
	}
}

// TestSupervisorFrameErrorBudget: a garbage line inside the budget is dropped
// and counted instead of failing the child.
func TestSupervisorFrameErrorBudget(t *testing.T) {
	results, err := Run(twoChildren()[:1], Options{
		Duration:         time.Second,
		FrameErrorBudget: 2,
		Exec:             fakeExec("corrupty", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].DroppedFrames != 1 {
		t.Errorf("dropped frames %d, want 1", results[0].DroppedFrames)
	}
	if results[0].Completed != 50 || !results[0].Verified {
		t.Errorf("result lost around the dropped frame: %+v", results[0])
	}
}

// TestSupervisorWedgedChildBoundedTeardown is the escalation's hard half: a
// child that ignores interrupts must still be reaped within Grace + KillGrace
// — a wedged agent can no longer hang the run teardown indefinitely.
func TestSupervisorWedgedChildBoundedTeardown(t *testing.T) {
	start := time.Now()
	_, err := Run(twoChildren()[:1], Options{
		Duration:  100 * time.Millisecond,
		Grace:     100 * time.Millisecond,
		KillGrace: 200 * time.Millisecond,
		Exec:      fakeExec("wedged", nil),
	})
	if err == nil || !strings.Contains(err.Error(), "run deadline") {
		t.Fatalf("wedged child unreported: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("teardown of a wedged child took %v", elapsed)
	}
}

// TestSupervisorInterruptLetsAgentFlush is the escalation's graceful half: a
// slow-but-responsive child gets the interrupt first and manages to flush a
// final (partial, Interrupted) result before the kill would land.
func TestSupervisorInterruptLetsAgentFlush(t *testing.T) {
	results, err := Run(twoChildren()[:1], Options{
		Duration:  100 * time.Millisecond,
		Grace:     100 * time.Millisecond,
		KillGrace: 5 * time.Second,
		Exec:      fakeExec("slowpoke", nil),
	})
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interrupted child unreported: %v", err)
	}
	if results[0].Completed != 42 {
		t.Errorf("partial result not flushed on interrupt: %+v", results[0])
	}
}

// TestSmokeTwoRealAgents is the process-mode smoke test: two genuine child
// OS processes each run the full production agent (STM runtime, worker pool,
// RUBIC controller) for ~200 ms and the supervisor must collect both
// results and exit cleanly.
func TestSmokeTwoRealAgents(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning smoke test in -short mode")
	}
	results, err := Run([]ChildSpec{
		{Name: "P1", Workload: "rbtree-ro", Policy: "rubic", Pool: 2, Seed: 1},
		{Name: "P2", Workload: "bank", Policy: "ebs", Pool: 2, Seed: 2},
	}, Options{
		Duration: 200 * time.Millisecond,
		Period:   5 * time.Millisecond,
		Exec:     fakeExec("agent", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Hello == nil {
			t.Fatalf("%s: no handshake", r.Name)
		}
		if r.Hello.PID == os.Getpid() {
			t.Errorf("%s ran in-process (pid %d), want a child", r.Name, r.Hello.PID)
		}
		if r.Completed == 0 {
			t.Errorf("%s completed nothing", r.Name)
		}
		if !r.Verified {
			t.Errorf("%s did not verify", r.Name)
		}
		if r.Levels.Len() == 0 {
			t.Errorf("%s streamed no telemetry", r.Name)
		}
	}
}
