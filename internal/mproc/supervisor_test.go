package mproc

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestHelperAgent is not a test: it is the body of the fake (and real) agent
// children the supervisor tests spawn. The parent re-executes its own test
// binary with -test.run=^TestHelperAgent$ and RUBIC_MPROC_HELPER selecting a
// behavior, so every child is a genuine OS process. Always exits via os.Exit
// so the testing framework's PASS output never pollutes the protocol stream.
func TestHelperAgent(t *testing.T) {
	mode := os.Getenv("RUBIC_MPROC_HELPER")
	if mode == "" {
		return // normal test run, not a child
	}
	var args []string
	for i, a := range os.Args {
		if a == "--" {
			args = os.Args[i+1:]
			break
		}
	}
	enc := NewEncoder(os.Stdout)
	hello := HelloFrame(Hello{Workload: "fake", Policy: "fake", Pool: 2, PID: os.Getpid()})
	switch mode {
	case "agent":
		// The real thing: run the production agent entry point.
		if err := AgentMain(args, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "good":
		enc.Encode(hello)
		for i := 0; i < 3; i++ {
			enc.Encode(TelemetryFrame(Telemetry{T: float64(i) * 0.01, Level: 1, Tput: 100, Commits: uint64(i) * 10}))
		}
		enc.Encode(ResultFrame(Result{Completed: 300, Tput: 100, MeanLevel: 1, Commits: 30, Verified: true}))
	case "crash":
		// Dies mid-run after streaming some telemetry: no result frame,
		// nonzero exit.
		enc.Encode(hello)
		enc.Encode(TelemetryFrame(Telemetry{T: 0.01, Level: 2, Tput: 50}))
		enc.Encode(TelemetryFrame(Telemetry{T: 0.02, Level: 2, Tput: 55}))
		fmt.Fprintln(os.Stderr, "fake agent: simulated crash")
		os.Exit(3)
	case "truncated":
		// Emits a frame cut off mid-token and exits "successfully".
		enc.Encode(hello)
		fmt.Print(`{"v":1,"type":"telemetry","telem`)
	case "badversion":
		enc.Encode(hello)
		fmt.Println(`{"v":99,"type":"telemetry","telemetry":{"t":0.01,"level":1,"tput":1,"commits":0,"aborts":0}}`)
	case "silent":
		time.Sleep(10 * time.Second)
	}
	os.Exit(0)
}

// fakeExec reroutes each child to this test binary's TestHelperAgent with a
// per-child-name behavior (children without an entry get the default mode).
func fakeExec(defaultMode string, modes map[string]string) ExecFunc {
	return func(spec ChildSpec, args []string) (*exec.Cmd, error) {
		mode, ok := modes[spec.Name]
		if !ok {
			mode = defaultMode
		}
		cmd := exec.Command(os.Args[0], append([]string{"-test.run=^TestHelperAgent$", "--"}, args...)...)
		cmd.Env = append(os.Environ(), "RUBIC_MPROC_HELPER="+mode)
		return cmd, nil
	}
}

func twoChildren() []ChildSpec {
	return []ChildSpec{
		{Name: "A", Workload: "rbtree-ro", Policy: "rubic", Pool: 2, Seed: 1},
		{Name: "B", Workload: "rbtree-ro", Policy: "rubic", Pool: 2, Seed: 2},
	}
}

func TestSupervisorFakeAgents(t *testing.T) {
	results, err := Run(twoChildren(), Options{
		Duration: 100 * time.Millisecond,
		Exec:     fakeExec("good", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Name, r.Err)
		}
		if r.Hello == nil || r.Hello.PID == 0 {
			t.Errorf("%s: no handshake", r.Name)
		}
		if r.Levels.Len() != 3 {
			t.Errorf("%s: %d telemetry samples, want 3", r.Name, r.Levels.Len())
		}
		if r.Completed != 300 || !r.Verified {
			t.Errorf("%s: result not recorded: %+v", r.Name, r)
		}
	}
}

func TestSupervisorChildCrashMidRun(t *testing.T) {
	results, err := Run(twoChildren(), Options{
		Duration: 100 * time.Millisecond,
		Exec:     fakeExec("good", map[string]string{"B": "crash"}),
	})
	if err == nil {
		t.Fatal("crash went unreported")
	}
	if !strings.Contains(err.Error(), "B") || !strings.Contains(err.Error(), "exit status 3") {
		t.Errorf("error does not name the crashed child and cause: %v", err)
	}
	// The survivor's results are intact.
	if results[0].Err != nil || !results[0].Verified || results[0].Completed != 300 {
		t.Errorf("survivor damaged: %+v", results[0])
	}
	// The crashed child keeps its partial telemetry and a cause.
	if results[1].Err == nil {
		t.Error("crashed child has no error")
	}
	if results[1].Levels.Len() != 2 {
		t.Errorf("crashed child streamed %d samples before dying, want 2", results[1].Levels.Len())
	}
	if !strings.Contains(results[1].Err.Error(), "simulated crash") {
		t.Errorf("child stderr not surfaced: %v", results[1].Err)
	}
}

func TestSupervisorTruncatedFrame(t *testing.T) {
	results, err := Run(twoChildren(), Options{
		Duration: 100 * time.Millisecond,
		Exec:     fakeExec("good", map[string]string{"A": "truncated"}),
	})
	if err == nil {
		t.Fatal("truncated frame went unreported")
	}
	if !strings.Contains(err.Error(), "A") || !strings.Contains(err.Error(), "malformed frame") {
		t.Errorf("error does not name the child and the malformed frame: %v", err)
	}
	if results[1].Err != nil {
		t.Errorf("survivor damaged: %v", results[1].Err)
	}
}

func TestSupervisorVersionMismatch(t *testing.T) {
	_, err := Run(twoChildren()[:1], Options{
		Duration: 100 * time.Millisecond,
		Exec:     fakeExec("badversion", nil),
	})
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch went unreported: %v", err)
	}
}

func TestSupervisorStartupTimeout(t *testing.T) {
	start := time.Now()
	_, err := Run(twoChildren()[:1], Options{
		Duration:       100 * time.Millisecond,
		StartupTimeout: 200 * time.Millisecond,
		Grace:          100 * time.Millisecond,
		Exec:           fakeExec("silent", nil),
	})
	if err == nil || !strings.Contains(err.Error(), "handshake") {
		t.Fatalf("silent child went unreported: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("supervisor hung %v on a silent child", elapsed)
	}
}

func TestSupervisorValidation(t *testing.T) {
	good := twoChildren()
	cases := []struct {
		name  string
		specs []ChildSpec
		opt   Options
	}{
		{"no children", nil, Options{Duration: time.Second}},
		{"zero duration", good, Options{}},
		{"duplicate names", []ChildSpec{good[0], good[0]}, Options{Duration: time.Second}},
		{"bad pool", []ChildSpec{{Name: "A", Workload: "bank", Policy: "rubic"}}, Options{Duration: time.Second}},
	}
	for _, tc := range cases {
		tc.opt.Exec = fakeExec("good", nil)
		if _, err := Run(tc.specs, tc.opt); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestSupervisorLateArrivalRejected(t *testing.T) {
	specs := twoChildren()
	specs[1].ArrivalDelay = time.Second
	results, err := Run(specs, Options{
		Duration: 50 * time.Millisecond,
		Exec:     fakeExec("good", nil),
	})
	if err == nil || !strings.Contains(err.Error(), "B") {
		t.Fatalf("late arrival not attributed to B: %v", err)
	}
	if results[0].Err != nil {
		t.Errorf("on-time child damaged: %v", results[0].Err)
	}
}

// TestSmokeTwoRealAgents is the process-mode smoke test: two genuine child
// OS processes each run the full production agent (STM runtime, worker pool,
// RUBIC controller) for ~200 ms and the supervisor must collect both
// results and exit cleanly.
func TestSmokeTwoRealAgents(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning smoke test in -short mode")
	}
	results, err := Run([]ChildSpec{
		{Name: "P1", Workload: "rbtree-ro", Policy: "rubic", Pool: 2, Seed: 1},
		{Name: "P2", Workload: "bank", Policy: "ebs", Pool: 2, Seed: 2},
	}, Options{
		Duration: 200 * time.Millisecond,
		Period:   5 * time.Millisecond,
		Exec:     fakeExec("agent", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Hello == nil {
			t.Fatalf("%s: no handshake", r.Name)
		}
		if r.Hello.PID == os.Getpid() {
			t.Errorf("%s ran in-process (pid %d), want a child", r.Name, r.Hello.PID)
		}
		if r.Completed == 0 {
			t.Errorf("%s completed nothing", r.Name)
		}
		if !r.Verified {
			t.Errorf("%s did not verify", r.Name)
		}
		if r.Levels.Len() == 0 {
			t.Errorf("%s streamed no telemetry", r.Name)
		}
	}
}
