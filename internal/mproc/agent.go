package mproc

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rubic/internal/colocate"
	"rubic/internal/core"
	"rubic/internal/fault"
	"rubic/internal/pool"
	"rubic/internal/trace"
	"rubic/internal/wal"
)

// AgentConfig describes the single stack an agent process runs.
type AgentConfig struct {
	// Workload and Policy select the stack, as in colocate.StackSpec.
	Workload string
	Policy   string
	// Pool is the worker count (the maximum parallelism level).
	Pool int
	// Seed derives the workload's and the workers' random streams.
	Seed int64
	// Duration is the measurement length; Period the controller period.
	Duration time.Duration
	Period   time.Duration
	// Engine selects the STM engine (tl2 or norec).
	Engine string
	// GOMAXPROCS, when positive, caps the child's Go scheduler — the knob
	// for pinning each co-located process to a hardware-context budget.
	GOMAXPROCS int
	// Processes is the number of co-located siblings (equalshare divides
	// the machine by it); defaults to 1.
	Processes int
	// Chaos names the fault scenario ("scenario@seed") this agent runs
	// under; empty means no injection (the inert nil injector).
	Chaos string
	// ChaosChild is this stack's index in the group, feeding the per-child
	// schedule derivation.
	ChaosChild int
	// Incarnation is the supervisor's restart count for this child (0 for
	// the first launch); restarted incarnations draw different schedules.
	Incarnation int
	// Restore, when non-empty, is a "level,wmax,epoch" tuning state the
	// controller resumes from — the supervisor passes the crashed
	// predecessor's last published state so CUBIC growth restarts from its
	// preserved anchors instead of the floor.
	Restore string
	// Guard enables the controller health guard (hold on bad telemetry,
	// degrade to the equal-share level after consecutive bad ticks).
	Guard bool
	// Adaptive, when non-empty, runs the stack's runtime adaptively over the
	// '+'-separated candidate list (see colocate.ParseAdaptive), hot-swapping
	// engine and contention manager at epoch boundaries.
	Adaptive string
	// AdaptWindow is the adaptive policy's scoring window in epochs; the
	// default is short so probing converges within agent-scale runs.
	AdaptWindow int
	// AdaptRestore, when non-empty, is the JSON core.AdaptiveState the
	// adaptive policy resumes from — the supervisor passes the crashed
	// predecessor's last published state, mirroring Restore.
	AdaptRestore string
	// Durable attaches a write-ahead log to the stack: the agent opens (or,
	// on restart, recovers) the log in WALDir before taking traffic, streams
	// WalState in its telemetry, and flushes and closes the log before the
	// result frame. The workload must implement wal.DurableState.
	Durable bool
	// WALDir is the log directory; required with Durable. The supervisor
	// keeps it stable across a child's incarnations so a restarted agent
	// recovers its predecessor's committed prefix.
	WALDir string
	// Fsync names the log's fsync policy: always, interval or os (default
	// always — the only policy whose acks survive kill -9 by contract).
	Fsync string
}

// AgentMain parses agent-mode command-line flags and runs the agent,
// streaming protocol frames to out. It is the body of the "agent"
// subcommand of cmd/rubic-colocate.
func AgentMain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("agent", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var cfg AgentConfig
	fs.StringVar(&cfg.Workload, "workload", "", "workload name")
	fs.StringVar(&cfg.Policy, "policy", "rubic", "controller policy (or greedy)")
	fs.IntVar(&cfg.Pool, "pool", runtime.NumCPU(), "worker pool size")
	fs.Int64Var(&cfg.Seed, "seed", 1, "random seed")
	fs.DurationVar(&cfg.Duration, "duration", 2*time.Second, "run duration")
	fs.DurationVar(&cfg.Period, "period", core.DefaultPeriod, "controller period")
	fs.StringVar(&cfg.Engine, "engine", "tl2", "stm engine: tl2 or norec")
	fs.IntVar(&cfg.GOMAXPROCS, "gomaxprocs", 0, "GOMAXPROCS for this agent (0 leaves the default)")
	fs.IntVar(&cfg.Processes, "processes", 1, "number of co-located processes")
	fs.StringVar(&cfg.Chaos, "chaos", "", "fault scenario, scenario@seed (empty: none)")
	fs.IntVar(&cfg.ChaosChild, "chaos-child", 0, "this stack's index in the chaos derivation")
	fs.IntVar(&cfg.Incarnation, "incarnation", 0, "restart count (0 = first launch)")
	fs.StringVar(&cfg.Restore, "restore", "", "tuning state to resume from, level,wmax,epoch")
	fs.BoolVar(&cfg.Guard, "guard", true, "run the controller behind the telemetry health guard")
	fs.StringVar(&cfg.Adaptive, "adaptive", "", "adaptive engine/CM candidates, e.g. tl2/backoff+norec/greedy (empty: static)")
	fs.IntVar(&cfg.AdaptWindow, "adapt-window", 2, "adaptive scoring window, epochs")
	fs.StringVar(&cfg.AdaptRestore, "adapt-restore", "", "adaptive policy state to resume from (JSON)")
	fs.BoolVar(&cfg.Durable, "durable", false, "attach a write-ahead log to the stack")
	fs.StringVar(&cfg.WALDir, "wal-dir", "", "write-ahead log directory (required with -durable)")
	fs.StringVar(&cfg.Fsync, "fsync", "always", "wal fsync policy: always, interval or os")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return RunAgent(cfg, out)
}

// parseRestore decodes the -restore flag's "level,wmax,epoch" payload.
func parseRestore(s string) (core.TuningState, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return core.TuningState{}, fmt.Errorf("mproc: restore state %q: want level,wmax,epoch", s)
	}
	var vals [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return core.TuningState{}, fmt.Errorf("mproc: restore state %q: %v", s, err)
		}
		vals[i] = v
	}
	return core.TuningState{Level: vals[0], WMax: vals[1], Epoch: vals[2]}, nil
}

// RunAgent runs one co-located stack to completion, streaming a handshake,
// periodic telemetry and a final result frame to out. A returned error (also
// reported in the result frame when one can still be sent) makes the agent
// process exit nonzero, which the supervisor surfaces as the child's cause.
// A supervisor interrupt (graceful-shutdown escalation) stops the run early:
// the agent tears its stack down, verifies, and reports Interrupted in its
// result instead of dying mid-write.
func RunAgent(cfg AgentConfig, out io.Writer) error {
	if cfg.Workload == "" {
		return fmt.Errorf("mproc: agent needs a workload")
	}
	if cfg.Pool < 1 {
		return fmt.Errorf("mproc: agent pool size %d < 1", cfg.Pool)
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("mproc: agent duration must be positive")
	}
	if cfg.Period <= 0 {
		cfg.Period = core.DefaultPeriod
	}
	if cfg.Processes < 1 {
		cfg.Processes = 1
	}
	if cfg.GOMAXPROCS > 0 {
		runtime.GOMAXPROCS(cfg.GOMAXPROCS)
	}
	var inj *fault.Injector
	if cfg.Chaos != "" {
		name, seed, err := fault.ParseScenario(cfg.Chaos)
		if err != nil {
			return err
		}
		plan, err := fault.PlanFor(name, seed, cfg.ChaosChild, cfg.Incarnation)
		if err != nil {
			return err
		}
		inj = fault.New(plan)
	}

	// The handshake goes out before the stack is assembled: it only echoes
	// configuration, and workload population can take arbitrarily long — the
	// supervisor's startup timeout must not charge the agent for it.
	enc := NewEncoder(out)
	if err := enc.Encode(HelloFrame(Hello{
		Workload:   cfg.Workload,
		Policy:     cfg.Policy,
		Pool:       cfg.Pool,
		Seed:       cfg.Seed,
		PeriodNS:   int64(cfg.Period),
		DurationNS: int64(cfg.Duration),
		Engine:     cfg.Engine,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PID:        os.Getpid(),
	})); err != nil {
		return fmt.Errorf("mproc: handshake: %w", err)
	}

	spec := colocate.StackSpec{Workload: cfg.Workload, Policy: cfg.Policy}
	w, rt, ctrl, err := spec.Build(cfg.Engine, cfg.Pool, cfg.Processes)
	if err != nil {
		return err
	}
	if cfg.Restore != "" && ctrl != nil {
		st, err := parseRestore(cfg.Restore)
		if err != nil {
			return err
		}
		// Non-resumable policies (the baselines) simply start fresh.
		core.RestoreInto(ctrl, st)
	}
	if err := w.Setup(rand.New(rand.NewSource(cfg.Seed))); err != nil {
		return fmt.Errorf("mproc: setup %s: %w", cfg.Workload, err)
	}
	var wlog *wal.Log
	var recoveredCSN uint64
	if cfg.Durable {
		if cfg.WALDir == "" {
			return fmt.Errorf("mproc: -durable needs -wal-dir")
		}
		policy, err := wal.ParseFsyncPolicy(cfg.Fsync)
		if err != nil {
			return err
		}
		// Open (or, for a restarted incarnation, recover) the log before any
		// traffic exists to log. A torn batch write is a real crash, like
		// agent.crash: die with no teardown and no result frame — the
		// supervisor restarts us and recovery proves the prefix.
		wlog, err = colocate.AttachDurability(w, rt, wal.Options{
			Dir:     cfg.WALDir,
			Policy:  policy,
			Faults:  inj,
			OnCrash: func() { os.Exit(3) },
		})
		if err != nil {
			return fmt.Errorf("mproc: durability %s: %w", cfg.Workload, err)
		}
		recoveredCSN = wlog.Recovered().LastCSN
	}
	pl, err := pool.New(cfg.Pool, cfg.Seed+1, w.Task())
	if err != nil {
		return err
	}
	pl.InstallFaults(inj)

	var tuner *core.Tuner
	levels := trace.NewSeries(cfg.Workload + "/level")
	if ctrl != nil {
		tuner = &core.Tuner{
			Controller: ctrl,
			Target:     pl,
			Period:     cfg.Period,
			Levels:     levels,
			Faults:     inj,
		}
		if cfg.Guard {
			// Degraded telemetry parks the stack at its equal share of the
			// machine — the fair static split — until samples recover.
			fallback := cfg.Pool / cfg.Processes
			if fallback < 1 {
				fallback = 1
			}
			tuner.Health = &core.HealthPolicy{
				MaxStaleness:  core.DefaultMaxStaleness,
				FallbackLevel: fallback,
			}
		}
	} else {
		pl.SetLevel(cfg.Pool)
	}

	var stack *colocate.AdaptiveStack
	if cfg.Adaptive != "" {
		stack, err = colocate.NewAdaptiveStack(rt, ctrl, cfg.Adaptive, core.AdaptiveConfig{Window: cfg.AdaptWindow})
		if err != nil {
			return err
		}
		stack.Faults = inj
		// The adapt.handoff point is a real crash, like agent.crash: die
		// mid-handoff with no teardown and no result frame.
		stack.OnHandoffCrash = func() { os.Exit(3) }
		if cfg.AdaptRestore != "" {
			var st core.AdaptiveState
			if err := json.Unmarshal([]byte(cfg.AdaptRestore), &st); err != nil {
				return fmt.Errorf("mproc: adapt-restore state %q: %w", cfg.AdaptRestore, err)
			}
			stack.Restore(st)
		}
		if tuner != nil {
			tuner.Adapter = stack
		}
	}

	// An interrupt from the supervisor's graceful-shutdown escalation ends
	// the measurement early instead of killing the process mid-write.
	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	defer signal.Stop(interrupt)

	// The telemetry ticker samples the pool and STM counters at the
	// controller period and streams one frame per sample. It runs alongside
	// the tuner but shares nothing with it beyond atomic counter reads.
	// The chaos points for process-level faults live here: each telemetry
	// tick is one occurrence, so a scenario's From indexes are tick numbers.
	stopTelemetry := make(chan struct{})
	telemetryDone := make(chan struct{})
	started := time.Now()
	go func() {
		defer close(telemetryDone)
		ticker := time.NewTicker(cfg.Period)
		defer ticker.Stop()
		prevCount := pl.Completed()
		prevTime := started
		for {
			select {
			case <-stopTelemetry:
				return
			case now := <-ticker.C:
				if inj.Fire(fault.AgentCrash) {
					// A real crash: no teardown, no result frame, nonzero exit.
					os.Exit(3)
				}
				if inj.Fire(fault.AgentHang) {
					// A wedged agent: telemetry stops, interrupts are ignored,
					// and the main goroutine will block on telemetryDone —
					// only the supervisor's kill escalation ends the process.
					signal.Ignore(os.Interrupt)
					select {}
				}
				if fired, occ := inj.FireN(fault.TelemetrySlow); fired {
					time.Sleep(cfg.Period * time.Duration(1+inj.Payload(fault.TelemetrySlow, occ)%3))
				}
				count := pl.Completed()
				elapsed := now.Sub(prevTime).Seconds()
				if elapsed <= 0 {
					continue
				}
				tput := float64(count-prevCount) / elapsed
				if stack != nil && tuner == nil {
					// No tuning loop to drive the adapter (greedy policy):
					// the telemetry tick is the epoch boundary instead.
					stack.Epoch(tput)
				}
				stats := rt.Stats()
				tele := Telemetry{
					T:       now.Sub(started).Seconds(),
					Level:   pl.Level(),
					Tput:    tput,
					Commits: stats.Commits,
					Aborts:  stats.Aborts,
					Faults:  pl.Faults(),
				}
				if tuner != nil {
					if st, ok := tuner.TuningState(); ok {
						tele.Ctl = &st
					}
				}
				if stack != nil {
					st := stack.State()
					tele.Adapt = &st
				}
				if wlog != nil {
					lost, _ := wlog.Lost()
					tele.Wal = &WalState{
						Acked:     wlog.DurableCSN(),
						Last:      wlog.LastCSN(),
						Recovered: recoveredCSN,
						Lost:      lost,
					}
				}
				prevCount, prevTime = count, now
				var encErr error
				if fired, occ := inj.FireN(fault.TelemetryCorrupt); fired {
					encErr = enc.WriteRaw(fmt.Sprintf("@@corrupt-telemetry:%016x@@\n", inj.Payload(fault.TelemetryCorrupt, occ)))
				} else if inj.Fire(fault.TelemetryTruncate) {
					encErr = enc.WriteRaw(`{"v":1,"type":"telemetry","telemetry":{"t":` + "\n")
				} else if inj.Fire(fault.TelemetrySkew) {
					encErr = enc.WriteRaw(`{"v":99,"type":"telemetry","telemetry":{"t":0,"level":1,"tput":0,"commits":0,"aborts":0}}` + "\n")
				} else {
					encErr = enc.Encode(TelemetryFrame(tele))
				}
				if encErr != nil {
					// The supervisor hung up; keep running so the workload
					// still verifies, but stop streaming.
					return
				}
			}
		}
	}()

	pl.Start()
	if tuner != nil {
		tuner.Start()
	}
	if wlog != nil && tuner != nil {
		// Losing durability escalates the health guard straight to the
		// equal-share fallback: a stack that is silently non-durable should
		// not also be running wide. The pool keeps serving — explicitly
		// degraded, never wedged.
		if g := tuner.Guard(); g != nil {
			wlog.SetLostHook(func(error) { g.Escalate() })
		}
	}
	interrupted := false
	select {
	case <-time.After(cfg.Duration):
	case <-interrupt:
		interrupted = true
	}
	if tuner != nil {
		tuner.Stop()
	}
	pl.Stop()
	close(stopTelemetry)
	<-telemetryDone
	elapsed := time.Since(started).Seconds()

	// Flush and close the log before the result frame so the Acked it
	// carries is the log's final durable watermark. Losing durability is an
	// explicit flag on the result, not an agent failure — the degradation
	// contract kept the pool serving.
	var walFinal *WalState
	if wlog != nil {
		_ = wlog.Close()
		lost, _ := wlog.Lost()
		walFinal = &WalState{
			Acked:     wlog.DurableCSN(),
			Last:      wlog.LastCSN(),
			Recovered: recoveredCSN,
			Lost:      lost,
		}
	}

	verifyErr := w.Verify()
	stats := rt.Stats()
	res := Result{
		Completed:   pl.Completed(),
		Commits:     stats.Commits,
		Aborts:      stats.Aborts,
		Faults:      pl.Faults(),
		Verified:    verifyErr == nil,
		Interrupted: interrupted,
		Wal:         walFinal,
	}
	if elapsed > 0 {
		res.Tput = float64(res.Completed) / elapsed
	}
	if tuner != nil && levels.Len() > 0 {
		res.MeanLevel = levels.Mean()
	} else {
		res.MeanLevel = float64(cfg.Pool)
	}
	if verifyErr != nil {
		res.Err = verifyErr.Error()
	}
	if err := enc.Encode(ResultFrame(res)); err != nil {
		return fmt.Errorf("mproc: result: %w", err)
	}
	if verifyErr != nil {
		return fmt.Errorf("mproc: %s verification: %w", cfg.Workload, verifyErr)
	}
	if interrupted {
		return fmt.Errorf("mproc: %s interrupted before completing its run", cfg.Workload)
	}
	return nil
}
