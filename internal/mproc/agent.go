package mproc

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"rubic/internal/colocate"
	"rubic/internal/core"
	"rubic/internal/pool"
	"rubic/internal/trace"
)

// AgentConfig describes the single stack an agent process runs.
type AgentConfig struct {
	// Workload and Policy select the stack, as in colocate.StackSpec.
	Workload string
	Policy   string
	// Pool is the worker count (the maximum parallelism level).
	Pool int
	// Seed derives the workload's and the workers' random streams.
	Seed int64
	// Duration is the measurement length; Period the controller period.
	Duration time.Duration
	Period   time.Duration
	// Engine selects the STM engine (tl2 or norec).
	Engine string
	// GOMAXPROCS, when positive, caps the child's Go scheduler — the knob
	// for pinning each co-located process to a hardware-context budget.
	GOMAXPROCS int
	// Processes is the number of co-located siblings (equalshare divides
	// the machine by it); defaults to 1.
	Processes int
}

// AgentMain parses agent-mode command-line flags and runs the agent,
// streaming protocol frames to out. It is the body of the "agent"
// subcommand of cmd/rubic-colocate.
func AgentMain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("agent", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var cfg AgentConfig
	fs.StringVar(&cfg.Workload, "workload", "", "workload name")
	fs.StringVar(&cfg.Policy, "policy", "rubic", "controller policy (or greedy)")
	fs.IntVar(&cfg.Pool, "pool", runtime.NumCPU(), "worker pool size")
	fs.Int64Var(&cfg.Seed, "seed", 1, "random seed")
	fs.DurationVar(&cfg.Duration, "duration", 2*time.Second, "run duration")
	fs.DurationVar(&cfg.Period, "period", core.DefaultPeriod, "controller period")
	fs.StringVar(&cfg.Engine, "engine", "tl2", "stm engine: tl2 or norec")
	fs.IntVar(&cfg.GOMAXPROCS, "gomaxprocs", 0, "GOMAXPROCS for this agent (0 leaves the default)")
	fs.IntVar(&cfg.Processes, "processes", 1, "number of co-located processes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return RunAgent(cfg, out)
}

// RunAgent runs one co-located stack to completion, streaming a handshake,
// periodic telemetry and a final result frame to out. A returned error (also
// reported in the result frame when one can still be sent) makes the agent
// process exit nonzero, which the supervisor surfaces as the child's cause.
func RunAgent(cfg AgentConfig, out io.Writer) error {
	if cfg.Workload == "" {
		return fmt.Errorf("mproc: agent needs a workload")
	}
	if cfg.Pool < 1 {
		return fmt.Errorf("mproc: agent pool size %d < 1", cfg.Pool)
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("mproc: agent duration must be positive")
	}
	if cfg.Period <= 0 {
		cfg.Period = core.DefaultPeriod
	}
	if cfg.Processes < 1 {
		cfg.Processes = 1
	}
	if cfg.GOMAXPROCS > 0 {
		runtime.GOMAXPROCS(cfg.GOMAXPROCS)
	}

	// The handshake goes out before the stack is assembled: it only echoes
	// configuration, and workload population can take arbitrarily long — the
	// supervisor's startup timeout must not charge the agent for it.
	enc := NewEncoder(out)
	if err := enc.Encode(HelloFrame(Hello{
		Workload:   cfg.Workload,
		Policy:     cfg.Policy,
		Pool:       cfg.Pool,
		Seed:       cfg.Seed,
		PeriodNS:   int64(cfg.Period),
		DurationNS: int64(cfg.Duration),
		Engine:     cfg.Engine,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PID:        os.Getpid(),
	})); err != nil {
		return fmt.Errorf("mproc: handshake: %w", err)
	}

	spec := colocate.StackSpec{Workload: cfg.Workload, Policy: cfg.Policy}
	w, rt, ctrl, err := spec.Build(cfg.Engine, cfg.Pool, cfg.Processes)
	if err != nil {
		return err
	}
	if err := w.Setup(rand.New(rand.NewSource(cfg.Seed))); err != nil {
		return fmt.Errorf("mproc: setup %s: %w", cfg.Workload, err)
	}
	pl, err := pool.New(cfg.Pool, cfg.Seed+1, w.Task())
	if err != nil {
		return err
	}

	var tuner *core.Tuner
	levels := trace.NewSeries(cfg.Workload + "/level")
	if ctrl != nil {
		tuner = &core.Tuner{
			Controller: ctrl,
			Target:     pl,
			Period:     cfg.Period,
			Levels:     levels,
		}
	} else {
		pl.SetLevel(cfg.Pool)
	}

	// The telemetry ticker samples the pool and STM counters at the
	// controller period and streams one frame per sample. It runs alongside
	// the tuner but shares nothing with it beyond atomic counter reads.
	stopTelemetry := make(chan struct{})
	telemetryDone := make(chan struct{})
	started := time.Now()
	go func() {
		defer close(telemetryDone)
		ticker := time.NewTicker(cfg.Period)
		defer ticker.Stop()
		prevCount := pl.Completed()
		prevTime := started
		for {
			select {
			case <-stopTelemetry:
				return
			case now := <-ticker.C:
				count := pl.Completed()
				elapsed := now.Sub(prevTime).Seconds()
				if elapsed <= 0 {
					continue
				}
				stats := rt.Stats()
				frame := TelemetryFrame(Telemetry{
					T:       now.Sub(started).Seconds(),
					Level:   pl.Level(),
					Tput:    float64(count-prevCount) / elapsed,
					Commits: stats.Commits,
					Aborts:  stats.Aborts,
				})
				prevCount, prevTime = count, now
				if enc.Encode(frame) != nil {
					// The supervisor hung up; keep running so the workload
					// still verifies, but stop streaming.
					return
				}
			}
		}
	}()

	pl.Start()
	if tuner != nil {
		tuner.Start()
	}
	time.Sleep(cfg.Duration)
	if tuner != nil {
		tuner.Stop()
	}
	pl.Stop()
	close(stopTelemetry)
	<-telemetryDone
	elapsed := time.Since(started).Seconds()

	verifyErr := w.Verify()
	stats := rt.Stats()
	res := Result{
		Completed: pl.Completed(),
		Commits:   stats.Commits,
		Aborts:    stats.Aborts,
		Verified:  verifyErr == nil,
	}
	if elapsed > 0 {
		res.Tput = float64(res.Completed) / elapsed
	}
	if tuner != nil && levels.Len() > 0 {
		res.MeanLevel = levels.Mean()
	} else {
		res.MeanLevel = float64(cfg.Pool)
	}
	if verifyErr != nil {
		res.Err = verifyErr.Error()
	}
	if err := enc.Encode(ResultFrame(res)); err != nil {
		return fmt.Errorf("mproc: result: %w", err)
	}
	if verifyErr != nil {
		return fmt.Errorf("mproc: %s verification: %w", cfg.Workload, verifyErr)
	}
	return nil
}
