package mproc

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"time"
)

// runAgentFrames runs an in-process agent and decodes everything it streams.
func runAgentFrames(t *testing.T, cfg AgentConfig) []Frame {
	t.Helper()
	var buf bytes.Buffer
	if err := RunAgent(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var frames []Frame
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		f, err := Decode(sc.Bytes())
		if err != nil {
			t.Fatalf("agent emitted a bad frame: %v", err)
		}
		frames = append(frames, f)
	}
	return frames
}

func TestAgentStreamsProtocol(t *testing.T) {
	frames := runAgentFrames(t, AgentConfig{
		Workload: "rbtree-ro",
		Policy:   "rubic",
		Pool:     2,
		Seed:     1,
		Duration: 150 * time.Millisecond,
		Period:   5 * time.Millisecond,
		Engine:   "tl2",
	})
	if len(frames) < 3 {
		t.Fatalf("only %d frames (want hello + telemetry + result)", len(frames))
	}
	if frames[0].Type != FrameHello {
		t.Fatalf("first frame is %s, want hello", frames[0].Type)
	}
	h := frames[0].Hello
	if h.Workload != "rbtree-ro" || h.Policy != "rubic" || h.Pool != 2 || h.PID == 0 {
		t.Errorf("handshake did not echo the config: %+v", h)
	}
	last := frames[len(frames)-1]
	if last.Type != FrameResult {
		t.Fatalf("last frame is %s, want result", last.Type)
	}
	r := last.Result
	if !r.Verified || r.Completed == 0 || r.Tput <= 0 || r.Err != "" {
		t.Errorf("bad result: %+v", r)
	}
	if r.MeanLevel < 1 || r.MeanLevel > 2 {
		t.Errorf("mean level %v out of [1,2]", r.MeanLevel)
	}
	sawTelemetry := false
	for _, f := range frames[1 : len(frames)-1] {
		if f.Type != FrameTelemetry {
			t.Fatalf("mid-stream frame of type %s", f.Type)
		}
		sawTelemetry = true
	}
	if !sawTelemetry {
		t.Error("no telemetry frames in a 150 ms run")
	}
}

func TestAgentGreedyPinsPool(t *testing.T) {
	frames := runAgentFrames(t, AgentConfig{
		Workload: "bank",
		Policy:   "greedy",
		Pool:     3,
		Seed:     1,
		Duration: 100 * time.Millisecond,
		Period:   5 * time.Millisecond,
		Engine:   "norec",
	})
	last := frames[len(frames)-1].Result
	if last.MeanLevel != 3 {
		t.Errorf("greedy mean level = %v, want 3", last.MeanLevel)
	}
	if last.Commits == 0 {
		t.Error("no STM commits reported")
	}
}

func TestAgentBadConfig(t *testing.T) {
	cases := []AgentConfig{
		{Policy: "rubic", Pool: 2, Duration: time.Second, Engine: "tl2"},                         // no workload
		{Workload: "rbtree", Policy: "rubic", Pool: 0, Duration: time.Second, Engine: "tl2"},     // bad pool
		{Workload: "rbtree", Policy: "rubic", Pool: 2, Engine: "tl2"},                            // no duration
		{Workload: "nope", Policy: "rubic", Pool: 2, Duration: time.Second, Engine: "tl2"},       // bad workload
		{Workload: "rbtree", Policy: "nope", Pool: 2, Duration: time.Second, Engine: "tl2"},      // bad policy
		{Workload: "rbtree", Policy: "rubic", Pool: 2, Duration: time.Second, Engine: "quantum"}, // bad engine
	}
	for i, cfg := range cases {
		var buf bytes.Buffer
		if err := RunAgent(cfg, &buf); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestAgentMainFlags(t *testing.T) {
	var buf bytes.Buffer
	err := AgentMain([]string{
		"-workload", "bank", "-policy", "rubic", "-pool", "2",
		"-duration", "100ms", "-period", "5ms", "-engine", "tl2",
		"-seed", "7", "-processes", "2",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"type":"result"`) {
		t.Error("no result frame on the wire")
	}
	if err := AgentMain([]string{"-pool", "x"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}
