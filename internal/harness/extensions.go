package harness

import (
	"fmt"
	"io"

	"rubic/internal/metrics"
	"rubic/internal/sim"
	"rubic/internal/trace"
)

// The experiments in this file extend the paper's evaluation beyond its
// two-process scenarios, along the directions its future-work section
// gestures at: more co-located processes, and dynamic arrival/departure
// churn. DESIGN.md lists them in the experiment index as ext-scaling and
// ext-churn.

// ScalingPoint is the outcome for one process count N.
type ScalingPoint struct {
	N int
	// NSBP is the mean product of speed-ups over repetitions.
	NSBP float64
	// Jain is the mean Jain fairness index of the processes' speed-ups
	// (1 = perfectly fair).
	Jain float64
	// TotalThreads is the mean system-wide thread count.
	TotalThreads float64
	// OversubscribedFrac is the mean fraction of oversubscribed rounds.
	OversubscribedFrac float64
	// PerProcessLevel is the mean thread count per process.
	PerProcessLevel float64
}

// Scaling runs N identical conflict-free processes for N = 1..maxN under
// one policy: with decentralized controllers the fair outcome is an equal
// C/N split with the machine fully used, so Jain should stay near 1 and
// TotalThreads near the context count for every N.
func Scaling(cfg Config, policy string, maxN int) ([]ScalingPoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if maxN < 1 {
		return nil, fmt.Errorf("harness: maxN %d < 1", maxN)
	}
	w := sim.ConflictFreeRBT()
	var out []ScalingPoint
	for n := 1; n <= maxN; n++ {
		fac, err := cfg.factory(policy, n)
		if err != nil {
			return nil, err
		}
		var nsbps, jains, totals, overs, levels []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			procs := make([]sim.ProcessSpec, n)
			for i := range procs {
				procs[i] = sim.ProcessSpec{
					Name:       fmt.Sprintf("P%d", i+1),
					Workload:   w,
					Controller: fac,
				}
			}
			res, err := sim.Run(sim.Scenario{
				Machine:    cfg.machine(),
				Procs:      procs,
				Rounds:     cfg.Rounds,
				NoiseSigma: cfg.NoiseSigma,
				Seed:       cfg.Seed + int64(rep),
			})
			if err != nil {
				return nil, fmt.Errorf("scaling N=%d rep %d: %w", n, rep, err)
			}
			sp := make([]float64, n)
			lv := 0.0
			for i, p := range res.Procs {
				sp[i] = p.Speedup
				lv += p.MeanLevel
			}
			nsbps = append(nsbps, res.NSBP)
			jains = append(jains, metrics.Jain(sp))
			totals = append(totals, res.TotalThreads.Mean())
			overs = append(overs, res.OversubscribedFrac)
			levels = append(levels, lv/float64(n))
		}
		out = append(out, ScalingPoint{
			N:                  n,
			NSBP:               metrics.Mean(nsbps),
			Jain:               metrics.Mean(jains),
			TotalThreads:       metrics.Mean(totals),
			OversubscribedFrac: metrics.Mean(overs),
			PerProcessLevel:    metrics.Mean(levels),
		})
	}
	return out, nil
}

// ChurnPhase describes one interval of the churn schedule with the set of
// processes present and the measured allocation.
type ChurnPhase struct {
	Start, End   float64 // seconds
	Present      []string
	TotalThreads float64
	Jain         float64 // fairness of the present processes' mean levels
}

// ChurnResult is the outcome of the dynamic arrival/departure experiment.
type ChurnResult struct {
	Policy string
	Phases []ChurnPhase
	// Levels holds each process' full level trace.
	Levels *trace.Set
	// OversubscribedFrac is the whole-run oversubscription fraction.
	OversubscribedFrac float64
}

// churnSchedule defines the experiment: four identical conflict-free
// processes with staggered presence windows (fractions of the run),
// producing phases with 1, 2, 3, 2 and 1 live processes.
var churnSchedule = []struct {
	name           string
	arrive, depart float64 // fractions of the horizon; depart 0 = stays
}{
	{"P1", 0.0, 0.0},
	{"P2", 0.2, 0.8},
	{"P3", 0.4, 0.6},
	{"P4", 0.9, 0.0},
}

// Churn runs a dynamic co-location scenario where processes arrive and
// depart mid-run, and reports the per-phase allocations: an adaptive policy
// must re-divide the machine at every transition.
func Churn(cfg Config, policy string) (*ChurnResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fac, err := cfg.factory(policy, len(churnSchedule))
	if err != nil {
		return nil, err
	}
	w := sim.ConflictFreeRBT()
	procs := make([]sim.ProcessSpec, len(churnSchedule))
	for i, s := range churnSchedule {
		procs[i] = sim.ProcessSpec{
			Name:         s.name,
			Workload:     w,
			Controller:   fac,
			ArrivalRound: int(s.arrive * float64(cfg.Rounds)),
		}
		if s.depart > 0 {
			procs[i].DepartRound = int(s.depart * float64(cfg.Rounds))
		}
	}
	res, err := sim.Run(sim.Scenario{
		Machine:    cfg.machine(),
		Procs:      procs,
		Rounds:     cfg.Rounds,
		NoiseSigma: cfg.NoiseSigma,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	out := &ChurnResult{
		Policy:             policy,
		Levels:             &trace.Set{},
		OversubscribedFrac: res.OversubscribedFrac,
	}
	for _, p := range res.Procs {
		out.Levels.Add(p.Levels)
	}

	// Build the phase boundaries from the schedule.
	horizon := float64(cfg.Rounds) * 0.01
	boundaries := map[float64]struct{}{0: {}, horizon: {}}
	for _, s := range churnSchedule {
		boundaries[s.arrive*horizon] = struct{}{}
		if s.depart > 0 {
			boundaries[s.depart*horizon] = struct{}{}
		}
	}
	cuts := make([]float64, 0, len(boundaries))
	for b := range boundaries {
		cuts = append(cuts, b)
	}
	sortFloats(cuts)

	for i := 1; i < len(cuts); i++ {
		lo, hi := cuts[i-1], cuts[i]
		// Skip the first 20% of each phase: adaptation transient.
		mLo := lo + (hi-lo)*0.2
		phase := ChurnPhase{Start: lo, End: hi}
		var levels []float64
		total := 0.0
		for j, p := range res.Procs {
			s := churnSchedule[j]
			present := s.arrive*horizon <= lo && (s.depart == 0 || s.depart*horizon >= hi)
			if !present {
				continue
			}
			phase.Present = append(phase.Present, p.Name)
			l := p.Levels.Window(mLo, hi).Mean()
			levels = append(levels, l)
			total += l
		}
		phase.TotalThreads = total
		phase.Jain = metrics.Jain(levels)
		out.Phases = append(out.Phases, phase)
	}
	return out, nil
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// WriteScalingReport renders the ext-scaling table.
func WriteScalingReport(w interface{ Write([]byte) (int, error) }, points []ScalingPoint, policy string, contexts int) error {
	_, err := fmt.Fprintf(w, "ext-scaling — %d-context machine, identical conflict-free processes, policy %s\n", contexts, policy)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "N   NSBP        Jain    total-threads  per-proc  oversub%")
	for _, p := range points {
		fmt.Fprintf(w, "%-3d %-11.1f %-7.3f %-14.1f %-9.1f %.0f%%\n",
			p.N, p.NSBP, p.Jain, p.TotalThreads, p.PerProcessLevel, p.OversubscribedFrac*100)
	}
	return nil
}

// WriteChurnReport renders the ext-churn table.
func WriteChurnReport(w interface{ Write([]byte) (int, error) }, r *ChurnResult, contexts int) error {
	fmt.Fprintf(w, "ext-churn — staggered arrivals/departures, policy %s (contexts = %d)\n", r.Policy, contexts)
	fmt.Fprintln(w, "phase            present            total-threads  jain")
	for _, p := range r.Phases {
		fmt.Fprintf(w, "[%5.1fs %5.1fs)  %-18s %-14.1f %.3f\n",
			p.Start, p.End, fmt.Sprint(p.Present), p.TotalThreads, p.Jain)
	}
	fmt.Fprintf(w, "oversubscribed rounds: %.0f%%\n", r.OversubscribedFrac*100)
	return nil
}

// HWPhase summarizes one interval of the dynamic-hardware experiment.
type HWPhase struct {
	Start, End float64
	Contexts   int
	MeanLevel  float64
}

// HWResult is the outcome of the ext-hw experiment for one policy.
type HWResult struct {
	Policy string
	Phases []HWPhase
}

// DynamicHardware runs a single scalable process while the machine shrinks
// to half capacity mid-run and grows back near the end — the "available
// hardware resources change" scenario the paper's introduction motivates.
func DynamicHardware(cfg Config, policy string) (*HWResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fac, err := cfg.factory(policy, 1)
	if err != nil {
		return nil, err
	}
	shrink := cfg.Rounds / 3
	grow := cfg.Rounds * 2 / 3
	res, err := sim.Run(sim.Scenario{
		Machine: cfg.machine(),
		Procs: []sim.ProcessSpec{
			{Name: "p", Workload: sim.ConflictFreeRBT(), Controller: fac},
		},
		Rounds:     cfg.Rounds,
		NoiseSigma: cfg.NoiseSigma,
		Seed:       cfg.Seed,
		ContextChanges: []sim.ContextChange{
			{Round: shrink, Contexts: cfg.Contexts / 2},
			{Round: grow, Contexts: cfg.Contexts},
		},
	})
	if err != nil {
		return nil, err
	}
	period := 0.01
	cuts := []struct {
		lo, hi   float64
		contexts int
	}{
		{0, float64(shrink) * period, cfg.Contexts},
		{float64(shrink) * period, float64(grow) * period, cfg.Contexts / 2},
		{float64(grow) * period, float64(cfg.Rounds) * period, cfg.Contexts},
	}
	out := &HWResult{Policy: policy}
	lv := res.Procs[0].Levels
	for _, c := range cuts {
		// Skip each phase's first 30%: adaptation transient.
		mLo := c.lo + (c.hi-c.lo)*0.3
		out.Phases = append(out.Phases, HWPhase{
			Start:     c.lo,
			End:       c.hi,
			Contexts:  c.contexts,
			MeanLevel: lv.Window(mLo, c.hi).Mean(),
		})
	}
	return out, nil
}

// WriteHWReport renders the ext-hw table.
func WriteHWReport(w io.Writer, results []*HWResult) error {
	fmt.Fprintln(w, "ext-hw — machine shrinks to half capacity mid-run, then grows back")
	fmt.Fprintln(w, "policy    phase            contexts  mean-level")
	for _, r := range results {
		for _, p := range r.Phases {
			fmt.Fprintf(w, "%-9s [%5.1fs %5.1fs)  %-9d %.1f\n",
				r.Policy, p.Start, p.End, p.Contexts, p.MeanLevel)
		}
	}
	return nil
}
