package harness

import (
	"fmt"

	"rubic/internal/metrics"
	"rubic/internal/sim"
)

// ProcStats aggregates one process' outcome across the repetitions of one
// experiment cell.
type ProcStats struct {
	Workload string
	// Speedup is the mean speed-up across repetitions (Figures 8a / 9a).
	Speedup float64
	// MeanLevel is the mean of per-repetition mean levels (Figures 8c / 9b).
	MeanLevel float64
	// LevelStd is the standard deviation of per-repetition mean levels —
	// the paper's stability metric (Figures 8b / 9c, lower is better).
	LevelStd float64
}

// PairwiseCell is one (pair, policy) cell of the Figure 7/8 experiment.
type PairwiseCell struct {
	Pair   [2]string
	Policy string
	// NSBP is the mean product of speed-ups (Figure 7a).
	NSBP float64
	// NSBPStd is its standard deviation across repetitions.
	NSBPStd float64
	// TotalThreads is the mean system-wide thread count (Figure 7b).
	TotalThreads float64
	// TotalEfficiency is the mean product of efficiencies (Figure 7c).
	TotalEfficiency float64
	// OversubscribedFrac is the mean fraction of oversubscribed rounds.
	OversubscribedFrac float64
	// Procs holds the two processes' aggregated stats (Figure 8).
	Procs [2]ProcStats
}

// PairwiseResult is the complete Figure 7/8 dataset: one cell per
// (pair, policy), plus per-policy geometric means across pairs.
type PairwiseResult struct {
	Cells []PairwiseCell
	// GeoNSBP maps policy to the geometric mean of its NSBP over all pairs
	// (the "average" bars of Figure 7a).
	GeoNSBP map[string]float64
	// GeoEfficiency is the analogous geometric mean of total efficiency.
	GeoEfficiency map[string]float64
}

// Cell returns the cell for a pair and policy, or nil.
func (r *PairwiseResult) Cell(a, b, policy string) *PairwiseCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Pair[0] == a && c.Pair[1] == b && c.Policy == policy {
			return c
		}
	}
	return nil
}

// Pairwise runs the pairwise co-location experiment of section 4.5.1 for the
// given policies over the paper's three workload pairs.
func Pairwise(cfg Config, policies []string) (*PairwiseResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &PairwiseResult{
		GeoNSBP:       make(map[string]float64, len(policies)),
		GeoEfficiency: make(map[string]float64, len(policies)),
	}
	perPolicyNSBP := make(map[string][]float64, len(policies))
	perPolicyEff := make(map[string][]float64, len(policies))

	for _, pair := range Pairs() {
		w0, err := workload(pair[0])
		if err != nil {
			return nil, err
		}
		w1, err := workload(pair[1])
		if err != nil {
			return nil, err
		}
		for _, pol := range policies {
			fac, err := cfg.factory(pol, 2)
			if err != nil {
				return nil, err
			}
			var (
				nsbps   []float64
				effs    []float64
				threads []float64
				overs   []float64
				sp      [2][]float64
				lv      [2][]float64
			)
			for rep := 0; rep < cfg.Reps; rep++ {
				out, err := sim.Run(sim.Scenario{
					Machine: cfg.machine(),
					Procs: []sim.ProcessSpec{
						{Name: pair[0], Workload: w0, Controller: fac},
						{Name: pair[1], Workload: w1, Controller: fac},
					},
					Rounds:     cfg.Rounds,
					NoiseSigma: cfg.NoiseSigma,
					Seed:       cfg.Seed + int64(rep),
				})
				if err != nil {
					return nil, fmt.Errorf("pairwise %v/%s rep %d: %w", pair, pol, rep, err)
				}
				nsbps = append(nsbps, out.NSBP)
				effs = append(effs, out.TotalEfficiency)
				threads = append(threads, out.TotalThreads.Mean())
				overs = append(overs, out.OversubscribedFrac)
				for i := 0; i < 2; i++ {
					sp[i] = append(sp[i], out.Procs[i].Speedup)
					lv[i] = append(lv[i], out.Procs[i].MeanLevel)
				}
			}
			cell := PairwiseCell{
				Pair:               pair,
				Policy:             pol,
				NSBP:               metrics.Mean(nsbps),
				NSBPStd:            metrics.StdDev(nsbps),
				TotalThreads:       metrics.Mean(threads),
				TotalEfficiency:    metrics.Mean(effs),
				OversubscribedFrac: metrics.Mean(overs),
			}
			for i := 0; i < 2; i++ {
				cell.Procs[i] = ProcStats{
					Workload:  pair[i],
					Speedup:   metrics.Mean(sp[i]),
					MeanLevel: metrics.Mean(lv[i]),
					LevelStd:  metrics.StdDev(lv[i]),
				}
			}
			res.Cells = append(res.Cells, cell)
			perPolicyNSBP[pol] = append(perPolicyNSBP[pol], cell.NSBP)
			perPolicyEff[pol] = append(perPolicyEff[pol], cell.TotalEfficiency)
		}
	}
	for pol, xs := range perPolicyNSBP {
		g, err := metrics.GeoMean(xs)
		if err != nil {
			return nil, fmt.Errorf("geomean NSBP for %s: %w", pol, err)
		}
		res.GeoNSBP[pol] = g
	}
	for pol, xs := range perPolicyEff {
		g, err := metrics.GeoMean(xs)
		if err != nil {
			return nil, fmt.Errorf("geomean efficiency for %s: %w", pol, err)
		}
		res.GeoEfficiency[pol] = g
	}
	return res, nil
}

// Headline computes the section 4.5.1 headline ratios from a pairwise
// result: RUBIC's geometric-mean NSBP improvement over every other policy
// (paper: +26% vs EBS, +500% vs Greedy) and the efficiency factors (2x vs
// EBS, 66x vs Greedy).
type Headline struct {
	// NSBPGainOver maps policy to RUBIC's relative NSBP gain (0.26 = +26%).
	NSBPGainOver map[string]float64
	// EfficiencyFactorOver maps policy to RUBIC's efficiency multiple.
	EfficiencyFactorOver map[string]float64
}

// ComputeHeadline derives the headline numbers. The result must contain a
// "rubic" policy.
func ComputeHeadline(r *PairwiseResult) (*Headline, error) {
	base, ok := r.GeoNSBP["rubic"]
	if !ok {
		return nil, fmt.Errorf("harness: pairwise result lacks rubic")
	}
	h := &Headline{
		NSBPGainOver:         map[string]float64{},
		EfficiencyFactorOver: map[string]float64{},
	}
	for pol, v := range r.GeoNSBP {
		if pol == "rubic" || v == 0 {
			continue
		}
		h.NSBPGainOver[pol] = base/v - 1
	}
	effBase := r.GeoEfficiency["rubic"]
	for pol, v := range r.GeoEfficiency {
		if pol == "rubic" || v == 0 {
			continue
		}
		h.EfficiencyFactorOver[pol] = effBase / v
	}
	return h, nil
}
