package harness

import (
	"fmt"
	"io"

	"rubic/internal/core"
	"rubic/internal/metrics"
	"rubic/internal/sim"
)

// NoisePoint is the outcome of one measurement-noise level.
type NoisePoint struct {
	Sigma float64
	// Utilization is the mean post-climb level over the context count for a
	// single scalable process.
	Utilization float64
	// PairNSBP is the Vac/RBT pair's NSBP at this noise level.
	PairNSBP float64
}

// NoiseSensitivity sweeps the relative measurement noise and reports how
// RUBIC's utilization and pairwise performance degrade. The paper measures
// at real-hardware noise; this experiment bounds the regime in which any
// Tc-vs-Tp controller remains usable.
func NoiseSensitivity(cfg Config, sigmas []float64) ([]NoisePoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fac1, err := cfg.factory("rubic", 1)
	if err != nil {
		return nil, err
	}
	fac2, err := cfg.factory("rubic", 2)
	if err != nil {
		return nil, err
	}
	var out []NoisePoint
	for _, sigma := range sigmas {
		s := sigma
		if s == 0 {
			s = -1 // explicit zero means "no noise" here
		}
		var utils, nsbps []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			single, err := sim.Run(sim.Scenario{
				Machine: cfg.machine(),
				Procs: []sim.ProcessSpec{
					{Name: "p", Workload: sim.ConflictFreeRBT(), Controller: fac1},
				},
				Rounds:     cfg.Rounds,
				NoiseSigma: s,
				Seed:       cfg.Seed + int64(rep),
			})
			if err != nil {
				return nil, err
			}
			utils = append(utils,
				single.Procs[0].Levels.MeanAfter(float64(cfg.Rounds)*0.01*0.2)/float64(cfg.Contexts))
			pair, err := sim.Run(sim.Scenario{
				Machine: cfg.machine(),
				Procs: []sim.ProcessSpec{
					{Name: "vac", Workload: sim.Vacation(), Controller: fac2},
					{Name: "rbt", Workload: sim.RBTree(), Controller: fac2},
				},
				Rounds:     cfg.Rounds,
				NoiseSigma: s,
				Seed:       cfg.Seed + 1000 + int64(rep),
			})
			if err != nil {
				return nil, err
			}
			nsbps = append(nsbps, pair.NSBP)
		}
		out = append(out, NoisePoint{
			Sigma:       sigma,
			Utilization: metrics.Mean(utils),
			PairNSBP:    metrics.Mean(nsbps),
		})
	}
	return out, nil
}

// ParamPoint is the outcome of one (alpha, beta) setting.
type ParamPoint struct {
	Alpha, Beta float64
	// PairNSBP is the Vac/RBT pair's NSBP.
	PairNSBP float64
	// ConvergenceGap is the Figure 10 fairness gap.
	ConvergenceGap float64
}

// ParamSweep evaluates RUBIC's alpha/beta constants on the pairwise and
// convergence scenarios, reproducing the reasoning behind the paper's choice
// of alpha = 0.8, beta = 0.1 ("to obtain the best results", section 4.3).
func ParamSweep(cfg Config, alphas, betas []float64) ([]ParamPoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var out []ParamPoint
	for _, alpha := range alphas {
		for _, beta := range betas {
			alpha, beta := alpha, beta
			fac := func() core.Controller {
				return core.NewRUBIC(core.RUBICConfig{MaxLevel: cfg.MaxLevel, Alpha: alpha, Beta: beta})
			}
			var nsbps, gaps []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				pair, err := sim.Run(sim.Scenario{
					Machine: cfg.machine(),
					Procs: []sim.ProcessSpec{
						{Name: "vac", Workload: sim.Vacation(), Controller: fac},
						{Name: "rbt", Workload: sim.RBTree(), Controller: fac},
					},
					Rounds:     cfg.Rounds,
					NoiseSigma: cfg.NoiseSigma,
					Seed:       cfg.Seed + int64(rep),
				})
				if err != nil {
					return nil, err
				}
				nsbps = append(nsbps, pair.NSBP)

				conv, err := sim.Run(sim.Scenario{
					Machine: cfg.machine(),
					Procs: []sim.ProcessSpec{
						{Name: "P1", Workload: sim.ConflictFreeRBT(), Controller: fac},
						{Name: "P2", Workload: sim.ConflictFreeRBT(), Controller: fac,
							ArrivalRound: cfg.Rounds / 2},
					},
					Rounds:     cfg.Rounds,
					NoiseSigma: cfg.NoiseSigma,
					Seed:       cfg.Seed + 500 + int64(rep),
				})
				if err != nil {
					return nil, err
				}
				t0 := float64(cfg.Rounds) * 0.01 * 0.75
				gap := conv.Procs[0].Levels.MeanAfter(t0) - conv.Procs[1].Levels.MeanAfter(t0)
				if gap < 0 {
					gap = -gap
				}
				gaps = append(gaps, gap)
			}
			out = append(out, ParamPoint{
				Alpha:          alpha,
				Beta:           beta,
				PairNSBP:       metrics.Mean(nsbps),
				ConvergenceGap: metrics.Mean(gaps),
			})
		}
	}
	return out, nil
}

// WriteNoiseReport renders the ext-noise table.
func WriteNoiseReport(w io.Writer, points []NoisePoint) error {
	fmt.Fprintln(w, "ext-noise — RUBIC under measurement noise")
	fmt.Fprintln(w, "sigma    utilization  vac/rbt NSBP")
	for _, p := range points {
		fmt.Fprintf(w, "%-8.3f %-12.0f %.1f\n", p.Sigma, p.Utilization*100, p.PairNSBP)
	}
	return nil
}

// WriteParamReport renders the ext-params table.
func WriteParamReport(w io.Writer, points []ParamPoint) error {
	fmt.Fprintln(w, "ext-params — RUBIC alpha/beta sweep (paper: alpha=0.8, beta=0.1)")
	fmt.Fprintln(w, "alpha  beta   vac/rbt NSBP  convergence gap")
	for _, p := range points {
		fmt.Fprintf(w, "%-6.2f %-6.2f %-13.1f %.1f\n", p.Alpha, p.Beta, p.PairNSBP, p.ConvergenceGap)
	}
	return nil
}
