package harness

import (
	"fmt"

	"rubic/internal/metrics"

	"rubic/internal/core"
	"rubic/internal/sim"
	"rubic/internal/trace"
)

// ConvergenceResult captures the section 4.6 experiment for one policy: two
// identical conflict-free processes, the second arriving mid-run.
type ConvergenceResult struct {
	Policy string
	// P1 and P2 are the per-process parallelism-level traces (Figure 10).
	P1, P2 *trace.Series
	// Total is the system-wide thread count trace.
	Total *trace.Series
	// P1Pre is P1's mean level between its convergence and P2's arrival.
	P1Pre float64
	// P1Post and P2Post are the mean levels over the final quarter of the
	// run, when a converged policy should sit at the fair 32/32 split.
	P1Post, P2Post float64
	// TotalPost is the mean total threads over the final quarter.
	TotalPost float64
	// FairGap is |P1Post - P2Post|; 0 is perfectly fair.
	FairGap float64
	// SettleSeconds is how long after P2's arrival both processes entered
	// (and stayed in) a ±40% band around the fair split; Settled is false
	// when either never settles. The paper calls RUBIC's convergence
	// "impressively fast"; this makes the claim measurable. The band is
	// generous enough to contain RUBIC's steady-state oscillation yet far
	// from the baselines' unfair splits.
	SettleSeconds float64
	Settled       bool
}

// Convergence runs the Figure 10 experiment: both processes run the
// conflict-free red-black tree (100% lookups), P2 arrives halfway through.
func Convergence(cfg Config, policy string, seed int64) (*ConvergenceResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fac, err := cfg.factory(policy, 2)
	if err != nil {
		return nil, err
	}
	w := sim.ConflictFreeRBT()
	arrival := cfg.Rounds / 2
	out, err := sim.Run(sim.Scenario{
		Machine: cfg.machine(),
		Procs: []sim.ProcessSpec{
			{Name: "P1", Workload: w, Controller: fac},
			{Name: "P2", Workload: w, Controller: fac, ArrivalRound: arrival},
		},
		Rounds:     cfg.Rounds,
		NoiseSigma: cfg.NoiseSigma,
		Seed:       seed,
	})
	if err != nil {
		return nil, fmt.Errorf("convergence %s: %w", policy, err)
	}
	period := 0.01
	arrivalT := float64(arrival) * period
	lastQuarterT := float64(cfg.Rounds) * period * 0.75
	r := &ConvergenceResult{
		Policy:    policy,
		P1:        out.Procs[0].Levels,
		P2:        out.Procs[1].Levels,
		Total:     out.TotalThreads,
		P1Pre:     out.Procs[0].Levels.Window(arrivalT/2, arrivalT).Mean(),
		P1Post:    out.Procs[0].Levels.MeanAfter(lastQuarterT),
		P2Post:    out.Procs[1].Levels.MeanAfter(lastQuarterT),
		TotalPost: out.TotalThreads.MeanAfter(lastQuarterT),
	}
	r.FairGap = r.P1Post - r.P2Post
	if r.FairGap < 0 {
		r.FairGap = -r.FairGap
	}
	fair := float64(cfg.Contexts) / 2
	tol := fair * 0.4
	t1, ok1 := r.P1.SettlingTime(arrivalT, fair, tol)
	t2, ok2 := r.P2.SettlingTime(arrivalT, fair, tol)
	if ok1 && ok2 {
		r.Settled = true
		r.SettleSeconds = t1 - arrivalT
		if t2 > t1 {
			r.SettleSeconds = t2 - arrivalT
		}
	}
	return r, nil
}

// SawtoothResult captures the idealized single-process dynamics of Figures
// 3 (AIMD) and 5 (CIMD/RUBIC): a perfectly scalable process on a noiseless
// machine.
type SawtoothResult struct {
	Policy string
	Levels *trace.Series
	// MeanLevel is the time-averaged level after the initial climb — the
	// dashed line of Figures 3 and 5.
	MeanLevel float64
	// Utilization is MeanLevel over the machine's context count.
	Utilization float64
}

// Sawtooth runs the idealized experiment behind Figure 3 (policy "aimd",
// alpha 0.5) and Figure 5 (policy "cimd", alpha 0.5, beta 0.1). Both figures
// depict the *pure* section-2 models — every loss answered by a
// multiplicative decrease, every gain by the model's growth function — so
// "cimd" runs RUBIC's Equation (1) with the hybrid linear phases disabled.
// Policy "rubic" runs the full Algorithm 2 for comparison (its hybrid
// reduction absorbs isolated losses, holding the level even closer to the
// capacity).
func Sawtooth(cfg Config, policy string) (*SawtoothResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var fac core.Factory
	switch policy {
	case "aimd":
		fac = func() core.Controller { return core.NewAIMD(cfg.MaxLevel, 0.5) }
	case "cimd":
		fac = func() core.Controller {
			return core.NewRUBIC(core.RUBICConfig{
				MaxLevel: cfg.MaxLevel, Alpha: 0.5, Beta: 0.1,
				DisableHybridGrowth: true, DisableHybridReduction: true,
			})
		}
	case "rubic":
		fac = func() core.Controller {
			return core.NewRUBIC(core.RUBICConfig{MaxLevel: cfg.MaxLevel, Alpha: 0.5, Beta: 0.1})
		}
	default:
		return nil, fmt.Errorf("harness: sawtooth supports aimd, cimd and rubic, not %q", policy)
	}
	out, err := sim.Run(sim.Scenario{
		Machine: cfg.machine(),
		Procs: []sim.ProcessSpec{
			{Name: policy, Workload: sim.ConflictFreeRBT(), Controller: fac},
		},
		Rounds:     cfg.Rounds,
		NoiseSigma: -1, // the figures depict the noiseless expected behaviour
		Seed:       1,
	})
	if err != nil {
		return nil, err
	}
	skip := float64(cfg.Rounds) * 0.01 * 0.2 // skip the first 20%: initial climb
	mean := out.Procs[0].Levels.MeanAfter(skip)
	return &SawtoothResult{
		Policy:      policy,
		Levels:      out.Procs[0].Levels,
		MeanLevel:   mean,
		Utilization: mean / float64(cfg.Contexts),
	}, nil
}

// GeometryResult captures the Figure 2 phase-space experiment: two identical
// perfectly scalable processes starting from an unequal allocation, under
// AIAD or AIMD.
type GeometryResult struct {
	Scheme string
	// L1, L2 are the two processes' level trajectories.
	L1, L2 *trace.Series
	// FinalGap is |L1-L2| averaged over the last quarter: AIMD drives it
	// toward zero (convergence to the fair point), AIAD preserves it.
	FinalGap float64
	// InitialGap is the configured starting inequality.
	InitialGap float64
}

// Geometry runs the Figure 2 experiment for scheme "aiad" or "aimd",
// starting the processes at unequal levels (40 and 10 on the 64-context
// default machine).
//
// Unlike the other experiments, Figure 2 is the paper's idealized geometric
// argument: both processes receive the *same binary feedback* — loss exactly
// when the system is oversubscribed, gain otherwise — so the system state
// moves along 45-degree lines (AIAD) or toward the origin (the MD phase).
// We therefore drive the controllers with synthetic feedback rather than the
// continuous machine model, which would blur the geometry with asymmetric
// share effects.
func Geometry(cfg Config, scheme string) (*GeometryResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1, l2 := cfg.Contexts*5/8, cfg.Contexts/8
	var mk func(init int) core.Controller
	switch scheme {
	case "aiad":
		mk = func(init int) core.Controller { return core.NewAIADAt(cfg.MaxLevel, 1, init) }
	case "aimd":
		mk = func(init int) core.Controller { return core.NewAIMDAt(cfg.MaxLevel, 0.5, init) }
	default:
		return nil, fmt.Errorf("harness: geometry supports aiad and aimd, not %q", scheme)
	}
	p1, p2 := mk(l1), mk(l2)
	s1 := trace.NewSeries("P1/level")
	s2 := trace.NewSeries("P2/level")
	// Synthetic observation streams: strictly increasing on gain rounds,
	// strictly decreasing on loss rounds, shared by both processes.
	obs1, obs2 := 1.0, 1.0
	lv1, lv2 := p1.Level(), p2.Level()
	for round := 0; round < cfg.Rounds; round++ {
		now := float64(round) * 0.01
		s1.Add(now, float64(lv1))
		s2.Add(now, float64(lv2))
		if lv1+lv2 > cfg.Contexts {
			obs1, obs2 = obs1*0.9, obs2*0.9
		} else {
			obs1, obs2 = obs1*1.1, obs2*1.1
		}
		lv1, lv2 = p1.Next(obs1), p2.Next(obs2)
	}
	t0 := float64(cfg.Rounds) * 0.01 * 0.75
	gap := s1.MeanAfter(t0) - s2.MeanAfter(t0)
	if gap < 0 {
		gap = -gap
	}
	return &GeometryResult{
		Scheme:     scheme,
		L1:         s1,
		L2:         s2,
		FinalGap:   gap,
		InitialGap: float64(l1 - l2),
	}, nil
}

// CurvePoint is one sample of a Figure 1/6 scalability sweep.
type CurvePoint struct {
	Threads    int
	Speedup    float64
	Normalized float64 // relative to the workload's peak (Figure 6)
}

// Scalability sweeps a workload's curve from 1 to the machine's context
// count, as measured on the simulated machine with a single pinned process —
// regenerating Figure 1 (intruder, absolute) and Figure 6 (all, normalized).
func Scalability(cfg Config, workloadName string) ([]CurvePoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	curve, err := workload(workloadName)
	if err != nil {
		return nil, err
	}
	m := cfg.machine()
	points := make([]CurvePoint, 0, cfg.Contexts)
	peak := 0.0
	for l := 1; l <= cfg.Contexts; l++ {
		s := m.Throughput(curve, curve.Kappa(), l, l)
		if s > peak {
			peak = s
		}
		points = append(points, CurvePoint{Threads: l, Speedup: s})
	}
	for i := range points {
		points[i].Normalized = points[i].Speedup / peak
	}
	return points, nil
}

// CubicShape samples the cubic growth function of Equation (1) for Figure 4.
func CubicShape(lmax, alpha, beta float64, rounds int) *trace.Series {
	s := trace.NewSeries(fmt.Sprintf("cubic(lmax=%g,a=%g,b=%g)", lmax, alpha, beta))
	for dt := 0; dt <= rounds; dt++ {
		s.Add(float64(dt), core.CubicGrowth(lmax, float64(dt), alpha, beta))
	}
	return s
}

// ConvergenceSummary aggregates the Figure 10 experiment over many seeds,
// putting error bars on the convergence claims.
type ConvergenceSummary struct {
	Policy string
	// FairGapMean / FairGapStd summarize |P1-P2| over the final quarter.
	FairGapMean, FairGapStd float64
	// TotalPostMean is the mean system thread count over the final quarter.
	TotalPostMean float64
	// SettledFrac is the fraction of repetitions that settled into the
	// fair band (see ConvergenceResult.Settled).
	SettledFrac float64
	// SettleMean is the mean settle time of the settled repetitions.
	SettleMean float64
}

// ConvergenceStats repeats the Figure 10 experiment cfg.Reps times over the
// seed ladder and aggregates.
func ConvergenceStats(cfg Config, policy string) (*ConvergenceSummary, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var gaps, totals, settles []float64
	settled := 0
	for rep := 0; rep < cfg.Reps; rep++ {
		r, err := Convergence(cfg, policy, cfg.Seed+int64(rep))
		if err != nil {
			return nil, err
		}
		gaps = append(gaps, r.FairGap)
		totals = append(totals, r.TotalPost)
		if r.Settled {
			settled++
			settles = append(settles, r.SettleSeconds)
		}
	}
	return &ConvergenceSummary{
		Policy:        policy,
		FairGapMean:   metrics.Mean(gaps),
		FairGapStd:    metrics.StdDev(gaps),
		TotalPostMean: metrics.Mean(totals),
		SettledFrac:   float64(settled) / float64(cfg.Reps),
		SettleMean:    metrics.Mean(settles),
	}, nil
}
