package harness

import (
	"fmt"

	"rubic/internal/metrics"
	"rubic/internal/sim"
)

// SingleCell is one (workload, policy) cell of the Figure 9 single-process
// experiment.
type SingleCell struct {
	Workload string
	Policy   string
	// Speedup is the mean speed-up across repetitions (Figure 9a).
	Speedup float64
	// SpeedupStd is its standard deviation.
	SpeedupStd float64
	// MeanLevel is the mean of per-repetition mean levels (Figure 9b).
	MeanLevel float64
	// LevelStd is the allocation standard deviation across repetitions,
	// the paper's stability metric (Figure 9c, lower is better).
	LevelStd float64
	// Efficiency is the mean speed-up per thread.
	Efficiency float64
}

// SingleResult is the complete Figure 9 dataset.
type SingleResult struct {
	Cells []SingleCell
}

// Cell returns the cell for a workload and policy, or nil.
func (r *SingleResult) Cell(workload, policy string) *SingleCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Workload == workload && c.Policy == policy {
			return c
		}
	}
	return nil
}

// Single runs the single-process experiment of section 4.5.2. In this
// setting EqualShare and Greedy coincide (both give the process the whole
// machine), so callers typically pass greedy plus the adaptive policies.
func Single(cfg Config, policies []string) (*SingleResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &SingleResult{}
	for _, w := range Workloads() {
		curve, err := workload(w)
		if err != nil {
			return nil, err
		}
		for _, pol := range policies {
			fac, err := cfg.factory(pol, 1)
			if err != nil {
				return nil, err
			}
			var sps, lvs, effs []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				out, err := sim.Run(sim.Scenario{
					Machine: cfg.machine(),
					Procs: []sim.ProcessSpec{
						{Name: w, Workload: curve, Controller: fac},
					},
					Rounds:     cfg.Rounds,
					NoiseSigma: cfg.NoiseSigma,
					Seed:       cfg.Seed + int64(rep),
				})
				if err != nil {
					return nil, fmt.Errorf("single %s/%s rep %d: %w", w, pol, rep, err)
				}
				sps = append(sps, out.Procs[0].Speedup)
				lvs = append(lvs, out.Procs[0].MeanLevel)
				effs = append(effs, out.Procs[0].Efficiency)
			}
			res.Cells = append(res.Cells, SingleCell{
				Workload:   w,
				Policy:     pol,
				Speedup:    metrics.Mean(sps),
				SpeedupStd: metrics.StdDev(sps),
				MeanLevel:  metrics.Mean(lvs),
				LevelStd:   metrics.StdDev(lvs),
				Efficiency: metrics.Mean(effs),
			})
		}
	}
	return res, nil
}
