// Package harness drives the paper's experiments end to end: it assembles
// scenarios from workload names and policy names, runs them repeatedly over
// a deterministic seed ladder, aggregates the metrics each figure reports,
// and renders the result tables. One entry point exists for every figure of
// the evaluation (see DESIGN.md's experiment index).
package harness

import (
	"fmt"

	"rubic/internal/core"
	"rubic/internal/sim"
)

// Config collects the experiment parameters shared by all figures. The zero
// value is not usable; call Default for the paper's setup.
type Config struct {
	// Contexts is the machine's hardware context count (paper: 64).
	Contexts int
	// MaxLevel is each process' thread-pool size, the upper bound of its
	// parallelism level (2x contexts, so greedy races are expressible).
	MaxLevel int
	// Rounds is the controller rounds per run (paper: 10 s at 10 ms = 1000).
	Rounds int
	// Reps is the number of repetitions per experiment (paper: 50).
	Reps int
	// Seed is the base of the seed ladder; repetition r uses Seed + r.
	Seed int64
	// NoiseSigma is the relative measurement noise (see sim.Scenario).
	NoiseSigma float64
}

// Default returns the paper's experimental setup: a 64-context machine,
// 128-thread pools, 10-second runs, 50 repetitions.
func Default() Config {
	return Config{
		Contexts:   64,
		MaxLevel:   128,
		Rounds:     1000,
		Reps:       50,
		Seed:       1,
		NoiseSigma: 0.01,
	}
}

// Validate reports configuration errors early.
func (c Config) Validate() error {
	switch {
	case c.Contexts < 1:
		return fmt.Errorf("harness: Contexts %d < 1", c.Contexts)
	case c.MaxLevel < 1:
		return fmt.Errorf("harness: MaxLevel %d < 1", c.MaxLevel)
	case c.Rounds < 1:
		return fmt.Errorf("harness: Rounds %d < 1", c.Rounds)
	case c.Reps < 1:
		return fmt.Errorf("harness: Reps %d < 1", c.Reps)
	}
	return nil
}

// Pairs returns the paper's three workload pairs in presentation order.
func Pairs() [][2]string {
	return [][2]string{
		{"intruder", "vacation"},
		{"intruder", "rbt"},
		{"vacation", "rbt"},
	}
}

// Workloads returns the three single-process workloads in presentation
// order.
func Workloads() []string {
	return []string{"intruder", "vacation", "rbt"}
}

// factory resolves a policy factory for the configuration.
func (c Config) factory(policy string, processes int) (core.Factory, error) {
	return core.ByName(policy, c.Contexts, processes, c.MaxLevel)
}

// workload resolves a workload curve.
func workload(name string) (*sim.Interp, error) {
	return sim.WorkloadByName(name)
}

// machine returns the simulated machine.
func (c Config) machine() sim.Machine {
	return sim.Machine{Contexts: c.Contexts}
}
