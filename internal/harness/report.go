package harness

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"rubic/internal/trace"
)

// WritePairwiseReport renders the Figure 7 and Figure 8 tables.
func WritePairwiseReport(w io.Writer, r *PairwiseResult, contexts int) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 7 — system-wide metrics, pairwise execution")
	fmt.Fprintln(tw, "pair\tpolicy\tNSBP\t±std\ttotal-threads\toversub%\ttotal-efficiency")
	for i := range r.Cells {
		c := &r.Cells[i]
		over := ""
		if c.TotalThreads > float64(contexts) {
			over = " (!)"
		}
		fmt.Fprintf(tw, "%s/%s\t%s\t%.2f\t%.2f\t%.1f%s\t%.0f%%\t%.4f\n",
			c.Pair[0], c.Pair[1], c.Policy, c.NSBP, c.NSBPStd,
			c.TotalThreads, over, c.OversubscribedFrac*100, c.TotalEfficiency)
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "geometric means across pairs")
	fmt.Fprintln(tw, "policy\tNSBP\ttotal-efficiency")
	for _, pol := range orderedPolicies(r) {
		fmt.Fprintf(tw, "%s\t%.2f\t%.4f\n", pol, r.GeoNSBP[pol], r.GeoEfficiency[pol])
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "Figure 8 — per-process metrics, pairwise execution")
	fmt.Fprintln(tw, "pair\tpolicy\tproc\tspeedup\tmean-threads\tlevel-std")
	for i := range r.Cells {
		c := &r.Cells[i]
		for _, p := range c.Procs {
			fmt.Fprintf(tw, "%s/%s\t%s\t%s\t%.2f\t%.1f\t%.2f\n",
				c.Pair[0], c.Pair[1], c.Policy, p.Workload, p.Speedup, p.MeanLevel, p.LevelStd)
		}
	}
	return tw.Flush()
}

func orderedPolicies(r *PairwiseResult) []string {
	seen := map[string]bool{}
	var out []string
	for i := range r.Cells {
		if pol := r.Cells[i].Policy; !seen[pol] {
			seen[pol] = true
			out = append(out, pol)
		}
	}
	return out
}

// WriteHeadlineReport renders the section 4.5.1 headline ratios.
func WriteHeadlineReport(w io.Writer, h *Headline) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Headline (section 4.5.1) — RUBIC vs each policy, geometric mean over pairs")
	fmt.Fprintln(tw, "policy\tNSBP gain\tefficiency factor")
	for pol, gain := range h.NSBPGainOver {
		fmt.Fprintf(tw, "%s\t%+.0f%%\t%.1fx\n", pol, gain*100, h.EfficiencyFactorOver[pol])
	}
	return tw.Flush()
}

// WriteSingleReport renders the Figure 9 table.
func WriteSingleReport(w io.Writer, r *SingleResult) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 9 — single-process execution")
	fmt.Fprintln(tw, "workload\tpolicy\tspeedup\t±std\tmean-threads\tlevel-std\tefficiency")
	for i := range r.Cells {
		c := &r.Cells[i]
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.1f\t%.2f\t%.4f\n",
			c.Workload, c.Policy, c.Speedup, c.SpeedupStd, c.MeanLevel, c.LevelStd, c.Efficiency)
	}
	return tw.Flush()
}

// WriteConvergenceReport renders the Figure 10 summary and an ASCII plot of
// the two processes' levels over time.
func WriteConvergenceReport(w io.Writer, results []*ConvergenceResult, contexts int) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 10 — convergence with staggered arrival (conflict-free RBT)")
	fmt.Fprintln(tw, "policy\tP1 pre-arrival\tP1 post\tP2 post\ttotal post\tfair-gap\tsettle")
	for _, r := range results {
		settle := "never"
		if r.Settled {
			settle = fmt.Sprintf("%.2fs", r.SettleSeconds)
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%s\n",
			r.Policy, r.P1Pre, r.P1Post, r.P2Post, r.TotalPost, r.FairGap, settle)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, r := range results {
		set := &trace.Set{}
		set.Add(r.P1.Downsample(10))
		set.Add(r.P2.Downsample(10))
		if _, err := io.WriteString(w, "\n"+trace.Plot(set, trace.PlotOptions{
			Title:  fmt.Sprintf("Figure 10 (%s): active threads over time (fair split = %d)", r.Policy, contexts/2),
			Height: 12,
			Width:  72,
		})); err != nil {
			return err
		}
	}
	return nil
}

// WriteSawtoothReport renders the Figure 3 / Figure 5 summary and plots.
func WriteSawtoothReport(w io.Writer, results []*SawtoothResult, contexts int) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figures 3 & 5 — idealized single scalable process (noiseless)")
	fmt.Fprintln(tw, "policy\tmean level\tutilization")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%.1f\t%.0f%%\n", r.Policy, r.MeanLevel, r.Utilization*100)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, r := range results {
		set := &trace.Set{}
		set.Add(r.Levels.Downsample(10))
		if _, err := io.WriteString(w, "\n"+trace.Plot(set, trace.PlotOptions{
			Title:  fmt.Sprintf("%s level over time (contexts = %d)", r.Policy, contexts),
			Height: 12,
			Width:  72,
		})); err != nil {
			return err
		}
	}
	return nil
}

// WriteGeometryReport renders the Figure 2 summary.
func WriteGeometryReport(w io.Writer, results []*GeometryResult) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 2 — convergence geometry of two processes from an unequal start")
	fmt.Fprintln(tw, "scheme\tinitial |L1-L2|\tfinal |L1-L2|\tconverges to fairness")
	for _, r := range results {
		verdict := "no"
		if r.FinalGap <= r.InitialGap/4 {
			verdict = "yes"
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.1f\t%s\n", r.Scheme, r.InitialGap, r.FinalGap, verdict)
	}
	return tw.Flush()
}

// WriteScalabilityReport renders the Figure 1 / Figure 6 sweeps.
func WriteScalabilityReport(w io.Writer, sweeps map[string][]CurvePoint, threads []int) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figures 1 & 6 — scalability sweeps (speedup, normalized-to-peak)")
	names := make([]string, 0, len(sweeps))
	for name := range sweeps {
		names = append(names, name)
	}
	// Stable order: the evaluation's usual ordering.
	order := []string{"intruder", "vacation", "rbt", "rbt-ro"}
	var cols []string
	for _, o := range order {
		if _, ok := sweeps[o]; ok {
			cols = append(cols, o)
		}
	}
	for _, n := range names {
		found := false
		for _, c := range cols {
			if c == n {
				found = true
				break
			}
		}
		if !found {
			cols = append(cols, n)
		}
	}
	header := "threads"
	for _, c := range cols {
		header += "\t" + c
	}
	fmt.Fprintln(tw, header)
	for _, th := range threads {
		row := fmt.Sprintf("%d", th)
		for _, c := range cols {
			pts := sweeps[c]
			if th >= 1 && th <= len(pts) {
				p := pts[th-1]
				row += fmt.Sprintf("\t%.2f (%.2f)", p.Speedup, p.Normalized)
			} else {
				row += "\t-"
			}
		}
		fmt.Fprintln(tw, row)
	}
	return tw.Flush()
}

// Banner renders a section divider used by the CLI between experiments.
func Banner(w io.Writer, title string) {
	line := strings.Repeat("=", len(title)+8)
	fmt.Fprintf(w, "\n%s\n=== %s ===\n%s\n", line, title, line)
}
