package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestScalingFairAndFull(t *testing.T) {
	cfg := testConfig()
	cfg.Reps = 4
	points, err := Scaling(cfg, "rubic", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for _, p := range points {
		// Decentralized RUBIC must divide the machine fairly at every N.
		if p.Jain < 0.9 {
			t.Errorf("N=%d: Jain %.3f, want >= 0.9", p.N, p.Jain)
		}
		// And keep the machine well used without oversubscribing on average.
		if p.TotalThreads > float64(cfg.Contexts)+2 {
			t.Errorf("N=%d: total threads %.1f above capacity", p.N, p.TotalThreads)
		}
		if p.N >= 2 && p.TotalThreads < float64(cfg.Contexts)*0.75 {
			t.Errorf("N=%d: total threads %.1f, machine underused", p.N, p.TotalThreads)
		}
	}
	// Per-process share should shrink roughly like C/N.
	if points[0].PerProcessLevel < points[1].PerProcessLevel {
		t.Errorf("per-process level should shrink with N: %v", points)
	}

	var buf bytes.Buffer
	if err := WriteScalingReport(&buf, points, "rubic", cfg.Contexts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ext-scaling") {
		t.Error("scaling report missing title")
	}

	if _, err := Scaling(cfg, "rubic", 0); err == nil {
		t.Error("maxN 0 accepted")
	}
	if _, err := Scaling(cfg, "bogus", 2); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestChurnAdaptation(t *testing.T) {
	cfg := testConfig()
	r, err := Churn(cfg, "rubic")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Phases) < 4 {
		t.Fatalf("got %d phases, want >= 4", len(r.Phases))
	}
	for _, p := range r.Phases {
		if len(p.Present) == 0 {
			continue
		}
		if p.Jain < 0.85 {
			t.Errorf("phase [%.1f,%.1f) with %v: Jain %.3f, want >= 0.85",
				p.Start, p.End, p.Present, p.Jain)
		}
		if p.TotalThreads > float64(cfg.Contexts)*1.10 {
			t.Errorf("phase [%.1f,%.1f): total %.1f well above capacity",
				p.Start, p.End, p.TotalThreads)
		}
	}
	// RUBIC must not oversubscribe for long overall.
	if r.OversubscribedFrac > 0.40 {
		t.Errorf("oversubscribed %.0f%% of rounds", r.OversubscribedFrac*100)
	}

	var buf bytes.Buffer
	if err := WriteChurnReport(&buf, r, cfg.Contexts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ext-churn") {
		t.Error("churn report missing title")
	}

	if _, err := Churn(cfg, "bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestChurnRUBICBeatsGreedyBaseline: under churn, greedy oversubscribes in
// every multi-process phase while RUBIC does not.
func TestChurnRUBICBeatsGreedyBaseline(t *testing.T) {
	cfg := testConfig()
	rubic, err := Churn(cfg, "rubic")
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Churn(cfg, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	if greedy.OversubscribedFrac <= rubic.OversubscribedFrac {
		t.Errorf("greedy oversub %.2f <= rubic %.2f",
			greedy.OversubscribedFrac, rubic.OversubscribedFrac)
	}
}

func TestDynamicHardware(t *testing.T) {
	cfg := testConfig()
	cfg.Rounds = 1200
	r, err := DynamicHardware(cfg, "rubic")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Phases) != 3 {
		t.Fatalf("got %d phases", len(r.Phases))
	}
	full1, half, full2 := r.Phases[0], r.Phases[1], r.Phases[2]
	if full1.MeanLevel < 50 {
		t.Errorf("initial full-machine level %.1f, want near 64", full1.MeanLevel)
	}
	if half.MeanLevel > 42 {
		t.Errorf("half-machine level %.1f, want to shrink toward 32", half.MeanLevel)
	}
	if full2.MeanLevel < 48 {
		t.Errorf("restored-machine level %.1f, want to re-probe toward 64", full2.MeanLevel)
	}

	var buf bytes.Buffer
	if err := WriteHWReport(&buf, []*HWResult{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ext-hw") {
		t.Error("hw report missing title")
	}

	if _, err := DynamicHardware(cfg, "bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}
