package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestNoiseSensitivity(t *testing.T) {
	cfg := testConfig()
	cfg.Reps = 3
	points, err := NoiseSensitivity(cfg, []float64{0, 0.01, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// Utilization degrades monotonically-ish with noise; the noiseless run
	// must be clearly the best and 5% noise clearly worse than 1%.
	if points[0].Utilization < points[1].Utilization {
		t.Errorf("noiseless utilization %.2f < 1%%-noise %.2f",
			points[0].Utilization, points[1].Utilization)
	}
	if points[2].Utilization > points[1].Utilization {
		t.Errorf("5%%-noise utilization %.2f > 1%%-noise %.2f",
			points[2].Utilization, points[1].Utilization)
	}
	// At the paper's 1% noise RUBIC keeps most of the machine.
	if points[1].Utilization < 0.80 {
		t.Errorf("1%%-noise utilization %.0f%%, want >= 80%%", points[1].Utilization*100)
	}
	var buf bytes.Buffer
	if err := WriteNoiseReport(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ext-noise") {
		t.Error("noise report missing title")
	}
}

func TestParamSweep(t *testing.T) {
	cfg := testConfig()
	cfg.Reps = 3
	points, err := ParamSweep(cfg, []float64{0.5, 0.8}, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	var a05, a08 ParamPoint
	for _, p := range points {
		if p.Alpha == 0.5 {
			a05 = p
		} else {
			a08 = p
		}
	}
	// The paper's alpha=0.8 beats the SPAA'15 alpha=0.5 on throughput
	// (shallower cuts waste less capacity).
	if a08.PairNSBP <= a05.PairNSBP {
		t.Errorf("alpha 0.8 NSBP %.1f <= alpha 0.5 %.1f", a08.PairNSBP, a05.PairNSBP)
	}
	// Both must still converge to near-fair splits.
	for _, p := range points {
		if p.ConvergenceGap > 12 {
			t.Errorf("alpha %.1f: convergence gap %.1f too large", p.Alpha, p.ConvergenceGap)
		}
	}
	var buf bytes.Buffer
	if err := WriteParamReport(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ext-params") {
		t.Error("param report missing title")
	}
}
