package harness

import (
	"bytes"
	"strings"
	"testing"
)

// testConfig returns a reduced-rep configuration so the suite stays fast;
// the full 50-rep runs live in the benchmark harness.
func testConfig() Config {
	cfg := Default()
	cfg.Reps = 8
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for _, mut := range []func(*Config){
		func(c *Config) { c.Contexts = 0 },
		func(c *Config) { c.MaxLevel = 0 },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.Reps = 0 },
	} {
		cfg := Default()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("invalid config %+v accepted", cfg)
		}
	}
}

func TestPairwiseFigure7(t *testing.T) {
	cfg := testConfig()
	res, err := Pairwise(cfg, []string{"greedy", "equalshare", "f2c2", "ebs", "rubic"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 15 { // 3 pairs x 5 policies
		t.Fatalf("got %d cells, want 15", len(res.Cells))
	}

	// Figure 7a orderings: RUBIC wins every pair; Greedy is worst.
	for _, pair := range Pairs() {
		rub := res.Cell(pair[0], pair[1], "rubic")
		for _, pol := range []string{"greedy", "equalshare", "f2c2", "ebs"} {
			other := res.Cell(pair[0], pair[1], pol)
			if other == nil || rub == nil {
				t.Fatalf("missing cell for %v", pair)
			}
			if rub.NSBP <= other.NSBP {
				t.Errorf("pair %v: rubic NSBP %.1f <= %s %.1f", pair, rub.NSBP, pol, other.NSBP)
			}
			if pol != "greedy" {
				greedy := res.Cell(pair[0], pair[1], "greedy")
				if greedy.NSBP >= other.NSBP {
					t.Errorf("pair %v: greedy %.1f >= %s %.1f; greedy should be worst",
						pair, greedy.NSBP, pol, other.NSBP)
				}
			}
		}
	}

	// Figure 7 geometric means: rubic > ebs > greedy; efficiency likewise.
	if res.GeoNSBP["rubic"] <= res.GeoNSBP["ebs"] {
		t.Errorf("geomean NSBP: rubic %.1f <= ebs %.1f", res.GeoNSBP["rubic"], res.GeoNSBP["ebs"])
	}
	if res.GeoNSBP["greedy"] >= res.GeoNSBP["equalshare"] {
		t.Errorf("geomean NSBP: greedy not worst")
	}
	if res.GeoEfficiency["rubic"] <= res.GeoEfficiency["ebs"] {
		t.Errorf("geomean efficiency: rubic <= ebs")
	}

	// Figure 7b: RUBIC's total threads stay below the oversubscription
	// line on every pair; EBS/F2C2 exceed it on the rbt pairs.
	for _, pair := range Pairs() {
		if c := res.Cell(pair[0], pair[1], "rubic"); c.TotalThreads > float64(cfg.Contexts) {
			t.Errorf("pair %v: rubic mean threads %.1f > %d", pair, c.TotalThreads, cfg.Contexts)
		}
	}
	ebsRbt := res.Cell("intruder", "rbt", "ebs")
	f2c2Rbt := res.Cell("vacation", "rbt", "f2c2")
	if ebsRbt.OversubscribedFrac == 0 && f2c2Rbt.OversubscribedFrac == 0 {
		t.Errorf("AIAD policies never oversubscribed on rbt pairs; expected races")
	}

	// Figure 8b: RUBIC is the most stable adaptive policy on average
	// (lowest level-std), F2C2 the least stable.
	stdOf := func(pol string) float64 {
		sum := 0.0
		n := 0
		for i := range res.Cells {
			c := &res.Cells[i]
			if c.Policy == pol {
				sum += c.Procs[0].LevelStd + c.Procs[1].LevelStd
				n += 2
			}
		}
		return sum / float64(n)
	}
	if stdOf("rubic") >= stdOf("f2c2") {
		t.Errorf("stability: rubic std %.2f >= f2c2 std %.2f", stdOf("rubic"), stdOf("f2c2"))
	}

	// Section 4.5.1 text: on Int/Vac, EBS is comparable to RUBIC (both
	// peaks fit in the machine).
	rub := res.Cell("intruder", "vacation", "rubic")
	ebs := res.Cell("intruder", "vacation", "ebs")
	if ebs.NSBP < rub.NSBP*0.75 {
		t.Errorf("int/vac: EBS %.1f not comparable to RUBIC %.1f", ebs.NSBP, rub.NSBP)
	}
}

func TestHeadlineNumbers(t *testing.T) {
	cfg := testConfig()
	res, err := Pairwise(cfg, []string{"greedy", "equalshare", "f2c2", "ebs", "rubic"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ComputeHeadline(res)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: +26% over EBS. Accept the right ballpark (10%..60%).
	gain := h.NSBPGainOver["ebs"]
	if gain < 0.10 || gain > 0.60 {
		t.Errorf("NSBP gain over EBS = %+.0f%%, want tens of percent (paper: +26%%)", gain*100)
	}
	// Paper: +500% over Greedy; our model yields several-fold as well.
	if h.NSBPGainOver["greedy"] < 3 {
		t.Errorf("NSBP gain over Greedy = %+.0f%%, want >= +300%%", h.NSBPGainOver["greedy"]*100)
	}
	// Paper: efficiency 2x over EBS, 66x over Greedy.
	if h.EfficiencyFactorOver["ebs"] < 1.1 {
		t.Errorf("efficiency factor over EBS = %.2f, want > 1.1", h.EfficiencyFactorOver["ebs"])
	}
	if h.EfficiencyFactorOver["greedy"] < 20 {
		t.Errorf("efficiency factor over Greedy = %.1f, want >> 20", h.EfficiencyFactorOver["greedy"])
	}

	if _, err := ComputeHeadline(&PairwiseResult{GeoNSBP: map[string]float64{"ebs": 1}}); err == nil {
		t.Error("headline without rubic accepted")
	}
}

func TestSingleFigure9(t *testing.T) {
	cfg := testConfig()
	res, err := Single(cfg, []string{"greedy", "f2c2", "ebs", "rubic"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(res.Cells))
	}
	// Figure 9a: RUBIC comparable with the best policy on every workload.
	for _, w := range Workloads() {
		best := 0.0
		for _, pol := range []string{"greedy", "f2c2", "ebs", "rubic"} {
			if c := res.Cell(w, pol); c.Speedup > best {
				best = c.Speedup
			}
		}
		rub := res.Cell(w, "rubic")
		if rub.Speedup < 0.8*best {
			t.Errorf("%s: rubic speedup %.2f < 80%% of best %.2f", w, rub.Speedup, best)
		}
	}
	// Greedy hammers intruder (level 64, Figure 9a/9b).
	if g := res.Cell("intruder", "greedy"); g.Speedup > 1 || g.MeanLevel != 64 {
		t.Errorf("greedy on intruder: speedup %.2f level %.1f, want collapse at 64", g.Speedup, g.MeanLevel)
	}
	// Figure 9c: RUBIC's stability at least comparable to the others on
	// average.
	avgStd := func(pol string) float64 {
		sum := 0.0
		for _, w := range Workloads() {
			sum += res.Cell(w, pol).LevelStd
		}
		return sum / float64(len(Workloads()))
	}
	if avgStd("rubic") > avgStd("f2c2") {
		t.Errorf("rubic avg level-std %.2f > f2c2 %.2f", avgStd("rubic"), avgStd("f2c2"))
	}
}

func TestConvergenceFigure10(t *testing.T) {
	cfg := testConfig()
	var results []*ConvergenceResult
	for _, pol := range []string{"f2c2", "ebs", "rubic"} {
		r, err := Convergence(cfg, pol, 7)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	rubic := results[2]
	// RUBIC: both processes near the fair 32/32 split, small gap.
	if rubic.FairGap > 10 {
		t.Errorf("rubic fair gap %.1f, want small", rubic.FairGap)
	}
	if rubic.P1Post < 24 || rubic.P1Post > 40 || rubic.P2Post < 24 || rubic.P2Post > 40 {
		t.Errorf("rubic post levels (%.1f, %.1f), want near 32", rubic.P1Post, rubic.P2Post)
	}
	if rubic.TotalPost > float64(cfg.Contexts)+4 {
		t.Errorf("rubic total post %.1f, want <= ~%d", rubic.TotalPost, cfg.Contexts)
	}
	// Baselines: worse oversubscription or worse fairness than RUBIC.
	for _, r := range results[:2] {
		if r.TotalPost <= rubic.TotalPost && r.FairGap <= rubic.FairGap {
			t.Errorf("%s converged as well as rubic (total %.1f gap %.1f)", r.Policy, r.TotalPost, r.FairGap)
		}
	}
	// Report renders.
	var buf bytes.Buffer
	if err := WriteConvergenceReport(&buf, results, cfg.Contexts); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rubic", "ebs", "f2c2", "fair-gap"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("convergence report missing %q", want)
		}
	}
}

func TestSawtoothFigures3And5(t *testing.T) {
	cfg := testConfig()
	cfg.Rounds = 2000
	aimd, err := Sawtooth(cfg, "aimd")
	if err != nil {
		t.Fatal(err)
	}
	cimd, err := Sawtooth(cfg, "cimd")
	if err != nil {
		t.Fatal(err)
	}
	rubic, err := Sawtooth(cfg, "rubic")
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3: AIMD(0.5) averages ~75% utilization.
	if aimd.Utilization < 0.65 || aimd.Utilization > 0.88 {
		t.Errorf("AIMD utilization %.0f%%, want ~75%%", aimd.Utilization*100)
	}
	// Figure 5: pure CIMD clearly above AIMD (paper: ~94%; our model ~85%).
	if cimd.Utilization < 0.78 {
		t.Errorf("CIMD utilization %.0f%%, want >= 78%%", cimd.Utilization*100)
	}
	if cimd.Utilization <= aimd.Utilization {
		t.Errorf("CIMD %.2f <= AIMD %.2f utilization", cimd.Utilization, aimd.Utilization)
	}
	// Full RUBIC (hybrid reduction) holds the level even closer to capacity.
	if rubic.Utilization < cimd.Utilization {
		t.Errorf("RUBIC %.2f < CIMD %.2f utilization", rubic.Utilization, cimd.Utilization)
	}
	if _, err := Sawtooth(cfg, "ebs"); err == nil {
		t.Error("sawtooth accepted unsupported policy")
	}
}

func TestGeometryFigure2(t *testing.T) {
	cfg := testConfig()
	aiad, err := Geometry(cfg, "aiad")
	if err != nil {
		t.Fatal(err)
	}
	aimd, err := Geometry(cfg, "aimd")
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2a: AIAD preserves the initial inequality.
	if aiad.FinalGap < aiad.InitialGap*0.5 {
		t.Errorf("AIAD gap shrank from %.0f to %.1f; additive moves should preserve it",
			aiad.InitialGap, aiad.FinalGap)
	}
	// Figure 2b: AIMD converges toward the fair allocation.
	if aimd.FinalGap > aimd.InitialGap*0.25 {
		t.Errorf("AIMD gap only shrank from %.0f to %.1f; should approach zero",
			aimd.InitialGap, aimd.FinalGap)
	}
	if _, err := Geometry(cfg, "rubic"); err == nil {
		t.Error("geometry accepted unsupported scheme")
	}
}

func TestScalabilityFigures1And6(t *testing.T) {
	cfg := testConfig()
	sweep, err := Scalability(cfg, "intruder")
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != cfg.Contexts {
		t.Fatalf("sweep has %d points, want %d", len(sweep), cfg.Contexts)
	}
	// Figure 1: peak at 7 threads, < half sequential at 64.
	bestIdx := 0
	for i, p := range sweep {
		if p.Speedup > sweep[bestIdx].Speedup {
			bestIdx = i
		}
	}
	if sweep[bestIdx].Threads != 7 {
		t.Errorf("intruder peak at %d threads, want 7", sweep[bestIdx].Threads)
	}
	if last := sweep[len(sweep)-1]; last.Speedup >= 0.5*sweep[0].Speedup {
		t.Errorf("intruder at 64 = %.2f, want < half of sequential %.2f", last.Speedup, sweep[0].Speedup)
	}
	if sweep[bestIdx].Normalized != 1 {
		t.Errorf("normalized peak = %v, want 1", sweep[bestIdx].Normalized)
	}
	if _, err := Scalability(cfg, "bogus"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestCubicShapeFigure4(t *testing.T) {
	s := CubicShape(64, 0.8, 0.1, 20)
	if s.Len() != 21 {
		t.Fatalf("len = %d, want 21", s.Len())
	}
	// Steady state: approaches 64 from below; probing: exceeds it after the
	// inflection (K = cbrt(64*0.8/0.1) = 8).
	if s.V[8] < 63.9 || s.V[8] > 64.1 {
		t.Errorf("value at inflection = %.2f, want 64", s.V[8])
	}
	if s.V[0] >= 64 || s.V[20] <= 64 {
		t.Errorf("cubic shape wrong: start %.1f (want <64), end %.1f (want >64)", s.V[0], s.V[20])
	}
}

func TestReportsRender(t *testing.T) {
	cfg := testConfig()
	cfg.Reps = 3
	pw, err := Pairwise(cfg, []string{"greedy", "ebs", "rubic"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePairwiseReport(&buf, pw, cfg.Contexts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 7", "Figure 8", "NSBP", "intruder/vacation", "geometric means"} {
		if !strings.Contains(out, want) {
			t.Errorf("pairwise report missing %q", want)
		}
	}

	h, err := ComputeHeadline(pw)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteHeadlineReport(&buf, h); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Headline") {
		t.Error("headline report missing title")
	}

	sg, err := Single(cfg, []string{"greedy", "rubic"})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteSingleReport(&buf, sg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("single report missing title")
	}

	st, err := Sawtooth(cfg, "rubic")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteSawtoothReport(&buf, []*SawtoothResult{st}, cfg.Contexts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figures 3 & 5") {
		t.Error("sawtooth report missing title")
	}

	geo, err := Geometry(cfg, "aimd")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteGeometryReport(&buf, []*GeometryResult{geo}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("geometry report missing title")
	}

	sw, err := Scalability(cfg, "vacation")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteScalabilityReport(&buf, map[string][]CurvePoint{"vacation": sw}, []int{1, 8, 64}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vacation") {
		t.Error("scalability report missing workload")
	}
}

// TestConvergenceSettlingSpeed pins the "impressively fast" claim: RUBIC
// settles both processes into the fair band within about a second of P2's
// arrival, while the AIAD baselines do not settle at all.
func TestConvergenceSettlingSpeed(t *testing.T) {
	cfg := testConfig()
	rubic, err := Convergence(cfg, "rubic", 7)
	if err != nil {
		t.Fatal(err)
	}
	if !rubic.Settled {
		t.Fatal("rubic never settled into the fair band")
	}
	if rubic.SettleSeconds > 2.0 {
		t.Errorf("rubic settled in %.2fs, want <= 2s", rubic.SettleSeconds)
	}
	for _, pol := range []string{"ebs", "f2c2"} {
		r, err := Convergence(cfg, pol, 7)
		if err != nil {
			t.Fatal(err)
		}
		if r.Settled && r.SettleSeconds < rubic.SettleSeconds {
			t.Errorf("%s settled faster (%.2fs) than rubic (%.2fs)", pol, r.SettleSeconds, rubic.SettleSeconds)
		}
	}
}

// TestConvergenceStats aggregates Figure 10 over seeds: RUBIC settles in
// (almost) every repetition with a small mean gap; EBS essentially never.
func TestConvergenceStats(t *testing.T) {
	cfg := testConfig()
	cfg.Reps = 10
	rubic, err := ConvergenceStats(cfg, "rubic")
	if err != nil {
		t.Fatal(err)
	}
	if rubic.SettledFrac < 0.8 {
		t.Errorf("rubic settled in only %.0f%% of reps", rubic.SettledFrac*100)
	}
	if rubic.FairGapMean > 10 {
		t.Errorf("rubic mean fair gap %.1f", rubic.FairGapMean)
	}
	ebs, err := ConvergenceStats(cfg, "ebs")
	if err != nil {
		t.Fatal(err)
	}
	if ebs.SettledFrac >= rubic.SettledFrac {
		t.Errorf("ebs settled as often as rubic (%.2f >= %.2f)", ebs.SettledFrac, rubic.SettledFrac)
	}
	if ebs.FairGapMean <= rubic.FairGapMean {
		t.Errorf("ebs mean gap %.1f <= rubic %.1f", ebs.FairGapMean, rubic.FairGapMean)
	}
}
