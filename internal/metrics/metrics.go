// Package metrics implements the performance, efficiency and fairness
// metrics used throughout the RUBIC evaluation (paper sections 4.1 and 4.2):
// per-process speed-up, the Nash-bargaining system performance function
// (the product of speed-ups), per-process and system efficiency, Jain's
// fairness index, and the descriptive statistics (geometric mean, standard
// deviation) the figures report.
package metrics

import (
	"errors"
	"math"
)

// Speedup returns the speed-up S of a process: the ratio between the
// throughput it obtained and the throughput of a sequential (1-thread,
// single-process) execution of the same workload.
//
// S_p(w) = T_p(w) / T_seq(w)   (paper section 4.1).
func Speedup(throughput, sequential float64) float64 {
	if sequential <= 0 {
		return 0
	}
	return throughput / sequential
}

// Efficiency returns the efficiency E of a process: its speed-up divided by
// its parallelism level (number of active threads).
//
// E_p(w) = S_p(w) / L_p(w)   (paper section 4.2).
func Efficiency(speedup float64, level float64) float64 {
	if level <= 0 {
		return 0
	}
	return speedup / level
}

// NSBP returns the system's overall performance under Nash's solution to the
// bargaining problem: the product of all processes' speed-ups (paper
// section 4.1). An empty slice yields 1 (the empty product).
func NSBP(speedups []float64) float64 {
	p := 1.0
	for _, s := range speedups {
		p *= s
	}
	return p
}

// SystemEfficiency returns the system's total efficiency: the product of all
// processes' efficiencies (paper section 4.2).
func SystemEfficiency(efficiencies []float64) float64 {
	p := 1.0
	for _, e := range efficiencies {
		p *= e
	}
	return p
}

// ErrEmpty is returned by aggregate statistics when given no samples.
var ErrEmpty = errors.New("metrics: empty sample set")

// GeoMean returns the geometric mean of xs. All samples must be positive;
// non-positive samples make the geometric mean undefined and yield an error.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("metrics: geometric mean of non-positive sample")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs. The paper uses the
// standard deviation of a process's thread allocation across the 50
// repetitions of each experiment as its stability metric (Figures 8b, 9c).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Jain returns Jain's fairness index of the allocation xs:
//
//	J = (sum x)^2 / (n * sum x^2)
//
// J is 1 when all processes receive equal shares and approaches 1/n as the
// allocation concentrates on a single process. The paper discusses fairness
// qualitatively; we expose Jain's index as the standard quantitative
// companion metric for the convergence experiments.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Normalize returns xs scaled so that its maximum is 1. A zero or empty
// input is returned as a copy, unchanged. Figure 6 normalizes each
// workload's scalability curve to its own peak this way.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	peak := Max(xs)
	if peak == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / peak
	}
	return out
}
