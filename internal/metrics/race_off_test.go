//go:build !race

package metrics

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count assertions are skipped under -race: the detector adds
// shadow allocations that testing.AllocsPerRun would attribute to the
// histogram's record path.
const raceEnabled = false
