package metrics

import "sync/atomic"

// Padded atomic words for globally shared hot fields: a leading full-line
// pad keeps the word off the previous struct field's cache line, a trailing
// pad keeps the next field off the word's own line. They exist for the few
// single words every core hammers — the STM's global version clock and
// NOrec sequence lock, the pool's parallelism level and active count —
// where a ShardedCounter is the wrong shape because readers need one exact
// word, not a statistical sum. Embedding the padding in the type (rather
// than ordering struct fields by hand) keeps the isolation robust against
// later field insertions.

// PaddedUint64 is an atomic uint64 alone on its cache line.
type PaddedUint64 struct {
	_ [cacheLine]byte
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Load returns the current value.
func (p *PaddedUint64) Load() uint64 { return p.v.Load() }

// Store sets the value.
func (p *PaddedUint64) Store(x uint64) { p.v.Store(x) }

// Add adds delta and returns the new value.
func (p *PaddedUint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// CompareAndSwap executes the compare-and-swap operation.
func (p *PaddedUint64) CompareAndSwap(old, new uint64) bool { return p.v.CompareAndSwap(old, new) }

// PaddedInt32 is an atomic int32 alone on its cache line.
type PaddedInt32 struct {
	_ [cacheLine]byte
	v atomic.Int32
	_ [cacheLine - 4]byte
}

// Load returns the current value.
func (p *PaddedInt32) Load() int32 { return p.v.Load() }

// Store sets the value.
func (p *PaddedInt32) Store(x int32) { p.v.Store(x) }

// Swap sets the value and returns the previous one.
func (p *PaddedInt32) Swap(x int32) int32 { return p.v.Swap(x) }

// PaddedInt64 is an atomic int64 alone on its cache line.
type PaddedInt64 struct {
	_ [cacheLine]byte
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Load returns the current value.
func (p *PaddedInt64) Load() int64 { return p.v.Load() }

// Store sets the value.
func (p *PaddedInt64) Store(x int64) { p.v.Store(x) }

// Add adds delta and returns the new value.
func (p *PaddedInt64) Add(delta int64) int64 { return p.v.Add(delta) }
