package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// histErrBound checks one reported quantile against the sorted-slice oracle:
// the histogram reports the upper edge of the bucket holding the order
// statistic, so it is never below the true value and at most one bucket
// width (2^-histSubBits relative, +1 ns in the exact region) above it.
func histErrBound(t *testing.T, q float64, got, want time.Duration) {
	t.Helper()
	if got < want {
		t.Fatalf("q=%v: histogram %v below oracle %v", q, got, want)
	}
	slack := want/histSubCnt + 1
	if got > want+slack {
		t.Fatalf("q=%v: histogram %v exceeds oracle %v by more than a bucket (%v)", q, got, want, slack)
	}
}

// oracleQuantile is the reference definition both sides use: the
// ceil(q*n)-th smallest observation.
func oracleQuantile(sorted []time.Duration, q float64) time.Duration {
	rank := int(float64(len(sorted))*q + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestHistMergedQuantilesVsOracle is the merge+accuracy property test: a
// latency stream spanning seven orders of magnitude is dealt across
// per-worker histograms, the merged histogram's quantiles must match a
// sorted-slice oracle within the bucket error bound, across seeds.
func TestHistMergedQuantilesVsOracle(t *testing.T) {
	quantiles := []float64{0.5, 0.9, 0.99, 0.999, 1.0}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const workers, n = 8, 50000
		hists := make([]*Hist, workers)
		for i := range hists {
			hists[i] = NewHist()
		}
		all := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			// Log-uniform magnitudes: sub-µs fast path through multi-second
			// stalls, the shape a queue-delay distribution actually has.
			mag := time.Duration(1) << uint(rng.Intn(33)) // 1 ns .. ~8 s
			d := time.Duration(rng.Int63n(int64(mag))) + 1
			all = append(all, d)
			hists[i%workers].Record(d)
		}
		merged := NewHist()
		for _, h := range hists {
			merged.Merge(h)
		}
		if merged.Count() != n {
			t.Fatalf("seed %d: merged count %d, want %d", seed, merged.Count(), n)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for _, q := range quantiles {
			histErrBound(t, q, merged.Quantile(q), oracleQuantile(all, q))
		}
		if max := merged.Max(); max != all[n-1] {
			t.Fatalf("seed %d: merged max %v, want exact %v", seed, max, all[n-1])
		}
	}
}

// TestHistSubIsInterval checks the epoch differencing path: cumulative
// minus a prefix snapshot reports the suffix's quantiles.
func TestHistSubIsInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHist()
	const prefix, suffix = 20000, 30000
	for i := 0; i < prefix; i++ {
		h.Record(time.Duration(rng.Int63n(int64(time.Millisecond))))
	}
	snap := h.Clone()
	tail := make([]time.Duration, 0, suffix)
	for i := 0; i < suffix; i++ {
		// The suffix lives an order of magnitude above the prefix, so a
		// leaking prefix would visibly drag the interval quantiles down.
		d := 10*time.Millisecond + time.Duration(rng.Int63n(int64(50*time.Millisecond)))
		tail = append(tail, d)
		h.Record(d)
	}
	interval := h.Clone()
	interval.Sub(snap)
	if interval.Count() != suffix {
		t.Fatalf("interval count %d, want %d", interval.Count(), suffix)
	}
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	for _, q := range []float64{0.5, 0.99, 0.999} {
		histErrBound(t, q, interval.Quantile(q), oracleQuantile(tail, q))
	}
}

// TestHistRecordAllocFree is the PR-3-style allocation gate: the record
// path must be able to sit on a transaction commit path, so it may not
// allocate.
func TestHistRecordAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds shadow allocations")
	}
	h := NewHist()
	d := time.Duration(1)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(d)
		d = (d*7 + 13) % (10 * time.Second)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v/op, want 0", allocs)
	}
}

// TestHistConcurrentRecordMerge drives recorders against a monitor doing
// merged snapshots; under -race this also proves the snapshot path is
// data-race free against the lock-free record path.
func TestHistConcurrentRecordMerge(t *testing.T) {
	const workers, perWorker = 4, 20000
	hists := make([]*Hist, workers)
	for i := range hists {
		hists[i] = NewHist()
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				hists[w].Record(time.Duration(i%1000) * time.Microsecond)
			}
		}(w)
	}
	var monitorErr error
	var mwg sync.WaitGroup
	mwg.Add(1)
	go func() {
		defer mwg.Done()
		var prev uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := NewHist()
			for _, h := range hists {
				m.Merge(h)
			}
			if m.Count() < prev {
				monitorErr = errCountWentBackwards
				return
			}
			prev = m.Count()
			_ = m.P99()
		}
	}()
	wg.Wait()
	close(stop)
	mwg.Wait()
	if monitorErr != nil {
		t.Fatal(monitorErr)
	}
	m := NewHist()
	for _, h := range hists {
		m.Merge(h)
	}
	if m.Count() != workers*perWorker {
		t.Fatalf("final merged count %d, want %d", m.Count(), workers*perWorker)
	}
}

var errCountWentBackwards = &countErr{}

type countErr struct{}

func (*countErr) Error() string { return "merged count went backwards across snapshots" }

func TestHistEmptyAndEdges(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram reports non-zero stats")
	}
	h.Record(-time.Second) // clamped, not panicking
	h.Record(0)
	h.Record(time.Duration(1<<62 + 12345))
	if h.Count() != 3 {
		t.Fatalf("count %d, want 3", h.Count())
	}
	if got := h.Quantile(1); got < time.Duration(1<<62) {
		t.Fatalf("max-bucket quantile %v below recorded extreme", got)
	}
	if h.Quantile(0.001) != 0 {
		t.Fatalf("low quantile %v, want the clamped zeros", h.Quantile(0.001))
	}
}

// TestHistBucketRoundTrip pins the index/edge functions against each other
// exhaustively across the first octaves and by sampling above.
func TestHistBucketRoundTrip(t *testing.T) {
	check := func(v int64) {
		i := histIndex(v)
		if i < 0 || i >= histLen {
			t.Fatalf("value %d: index %d out of range", v, i)
		}
		up := histUpper(i)
		if up < v {
			t.Fatalf("value %d: bucket upper edge %d below the value", v, up)
		}
		if i+1 < histLen && histUpper(i+1) <= up {
			t.Fatalf("bucket edges not increasing at %d", i)
		}
		// Error bound: within one bucket width.
		if v >= 2*histSubCnt && float64(up-v) > float64(v)/histSubCnt {
			t.Fatalf("value %d: edge %d further than one bucket width", v, up)
		}
	}
	for v := int64(0); v < 1<<12; v++ {
		check(v)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		check(rng.Int63())
	}
	check(1<<63 - 1)
}
