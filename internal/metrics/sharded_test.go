package metrics

import (
	"sync"
	"testing"
	"unsafe"
)

func TestShardedCounterRounding(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {6, 8}, {8, 8}, {9, 16},
	} {
		if got := NewShardedCounter(tc.n).Shards(); got != tc.want {
			t.Errorf("NewShardedCounter(%d).Shards() = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestShardedCounterSumAndPerShard(t *testing.T) {
	c := NewShardedCounter(4)
	c.Add(0, 5)
	c.Add(1, 7)
	c.Add(3, 1)
	c.Add(4, 2) // masks to shard 0
	if got := c.Sum(); got != 15 {
		t.Fatalf("Sum = %d, want 15", got)
	}
	per := c.PerShard()
	want := []uint64{7, 7, 0, 1}
	for i := range want {
		if per[i] != want[i] {
			t.Fatalf("PerShard = %v, want %v", per, want)
		}
	}
	if got := c.Load(1); got != 7 {
		t.Fatalf("Load(1) = %d, want 7", got)
	}
	c.Reset()
	if got := c.Sum(); got != 0 {
		t.Fatalf("Sum after Reset = %d, want 0", got)
	}
}

func TestShardedCounterConcurrent(t *testing.T) {
	const workers, per = 8, 10000
	c := NewShardedCounter(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Sum(); got != workers*per {
		t.Fatalf("Sum = %d, want %d", got, workers*per)
	}
	for i := 0; i < workers; i++ {
		if got := c.Load(i); got != per {
			t.Fatalf("shard %d = %d, want %d", i, got, per)
		}
	}
}

// TestShardPadding pins the anti-false-sharing layout: each shard occupies
// exactly one cache line.
func TestShardPadding(t *testing.T) {
	if got := unsafe.Sizeof(paddedUint64{}); got != cacheLine {
		t.Fatalf("sizeof(paddedUint64) = %d, want %d", got, cacheLine)
	}
}
