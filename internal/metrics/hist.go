package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is an HDR-style log-bucketed latency histogram: fixed memory, a
// zero-allocation lock-free record path, and quantiles with a bounded
// relative error. It is the latency companion to ShardedCounter — workers
// record into private histograms on the request path (including inside
// transaction commit paths, where the PR-3 allocation gates forbid any
// per-op allocation) and a monitor merges them without stopping the workers.
//
// Bucketing: values below 2^(histSubBits+1) ns are recorded exactly; above
// that, each power-of-two octave is split into 2^histSubBits linear
// sub-buckets, so the relative quantile error is bounded by
// 2^-histSubBits ≈ 3.1%. The full int64 nanosecond range (over 290 years)
// fits in histLen buckets — no clamping, no overflow bucket.
//
// Concurrency: Record uses one atomic add per call (plus a max CAS only
// when a new maximum is observed); readers (Merge, Quantile via a merged
// copy) load atomically, so a monitor may snapshot a histogram that a
// worker is concurrently writing. Like the pool's completion counters, such
// a snapshot is not a consistent cut — exactly the sampling the monitoring
// thread performs everywhere else. The fields are typed atomics so every
// access — including the monitor-private Merge/Sub/Quantile paths — goes
// through the same coherence protocol; rubic/atomicmix enforces that no
// plain load of these words creeps back in.
type Hist struct {
	counts [histLen]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds; mean support, saturating in practice never
	max    atomic.Uint64
}

const (
	// histSubBits sets the resolution: 2^histSubBits linear sub-buckets per
	// octave, bounding relative error by 2^-histSubBits.
	histSubBits = 5
	histSubCnt  = 1 << histSubBits // 32

	// The first 2*histSubCnt values (0..63 ns) are exact; each octave above
	// adds histSubCnt buckets. 63-bit values need (63-histSubBits) octaves.
	histLen = 2*histSubCnt + (62-histSubBits)*histSubCnt
)

// NewHist returns an empty histogram.
func NewHist() *Hist { return new(Hist) }

// histIndex maps a non-negative nanosecond value to its bucket.
func histIndex(v int64) int {
	u := uint64(v)
	n := bits.Len64(u) // position of the highest set bit
	if n <= histSubBits+1 {
		return int(u) // exact region: v < 2^(histSubBits+1)
	}
	shift := n - (histSubBits + 1)
	// u>>shift is in [histSubCnt, 2*histSubCnt): the sub-bucket plus offset.
	return shift<<histSubBits + int(u>>uint(shift))
}

// histUpper returns the inclusive upper edge (ns) of bucket i — quantiles
// report this conservative edge, so a reported p99 is never below the true
// bucket's values.
func histUpper(i int) int64 {
	if i < 2*histSubCnt {
		return int64(i)
	}
	shift := uint(i>>histSubBits) - 1
	sub := uint64(i&(histSubCnt-1)) | histSubCnt
	return int64(sub<<shift + (1 << shift) - 1)
}

// Record adds one latency observation. Negative durations are clamped to
// zero (a clock step mid-request). The path is allocation-free and
// lock-free: one atomic add, plus a CAS loop only while the observation is
// a new maximum.
//
//rubic:noalloc
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(uint64(v))
	for {
		m := h.max.Load()
		if uint64(v) <= m || h.max.CompareAndSwap(m, uint64(v)) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total.Load() }

// Max returns the largest recorded observation (exact, not bucket-rounded).
// After Sub it still reflects the cumulative stream's maximum.
func (h *Hist) Max() time.Duration {
	return time.Duration(h.max.Load())
}

// Mean returns the arithmetic mean of the recorded observations, or 0 when
// empty.
func (h *Hist) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Merge adds o's counts into h. h is typically a monitor-private
// accumulator; o may be concurrently written (its counts are loaded
// atomically, so the merge sees some recent, possibly inconsistent cut —
// the usual monitoring semantics).
func (h *Hist) Merge(o *Hist) {
	if o == nil {
		return
	}
	for i := range &o.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(o.total.Load())
	h.sum.Add(o.sum.Load())
	if m := o.max.Load(); m > h.max.Load() {
		h.max.Store(m)
	}
}

// Sub subtracts a previous snapshot of the same stream from h, leaving the
// interval histogram — per-epoch quantiles come from cumulative merges
// differenced this way. Buckets never go negative for a genuine prefix
// snapshot; a racy off-by-a-few is clamped. Max is not restored to the
// interval's own maximum (the information is gone); use Quantile(1) for a
// bucket-resolution interval max. h must be monitor-private.
func (h *Hist) Sub(o *Hist) {
	if o == nil {
		return
	}
	for i := range &h.counts {
		c := o.counts[i].Load()
		if have := h.counts[i].Load(); c > have {
			c = have
		}
		h.counts[i].Add(-c)
	}
	subSat(&h.total, o.total.Load())
	subSat(&h.sum, o.sum.Load())
}

// subSat subtracts v from w, clamping at zero. w is monitor-private, so the
// load/store pair needs no CAS.
func subSat(w *atomic.Uint64, v uint64) {
	if have := w.Load(); v > have {
		w.Store(0)
	} else {
		w.Store(have - v)
	}
}

// Clone returns a monitor-private copy of h (atomic per-bucket loads).
func (h *Hist) Clone() *Hist {
	c := NewHist()
	c.Merge(h)
	return c
}

// Quantile returns the q-quantile (0 < q <= 1) as the upper edge of the
// bucket holding the ceil(q*count)-th observation — within one bucket width
// (≤ 2^-histSubBits relative error) above the true order statistic. An
// empty histogram returns 0. h must not be concurrently written (use a
// Clone or a merged accumulator); the pre-epoch reporters all operate on
// private merges.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.total.Load()
	if n == 0 || math.IsNaN(q) || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range &h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(histUpper(i))
		}
	}
	return h.Max()
}

// P50, P99 and P999 are the quantiles the serve layer reports every epoch.
func (h *Hist) P50() time.Duration  { return h.Quantile(0.50) }
func (h *Hist) P99() time.Duration  { return h.Quantile(0.99) }
func (h *Hist) P999() time.Duration { return h.Quantile(0.999) }
