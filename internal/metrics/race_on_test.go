//go:build race

package metrics

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
