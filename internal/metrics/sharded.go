package metrics

import "sync/atomic"

// cacheLine is the assumed coherence granule. 64 bytes covers x86-64 and
// most arm64 server parts; on 128-byte machines adjacent shards still only
// pair up rather than all colliding.
const cacheLine = 64

// paddedUint64 is an atomic counter padded to a full cache line so adjacent
// shards never share one.
type paddedUint64 struct {
	n atomic.Uint64
	_ [cacheLine - 8]byte
}

// ShardedCounter is a monotonic event counter spread across cache-line
// padded shards so concurrent writers on different shards never contend on
// one line. It is the counter design the paper's Algorithm 1 prescribes for
// per-worker completion counts (writers never contend, the monitor only
// reads) and the STM runtime reuses for its commit/abort statistics.
//
// Writers pick a shard (worker id, or any per-goroutine-ish token) and Add
// to it; readers Sum or PerShard without synchronizing with writers. Sums
// are not consistent snapshots — exactly the sampling a monitoring thread
// performs.
type ShardedCounter struct {
	shards []paddedUint64
	mask   int
}

// NewShardedCounter returns a counter with at least n shards, rounded up to
// a power of two (minimum 1) so shard selection is a mask, not a division.
func NewShardedCounter(n int) *ShardedCounter {
	size := 1
	for size < n {
		size <<= 1
	}
	return &ShardedCounter{shards: make([]paddedUint64, size), mask: size - 1}
}

// Shards returns the number of shards (a power of two).
func (c *ShardedCounter) Shards() int { return len(c.shards) }

// Add adds delta to one shard. Any shard value works; it is reduced with a
// mask, so callers may pass a round-robin token without bounds-checking.
func (c *ShardedCounter) Add(shard int, delta uint64) {
	c.shards[shard&c.mask].n.Add(delta)
}

// Load returns one shard's count (shard reduced with the mask, as in Add).
func (c *ShardedCounter) Load(shard int) uint64 {
	return c.shards[shard&c.mask].n.Load()
}

// Sum returns the total across all shards. Shards advance concurrently, so
// the sum is a sample, not a snapshot.
func (c *ShardedCounter) Sum() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}

// PerShard returns each shard's count.
func (c *ShardedCounter) PerShard() []uint64 {
	out := make([]uint64, len(c.shards))
	for i := range c.shards {
		out[i] = c.shards[i].n.Load()
	}
	return out
}

// Reset zeroes every shard. Concurrent Adds may survive into the next
// epoch; callers that need exact epochs must quiesce writers first.
func (c *ShardedCounter) Reset() {
	for i := range c.shards {
		c.shards[i].n.Store(0)
	}
}
