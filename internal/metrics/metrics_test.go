package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSpeedup(t *testing.T) {
	if got := Speedup(200, 100); !almost(got, 2) {
		t.Errorf("Speedup(200,100) = %v", got)
	}
	if got := Speedup(5, 0); got != 0 {
		t.Errorf("Speedup with zero sequential = %v, want 0", got)
	}
}

func TestEfficiency(t *testing.T) {
	if got := Efficiency(8, 16); !almost(got, 0.5) {
		t.Errorf("Efficiency(8,16) = %v", got)
	}
	if got := Efficiency(8, 0); got != 0 {
		t.Errorf("Efficiency at level 0 = %v, want 0", got)
	}
}

func TestNSBP(t *testing.T) {
	if got := NSBP(nil); !almost(got, 1) {
		t.Errorf("empty NSBP = %v, want 1", got)
	}
	if got := NSBP([]float64{2, 3, 4}); !almost(got, 24) {
		t.Errorf("NSBP = %v, want 24", got)
	}
	// The paper's example: identical processes maximize the product by
	// equal sharing. Speedups (3,3) beat (2,4) even though the sums match.
	if NSBP([]float64{3, 3}) <= NSBP([]float64{2, 4}) {
		t.Error("equal sharing should maximize NSBP for identical processes")
	}
}

func TestSystemEfficiency(t *testing.T) {
	if got := SystemEfficiency([]float64{0.5, 0.5}); !almost(got, 0.25) {
		t.Errorf("SystemEfficiency = %v, want 0.25", got)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 100})
	if err != nil || !almost(got, 10) {
		t.Errorf("GeoMean(1,100) = %v, %v; want 10", got, err)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty GeoMean accepted")
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean with zero accepted")
	}
	if _, err := GeoMean([]float64{-1}); err == nil {
		t.Error("GeoMean with negative accepted")
	}
}

func TestMeanStdDev(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("empty Mean = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2) {
		t.Errorf("Mean = %v", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Errorf("empty StdDev = %v", got)
	}
	if got := StdDev([]float64{5, 5, 5}); !almost(got, 0) {
		t.Errorf("constant StdDev = %v", got)
	}
	if got := StdDev([]float64{2, 4}); !almost(got, 1) {
		t.Errorf("StdDev(2,4) = %v, want 1", got)
	}
}

func TestJain(t *testing.T) {
	if got := Jain([]float64{1, 1, 1, 1}); !almost(got, 1) {
		t.Errorf("equal Jain = %v, want 1", got)
	}
	if got := Jain([]float64{1, 0, 0, 0}); !almost(got, 0.25) {
		t.Errorf("concentrated Jain = %v, want 1/4", got)
	}
	if got := Jain(nil); got != 0 {
		t.Errorf("empty Jain = %v", got)
	}
	if got := Jain([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero Jain = %v", got)
	}
}

func TestJainQuickBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		j := Jain(clean)
		return j >= 1/float64(len(clean))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max should be 0")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{1, 2, 4})
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Fatalf("Normalize = %v, want %v", got, want)
		}
	}
	if got := Normalize([]float64{0, 0}); got[0] != 0 || got[1] != 0 {
		t.Errorf("all-zero Normalize = %v", got)
	}
	if got := Normalize(nil); len(got) != 0 {
		t.Errorf("empty Normalize = %v", got)
	}
}

// TestQuickGeoMeanLeqMax property: the geometric mean never exceeds the max
// nor undercuts the min.
func TestQuickGeoMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if x > 1e-100 && x < 1e100 && !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		g, err := GeoMean(clean)
		if err != nil {
			return false
		}
		return g <= Max(clean)*(1+1e-9) && g >= Min(clean)*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
