package pool

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rubic/internal/fault"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, func(int, *rand.Rand) bool { return true }); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := New(4, 1, nil); err == nil {
		t.Fatal("nil task accepted")
	}
}

func TestInitialLevelIsOne(t *testing.T) {
	p, err := New(8, 1, func(int, *rand.Rand) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if p.Level() != 1 {
		t.Fatalf("initial level = %d, want 1", p.Level())
	}
	if p.Size() != 8 {
		t.Fatalf("size = %d, want 8", p.Size())
	}
}

func TestSetLevelClamps(t *testing.T) {
	p, _ := New(4, 1, func(int, *rand.Rand) bool { return true })
	p.SetLevel(100)
	if p.Level() != 4 {
		t.Fatalf("level = %d, want 4", p.Level())
	}
	p.SetLevel(-3)
	if p.Level() != 1 {
		t.Fatalf("level = %d, want 1", p.Level())
	}
}

// TestGatingRespectsLevel verifies that only workers with tid < level run
// tasks: with level 1, only worker 0's counter advances.
func TestGatingRespectsLevel(t *testing.T) {
	var active [4]atomic.Int64
	p, _ := New(4, 1, func(id int, _ *rand.Rand) bool {
		active[id].Add(1)
		time.Sleep(100 * time.Microsecond)
		return true
	})
	p.Start()
	defer p.Stop()

	time.Sleep(50 * time.Millisecond)
	for id := 1; id < 4; id++ {
		if n := active[id].Load(); n != 0 {
			t.Fatalf("worker %d ran %d tasks at level 1", id, n)
		}
	}
	if active[0].Load() == 0 {
		t.Fatal("worker 0 never ran")
	}

	// Raise to 3: workers 0..2 run, worker 3 stays parked.
	p.SetLevel(3)
	time.Sleep(50 * time.Millisecond)
	for id := 0; id < 3; id++ {
		if active[id].Load() == 0 {
			t.Fatalf("worker %d never ran at level 3", id)
		}
	}
	if n := active[3].Load(); n != 0 {
		t.Fatalf("worker 3 ran %d tasks at level 3", n)
	}

	// Lower back to 1: workers 1..2 park; their counters stop advancing.
	p.SetLevel(1)
	time.Sleep(20 * time.Millisecond) // let in-flight tasks finish
	snap1, snap2 := active[1].Load(), active[2].Load()
	time.Sleep(50 * time.Millisecond)
	if active[1].Load() != snap1 || active[2].Load() != snap2 {
		t.Fatal("parked workers kept running after level decrease")
	}
}

func TestCompletedCounts(t *testing.T) {
	p, _ := New(2, 1, func(int, *rand.Rand) bool { return true })
	p.SetLevel(2)
	p.Start()
	time.Sleep(30 * time.Millisecond)
	p.Stop()
	total := p.Completed()
	if total == 0 {
		t.Fatal("no tasks completed")
	}
	per := p.PerWorkerCompleted()
	var sum uint64
	for _, n := range per {
		sum += n
	}
	if sum != total {
		t.Fatalf("per-worker sum %d != total %d", sum, total)
	}
}

func TestFailedTasksNotCounted(t *testing.T) {
	p, _ := New(1, 1, func(int, *rand.Rand) bool { return false })
	p.Start()
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	if n := p.Completed(); n != 0 {
		t.Fatalf("failed tasks counted: %d", n)
	}
}

func TestStopUnparksBlockedWorkers(t *testing.T) {
	p, _ := New(8, 1, func(int, *rand.Rand) bool {
		runtime.Gosched()
		return true
	})
	p.Start()
	// All workers 1..7 are parked; Stop must not hang.
	done := make(chan struct{})
	go func() {
		p.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung with parked workers")
	}
}

func TestStopIdempotent(t *testing.T) {
	p, _ := New(2, 1, func(int, *rand.Rand) bool { return true })
	p.Start()
	p.Stop()
	p.Stop() // must not panic or hang
}

func TestLevelChurn(t *testing.T) {
	p, _ := New(16, 1, func(int, *rand.Rand) bool {
		return true
	})
	p.Start()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 500; i++ {
			p.SetLevel(1 + rng.Intn(16))
		}
	}()
	wg.Wait()
	p.SetLevel(4)
	deadline := time.Now().Add(5 * time.Second)
	for p.Completed() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	if p.Completed() == 0 {
		t.Fatal("no work completed under level churn")
	}
}

// TestPanicRecovered: a poisoned task body must neither kill the process nor
// stop the worker; the panic becomes a per-worker fault count and the worker
// keeps executing subsequent tasks.
func TestPanicRecovered(t *testing.T) {
	var calls atomic.Int64
	p, _ := New(1, 1, func(int, *rand.Rand) bool {
		if calls.Add(1) <= 3 {
			panic("poisoned transaction body")
		}
		return true
	})
	p.Start()
	deadline := time.Now().Add(5 * time.Second)
	for p.Completed() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	if p.Completed() < 10 {
		t.Fatal("worker never recovered from the panics")
	}
	if got := p.Faults(); got != 3 {
		t.Fatalf("fault count %d, want 3", got)
	}
	if per := p.PerWorkerFaults(); per[0] != 3 {
		t.Fatalf("per-worker faults %v, want worker 0 = 3", per)
	}
	if p.Active() != 0 {
		t.Fatalf("active slots %d after Stop, want 0", p.Active())
	}
}

// TestChaosInjectedPanics drives the pool.panic injection point from a
// seeded plan: the scheduled occurrences panic, everything else completes,
// and the fault schedule is reproducible.
func TestChaosInjectedPanics(t *testing.T) {
	plan := &fault.Plan{Seed: 3, Events: []fault.Event{
		{Point: fault.WorkerPanic, From: 5, Count: 4},
	}}
	p, _ := New(2, 1, func(int, *rand.Rand) bool { return true })
	p.InstallFaults(fault.New(plan))
	p.SetLevel(2)
	p.Start()
	deadline := time.Now().Add(5 * time.Second)
	for p.Faults() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	if got := p.Faults(); got != 4 {
		t.Fatalf("injected faults %d, want exactly the scheduled 4", got)
	}
	if p.Completed() == 0 {
		t.Fatal("no tasks completed around the injected panics")
	}
}

// TestChaosStallReleasesGateSlot is the regression test for the leaked
// active slot: a worker that stalls in the task slot (pool.stall) and then
// exits at Stop — i.e. leaves between acquiring the gate and running a task
// — must release its slot; Stop must not hang and Active must drain to 0.
func TestChaosStallReleasesGateSlot(t *testing.T) {
	plan := &fault.Plan{Seed: 4, Events: []fault.Event{
		{Point: fault.WorkerStall, From: 0}, // the very first task slot stalls
	}}
	p, _ := New(2, 1, func(int, *rand.Rand) bool { return true })
	p.InstallFaults(fault.New(plan))
	p.SetLevel(2)
	p.Start()
	// Wait until the stalled worker holds a slot and the other makes progress.
	deadline := time.Now().Add(5 * time.Second)
	for p.Completed() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.Completed() == 0 {
		t.Fatal("surviving worker made no progress beside the stalled one")
	}
	done := make(chan struct{})
	go func() {
		p.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung on a stalled worker")
	}
	if p.Active() != 0 {
		t.Fatalf("leaked %d active slots after Stop", p.Active())
	}
}

// TestNoSlotLeakOnImmediateStop churns the exit-between-gate-acquire-and-
// first-task window: workers are admitted and immediately stopped, and the
// accounting must always drain to zero.
func TestNoSlotLeakOnImmediateStop(t *testing.T) {
	for i := 0; i < 50; i++ {
		p, _ := New(4, int64(i), func(int, *rand.Rand) bool {
			runtime.Gosched()
			return true
		})
		p.Start()
		p.SetLevel(4) // admit everyone (tokens race with the stop below)
		if i%2 == 0 {
			runtime.Gosched()
		}
		p.Stop()
		if n := p.Active(); n != 0 {
			t.Fatalf("iteration %d leaked %d active slots", i, n)
		}
	}
}

// TestActiveTracksLevel: Active converges to the gate level while running.
func TestActiveTracksLevel(t *testing.T) {
	p, _ := New(8, 1, func(int, *rand.Rand) bool {
		runtime.Gosched()
		return true
	})
	p.Start()
	defer p.Stop()
	p.SetLevel(5)
	deadline := time.Now().Add(5 * time.Second)
	for p.Active() != 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := p.Active(); got != 5 {
		t.Fatalf("active = %d at level 5", got)
	}
	p.SetLevel(2)
	deadline = time.Now().Add(5 * time.Second)
	for p.Active() != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := p.Active(); got != 2 {
		t.Fatalf("active = %d after lowering to 2", got)
	}
}

func TestDeterministicWorkerSeeds(t *testing.T) {
	collect := func() []int64 {
		var mu sync.Mutex
		var out []int64
		p, _ := New(1, 42, func(_ int, rng *rand.Rand) bool {
			mu.Lock()
			if len(out) < 5 {
				out = append(out, rng.Int63())
			}
			n := len(out)
			mu.Unlock()
			if n >= 5 {
				time.Sleep(time.Millisecond)
			}
			return true
		})
		p.Start()
		for {
			mu.Lock()
			n := len(out)
			mu.Unlock()
			if n >= 5 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		p.Stop()
		mu.Lock()
		defer mu.Unlock()
		return append([]int64(nil), out[:5]...)
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different streams: %v vs %v", a, b)
		}
	}
}
