package pool

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// BenchmarkPoolThroughput measures end-to-end pool throughput — ns per
// completed task, including gate checks, level admission, the per-worker
// completion counter and the monitor-side Completed() sampling — swept over
// parallelism levels. The task itself is a short deterministic spin on the
// worker-private RNG, so the benchmark isolates the pool machinery and the
// cache traffic between the level/active words and the counter shards
// rather than workload cost. `make benchscale` runs the sweep at several
// GOMAXPROCS values; keep names stable.
func BenchmarkPoolThroughput(b *testing.B) {
	for _, lvl := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("level=%d", lvl), func(b *testing.B) {
			task := func(_ int, rng *rand.Rand) bool {
				// A handful of private RNG steps: enough work that the loop
				// is not pure counter traffic, little enough that pool
				// overhead dominates.
				s := 0
				for i := 0; i < 8; i++ {
					s += int(rng.Int63() & 1)
				}
				return s >= 0
			}
			p, err := New(8, 1, task)
			if err != nil {
				b.Fatal(err)
			}
			p.SetLevel(lvl)
			p.Start()
			defer p.Stop()
			b.ResetTimer()
			// The monitor-side sampling loop the paper's controller performs:
			// wait until the workers have completed b.N tasks.
			for p.Completed() < uint64(b.N) {
				runtime.Gosched()
			}
			b.StopTimer()
		})
	}
}
