// Package pool implements the malleable worker thread-pool of the paper's
// Algorithm 1: a fixed set of workers, each with a unique id and a private
// semaphore, gated by a process-wide parallelism level L. Workers with
// tid >= L park on their semaphore before acquiring the next task; raising
// the level signals exactly the semaphores of the newly admitted workers.
// Each worker maintains a cache-line padded completion counter (one shard of
// a metrics.ShardedCounter, the same primitive the STM runtime shards its
// statistics over) that a monitoring thread reads without synchronizing with
// the worker (paper section 3.1: writers never contend, the monitor only
// reads).
package pool

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"rubic/internal/metrics"
)

// Task is one unit of work (typically: execute one transaction). It receives
// the worker's id and a worker-private random source, and reports whether
// the unit completed (completed units increment the worker's counter).
type Task func(workerID int, rng *rand.Rand) bool

// Pool is a malleable pool of workers executing a Task in a closed loop.
// The parallelism level can be changed at any time with SetLevel.
type Pool struct {
	size int
	task Task
	seed int64

	level atomic.Int32
	stop  chan struct{}
	sems  []chan struct{}
	count *metrics.ShardedCounter // shard = worker id

	startOnce sync.Once
	stopOnce  sync.Once
	wg        sync.WaitGroup
}

// New creates a pool of size workers running task, initially at level 1
// (the paper starts every process at minimum parallelism). seed derives the
// per-worker random sources, keeping runs reproducible.
func New(size int, seed int64, task Task) (*Pool, error) {
	if size < 1 {
		return nil, fmt.Errorf("pool: size %d < 1", size)
	}
	if task == nil {
		return nil, fmt.Errorf("pool: nil task")
	}
	p := &Pool{
		size:  size,
		task:  task,
		seed:  seed,
		stop:  make(chan struct{}),
		sems:  make([]chan struct{}, size),
		count: metrics.NewShardedCounter(size),
	}
	for i := range p.sems {
		p.sems[i] = make(chan struct{}, 1)
	}
	p.level.Store(1)
	return p, nil
}

// Size returns the pool's worker count (the maximum parallelism level).
func (p *Pool) Size() int { return p.size }

// Level returns the current parallelism level.
func (p *Pool) Level() int { return int(p.level.Load()) }

// SetLevel changes the number of admitted workers, clamped to [1, Size].
// Newly admitted workers are woken; workers above the level park themselves
// before their next task acquisition, exactly as in Algorithm 1.
func (p *Pool) SetLevel(n int) {
	if n < 1 {
		n = 1
	}
	if n > p.size {
		n = p.size
	}
	old := int(p.level.Swap(int32(n)))
	for tid := old; tid < n; tid++ {
		select {
		case p.sems[tid] <- struct{}{}:
		default: // already signalled
		}
	}
}

// Start launches the workers. It is idempotent.
func (p *Pool) Start() {
	p.startOnce.Do(func() {
		for tid := 0; tid < p.size; tid++ {
			p.wg.Add(1)
			go p.worker(tid)
		}
	})
}

// Stop terminates all workers (parked or running after their current task)
// and waits for them to exit. It is idempotent.
func (p *Pool) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// worker is Algorithm 1's task-acquisition loop.
func (p *Pool) worker(tid int) {
	defer p.wg.Done()
	rng := rand.New(rand.NewSource(p.seed + int64(tid)*1_000_003))
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		if tid >= int(p.level.Load()) {
			// Park until admitted again. The normal acquisition path above
			// performs no blocking call, mirroring the paper's observation
			// that Wait only happens when a thread must block.
			select {
			case <-p.sems[tid]:
				continue // re-check the level before working
			case <-p.stop:
				return
			}
		}
		if p.task(tid, rng) {
			// Only this worker writes its shard; the monitor only reads.
			p.count.Add(tid, 1)
		}
	}
}

// Completed returns the total number of completed tasks across all workers.
// The sum is not a consistent snapshot (counters advance concurrently),
// which is exactly the sampling the paper's monitoring thread performs.
func (p *Pool) Completed() uint64 {
	return p.count.Sum()
}

// PerWorkerCompleted returns each worker's completion count.
func (p *Pool) PerWorkerCompleted() []uint64 {
	return p.count.PerShard()[:p.size]
}
