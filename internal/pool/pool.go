// Package pool implements the malleable worker thread-pool of the paper's
// Algorithm 1: a fixed set of workers, each with a unique id and a private
// semaphore, gated by a process-wide parallelism level L. Workers with
// tid >= L park on their semaphore before acquiring the next task; raising
// the level signals exactly the semaphores of the newly admitted workers.
// Each worker maintains a cache-line padded completion counter (one shard of
// a metrics.ShardedCounter, the same primitive the STM runtime shards its
// statistics over) that a monitoring thread reads without synchronizing with
// the worker (paper section 3.1: writers never contend, the monitor only
// reads).
package pool

import (
	"fmt"
	"math/rand"
	"sync"

	"rubic/internal/fault"
	"rubic/internal/metrics"
)

// Task is one unit of work (typically: execute one transaction). It receives
// the worker's id and a worker-private random source, and reports whether
// the unit completed (completed units increment the worker's counter).
type Task func(workerID int, rng *rand.Rand) bool

// Pool is a malleable pool of workers executing a Task in a closed loop.
// The parallelism level can be changed at any time with SetLevel.
type Pool struct {
	size int
	task Task
	seed int64

	// level and active are the pool's two globally shared hot words: every
	// worker polls level once per task and the controller swaps it on each
	// actuation, while active is written on every admission transition and
	// read by the monitor. Both are cache-line padded (metrics.PaddedInt32/
	// PaddedInt64) so a level actuation or admission bump does not
	// invalidate the line the other workers' task loops are reading — the
	// same false-sharing discipline the STM applies to its global clock.
	level  metrics.PaddedInt32
	stop   chan struct{}
	sems   []chan struct{}
	count  *metrics.ShardedCounter // shard = worker id
	faults *metrics.ShardedCounter // shard = worker id; recovered task panics
	active metrics.PaddedInt64     // workers currently holding a gate slot
	inj    *fault.Injector         // nil: no chaos (one pointer test per task)

	startOnce sync.Once
	stopOnce  sync.Once
	wg        sync.WaitGroup
}

// New creates a pool of size workers running task, initially at level 1
// (the paper starts every process at minimum parallelism). seed derives the
// per-worker random sources, keeping runs reproducible.
func New(size int, seed int64, task Task) (*Pool, error) {
	if size < 1 {
		return nil, fmt.Errorf("pool: size %d < 1", size)
	}
	if task == nil {
		return nil, fmt.Errorf("pool: nil task")
	}
	p := &Pool{
		size:   size,
		task:   task,
		seed:   seed,
		stop:   make(chan struct{}),
		sems:   make([]chan struct{}, size),
		count:  metrics.NewShardedCounter(size),
		faults: metrics.NewShardedCounter(size),
	}
	for i := range p.sems {
		p.sems[i] = make(chan struct{}, 1)
	}
	p.level.Store(1)
	return p, nil
}

// Size returns the pool's worker count (the maximum parallelism level).
func (p *Pool) Size() int { return p.size }

// Level returns the current parallelism level.
//
//rubic:noalloc
func (p *Pool) Level() int { return int(p.level.Load()) }

// SetLevel changes the number of admitted workers, clamped to [1, Size].
// Newly admitted workers are woken; workers above the level park themselves
// before their next task acquisition, exactly as in Algorithm 1.
func (p *Pool) SetLevel(n int) {
	if n < 1 {
		n = 1
	}
	if n > p.size {
		n = p.size
	}
	old := int(p.level.Swap(int32(n)))
	for tid := old; tid < n; tid++ {
		select {
		case p.sems[tid] <- struct{}{}:
		default: // already signalled
		}
	}
}

// Start launches the workers. It is idempotent.
func (p *Pool) Start() {
	p.startOnce.Do(func() {
		for tid := 0; tid < p.size; tid++ {
			p.wg.Add(1)
			go p.worker(tid)
		}
	})
}

// Stop terminates all workers (parked or running after their current task)
// and waits for them to exit. It is idempotent.
func (p *Pool) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// InstallFaults installs a fault injector driving the pool.panic and
// pool.stall injection points. Call before Start; a nil injector (the
// default) keeps the worker loop's fault hooks inert.
func (p *Pool) InstallFaults(in *fault.Injector) { p.inj = in }

// worker is Algorithm 1's task-acquisition loop, hardened: the gate slot a
// worker holds (its contribution to Active) is released on every exit path —
// including exiting between acquiring the gate and running its first task —
// and task panics are recovered in runTask so one poisoned transaction body
// can neither kill the process nor wedge the gate.
func (p *Pool) worker(tid int) {
	defer p.wg.Done()
	admitted := false
	release := func() {
		if admitted {
			admitted = false
			p.active.Add(-1)
		}
	}
	defer release()
	rng := rand.New(rand.NewSource(p.seed + int64(tid)*1_000_003))
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		if tid >= int(p.level.Load()) {
			release()
			// Park until admitted again. The normal acquisition path above
			// performs no blocking call, mirroring the paper's observation
			// that Wait only happens when a thread must block.
			select {
			case <-p.sems[tid]:
				continue // re-check the level before working
			case <-p.stop:
				return
			}
		}
		if !admitted {
			admitted = true
			p.active.Add(1)
		}
		if p.inj != nil && p.inj.Fire(fault.WorkerStall) {
			// A stalled worker sits in the task slot without progressing; it
			// stays interruptible by Stop so the fault models a wedged
			// transaction body, not an unkillable thread.
			<-p.stop
			return
		}
		if p.runTask(tid, rng) {
			// Only this worker writes its shard; the monitor only reads.
			p.count.Add(tid, 1)
		}
	}
}

// runTask executes one task, converting a panic raised inside the workload
// closure into a per-worker fault count. The STM layer rolls back and
// releases its locks before re-panicking user panics (stm.Tx.execute), so
// recovering here leaves the runtime consistent.
func (p *Pool) runTask(tid int, rng *rand.Rand) (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			p.faults.Add(tid, 1)
			completed = false
		}
	}()
	if p.inj != nil && p.inj.Fire(fault.WorkerPanic) {
		panic(fmt.Sprintf("fault: injected panic in worker %d", tid))
	}
	return p.task(tid, rng)
}

// Completed returns the total number of completed tasks across all workers.
// The sum is not a consistent snapshot (counters advance concurrently),
// which is exactly the sampling the paper's monitoring thread performs.
func (p *Pool) Completed() uint64 {
	return p.count.Sum()
}

// PerWorkerCompleted returns each worker's completion count.
func (p *Pool) PerWorkerCompleted() []uint64 {
	return p.count.PerShard()[:p.size]
}

// Faults returns the total number of recovered task panics.
func (p *Pool) Faults() uint64 { return p.faults.Sum() }

// PerWorkerFaults returns each worker's recovered-panic count.
func (p *Pool) PerWorkerFaults() []uint64 {
	return p.faults.PerShard()[:p.size]
}

// Active returns the number of workers currently holding a gate slot (admitted
// and inside the task loop). After Stop it is always zero: every exit path
// releases the slot, including a worker exiting between acquiring the gate
// and its first task.
func (p *Pool) Active() int { return int(p.active.Load()) }
