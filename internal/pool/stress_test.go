package pool

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSetLevelStress hammers SetLevel from several goroutines while the
// workers run flat out, under whatever detector the test binary carries
// (the Makefile's race target runs it with -race). It pins the gate
// invariants the padded level/active words must preserve under full
// parallelism: the pool keeps completing tasks through continuous level
// churn, Level stays within [1, Size], and after Stop every gate slot has
// been released.
func TestSetLevelStress(t *testing.T) {
	const (
		size     = 8
		churners = 4
		duration = 150 * time.Millisecond
	)
	var running atomic.Int64
	p, err := New(size, 42, func(id int, rng *rand.Rand) bool {
		running.Add(1)
		s := 0
		for i := 0; i < 32; i++ {
			s += int(rng.Int63() & 3)
		}
		running.Add(-1)
		return s >= 0
	})
	if err != nil {
		t.Fatal(err)
	}
	p.SetLevel(size)
	p.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				p.SetLevel(1 + rng.Intn(size))
				if lvl := p.Level(); lvl < 1 || lvl > size {
					t.Errorf("level %d escaped [1, %d]", lvl, size)
					return
				}
				if a := p.Active(); a < 0 || a > size {
					t.Errorf("active %d escaped [0, %d]", a, size)
					return
				}
			}
		}(int64(c) + 1)
	}

	before := p.Completed()
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	after := p.Completed()
	p.Stop()

	if after == before {
		t.Fatal("no tasks completed while SetLevel was churning")
	}
	if a := p.Active(); a != 0 {
		t.Fatalf("Active = %d after Stop, want 0", a)
	}
	if r := running.Load(); r != 0 {
		t.Fatalf("%d task bodies still running after Stop", r)
	}
	if p.Faults() != 0 {
		t.Fatalf("unexpected recovered panics: %d", p.Faults())
	}
}
