package load

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"rubic/internal/pool"
	"rubic/internal/stm"
	"rubic/internal/stm/container"
	"rubic/internal/stm/container/blink"
)

// OrderedConfig parameterizes the ordered-index service workload.
type OrderedConfig struct {
	// Keys is the key-space size (default 10_000).
	Keys int
	// ReadPct is the percentage of point lookups (default 70). Half of them
	// take the lock-free fast path (blink.Map.LookupFast), half run under
	// AtomicRO — so both read protocols stay exercised under load.
	ReadPct int
	// ScanPct is the percentage of range scans (default 20); the remainder
	// are transactional increments.
	ScanPct int
	// ScanWidth is the inclusive width of each range scan (default 64).
	ScanWidth int
}

func (c *OrderedConfig) defaults() {
	if c.Keys == 0 {
		c.Keys = 10_000
	}
	if c.ReadPct == 0 {
		c.ReadPct = 70
	}
	if c.ScanPct == 0 {
		c.ScanPct = 20
	}
	if c.ScanWidth == 0 {
		c.ScanWidth = 64
	}
}

// Ordered is the ordered-index request workload: point lookups, range scans
// and transactional increments over the hybrid B-Link map — the new workload
// shape the ordered index enables (range queries have no HashMap analogue).
// Point reads alternate between the lock-free fast path and the STM path;
// scans use the weakly consistent fast scan, the shape an open-loop service
// would serve paginated listings from.
type Ordered struct {
	cfg OrderedConfig
	rt  *stm.Runtime
	m   *blink.Map[int64]

	// increments counts committed add operations — bumped after Atomic
	// returns, never inside the closure, so retries cannot double-count.
	increments atomic.Uint64
	misses     atomic.Uint64
}

// NewOrdered returns an unpopulated ordered workload on the given runtime.
func NewOrdered(rt *stm.Runtime, cfg OrderedConfig) *Ordered {
	cfg.defaults()
	return &Ordered{cfg: cfg, rt: rt}
}

// Keys reports the key-space size for the Zipf generator.
func (o *Ordered) Keys() int { return o.cfg.Keys }

// Name implements stamp.Workload.
func (o *Ordered) Name() string {
	return fmt.Sprintf("ordered(keys=%d,read=%d%%,scan=%d%%x%d)",
		o.cfg.Keys, o.cfg.ReadPct, o.cfg.ScanPct, o.cfg.ScanWidth)
}

// Setup implements stamp.Workload: every key starts at value 0.
func (o *Ordered) Setup(_ *rand.Rand) error {
	if o.cfg.Keys < 1 {
		return fmt.Errorf("load: ordered needs at least one key")
	}
	o.m = blink.NewMap[int64]()
	for i := 0; i < o.cfg.Keys; i++ {
		key := int64(i)
		if err := o.rt.Atomic(func(tx *stm.Tx) error {
			o.m.Put(tx, key, 0)
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// Task implements stamp.Workload: uniform keys on the closed-loop path.
func (o *Ordered) Task() pool.Task {
	return func(workerID int, rng *rand.Rand) bool {
		return o.ServeKey(workerID, uint64(rng.Int63n(int64(o.cfg.Keys))), rng)
	}
}

// ServeKey implements Keyed: one lookup, scan, or increment anchored at key.
func (o *Ordered) ServeKey(_ int, key uint64, rng *rand.Rand) bool {
	id := int64(key % uint64(o.cfg.Keys))
	p := rng.Intn(100)
	switch {
	case p < o.cfg.ReadPct:
		var ok bool
		if p&1 == 0 {
			_, ok = o.m.LookupFast(id)
		} else {
			if err := o.rt.AtomicRO(func(tx *stm.Tx) error {
				_, ok = o.m.Get(tx, id)
				return nil
			}); err != nil {
				return false
			}
		}
		if !ok {
			o.misses.Add(1)
		}
		return true
	case p < o.cfg.ReadPct+o.cfg.ScanPct:
		hi := id + int64(o.cfg.ScanWidth) - 1
		n := 0
		o.m.ScanFast(id, hi, func(k, v int64) bool {
			n++
			return true
		})
		// The key space is dense and keys are never deleted, so a scan
		// anchored inside it must see its full width (clipped at the end).
		want := int64(o.cfg.ScanWidth)
		if rest := int64(o.cfg.Keys) - id; rest < want {
			want = rest
		}
		if int64(n) < want {
			o.misses.Add(1)
		}
		return true
	default:
		err := o.rt.Atomic(func(tx *stm.Tx) error {
			v, _ := o.m.Get(tx, id)
			o.m.Put(tx, id, v+1)
			return nil
		})
		if err != nil {
			return false
		}
		o.increments.Add(1)
		return true
	}
}

// Verify implements stamp.Workload: populated keys never miss, scans always
// see their full width, the tree invariants hold, and the values sum to
// exactly the committed increment count.
func (o *Ordered) Verify() error {
	if m := o.misses.Load(); m != 0 {
		return fmt.Errorf("load: ordered saw %d misses/short scans on a dense key space", m)
	}
	var sum int64
	var n int
	err := o.rt.AtomicRO(func(tx *stm.Tx) error {
		if err := o.m.CheckInvariants(tx); err != nil {
			return err
		}
		total := int64(0) // closure-local: retry-safe accumulation
		count := 0
		o.m.Range(tx, func(k, v int64) bool {
			total += v
			count++
			return true
		})
		sum, n = total, count
		return nil
	})
	if err != nil {
		return err
	}
	if n != o.cfg.Keys {
		return fmt.Errorf("load: ordered holds %d keys, want %d", n, o.cfg.Keys)
	}
	if want := int64(o.increments.Load()); sum != want {
		return fmt.Errorf("load: ordered value sum %d != committed increments %d", sum, want)
	}
	return nil
}

// ShardedKV is the KV service workload on a range-sharded runtime: the same
// read/increment mix as KV, but every operation runs as a single-shard
// transaction on its key's shard, so commits on different shards share no
// clock word. It is the workload the sharded-vs-global parallel benchmarks
// compare and the keyed routing target for multi-runtime serving.
type ShardedKV struct {
	cfg KVConfig
	sr  *stm.ShardedRuntime
	m   *container.ShardedHashMap[int64]

	increments atomic.Uint64
	misses     atomic.Uint64
}

// NewShardedKV returns an unpopulated sharded KV workload over sr.
func NewShardedKV(sr *stm.ShardedRuntime, cfg KVConfig) *ShardedKV {
	cfg.defaults()
	return &ShardedKV{cfg: cfg, sr: sr}
}

// Keys reports the key-space size for the Zipf generator.
func (k *ShardedKV) Keys() int { return k.cfg.Keys }

// Name implements stamp.Workload.
func (k *ShardedKV) Name() string {
	return fmt.Sprintf("shardedkv(shards=%d,keys=%d,read=%d%%)",
		k.sr.Shards(), k.cfg.Keys, k.cfg.ReadPct)
}

// Setup implements stamp.Workload: every key starts at value 0. Bucket
// counts are per shard, so the global budget is divided.
func (k *ShardedKV) Setup(_ *rand.Rand) error {
	if k.cfg.Keys < 1 {
		return fmt.Errorf("load: shardedkv needs at least one key")
	}
	perShard := k.cfg.Buckets / k.sr.Shards()
	if perShard < 1 {
		perShard = 1
	}
	k.m = container.NewShardedHashMap[int64](k.sr, perShard)
	for i := 0; i < k.cfg.Keys; i++ {
		if _, err := k.m.Put(int64(i), 0); err != nil {
			return err
		}
	}
	return nil
}

// Task implements stamp.Workload: uniform keys on the closed-loop path.
func (k *ShardedKV) Task() pool.Task {
	return func(workerID int, rng *rand.Rand) bool {
		return k.ServeKey(workerID, uint64(rng.Int63n(int64(k.cfg.Keys))), rng)
	}
}

// ServeKey implements Keyed: one read or increment, routed to key's shard.
func (k *ShardedKV) ServeKey(_ int, key uint64, rng *rand.Rand) bool {
	id := int64(key % uint64(k.cfg.Keys))
	if rng.Intn(100) < k.cfg.ReadPct {
		_, ok, err := k.m.Get(id)
		if err != nil {
			return false
		}
		if !ok {
			k.misses.Add(1)
		}
		return true
	}
	if err := k.m.Update(id, func(cur int64, _ bool) int64 { return cur + 1 }); err != nil {
		return false
	}
	k.increments.Add(1)
	return true
}

// Verify implements stamp.Workload: populated keys never miss and the values
// sum — under one cross-shard snapshot — to the committed increment count.
func (k *ShardedKV) Verify() error {
	if m := k.misses.Load(); m != 0 {
		return fmt.Errorf("load: shardedkv saw %d misses on populated keys", m)
	}
	n, err := k.m.Len()
	if err != nil {
		return err
	}
	if n != k.cfg.Keys {
		return fmt.Errorf("load: shardedkv holds %d keys, want %d", n, k.cfg.Keys)
	}
	var sum int64
	if err := k.sr.AtomicAcross(func(cx *stm.CrossTx) error {
		total := int64(0) // closure-local: retry-safe accumulation
		for i := 0; i < k.sr.Shards(); i++ {
			k.m.OnShard(i).Range(cx.On(i), func(_, v int64) bool {
				total += v
				return true
			})
		}
		sum = total
		return nil
	}); err != nil {
		return err
	}
	if want := int64(k.increments.Load()); sum != want {
		return fmt.Errorf("load: shardedkv value sum %d != committed increments %d", sum, want)
	}
	return nil
}
