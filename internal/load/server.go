package load

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rubic/internal/core"
	"rubic/internal/metrics"
	"rubic/internal/pool"
	"rubic/internal/stamp"
)

// Config assembles one open-loop serving stack.
type Config struct {
	// Workload handles the requests. Workloads implementing Keyed receive
	// the Zipf-drawn key; others execute one closed-loop task per request.
	Workload stamp.Workload
	// Arrival is the seeded arrival schedule.
	Arrival Arrival
	// Keys, when non-nil, draws each request's key from the Zipfian hot-key
	// mix; nil sends the arrival sequence number as the key (uniform only
	// in the trivial sense — keyed workloads normally want a Zipf).
	Keys *Zipf
	// QueueCap bounds the admission queue (default 1024). Requests arriving
	// at a full queue are shed and counted, not blocked on.
	QueueCap int
	// Workers is the pool size — the maximum parallelism level. Required.
	Workers int
	// Controller steers the level from per-epoch signals; nil pins the
	// level at Workers.
	Controller core.Controller
	// SLO, when non-nil, wraps Controller (default: a RUBIC starting at
	// full level) in a core.SLOGuard so the level is tuned against the p99
	// target instead of raw throughput.
	SLO *core.SLOPolicy
	// Epoch is the reporting/tuning interval (default 250 ms).
	Epoch time.Duration
	// Seed derives every random stream of the stack (workload setup, pool
	// workers; the Arrival and Keys generators are seeded by their own
	// constructors, conventionally from the same seed).
	Seed int64
	// OnEpoch, when non-nil, receives each epoch's stats as the run
	// progresses (the serve CLI's live report).
	OnEpoch func(EpochStat)
	// Adapter, when non-nil, is driven once per epoch after the level is
	// actuated — the hook an adaptive stack uses to hot-swap the serving
	// runtime's engine and contention manager at epoch boundaries. Running
	// it after actuation means a guard cut this epoch is already in force
	// (and in any controller snapshot the adapter exports) before a handoff
	// can begin.
	Adapter core.Adapter
	// AfterSetup, when non-nil, runs once the workload has populated and
	// before any traffic is generated — the window in which a durability
	// layer can register the workload's locations and replay a recovered
	// log. An error aborts the run.
	AfterSetup func() error
}

// DefaultQueueCap is the default admission-queue bound.
const DefaultQueueCap = 1024

// DefaultEpoch is the default tuning/reporting epoch. Longer than the
// closed-loop tuner's 10 ms tick: a p99 needs enough samples per window to
// be a signal rather than noise.
const DefaultEpoch = 250 * time.Millisecond

// EpochStat is one epoch's report: interval quantiles (not cumulative), the
// level in force, and the guard's posture.
type EpochStat struct {
	// Index is the epoch's 0-based sequence number.
	Index int
	// Level is the parallelism level actuated for the next epoch.
	Level int
	// State is the SLO guard's posture after the epoch ("" without an SLO).
	State string
	// Arrived, Completed and Shed are this epoch's deltas.
	Arrived   uint64
	Completed uint64
	Shed      uint64
	// QPS is Completed over the epoch duration.
	QPS float64
	// QueueDepth is the admission-queue depth at the epoch boundary.
	QueueDepth int
	// P50/P99/P999/Max are the epoch's latency quantiles, queueing delay
	// included (Max at bucket resolution).
	P50, P99, P999, Max time.Duration
}

// Result is the run's outcome.
type Result struct {
	// Epochs are the per-epoch reports, in order.
	Epochs []EpochStat
	// Hist is the cumulative latency histogram of every served request.
	Hist *metrics.Hist
	// Arrived counts generated requests; Admitted = Arrived - Shed.
	Arrived, Completed, Shed uint64
	// OfferedQPS is Arrived over the run; QPS is Completed over the run.
	OfferedQPS, QPS float64
	// P50/P99/P999/Max summarize the cumulative histogram.
	P50, P99, P999, Max time.Duration
	// MeanLevel is the average actuated level across epochs.
	MeanLevel float64
	// SLO carries the guard's final stats (zero without an SLO policy).
	SLO core.SLOStats
	// SLOState is the guard's final posture ("" without an SLO policy).
	SLOState string
	// Elapsed is the measured run duration.
	Elapsed time.Duration
}

// Server runs one workload under open-loop load: a generator thread emits
// the arrival schedule into the bounded admission queue, pool workers pop
// requests and execute them against the workload, and an epoch loop reports
// interval latency quantiles and (optionally) tunes the parallelism level —
// against throughput like the closed-loop Tuner, or against a p99 target
// through a core.SLOGuard.
type Server struct {
	cfg   Config
	guard *core.SLOGuard
}

// NewServer validates the configuration. The SLO default controller is a
// RUBIC starting at full level: a service entering traffic wants capacity
// first and efficiency second, so the guard cuts down from the top rather
// than growing from the floor while requests queue.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Workload == nil {
		return nil, fmt.Errorf("load: server needs a workload")
	}
	if cfg.Arrival == nil {
		return nil, fmt.Errorf("load: server needs an arrival process")
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("load: server needs at least one worker, got %d", cfg.Workers)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("load: queue capacity %d < 1", cfg.QueueCap)
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = DefaultEpoch
	}
	s := &Server{cfg: cfg}
	if cfg.SLO != nil {
		inner := cfg.Controller
		if inner == nil {
			inner = core.NewRUBIC(core.RUBICConfig{MaxLevel: cfg.Workers, InitialLevel: cfg.Workers})
		}
		g, err := core.NewSLOGuard(inner, *cfg.SLO)
		if err != nil {
			return nil, err
		}
		s.guard = g
		s.cfg.Controller = g
	}
	return s, nil
}

// Guard exposes the SLO guard (nil without an SLO policy).
func (s *Server) Guard() *core.SLOGuard { return s.guard }

// Run executes the open-loop run for the given duration, then verifies the
// workload's invariants. The returned Result is valid even when err is a
// verification failure.
func (s *Server) Run(duration time.Duration) (Result, error) {
	var res Result
	if duration <= 0 {
		return res, fmt.Errorf("load: run duration must be positive")
	}
	cfg := &s.cfg
	if err := cfg.Workload.Setup(rand.New(rand.NewSource(cfg.Seed))); err != nil {
		return res, fmt.Errorf("load: setup %s: %w", cfg.Workload.Name(), err)
	}
	if cfg.AfterSetup != nil {
		if err := cfg.AfterSetup(); err != nil {
			return res, fmt.Errorf("load: after-setup %s: %w", cfg.Workload.Name(), err)
		}
	}
	queue, err := NewQueue(cfg.QueueCap)
	if err != nil {
		return res, err
	}
	keyed, _ := cfg.Workload.(Keyed)
	task := cfg.Workload.Task()

	// Per-worker histograms: single-writer record path, merged (atomically
	// read) by the epoch loop while the workers keep recording.
	hists := make([]*metrics.Hist, cfg.Workers)
	for i := range hists {
		hists[i] = metrics.NewHist()
	}
	pl, err := pool.New(cfg.Workers, cfg.Seed+1, func(workerID int, rng *rand.Rand) bool {
		req, ok := queue.Pop()
		if !ok {
			return false // queue closed: the run is tearing down
		}
		var done bool
		if keyed != nil {
			done = keyed.ServeKey(workerID, req.Key, rng)
		} else {
			done = task(workerID, rng)
		}
		// Latency includes the time queued; failed requests took it too.
		hists[workerID].Record(time.Since(req.Arrival))
		return done
	})
	if err != nil {
		return res, err
	}

	level := cfg.Workers
	if cfg.Controller != nil {
		level = cfg.Controller.Level()
	}
	pl.SetLevel(level)

	// Generator: walks the arrival schedule in absolute time, so a slow
	// consumer cannot stretch the schedule (that would close the loop). A
	// late wakeup emits the overdue arrivals back-to-back.
	var arrived atomic.Uint64
	genStop := make(chan struct{})
	var genWG sync.WaitGroup
	genWG.Add(1)
	go func() {
		defer genWG.Done()
		timer := time.NewTimer(0)
		defer timer.Stop()
		if !timer.Stop() {
			<-timer.C
		}
		next := time.Now()
		var seq uint64
		for {
			select {
			case <-genStop:
				return
			default:
			}
			next = next.Add(cfg.Arrival.Next())
			if wait := time.Until(next); wait > 0 {
				timer.Reset(wait)
				select {
				case <-genStop:
					return
				case <-timer.C:
				}
			}
			key := seq
			if cfg.Keys != nil {
				key = cfg.Keys.Next()
			}
			queue.Offer(Request{Key: key, Seq: seq, Arrival: time.Now()})
			arrived.Add(1)
			seq++
		}
	}()

	start := time.Now()
	pl.Start()

	// Epoch loop: merge the workers' cumulative histograms, difference
	// against the previous merge for the interval view, decide the level.
	ticker := time.NewTicker(cfg.Epoch)
	defer ticker.Stop()
	deadline := time.NewTimer(duration)
	defer deadline.Stop()
	prevCum := metrics.NewHist()
	var prevCompleted, prevArrived, prevShed uint64
	var levelSum float64
	epochs := 0
	epochSecs := cfg.Epoch.Seconds()
loop:
	for {
		select {
		case <-deadline.C:
			break loop
		case <-ticker.C:
			cum := metrics.NewHist()
			for _, h := range hists {
				cum.Merge(h)
			}
			interval := cum.Clone()
			interval.Sub(prevCum)
			prevCum = cum

			completed := pl.Completed()
			arr := arrived.Load()
			shed := queue.Shed()
			st := EpochStat{
				Index:      epochs,
				Arrived:    arr - prevArrived,
				Completed:  completed - prevCompleted,
				Shed:       shed - prevShed,
				QPS:        float64(completed-prevCompleted) / epochSecs,
				QueueDepth: queue.Len(),
				P50:        interval.P50(),
				P99:        interval.P99(),
				P999:       interval.P999(),
				Max:        interval.Quantile(1),
			}
			prevCompleted, prevArrived, prevShed = completed, arr, shed

			switch {
			case s.guard != nil:
				level = s.guard.NextEpoch(st.P99, st.QPS)
				st.State = s.guard.State().String()
			case cfg.Controller != nil:
				level = cfg.Controller.Next(st.QPS)
			}
			pl.SetLevel(level)
			if cfg.Adapter != nil {
				cfg.Adapter.Epoch(st.QPS)
			}
			st.Level = level
			levelSum += float64(level)
			epochs++
			res.Epochs = append(res.Epochs, st)
			if cfg.OnEpoch != nil {
				cfg.OnEpoch(st)
			}
		}
	}

	// Teardown order matters: stop the generator, close the queue so
	// workers blocked in Pop unblock, then stop the pool (workers exit at
	// the loop top; the residual backlog is discarded, not served).
	close(genStop)
	genWG.Wait()
	queue.Close()
	pl.Stop()
	res.Elapsed = time.Since(start)

	res.Hist = metrics.NewHist()
	for _, h := range hists {
		res.Hist.Merge(h)
	}
	res.Arrived = arrived.Load()
	res.Completed = pl.Completed()
	res.Shed = queue.Shed()
	secs := res.Elapsed.Seconds()
	if secs > 0 {
		res.OfferedQPS = float64(res.Arrived) / secs
		res.QPS = float64(res.Completed) / secs
	}
	res.P50 = res.Hist.P50()
	res.P99 = res.Hist.P99()
	res.P999 = res.Hist.P999()
	res.Max = res.Hist.Max()
	if epochs > 0 {
		res.MeanLevel = levelSum / float64(epochs)
	} else {
		res.MeanLevel = float64(level)
	}
	if s.guard != nil {
		res.SLO = s.guard.Stats()
		res.SLOState = s.guard.State().String()
	}
	if err := cfg.Workload.Verify(); err != nil {
		return res, fmt.Errorf("load: %s verification: %w", cfg.Workload.Name(), err)
	}
	return res, nil
}
