package load

import (
	"math"
	"testing"
	"time"
)

// schedule materializes the first n gaps of a generator.
func schedule(g Arrival, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// TestArrivalDeterminism is the chaos-layer convention applied to load:
// same (process, qps, seed) ⇒ same arrival schedule; a different seed
// diverges.
func TestArrivalDeterminism(t *testing.T) {
	const qps, n = 200.0, 2000
	for _, name := range ArrivalNames() {
		t.Run(name, func(t *testing.T) {
			a, err := NewArrival(name, qps, 42)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := NewArrival(name, qps, 42)
			sa, sb := schedule(a, n), schedule(b, n)
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("%s@42 schedules diverge at arrival %d: %v vs %v", name, i, sa[i], sb[i])
				}
			}
			if name == "constant" {
				return // seedless by design
			}
			c, _ := NewArrival(name, qps, 43)
			sc := schedule(c, n)
			same := 0
			for i := range sa {
				if sa[i] == sc[i] {
					same++
				}
			}
			if same == n {
				t.Fatalf("%s schedules identical across different seeds", name)
			}
		})
	}
}

// TestArrivalMeanRate: every generator's long-run rate must converge to the
// requested QPS (the diurnal and burst shapes oscillate around it / above
// it in a known way).
func TestArrivalMeanRate(t *testing.T) {
	const qps = 100.0
	cases := []struct {
		name     string
		min, max float64 // acceptable long-run rate band
	}{
		{"constant", 99, 101},
		{"poisson", 95, 105},
		{"diurnal", 85, 115},   // sinusoid mean ≈ qps over whole cycles
		{"burst", 95, qps * 2}, // base qps plus spike mass
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := NewArrival(tc.name, qps, 7)
			if err != nil {
				t.Fatal(err)
			}
			// Walk 60 virtual seconds of schedule (whole diurnal/burst cycles).
			var virtual time.Duration
			n := 0
			for virtual < 60*time.Second {
				virtual += g.Next()
				n++
				if n > 10_000_000 {
					t.Fatal("schedule never advances")
				}
			}
			rate := float64(n) / virtual.Seconds()
			if rate < tc.min || rate > tc.max {
				t.Fatalf("%s long-run rate %.1f outside [%.1f, %.1f]", tc.name, rate, tc.min, tc.max)
			}
		})
	}
}

// TestBurstSpikes: the burst generator's windows must actually spike — the
// arrival count inside spike windows divided by window time should be near
// factor times the base rate.
func TestBurstSpikes(t *testing.T) {
	g, err := NewBurst(100, 8, 5*time.Second, 500*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	var virtual float64 // seconds
	var inSpike, outSpike int
	var spikeTime, quietTime float64
	for virtual < 100 {
		gap := g.Next().Seconds()
		virtual += gap
		if math.Mod(virtual, 5) < 0.5 {
			inSpike++
		} else {
			outSpike++
		}
	}
	spikeTime = 100 * (0.5 / 5)
	quietTime = 100 - spikeTime
	spikeRate := float64(inSpike) / spikeTime
	quietRate := float64(outSpike) / quietTime
	if spikeRate < 4*quietRate {
		t.Fatalf("spike rate %.0f not clearly above quiet rate %.0f (want ≈8x)", spikeRate, quietRate)
	}
}

// TestZipfHotKeyMix pins the 80/20 default: at DefaultTheta over 10k keys,
// the hottest 20% of ranks must absorb at least 75% of draws (and the
// distribution must be deterministic per seed).
func TestZipfHotKeyMix(t *testing.T) {
	const n, draws = 10_000, 200_000
	z, err := NewZipf(n, DefaultTheta, 11)
	if err != nil {
		t.Fatal(err)
	}
	z2, _ := NewZipf(n, DefaultTheta, 11)
	hot := 0
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k != z2.Next() {
			t.Fatalf("zipf draws diverge at %d for the same seed", i)
		}
		if k >= n {
			t.Fatalf("key %d outside the key space", k)
		}
		if k < n/5 {
			hot++
		}
	}
	frac := float64(hot) / draws
	if frac < 0.75 {
		t.Fatalf("hottest 20%% of keys got %.1f%% of draws, want >= 75%% (the 80/20 mix)", 100*frac)
	}
	if frac > 0.95 {
		t.Fatalf("skew implausibly extreme: %.1f%%", 100*frac)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 0.9, 1); err == nil {
		t.Fatal("empty key space accepted")
	}
	for _, theta := range []float64{0, 1, -0.5, 2} {
		if _, err := NewZipf(10, theta, 1); err == nil {
			t.Fatalf("theta %v accepted", theta)
		}
	}
}

// TestQueueShedAndDrain: a full queue sheds instead of blocking, Close
// leaves the backlog poppable, and Pop reports exhaustion.
func TestQueueShedAndDrain(t *testing.T) {
	q, err := NewQueue(2)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if !q.Offer(Request{Seq: 0, Arrival: now}) || !q.Offer(Request{Seq: 1, Arrival: now}) {
		t.Fatal("offers below capacity rejected")
	}
	if q.Offer(Request{Seq: 2, Arrival: now}) {
		t.Fatal("offer above capacity admitted")
	}
	if q.Shed() != 1 || q.Len() != 2 {
		t.Fatalf("shed %d len %d, want 1 and 2", q.Shed(), q.Len())
	}
	q.Close()
	if q.Offer(Request{Seq: 3}) {
		t.Fatal("offer after close admitted")
	}
	for want := uint64(0); want < 2; want++ {
		r, ok := q.Pop()
		if !ok || r.Seq != want {
			t.Fatalf("pop %d: got %+v ok=%v", want, r, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on a closed drained queue reported a request")
	}
	q.Close() // idempotent
}

func TestArrivalValidation(t *testing.T) {
	if _, err := NewArrival("warp", 10, 1); err == nil {
		t.Fatal("unknown arrival accepted")
	}
	for _, qps := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if _, err := NewConstant(qps); err == nil {
			t.Fatalf("constant qps %v accepted", qps)
		}
		if _, err := NewPoisson(qps, 1); err == nil {
			t.Fatalf("poisson qps %v accepted", qps)
		}
	}
	if _, err := NewDiurnal(10, 5, time.Second, 1); err == nil {
		t.Fatal("diurnal peak < trough accepted")
	}
	if _, err := NewBurst(10, 2, time.Second, 2*time.Second, 1); err == nil {
		t.Fatal("burst width >= every accepted")
	}
}
