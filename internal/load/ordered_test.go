package load

import (
	"math/rand"
	"testing"
	"time"

	"rubic/internal/stm"
)

// TestOrderedWorkloadDirect drives the ordered workload's task loop directly
// (closed-loop shape) and checks its invariants, including the dense-scan
// guarantee and the increment-sum audit.
func TestOrderedWorkloadDirect(t *testing.T) {
	rt := stm.New(stm.Config{})
	o := NewOrdered(rt, OrderedConfig{Keys: 400, ScanWidth: 16})
	rng := rand.New(rand.NewSource(5))
	if err := o.Setup(rng); err != nil {
		t.Fatal(err)
	}
	task := o.Task()
	for i := 0; i < 3_000; i++ {
		if !task(0, rng) {
			t.Fatalf("op %d failed", i)
		}
	}
	if err := o.Verify(); err != nil {
		t.Fatal(err)
	}
	if o.increments.Load() == 0 {
		t.Fatal("no increments committed; the mix never exercised the write path")
	}
}

// TestServerOpenLoopOrdered runs the ordered workload under the open-loop
// server: Zipf-keyed point reads, scans, and increments must serve and pass
// Verify (which runs inside Run).
func TestServerOpenLoopOrdered(t *testing.T) {
	rt := stm.New(stm.Config{})
	o := NewOrdered(rt, OrderedConfig{Keys: 500})
	z, err := NewZipf(uint64(o.Keys()), DefaultTheta, 23)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewArrival("poisson", 400, 23)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{
		Workload: o,
		Keys:     z,
		Arrival:  arr,
		Workers:  2,
		Seed:     23,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
}

// TestShardedKVWorkload drives the sharded KV through its task loop and the
// open-loop server, checking the cross-shard audit in Verify.
func TestShardedKVWorkload(t *testing.T) {
	sr := stm.NewSharded(4, stm.Config{})
	k := NewShardedKV(sr, KVConfig{Keys: 300})
	rng := rand.New(rand.NewSource(9))
	if err := k.Setup(rng); err != nil {
		t.Fatal(err)
	}
	task := k.Task()
	for i := 0; i < 3_000; i++ {
		if !task(0, rng) {
			t.Fatalf("op %d failed", i)
		}
	}
	if err := k.Verify(); err != nil {
		t.Fatal(err)
	}
	if k.increments.Load() == 0 {
		t.Fatal("no increments committed")
	}
	if got := sr.Stats().Commits; got == 0 {
		t.Fatal("sharded runtime recorded no commits")
	}

	z, err := NewZipf(uint64(k.Keys()), DefaultTheta, 31)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewArrival("poisson", 400, 31)
	if err != nil {
		t.Fatal(err)
	}
	k2 := NewShardedKV(stm.NewSharded(4, stm.Config{}), KVConfig{Keys: 300})
	s, err := NewServer(Config{
		Workload: k2,
		Keys:     z,
		Arrival:  arr,
		Workers:  2,
		Seed:     31,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
}
