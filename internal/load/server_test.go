package load

import (
	"math/rand"
	"testing"
	"time"

	"rubic/internal/core"
	"rubic/internal/pool"
	"rubic/internal/stm"
)

func newKVServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Workload == nil {
		rt := stm.New(stm.Config{})
		cfg.Workload = NewKV(rt, KVConfig{Keys: 500})
	}
	if cfg.Arrival == nil {
		a, err := NewPoisson(400, 17)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Arrival = a
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServerOpenLoopKV is the subsystem's end-to-end smoke: a Zipf-keyed KV
// workload under Poisson arrivals for one second must complete roughly the
// offered load, report finite quantiles with queueing delay included, and
// pass the workload's own invariants (Verify runs inside Run).
func TestServerOpenLoopKV(t *testing.T) {
	z, err := NewZipf(500, DefaultTheta, 17)
	if err != nil {
		t.Fatal(err)
	}
	var epochs int
	s := newKVServer(t, Config{
		Keys:    z,
		Epoch:   100 * time.Millisecond,
		Seed:    17,
		OnEpoch: func(EpochStat) { epochs++ },
	})
	res, err := s.Run(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived < 200 || res.Arrived > 800 {
		t.Fatalf("arrived %d, want ≈400 over 1s at 400 QPS", res.Arrived)
	}
	if res.Completed == 0 || res.Completed+res.Shed > res.Arrived {
		t.Fatalf("completed %d + shed %d inconsistent with arrived %d", res.Completed, res.Shed, res.Arrived)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 || res.Max < res.P999-res.P999/histRelErrDen {
		t.Fatalf("quantiles not ordered: p50=%v p99=%v p999=%v max=%v", res.P50, res.P99, res.P999, res.Max)
	}
	if epochs != len(res.Epochs) || epochs < 5 {
		t.Fatalf("epoch callback fired %d times for %d epochs", epochs, len(res.Epochs))
	}
	if res.Hist.Count() != res.Completed {
		// Every served request records exactly one latency; failed requests
		// would add more, but KV requests only fail on STM errors.
		t.Fatalf("histogram count %d != completed %d", res.Hist.Count(), res.Completed)
	}
}

// histRelErrDen mirrors the histogram's bucket resolution for the ordering
// check above (Max is exact, P999 is a bucket upper edge and may sit one
// bucket width above it).
const histRelErrDen = 32

// TestServerUnkeyedWorkload: a workload without ServeKey still serves
// open-loop traffic, one closed-loop task per request.
func TestServerUnkeyedWorkload(t *testing.T) {
	rt := stm.New(stm.Config{})
	w := &unkeyed{kv: NewKV(rt, KVConfig{Keys: 100})}
	s := newKVServer(t, Config{Workload: w, Seed: 3})
	res, err := s.Run(500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no requests served through the unkeyed path")
	}
}

// unkeyed hides KV's ServeKey so the server exercises the Task fallback.
type unkeyed struct{ kv *KV }

func (u *unkeyed) Name() string               { return "unkeyed-" + u.kv.Name() }
func (u *unkeyed) Setup(rng *rand.Rand) error { return u.kv.Setup(rng) }
func (u *unkeyed) Task() pool.Task            { return u.kv.Task() }
func (u *unkeyed) Verify() error              { return u.kv.Verify() }

// TestServerSLOControllerConverges is the serve-smoke assertion in test
// form: a modest Poisson load against a generous SLO must end the run
// meeting its target with a finite p999, and the level must stay within
// bounds every epoch.
func TestServerSLOControllerConverges(t *testing.T) {
	s := newKVServer(t, Config{
		SLO:   &core.SLOPolicy{TargetP99: 250 * time.Millisecond},
		Epoch: 100 * time.Millisecond,
		Seed:  29,
	})
	res, err := s.Run(1500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOState != "meeting" {
		t.Fatalf("final SLO state %q (stats %+v), want meeting", res.SLOState, res.SLO)
	}
	if res.P999 <= 0 || res.P999 > time.Minute {
		t.Fatalf("p999 %v not finite/sane", res.P999)
	}
	for _, e := range res.Epochs {
		if e.Level < 1 || e.Level > 4 {
			t.Fatalf("epoch %d actuated level %d outside [1, workers]", e.Index, e.Level)
		}
	}
}

// TestServerSLOCutsUnderOverload: an offered load far beyond one worker's
// capacity with an unreachable SLO must drive the guard to cut — the level
// trace has to come down from the initial full level.
func TestServerSLOCutsUnderOverload(t *testing.T) {
	rt := stm.New(stm.Config{})
	a, err := NewConstant(2000)
	if err != nil {
		t.Fatal(err)
	}
	s := newKVServer(t, Config{
		Workload: NewKV(rt, KVConfig{Keys: 200}),
		Arrival:  a,
		Workers:  4,
		QueueCap: 64,
		SLO:      &core.SLOPolicy{TargetP99: time.Nanosecond, BreachAfter: 1},
		Epoch:    50 * time.Millisecond,
		Seed:     5,
	})
	res, err := s.Run(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLO.Cuts == 0 {
		t.Fatalf("unreachable SLO produced no cuts: %+v", res.SLO)
	}
	min := res.Epochs[0].Level
	for _, e := range res.Epochs {
		if e.Level < min {
			min = e.Level
		}
	}
	if min != 1 {
		t.Fatalf("sustained breach never cut to the floor (min level %d)", min)
	}
}

// TestServerArrivalScheduleDeterminism: two runs at the same seed offer the
// same number of requests (the schedule is a pure function of the seed;
// completion counts may differ with scheduling, arrivals must not).
func TestServerArrivalScheduleDeterminism(t *testing.T) {
	run := func() uint64 {
		rt := stm.New(stm.Config{})
		a, err := NewPoisson(300, 23)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewServer(Config{
			Workload: NewKV(rt, KVConfig{Keys: 100}),
			Arrival:  a,
			Workers:  2,
			Seed:     23,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(700 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return res.Arrived
	}
	a, b := run(), run()
	// The schedule is identical; the run duration boundary can admit a few
	// more or fewer arrivals depending on timer jitter.
	diff := int64(a) - int64(b)
	if diff < 0 {
		diff = -diff
	}
	if diff > int64(a/10)+20 {
		t.Fatalf("same-seed runs offered %d vs %d arrivals", a, b)
	}
}

func TestServerValidation(t *testing.T) {
	rt := stm.New(stm.Config{})
	kv := NewKV(rt, KVConfig{})
	a, _ := NewConstant(10)
	if _, err := NewServer(Config{Arrival: a, Workers: 1}); err == nil {
		t.Fatal("missing workload accepted")
	}
	if _, err := NewServer(Config{Workload: kv, Workers: 1}); err == nil {
		t.Fatal("missing arrival accepted")
	}
	if _, err := NewServer(Config{Workload: kv, Arrival: a}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := NewServer(Config{Workload: kv, Arrival: a, Workers: 1, QueueCap: -1}); err == nil {
		t.Fatal("negative queue accepted")
	}
	if _, err := NewServer(Config{Workload: kv, Arrival: a, Workers: 1, SLO: &core.SLOPolicy{}}); err == nil {
		t.Fatal("invalid SLO policy accepted")
	}
	s, err := NewServer(Config{Workload: kv, Arrival: a, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err == nil {
		t.Fatal("zero duration accepted")
	}
}
