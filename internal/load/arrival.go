// Package load is the open-loop load subsystem: seeded arrival-schedule
// generators, a Zipfian hot-key request mix, a bounded admission queue that
// timestamps requests at arrival, and an open-loop Server that drives the
// existing workloads through the malleable worker pool while recording
// end-to-end latency (queueing delay included) into HDR-style histograms.
//
// Everything the repo measured before this package is closed-loop: workers
// pull the next task the moment the previous one commits, so the offered
// load adapts to the system's capacity and the only observable is
// throughput. A service faces the opposite regime — requests arrive at a
// rate the system does not control, queues build when capacity lags, and
// the metric that matters is tail latency at a target QPS. The generators
// here produce those arrival schedules deterministically: like the chaos
// layer's fault plans, a schedule is a pure function of (spec, seed), so
// the same scenario@seed replays the same arrivals.
package load

import (
	"fmt"
	"math"
	"strings"
	"time"

	"rubic/internal/rng"
)

// Arrival generates an open-loop arrival schedule as a sequence of
// inter-arrival gaps. Implementations are deterministic: the gap sequence
// is a pure function of the constructor's parameters and seed. Not safe for
// concurrent use — the Server's single generator goroutine owns it.
type Arrival interface {
	// Next returns the gap between the previous arrival and the next one.
	Next() time.Duration
	// Name identifies the process for reports ("poisson", "burst", ...).
	Name() string
}

// Stream tags decorrelating the subsystem's random streams from one seed
// (the convention internal/fault's scenario derivation established).
const (
	tagArrival = 0x41525256 // "ARRV"
	tagZipf    = 0x5a495046 // "ZIPF"
	tagService = 0x53525643 // "SRVC"
)

// gapNs converts a rate in requests/second into a nanosecond gap.
func gapNs(qps float64) time.Duration {
	return time.Duration(float64(time.Second) / qps)
}

// Constant emits perfectly periodic arrivals at qps. The degenerate
// schedule: no burstiness at all, so any queueing it provokes is pure
// capacity shortfall.
type Constant struct {
	gap time.Duration
}

// NewConstant returns a constant-rate generator. qps must be positive.
func NewConstant(qps float64) (*Constant, error) {
	if qps <= 0 || math.IsInf(qps, 0) || math.IsNaN(qps) {
		return nil, fmt.Errorf("load: constant arrival needs qps > 0, got %v", qps)
	}
	return &Constant{gap: gapNs(qps)}, nil
}

//rubic:deterministic
//rubic:noalloc
func (c *Constant) Next() time.Duration { return c.gap }
func (c *Constant) Name() string        { return "constant" }

// Poisson emits a memoryless arrival process of intensity qps:
// exponentially distributed gaps, the standard open-loop traffic model.
// Its coefficient of variation of 1 is what makes tail latency interesting
// even at moderate utilization.
type Poisson struct {
	qps float64
	s   *rng.Stream
}

// NewPoisson returns a seeded Poisson generator. qps must be positive.
func NewPoisson(qps float64, seed int64) (*Poisson, error) {
	if qps <= 0 || math.IsInf(qps, 0) || math.IsNaN(qps) {
		return nil, fmt.Errorf("load: poisson arrival needs qps > 0, got %v", qps)
	}
	return &Poisson{qps: qps, s: rng.NewStream(seed, tagArrival)}, nil
}

//rubic:deterministic
//rubic:noalloc
func (p *Poisson) Next() time.Duration {
	return time.Duration(p.s.Exp(p.qps) * float64(time.Second))
}
func (p *Poisson) Name() string { return "poisson" }

// Diurnal modulates a Poisson process sinusoidally between a trough and a
// peak rate over a fixed period — the compressed day/night cycle. The
// instantaneous rate advances along the generator's own virtual clock (the
// sum of emitted gaps), so the schedule stays a pure function of the seed.
type Diurnal struct {
	base, amp float64 // rate(t) = base + amp*sin(2πt/period), both in QPS
	period    float64 // seconds
	virtual   float64 // seconds of schedule emitted so far
	s         *rng.Stream
}

// NewDiurnal returns a seeded diurnal generator oscillating between
// troughQPS and peakQPS with the given cycle period.
func NewDiurnal(troughQPS, peakQPS float64, period time.Duration, seed int64) (*Diurnal, error) {
	if troughQPS <= 0 || peakQPS < troughQPS {
		return nil, fmt.Errorf("load: diurnal arrival needs 0 < trough <= peak, got %v..%v", troughQPS, peakQPS)
	}
	if period <= 0 {
		return nil, fmt.Errorf("load: diurnal arrival needs a positive period, got %v", period)
	}
	return &Diurnal{
		base:   (peakQPS + troughQPS) / 2,
		amp:    (peakQPS - troughQPS) / 2,
		period: period.Seconds(),
		s:      rng.NewStream(seed, tagArrival),
	}, nil
}

//rubic:deterministic
//rubic:noalloc
func (d *Diurnal) Next() time.Duration {
	rate := d.base + d.amp*math.Sin(2*math.Pi*d.virtual/d.period)
	if rate <= 0 {
		rate = 1e-9
	}
	gap := d.s.Exp(rate)
	d.virtual += gap
	return time.Duration(gap * float64(time.Second))
}
func (d *Diurnal) Name() string { return "diurnal" }

// Burst emits a Poisson base load punctuated by periodic spikes: every
// Every seconds of virtual time, the rate multiplies by Factor for Width.
// This is the flash-crowd / thundering-herd shape that separates an
// SLO-aware controller from a throughput-greedy one — the spike is exactly
// when cutting parallelism for latency headroom matters.
type Burst struct {
	base    float64
	factor  float64
	every   float64 // seconds between spike starts
	width   float64 // seconds a spike lasts
	virtual float64
	s       *rng.Stream
}

// NewBurst returns a seeded burst-spike generator: baseQPS normally,
// baseQPS*factor during spikes of the given width every interval.
func NewBurst(baseQPS, factor float64, every, width time.Duration, seed int64) (*Burst, error) {
	if baseQPS <= 0 || factor < 1 {
		return nil, fmt.Errorf("load: burst arrival needs qps > 0 and factor >= 1, got %v, %v", baseQPS, factor)
	}
	if every <= 0 || width <= 0 || width >= every {
		return nil, fmt.Errorf("load: burst arrival needs 0 < width < every, got width=%v every=%v", width, every)
	}
	return &Burst{
		base:   baseQPS,
		factor: factor,
		every:  every.Seconds(),
		width:  width.Seconds(),
		s:      rng.NewStream(seed, tagArrival),
	}, nil
}

//rubic:deterministic
//rubic:noalloc
func (b *Burst) Next() time.Duration {
	rate := b.base
	if math.Mod(b.virtual, b.every) < b.width {
		rate *= b.factor
	}
	gap := b.s.Exp(rate)
	b.virtual += gap
	return time.Duration(gap * float64(time.Second))
}
func (b *Burst) Name() string { return "burst" }

// Burst and diurnal shape defaults, chosen so short CI runs still cross at
// least one full cycle.
const (
	// DefaultDiurnalPeriod compresses the day/night cycle.
	DefaultDiurnalPeriod = 10 * time.Second
	// DefaultDiurnalSwing is peak/trough: the paper-style 4x day/night ratio.
	DefaultDiurnalSwing = 4.0
	// DefaultBurstEvery spaces the spikes.
	DefaultBurstEvery = 5 * time.Second
	// DefaultBurstWidth is one spike's duration.
	DefaultBurstWidth = 500 * time.Millisecond
	// DefaultBurstFactor multiplies the base rate during a spike.
	DefaultBurstFactor = 8.0
)

// NewArrival builds a generator by name: "constant" and "poisson" emit qps
// exactly; "diurnal" oscillates between a trough and a peak chosen with the
// default swing so the cycle mean is qps; "burst" treats qps as the base
// rate, with default spike shape. The seeded generators follow the chaos
// convention: same (name, qps, seed) ⇒ same schedule.
func NewArrival(name string, qps float64, seed int64) (Arrival, error) {
	switch strings.ToLower(name) {
	case "constant":
		return NewConstant(qps)
	case "poisson":
		return NewPoisson(qps, seed)
	case "diurnal":
		// Trough/peak around the requested mean with the default swing:
		// mean = (trough+peak)/2, peak = swing*trough.
		trough := 2 * qps / (1 + DefaultDiurnalSwing)
		return NewDiurnal(trough, DefaultDiurnalSwing*trough, DefaultDiurnalPeriod, seed)
	case "burst":
		return NewBurst(qps, DefaultBurstFactor, DefaultBurstEvery, DefaultBurstWidth, seed)
	}
	return nil, fmt.Errorf("load: unknown arrival process %q (want constant, poisson, diurnal or burst)", name)
}

// ArrivalNames lists the generator names NewArrival accepts.
func ArrivalNames() []string { return []string{"constant", "poisson", "diurnal", "burst"} }
