package load

import (
	"fmt"
	"math"

	"rubic/internal/rng"
)

// Zipf draws keys from a Zipfian distribution over [0, n): key rank i is
// drawn with probability proportional to 1/(i+1)^theta. It is the
// YCSB-style hot-key mix (Gray et al.'s rejection-free inversion): at the
// default skew and a 10k key space, roughly 80% of draws hit the hottest
// 20% of keys — the classic 80/20 service traffic shape (StunDB's Zipfian
// benchmarks use the same generator family).
//
// Draws are allocation-free and deterministic for a given (n, theta, seed).
// Not safe for concurrent use; the Server's generator goroutine owns it.
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	s     *rng.Stream
}

// DefaultTheta is the default skew. At theta=0.99 (YCSB's default) and the
// default 10k key space the hottest 20% of keys absorb ≈80% of draws.
const DefaultTheta = 0.99

// NewZipf returns a seeded Zipfian key generator over [0, n). theta must be
// in (0, 1) — theta=1 diverges in this parameterization; uniform traffic is
// the n-keys-theta→0 limit and has its own generator below.
func NewZipf(n uint64, theta float64, seed int64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("load: zipf key space must be non-empty, got %d", n)
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("load: zipf theta must be in (0,1), got %v", theta)
	}
	z := &Zipf{
		n:     n,
		theta: theta,
		s:     rng.NewStream(seed, tagZipf),
	}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	zeta2 := zeta(2, theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z, nil
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
// O(n) once at construction; key spaces are at most a few million.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next key. Rank 0 is the hottest key.
//
//rubic:deterministic
//rubic:noalloc
func (z *Zipf) Next() uint64 {
	u := z.s.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// Keys returns the size of the key space.
func (z *Zipf) Keys() uint64 { return z.n }
