package load

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Request is one admitted unit of open-loop work. Arrival is stamped when
// the generator offers the request — before it waits in the queue — so the
// latency a worker records on completion includes queueing delay, the
// component closed-loop measurement structurally cannot see.
type Request struct {
	// Key selects the datum a keyed workload operates on (Zipf-drawn);
	// unkeyed workloads ignore it.
	Key uint64
	// Seq is the request's arrival index (0-based), a cheap deterministic
	// per-request discriminator.
	Seq uint64
	// Arrival is the admission timestamp.
	Arrival time.Time
}

// Queue is the bounded admission queue between the arrival generator and
// the workers. Offer never blocks: when the queue is full the request is
// shed and counted, modelling an admission-controlled service (an open-loop
// generator that blocked on a full queue would silently turn back into a
// closed loop). Pop blocks until a request, or returns ok=false once the
// queue is closed and drained.
type Queue struct {
	ch     chan Request
	shed   atomic.Uint64
	closed atomic.Bool
}

// NewQueue returns a queue admitting at most capacity in-flight requests.
func NewQueue(capacity int) (*Queue, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("load: queue capacity %d < 1", capacity)
	}
	return &Queue{ch: make(chan Request, capacity)}, nil
}

// Offer admits r, or sheds it (returning false) when the queue is full or
// closed. Single producer: the Server's generator goroutine.
func (q *Queue) Offer(r Request) bool {
	if q.closed.Load() {
		q.shed.Add(1)
		return false
	}
	select {
	case q.ch <- r:
		return true
	default:
		q.shed.Add(1)
		return false
	}
}

// Pop removes the oldest admitted request, blocking while the queue is open
// and empty. ok is false once the queue is closed and fully drained.
func (q *Queue) Pop() (r Request, ok bool) {
	r, ok = <-q.ch
	return r, ok
}

// Close stops admission; queued requests remain poppable. Close is called
// by the producer after its last Offer, so close-send races cannot occur.
func (q *Queue) Close() {
	if q.closed.CompareAndSwap(false, true) {
		close(q.ch)
	}
}

// Shed returns the number of rejected requests.
func (q *Queue) Shed() uint64 { return q.shed.Load() }

// Len returns the current queue depth (racy, monitoring only).
func (q *Queue) Len() int { return len(q.ch) }
