package load

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"rubic/internal/pool"
	"rubic/internal/stamp"
	"rubic/internal/stm"
	"rubic/internal/stm/container"
	"rubic/internal/wal"
)

// Keyed is implemented by workloads whose operations target a specific key,
// letting the open-loop Server route a Zipf-drawn hot-key mix at them.
// Workloads without it still serve open-loop traffic — each request runs
// one closed-loop task — but the key is ignored and the hot-set skew
// disappears into the workload's own access pattern.
type Keyed interface {
	stamp.Workload
	// ServeKey executes one request against the given key, reporting whether
	// it completed (mirrors pool.Task's contract).
	ServeKey(workerID int, key uint64, rng *rand.Rand) bool
}

// KVConfig parameterizes the KV service workload.
type KVConfig struct {
	// Keys is the key-space size (default 10_000 — the size at which the
	// default Zipf skew yields the 80/20 mix).
	Keys int
	// ReadPct is the percentage of lookups; the rest are transactional
	// increments (default 80, a read-mostly cache shape).
	ReadPct int
	// Buckets is the hashmap's minimum bucket count (default Keys/4).
	Buckets int
}

func (c *KVConfig) defaults() {
	if c.Keys == 0 {
		c.Keys = 10_000
	}
	if c.ReadPct == 0 {
		c.ReadPct = 80
	}
	if c.Buckets == 0 {
		c.Buckets = c.Keys / 4
	}
}

// KV is the service-shaped request workload: point reads and transactional
// increments over a transactional hash map, the Zipfian-benchmark shape
// (StunDB exemplar) mapped onto this repo's STM containers. It implements
// stamp.Workload (so it runs under every existing closed-loop driver and
// the co-location layers) and Keyed (so the open-loop Server can aim the
// hot-key mix at it).
type KV struct {
	cfg KVConfig
	rt  *stm.Runtime
	m   *container.HashMap[int64]

	// increments counts committed add operations — bumped after Atomic
	// returns, never inside the closure, so retries cannot double-count.
	increments atomic.Uint64
	misses     atomic.Uint64
}

// NewKV returns an unpopulated KV workload on the given runtime.
func NewKV(rt *stm.Runtime, cfg KVConfig) *KV {
	cfg.defaults()
	return &KV{cfg: cfg, rt: rt}
}

// Keys reports the key-space size — the domain a Zipf generator aimed at
// this workload must cover.
func (k *KV) Keys() int { return k.cfg.Keys }

// Name implements stamp.Workload.
func (k *KV) Name() string {
	return fmt.Sprintf("kv(keys=%d,read=%d%%)", k.cfg.Keys, k.cfg.ReadPct)
}

// Setup implements stamp.Workload: every key starts at value 0.
func (k *KV) Setup(_ *rand.Rand) error {
	if k.cfg.Keys < 1 {
		return fmt.Errorf("load: kv needs at least one key")
	}
	k.m = container.NewHashMap[int64](k.cfg.Buckets)
	for i := 0; i < k.cfg.Keys; i++ {
		key := int64(i)
		if err := k.rt.Atomic(func(tx *stm.Tx) error {
			k.m.Put(tx, key, 0)
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// Task implements stamp.Workload: the closed-loop path draws keys uniformly
// from the workload's own rng (no hot set — open-loop serving is where the
// Zipf mix lives).
func (k *KV) Task() pool.Task {
	return func(workerID int, rng *rand.Rand) bool {
		return k.ServeKey(workerID, uint64(rng.Int63n(int64(k.cfg.Keys))), rng)
	}
}

// ServeKey implements Keyed: one read or increment against the keyed entry.
func (k *KV) ServeKey(_ int, key uint64, rng *rand.Rand) bool {
	id := int64(key % uint64(k.cfg.Keys))
	if rng.Intn(100) < k.cfg.ReadPct {
		var ok bool
		err := k.rt.AtomicRO(func(tx *stm.Tx) error {
			_, ok = k.m.Get(tx, id)
			return nil
		})
		if err != nil {
			return false
		}
		if !ok {
			k.misses.Add(1)
		}
		return true
	}
	err := k.rt.Atomic(func(tx *stm.Tx) error {
		v, _ := k.m.Get(tx, id)
		k.m.Put(tx, id, v+1)
		return nil
	})
	if err != nil {
		return false
	}
	k.increments.Add(1)
	return true
}

// RegisterDurable implements wal.DurableState: key i binds to WAL id i+1.
// Setup populates every key before traffic starts and entries are never
// deleted, so each key's EntryVar is a stable location for the log to
// target. Must run after Setup and before traffic.
func (k *KV) RegisterDurable(reg *wal.Registry) error {
	return k.rt.AtomicRO(func(tx *stm.Tx) error {
		for i := 0; i < k.cfg.Keys; i++ {
			v := k.m.EntryVar(tx, int64(i))
			if v == nil {
				return fmt.Errorf("load: kv key %d missing at registration", i)
			}
			if err := wal.RegisterVar(reg, uint64(i)+1, v); err != nil {
				return err
			}
		}
		return nil
	})
}

// Rebase implements wal.DurableState: after recovery the values hold the
// replayed prefix's increments, but the fresh incarnation's increment
// counter is zero — rebase it to the recovered sum so Verify's
// sum==increments invariant holds for the restarted process.
func (k *KV) Rebase() error {
	var sum int64
	err := k.rt.AtomicRO(func(tx *stm.Tx) error {
		total := int64(0)
		for i := 0; i < k.cfg.Keys; i++ {
			v, ok := k.m.Get(tx, int64(i))
			if !ok {
				return fmt.Errorf("load: kv key %d vanished during rebase", i)
			}
			total += v
		}
		sum = total
		return nil
	})
	if err != nil {
		return err
	}
	k.increments.Store(uint64(sum))
	k.misses.Store(0)
	return nil
}

// Verify implements stamp.Workload: populated keys must never miss, and the
// values must sum to exactly the committed increment count.
func (k *KV) Verify() error {
	if m := k.misses.Load(); m != 0 {
		return fmt.Errorf("load: kv saw %d misses on populated keys", m)
	}
	var sum int64
	err := k.rt.AtomicRO(func(tx *stm.Tx) error {
		total := int64(0) // closure-local: retry-safe accumulation
		for i := 0; i < k.cfg.Keys; i++ {
			v, ok := k.m.Get(tx, int64(i))
			if !ok {
				return fmt.Errorf("load: kv key %d vanished", i)
			}
			total += v
		}
		sum = total
		return nil
	})
	if err != nil {
		return err
	}
	if want := int64(k.increments.Load()); sum != want {
		return fmt.Errorf("load: kv value sum %d != committed increments %d", sum, want)
	}
	return nil
}
