package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Source annotations driving the concurrency-invariant analyzers. They
// follow the //go:directive convention: machine-readable comment lines with
// no space after the slashes, placed in the doc comment of the declaration
// they govern (gofmt keeps such lines at the end of the doc block).
const (
	// directiveNoAlloc marks a function whose body must be allocation-free
	// (checked by rubic/noalloc).
	directiveNoAlloc = "noalloc"
	// directiveDeterministic marks a schedule root: everything statically
	// reachable from it must be a pure function of its inputs (checked by
	// rubic/determinism).
	directiveDeterministic = "deterministic"
	// directiveSeqlock marks a struct field as a sequence-lock word whose
	// every use site must follow the seqlock protocol (checked by
	// rubic/seqlockproto).
	directiveSeqlock = "seqlock"
)

// hasDirective reports whether the comment group contains a //rubic:<name>
// line.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//rubic:"+name {
			return true
		}
	}
	return false
}

// funcsWithDirective returns the functions and methods of pkg whose doc
// comment carries //rubic:<name>, with their declarations, in source order.
func funcsWithDirective(pkg *Package, name string) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasDirective(fd.Doc, name) {
				out = append(out, fd)
			}
		}
	}
	return out
}

// fieldsWithDirective returns the struct-field objects of pkg annotated with
// //rubic:<name> (doc comment above the field or trailing line comment).
func fieldsWithDirective(pkg *Package, name string) []*types.Var {
	var out []*types.Var
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasDirective(field.Doc, name) && !hasDirective(field.Comment, name) {
					continue
				}
				for _, id := range field.Names {
					if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
						out = append(out, v)
					}
				}
			}
			return true
		})
	}
	return out
}

// inspectWithStack walks n like ast.Inspect but hands f the enclosing-node
// stack (outermost first, excluding the visited node itself). Analyzers use
// it where a node's legality depends on its syntactic context — e.g. whether
// an atomic field selector is a method-call receiver or a value copy.
func inspectWithStack(n ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(c, stack) {
			// Still push: ast.Inspect will not descend, so no pop arrives.
			// Returning false from Inspect's callback skips children AND the
			// nil pop call, so do not grow the stack here.
			return false
		}
		stack = append(stack, c)
		return true
	})
}

// isPkgLevel reports whether v is a package-scoped variable.
func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
