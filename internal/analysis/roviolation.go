package analysis

import (
	"go/ast"
	"go/types"
)

// ROViolation flags transactional writes reachable from an AtomicRO block.
// Read-only transactions skip read-set bookkeeping, so the runtime can only
// enforce the no-write contract at runtime — with a panic mid-measurement.
// This analyzer proves it statically instead: a Var.Write directly inside an
// AtomicRO closure, or inside any helper function the closure passes its
// transaction handle to (found with a call-graph walk over every
// module-internal package the loader has type-checked), is reported at the
// call site inside the block.
var ROViolation = &Analyzer{
	Name: "roviolation",
	Doc: "reports Var.Write calls reachable from AtomicRO blocks, including " +
		"writes buried in helper functions the block passes its tx to",
	Run: runROViolation,
}

func runROViolation(pass *Pass) {
	info := pass.Pkg.Info
	writes := &writeSummaries{loader: pass.Loader, memo: map[*types.Func]bool{}}
	for _, b := range atomicBlocks(pass.Pkg) {
		if !b.readOnly {
			continue
		}
		b := b
		blockBodyInspect(info, b, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			if isVarWrite(fn) {
				pass.Reportf(call.Pos(), "Var.Write inside an AtomicRO block panics at runtime")
				return true
			}
			if passesTx(info, call) && writes.writesViaTx(fn) {
				pass.Reportf(call.Pos(), "%s writes transactionally and must not be called from an AtomicRO block", fn.Name())
			}
			return true
		})
	}
}

// passesTx reports whether the call forwards a *stm.Tx argument.
func passesTx(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isTxType(tv.Type) {
			return true
		}
	}
	// Method values carry the receiver separately; a container method like
	// m.Put(tx, k, v) has tx in Args, so receiver inspection is not needed.
	return false
}

// writeSummaries computes, per function, whether it may perform a
// transactional write with a transaction handle it received — directly via
// Var.Write or transitively through other tx-taking functions. Results are
// memoized; recursion through cycles conservatively assumes no write (the
// cycle entry point is still scanned along its other edges).
type writeSummaries struct {
	loader *Loader
	memo   map[*types.Func]bool
}

func (w *writeSummaries) writesViaTx(fn *types.Func) bool {
	if res, ok := w.memo[fn]; ok {
		return res
	}
	w.memo[fn] = false // cycle breaker
	decl, pkg := w.loader.funcDecl(fn)
	if decl == nil || decl.Body == nil {
		return false
	}
	res := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if res {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pkg.Info, call)
		if callee == nil {
			return true
		}
		if isVarWrite(callee) {
			res = true
			return false
		}
		if callee != fn && passesTx(pkg.Info, call) && w.writesViaTx(callee) {
			res = true
			return false
		}
		return true
	})
	w.memo[fn] = res
	return res
}
