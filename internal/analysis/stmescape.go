package analysis

import (
	"go/ast"
	"go/types"
)

// StmEscape flags a transaction handle escaping its atomic block. A *stm.Tx
// is one attempt's context: Runtime.Atomic rolls it back and reuses it on
// retry, so a handle stored in a struct field, a global, a captured
// variable, a container, a channel, or a goroutine outlives the attempt and
// silently corrupts a later (or committed) transaction when used.
var StmEscape = &Analyzer{
	Name: "stmescape",
	Doc: "reports *stm.Tx handles escaping their Atomic/AtomicRO block " +
		"(stored in fields, globals or captured variables, sent on channels, " +
		"or captured by go statements)",
	Run: runStmEscape,
}

func runStmEscape(pass *Pass) {
	info := pass.Pkg.Info
	for _, b := range atomicBlocks(pass.Pkg) {
		if b.txObj == nil {
			continue
		}
		b := b
		blockBodyInspect(info, b, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if !carriesTx(info, rhs, b.txObj) {
						continue
					}
					// Parallel assignment pairs lhs[i] with rhs[i]; a single
					// multi-value rhs can reach every lhs.
					if len(n.Rhs) == len(n.Lhs) {
						pass.checkEscapeTarget(n.Lhs[i], b)
					} else {
						for _, lhs := range n.Lhs {
							pass.checkEscapeTarget(lhs, b)
						}
					}
				}
			case *ast.SendStmt:
				if carriesTx(info, n.Value, b.txObj) {
					pass.Reportf(n.Pos(), "transaction handle sent on a channel escapes its atomic block")
				}
			case *ast.GoStmt:
				if usesObject(info, n.Call, b.txObj) {
					pass.Reportf(n.Pos(), "transaction handle captured by a go statement escapes its atomic block")
				}
			case *ast.DeferStmt:
				// A defer inside the closure runs per attempt, before
				// rollback: the handle does not outlive the attempt.
				return true
			}
			return true
		})
	}
}

// carriesTx reports whether storing e can smuggle the transaction handle
// out of the block: e is the handle itself (possibly via a composite or
// address-of wrapping), or a closure that captured it. A value merely
// computed *with* the handle, like v.Read(tx), does not carry it.
func carriesTx(info *types.Info, e ast.Expr, txObj types.Object) bool {
	if !usesObject(info, e, txObj) {
		return false
	}
	switch x := e.(type) {
	case *ast.FuncLit:
		return true // a stored closure keeps the handle alive
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if carriesTx(info, elt, txObj) {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		return carriesTx(info, x.X, txObj)
	case *ast.ParenExpr:
		return carriesTx(info, x.X, txObj)
	}
	// Everything else — identifiers, selectors, calls like v.Read(tx) —
	// carries the handle only when its own type is *stm.Tx.
	tv, ok := info.Types[e]
	return ok && isTxType(tv.Type)
}

// checkEscapeTarget classifies an assignment destination receiving a value
// derived from the transaction handle.
func (pass *Pass) checkEscapeTarget(lhs ast.Expr, b atomicBlock) {
	info := pass.Pkg.Info
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := info.Defs[lhs]
		if obj == nil {
			obj = info.Uses[lhs]
		}
		if obj == nil || obj.Pkg() == nil {
			return
		}
		if obj.Parent() == obj.Pkg().Scope() {
			pass.Reportf(lhs.Pos(), "transaction handle stored in package-level variable %s escapes its atomic block", lhs.Name)
			return
		}
		if declaredOutside(obj, b.lit) {
			pass.Reportf(lhs.Pos(), "transaction handle stored in captured variable %s escapes its atomic block", lhs.Name)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			pass.Reportf(lhs.Pos(), "transaction handle stored in struct field %s escapes its atomic block", lhs.Sel.Name)
			return
		}
		// Qualified package-level variable (pkg.Global = tx).
		if obj, ok := info.Uses[lhs.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			pass.Reportf(lhs.Pos(), "transaction handle stored in package-level variable %s escapes its atomic block", lhs.Sel.Name)
		}
	case *ast.IndexExpr:
		pass.Reportf(lhs.Pos(), "transaction handle stored in a container escapes its atomic block")
	case *ast.StarExpr:
		pass.Reportf(lhs.Pos(), "transaction handle stored through a pointer escapes its atomic block")
	}
}
