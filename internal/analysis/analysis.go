// Package analysis is rubic's custom static-analysis engine: a small
// go/parser + go/types framework (standard library only, no x/tools) with
// analyzers enforcing the STM runtime's correctness invariants — properties
// the Go toolchain cannot check because they follow from transactional
// re-execution, not the type system.
//
// An Atomic block may run any number of times before it commits, so code
// inside one must be idempotent and must confine shared state to stm.Var
// accesses through the transaction handle. The STM-specific analyzers
// (stmescape, txneffect, roviolation, ctlunits) each guard one such
// invariant. The concurrency-invariant analyzers (atomicmix, determinism,
// noalloc, seqlockproto) guard whole-module properties the runtime's
// correctness rests on but the compiler cannot see: hot words accessed only
// through sync/atomic, schedules that are pure functions of (spec, seed),
// allocation-free fast paths, and the NOrec seqlock read/write protocol.
// See their Doc strings and DESIGN.md's "Static analysis layer" section.
//
// Three source annotations drive the concurrency analyzers:
//
//	//rubic:deterministic  (func doc)  — schedule root for rubic/determinism
//	//rubic:noalloc        (func doc)  — fast path checked by rubic/noalloc
//	//rubic:seqlock        (field doc) — seqlock word for rubic/seqlockproto
//
// Findings can be suppressed with a comment on the flagged line or the line
// directly above it:
//
//	//lint:ignore rubic/<analyzer> <reason>
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer report, locatable and machine-readable.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [rubic/%s]", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name is the short identifier used in reports and suppressions
	// (rubic/<name>).
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects pass.Pkg and reports findings through pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Loader gives cross-package access for call-graph walks: any
	// module-internal package reachable from Pkg is already type-checked and
	// its function bodies are available through it.
	Loader *Loader
	// Shared is per-Run scratch common to every pass of the run. Analyzers
	// needing a module-wide view (atomicmix's field-access index, the
	// seqlock field set, determinism's cross-root dedup) build it once on
	// first use, keyed by analyzer name, instead of once per package.
	Shared map[string]any

	findings *[]Finding
}

// Reportf records a finding at pos.
func (pass *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p := pass.Fset.Position(pos)
	*pass.findings = append(*pass.findings, Finding{
		Analyzer: pass.Analyzer.Name,
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		StmEscape, TxnEffect, ROViolation, CtlUnits,
		AtomicMix, Determinism, NoAlloc, SeqlockProto,
	}
}

// ByName resolves a comma-separated analyzer list ("stmescape,ctlunits");
// an empty spec selects the whole suite.
func ByName(spec string) ([]*Analyzer, error) {
	if strings.TrimSpace(spec) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the packages and returns the surviving
// findings (suppressions applied), in a deterministic order: sorted by
// (file, line, col, analyzer, message), independent of package-load order.
func Run(loader *Loader, pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	shared := map[string]any{}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     loader.Fset,
				Pkg:      pkg,
				Loader:   loader,
				Shared:   shared,
				findings: &findings,
			}
			a.Run(pass)
		}
	}
	findings = filterSuppressed(loader, pkgs, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Identical findings can arrive via overlapping rules; report each once.
	dedup := findings[:0]
	for i, f := range findings {
		if i == 0 || f != findings[i-1] {
			dedup = append(dedup, f)
		}
	}
	return dedup
}

// suppressionKey identifies one suppressed (file, line, analyzer) slot.
type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

// filterSuppressed drops findings covered by a //lint:ignore rubic/<name>
// comment on the same line or the line directly above. The analyzer name
// "all" suppresses the whole suite for that line.
func filterSuppressed(loader *Loader, pkgs []*Package, findings []Finding) []Finding {
	suppressed := map[suppressionKey]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					name, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					p := loader.Fset.Position(c.Pos())
					suppressed[suppressionKey{p.Filename, p.Line, name}] = true
					suppressed[suppressionKey{p.Filename, p.Line + 1, name}] = true
				}
			}
		}
	}
	if len(suppressed) == 0 {
		return findings
	}
	out := findings[:0]
	for _, f := range findings {
		if suppressed[suppressionKey{f.File, f.Line, f.Analyzer}] ||
			suppressed[suppressionKey{f.File, f.Line, "all"}] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// parseIgnore recognizes `//lint:ignore rubic/<name> reason`, requiring a
// non-empty reason like staticcheck does.
func parseIgnore(text string) (analyzer string, ok bool) {
	rest, found := strings.CutPrefix(text, "//lint:ignore ")
	if !found {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 { // directive plus at least one reason word
		return "", false
	}
	name, found := strings.CutPrefix(fields[0], "rubic/")
	if !found {
		return "", false
	}
	return name, true
}
