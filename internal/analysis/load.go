package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one type-checked package: the parsed files plus the go/types
// artifacts the analyzers consume.
type Package struct {
	// Path is the package's import path; packages loaded from outside the
	// module's import graph (e.g. testdata fixtures) get a synthetic path
	// derived from their directory.
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	funcs map[*types.Func]*ast.FuncDecl // lazily built declaration index
}

// Loader parses and type-checks packages of one module using only the
// standard library: go/parser for syntax, go/types for semantics, and the
// go/importer source importer for out-of-module (standard library)
// dependencies. Module-internal imports are resolved against the module root
// so that testdata fixtures and the real tree see the same stm/core types.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package // by cleaned absolute directory
	byTypes map[*types.Package]*Package
	loading map[string]bool
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewLoader returns a Loader rooted at the module containing dir (dir itself
// or the nearest parent with a go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	mod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := moduleRe.FindSubmatch(mod)
	if m == nil {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: string(m[1]),
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		byTypes:    map[*types.Package]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// Import implements types.Importer: module-internal paths load from source
// under the module root; everything else (the standard library) goes through
// the go/importer source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.moduleRel(path); ok {
		pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot, rel))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// moduleRel maps a module-internal import path to a root-relative directory.
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.ModulePath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.FromSlash(rest), true
	}
	return "", false
}

// LoadDir parses and type-checks the package in dir (non-test files only),
// memoized per directory.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	abs = filepath.Clean(abs)
	if pkg, ok := l.pkgs[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("analysis: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", abs)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(l.importPathFor(abs), l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", abs, typeErrs[0])
	}
	pkg := &Package{
		Path:  l.importPathFor(abs),
		Dir:   abs,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[abs] = pkg
	l.byTypes[tpkg] = pkg
	return pkg, nil
}

// Packages returns every package this loader has type-checked so far
// (module-internal packages and explicitly loaded fixture trees; standard
// library imports go through the source importer and are not included),
// sorted by import path so module-wide index construction is deterministic.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// importPathFor derives the import path of a directory: the module path plus
// the root-relative directory when inside the module's import graph, or a
// synthetic slash path otherwise (testdata trees, which the go tool ignores).
func (l *Loader) importPathFor(abs string) string {
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(abs)
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// funcDecl returns the syntax of a function or method declared in any
// package this loader has type-checked, or nil for functions whose source is
// out of reach (standard library, interface methods, func literals).
func (l *Loader) funcDecl(fn *types.Func) (*ast.FuncDecl, *Package) {
	pkg := l.byTypes[fn.Pkg()]
	if pkg == nil {
		return nil, nil
	}
	if pkg.funcs == nil {
		pkg.funcs = map[*types.Func]*ast.FuncDecl{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					pkg.funcs[obj] = fd
				}
			}
		}
	}
	return pkg.funcs[fn], pkg
}

// ExpandPatterns resolves go-tool-style package patterns (a directory, or a
// `dir/...` subtree) into package directories. Like the go tool it skips
// testdata, vendor and hidden directories when expanding `...`; naming a
// testdata directory explicitly still works, which is how the fixture tests
// load their seeded violations.
func ExpandPatterns(base string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if pat == "" {
			continue
		}
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, root)
		}
		if !recursive {
			if ok, err := hasGoFiles(root); err != nil {
				return nil, err
			} else if !ok {
				return nil, fmt.Errorf("analysis: no Go files in %s", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if ok, err := hasGoFiles(path); err != nil {
				return err
			} else if ok {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true, nil
		}
	}
	return false, nil
}
