package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SeqlockProto verifies the NOrec sequence-lock protocol at every use site
// of a word annotated //rubic:seqlock. The seqlock is correct only when
// every participant plays its role exactly: readers sample the sequence,
// read, and re-check (retrying on change or an odd value); writers acquire
// with CompareAndSwap(s, s+1) and release with Store(s+2). A load whose
// result is never compared, or a bare Store, silently breaks the
// serialization the whole value-log validation scheme rests on — and no
// test catches it until a torn read actually fires. Per function the
// analyzer requires:
//
//   - every Load's result reaches an odd-test (s&1) or an ==/!= re-check,
//     either directly or through the variable it is assigned to;
//   - Store appears only alongside a CompareAndSwap acquire in the same
//     function, and vice versa;
//   - Add and Swap never touch the word (they skip the odd "locked" state).
//
// Known false negatives: load results laundered through struct fields,
// channels or function returns before the check (the analyzer tracks only
// direct uses and single-assignment locals), and protocol roles split
// across functions that the same-function pairing rule cannot see.
var SeqlockProto = &Analyzer{
	Name: "seqlockproto",
	Doc: "verifies the seqlock read protocol (load, read, re-check with " +
		"odd-value retry) and writer pairing (CAS acquire + Store release) " +
		"at every use of a field annotated //rubic:seqlock",
	Run: runSeqlockProto,
}

// seqUseKind classifies one touch of a seqlock word.
type seqUseKind int

const (
	seqLoad seqUseKind = iota
	seqStore
	seqCAS
	seqAdd
	seqSwap
)

func runSeqlockProto(pass *Pass) {
	words := seqlockWords(pass)
	if len(words) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSeqlockFunc(pass, fd, words)
			}
		}
	}
}

// seqlockWords collects, once per Run, every //rubic:seqlock-annotated field
// in every package the loader knows, so fixture packages and the real module
// resolve their own words identically.
func seqlockWords(pass *Pass) map[*types.Var]bool {
	if w, ok := pass.Shared["seqlockproto.words"].(map[*types.Var]bool); ok {
		return w
	}
	words := map[*types.Var]bool{}
	for _, pkg := range pass.Loader.Packages() {
		for _, v := range fieldsWithDirective(pkg, directiveSeqlock) {
			words[v] = true
		}
	}
	pass.Shared["seqlockproto.words"] = words
	return words
}

// seqUse is one classified touch of a seqlock word inside a function.
type seqUse struct {
	kind seqUseKind
	call *ast.CallExpr
	word *types.Var
}

func checkSeqlockFunc(pass *Pass, fd *ast.FuncDecl, words map[*types.Var]bool) {
	info := pass.Pkg.Info
	var uses []seqUse

	// checkedCalls are load calls whose value feeds an odd-test or comparison
	// directly; checkedVars are locals that do so.
	checkedCalls := map[*ast.CallExpr]bool{}
	checkedVars := map[*types.Var]bool{}
	// assignedTo maps a load call to the local its value lands in.
	assignedTo := map[*ast.CallExpr]*types.Var{}

	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if kind, word, ok := classifySeqUse(info, n, words); ok {
				uses = append(uses, seqUse{kind: kind, call: n, word: word})
				if kind == seqLoad {
					if v := singleAssignTarget(info, n, stack); v != nil {
						assignedTo[n] = v
					}
				}
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.AND, token.EQL, token.NEQ:
				for _, op := range []ast.Expr{n.X, n.Y} {
					op = unparen(op)
					if call, ok := op.(*ast.CallExpr); ok {
						checkedCalls[call] = true
					}
					if id, ok := op.(*ast.Ident); ok {
						if v, ok := info.Uses[id].(*types.Var); ok {
							checkedVars[v] = true
						}
					}
				}
			}
		}
		return true
	})

	var haveCAS, haveStore []seqUse
	for _, u := range uses {
		switch u.kind {
		case seqCAS:
			haveCAS = append(haveCAS, u)
		case seqStore:
			haveStore = append(haveStore, u)
		}
	}
	for _, u := range uses {
		switch u.kind {
		case seqLoad:
			if checkedCalls[u.call] {
				continue
			}
			if v := assignedTo[u.call]; v != nil && checkedVars[v] {
				continue
			}
			pass.Reportf(u.call.Pos(),
				"seqlock load of %s is never re-checked: readers must odd-test (s&1) or compare (==/!=) the loaded sequence and retry on change",
				u.word.Name())
		case seqStore:
			if len(haveCAS) == 0 {
				pass.Reportf(u.call.Pos(),
					"Store on seqlock word %s without a CompareAndSwap acquire in the same function: a blind release breaks writer mutual exclusion",
					u.word.Name())
			}
		case seqCAS:
			if len(haveStore) == 0 {
				pass.Reportf(u.call.Pos(),
					"CompareAndSwap on seqlock word %s without a Store release in the same function: the word is left odd and readers spin forever",
					u.word.Name())
			}
		case seqAdd, seqSwap:
			pass.Reportf(u.call.Pos(),
				"%s on seqlock word %s: writers must acquire with CompareAndSwap(s, s+1) and release with Store(s+2)",
				seqKindName(u.kind), u.word.Name())
		}
	}
}

// classifySeqUse recognizes the two syntactic forms of a seqlock touch:
// a method call on an annotated field of an atomic wrapper type
// (state.seq.Load()), and a sync/atomic function taking the annotated
// field's address (atomic.LoadUint64(&state.seq)).
func classifySeqUse(info *types.Info, call *ast.CallExpr, words map[*types.Var]bool) (seqUseKind, *types.Var, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, nil, false
	}
	// Method form: receiver is the annotated field.
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if v, _ := addressedWord(info, sel.X); v != nil && words[v] {
			if kind, ok := seqKindOf(sel.Sel.Name); ok {
				return kind, v, true
			}
		}
		return 0, nil, false
	}
	// Function form: sync/atomic.XxxUint64(&word, ...).
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
		return 0, nil, false
	}
	un, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return 0, nil, false
	}
	v, _ := addressedWord(info, un.X)
	if v == nil || !words[v] {
		return 0, nil, false
	}
	name := fn.Name()
	switch {
	case strings.HasPrefix(name, "CompareAndSwap"):
		return seqCAS, v, true
	case strings.HasPrefix(name, "Load"):
		return seqLoad, v, true
	case strings.HasPrefix(name, "Store"):
		return seqStore, v, true
	case strings.HasPrefix(name, "Add"):
		return seqAdd, v, true
	case strings.HasPrefix(name, "Swap"):
		return seqSwap, v, true
	}
	return 0, nil, false
}

// seqKindOf maps an atomic wrapper method name to a use kind.
func seqKindOf(method string) (seqUseKind, bool) {
	switch method {
	case "Load":
		return seqLoad, true
	case "Store":
		return seqStore, true
	case "Add":
		return seqAdd, true
	case "Swap":
		return seqSwap, true
	case "CompareAndSwap":
		return seqCAS, true
	}
	return 0, false
}

func seqKindName(k seqUseKind) string {
	switch k {
	case seqAdd:
		return "Add"
	case seqSwap:
		return "Swap"
	}
	return "use"
}

// singleAssignTarget returns the local variable a call's single value is
// assigned to (s := seq.Load(), or s = seq.Load()), nil for any other
// consuming context.
func singleAssignTarget(info *types.Info, call *ast.CallExpr, stack []ast.Node) *types.Var {
	if len(stack) == 0 {
		return nil
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(as.Rhs) != len(as.Lhs) {
		return nil
	}
	for i, rhs := range as.Rhs {
		if unparen(rhs) != ast.Node(call) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			return nil
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
