// Package blinkseqlock seeds protocol violations in a miniature B-Link node
// for the rubic/seqlockproto (and rubic/noalloc) fixture test: the shape
// mirrors internal/stm/container/blink's node — a per-node version word
// guarding optimistically read entries — so analyzer regressions that would
// let real blink bugs through are caught here.
package blinkseqlock

import "sync/atomic"

const order = 8

type node struct {
	// ver is the node's seqlock: odd while a writer mutates entries.
	//
	//rubic:seqlock
	ver atomic.Uint64

	n    atomic.Int32
	high atomic.Int64
	next atomic.Pointer[node]
	keys [order]atomic.Int64
}

// goodGet is the blink reader protocol: sample even, read entries, re-check.
func (nd *node) goodGet(key int64) (int64, bool) {
	for {
		v1 := nd.ver.Load()
		if v1&1 != 0 {
			continue
		}
		n := int(nd.n.Load())
		var found int64
		ok := false
		for i := 0; i < n && i < order; i++ {
			if nd.keys[i].Load() == key {
				found, ok = key, true
			}
		}
		if nd.ver.Load() == v1 {
			return found, ok
		}
	}
}

// goodInsert pairs the latch CAS with its Store release.
func (nd *node) goodInsert(key int64) {
	for {
		v1 := nd.ver.Load()
		if v1&1 != 0 {
			continue
		}
		if !nd.ver.CompareAndSwap(v1, v1+1) {
			continue
		}
		n := nd.n.Load()
		nd.keys[n].Store(key)
		nd.n.Store(n + 1)
		nd.ver.Store(v1 + 2)
		return
	}
}

// badDescend samples the version but never validates the entries it read —
// a descent that can act on a torn node.
func (nd *node) badDescend(key int64) int64 {
	_ = nd.ver.Load() // want "never re-checked"
	if key >= nd.high.Load() {
		return -1
	}
	return nd.keys[0].Load()
}

// badUnlatch releases a latch it never acquired: a reader that raced the
// real writer would observe the version going backwards.
func (nd *node) badUnlatch() {
	nd.ver.Store(0) // want "without a CompareAndSwap acquire"
}

// badLatch acquires the latch and leaks it: every future reader spins.
func (nd *node) badLatch() bool {
	return nd.ver.CompareAndSwap(0, 1) // want "without a Store release"
}

// badSplit bumps the version without ever exposing the odd writer-active
// state, so concurrent readers can consume a half-built split.
func (nd *node) badSplit() {
	nd.ver.Add(2) // want "Add on seqlock word ver"
}

// badAllocDescend claims the reader fast path's no-allocation guarantee and
// then heap-allocates the result set.
//
//rubic:noalloc
func (nd *node) badAllocDescend() []int64 {
	out := make([]int64, 0, order) // want "allocates"
	for i := 0; i < order; i++ {
		out = append(out, nd.keys[i].Load())
	}
	return out
}
