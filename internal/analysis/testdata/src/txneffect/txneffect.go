// Package txneffect seeds violations for the txneffect analyzer:
// non-idempotent side effects inside atomic blocks.
package txneffect

import (
	"fmt"
	"sync"
	"time"

	"rubic/internal/stm"
)

func channelSend(rt *stm.Runtime, v *stm.Var[int], ch chan int) {
	_ = rt.Atomic(func(tx *stm.Tx) error {
		ch <- v.Read(tx) // want "channel send inside an atomic block"
		return nil
	})
}

func channelReceive(rt *stm.Runtime, v *stm.Var[int], ch chan int) {
	_ = rt.Atomic(func(tx *stm.Tx) error {
		v.Write(tx, <-ch) // want "channel receive inside an atomic block"
		return nil
	})
}

func sleeper(rt *stm.Runtime, v *stm.Var[int]) {
	_ = rt.Atomic(func(tx *stm.Tx) error {
		time.Sleep(time.Millisecond) // want "time.Sleep inside an atomic block"
		v.Write(tx, 1)
		return nil
	})
}

func locker(rt *stm.Runtime, v *stm.Var[int], mu *sync.Mutex) {
	_ = rt.Atomic(func(tx *stm.Tx) error {
		mu.Lock()         // want "sync.Lock inside an atomic block"
		defer mu.Unlock() // want "sync.Unlock inside an atomic block"
		v.Write(tx, 1)
		return nil
	})
}

func printer(rt *stm.Runtime, v *stm.Var[int]) {
	_ = rt.AtomicRO(func(tx *stm.Tx) error {
		fmt.Println(v.Read(tx)) // want "fmt.Println inside an atomic block"
		return nil
	})
}

func accumulator(rt *stm.Runtime, v *stm.Var[int]) int {
	total := 0
	_ = rt.Atomic(func(tx *stm.Tx) error {
		total += v.Read(tx) // want "compound assignment to captured variable total"
		return nil
	})
	return total
}

func counter(rt *stm.Runtime, v *stm.Var[int]) int {
	n := 0
	_ = rt.Atomic(func(tx *stm.Tx) error {
		n++ // want "captured variable n accumulates across retries"
		v.Write(tx, n)
		return nil
	})
	return n
}

func appender(rt *stm.Runtime, v *stm.Var[int]) []int {
	var seen []int
	_ = rt.AtomicRO(func(tx *stm.Tx) error {
		seen = append(seen, v.Read(tx)) // want "append to captured variable seen"
		return nil
	})
	return seen
}

// negative: a plain overwrite of a captured variable is idempotent — it is
// the idiomatic way to pass a result out of an atomic block.
func resultOut(rt *stm.Runtime, v *stm.Var[int]) int {
	var out int
	_ = rt.AtomicRO(func(tx *stm.Tx) error {
		out = v.Read(tx)
		return nil
	})
	return out
}

// negative: accumulation into a variable declared inside the block restarts
// from scratch on every retry.
func localAccumulation(rt *stm.Runtime, a, b *stm.Var[int], sum *stm.Var[int]) {
	_ = rt.Atomic(func(tx *stm.Tx) error {
		total := 0
		total += a.Read(tx)
		total += b.Read(tx)
		sum.Write(tx, total)
		return nil
	})
}

// negative: effects after the atomic block returns are safe.
func effectAfter(rt *stm.Runtime, v *stm.Var[int], ch chan int) {
	var out int
	_ = rt.AtomicRO(func(tx *stm.Tx) error {
		out = v.Read(tx)
		return nil
	})
	ch <- out
	time.Sleep(time.Millisecond)
}

// negative: a justified suppression silences the finding.
func suppressedEffect(rt *stm.Runtime, v *stm.Var[int]) {
	_ = rt.Atomic(func(tx *stm.Tx) error {
		//lint:ignore rubic/txneffect fixture exercising suppression
		time.Sleep(time.Microsecond)
		v.Write(tx, 2)
		return nil
	})
}
