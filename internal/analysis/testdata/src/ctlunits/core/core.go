// Package core seeds ctlunits violations specific to the controller layer:
// in a package named core every non-zero duration literal outside a const
// declaration must be hoisted into a named constant.
package core

import "time"

// DefaultPeriod is the canonical tick; const declarations are the one place
// literals belong.
const DefaultPeriod = 10 * time.Millisecond

type tuner struct {
	Period time.Duration
}

func (t *tuner) defaults() {
	if t.Period <= 0 {
		t.Period = 15 * time.Millisecond // want "raw duration literal assigned to Period"
	}
}

func settleDeadline() time.Duration {
	return 150 * time.Millisecond // want "raw duration literal in the controller layer"
}

func warmup() time.Duration {
	d := time.Duration(float64(time.Second) * 0.5) // want "raw duration literal in the controller layer"
	return d
}

// negative: durations derived from the canonical constant.
func cooldown() time.Duration {
	return 3 * DefaultPeriod
}

// negative: zero carries no unit.
func isZero(d time.Duration) bool {
	return d == 0
}
