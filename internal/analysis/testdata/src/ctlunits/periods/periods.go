// Package periods seeds violations for the ctlunits analyzer: raw duration
// literals flowing into controller periods, and commit-rate arithmetic
// mixing per-tick with per-second units.
package periods

import (
	"flag"
	"time"

	"rubic/internal/core"
)

type tunerConfig struct {
	Period time.Duration
}

func literalAssign(cfg *tunerConfig) {
	cfg.Period = 10 * time.Millisecond // want "raw duration literal assigned to Period"
}

func literalComposite() tunerConfig {
	return tunerConfig{
		Period: 15 * time.Millisecond, // want "raw duration literal for Period"
	}
}

func literalFlagDefault(fs *flag.FlagSet, cfg *tunerConfig) {
	fs.DurationVar(&cfg.Period, "period", 10*time.Millisecond, "controller period") // want "flag default"
}

func mixedAddition(commitsPerTick, ratePerSec float64) float64 {
	return commitsPerTick + ratePerSec // want "mixes per-tick and per-second"
}

func mixedComparison(commitsPerTick, targetPerSec float64) bool {
	return commitsPerTick < targetPerSec // want "mixes per-tick and per-second"
}

// negative: the canonical constant is the required spelling.
func constantAssign(cfg *tunerConfig) {
	cfg.Period = core.DefaultPeriod
}

// negative: durations derived from the canonical constants carry the unit.
func derivedComposite() tunerConfig {
	return tunerConfig{Period: 2 * core.DefaultPeriod}
}

// negative: multiplying by a tick rate is the conversion between the units.
func converted(commitsPerTick float64, ticksPerSec float64) float64 {
	ratePerSec := commitsPerTick * ticksPerSec
	return ratePerSec
}

// negative: zero comparisons carry no unit.
func zeroCheck(cfg *tunerConfig) bool {
	return cfg.Period <= 0
}

// negative: a justified suppression silences the finding.
func suppressedPeriod(cfg *tunerConfig) {
	//lint:ignore rubic/ctlunits fixture exercising suppression
	cfg.Period = 25 * time.Millisecond
}
