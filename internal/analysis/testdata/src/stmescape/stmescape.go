// Package stmescape seeds violations for the stmescape analyzer: every
// `want` comment marks a line the analyzer must flag, and the remaining
// cases must stay silent.
package stmescape

import "rubic/internal/stm"

type holder struct {
	tx *stm.Tx
}

var globalTx *stm.Tx

var txCh = make(chan *stm.Tx, 1)

func fieldEscape(rt *stm.Runtime, h *holder) {
	_ = rt.Atomic(func(tx *stm.Tx) error {
		h.tx = tx // want "stored in struct field"
		return nil
	})
}

func globalEscape(rt *stm.Runtime) {
	_ = rt.Atomic(func(tx *stm.Tx) error {
		globalTx = tx // want "stored in package-level variable"
		return nil
	})
}

func channelEscape(rt *stm.Runtime) {
	_ = rt.Atomic(func(tx *stm.Tx) error {
		txCh <- tx // want "sent on a channel"
		return nil
	})
}

func goEscape(rt *stm.Runtime, v *stm.Var[int]) {
	_ = rt.AtomicRO(func(tx *stm.Tx) error {
		go func() { // want "captured by a go statement"
			_ = v.Read(tx)
		}()
		return nil
	})
}

func capturedEscape(rt *stm.Runtime) func() *stm.Tx {
	var leaked *stm.Tx
	_ = rt.Atomic(func(tx *stm.Tx) error {
		leaked = tx // want "stored in captured variable"
		return nil
	})
	return func() *stm.Tx { return leaked }
}

// negative: a local alias that dies with the attempt does not escape.
func localAlias(rt *stm.Runtime, v *stm.Var[int]) {
	_ = rt.Atomic(func(tx *stm.Tx) error {
		t := tx
		v.Write(t, v.Read(t)+1)
		return nil
	})
}

// negative: passing tx down to helpers is the intended composition style.
func helperUse(rt *stm.Runtime, v *stm.Var[int]) {
	_ = rt.Atomic(func(tx *stm.Tx) error {
		bump(tx, v)
		return nil
	})
}

func bump(tx *stm.Tx, v *stm.Var[int]) {
	v.Write(tx, v.Read(tx)+1)
}

// negative: a justified suppression silences the finding.
func suppressedEscape(rt *stm.Runtime, h *holder) {
	_ = rt.Atomic(func(tx *stm.Tx) error {
		//lint:ignore rubic/stmescape fixture exercising suppression
		h.tx = tx
		return nil
	})
}
