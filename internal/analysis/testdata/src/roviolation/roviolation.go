// Package roviolation seeds violations for the roviolation analyzer:
// transactional writes reachable from read-only atomic blocks, directly and
// through helper functions.
package roviolation

import "rubic/internal/stm"

func directWrite(rt *stm.Runtime, v *stm.Var[int]) {
	_ = rt.AtomicRO(func(tx *stm.Tx) error {
		v.Write(tx, 1) // want "Var.Write inside an AtomicRO block"
		return nil
	})
}

func helperWrite(rt *stm.Runtime, v *stm.Var[int]) {
	_ = rt.AtomicRO(func(tx *stm.Tx) error {
		setOne(tx, v) // want "setOne writes transactionally"
		return nil
	})
}

func nestedHelperWrite(rt *stm.Runtime, v *stm.Var[int]) {
	_ = rt.AtomicRO(func(tx *stm.Tx) error {
		resetThrough(tx, v) // want "resetThrough writes transactionally"
		return nil
	})
}

func setOne(tx *stm.Tx, v *stm.Var[int]) {
	v.Write(tx, 1)
}

// resetThrough only reaches Var.Write two calls deep; the analyzer's
// call-graph walk must still see it.
func resetThrough(tx *stm.Tx, v *stm.Var[int]) {
	if v.Read(tx) != 0 {
		setOne(tx, v)
	}
}

func sum(tx *stm.Tx, a, b *stm.Var[int]) int {
	return a.Read(tx) + b.Read(tx)
}

// negative: read-only helpers are what AtomicRO is for.
func readOnlyHelper(rt *stm.Runtime, a, b *stm.Var[int]) int {
	var out int
	_ = rt.AtomicRO(func(tx *stm.Tx) error {
		out = sum(tx, a, b)
		return nil
	})
	return out
}

// negative: the same writing helpers are fine inside a read-write block.
func writeInRW(rt *stm.Runtime, v *stm.Var[int]) {
	_ = rt.Atomic(func(tx *stm.Tx) error {
		setOne(tx, v)
		resetThrough(tx, v)
		v.Write(tx, 2)
		return nil
	})
}

// negative: a justified suppression silences the finding.
func suppressedWrite(rt *stm.Runtime, v *stm.Var[int]) {
	_ = rt.AtomicRO(func(tx *stm.Tx) error {
		//lint:ignore rubic/roviolation fixture exercising suppression
		setOne(tx, v)
		return nil
	})
}
