// Package atomicmix seeds mixed atomic/plain accesses for the rubic/atomicmix
// fixture test: every seeded violation carries a // want annotation.
package atomicmix

import "sync/atomic"

// stats is shared between a recording goroutine and snapshot readers.
type stats struct {
	hits   uint64
	misses uint64
}

// dropped is a package-level word bumped atomically on the hot path.
var dropped uint64

func (s *stats) record(hit bool) {
	if hit {
		atomic.AddUint64(&s.hits, 1)
		return
	}
	atomic.AddUint64(&s.misses, 1)
}

func (s *stats) snapshot() uint64 {
	return s.hits // want "plain access of hits"
}

func (s *stats) reset() {
	s.hits = 0 // want "plain access of hits"
}

func drop() {
	atomic.AddUint64(&dropped, 1)
}

func droppedNow() uint64 {
	return dropped // want "plain access of dropped"
}

// gauge exercises the wrapper-copy rules.
type gauge struct {
	v   atomic.Uint64
	arr [4]atomic.Int64
}

func (g *gauge) load() uint64 { return g.v.Load() } // method receiver: fine

func (g *gauge) addr() *atomic.Uint64 { return &g.v } // address taken: fine

func (g *gauge) copyOut() atomic.Uint64 {
	return g.v // want "atomic field v copied by value"
}

func (g *gauge) sum() int64 {
	var t int64
	for _, e := range g.arr { // want "range value copies"
		t += e.Load()
	}
	return t
}

func (g *gauge) sumByIndex() int64 {
	var t int64
	for i := range g.arr {
		t += g.arr[i].Load() // index + method: fine
	}
	return t
}

func (s *stats) teardownTotal() uint64 {
	//lint:ignore rubic/atomicmix single-threaded teardown; all recorders have joined
	return s.misses
}
