// Package seqlockproto seeds sequence-lock protocol violations for the
// rubic/seqlockproto fixture test. state uses the typed-atomic method form;
// legacy uses sync/atomic functions on a plain word.
package seqlockproto

import "sync/atomic"

type state struct {
	// seq serializes write-back against optimistic readers: odd while a
	// writer is publishing.
	//
	//rubic:seqlock
	seq atomic.Uint64

	val atomic.Uint64
}

// goodRead follows the protocol: sample even, read, re-check.
func (s *state) goodRead() uint64 {
	for {
		s1 := s.seq.Load()
		if s1&1 != 0 {
			continue
		}
		v := s.val.Load()
		if s.seq.Load() == s1 {
			return v
		}
	}
}

// goodWrite pairs the CAS acquire with the Store release.
func (s *state) goodWrite(v uint64) {
	for {
		s1 := s.seq.Load()
		if s1&1 != 0 {
			continue
		}
		if !s.seq.CompareAndSwap(s1, s1+1) {
			continue
		}
		s.val.Store(v)
		s.seq.Store(s1 + 2)
		return
	}
}

// badRead samples the sequence but never re-checks it.
func (s *state) badRead() uint64 {
	_ = s.seq.Load() // want "never re-checked"
	return s.val.Load()
}

// badRelease releases without having acquired.
func (s *state) badRelease() {
	s.seq.Store(2) // want "without a CompareAndSwap acquire"
}

// badAcquire locks and forgets to release: readers spin forever.
func (s *state) badAcquire() bool {
	return s.seq.CompareAndSwap(0, 1) // want "without a Store release"
}

// badBump skips the odd writer-active state entirely.
func (s *state) badBump() {
	s.seq.Add(2) // want "Add on seqlock word seq"
}

// reset documents an accepted exception: it runs before any reader starts.
func (s *state) reset() {
	//lint:ignore rubic/seqlockproto construction-time reset precedes all readers
	s.seq.Store(0)
	s.val.Store(0)
}

// legacy drives the word through sync/atomic package functions.
type legacy struct {
	//rubic:seqlock
	seq uint64
	val uint64
}

func (l *legacy) read() uint64 {
	for {
		s1 := atomic.LoadUint64(&l.seq)
		if s1&1 != 0 {
			continue
		}
		v := atomic.LoadUint64(&l.val)
		if atomic.LoadUint64(&l.seq) == s1 {
			return v
		}
	}
}

func (l *legacy) bad() {
	atomic.SwapUint64(&l.seq, 4) // want "Swap on seqlock word seq"
}
