// Package annotated seeds nondeterminism reachable from //rubic:deterministic
// roots for the rubic/determinism fixture test.
package annotated

import (
	"math/rand"
	"time"
)

type spec struct {
	weights map[string]int
	seed    uint64
}

// Plan derives an injection schedule from spec; the contract is that the
// same spec always yields the same schedule.
//
//rubic:deterministic
func Plan(s spec) []int {
	out := make([]int, 0, 8)
	for name := range s.weights { // want "map iteration"
		out = append(out, len(name))
	}
	return append(out, jitter(s.seed))
}

// jitter is only reached through Plan; the findings report that path.
func jitter(seed uint64) int {
	if seed == 0 {
		return int(time.Now().UnixNano() % 8) // want "time.Now .*Plan -> jitter"
	}
	return rand.Intn(8) // want "math/rand.Intn .*Plan -> jitter"
}

// pick chooses between two schedule sources.
//
//rubic:deterministic
func pick(a, b <-chan int) int {
	select { // want "select .*scheduler-bound"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// seeded documents an accepted exception: the source is seed-derived, so the
// sequence is reproducible even though it lives in math/rand.
//
//rubic:deterministic
func seeded(seed int64) int64 {
	//lint:ignore rubic/determinism seed-derived source is reproducible; rng.Stream migration tracked
	return rand.NewSource(seed).Int63()
}

// pure is a root with nothing to report.
//
//rubic:deterministic
func pure(seed uint64) uint64 {
	seed ^= seed << 13
	seed ^= seed >> 7
	return seed
}
