// Package fault mirrors the real chaos package's shape so the rubic/determinism
// built-in root registry (package fault, func PlanFor) picks PlanFor up as a
// schedule root without any annotation.
package fault

import (
	"os"
	"runtime"
	"time"
)

// Plan is one stack's fault schedule.
type Plan struct {
	Seed  int64
	Ticks []int64
}

var defaults = []int64{1, 2, 3}

// PlanFor matches the registry: no //rubic:deterministic needed.
func PlanFor(scenario string, seed int64) *Plan {
	p := &Plan{Seed: seed}
	switch scenario {
	case "jitter":
		p.Ticks = append(p.Ticks, time.Now().UnixNano()) // want "time.Now .*PlanFor"
	case "host":
		p.Ticks = append(p.Ticks, int64(runtime.NumCPU())) // want "runtime.NumCPU .*PlanFor"
	case "env":
		if os.Getenv("FAULT_TICK") != "" { // want "os.Getenv .*PlanFor"
			p.Ticks = append(p.Ticks, 1)
		}
	}
	for _, t := range defaults { // slice iteration: fine
		p.Ticks = append(p.Ticks, t)
	}
	return p
}

// helper is NOT a root (wrong name), so its clock read is unreported.
func helper() int64 { return time.Now().UnixNano() }
