// Package noalloc seeds allocation sites in //rubic:noalloc bodies for the
// rubic/noalloc fixture test.
package noalloc

type entry struct{ k, v uint64 }

// record grows a log on what claims to be an allocation-free path.
//
//rubic:noalloc
func record(buf []uint64, v uint64) []uint64 {
	return append(buf, v) // want "append may grow"
}

//rubic:noalloc
func index(m map[string]int, k string) {
	m[k] = len(k) // want "map write may allocate"
}

//rubic:noalloc
func fresh(n int) []int {
	return make([]int, n) // want "make allocates"
}

//rubic:noalloc
func describe(id int, name string) string {
	return name + suffix(id) // want "string concatenation allocates"
}

func suffix(int) string { return "x" }

//rubic:noalloc
func boxed(e entry) any {
	return e // want "boxing .*entry into interface result"
}

//rubic:noalloc
func escape() *entry {
	return &entry{k: 1} // want "composite literal escapes"
}

//rubic:noalloc
func deferred(n int) func() int {
	return func() int { return n } // want "func literal captures"
}

// reuse documents an accepted exception: the caller pre-sizes the buffer.
//
//rubic:noalloc
func reuse(scratch []uint64, v uint64) []uint64 {
	//lint:ignore rubic/noalloc scratch capacity is pre-sized by the caller
	return append(scratch, v)
}

// clean is annotated and genuinely allocation-free.
//
//rubic:noalloc
func clean(buf []uint64) uint64 {
	var t uint64
	for _, v := range buf {
		t += v
	}
	return t
}

// unannotated may allocate freely.
func unannotated() []int { return make([]int, 8) }
