package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism proves schedule purity. The chaos layer's fault plans, the
// open-loop arrival schedules and the rng streams all promise the same
// contract: a schedule is a pure function of (spec, seed), so the same
// scenario@seed replays identically — the property the differential and
// serializability oracles, the seeded chaos soaks and the benchmark
// snapshots all rest on. The analyzer walks the static call graph from
// every declared schedule root — functions annotated //rubic:deterministic,
// plus a built-in registry (fault.PlanFor, load.NewArrival, rng.NewStream) —
// and reports, with the offending call path, anything on the way that could
// make two runs differ:
//
//   - wall-clock reads (time.Now/Since/Until, timer constructors);
//   - global or unseeded randomness (anything in math/rand, math/rand/v2);
//   - goroutine- or host-dependent state (runtime.NumCPU, NumGoroutine,
//     GOMAXPROCS; select statements, whose case choice is scheduler-bound);
//   - map iteration, whose order differs per run, in any reachable body.
//
// Known false negatives: dynamic calls (function values, interface
// methods), callees outside the module's source (their bodies are not
// loaded), and nondeterminism threaded through mutable shared state rather
// than calls.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "reports wall-clock reads, math/rand use, map iteration, select " +
		"statements and host-dependent state reachable from declared " +
		"pure-schedule roots (//rubic:deterministic + root registry)",
	Run: runDeterminism,
}

// deterministicRoots is the built-in root registry: exported schedule
// constructors that must be deterministic even without an annotation.
// Matched by (package name, function name) so the fixture universe and the
// real module resolve identically.
var deterministicRoots = []struct{ pkg, fn string }{
	{"fault", "PlanFor"},
	{"load", "NewArrival"},
	{"rng", "NewStream"},
}

// nondetFuncs are the individually deny-listed stdlib functions.
var nondetFuncs = map[string]string{
	"time.Now":             "reads the wall clock",
	"time.Since":           "reads the wall clock",
	"time.Until":           "reads the wall clock",
	"time.After":           "starts a wall-clock timer",
	"time.Tick":            "starts a wall-clock timer",
	"time.NewTimer":        "starts a wall-clock timer",
	"time.NewTicker":       "starts a wall-clock timer",
	"runtime.NumCPU":       "depends on the host",
	"runtime.NumGoroutine": "depends on scheduler state",
	"runtime.GOMAXPROCS":   "depends on host configuration",
	"os.Getenv":            "reads the environment",
}

func runDeterminism(pass *Pass) {
	reported, _ := pass.Shared["determinism.reported"].(map[token.Pos]bool)
	if reported == nil {
		reported = map[token.Pos]bool{}
		pass.Shared["determinism.reported"] = reported
	}
	w := &determinismWalker{pass: pass, reported: reported}
	for _, root := range determinismRootDecls(pass.Pkg) {
		fn, _ := pass.Pkg.Info.Defs[root.Name].(*types.Func)
		if fn == nil {
			continue
		}
		w.visited = map[*types.Func]bool{fn: true}
		w.walk(root.Body, pass.Pkg, []string{fn.Name()})
	}
}

// determinismRootDecls collects the schedule roots declared in pkg:
// annotated functions plus registry matches, in source order.
func determinismRootDecls(pkg *Package) []*ast.FuncDecl {
	roots := funcsWithDirective(pkg, directiveDeterministic)
	seen := map[*ast.FuncDecl]bool{}
	for _, r := range roots {
		seen[r] = true
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil || seen[fd] {
				continue
			}
			for _, reg := range deterministicRoots {
				if pkg.Types.Name() == reg.pkg && fd.Name.Name == reg.fn {
					roots = append(roots, fd)
					seen[fd] = true
				}
			}
		}
	}
	return roots
}

// determinismWalker performs the depth-first call-graph walk, carrying the
// path from the root for the report and a per-root visited set for cycle
// safety. The cross-pass reported set keeps one finding per offending
// position when several roots reach it.
type determinismWalker struct {
	pass     *Pass
	reported map[token.Pos]bool
	visited  map[*types.Func]bool
}

func (w *determinismWalker) report(pos token.Pos, path []string, what string) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(pos, "%s on deterministic-schedule path %s: schedules must be pure functions of (spec, seed)",
		what, strings.Join(path, " -> "))
}

// walk inspects one function body in its owning package, recursing into
// statically resolvable module-internal callees.
func (w *determinismWalker) walk(body ast.Node, pkg *Package, path []string) {
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			qual := fn.Pkg().Path() + "." + fn.Name()
			if why, ok := nondetFuncs[qual]; ok {
				w.report(n.Pos(), append(path, fn.Name()), fn.Pkg().Name()+"."+fn.Name()+" ("+why+")")
				return true
			}
			if p := fn.Pkg().Path(); p == "math/rand" || p == "math/rand/v2" {
				w.report(n.Pos(), append(path, fn.Name()),
					"math/rand."+fn.Name()+" (global or unseeded randomness; use rng.Stream)")
				return true
			}
			if w.visited[fn] {
				return true
			}
			decl, dpkg := w.pass.Loader.funcDecl(fn)
			if decl == nil || decl.Body == nil {
				return true
			}
			w.visited[fn] = true
			w.walk(decl.Body, dpkg, append(path, fn.Name()))
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					w.report(n.Pos(), path, "map iteration (order differs per run)")
				}
			}
		case *ast.SelectStmt:
			w.report(n.Pos(), path, "select (case choice is scheduler-bound)")
		}
		return true
	})
}
