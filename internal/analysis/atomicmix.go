package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix flags mixed atomic/plain access to shared words. The repo's hot
// words — the padded clock, the NOrec seqlock, the pool gate words, the
// latency histogram buckets — must be touched exclusively through
// sync/atomic (or an atomic wrapper type): a location that one function
// accesses with atomic.AddUint64 and another reads with a plain load is a
// data race the -race detector only reports when the interleaving actually
// fires under instrumentation. The analyzer proves the access discipline
// module-wide instead:
//
//   - a struct field or package-level variable whose address is passed to
//     any sync/atomic function anywhere in the module must not be read or
//     written plainly anywhere else;
//   - a field of an atomic wrapper type (sync/atomic's typed atomics or
//     metrics.Padded*) must only be used as a method-call receiver or have
//     its address taken — copying the wrapper by value (including ranging
//     with a value variable over an array of them) tears the word out of
//     the coherence protocol.
//
// Known false negatives: accesses through unsafe.Pointer or reflection;
// addresses smuggled through intermediate pointer variables; composite-
// literal initialization (construction precedes publication and is
// deliberately exempt).
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "reports fields and package-level vars accessed via sync/atomic in " +
		"one place and by plain load/store elsewhere, and atomic wrapper " +
		"values copied instead of used through their methods",
	Run: runAtomicMix,
}

// atomicmixIndex is the module-wide picture built once per Run: for every
// word that some code accesses through sync/atomic, where those atomic
// accesses are; and which identifier nodes belong to the atomic call
// arguments themselves (exempt from the plain-access scan).
type atomicmixIndex struct {
	atomicUses map[*types.Var][]token.Position
	exempt     map[*ast.Ident]bool
}

func runAtomicMix(pass *Pass) {
	idx := atomicmixSharedIndex(pass)
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				v, ok := info.Uses[n].(*types.Var)
				if !ok {
					return true
				}
				sites, tracked := idx.atomicUses[v]
				if !tracked || idx.exempt[n] || isCompositeKey(n, stack) {
					return true
				}
				pass.Reportf(n.Pos(),
					"plain access of %s, which is accessed via sync/atomic at %s; the race detector only catches this when the interleaving fires",
					v.Name(), relPosition(pass, sites[0]))
			case *ast.SelectorExpr:
				pass.checkWrapperCopy(n, stack)
			case *ast.RangeStmt:
				// Ranging with a value variable over an array of atomic
				// wrappers copies every element.
				if n.Value != nil && isAtomicWrapperArray(info.Types[n.X].Type) {
					pass.Reportf(n.Value.Pos(),
						"range value copies %s elements out of their cache line; range by index and use atomic methods",
						info.Types[n.X].Type.String())
				}
			}
			return true
		})
	}
}

// atomicmixSharedIndex builds (once per Run) the module-wide atomic-use
// index over every package the loader has type-checked.
func atomicmixSharedIndex(pass *Pass) *atomicmixIndex {
	if idx, ok := pass.Shared["atomicmix"].(*atomicmixIndex); ok {
		return idx
	}
	idx := &atomicmixIndex{
		atomicUses: map[*types.Var][]token.Position{},
		exempt:     map[*ast.Ident]bool{},
	}
	for _, pkg := range pass.Loader.Packages() {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					v, id := addressedWord(pkg.Info, un.X)
					if v == nil {
						continue
					}
					idx.atomicUses[v] = append(idx.atomicUses[v], pass.Fset.Position(un.Pos()))
					idx.exempt[id] = true
				}
				return true
			})
		}
	}
	pass.Shared["atomicmix"] = idx
	return idx
}

// addressedWord resolves &e's root word to a trackable variable: a struct
// field (possibly through an index expression, as in &h.counts[i]) or a
// package-level variable. It returns the identifier naming the word, which
// the plain-access scan must exempt. Local variables are not tracked —
// their sharing is the escape of the pointer, not the access mix.
func addressedWord(info *types.Info, e ast.Expr) (*types.Var, *ast.Ident) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					return v, x.Sel
				}
				return nil, nil
			}
			// Qualified package-level variable (pkg.Word).
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && isPkgLevel(v) {
				return v, x.Sel
			}
			return nil, nil
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && isPkgLevel(v) {
				return v, x
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

// isCompositeKey reports whether id is the key of a composite-literal
// element (Hist{total: 0}): initialization before publication, exempt.
func isCompositeKey(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	kv, ok := stack[len(stack)-1].(*ast.KeyValueExpr)
	if !ok || kv.Key != ast.Node(id) {
		return false
	}
	_, inLit := stack[len(stack)-2].(*ast.CompositeLit)
	return inLit
}

// checkWrapperCopy flags an atomic wrapper field used as a value rather
// than through its methods or address.
func (pass *Pass) checkWrapperCopy(sel *ast.SelectorExpr, stack []ast.Node) {
	info := pass.Pkg.Info
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	t := v.Type()
	isArray := false
	if arr, ok := t.Underlying().(*types.Array); ok {
		t, isArray = arr.Elem(), true
	}
	if !isAtomicWrapper(t) {
		return
	}
	// Climb out of the selector/index chain to the node that consumes the
	// wrapper value.
	node := ast.Node(sel)
	i := len(stack)
	for i > 0 {
		parent := stack[i-1]
		if isArray {
			if ix, ok := parent.(*ast.IndexExpr); ok && ix.X == node {
				node, i = parent, i-1
				continue
			}
		}
		break
	}
	if i == 0 {
		return
	}
	switch parent := stack[i-1].(type) {
	case *ast.SelectorExpr:
		if parent.X == node {
			return // method (or promoted-field) access through the wrapper
		}
	case *ast.UnaryExpr:
		if parent.Op == token.AND {
			return // address taken; the pointer is the safe currency
		}
	case *ast.RangeStmt:
		if parent.X == node {
			return // handled (value-variable case) by the RangeStmt check
		}
	case *ast.CallExpr:
		// len/cap of an array field measure, not copy.
		if id, ok := parent.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
				return
			}
		}
	}
	pass.Reportf(sel.Sel.Pos(),
		"atomic field %s copied by value; use its atomic methods (or take its address)", v.Name())
}

// isAtomicWrapper reports whether t is one of sync/atomic's typed atomics
// or a metrics.Padded* wrapper.
func isAtomicWrapper(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "sync/atomic":
		return obj.Name() != "Value" // atomic.Value is copy-hostile too, but vet owns it
	case obj.Pkg().Name() == "metrics" && strings.HasPrefix(obj.Name(), "Padded"):
		return true
	}
	return false
}

// isAtomicWrapperArray reports whether t is an array (or pointer to array)
// of atomic wrappers.
func isAtomicWrapperArray(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	arr, ok := t.Underlying().(*types.Array)
	return ok && isAtomicWrapper(arr.Elem())
}

// relPosition renders a cross-file position compactly, relative to the
// module root when inside it.
func relPosition(pass *Pass, p token.Position) string {
	file := p.Filename
	if rel, ok := strings.CutPrefix(file, pass.Loader.ModuleRoot+"/"); ok {
		file = rel
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}
