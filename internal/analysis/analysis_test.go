package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the fixture expectation comments: // want "regexp".
var wantRe = regexp.MustCompile(`^// want "(.*)"$`)

// expectation is one // want annotation: a finding must match re on the
// annotated line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// loadFixture type-checks one testdata package through a fresh-enough
// loader; the loader is shared per test binary so the standard library is
// only type-checked once.
var sharedLoader *Loader

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		l, err := NewLoader(".")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

func collectWants(t *testing.T, loader *Loader, pkg *Package) []expectation {
	t.Helper()
	var wants []expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(strings.TrimSpace(c.Text))
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := loader.Fset.Position(c.Pos())
				wants = append(wants, expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over one fixture package and diffs the
// findings against the // want annotations.
func checkFixture(t *testing.T, dir, analyzer string) {
	t.Helper()
	loader := fixtureLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	analyzers, err := ByName(analyzer)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(loader, []*Package{pkg}, analyzers)
	wants := collectWants(t, loader, pkg)
	if len(wants) < 3 {
		t.Fatalf("fixture %s has %d seeded violations, want >= 3", dir, len(wants))
	}

	matched := make([]bool, len(findings))
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if matched[i] || f.File != w.file || f.Line != w.line || !w.re.MatchString(f.Message) {
				continue
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

func TestStmEscapeFixtures(t *testing.T)   { checkFixture(t, "stmescape", "stmescape") }
func TestTxnEffectFixtures(t *testing.T)   { checkFixture(t, "txneffect", "txneffect") }
func TestROViolationFixtures(t *testing.T) { checkFixture(t, "roviolation", "roviolation") }
func TestCtlUnitsFixtures(t *testing.T) {
	checkFixture(t, filepath.Join("ctlunits", "periods"), "ctlunits")
	checkFixture(t, filepath.Join("ctlunits", "core"), "ctlunits")
}
func TestAtomicMixFixtures(t *testing.T) { checkFixture(t, "atomicmix", "atomicmix") }
func TestDeterminismFixtures(t *testing.T) {
	checkFixture(t, filepath.Join("determinism", "annotated"), "determinism")
	checkFixture(t, filepath.Join("determinism", "registry"), "determinism")
}
func TestNoAllocFixtures(t *testing.T)      { checkFixture(t, "noalloc", "noalloc") }
func TestSeqlockProtoFixtures(t *testing.T) { checkFixture(t, "seqlockproto", "seqlockproto") }

// TestRepoClean is the self-gate: the analyzers must run clean over the
// whole module (the same scan `make lint` performs).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module scan skipped in -short mode")
	}
	loader := fixtureLoader(t)
	dirs, err := ExpandPatterns(loader.ModuleRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	for _, f := range Run(loader, pkgs, All()) {
		t.Errorf("repo not clean: %s", f)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 8 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 8, nil", len(all), err)
	}
	two, err := ByName("stmescape, ctlunits")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName subset: %d analyzers, err %v; want 2, nil", len(two), err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) succeeded, want error")
	}
}

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//lint:ignore rubic/txneffect buffered deliberately", "txneffect", true},
		{"//lint:ignore rubic/all migration in flight", "all", true},
		{"//lint:ignore rubic/txneffect", "", false}, // reason required
		{"//lint:ignore ST1000 wrong namespace", "", false},
		{"// plain comment", "", false},
	}
	for _, c := range cases {
		name, ok := parseIgnore(c.text)
		if name != c.name || ok != c.ok {
			t.Errorf("parseIgnore(%q) = %q, %v; want %q, %v", c.text, name, ok, c.name, c.ok)
		}
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	loader := fixtureLoader(t)
	dirs, err := ExpandPatterns(loader.ModuleRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("pattern expansion included testdata dir %s", d)
		}
	}
	if len(dirs) < 10 {
		t.Errorf("expected a full module expansion, got %d dirs: %v", len(dirs), dirs)
	}
}

// TestRunDeterministic pins the output ordering contract: two runs of the
// full suite over the same packages yield byte-identical finding sequences,
// sorted by (file, line, col, analyzer, message). CI baselines and snapshot
// diffs rely on this.
func TestRunDeterministic(t *testing.T) {
	loader := fixtureLoader(t)
	var pkgs []*Package
	for _, dir := range []string{"atomicmix", "noalloc", "seqlockproto"} {
		pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir))
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	first := Run(loader, pkgs, All())
	if len(first) == 0 {
		t.Fatal("fixture scan found nothing; ordering test is vacuous")
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("findings out of (file, line) order: %s before %s", a, b)
		}
	}
	for run := 0; run < 3; run++ {
		again := Run(loader, pkgs, All())
		if len(again) != len(first) {
			t.Fatalf("run %d: %d findings, first run had %d", run, len(again), len(first))
		}
		for i := range again {
			if fmt.Sprint(again[i]) != fmt.Sprint(first[i]) {
				t.Errorf("run %d finding %d: %s != %s", run, i, again[i], first[i])
			}
		}
	}
}

// Ensure Finding renders the machine-locatable file:line:col form.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "txneffect", File: "x.go", Line: 3, Col: 7, Message: "boom"}
	want := "x.go:3:7: boom [rubic/txneffect]"
	if got := fmt.Sprint(f); got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}
