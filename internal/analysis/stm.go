package analysis

import (
	"go/ast"
	"go/types"
)

// This file holds the STM-aware plumbing shared by the stmescape, txneffect
// and roviolation analyzers: recognizing Atomic/AtomicRO blocks, the
// transaction handle they bind, and stm package types, all by semantic
// identity (types from a package named "stm" with the expected shape) so the
// same code analyzes both the real tree and the testdata fixture universe.

// atomicBlock is one rt.Atomic / rt.AtomicRO call whose argument is a
// function literal — the unit of transactional re-execution.
type atomicBlock struct {
	call     *ast.CallExpr
	lit      *ast.FuncLit
	txObj    types.Object // the *stm.Tx parameter object; nil when blank
	readOnly bool
}

// atomicBlocks collects every Atomic/AtomicRO function-literal block in the
// package, including blocks nested inside other blocks (each is returned
// once, as its own entry).
func atomicBlocks(pkg *Package) []atomicBlock {
	var blocks []atomicBlock
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ro, ok := isAtomicCall(pkg.Info, call)
			if !ok || len(call.Args) != 1 {
				return true
			}
			lit, ok := call.Args[0].(*ast.FuncLit)
			if !ok {
				return true
			}
			b := atomicBlock{call: call, lit: lit, readOnly: ro}
			if params := lit.Type.Params; params != nil && len(params.List) == 1 &&
				len(params.List[0].Names) == 1 {
				b.txObj = pkg.Info.Defs[params.List[0].Names[0]]
			}
			blocks = append(blocks, b)
			return true
		})
	}
	return blocks
}

// isAtomicCall reports whether call invokes stm.Runtime.Atomic (ro=false) or
// stm.Runtime.AtomicRO (ro=true).
func isAtomicCall(info *types.Info, call *ast.CallExpr) (ro, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return false, false
	}
	fn, okFn := info.Uses[sel.Sel].(*types.Func)
	if !okFn {
		return false, false
	}
	if fn.Name() != "Atomic" && fn.Name() != "AtomicRO" {
		return false, false
	}
	sig, okSig := fn.Type().(*types.Signature)
	if !okSig || sig.Recv() == nil {
		return false, false
	}
	if !isStmNamed(sig.Recv().Type(), "Runtime") {
		return false, false
	}
	return fn.Name() == "AtomicRO", true
}

// isStmNamed reports whether t (possibly behind a pointer) is the named type
// stm.<name>, matching by package name so fixtures and the real module
// resolve identically.
func isStmNamed(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == "stm"
}

// isTxType reports whether t is *stm.Tx.
func isTxType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isStmNamed(ptr.Elem(), "Tx")
}

// isVarWrite reports whether fn is the Write method of stm.Var (any
// instantiation).
func isVarWrite(fn *types.Func) bool {
	if fn.Name() != "Write" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isStmNamed(sig.Recv().Type(), "Var")
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	if obj == nil || n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// declaredOutside reports whether obj's declaration lies outside the given
// function literal — i.e. the closure captured it from an enclosing scope
// (including package scope).
func declaredOutside(obj types.Object, lit *ast.FuncLit) bool {
	if obj == nil {
		return false
	}
	if obj.Pkg() == nil { // builtins such as the predeclared error vars
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// blockBodyInspect walks an atomic block's body, pruning nested
// Atomic/AtomicRO function literals: those re-execute under their own
// transaction and are analyzed as separate blocks.
func blockBodyInspect(info *types.Info, b atomicBlock, f func(ast.Node) bool) {
	ast.Inspect(b.lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, isAtomic := isAtomicCall(info, call); isAtomic && len(call.Args) == 1 {
				if _, isLit := call.Args[0].(*ast.FuncLit); isLit {
					// Visit the call itself but let the nested block's own
					// pass handle the literal body.
					for _, arg := range call.Args {
						if _, skip := arg.(*ast.FuncLit); !skip {
							ast.Inspect(arg, f)
						}
					}
					ast.Inspect(call.Fun, f)
					return false
				}
			}
		}
		return f(n)
	})
}
