package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtlUnits enforces the controller layer's unit discipline. The paper's
// monitoring loop samples throughput every tick (core.DefaultPeriod); two
// families of mistakes have corrupted reproductions of such controllers:
//
//   - raw time.Duration literals where the canonical tick constants must be
//     used — a period written as `10 * time.Millisecond` in one component
//     and `15 * time.Millisecond` in another silently decouples the
//     controllers from the measurement cadence. Any literal flowing into a
//     Period field, a Period assignment, or a period flag default must be
//     spelled via a named constant from package core;
//   - commit-rate arithmetic mixing per-tick and per-second quantities
//     (adding or comparing a *PerTick value with a *PerSec value without a
//     conversion). Multiplication and division are conversions and pass.
//
// Inside package core itself every non-zero duration literal outside a
// const declaration is flagged, so the canonical constants stay the single
// source of truth.
var CtlUnits = &Analyzer{
	Name: "ctlunits",
	Doc: "reports raw duration literals where core's tick constants are " +
		"required, and arithmetic mixing per-tick with per-second units",
	Run: runCtlUnits,
}

func runCtlUnits(pass *Pass) {
	info := pass.Pkg.Info
	flagged := map[ast.Node]bool{}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if targetName(lhs) == "Period" && rawDurationExpr(info, n.Rhs[i]) {
						flagged[n.Rhs[i]] = true
						pass.Reportf(n.Rhs[i].Pos(), "raw duration literal assigned to Period; use core.DefaultPeriod or a named core constant")
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok && key.Name == "Period" && rawDurationExpr(info, n.Value) {
					flagged[n.Value] = true
					pass.Reportf(n.Value.Pos(), "raw duration literal for Period; use core.DefaultPeriod or a named core constant")
				}
			case *ast.CallExpr:
				if fn := calleeFunc(info, n); fn != nil && fn.Name() == "DurationVar" && len(n.Args) >= 3 {
					if name, ok := stringArg(info, n.Args[1]); ok && strings.Contains(strings.ToLower(name), "period") &&
						rawDurationExpr(info, n.Args[2]) {
						flagged[n.Args[2]] = true
						pass.Reportf(n.Args[2].Pos(), "raw duration literal as %q flag default; use core.DefaultPeriod", name)
					}
				}
			case *ast.BinaryExpr:
				checkUnitMixing(pass, n)
			}
			return true
		})
	}
	if pass.Pkg.Types.Name() == "core" {
		checkCoreLiterals(pass, flagged)
	}
}

// targetName names an assignment destination: a bare identifier or the
// final selector of a field access.
func targetName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// stringArg extracts a constant string argument.
func stringArg(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	s := tv.Value.ExactString()
	if len(s) >= 2 && s[0] == '"' {
		return s[1 : len(s)-1], true
	}
	return "", false
}

// rawDurationExpr reports whether e is a time.Duration expression built
// from numeric literals (e.g. 10*time.Millisecond) rather than derived from
// a named constant of package core. Zero literals are exempt: comparing or
// resetting against zero carries no unit.
func rawDurationExpr(info *types.Info, e ast.Expr) bool {
	if !isDuration(info, e) {
		return false
	}
	hasLit, usesCore := false, false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if n.Kind == token.INT || n.Kind == token.FLOAT {
				if n.Value != "0" {
					hasLit = true
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Name() == "core" {
				if _, isConst := obj.(*types.Const); isConst {
					usesCore = true
				}
			}
		}
		return true
	})
	return hasLit && !usesCore
}

// isDuration reports whether e's type is time.Duration.
func isDuration(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

// rateUnit classifies an expression's rate unit from its identifier names:
// per-tick vs per-second commit-rate quantities.
func rateUnit(e ast.Expr) string {
	unit := ""
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		name := strings.ToLower(id.Name)
		switch {
		case strings.Contains(name, "pertick"), strings.Contains(name, "per_tick"):
			unit = "per-tick"
			return false
		case strings.Contains(name, "persec"), strings.Contains(name, "per_sec"):
			unit = "per-second"
			return false
		}
		return true
	})
	return unit
}

// checkUnitMixing flags additive or comparison operators combining a
// per-tick quantity with a per-second one.
func checkUnitMixing(pass *Pass, n *ast.BinaryExpr) {
	switch n.Op {
	case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	default:
		return // * and / convert between units
	}
	lu, ru := rateUnit(n.X), rateUnit(n.Y)
	if lu != "" && ru != "" && lu != ru {
		pass.Reportf(n.Pos(), "%s mixes %s and %s commit-rate units; convert with core.TicksPerSecond first", n.Op, lu, ru)
	}
}

// checkCoreLiterals flags non-zero duration literals in package core
// outside const declarations (and outside expressions already reported).
func checkCoreLiterals(pass *Pass, flagged map[ast.Node]bool) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		var constRanges [][2]token.Pos
		for _, decl := range file.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.CONST {
				constRanges = append(constRanges, [2]token.Pos{gd.Pos(), gd.End()})
			}
		}
		inConst := func(pos token.Pos) bool {
			for _, r := range constRanges {
				if pos >= r[0] && pos <= r[1] {
					return true
				}
			}
			return false
		}
		ast.Inspect(file, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if flagged[e] {
				return false
			}
			// Judge the outermost duration-typed expression as a unit: its
			// literal subexpressions (the 3 in 3*DefaultPeriod) are part of
			// the blessed derivation, not separate findings.
			if isDuration(info, e) {
				if rawDurationExpr(info, e) && !inConst(e.Pos()) {
					pass.Reportf(e.Pos(), "raw duration literal in the controller layer; define or use a named constant (e.g. core.DefaultPeriod)")
				}
				return false
			}
			return true
		})
	}
}
