package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc statically checks functions annotated //rubic:noalloc for
// allocation sites. The transaction fast paths and the latency histogram's
// record path promise zero steady-state heap allocations; today that
// promise is enforced by testing.AllocsPerRun gates, which only sample the
// shapes the benchmarks happen to drive. This analyzer is the static
// complement: every construct in an annotated body that the compiler
// lowers to a heap allocation (or can, when the value escapes) is reported:
//
//   - make (maps, slices, channels) and new;
//   - map and slice composite literals, and &T{...} (escaping composite);
//   - func literals that capture enclosing variables (closure object);
//   - append (may grow the backing array — pooled-buffer appends carry a
//     justified //lint:ignore);
//   - map writes (bucket growth);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - boxing a non-constant, non-pointer value into an interface argument
//     or result.
//
// Known false negatives: allocations inside callees (annotate the callee or
// keep its budget documented — boxValue's one publication box per written
// location is the deliberate example), escape-analysis promotions of plain
// local variables, and allocations behind interface method calls.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "reports allocation sites (make/new, escaping composites, capturing " +
		"closures, append growth, map writes, string building, interface " +
		"boxing) in functions annotated //rubic:noalloc",
	Run: runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	for _, fd := range funcsWithDirective(pass.Pkg, directiveNoAlloc) {
		checkNoAllocBody(pass, fd)
	}
}

func checkNoAllocBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	results := fd.Type.Results
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			pass.checkNoAllocCall(n)
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates")
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates")
			default:
				if len(stack) > 0 {
					if un, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && un.Op == token.AND {
						pass.Reportf(n.Pos(), "&composite literal escapes to the heap")
					}
				}
			}
		case *ast.FuncLit:
			if capturesOuter(info, n) {
				pass.Reportf(n.Pos(), "func literal captures enclosing variables: closure allocates")
			}
			return false // a closure body is its own allocation context
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if tv, ok := info.Types[ix.X]; ok && tv.Type != nil {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							pass.Reportf(ix.Pos(), "map write may allocate (bucket growth)")
						}
					}
				}
			}
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(info, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "string concatenation allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n.X) && !isConstExpr(info, n) {
				pass.Reportf(n.Pos(), "string concatenation allocates")
			}
		case *ast.ReturnStmt:
			if results == nil {
				return true
			}
			flat := flattenResultTypes(info, results)
			for i, res := range n.Results {
				if i < len(flat) && boxesIntoInterface(info, res, flat[i]) {
					pass.Reportf(res.Pos(), "boxing %s into interface result may allocate", info.Types[res].Type.String())
				}
			}
		}
		return true
	})
}

// checkNoAllocCall flags allocating builtins, conversions and interface-
// boxing arguments.
func (pass *Pass) checkNoAllocCall(call *ast.CallExpr) {
	info := pass.Pkg.Info
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates")
			case "new":
				pass.Reportf(call.Pos(), "new allocates")
			case "append":
				pass.Reportf(call.Pos(), "append may grow (allocate) the backing array")
			}
			return
		}
	}
	// String <-> byte/rune slice conversions copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.Types[call.Args[0]].Type
		if from != nil && isStringByteConversion(to, from) && !isConstExpr(info, call.Args[0]) {
			pass.Reportf(call.Pos(), "%s(%s) conversion copies (allocates)", to.String(), from.String())
		}
		return
	}
	// Interface boxing of call arguments.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		case sig.Variadic():
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		}
		if boxesIntoInterface(info, arg, pt) {
			pass.Reportf(arg.Pos(), "boxing %s into interface argument may allocate", info.Types[arg].Type.String())
		}
	}
}

// callSignature resolves the signature of a (non-builtin, non-conversion)
// call, nil when unresolvable.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// boxesIntoInterface reports whether passing arg to a slot of type param
// materializes an interface from a non-pointer, non-constant concrete
// value — the conversion that allocates. Pointer-shaped values (pointers,
// channels, maps, funcs, unsafe pointers) fit in the interface word;
// constants get static boxes.
func boxesIntoInterface(info *types.Info, arg ast.Expr, param types.Type) bool {
	if param == nil {
		return false
	}
	if _, isIface := param.Underlying().(*types.Interface); !isIface {
		return false
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil || tv.Value != nil { // constants: static box
		return false
	}
	at := tv.Type
	if _, isIface := at.Underlying().(*types.Interface); isIface {
		return false // already boxed
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Tuple:
		return false
	}
	return true
}

// flattenResultTypes returns the declared result types in order.
func flattenResultTypes(info *types.Info, results *ast.FieldList) []types.Type {
	var out []types.Type
	for _, f := range results.List {
		t := info.Types[f.Type].Type
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, t)
		}
	}
	return out
}

// capturesOuter reports whether the func literal references variables
// declared outside it (excluding package-level objects, which need no
// capture).
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || isPkgLevel(v) {
			return true
		}
		if declaredOutside(v, lit) {
			captures = true
		}
		return true
	})
	return captures
}

// isStringExpr reports whether e has (underlying) string type.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether e is a compile-time constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// isStringByteConversion reports whether (to, from) is a string<->[]byte or
// string<->[]rune pair.
func isStringByteConversion(to, from types.Type) bool {
	str := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	byteish := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (str(to) && byteish(from)) || (byteish(to) && str(from))
}
