package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TxnEffect flags side effects inside an Atomic/AtomicRO block that are
// unsafe under transactional re-execution. The runtime may run the closure
// any number of times before one attempt commits, so effects the rollback
// cannot undo must not live inside it:
//
//   - channel operations (send, receive, close, select) — a retried send
//     delivers twice, a retried receive consumes twice;
//   - sync primitives (Mutex/RWMutex lock and unlock, WaitGroup counting,
//     Once.Do) — lock state does not roll back, and blocking inside a
//     transaction invites lock-STM deadlocks;
//   - file/network I/O (os, net, net/http, syscall; fmt/log printing) and
//     time.Sleep — re-executed verbatim on every retry and a direct threat
//     to commit-rate measurements;
//   - accumulating writes to variables captured from the enclosing scope
//     (x += ..., x++, x = append(x, ...)) — each retry accumulates again.
//
// A plain overwrite of a captured variable (x = ...) is idempotent across
// retries and is the idiomatic way to pass a result out of an atomic block,
// so it is deliberately not flagged.
var TxnEffect = &Analyzer{
	Name: "txneffect",
	Doc: "reports non-idempotent side effects inside Atomic/AtomicRO blocks: " +
		"channel ops, sync locking, I/O, time.Sleep, and accumulating writes " +
		"to captured variables",
	Run: runTxnEffect,
}

// effectPackages are packages whose calls perform external effects that a
// transaction rollback cannot undo.
var effectPackages = map[string]string{
	"os":       "file I/O",
	"net":      "network I/O",
	"net/http": "network I/O",
	"syscall":  "system call",
	"log":      "logging I/O",
}

// effectFuncs are individual stdlib functions flagged by qualified name.
var effectFuncs = map[string]string{
	"time.Sleep":     "sleeping",
	"time.After":     "timer channel",
	"time.Tick":      "timer channel",
	"time.NewTicker": "timer allocation",
	"time.NewTimer":  "timer allocation",
	"fmt.Print":      "stdout I/O",
	"fmt.Printf":     "stdout I/O",
	"fmt.Println":    "stdout I/O",
}

// syncMethods are the sync-package methods whose effect outlives an aborted
// attempt.
var syncMethods = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"TryLock": true, "TryRLock": true,
	"Add": true, "Done": true, "Wait": true, "Do": true,
}

func runTxnEffect(pass *Pass) {
	info := pass.Pkg.Info
	for _, b := range atomicBlocks(pass.Pkg) {
		b := b
		blockBodyInspect(info, b, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send inside an atomic block repeats on every retry")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive inside an atomic block consumes a value per retry")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select inside an atomic block performs channel operations per retry")
				return false
			case *ast.AssignStmt:
				pass.checkCapturedWrite(n, b)
			case *ast.IncDecStmt:
				if id, ok := n.X.(*ast.Ident); ok {
					if obj := info.Uses[id]; declaredOutside(obj, b.lit) {
						pass.Reportf(n.Pos(), "%s of captured variable %s accumulates across retries", n.Tok, id.Name)
					}
				}
			case *ast.CallExpr:
				pass.checkEffectCall(n)
			}
			return true
		})
	}
}

// checkCapturedWrite flags accumulating writes to captured variables:
// compound assignment and self-append. Plain overwrites are idempotent and
// allowed.
func (pass *Pass) checkCapturedWrite(n *ast.AssignStmt, b atomicBlock) {
	info := pass.Pkg.Info
	capturedIdent := func(e ast.Expr) (*ast.Ident, bool) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := info.Uses[id]
		return id, obj != nil && declaredOutside(obj, b.lit)
	}
	switch n.Tok {
	case token.ASSIGN:
		// x = append(x, ...) on a captured x grows per retry.
		for i, lhs := range n.Lhs {
			if i >= len(n.Rhs) {
				break
			}
			id, captured := capturedIdent(lhs)
			if !captured {
				continue
			}
			call, ok := n.Rhs[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
				continue
			} else if _, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin {
				continue
			}
			if len(call.Args) > 0 && usesObject(info, call.Args[0], info.Uses[id]) {
				pass.Reportf(n.Pos(), "append to captured variable %s accumulates across retries", id.Name)
			}
		}
	case token.DEFINE:
	default: // compound assignment: +=, -=, *=, |=, ...
		for _, lhs := range n.Lhs {
			if id, captured := capturedIdent(lhs); captured {
				pass.Reportf(n.Pos(), "compound assignment to captured variable %s accumulates across retries", id.Name)
			}
		}
	}
}

// checkEffectCall flags calls with external effects: close(), sync locking,
// deny-listed packages and functions.
func (pass *Pass) checkEffectCall(call *ast.CallExpr) {
	info := pass.Pkg.Info
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
			pass.Reportf(call.Pos(), "close of a channel inside an atomic block repeats on every retry")
			return
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkgPath := fn.Pkg().Path()
	if pkgPath == "sync" && syncMethods[fn.Name()] {
		pass.Reportf(call.Pos(), "sync.%s inside an atomic block: lock state does not roll back on abort", fn.Name())
		return
	}
	if kind, ok := effectPackages[pkgPath]; ok {
		pass.Reportf(call.Pos(), "%s.%s inside an atomic block: %s repeats on every retry", fn.Pkg().Name(), fn.Name(), kind)
		return
	}
	if kind, ok := effectFuncs[pkgPath+"."+fn.Name()]; ok {
		pass.Reportf(call.Pos(), "%s.%s inside an atomic block: %s repeats on every retry", fn.Pkg().Name(), fn.Name(), kind)
	}
}

// calleeFunc resolves the static callee of a call, or nil for indirect
// calls, builtins and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}
