package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"rubic/internal/fault"
)

// Recovery rebuilds the durable prefix: load the snapshot, then replay the
// segments above it in start-CSN order, enforcing exact CSN contiguity. The
// prefix ends at the first torn frame, damaged record or CSN gap — nothing
// past that point is surfaced, so an unacked (never fully written) commit
// can never appear in the recovered state, and every acked commit below the
// stopping point is present by construction.

// recoverDir reconstructs the state image from dir. The returned Recovered
// describes the prefix; err is reserved for I/O and hard-corruption
// failures (a torn tail is normal operation after a crash, not an error).
func recoverDir(dir string, inj *fault.Injector) (map[uint64][]byte, Recovered, error) {
	state, snapCSN, err := readSnapshot(dir)
	if err != nil {
		return nil, Recovered{}, err
	}
	rec := Recovered{SnapshotCSN: snapCSN, LastCSN: snapCSN}

	type seg struct {
		name  string
		start uint64
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, rec, fmt.Errorf("wal: %w", err)
	}
	var segs []seg
	for _, e := range entries {
		if start, ok := parseSegName(e.Name()); ok {
			segs = append(segs, seg{name: e.Name(), start: start})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })

	next := snapCSN + 1
	for i, s := range segs {
		data, err := os.ReadFile(filepath.Join(dir, s.name))
		if err != nil {
			return nil, rec, fmt.Errorf("wal: %w", err)
		}
		if i == len(segs)-1 {
			if fired, occ := inj.FireN(fault.WALTruncate); fired {
				cut := 1 + int(inj.Payload(fault.WALTruncate, occ)%128)
				if cut > len(data) {
					cut = len(data)
				}
				data = data[:len(data)-cut]
			}
		}
		var records uint64
		var torn bool
		var note string
		next, records, torn, note = replaySegment(data, state, next)
		rec.Records += records
		if torn {
			rec.Torn = true
			rec.Note = s.name + ": " + note
			break
		}
	}
	rec.LastCSN = next - 1
	return state, rec, nil
}

// replaySegment applies one segment's records to the state image starting
// at CSN next. It returns the new next, the number of records applied, and
// whether (and why) the durable prefix ends inside this segment. Records
// below next are compaction-era duplicates and are skipped; a record above
// next is a gap — evidence the file set is inconsistent — and ends the
// prefix just like a torn frame does.
//
//rubic:deterministic
func replaySegment(data []byte, state map[uint64][]byte, next uint64) (uint64, uint64, bool, string) {
	if len(data) == 0 {
		// A crash between segment creation and the header write.
		return next, 0, false, ""
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return next, 0, true, "bad segment header"
	}
	off := len(segMagic)
	var records uint64
	for off < len(data) {
		payload, n, ok := nextFrame(data, off)
		if !ok {
			return next, records, true, fmt.Sprintf("torn frame at byte %d", off)
		}
		csn, err := walkRecord(payload, nil)
		if err != nil {
			return next, records, true, fmt.Sprintf("damaged record at byte %d: %v", off, err)
		}
		if csn < next {
			off = n
			continue
		}
		if csn > next {
			return next, records, true, fmt.Sprintf("CSN gap at byte %d: want %d, found %d", off, next, csn)
		}
		walkRecord(payload, func(id uint64, val []byte) {
			state[id] = append(state[id][:0], val...)
		})
		next++
		records++
		off = n
	}
	return next, records, false, ""
}
