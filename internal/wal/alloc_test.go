package wal

import (
	"testing"

	"rubic/internal/stm"
)

// Allocation gates for durable mode, mirroring internal/stm/alloc_test.go:
// attaching the log must not cost the read-only path its zero-allocation
// guarantee, and a durable small write stays at <= 2 allocs/op (the
// publication box, plus boxing slack) — the encode path runs into
// ring-slot-retained buffers and the log goroutine reuses its batch, state
// and scratch capacity, so steady state adds nothing per commit.
// testing.AllocsPerRun counts process-wide mallocs, so the gate covers the
// log goroutine too, not just the committer.

var allocEngines = []stm.Algorithm{stm.TL2, stm.NOrec}

func durableRig(t *testing.T, algo stm.Algorithm) (*stm.Runtime, *stm.Var[int], *Log) {
	t.Helper()
	l, err := Open(Options{Dir: t.TempDir(), Policy: FsyncOS})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	rt := stm.New(stm.Config{Algorithm: algo})
	x := stm.NewVar(0)
	reg := NewRegistry()
	if err := RegisterVar(reg, 1, x); err != nil {
		t.Fatal(err)
	}
	rt.AttachCommitSink(l)
	// Warm every ring slot's retained buffer (the ring wraps every
	// defaultRingSize commits), the tx pools, and the logger's batch/state
	// scratch, so the measured loop sees steady state.
	for i := 0; i < 3*defaultRingSize; i++ {
		if err := rt.Atomic(func(tx *stm.Tx) error {
			x.Write(tx, (x.Read(tx)+1)&0x3f)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	return rt, x, l
}

func TestDurableSmallWriteAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds shadow allocations")
	}
	for _, algo := range allocEngines {
		t.Run(algo.String(), func(t *testing.T) {
			rt, x, _ := durableRig(t, algo)
			fn := func(tx *stm.Tx) error {
				x.Write(tx, (x.Read(tx)+1)&0x7f)
				return nil
			}
			allocs := testing.AllocsPerRun(1000, func() {
				if err := rt.Atomic(fn); err != nil {
					t.Error(err)
				}
			})
			if allocs > 2.001 {
				t.Errorf("durable small write allocates %.3f objects/op, want <= 2", allocs)
			}
		})
	}
}

func TestAtomicROAllocFreeWithLogAttached(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds shadow allocations")
	}
	for _, algo := range allocEngines {
		t.Run(algo.String(), func(t *testing.T) {
			rt, x, _ := durableRig(t, algo)
			var sink int
			fn := func(tx *stm.Tx) error {
				sink = x.Read(tx)
				return nil
			}
			allocs := testing.AllocsPerRun(1000, func() {
				if err := rt.AtomicRO(fn); err != nil {
					t.Error(err)
				}
			})
			if allocs > 0.001 {
				t.Errorf("AtomicRO with log attached allocates %.3f objects/op, want 0", allocs)
			}
			_ = sink
		})
	}
}
