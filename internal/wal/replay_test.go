package wal

import (
	"os"
	"path/filepath"
	"testing"

	"rubic/internal/stm"
)

// Differential replay tests: a canonical log is built frame by frame, so
// the exact state after any prefix of commits is computable. Recovery of a
// mutilated copy must always equal the oracle at whatever prefix length it
// reports — never a byte more, never a torn or corrupt record surfaced.

const canonicalRecords = 20

// canonicalOp returns record csn's single op: a write of var (csn-1)%3+1.
func canonicalOp(csn uint64) (id uint64, val int) {
	return (csn-1)%3 + 1, int(csn*7 + 1)
}

// buildCanonicalSegment encodes records 1..n as one segment's bytes, also
// returning the frame boundaries (offset of each frame's start, plus the
// final end offset) for boundary-aware mutations.
func buildCanonicalSegment(n int) (data []byte, bounds []int) {
	data = append(data, segMagic...)
	for csn := uint64(1); csn <= uint64(n); csn++ {
		bounds = append(bounds, len(data))
		id, val := canonicalOp(csn)
		box := any(val)
		payload, ok := appendRecord(nil, csn, []stm.DurableOp{{ID: id, Box: &box}})
		if !ok {
			panic("canonical record rejected by codec")
		}
		data = appendFrame(data, payload)
	}
	bounds = append(bounds, len(data))
	return data, bounds
}

// oracle returns the exact state after replaying records 1..n.
func oracle(n uint64) map[uint64]int {
	m := make(map[uint64]int)
	for csn := uint64(1); csn <= n; csn++ {
		id, val := canonicalOp(csn)
		m[id] = val
	}
	return m
}

// checkAgainstOracle decodes the recovered state and compares it with the
// oracle at rec.LastCSN.
func checkAgainstOracle(t *testing.T, state map[uint64][]byte, rec Recovered) {
	t.Helper()
	if rec.LastCSN > canonicalRecords {
		t.Fatalf("recovered CSN %d beyond the %d that exist", rec.LastCSN, canonicalRecords)
	}
	want := oracle(rec.LastCSN)
	if len(state) != len(want) {
		t.Fatalf("recovered %d locations, oracle has %d (prefix %d)", len(state), len(want), rec.LastCSN)
	}
	for id, raw := range state {
		got, err := decodeValue(raw)
		if err != nil {
			t.Fatalf("id %d: %v", id, err)
		}
		if got != want[id] {
			t.Fatalf("id %d: recovered %v, oracle says %v (prefix %d)", id, got, want[id], rec.LastCSN)
		}
	}
}

func writeSegmentDir(t testing.TB, data []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestReplayTruncationEveryOffset is the satellite's exhaustive sweep: cut
// the segment at every byte offset; recovery must yield exactly the frames
// wholly below the cut.
func TestReplayTruncationEveryOffset(t *testing.T) {
	data, bounds := buildCanonicalSegment(canonicalRecords)
	for off := 0; off <= len(data); off++ {
		state, rec, err := recoverDir(writeSegmentDir(t, data[:off]), nil)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		// Frames wholly contained in data[:off]: count bounds[i+1] <= off.
		var want uint64
		for i := 0; i+1 < len(bounds); i++ {
			if bounds[i+1] <= off {
				want = uint64(i + 1)
			}
		}
		if rec.LastCSN != want {
			t.Fatalf("offset %d: recovered prefix %d, want %d", off, rec.LastCSN, want)
		}
		// Clean shapes — empty file or a cut exactly on a frame boundary
		// (bounds[0] is the bare-magic case) — must not be flagged torn;
		// every mid-frame cut must be.
		clean := off == 0
		for _, b := range bounds {
			clean = clean || off == b
		}
		if rec.Torn == clean {
			t.Fatalf("offset %d: torn=%v, want %v (%s)", off, rec.Torn, !clean, rec.Note)
		}
		checkAgainstOracle(t, state, rec)
	}
}

// TestReplaySkipsCompactionDuplicates: records at or below the snapshot CSN
// reappearing at the head of a segment (the pre-rotation overlap shape) are
// skipped, and replay continues through them.
func TestReplaySkipsCompactionDuplicates(t *testing.T) {
	data, _ := buildCanonicalSegment(canonicalRecords)
	dir := writeSegmentDir(t, data)
	// Fake a snapshot at CSN 5 whose state is the oracle at 5.
	l := &Log{dir: dir, state: make(map[uint64][]byte)}
	for id, val := range oracle(5) {
		enc, _ := appendValue(nil, val)
		l.state[id] = enc
	}
	if err := l.writeSnapshotAt(5); err != nil {
		t.Fatal(err)
	}
	state, rec, err := recoverDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotCSN != 5 || rec.LastCSN != canonicalRecords {
		t.Fatalf("recovered snapshot=%d prefix=%d, want 5 and %d", rec.SnapshotCSN, rec.LastCSN, canonicalRecords)
	}
	if rec.Records != canonicalRecords-5 {
		t.Fatalf("replayed %d records over the snapshot, want %d", rec.Records, canonicalRecords-5)
	}
	checkAgainstOracle(t, state, rec)
}

// TestReplayStopsAtGap: a missing CSN ends the prefix even when valid
// frames follow — later records may depend on the lost one.
func TestReplayStopsAtGap(t *testing.T) {
	data, bounds := buildCanonicalSegment(canonicalRecords)
	// Splice out frame 8 (csn 8): bytes [bounds[7], bounds[8]).
	cut := append(append([]byte(nil), data[:bounds[7]]...), data[bounds[8]:]...)
	state, rec, err := recoverDir(writeSegmentDir(t, cut), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Torn || rec.LastCSN != 7 {
		t.Fatalf("gap at 8: recovered prefix %d (torn=%v), want 7 torn", rec.LastCSN, rec.Torn)
	}
	checkAgainstOracle(t, state, rec)
}

// FuzzWALReplay mutilates the canonical log — truncations, bit flips, byte
// overwrites, duplicated frames, wholesale garbage — and requires recovery
// to never panic and to equal the oracle at exactly the prefix it reports:
// an unacked (not-fully-written) commit must never surface, and no damaged
// record may leak into the state.
func FuzzWALReplay(f *testing.F) {
	data, bounds := buildCanonicalSegment(canonicalRecords)
	f.Add(uint8(0), uint32(0), uint8(0))
	f.Add(uint8(0), uint32(len(data)/2), uint8(0))
	f.Add(uint8(1), uint32(10), uint8(1))
	f.Add(uint8(1), uint32(len(data)-3), uint8(0x80))
	f.Add(uint8(2), uint32(3), uint8(9))
	f.Add(uint8(2), uint32(12), uint8(2))
	f.Add(uint8(3), uint32(len(segMagic)+2), uint8(0xFF))
	f.Add(uint8(4), uint32(64), uint8('R'))
	f.Fuzz(func(t *testing.T, op uint8, pos uint32, val uint8) {
		mut := append([]byte(nil), data...)
		switch op % 5 {
		case 0: // truncate at pos
			mut = mut[:int(pos)%(len(mut)+1)]
		case 1: // flip bit val%8 of byte pos
			i := int(pos) % len(mut)
			mut[i] ^= 1 << (val % 8)
		case 2: // duplicate frame val%n at the boundary pos%n
			fr := int(val) % canonicalRecords
			at := bounds[int(pos)%len(bounds)]
			frame := append([]byte(nil), mut[bounds[fr]:bounds[fr+1]]...)
			mut = append(append(append([]byte(nil), mut[:at]...), frame...), mut[at:]...)
		case 3: // overwrite byte pos with val
			i := int(pos) % len(mut)
			mut[i] = val
		case 4: // replace the whole file with repeated garbage
			n := int(pos) % 4096
			mut = make([]byte, n)
			for i := range mut {
				mut[i] = val
			}
		}
		state, rec, err := recoverDir(writeSegmentDir(t, mut), nil)
		if err != nil {
			// I/O-free here, so an error means hard corruption was refused —
			// acceptable; the contract is only "no panic, no bad state".
			return
		}
		checkAgainstOracle(t, state, rec)
	})
}
