package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// A snapshot is the materialized state image at one CSN, replacing every
// log record at or below it: [8-byte magic][u32 payload length][u32 CRC-32C]
// [payload], payload = [8-byte LE snapshot CSN][uvarint entry count]
// [entries: uvarint id, tagged value], entries sorted by id so the bytes
// are a deterministic function of the state. It is written to a temporary
// file, fsynced, and renamed over dir/snapshot — the replacement is atomic,
// so recovery always finds either the old or the new snapshot intact.

const snapshotFile = "snapshot"

// writeSnapshotAt persists the log goroutine's state image, which at call
// time equals an exact replay of CSNs 1..at.
func (l *Log) writeSnapshotAt(at uint64) error {
	ids := make([]uint64, 0, len(l.state))
	for id := range l.state {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	payload := make([]byte, 0, 16+len(ids)*16)
	payload = binary.LittleEndian.AppendUint64(payload, at)
	payload = appendUvarint(payload, uint64(len(ids)))
	for _, id := range ids {
		payload = appendUvarint(payload, id)
		payload = append(payload, l.state[id]...)
	}

	buf := make([]byte, 0, len(snapMagic)+frameHeader+len(payload))
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	buf = append(buf, payload...)

	tmp := filepath.Join(l.dir, snapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotFile)); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.nSnapshots.Add(1)
	return nil
}

// readSnapshot loads dir/snapshot. A missing file is an empty log; a
// damaged file is a hard error — the snapshot was written with
// write+fsync+rename, so damage means real media corruption, and guessing
// would silently drop acked commits.
func readSnapshot(dir string) (map[uint64][]byte, uint64, error) {
	state := make(map[uint64][]byte)
	data, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if os.IsNotExist(err) {
		return state, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("wal: snapshot read: %w", err)
	}
	if len(data) < len(snapMagic)+frameHeader || string(data[:len(snapMagic)]) != snapMagic {
		return nil, 0, fmt.Errorf("wal: snapshot corrupt: bad header")
	}
	body := data[len(snapMagic):]
	payload, _, ok := nextFrame(body, 0)
	if !ok {
		return nil, 0, fmt.Errorf("wal: snapshot corrupt: bad frame or CRC")
	}
	if len(payload) < 8 {
		return nil, 0, fmt.Errorf("wal: snapshot corrupt: short payload")
	}
	at := binary.LittleEndian.Uint64(payload)
	rest := payload[8:]
	count, c := uvarint(rest)
	if c == 0 {
		return nil, 0, fmt.Errorf("wal: snapshot corrupt: bad entry count")
	}
	rest = rest[c:]
	for i := uint64(0); i < count; i++ {
		id, c := uvarint(rest)
		if c == 0 || id == 0 {
			return nil, 0, fmt.Errorf("wal: snapshot corrupt: bad entry id")
		}
		rest = rest[c:]
		n := valueLen(rest)
		if n < 0 {
			return nil, 0, fmt.Errorf("wal: snapshot corrupt: bad entry value")
		}
		state[id] = append([]byte(nil), rest[:n]...)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, 0, fmt.Errorf("wal: snapshot corrupt: trailing bytes")
	}
	return state, at, nil
}
