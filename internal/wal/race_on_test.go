//go:build race

package wal

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
