package wal

import (
	"fmt"
	"sort"
	"sync"

	"rubic/internal/stm"
)

// Registry binds durable IDs to typed setters so a recovered state image
// can be loaded back into a freshly built Runtime's Vars. The recovery
// contract is three-phase and the workload drives it (see DurableState):
// re-run the deterministic Setup to recreate the initial state and its
// Vars, register every durable Var under the same stable ID as last time,
// then ApplyTo replays the recovered values on top — after which the
// workload's Verify must pass again.
type Registry struct {
	mu      sync.Mutex
	setters map[uint64]func(any) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{setters: make(map[uint64]func(any) error)}
}

// Register binds id to a raw setter. Most callers want RegisterVar.
func (r *Registry) Register(id uint64, set func(any) error) error {
	if id == 0 {
		return fmt.Errorf("wal: durable ID must be nonzero")
	}
	if set == nil {
		return fmt.Errorf("wal: nil setter for durable ID %d", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.setters[id]; dup {
		return fmt.Errorf("wal: duplicate durable ID %d", id)
	}
	r.setters[id] = set
	return nil
}

// Len reports the number of registered IDs.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.setters)
}

// RegisterVar marks v durable under id and registers its typed setter. The
// current value is probed against the codec so unsupported element types
// fail here, at registration, rather than silently degrading the log later.
func RegisterVar[T any](r *Registry, id uint64, v *stm.Var[T]) error {
	if v == nil {
		return fmt.Errorf("wal: nil Var for durable ID %d", id)
	}
	if _, ok := appendValue(nil, any(v.Peek())); !ok {
		return fmt.Errorf("wal: durable ID %d: %w (%T)", id, errUnsupportedType, v.Peek())
	}
	if err := r.Register(id, func(x any) error {
		t, ok := x.(T)
		if !ok {
			return fmt.Errorf("wal: durable ID %d: recovered %T, Var holds %T", id, x, t)
		}
		v.Set(t)
		return nil
	}); err != nil {
		return err
	}
	v.MarkDurable(id)
	return nil
}

// ApplyTo loads the recovered state image into the registry's Vars. Every
// recovered ID must be registered and type-compatible; an unknown ID means
// the workload's registration drifted from the log and is an error — the
// recovered prefix would silently lose that location otherwise. Call during
// the quiescent recovery phase, before transactions start.
func (l *Log) ApplyTo(r *Registry) error {
	ids := make([]uint64, 0, len(l.state))
	for id := range l.state {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range ids {
		set, ok := r.setters[id]
		if !ok {
			return fmt.Errorf("wal: recovered durable ID %d has no registration", id)
		}
		v, err := decodeValue(l.state[id])
		if err != nil {
			return fmt.Errorf("wal: durable ID %d: %w", id, err)
		}
		if v == nil {
			return fmt.Errorf("wal: durable ID %d: null value in recovered state", id)
		}
		if err := set(v); err != nil {
			return err
		}
	}
	return nil
}

// DurableState is implemented by workloads and services whose transactional
// state can be made durable. The agent calls RegisterDurable once after
// Setup (assign stable IDs, mark Vars durable), and Rebase after a non-empty
// recovery has been applied (re-anchor any in-memory audit counters — e.g. a
// running total Verify checks against — to the recovered var state).
type DurableState interface {
	RegisterDurable(reg *Registry) error
	Rebase() error
}
