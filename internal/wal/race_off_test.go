//go:build !race

package wal

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count assertions are skipped under -race: the detector adds
// shadow allocations that testing.AllocsPerRun would attribute to the log.
const raceEnabled = false
